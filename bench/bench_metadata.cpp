// Experiment E8 — metadata overhead of the axial-vector scheme
// (DESIGN.md §4.2; paper Sec. III-B: the number of records per axial
// vector "is exactly the number of uninterrupted expansions along the
// dimension", and F* costs O(k + log E)).
//
// Workload: adversarial expansion sequences (strictly alternating
// dimensions — every extension creates a record) versus benign sequences
// (repeated same-dimension extensions — everything merges). We report the
// .xmd size against the data size, and the measured F* latency as E grows.
// Expected shape: .xmd bytes ~ E and stay vanishingly small next to the
// data; F* latency grows only with log E.
#include <vector>

#include "bench_util.hpp"
#include "core/metadata.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::AxialMapping;
using core::Index;
using core::Metadata;
using core::Shape;

namespace {

double fstar_ns(const AxialMapping& m, int iterations = 200000) {
  SplitMix64 rng(4);
  std::vector<Index> indices(512);
  for (auto& idx : indices) {
    idx.resize(m.rank());
    for (std::size_t d = 0; d < m.rank(); ++d) {
      idx[d] = rng.next_below(m.bounds()[d]);
    }
  }
  // Warm up + measure.
  std::uint64_t sink = 0;
  Stopwatch watch;
  for (int i = 0; i < iterations; ++i) {
    sink += m.address_of(indices[static_cast<std::size_t>(i) & 511]) + 1;
  }
  const double ns = watch.elapsed_seconds() * 1e9 / iterations;
  DRX_CHECK(sink >= static_cast<std::uint64_t>(iterations));
  return ns;
}

}  // namespace

int main() {
  std::printf("E8: axial-vector metadata growth and F* cost vs expansion "
              "count (2-D array, 64x64-element double chunks)\n\n");
  bench::Table table({"extensions", "pattern", "records E", "xmd bytes",
                      "data MB", "xmd/data", "F* ns"});
  for (const int steps : {0, 16, 64, 256, 1024}) {
    for (const bool adversarial : {true, false}) {
      Metadata meta(core::ElementType::kDouble,
                    core::MemoryOrder::kRowMajor, Shape{64, 64},
                    Shape{64, 64});
      for (int i = 0; i < steps; ++i) {
        const std::size_t dim =
            adversarial ? static_cast<std::size_t>(i) % 2 : 0;
        meta.mapping.extend(dim, 1);
        meta.element_bounds[dim] += 64;
      }
      const std::uint64_t xmd = meta.to_bytes().size();
      const double data_mb =
          static_cast<double>(meta.data_file_bytes()) / 1e6;
      table.add_row(
          {bench::strf("%d", steps),
           adversarial ? "alternating (worst)" : "same-dim (merged)",
           bench::strf("%llu", static_cast<unsigned long long>(
                                   meta.mapping.total_records())),
           bench::strf("%llu", static_cast<unsigned long long>(xmd)),
           bench::strf("%.1f", data_mb),
           bench::strf("%.6f%%",
                       100.0 * static_cast<double>(xmd) /
                           static_cast<double>(meta.data_file_bytes())),
           bench::strf("%.0f", fstar_ns(meta.mapping))});
    }
  }
  table.print();
  std::printf("\nexpected shape: merged pattern stays at E = O(1); "
              "alternating grows E linearly yet .xmd stays <<0.1%% of the "
              "data and F* grows ~log E.\n");
  return 0;
}
