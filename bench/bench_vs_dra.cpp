// Experiment E9 — DRX-MP vs a DRA-like fixed array (DESIGN.md §4.2; paper
// Sec. II-A: "The functionalities of DRX-MP subsumes those of the Disk
// Residents Array (DRA)").
//
// Workload: identical BLOCK zone write+read of a 512x512 double array
// through DRX-MP (axial mapping, extendible) and through the DRA-like
// fixed row-major chunk layout. No extensions are performed, so any gap
// is pure overhead of extendibility.
// Expected shape: overhead ratio ~1.0x — the axial mapping costs CPU
// arithmetic, not I/O.
#include <vector>

#include "baselines/dra_like.hpp"
#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::MemoryOrder;
using core::Shape;

namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 8;
  c.stripe_size = 64 * 1024;
  return c;
}

struct Sample {
  double write_ms = 0, read_ms = 0;
};

Sample run_drx(int nprocs, std::uint64_t n, std::uint64_t chunk) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{n, n},
                               Shape{chunk, chunk}, options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()), 1.0);
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(buf)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.write_ms = phase.elapsed_ms();
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(buf)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.read_ms = phase.elapsed_ms();
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

Sample run_dra(int nprocs, std::uint64_t n, std::uint64_t chunk) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    auto f = baselines::DraLikeFile::create(comm, fs, "a", Shape{n, n},
                                            Shape{chunk, chunk},
                                            sizeof(double))
                 .value();
    const auto dist = f.block_distribution(comm.size());
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()), 1.0);
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(buf)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.write_ms = phase.elapsed_ms();
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(buf)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.read_ms = phase.elapsed_ms();
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E9: identical BLOCK zone write+read, DRX-MP (extendible) vs "
              "DRA-like (fixed), 512x512 doubles, 16x16 chunks\n\n");
  bench::Table table({"P", "drx write ms", "dra write ms", "drx read ms",
                      "dra read ms", "overhead"});
  for (const int p : {1, 2, 4, 8}) {
    const Sample a = run_drx(p, 512, 16);
    const Sample b = run_dra(p, 512, 16);
    table.add_row({bench::strf("%d", p), bench::strf("%.1f", a.write_ms),
                   bench::strf("%.1f", b.write_ms),
                   bench::strf("%.1f", a.read_ms),
                   bench::strf("%.1f", b.read_ms),
                   bench::strf("%.2fx", (a.read_ms + a.write_ms) /
                                            (b.read_ms + b.write_ms))});
  }
  table.print();
  std::printf("\nexpected shape: overhead ~1.0x at every P — extendibility "
              "costs metadata arithmetic, not I/O.\n");
  return 0;
}
