// Ablation A2 — the Mpool-style chunk cache of serial DRX (paper Sec. I:
// DRX caches I/O "using the BerkeleyDB Mpool sub-system").
//
// Workload: random element reads and writes over a 512x512 double array
// (16x16 chunks) with several access localities:
//   - uniform random over the whole array (worst case),
//   - hot-set random (90% of touches within an 8-chunk working set),
//   - sequential chunk-order streaming scan (best case).
// We compare raw DrxFile element access (one chunk-size I/O per element
// touch) against CachedDrxFile with a 32-chunk pool.
// Expected shape: the cache turns per-touch I/O into per-miss I/O — big
// wins for hot-set and sequential patterns. Uniform random over an array
// that dwarfs the pool can even LOSE: every miss faults a whole chunk
// (and dirty evictions write one back) where raw access moved 8 bytes —
// the locality assumption behind chunk caching stated plainly.
//
// The cached mode honors the async I/O engine knobs (DRX_IO_THREADS,
// DRX_PREFETCH_DEPTH — docs/ASYNC_IO.md): CI runs this bench twice and
// gates on prefetch-on beating prefetch-off for the sequential sweep.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codec/codec.hpp"
#include "core/chunk_cache.hpp"
#include "io/config.hpp"
#include "util/rng.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::DrxFile;
using core::Index;
using core::Shape;

namespace {

constexpr std::uint64_t kN = 512;
constexpr std::uint64_t kChunk = 16;
constexpr int kTouches = 20000;

enum class Pattern { kUniform, kHotSet, kSequential };

DrxFile make_array(pfs::MemStorage** raw) {
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  auto data = std::make_unique<pfs::MemStorage>();
  *raw = data.get();
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::move(data), Shape{kN, kN},
                           Shape{kChunk, kChunk}, options);
  DRX_CHECK(f.is_ok());
  return std::move(f).value();
}

Index next_index(Pattern pattern, SplitMix64& rng, int touch) {
  switch (pattern) {
    case Pattern::kUniform:
      return Index{rng.next_below(kN), rng.next_below(kN)};
    case Pattern::kHotSet: {
      if (rng.next_below(10) < 9) {
        // Hot set: the top-left 8 chunks (2 chunk rows x 4 chunk cols).
        return Index{rng.next_below(2 * kChunk),
                     rng.next_below(4 * kChunk)};
      }
      return Index{rng.next_below(kN), rng.next_below(kN)};
    }
    case Pattern::kSequential: {
      // Streaming out-of-core scan: visit every element of a chunk, then
      // move to the next chunk in ascending storage-address order (the
      // axial mapping for this array allocates chunk (r, c) at address
      // c * 32 + r). Each chunk is touched exactly once — the scan the
      // sequential read-ahead detector targets.
      const auto t = static_cast<std::uint64_t>(touch);
      const std::uint64_t per_chunk = kChunk * kChunk;
      const std::uint64_t a = (t / per_chunk) % (32 * 32);
      const std::uint64_t e = t % per_chunk;
      return Index{(a % 32) * kChunk + e % kChunk,
                   (a / 32) * kChunk + e / kChunk};
    }
  }
  return Index{0, 0};
}

struct Sample {
  double ms = 0;
  std::uint64_t requests = 0;
};

Sample run(Pattern pattern, bool cached) {
  pfs::MemStorage* raw = nullptr;
  DrxFile file = make_array(&raw);
  core::CachedDrxFile pool(file, 32);
  SplitMix64 rng(11);
  const auto before = raw->stats();
  for (int touch = 0; touch < kTouches; ++touch) {
    const Index idx = next_index(pattern, rng, touch);
    if (rng.next_below(4) == 0) {  // 25% writes
      const double v = static_cast<double>(touch);
      if (cached) {
        DRX_CHECK(pool.set<double>(idx, v).is_ok());
      } else {
        DRX_CHECK(file.set<double>(idx, v).is_ok());
      }
    } else {
      if (cached) {
        DRX_CHECK(pool.get<double>(idx).is_ok());
      } else {
        DRX_CHECK(file.get<double>(idx).is_ok());
      }
    }
  }
  if (cached) DRX_CHECK(pool.flush().is_ok());
  const auto delta = raw->stats() - before;
  return Sample{delta.busy_us / 1000.0,
                delta.read_requests + delta.write_requests};
}

std::string cached_mode() {
  if (io::io_threads() > 0) {
    return bench::strf("CachedDrxFile(32) async t=%d d=%llu",
                       io::io_threads(),
                       static_cast<unsigned long long>(io::prefetch_depth()));
  }
  return "CachedDrxFile(32)";
}

// ---- compressed streaming scan (docs/COMPRESSION.md) -----------------------
//
// A compressible array (row-constant doubles: long in-chunk runs) is
// streamed chunk-by-chunk through an async ChunkCache. With per-chunk RLE
// the prefetch path reads the stored (small) bytes and decodes on the pool
// workers before frames are published, so the effective bandwidth —
// logical bytes delivered per unit of simulated storage time — must beat
// the uncompressed scan. CI gates compressed >= 1.2x uncompressed
// (check_bench_regression.py --compression).

struct ScanSample {
  double ms = 0;        ///< simulated storage busy time
  double eff_mbps = 0;  ///< logical bytes / storage busy time
  double pfs_mb = 0;    ///< bytes actually moved to/from storage
};

ScanSample scan_stream(bool compressed) {
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  // Pin the codec explicitly so the row is deterministic whatever
  // DRX_COMPRESS says in the environment.
  options.codec = compressed ? codec::CodecId::kRle : codec::CodecId::kNone;
  auto data = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* raw = data.get();
  auto created = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                                 std::move(data), Shape{kN, kN},
                                 Shape{kChunk, kChunk}, options);
  DRX_CHECK(created.is_ok());
  DrxFile file = std::move(created).value();

  std::vector<double> image(kN * kN);
  for (std::uint64_t r = 0; r < kN; ++r) {
    for (std::uint64_t c = 0; c < kN; ++c) {
      image[static_cast<std::size_t>(r * kN + c)] =
          static_cast<double>(r);  // row-constant: RLE-friendly runs
    }
  }
  DRX_CHECK(file.write_box(Box{{0, 0}, {kN, kN}}, core::MemoryOrder::kRowMajor,
                           std::as_bytes(std::span<const double>(image)))
                .is_ok());
  DRX_CHECK(file.flush().is_ok());

  const std::uint64_t chunks = file.metadata().mapping.total_chunks();
  const std::uint64_t logical = chunks * file.chunk_bytes();
  double acc = 0;
  const auto before = raw->stats();
  {
    core::ChunkCache cache(file, 64, core::ChunkCache::AsyncOptions{2, 8});
    for (std::uint64_t a = 0; a < chunks; ++a) {
      if (a % 8 == 0) {
        cache.prefetch(a, std::min<std::uint64_t>(8, chunks - a));
      }
      auto p = cache.pin(a, /*writable=*/false);
      DRX_CHECK(p.is_ok());
      double v = 0;
      std::memcpy(&v, p.value().data(), sizeof(v));
      acc += v;
      cache.unpin(a, /*dirty=*/false, /*writable=*/false);
    }
  }
  DRX_CHECK(acc >= 0);
  const auto delta = raw->stats() - before;
  ScanSample s;
  s.ms = delta.busy_us / 1000.0;
  s.eff_mbps = delta.busy_us > 0
                   ? static_cast<double>(logical) / delta.busy_us
                   : 0.0;  // bytes/us == MB/s
  s.pfs_mb = static_cast<double>(delta.bytes_read + delta.bytes_written) / 1e6;
  return s;
}

const char* name_of(Pattern p) {
  switch (p) {
    case Pattern::kUniform: return "uniform random";
    case Pattern::kHotSet: return "hot set (90/10)";
    case Pattern::kSequential: return "sequential sweep";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("A2 (ablation): Mpool-style chunk cache for serial DRX "
              "element access — %d touches (25%% writes), 512x512 doubles, "
              "32-chunk pool\n",
              kTouches);
  std::printf("async I/O engine: DRX_IO_THREADS=%d DRX_PREFETCH_DEPTH=%llu "
              "(0/0 = synchronous legacy path)\n\n",
              io::io_threads(),
              static_cast<unsigned long long>(io::prefetch_depth()));
  bench::Table table({"pattern", "mode", "sim ms", "storage requests",
                      "speedup"});
  for (const Pattern p :
       {Pattern::kSequential, Pattern::kHotSet, Pattern::kUniform}) {
    const Sample plain = run(p, /*cached=*/false);
    const Sample cached = run(p, /*cached=*/true);
    table.add_row({name_of(p), "raw DrxFile", bench::strf("%.1f", plain.ms),
                   bench::strf("%llu",
                               static_cast<unsigned long long>(
                                   plain.requests)),
                   ""});
    table.add_row({"", cached_mode(), bench::strf("%.1f", cached.ms),
                   bench::strf("%llu",
                               static_cast<unsigned long long>(
                                   cached.requests)),
                   bench::strf("%.1fx", plain.ms / cached.ms)});
  }
  table.print();
  bench::write_json_report("bench_chunk_cache", table);

  std::printf("\ncompressed streaming scan: chunk-order sweep through an "
              "async ChunkCache (t=2 d=8), row-constant doubles, per-chunk "
              "RLE decoded on the pool workers\n\n");
  bench::Table ctable({"scan", "sim ms", "eff MB/s", "PFS MB", "MB saved",
                       "eff bw speedup"});
  const ScanSample plain_scan = scan_stream(/*compressed=*/false);
  const ScanSample rle_scan = scan_stream(/*compressed=*/true);
  ctable.add_row({"uncompressed", bench::strf("%.1f", plain_scan.ms),
                  bench::strf("%.1f", plain_scan.eff_mbps),
                  bench::strf("%.2f", plain_scan.pfs_mb), "", ""});
  ctable.add_row({"rle", bench::strf("%.1f", rle_scan.ms),
                  bench::strf("%.1f", rle_scan.eff_mbps),
                  bench::strf("%.2f", rle_scan.pfs_mb),
                  bench::strf("%.2f", plain_scan.pfs_mb - rle_scan.pfs_mb),
                  bench::strf("%.1fx",
                              rle_scan.eff_mbps / plain_scan.eff_mbps)});
  ctable.print();
  bench::write_json_report("bench_chunk_cache_compression", ctable);
  std::printf("\nexpected shape: sequential and hot-set accesses become "
              "nearly I/O-free (one fault per chunk / per working-set "
              "chunk); uniform random over an array that dwarfs the pool "
              "stays >= 1.0x — the DRX_CACHE_ADMIT ghost filter bypasses "
              "scan misses instead of faulting whole chunks for them "
              "(docs/PERFORMANCE.md).\n");
  return 0;
}
