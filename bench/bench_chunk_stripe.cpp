// Experiment E6 — chunk size vs PFS stripe size (DESIGN.md §4.2; paper
// Sec. V future work: "Optimizing the access by reconciling the chunk
// size with the strip size of the parallel file system for optimal chunk
// accesses").
//
// Workload: 4 ranks independently read a SCATTERED chunk sample — every
// other chunk of their zone, checkerboard-style, the access pattern of a
// strided sub-array query. Scattered chunk reads cannot be coalesced, so
// each chunk access pays real per-request and striping costs:
//   - chunks much smaller than a stripe: many tiny requests, overhead-bound;
//   - chunk bytes ≈ a small multiple of the stripe: each chunk is one or
//     two whole-stripe requests — the sweet spot;
//   - chunks much larger than the stripe: each chunk fans out over every
//     server (requests = chunk/stripe), per-request overhead returns.
// We report simulated time per MB transferred and requests per chunk.
#include <vector>

#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

struct Sample {
  double ms_per_mb = 0;
  double requests_per_chunk = 0;
};

Sample run(std::uint64_t chunk_side, std::uint64_t stripe) {
  pfs::PfsConfig c;
  c.num_servers = 8;
  c.stripe_size = stripe;
  pfs::Pfs fs(c);
  Sample sample;
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{1024, 1024},
                               Shape{chunk_side, chunk_side}, options)
                 .value();
    const Distribution dist = f.block_distribution();
    // Checkerboard sample of my zone's chunks.
    std::vector<Index> sample_chunks;
    for (const auto& z : dist.zones_of(comm.rank())) {
      core::for_each_index(z, [&](const Index& idx) {
        if ((idx[0] + idx[1]) % 2 == 0) sample_chunks.push_back(idx);
      });
    }
    std::vector<std::byte> staging(checked_size(
        checked_mul(sample_chunks.size(), f.chunk_bytes())));
    comm.barrier();
    const auto before = fs.server_stats();
    DRX_CHECK(
        f.read_chunks(sample_chunks, staging, /*collective=*/false).is_ok());
    comm.barrier();
    if (comm.rank() == 0) {
      const auto after = fs.server_stats();
      const double ms = pfs::Pfs::phase_elapsed_us(before, after) / 1000.0;
      pfs::IoStats delta;
      for (std::size_t s = 0; s < after.size(); ++s) {
        delta += after[s] - before[s];
      }
      const double mb = static_cast<double>(delta.bytes_read) / 1e6;
      // All 4 ranks sample half the grid in total.
      const double total_chunks =
          static_cast<double>((1024 / chunk_side) * (1024 / chunk_side)) / 2.0;
      sample.ms_per_mb = mb > 0 ? ms / mb : 0;
      sample.requests_per_chunk =
          static_cast<double>(delta.read_requests) / total_chunks;
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E6: independent scattered (checkerboard) chunk reads of a "
              "1024x1024 double array, 8 servers\n");
  std::printf("cells: simulated ms per MB (requests per chunk)\n\n");
  const std::vector<std::uint64_t> chunk_sides = {8, 16, 32, 64, 128, 256};
  const std::vector<std::uint64_t> stripes = {4096, 16384, 65536, 262144};

  std::vector<std::string> headers = {"chunk (bytes)"};
  for (std::uint64_t s : stripes) {
    headers.push_back(bench::strf("stripe %lluK",
                                  static_cast<unsigned long long>(s >> 10)));
  }
  bench::Table table(headers);
  for (std::uint64_t side : chunk_sides) {
    std::vector<std::string> row = {
        bench::strf("%llu (%lluK)", static_cast<unsigned long long>(side),
                    static_cast<unsigned long long>(side * side * 8 >> 10))};
    for (std::uint64_t stripe : stripes) {
      const Sample s = run(side, stripe);
      row.push_back(
          bench::strf("%.1f (%.1f)", s.ms_per_mb, s.requests_per_chunk));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nexpected shape: cost per MB is minimized where chunk bytes "
              "are within ~1-4x of the stripe size; far smaller chunks are "
              "overhead-bound, far larger ones fan every chunk out over all "
              "servers.\n");
  return 0;
}
