// Experiment E12 — DRX-MP vs a parallel-NetCDF-like record file (DESIGN.md
// §4.2; paper Sec. V promised comparison, and Sec. II-B: NetCDF extends in
// one dimension only).
//
// Workload, modeled on the climate scenario of the paper's introduction:
// a (time, lat, lon) double array, 4 ranks.
//   Phase 1 — append T time records and collectively write them
//             (the RECORD path: both formats should be comparable).
//   Phase 2 — grow the LATITUDE dimension by 25% and write the new band
//             (the non-record path: pNetCDF must redefine + copy every
//             record; DRX appends one segment).
// Expected shape: phase-1 costs are within a small factor of each other;
// phase-2 cost for pNetCDF scales with the whole dataset (and keeps
// growing if repeated), while DRX pays only for the new band.
#include <vector>

#include "baselines/pnetcdf_like.hpp"
#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::DrxFile;
using core::DrxMpFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

constexpr int kRanks = 4;
constexpr std::uint64_t kLat = 64;
constexpr std::uint64_t kLon = 128;

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 4;
  c.stripe_size = 64 * 1024;
  return c;
}

struct Sample {
  double append_ms = 0;
  double grow_ms = 0;
};

Sample run_drx(std::uint64_t steps) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "c", Shape{1, kLat, kLon},
                               Shape{1, kLat / kRanks, kLon}, options)
                 .value();
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const std::uint64_t band = kLat / kRanks;
    std::vector<double> slab(band * kLon, 1.0);
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      for (std::uint64_t t = 0; t < steps; ++t) {
        if (t > 0) DRX_CHECK(f.extend_all(0, 1).is_ok());
        const Box box{{t, r * band, 0}, {t + 1, (r + 1) * band, kLon}};
        DRX_CHECK(f.write_box_all(box, MemoryOrder::kRowMajor,
                                  std::as_bytes(std::span<const double>(slab)))
                      .is_ok());
      }
      comm.barrier();
      if (comm.rank() == 0) sample.append_ms = phase.elapsed_ms();
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.extend_all(1, kLat / 4).is_ok());
      // Rank 0 writes the new latitude band of every step.
      if (comm.rank() == 0) {
        const Box box{{0, kLat, 0}, {steps, kLat + kLat / 4, kLon}};
        std::vector<double> grown(
            static_cast<std::size_t>(box.volume()), 2.0);
        DRX_CHECK(
            f.write_box_all(box, MemoryOrder::kRowMajor,
                            std::as_bytes(std::span<const double>(grown)))
                .is_ok());
      } else {
        const Box none{Index(3, 0), Index(3, 0)};
        DRX_CHECK(f.write_box_all(none, MemoryOrder::kRowMajor, {}).is_ok());
      }
      comm.barrier();
      if (comm.rank() == 0) sample.grow_ms = phase.elapsed_ms();
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

Sample run_pnetcdf(std::uint64_t steps) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    auto f = baselines::PnetcdfLikeFile::create(comm, fs, "c",
                                                Shape{1, kLat, kLon},
                                                sizeof(double))
                 .value();
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      std::vector<double> record(kLat * kLon, 1.0);
      for (std::uint64_t t = 0; t < steps; ++t) {
        if (t > 0) DRX_CHECK(f.append_records(1).is_ok());
        // Rank 0 writes the record, peers participate with zero records —
        // the simplest record decomposition pNetCDF programs use when the
        // record is produced by one writer per step.
        if (comm.rank() == 0) {
          DRX_CHECK(
              f.write_records_all(t, 1,
                                  std::as_bytes(
                                      std::span<const double>(record)))
                  .is_ok());
        } else {
          DRX_CHECK(f.write_records_all(t, 0, {}).is_ok());
        }
      }
      comm.barrier();
      if (comm.rank() == 0) sample.append_ms = phase.elapsed_ms();
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      auto moved = f.redefine_grow(1, kLat / 4);
      DRX_CHECK(moved.is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.grow_ms = phase.elapsed_ms();
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E12: (time, lat, lon) climate workload — DRX-MP vs "
              "pNetCDF-like record file, %d ranks, lat x lon = %llu x "
              "%llu doubles\n\n",
              kRanks, static_cast<unsigned long long>(kLat),
              static_cast<unsigned long long>(kLon));
  bench::Table table({"time steps", "drx append ms", "pnetcdf append ms",
                      "drx grow-lat ms", "pnetcdf grow-lat ms",
                      "grow ratio"});
  for (const std::uint64_t steps : {4u, 8u, 16u, 32u}) {
    const Sample a = run_drx(steps);
    const Sample b = run_pnetcdf(steps);
    table.add_row({bench::strf("%llu",
                               static_cast<unsigned long long>(steps)),
                   bench::strf("%.1f", a.append_ms),
                   bench::strf("%.1f", b.append_ms),
                   bench::strf("%.1f", a.grow_ms),
                   bench::strf("%.1f", b.grow_ms),
                   bench::strf("%.1fx", b.grow_ms / a.grow_ms)});
  }
  table.print();
  std::printf("\nexpected shape: record appends comparable (both are "
              "cheap appends); growing latitude costs pNetCDF a copy of "
              "the WHOLE dataset — the ratio rises linearly with the "
              "number of accumulated time steps — while DRX's cost tracks "
              "only the new band.\n");
  return 0;
}
