// Experiment E5 — two-phase collective I/O vs independent I/O on
// interleaved (non-contiguous) access patterns (DESIGN.md §4.2; paper
// Sec. II-A: "The effect is that the linear ordering in memory direct
// accesses to disk that are random").
//
// Workload: P = 4 ranks write and read round-robin-interleaved cells
// through an MPI-IO file view (rank r owns every P-th cell). The cell
// size sweeps from fine to chunk-sized grains.
// Expected shape: for small cells independent I/O explodes in requests
// and seeks while two-phase stays flat (aggregators see a contiguous
// range); the gap narrows as cells grow and the pattern becomes
// sequential per rank.
#include <vector>

#include "bench_util.hpp"
#include "mpio/file.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using simpi::Datatype;

namespace {

constexpr int kRanks = 4;
constexpr std::uint64_t kTotalBytes = 8 * 1024 * 1024;

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 4;
  c.stripe_size = 64 * 1024;
  return c;
}

struct Sample {
  double write_ms = 0, read_ms = 0;
  std::uint64_t write_reqs = 0, read_reqs = 0, seeks = 0;
};

Sample run(std::uint64_t cell_bytes, bool collective) {
  pfs::Pfs fs(cfg());
  Sample sample;
  const std::uint64_t cells_per_rank = kTotalBytes / kRanks / cell_bytes;
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    auto f = mpio::File::open(comm, fs, "f",
                              mpio::kModeRdWr | mpio::kModeCreate)
                 .value();
    auto ft = Datatype::bytes(cell_bytes).resized(cell_bytes * kRanks);
    f.set_view(static_cast<std::uint64_t>(comm.rank()) * cell_bytes,
               Datatype::bytes(1), ft);
    std::vector<std::byte> mine(
        static_cast<std::size_t>(cells_per_rank * cell_bytes),
        static_cast<std::byte>(comm.rank() + 1));

    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK((collective
                     ? f.write_at_all(0, mine.data(), mine.size(),
                                      Datatype::bytes(1))
                     : f.write_at(0, mine.data(), mine.size(),
                                  Datatype::bytes(1)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        sample.write_ms = phase.elapsed_ms();
        sample.write_reqs = phase.delta().write_requests;
      }
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK((collective
                     ? f.read_at_all(0, mine.data(), mine.size(),
                                     Datatype::bytes(1))
                     : f.read_at(0, mine.data(), mine.size(),
                                 Datatype::bytes(1)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        sample.read_ms = phase.elapsed_ms();
        const auto d = phase.delta();
        sample.read_reqs = d.read_requests;
        sample.seeks = d.seeks;
      }
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E5: 4 ranks, round-robin interleaved cells over an 8 MB "
              "file (two-phase vs independent)\n\n");
  bench::Table table({"cell bytes", "mode", "write ms", "read ms",
                      "write reqs", "read reqs", "read seeks"});
  for (const std::uint64_t cell : {256u, 1024u, 4096u, 16384u, 65536u}) {
    for (const bool collective : {true, false}) {
      const Sample s = run(cell, collective);
      table.add_row(
          {bench::strf("%llu", static_cast<unsigned long long>(cell)),
           collective ? "two-phase" : "independent",
           bench::strf("%.1f", s.write_ms), bench::strf("%.1f", s.read_ms),
           bench::strf("%llu", static_cast<unsigned long long>(s.write_reqs)),
           bench::strf("%llu", static_cast<unsigned long long>(s.read_reqs)),
           bench::strf("%llu", static_cast<unsigned long long>(s.seeks))});
    }
  }
  table.print();
  bench::write_json_report("bench_two_phase", table);
  std::printf("\nexpected shape: independent cost explodes as cells shrink "
              "(requests ~ 1/cell); two-phase stays nearly flat, crossing "
              "over only when cells reach the aggregation granularity.\n");
  return 0;
}
