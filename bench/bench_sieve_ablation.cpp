// Ablation A1 — data-sieving gap in the two-phase collective read
// (DESIGN.md §4.2 supporting analysis; the design choice in
// mpio::transfer_collective of reading across small holes in one device
// access instead of issuing one access per requested piece).
//
// Workload: 4 ranks collectively read every other cell of a file (50%
// density holes) through a strided view, sweeping the sieve gap from 0
// (no sieving: one access per piece) upward.
// Expected shape: with the gap below the hole size the aggregator issues
// per-piece requests and pays per-request overhead; once the gap covers
// the hole, runs coalesce, requests collapse, and time drops to the
// sequential-scan floor — at the cost of reading ~2x the payload bytes.
#include <vector>

#include "bench_util.hpp"
#include "util/checked.hpp"
#include "mpio/file.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using simpi::Datatype;

namespace {

constexpr int kRanks = 4;
constexpr std::uint64_t kCell = 1024;
constexpr std::uint64_t kCellsPerRank = 512;

struct Sample {
  double read_ms = 0;
  std::uint64_t requests = 0;
  std::uint64_t bytes_read = 0;
};

Sample run(std::uint64_t gap) {
  mpio::set_read_sieve_gap(gap);
  pfs::PfsConfig c;
  c.num_servers = 4;
  c.stripe_size = 64 * 1024;
  pfs::Pfs fs(c);
  Sample sample;
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    auto f = mpio::File::open(comm, fs, "f",
                              mpio::kModeRdWr | mpio::kModeCreate)
                 .value();
    // Lay down a dense file first.
    const std::uint64_t total =
        kCell * kCellsPerRank * kRanks * 2;  // x2: half will be holes
    if (comm.rank() == 0) {
      std::vector<std::byte> dense(checked_size(total), std::byte{1});
      DRX_CHECK(
          f.write_at(0, dense.data(), total, Datatype::bytes(1)).is_ok());
    }
    comm.barrier();

    // View: rank r sees cell 2*(kRanks*i + r) — every other cell globally,
    // ranks interleaved (holes of kCell bytes between consecutive pieces).
    auto ft = Datatype::bytes(kCell).resized(kCell * 2 * kRanks);
    f.set_view(static_cast<std::uint64_t>(comm.rank()) * kCell * 2,
               Datatype::bytes(1), ft);
    std::vector<std::byte> buf(checked_size(kCell * kCellsPerRank));
    comm.barrier();
    const auto before = fs.server_stats();
    DRX_CHECK(
        f.read_at_all(0, buf.data(), buf.size(), Datatype::bytes(1)).is_ok());
    comm.barrier();
    if (comm.rank() == 0) {
      const auto after = fs.server_stats();
      sample.read_ms = pfs::Pfs::phase_elapsed_us(before, after) / 1000.0;
      pfs::IoStats delta;
      for (std::size_t s = 0; s < after.size(); ++s) {
        delta += after[s] - before[s];
      }
      sample.requests = delta.read_requests;
      sample.bytes_read = delta.bytes_read;
    }
    DRX_CHECK(f.close().is_ok());
  });
  mpio::set_read_sieve_gap(64 * 1024);  // restore default
  return sample;
}

}  // namespace

int main() {
  std::printf("A1 (ablation): data-sieving gap in two-phase collective "
              "reads; 4 ranks read every other 1 KiB cell (50%% holes)\n\n");
  bench::Table table({"sieve gap", "read ms", "requests", "MB read",
                      "payload MB"});
  const double payload_mb =
      static_cast<double>(kCell * kCellsPerRank * kRanks) / 1e6;
  for (const std::uint64_t gap :
       {0ull, 256ull, 1024ull, 4096ull, 65536ull, 1048576ull}) {
    const Sample s = run(gap);
    table.add_row(
        {gap == 0 ? "0 (no sieving)"
                  : bench::strf("%llu", static_cast<unsigned long long>(gap)),
         bench::strf("%.1f", s.read_ms),
         bench::strf("%llu", static_cast<unsigned long long>(s.requests)),
         bench::strf("%.2f", static_cast<double>(s.bytes_read) / 1e6),
         bench::strf("%.2f", payload_mb)});
  }
  table.print();
  std::printf("\nexpected shape: requests collapse and time drops once the "
              "gap reaches the hole size (1 KiB); the price is ~2x payload "
              "bytes read — the canonical sieving trade.\n");
  return 0;
}
