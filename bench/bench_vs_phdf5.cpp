// Experiment E11 — DRX-MP vs a parallel-HDF5-like chunked store
// (DESIGN.md §4.2; paper Sec. V: "we intend to pursue extensive
// performance testing and comparison with other file formats ... namely
// parallel HDF5, parallel NetCDF and Disk Resident Arrays").
//
// The pHDF5 model: one shared chunked file whose chunks are located
// through an ON-DISK B-tree index. Every process must traverse the index
// (paying node reads against the PFS) before it can touch a chunk; the
// index is shared, so each process's cold cache re-reads the same nodes.
// DRX-MP replicates the axial vectors in memory at open — chunk addresses
// cost arithmetic, never I/O.
//
// Workload: P ranks read their BLOCK zones of a 512x512 double array
// (16x16 chunks) from (a) DRX-MP and (b) the B-tree store over the same
// PFS. Both use independent per-rank I/O so the comparison isolates
// address resolution. We report simulated time and index-node read
// traffic.
// Expected shape: identical data traffic; the B-tree path adds index-node
// reads that grow with P (each rank walks the shared index cold), giving
// DRX an edge that widens with process count and with index size.
#include <numeric>
#include <vector>

#include "baselines/btree_chunk_store.hpp"
#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::ChunkSpace;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

constexpr std::uint64_t kN = 512;
constexpr std::uint64_t kChunk = 16;

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 8;
  c.stripe_size = 64 * 1024;
  return c;
}

struct Sample {
  double read_ms = 0;
  std::uint64_t requests = 0;
};

Sample run_drx(int nprocs, bool collective) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{kN, kN},
                               Shape{kChunk, kChunk}, options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()), 1.0);
    DRX_CHECK(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                              std::as_bytes(std::span<const double>(buf)),
                              collective)
                  .is_ok());
    comm.barrier();
    const auto before = fs.server_stats();
    DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                             std::as_writable_bytes(std::span<double>(buf)),
                             collective)
                  .is_ok());
    comm.barrier();
    if (comm.rank() == 0) {
      const auto after = fs.server_stats();
      sample.read_ms = pfs::Pfs::phase_elapsed_us(before, after) / 1000.0;
      pfs::IoStats delta;
      for (std::size_t s = 0; s < after.size(); ++s) {
        delta += after[s] - before[s];
      }
      sample.requests = delta.read_requests;
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

Sample run_btree(int nprocs) {
  pfs::Pfs fs(cfg());
  const ChunkSpace cs(Shape{kChunk, kChunk}, MemoryOrder::kRowMajor);
  const std::uint64_t chunk_bytes = cs.elements_per_chunk() * 8;

  // Build the shared chunked file serially (writer process), flushing the
  // index to disk.
  {
    auto handle = fs.create("h5").value();
    auto store = baselines::BTreeChunkStore::create(
        std::make_unique<pfs::PfsStorage>(handle), 2, chunk_bytes);
    DRX_CHECK(store.is_ok());
    std::vector<std::byte> payload(
        static_cast<std::size_t>(chunk_bytes), std::byte{1});
    const Shape grid = cs.chunk_bounds_for(Shape{kN, kN});
    core::for_each_index(Box{{0, 0}, grid}, [&](const Index& c) {
      DRX_CHECK(store.value().write_chunk(c, payload).is_ok());
    });
    DRX_CHECK(store.value().flush().is_ok());
  }

  Sample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    // Each rank opens the shared file with its own (cold) node cache —
    // the pHDF5 situation where every process resolves chunk addresses
    // through the on-disk index.
    baselines::BTreeChunkStore::Options opts;
    opts.cache_pages = 32;
    auto store = baselines::BTreeChunkStore::open(
        std::make_unique<pfs::PfsStorage>(fs.open("h5").value()), opts);
    DRX_CHECK(store.is_ok());

    const Distribution dist = Distribution::block(
        cs.chunk_bounds_for(Shape{kN, kN}), comm.size());
    std::vector<std::byte> chunk(static_cast<std::size_t>(chunk_bytes));
    comm.barrier();
    const auto before = fs.server_stats();
    for (const Index& c : dist.chunks_of(comm.rank())) {
      DRX_CHECK(store.value().read_chunk(c, chunk).is_ok());
    }
    comm.barrier();
    if (comm.rank() == 0) {
      const auto after = fs.server_stats();
      sample.read_ms = pfs::Pfs::phase_elapsed_us(before, after) / 1000.0;
      pfs::IoStats delta;
      for (std::size_t s = 0; s < after.size(); ++s) {
        delta += after[s] - before[s];
      }
      sample.requests = delta.read_requests;
    }
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E11: BLOCK zone read of a 512x512 double array — DRX-MP "
              "(replicated computed access) vs pHDF5-like shared B-tree "
              "index, independent I/O\n\n");
  bench::Table table({"P", "drx-coll ms", "drx-ind ms", "btree ms",
                      "drx-coll reqs", "btree reqs", "btree/drx-coll"});
  for (const int p : {1, 2, 4, 8}) {
    const Sample ac = run_drx(p, /*collective=*/true);
    const Sample ai = run_drx(p, /*collective=*/false);
    const Sample b = run_btree(p);
    table.add_row(
        {bench::strf("%d", p), bench::strf("%.1f", ac.read_ms),
         bench::strf("%.1f", ai.read_ms), bench::strf("%.1f", b.read_ms),
         bench::strf("%llu", static_cast<unsigned long long>(ac.requests)),
         bench::strf("%llu", static_cast<unsigned long long>(b.requests)),
         bench::strf("%.1fx", b.read_ms / ac.read_ms)});
  }
  table.print();
  std::printf("\nexpected shape: equal payload traffic, but the B-tree "
              "path adds per-rank index-node reads and per-chunk requests, "
              "so btree/drx-coll stays above 1 at every P. Independent DRX "
              "fragments at high P (zone shape vs axial layout) — exactly "
              "the case the paper routes through collective I/O.\n");
  return 0;
}
