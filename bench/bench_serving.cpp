// Serving experiment — the sharded ChunkCache and the drx::serve session
// layer under concurrent clients (docs/SERVING.md; ROADMAP item 1).
//
// Two tables:
//
//  bench_serving_scaling (closed loop): T threads hammer a shared
//  CachedDrxFile with chunk-aligned box reads (5% writes) over a
//  resident working set, across cache configurations:
//    - 1 shard, fast path off  — the pre-sharding cache (baseline),
//    - 8 shards, fast path off — per-shard locking alone,
//    - 8 shards, fast path on  — plus the lock-free resident-read path.
//  Reported: throughput, speedup vs baseline, lock_wait p95 (the PR6
//  stage histogram — the locking cost made visible), fast-hit fraction.
//  Expected shape: sharding relieves mutex contention and the fast path
//  removes the mutex from resident reads entirely, so the bottom row
//  should clear 2x the baseline with a collapsed lock_wait tail.
//
//  bench_serving (open loop): M sessions (M >> workers) submit requests
//  at a fixed arrival rate through a Server; per-request latency is
//  recorded exactly (submit-to-completion) and reported as p50/p95/p99,
//  plus the achieved rate and the cache shard-imbalance ratio that the
//  drx_doctor cache-shard-imbalance detector gates on. Open-loop
//  arrivals, unlike closed-loop, expose queueing delay: a saturated
//  server shows it as a p99 cliff, not a throughput plateau.
//
// With DRX_METRICS_PORT set, the embedded exporter is live during the
// run; DRX_SCRAPE_OUT additionally triggers one mid-run self-scrape of
// /metrics over real HTTP (while requests are in flight) and saves the
// exposition — the CI perf-smoke step lints it with
// scripts/check_exposition.py to prove a live scrape returns well-formed
// serve.* and core.cache.* series.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/chunk_cache.hpp"
#include "io/config.hpp"
#include "obs/exporter.hpp"
#include "obs/opctx.hpp"
#include "obs/trace.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::DrxFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

constexpr std::uint64_t kN = 512;
constexpr std::uint64_t kChunk = 16;
constexpr std::uint64_t kChunksPerDim = kN / kChunk;
constexpr std::size_t kElem = sizeof(double);
constexpr std::size_t kChunkBytes = kChunk * kChunk * kElem;
// Working set: 8x8 block of chunks (64) inside a 128-chunk cache, so the
// steady state is all-resident — the regime the fast path targets.
constexpr std::uint64_t kHotDim = 8;
constexpr std::size_t kCacheChunks = 128;

DrxFile make_array() {
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           Shape{kN, kN}, Shape{kChunk, kChunk}, options);
  DRX_CHECK(f.is_ok());
  return std::move(f).value();
}

Box chunk_box(std::uint64_t cr, std::uint64_t cc) {
  return Box{Index{cr * kChunk, cc * kChunk},
             Index{(cr + 1) * kChunk, (cc + 1) * kChunk}};
}

Box hot_box(SplitMix64& rng) {
  return chunk_box(rng.next_below(kHotDim), rng.next_below(kHotDim));
}

// ---- closed-loop scaling --------------------------------------------------

struct ScalingConfig {
  const char* label;
  int shards;
  bool fast;
};

struct ScalingResult {
  double ops_per_s = 0;
  std::uint64_t lock_wait_p95_us = 0;
  double fast_frac = 0;
};

std::uint64_t histogram_p95(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return obs::summarize_histogram(h).p95;
  }
  return 0;
}

ScalingResult run_scaling(const ScalingConfig& cfg, int threads, int ops) {
  obs::registry().reset();
  io::set_cache_fast_reads(cfg.fast ? 1 : 0);
  DrxFile file = make_array();
  core::ChunkCache::AsyncOptions async =
      core::ChunkCache::AsyncOptions::from_config();
  async.shards = cfg.shards;
  core::CachedDrxFile pool(file, kCacheChunks, async);

  // Warm the working set so the measured phase is the resident regime.
  std::vector<std::byte> warm(kChunkBytes);
  for (std::uint64_t r = 0; r < kHotDim; ++r) {
    for (std::uint64_t c = 0; c < kHotDim; ++c) {
      DRX_CHECK(pool.read_box(chunk_box(r, c), MemoryOrder::kRowMajor,
                              warm).is_ok());
    }
  }

  // Element-granular accesses: each touch moves 8 bytes, so per-access
  // cost is the cache's pin/unpin locking — the cost sharding and the
  // fast path exist to remove. 95% point reads, 5% point writes.
  constexpr int kBatch = 64;
  const std::uint64_t t0 = obs::trace_now_ns();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&pool, t, ops] {
      SplitMix64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < ops; ++i) {
        obs::OpScope op("bench.serve.access");
        for (int b = 0; b < kBatch; ++b) {
          // Stack-backed index: a heap-allocated Index per 8-byte access
          // would measure the allocator, not the cache.
          const std::uint64_t idx[2] = {rng.next_below(kHotDim * kChunk),
                                        rng.next_below(kHotDim * kChunk)};
          if (rng.next_below(20) == 0) {
            DRX_CHECK(pool.set<double>(idx, 1.0).is_ok());
          } else {
            DRX_CHECK(pool.get<double>(idx).is_ok());
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      static_cast<double>(obs::trace_now_ns() - t0) / 1e9;
  DRX_CHECK(pool.flush().is_ok());

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const core::ChunkCache::Stats stats = pool.cache().stats();
  ScalingResult r;
  r.ops_per_s = static_cast<double>(threads) * ops * kBatch / secs;
  r.lock_wait_p95_us = histogram_p95(snap, "obs.op.stage.lock_wait_us");
  r.fast_frac = stats.hits != 0 ? static_cast<double>(stats.fast_hits) /
                                      static_cast<double>(stats.hits)
                                : 0.0;
  return r;
}

// ---- open-loop serving ----------------------------------------------------

struct ServingResult {
  double achieved_per_s = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  double imbalance = 0;
};

std::uint64_t exact_quantile(std::vector<std::uint64_t>& lat, double q) {
  if (lat.empty()) return 0;
  const std::size_t i = std::min(
      lat.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(lat.size())));
  return lat[i];
}

/// One live self-scrape of the exporter's /metrics, saved to
/// DRX_SCRAPE_OUT. No-op unless both DRX_SCRAPE_OUT and the exporter
/// (DRX_METRICS_PORT) are active, so the regular regression runs — which
/// compare latency cells — never pay for the HTTP round-trip.
void maybe_self_scrape() {
  const char* out_path = std::getenv("DRX_SCRAPE_OUT");
  const std::uint16_t port = obs::exporter_port();
  if (out_path == nullptr || out_path[0] == '\0' || port == 0) return;
  auto body = obs::http_get("127.0.0.1", port, "/metrics");
  DRX_CHECK(body.is_ok());
  std::ofstream out(out_path, std::ios::trunc);
  out << body.value();
  DRX_CHECK(static_cast<bool>(out));
}

ServingResult run_serving(int rate_per_s, int requests, int sessions_n) {
  obs::registry().reset();
  DrxFile file = make_array();
  serve::Server::Options options;
  options.workers = 4;
  options.cache_chunks = kCacheChunks;
  options.cache = core::ChunkCache::AsyncOptions::from_config();
  options.cache.shards = 8;
  serve::Server server(file, options);

  std::vector<serve::Session*> sessions;
  sessions.reserve(static_cast<std::size_t>(sessions_n));
  for (int s = 0; s < sessions_n; ++s) {
    sessions.push_back(&server.open_session());
  }

  // Warm the hot set through the server, then drain so arrivals start
  // against a quiet queue.
  for (std::uint64_t r = 0; r < kHotDim; ++r) {
    for (std::uint64_t c = 0; c < kHotDim; ++c) {
      serve::Request req;
      req.type = serve::RequestType::kPrefetch;
      req.box = chunk_box(r, c);
      sessions[0]->submit(std::move(req), [](const Status&) {});
    }
  }
  server.drain();

  const std::size_t n = static_cast<std::size_t>(requests);
  std::vector<std::uint64_t> latency_us(n, 0);
  std::vector<std::byte> out_pool(n * kChunkBytes);
  std::atomic<std::size_t> done{0};

  SplitMix64 rng(17);
  const auto period =
      std::chrono::nanoseconds(std::uint64_t{1000000000} /
                               static_cast<std::uint64_t>(rate_per_s));
  const std::uint64_t t0 = obs::trace_now_ns();
  auto next = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(next);
    next += period;
    // Halfway through the arrivals the server is demonstrably mid-flight:
    // scrape now so the saved exposition holds live serve.* series.
    if (i == n / 2) maybe_self_scrape();
    serve::Request req;
    req.box = hot_box(rng);
    if (rng.next_below(10) == 0) {
      req.type = serve::RequestType::kWrite;
      req.data.assign(kChunkBytes, std::byte{0x5a});
    } else {
      req.type = serve::RequestType::kRead;
      req.out = std::span<std::byte>(out_pool.data() + i * kChunkBytes,
                                     kChunkBytes);
    }
    const std::uint64_t submit_ns = obs::trace_now_ns();
    std::uint64_t* slot = &latency_us[i];
    sessions[i % sessions.size()]->submit(
        std::move(req), [slot, submit_ns, &done](const Status& st) {
          DRX_CHECK(st.is_ok());
          *slot = (obs::trace_now_ns() - submit_ns) / 1000;
          done.fetch_add(1, std::memory_order_release);
        });
  }
  server.drain();
  const double secs = static_cast<double>(obs::trace_now_ns() - t0) / 1e9;
  DRX_CHECK(done.load(std::memory_order_acquire) == n);
  DRX_CHECK(server.flush().is_ok());

  std::sort(latency_us.begin(), latency_us.end());
  const std::vector<std::uint64_t> accesses =
      server.array().cache().shard_accesses();
  double total = 0;
  double max = 0;
  for (const std::uint64_t a : accesses) {
    total += static_cast<double>(a);
    max = std::max(max, static_cast<double>(a));
  }
  const double mean = total / static_cast<double>(accesses.size());

  ServingResult r;
  r.achieved_per_s = static_cast<double>(n) / secs;
  r.p50_us = exact_quantile(latency_us, 0.50);
  r.p95_us = exact_quantile(latency_us, 0.95);
  r.p99_us = exact_quantile(latency_us, 0.99);
  r.imbalance = mean > 0 ? max / mean : 1.0;
  return r;
}

}  // namespace

int main() {
  const int threads = 8;
  const int ops = 2000;
  std::printf("serving: sharded chunk cache + session layer — closed-loop "
              "%d threads x %d batches of 64 element accesses (5%% "
              "writes) over a resident %llux%llu-chunk hot set, then "
              "open-loop arrivals through drx::serve\n\n",
              threads, ops, static_cast<unsigned long long>(kHotDim),
              static_cast<unsigned long long>(kHotDim));
  (void)kChunksPerDim;

  const ScalingConfig configs[] = {
      {"1 shard, fast off (pre-shard)", 1, false},
      {"8 shards, fast off", 8, false},
      {"8 shards, fast on", 8, true},
  };
  bench::Table scaling({"cache config", "ops/s", "speedup",
                        "lock_wait p95 us", "fast-hit frac"});
  double baseline = 0;
  for (const ScalingConfig& cfg : configs) {
    const ScalingResult r = run_scaling(cfg, threads, ops);
    if (baseline == 0) baseline = r.ops_per_s;
    scaling.add_row({cfg.label, bench::strf("%.0f", r.ops_per_s),
                     bench::strf("%.2fx", r.ops_per_s / baseline),
                     bench::strf("%llu", static_cast<unsigned long long>(
                                             r.lock_wait_p95_us)),
                     bench::strf("%.2f", r.fast_frac)});
  }
  io::set_cache_fast_reads(-1);  // back to DRX_CACHE_FAST_READS
  scaling.print();
  bench::write_json_report("bench_serving_scaling", scaling);

  std::printf("\nopen-loop: 16 sessions over 4 workers, 8 shards — fixed "
              "arrival rate, exact per-request latency\n\n");
  bench::Table serving({"arrival/s", "achieved/s", "p50 us", "p95 us",
                        "p99 us", "shard imbalance"});
  for (const int rate : {2000, 8000}) {
    const ServingResult r = run_serving(rate, 2000, 16);
    serving.add_row({bench::strf("%d/s", rate),
                     bench::strf("%.0f", r.achieved_per_s),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(r.p50_us)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(r.p95_us)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(r.p99_us)),
                     bench::strf("%.2f", r.imbalance)});
  }
  serving.print();
  bench::write_json_report("bench_serving", serving);

  std::printf("\nexpected shape: sharding + the lock-free resident-read "
              "path clear >= 2x the single-lock baseline on the read-mostly "
              "mix with a collapsed lock_wait tail; open-loop p99 stays "
              "bounded while the arrival rate is below saturation, and the "
              "shard-imbalance ratio stays near 1 on this uniform hot set "
              "(drx_doctor flags it at >= 1.5).\n");
  return 0;
}
