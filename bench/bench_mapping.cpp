// Experiment E2 — computed access (F*) vs B-tree chunk indexing
// (DESIGN.md §4.2; paper Sec. V: "the chunks can be addressed by a
// computed access function in a manner similar to hashing").
//
// google-benchmark microbenchmarks:
//   - F* address computation as the expansion count E grows,
//   - F*^-1 inverse mapping,
//   - conventional row-major linearization (the lower bound),
//   - B-tree lookups with warm and cold node caches (the HDF5 path).
//
// Expected shape: F* stays within a small constant factor of the plain
// row-major computation and grows only logarithmically with E; warm
// B-tree lookups cost a pointer chase per level; cold B-tree lookups pay
// storage reads and are orders of magnitude slower.
#include <benchmark/benchmark.h>

#include <array>

#include "baselines/btree_chunk_store.hpp"
#include "baselines/order_mappings.hpp"
#include "core/axial_mapping.hpp"
#include "util/rng.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::AxialMapping;
using core::Index;
using core::Shape;

namespace {

/// Builds a 3-D mapping grown through `expansions` interleaved extensions
/// (worst case for E: every extension is interrupted).
AxialMapping grown_mapping(int expansions) {
  AxialMapping m(Shape{4, 4, 4});
  for (int i = 0; i < expansions; ++i) {
    m.extend(static_cast<std::size_t>(i) % 3, 1);
  }
  return m;
}

std::vector<Index> random_indices(const AxialMapping& m, std::size_t n) {
  SplitMix64 rng(99);
  std::vector<Index> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Index idx(m.rank());
    for (std::size_t d = 0; d < m.rank(); ++d) {
      idx[d] = rng.next_below(m.bounds()[d]);
    }
    out.push_back(std::move(idx));
  }
  return out;
}

void BM_FStar(benchmark::State& state) {
  const AxialMapping m = grown_mapping(static_cast<int>(state.range(0)));
  const auto indices = random_indices(m, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.address_of(indices[i++ & 1023]));
  }
  state.SetLabel("E=" + std::to_string(m.total_records()));
}
BENCHMARK(BM_FStar)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

void BM_FStarInverse(benchmark::State& state) {
  const AxialMapping m = grown_mapping(static_cast<int>(state.range(0)));
  SplitMix64 rng(7);
  std::vector<std::uint64_t> addrs(1024);
  for (auto& a : addrs) a = rng.next_below(m.total_chunks());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.index_of(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_FStarInverse)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

void BM_RowMajorLinearize(benchmark::State& state) {
  const AxialMapping m = grown_mapping(64);
  const baselines::RowMajorMapping rm(m.bounds());
  const auto indices = random_indices(m, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm.address_of(indices[i++ & 1023]));
  }
}
BENCHMARK(BM_RowMajorLinearize);

void BM_BTreeLookupWarm(benchmark::State& state) {
  const auto nchunks = static_cast<std::uint64_t>(state.range(0));
  baselines::BTreeChunkStore::Options opts;
  opts.cache_pages = 1 << 20;  // everything stays cached
  auto store = baselines::BTreeChunkStore::create(
      std::make_unique<pfs::MemStorage>(), 3, 64, opts);
  DRX_CHECK(store.is_ok());
  std::vector<std::byte> chunk(64, std::byte{1});
  for (std::uint64_t v = 0; v < nchunks; ++v) {
    const std::uint64_t key[] = {v % 97, (v / 97) % 89, v / (97 * 89)};
    DRX_CHECK(store.value().write_chunk(key, chunk).is_ok());
  }
  SplitMix64 rng(5);
  std::vector<std::array<std::uint64_t, 3>> keys(1024);
  for (auto& k : keys) {
    const std::uint64_t v = rng.next_below(nchunks);
    k = {v % 97, (v / 97) % 89, v / (97 * 89)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.value().lookup(keys[i++ & 1023]).value());
  }
}
BENCHMARK(BM_BTreeLookupWarm)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLookupCold(benchmark::State& state) {
  const auto nchunks = static_cast<std::uint64_t>(state.range(0));
  baselines::BTreeChunkStore::Options opts;
  opts.cache_pages = 8;  // thrashes: nearly every level misses
  auto store = baselines::BTreeChunkStore::create(
      std::make_unique<pfs::MemStorage>(), 3, 64, opts);
  DRX_CHECK(store.is_ok());
  std::vector<std::byte> chunk(64, std::byte{1});
  for (std::uint64_t v = 0; v < nchunks; ++v) {
    const std::uint64_t key[] = {v % 97, (v / 97) % 89, v / (97 * 89)};
    DRX_CHECK(store.value().write_chunk(key, chunk).is_ok());
  }
  SplitMix64 rng(5);
  std::vector<std::array<std::uint64_t, 3>> keys(1024);
  for (auto& k : keys) {
    const std::uint64_t v = rng.next_below(nchunks);
    k = {v % 97, (v / 97) % 89, v / (97 * 89)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.value().lookup(keys[i++ & 1023]).value());
  }
  state.counters["node_fetches_per_lookup"] =
      static_cast<double>(store.value().stats().node_fetches) /
      static_cast<double>(store.value().stats().lookups);
}
BENCHMARK(BM_BTreeLookupCold)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
