// Experiment E4 — collective zone I/O scaling with process count
// (DESIGN.md §4.2; paper Sec. II/IV: zones are read and written with
// collective MPI-IO over the parallel file system).
//
// Workload: a fixed 512x512 array of doubles (16x16-element chunks) is
// BLOCK-distributed over P processes; every process reads and then writes
// its zone, collectively and independently. The PFS has 8 servers.
// Expected shape: collective I/O wins decisively at small-to-moderate P,
// where per-rank zones interleave in file space and independent access is
// request- and seek-heavy; as P grows and each zone becomes a few large
// locally-contiguous runs, the two converge and independent reads can even
// edge ahead (two-phase pays its redistribution bookkeeping) — the classic
// two-phase crossover reported for ROMIO-style implementations.
#include <vector>

#include "bench_util.hpp"
#include "codec/codec.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::MemoryOrder;
using core::Shape;

namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 8;
  c.stripe_size = 64 * 1024;
  return c;
}

struct Sample {
  double read_ms = 0, write_ms = 0;
  std::uint64_t requests = 0, seeks = 0;
};

Sample run(int nprocs, bool collective) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{512, 512},
                               Shape{16, 16}, options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()), 1.5);

    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(buf)),
                                collective)
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        sample.write_ms = phase.elapsed_ms();
      }
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(buf)),
                               collective)
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        sample.read_ms = phase.elapsed_ms();
        const auto d = phase.delta();
        sample.requests = d.read_requests;
        sample.seeks = d.seeks;
      }
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

// ---- compressed collective read (docs/COMPRESSION.md) ----------------------
//
// DRX-MP serves compressed arrays read-only: the file view is built from
// the per-chunk slot table, so each rank's collective read moves the
// stored bytes, not the logical ones. The array is pre-created with the
// serial writer straight onto the striped PFS (the production handoff:
// one writer compresses, many readers scan).

struct CompressedSample {
  double read_ms = 0;
  double pfs_mb = 0;     ///< bytes actually read off the servers
  double eff_mbps = 0;   ///< logical zone bytes / elapsed
};

CompressedSample run_compressed_read(int nprocs, bool compressed) {
  pfs::Pfs fs(cfg());
  {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    options.codec =
        compressed ? drx::codec::CodecId::kRle : drx::codec::CodecId::kNone;
    auto meta_h = fs.create("c.xmd", /*overwrite=*/true);
    auto data_h = fs.create("c.xta", /*overwrite=*/true);
    DRX_CHECK(meta_h.is_ok() && data_h.is_ok());
    auto f = DrxFile::create(
        std::make_unique<pfs::PfsStorage>(std::move(meta_h).value()),
        std::make_unique<pfs::PfsStorage>(std::move(data_h).value()),
        Shape{512, 512}, Shape{16, 16}, options);
    DRX_CHECK(f.is_ok());
    std::vector<double> image(512 * 512);
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<double>(i / 512);  // row-constant: compressible
    }
    DRX_CHECK(f.value()
                  .write_box(Box{{0, 0}, {512, 512}}, MemoryOrder::kRowMajor,
                             std::as_bytes(std::span<const double>(image)))
                  .is_ok());
    DRX_CHECK(f.value().flush().is_ok());
  }

  CompressedSample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    auto f = DrxMpFile::open(comm, fs, "c").value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()));

    comm.barrier();
    bench::PfsPhase phase(fs);
    DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                             std::as_writable_bytes(std::span<double>(buf)),
                             /*collective=*/true)
                  .is_ok());
    comm.barrier();
    if (comm.rank() == 0) {
      sample.read_ms = phase.elapsed_ms();
      const auto d = phase.delta();
      sample.pfs_mb = static_cast<double>(d.bytes_read) / 1e6;
      const double logical_mb = 512.0 * 512.0 * 8.0 / 1e6;
      sample.eff_mbps =
          sample.read_ms > 0 ? logical_mb / (sample.read_ms / 1000.0) : 0.0;
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E4: BLOCK zone read+write of a 512x512 double array, 8 PFS "
              "servers\n\n");
  bench::Table table({"P", "mode", "read ms", "write ms", "read reqs",
                      "read seeks"});
  for (const int p : {1, 2, 4, 8, 16}) {
    for (const bool collective : {true, false}) {
      const Sample s = run(p, collective);
      table.add_row({bench::strf("%d", p),
                     collective ? "collective" : "independent",
                     bench::strf("%.1f", s.read_ms),
                     bench::strf("%.1f", s.write_ms),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(s.requests)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(s.seeks))});
    }
  }
  table.print();
  bench::write_json_report("bench_collective_io", table);

  std::printf("\ncompressed collective read: serially pre-compressed "
              "512x512 double array (per-chunk RLE), BLOCK zones read "
              "collectively via the slot-table file view\n\n");
  bench::Table ctable({"P", "mode", "read ms", "PFS MB", "eff MB/s",
                       "MB saved"});
  for (const int p : {1, 4, 8}) {
    const CompressedSample raw = run_compressed_read(p, /*compressed=*/false);
    const CompressedSample rle = run_compressed_read(p, /*compressed=*/true);
    // "P=1" (not bare "1"): the regression checker keys rows by their
    // leading non-numeric cells, so the label must not parse as a number.
    ctable.add_row({bench::strf("P=%d", p), "raw",
                    bench::strf("%.1f", raw.read_ms),
                    bench::strf("%.2f", raw.pfs_mb),
                    bench::strf("%.1f", raw.eff_mbps), ""});
    ctable.add_row({bench::strf("P=%d", p), "rle",
                    bench::strf("%.1f", rle.read_ms),
                    bench::strf("%.2f", rle.pfs_mb),
                    bench::strf("%.1f", rle.eff_mbps),
                    bench::strf("%.2f", raw.pfs_mb - rle.pfs_mb)});
  }
  ctable.print();
  bench::write_json_report("bench_collective_io_compression", ctable);
  std::printf("\nexpected shape: collective <= independent while zones "
              "interleave (small/moderate P); the two converge at high P "
              "where per-zone runs are already large and contiguous.\n");
  return 0;
}
