// Experiment E4 — collective zone I/O scaling with process count
// (DESIGN.md §4.2; paper Sec. II/IV: zones are read and written with
// collective MPI-IO over the parallel file system).
//
// Workload: a fixed 512x512 array of doubles (16x16-element chunks) is
// BLOCK-distributed over P processes; every process reads and then writes
// its zone, collectively and independently. The PFS has 8 servers.
// Expected shape: collective I/O wins decisively at small-to-moderate P,
// where per-rank zones interleave in file space and independent access is
// request- and seek-heavy; as P grows and each zone becomes a few large
// locally-contiguous runs, the two converge and independent reads can even
// edge ahead (two-phase pays its redistribution bookkeeping) — the classic
// two-phase crossover reported for ROMIO-style implementations.
#include <vector>

#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::MemoryOrder;
using core::Shape;

namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 8;
  c.stripe_size = 64 * 1024;
  return c;
}

struct Sample {
  double read_ms = 0, write_ms = 0;
  std::uint64_t requests = 0, seeks = 0;
};

Sample run(int nprocs, bool collective) {
  pfs::Pfs fs(cfg());
  Sample sample;
  simpi::run(nprocs, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{512, 512},
                               Shape{16, 16}, options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()), 1.5);

    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(buf)),
                                collective)
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        sample.write_ms = phase.elapsed_ms();
      }
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(buf)),
                               collective)
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        sample.read_ms = phase.elapsed_ms();
        const auto d = phase.delta();
        sample.requests = d.read_requests;
        sample.seeks = d.seeks;
      }
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E4: BLOCK zone read+write of a 512x512 double array, 8 PFS "
              "servers\n\n");
  bench::Table table({"P", "mode", "read ms", "write ms", "read reqs",
                      "read seeks"});
  for (const int p : {1, 2, 4, 8, 16}) {
    for (const bool collective : {true, false}) {
      const Sample s = run(p, collective);
      table.add_row({bench::strf("%d", p),
                     collective ? "collective" : "independent",
                     bench::strf("%.1f", s.read_ms),
                     bench::strf("%.1f", s.write_ms),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(s.requests)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(s.seeks))});
    }
  }
  table.print();
  bench::write_json_report("bench_collective_io", table);
  std::printf("\nexpected shape: collective <= independent while zones "
              "interleave (small/moderate P); the two converge at high P "
              "where per-zone runs are already large and contiguous.\n");
  return 0;
}
