// Perf smoke — marginal cost of the always-on causal instrumentation
// (docs/OBSERVABILITY.md: OpScope, StageTimer, flight recorder) with
// tracing OFF, the production configuration.
//
// Workload: hot-set cached element reads/writes — cache-hit dominated and
// in-memory, so per-op instrumentation is the largest relative share it
// ever reaches (real workloads bury it under storage time). Each mode
// (flight recorder on = default, flight recorder off) runs the same
// touch sequence; modes alternate across repetitions and the per-mode
// minimum is kept, so one scheduler hiccup cannot skew the ratio.
//
// A second ablation measures the live telemetry plane (windowed metrics
// + Prometheus rendering, docs/OBSERVABILITY.md "Live telemetry"): the
// same workload while a background thread ticks the window engine and
// renders the exposition every few milliseconds — orders of magnitude
// hotter than any real scrape cadence, so the measured ratio
// upper-bounds the production cost. Windows are snapshot differences,
// so the hot path itself never pays; what this row catches is scrape
// interference (registry walks racing the workload).
//
// Expected shape: both the flight-on / flight-off and the window-on /
// window-off wall-time ratios stay under 1.02. CI gates them warn-only
// via check_bench_regression.py --obs-overhead; the wall-ms cells are
// machine-dependent and only the ratio rows are meaningful.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/chunk_cache.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "util/rng.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::CachedDrxFile;
using core::DrxFile;
using core::Shape;

namespace {

constexpr std::uint64_t kN = 256;
constexpr std::uint64_t kChunk = 16;
constexpr int kTouches = 60000;
constexpr int kReps = 5;

DrxFile make_array() {
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           Shape{kN, kN}, Shape{kChunk, kChunk}, options);
  DRX_CHECK(f.is_ok());
  return std::move(f).value();
}

/// One pass of hot-set gets/sets; returns wall nanoseconds.
double run_pass(CachedDrxFile& cached) {
  SplitMix64 rng(42);
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < kTouches; ++t) {
    std::uint64_t idx[2];
    if (rng.next_below(10) < 9) {
      idx[0] = rng.next_below(2 * kChunk);
      idx[1] = rng.next_below(4 * kChunk);
    } else {
      idx[0] = rng.next_below(kN);
      idx[1] = rng.next_below(kN);
    }
    if ((t & 7) == 0) {
      DRX_CHECK(cached.set<double>(idx, 1.0).is_ok());
    } else {
      DRX_CHECK(cached.get<double>(idx).is_ok());
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

}  // namespace

int main() {
  DRX_CHECK(!obs::trace_enabled());  // production config: tracing off
  DrxFile file = make_array();
  CachedDrxFile cached(file, /*capacity_chunks=*/64);

  // Warm the cache and the code paths once outside measurement.
  obs::set_flight_enabled(true);
  (void)run_pass(cached);

  double best_on = 0.0;
  double best_off = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::set_flight_enabled(true);
    const double on = run_pass(cached);
    obs::set_flight_enabled(false);
    const double off = run_pass(cached);
    if (rep == 0 || on < best_on) best_on = on;
    if (rep == 0 || off < best_off) best_off = off;
  }
  obs::set_flight_enabled(true);  // restore the always-on default

  // Live telemetry plane ablation: window-on runs under an aggressive
  // background scraper (tick + full Prometheus render every 5 ms);
  // window-off disables the window engine and runs unobserved.
  double best_won = 0.0;
  double best_woff = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::set_window_enabled(true);
    std::atomic<bool> stop{false};
    std::thread scraper([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::window_tick();
        (void)obs::render_prometheus();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    const double won = run_pass(cached);
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    obs::set_window_enabled(false);
    const double woff = run_pass(cached);
    if (rep == 0 || won < best_won) best_won = won;
    if (rep == 0 || woff < best_woff) best_woff = woff;
  }
  obs::set_window_enabled(true);  // restore the default
  DRX_CHECK(cached.flush().is_ok());

  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;
  const double window_ratio = best_woff > 0.0 ? best_won / best_woff : 0.0;
  bench::Table table({"mode", "touches", "wall ms", "ns/op"});
  table.add_row({"flight-on", std::to_string(kTouches),
                 bench::strf("%.2f", best_on / 1e6),
                 bench::strf("%.0f", best_on / kTouches)});
  table.add_row({"flight-off", std::to_string(kTouches),
                 bench::strf("%.2f", best_off / 1e6),
                 bench::strf("%.0f", best_off / kTouches)});
  table.add_row({"window-on", std::to_string(kTouches),
                 bench::strf("%.2f", best_won / 1e6),
                 bench::strf("%.0f", best_won / kTouches)});
  table.add_row({"window-off", std::to_string(kTouches),
                 bench::strf("%.2f", best_woff / 1e6),
                 bench::strf("%.0f", best_woff / kTouches)});
  table.add_row({"overhead", bench::strf("%.3f", ratio)});
  table.add_row({"window_overhead", bench::strf("%.3f", window_ratio)});
  table.print();
  std::printf("flight recorder overhead: %.1f%% (gate: < 2%% warn-only)\n",
              (ratio - 1.0) * 100.0);
  std::printf("windowed metrics + scrape overhead: %.1f%% "
              "(gate: < 2%% warn-only)\n",
              (window_ratio - 1.0) * 100.0);
  bench::write_json_report("bench_obs_overhead", table);
  return 0;
}
