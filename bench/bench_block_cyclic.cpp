// Experiment E10 — BLOCK vs BLOCK_CYCLIC(k) load balance (DESIGN.md §4.2;
// paper Sec. V future work: "how to distribute the array by BLOCK
// Cyclic(K) methods" for "relative balanced data distribution").
//
// Workload: a triangular access pattern (only chunks with i0 >= i1 are
// touched — the classic skew of factorization codes) over a 64x64 chunk
// grid. We report per-process chunk counts under BLOCK and under
// BLOCK_CYCLIC with several block sizes.
// Expected shape: BLOCK leaves corner processes nearly idle (max/mean
// far above 1); BLOCK_CYCLIC with small blocks evens the spread toward
// max/mean ~1.
#include <vector>

#include "bench_util.hpp"
#include "core/zone.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Distribution;
using core::Index;
using core::Shape;

namespace {

struct Balance {
  std::uint64_t min = 0, max = 0;
  double max_over_mean = 0;
};

Balance measure(const Distribution& dist, int nprocs) {
  std::vector<std::uint64_t> touched(static_cast<std::size_t>(nprocs), 0);
  std::uint64_t total = 0;
  const Shape& bounds = dist.chunk_bounds();
  for (std::uint64_t i = 0; i < bounds[0]; ++i) {
    for (std::uint64_t j = 0; j <= i && j < bounds[1]; ++j) {
      ++touched[static_cast<std::size_t>(dist.owner_of(Index{i, j}))];
      ++total;
    }
  }
  Balance b;
  b.min = UINT64_MAX;
  for (std::uint64_t t : touched) {
    b.min = std::min(b.min, t);
    b.max = std::max(b.max, t);
  }
  b.max_over_mean = static_cast<double>(b.max) /
                    (static_cast<double>(total) / nprocs);
  return b;
}

}  // namespace

int main() {
  std::printf("E10: lower-triangular access over a 64x64 chunk grid — "
              "work per process under BLOCK vs BLOCK_CYCLIC(k)\n\n");
  const Shape bounds{64, 64};
  bench::Table table({"P", "distribution", "min chunks", "max chunks",
                      "max/mean"});
  for (const int p : {4, 8, 16}) {
    {
      const Balance b = measure(Distribution::block(bounds, p), p);
      table.add_row({bench::strf("%d", p), "BLOCK",
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(b.min)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(b.max)),
                     bench::strf("%.2f", b.max_over_mean)});
    }
    for (const std::uint64_t bs : {8u, 4u, 2u, 1u}) {
      const Balance b = measure(
          Distribution::block_cyclic(bounds, p, Shape{bs, bs}), p);
      table.add_row({bench::strf("%d", p),
                     bench::strf("BLOCK_CYCLIC(%llu)",
                                 static_cast<unsigned long long>(bs)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(b.min)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(b.max)),
                     bench::strf("%.2f", b.max_over_mean)});
    }
  }
  table.print();
  std::printf("\nexpected shape: BLOCK max/mean ~2 and worsening with P on "
              "triangular skew; BLOCK_CYCLIC approaches 1.0 as the block "
              "size shrinks.\n");
  return 0;
}
