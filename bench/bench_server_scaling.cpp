// Experiment E13 — throughput scaling with PFS I/O server count (the
// cluster-track axis: the paper's testbed is PVFS2, whose throughput
// comes from striping over data servers).
//
// Workload: 8 ranks collectively read the whole 1024x1024 double array
// (BLOCK zones) while the number of simulated I/O servers sweeps 1..16.
// Expected shape: simulated time ~ 1/servers while bandwidth-bound,
// flattening once per-request overheads and the fixed seek floor
// dominate — the standard striping speedup curve.
#include <vector>

#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::MemoryOrder;
using core::Shape;

namespace {

struct Sample {
  double read_ms = 0;
  double write_ms = 0;
};

Sample run(int servers) {
  pfs::PfsConfig c;
  c.num_servers = servers;
  c.stripe_size = 64 * 1024;
  pfs::Pfs fs(c);
  Sample sample;
  simpi::run(8, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{1024, 1024},
                               Shape{32, 32}, options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> buf(static_cast<std::size_t>(zone.volume()), 1.0);
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(buf)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.write_ms = phase.elapsed_ms();
    }
    comm.barrier();
    {
      bench::PfsPhase phase(fs);
      DRX_CHECK(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(buf)))
                    .is_ok());
      comm.barrier();
      if (comm.rank() == 0) sample.read_ms = phase.elapsed_ms();
    }
    DRX_CHECK(f.close().is_ok());
  });
  return sample;
}

}  // namespace

int main() {
  std::printf("E13: collective whole-array read+write (8 MB of doubles, 8 "
              "ranks) vs number of PFS I/O servers\n\n");
  bench::Table table({"servers", "read ms", "write ms", "read speedup"});
  double base_read = 0;
  for (const int s : {1, 2, 4, 8, 16}) {
    const Sample sample = run(s);
    if (s == 1) base_read = sample.read_ms;
    table.add_row({bench::strf("%d", s), bench::strf("%.1f", sample.read_ms),
                   bench::strf("%.1f", sample.write_ms),
                   bench::strf("%.2fx", base_read / sample.read_ms)});
  }
  table.print();
  std::printf("\nexpected shape: speedup grows with server count but is "
              "non-monotonic at points where aggregator domains and stripe "
              "placement misalign (seek-order effects on individual "
              "servers) — the plateau-and-kink striping curve seen on real "
              "PVFS deployments.\n");
  return 0;
}
