// Experiment E7 — one-sided global element access (DESIGN.md §4.2; paper
// Sec. II-A: "An element can be accessed either directly from the file or
// via a remote memory access of participating and cooperating processes").
//
// Workload: 4 ranks hold a BLOCK-distributed array in memory behind a
// GlobalAccessor; each rank performs random gets with a sweep of the
// local-access fraction, plus a put and accumulate pass. Wall-clock
// nanoseconds per operation (thread-backed RMA: memcpy + lock).
// Expected shape: cost grows as the local fraction falls (remote access
// adds ownership lookup + target lock), but stays orders of magnitude
// below any I/O path — the reason GA-style codes keep zones in memory.
#include <atomic>
#include <vector>

#include "bench_util.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::GlobalAccessor;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

constexpr int kRanks = 4;
constexpr std::uint64_t kN = 256;
constexpr int kOpsPerRank = 20000;

double run_gets(int local_percent) {
  pfs::PfsConfig c;
  c.num_servers = 2;
  pfs::Pfs fs(c);
  std::atomic<double> total_ns{0};
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{kN, kN}, Shape{32, 32},
                               options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> local(static_cast<std::size_t>(zone.volume()), 1.0);
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(local)));
    ga.fence();

    // Pre-generate target indices with the requested local fraction.
    SplitMix64 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    std::vector<Index> targets;
    targets.reserve(kOpsPerRank);
    while (targets.size() < kOpsPerRank) {
      Index idx{rng.next_below(kN), rng.next_below(kN)};
      const bool want_local =
          rng.next_below(100) < static_cast<std::uint64_t>(local_percent);
      if (want_local) {
        idx = {zone.lo[0] + rng.next_below(zone.hi[0] - zone.lo[0]),
               zone.lo[1] + rng.next_below(zone.hi[1] - zone.lo[1])};
      } else if (zone.contains(idx)) {
        continue;
      }
      targets.push_back(std::move(idx));
    }
    comm.barrier();

    Stopwatch watch;
    double sum = 0;
    for (const Index& idx : targets) sum += ga.get<double>(idx);
    const double ns = watch.elapsed_seconds() * 1e9 / kOpsPerRank;
    DRX_CHECK(sum > 0);
    ga.fence();
    if (comm.rank() == 0) total_ns = ns;
    DRX_CHECK(f.close().is_ok());
  });
  return total_ns;
}

double run_op(bool accumulate) {
  pfs::PfsConfig c;
  c.num_servers = 2;
  pfs::Pfs fs(c);
  std::atomic<double> total_ns{0};
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto f = DrxMpFile::create(comm, fs, "a", Shape{kN, kN}, Shape{32, 32},
                               options)
                 .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> local(static_cast<std::size_t>(zone.volume()), 0.0);
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(local)));
    ga.fence();
    SplitMix64 rng(static_cast<std::uint64_t>(comm.rank()) + 5);
    std::vector<Index> targets;
    for (int i = 0; i < kOpsPerRank; ++i) {
      targets.push_back(Index{rng.next_below(kN), rng.next_below(kN)});
    }
    comm.barrier();
    Stopwatch watch;
    for (const Index& idx : targets) {
      if (accumulate) {
        ga.accumulate<double>(idx, 1.0);
      } else {
        ga.put<double>(idx, 3.0);
      }
    }
    const double ns = watch.elapsed_seconds() * 1e9 / kOpsPerRank;
    ga.fence();
    if (comm.rank() == 0) total_ns = ns;
    DRX_CHECK(f.close().is_ok());
  });
  return total_ns;
}

}  // namespace

int main() {
  std::printf("E7: one-sided access to a BLOCK-distributed 256x256 array, "
              "%d ranks, %d ops/rank (wall-clock)\n\n", kRanks, kOpsPerRank);
  bench::Table table({"operation", "local %", "ns/op"});
  for (const int pct : {100, 75, 50, 25, 0}) {
    table.add_row({"get", bench::strf("%d", pct),
                   bench::strf("%.0f", run_gets(pct))});
  }
  table.add_row({"put (random)", "-", bench::strf("%.0f", run_op(false))});
  table.add_row(
      {"accumulate (random)", "-", bench::strf("%.0f", run_op(true))});
  table.print();
  std::printf("\nexpected shape: ns/op rises as the local fraction falls; "
              "accumulate > put > get (locking + read-modify-write). All "
              "stay ~10^3-10^5x below per-element file I/O.\n");
  return 0;
}
