// Experiment E3 — no out-of-core transposition (DESIGN.md §4.2).
//
// Claim (paper Sec. I/V): "an allocation that uses row-major ordering
// performs poorly if an application subsequently desires the array in
// column-major order"; with chunked storage plus F*^-1 "there is no need
// for out-of-core array element transposition since this can be done on
// the fly as the array elements are read into core".
//
// Workload: a row-major-written R x C matrix of doubles is consumed in
// column-major order through three paths:
//   (a) DRX sequential chunk scan with on-the-fly scatter,
//   (b) conventional row-major file read column by column (nested loops),
//   (c) conventional row-major file read fully row-major, then an explicit
//       in-memory transpose (best case for the baseline; needs 2x memory).
// Expected shape: (a) ~ (c) in I/O cost and both far cheaper than (b);
// (a) needs no second buffer, which is the paper's point.
#include <memory>
#include <vector>

#include "baselines/rowmajor_file.hpp"
#include "bench_util.hpp"
#include "core/drx_file.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::DrxFile;
using core::MemoryOrder;
using core::Shape;

namespace {

struct Cost {
  std::uint64_t requests = 0;
  std::uint64_t seeks = 0;
  double ms = 0;
};

Cost as_cost(const pfs::IoStats& d) {
  return Cost{d.read_requests, d.seeks, d.busy_us / 1000.0};
}

}  // namespace

int main() {
  std::printf("E3: column-major consumption of a row-major-written R x C "
              "matrix of doubles\n\n");
  bench::Table table({"R x C", "path", "requests", "seeks", "sim ms",
                      "vs drx"});
  for (const std::uint64_t n : {128u, 256u, 512u}) {
    const std::uint64_t rows = n;
    const std::uint64_t cols = n + n / 2;
    const Box full{{0, 0}, {rows, cols}};
    std::vector<double> matrix(
        static_cast<std::size_t>(rows * cols));
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      matrix[i] = static_cast<double>(i);
    }
    std::vector<double> out(matrix.size());

    // (a) DRX chunked scan.
    double drx_ms = 0;
    {
      DrxFile::Options options;
      options.dtype = core::ElementType::kDouble;
      auto data = std::make_unique<pfs::MemStorage>();
      pfs::MemStorage* raw = data.get();
      auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                               std::move(data), Shape{rows, cols},
                               Shape{32, 32}, options);
      DRX_CHECK(f.is_ok());
      DRX_CHECK(f.value()
                    .write_box(full, MemoryOrder::kRowMajor,
                               std::as_bytes(std::span<const double>(matrix)))
                    .is_ok());
      const auto before = raw->stats();
      DRX_CHECK(f.value()
                    .scan_read_all(
                        MemoryOrder::kColMajor,
                        std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
      const Cost c = as_cost(raw->stats() - before);
      drx_ms = c.ms;
      table.add_row({bench::strf("%llux%llu",
                                 static_cast<unsigned long long>(rows),
                                 static_cast<unsigned long long>(cols)),
                     "drx chunked scan",
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(c.requests)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(c.seeks)),
                     bench::strf("%.1f", c.ms), "1.0x"});
    }

    auto make_rowmajor = [&](pfs::MemStorage** raw) {
      auto storage = std::make_unique<pfs::MemStorage>();
      *raw = storage.get();
      auto f = baselines::RowMajorFile::create(std::move(storage),
                                               Shape{rows, cols}, 8);
      DRX_CHECK(f.is_ok());
      DRX_CHECK(f.value()
                    .write_box(full, MemoryOrder::kRowMajor,
                               std::as_bytes(std::span<const double>(matrix)))
                    .is_ok());
      return std::move(f).value();
    };

    // (b) strided column-by-column reads.
    {
      pfs::MemStorage* raw = nullptr;
      auto f = make_rowmajor(&raw);
      const auto before = raw->stats();
      std::vector<double> column(rows);
      for (std::uint64_t j = 0; j < cols; ++j) {
        DRX_CHECK(f.read_box(Box{{0, j}, {rows, j + 1}},
                             MemoryOrder::kColMajor,
                             std::as_writable_bytes(std::span<double>(column)))
                      .is_ok());
      }
      const Cost c = as_cost(raw->stats() - before);
      table.add_row({"", "rowmajor strided cols",
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(c.requests)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(c.seeks)),
                     bench::strf("%.1f", c.ms),
                     bench::strf("%.1fx", c.ms / drx_ms)});
    }

    // (c) full row-major read + explicit in-memory transpose.
    {
      pfs::MemStorage* raw = nullptr;
      auto f = make_rowmajor(&raw);
      const auto before = raw->stats();
      std::vector<double> staged(matrix.size());
      DRX_CHECK(f.read_box(full, MemoryOrder::kRowMajor,
                           std::as_writable_bytes(std::span<double>(staged)))
                    .is_ok());
      for (std::uint64_t i = 0; i < rows; ++i) {
        for (std::uint64_t j = 0; j < cols; ++j) {
          out[j * rows + i] = staged[i * cols + j];
        }
      }
      const Cost c = as_cost(raw->stats() - before);
      table.add_row({"", "rowmajor read + explicit transpose (2x memory)",
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(c.requests)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(c.seeks)),
                     bench::strf("%.1f", c.ms),
                     bench::strf("%.1fx", c.ms / drx_ms)});
    }
  }
  table.print();
  std::printf("\nexpected shape: the strided path degrades with C (one "
              "request per row per column); the DRX scan matches the "
              "explicit-transpose I/O cost without the extra buffer.\n");
  return 0;
}
