// Shared helpers for the experiment harness: aligned table printing and
// simulated-time measurement around PFS phases.
//
// Each bench binary regenerates one experiment from DESIGN.md §4.2 and
// prints a self-contained table; absolute numbers come from the PFS cost
// model (DESIGN.md §2), so only the *shapes* — who wins, by what factor,
// where crossovers fall — are meaningful.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "pfs/pfs.hpp"

namespace drx::bench {

/// printf-append into a std::string.
inline std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Minimal fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("| ");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%-*s | ", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable bench output: when DRX_BENCH_JSON=<path> is set,
/// appends one JSON document per call — the result table plus a snapshot
/// of the obs metrics registry (rank registries have already folded into
/// the process registry once simpi::run returns, so the snapshot covers
/// the whole experiment). No-op when the variable is unset.
inline void write_json_report(const std::string& bench_name,
                              const Table& table) {
  const char* path = std::getenv("DRX_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_name);
  w.key("table").begin_object();
  w.key("headers").begin_array();
  for (const auto& h : table.headers()) w.value(h);
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& row : table.rows()) {
    w.begin_array();
    for (const auto& cell : row) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  w.key("metrics");
  obs::metrics_to_json(obs::registry().snapshot(), w);
  w.end_object();
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write DRX_BENCH_JSON=%s\n", path);
    return;
  }
  out << w.str() << '\n';
}

/// Captures per-server stats around a phase and reports simulated elapsed
/// time (max per-server busy delta) plus aggregate deltas.
class PfsPhase {
 public:
  explicit PfsPhase(const pfs::Pfs& fs)
      : fs_(&fs), before_(fs.server_stats()) {}

  [[nodiscard]] double elapsed_ms() const {
    return pfs::Pfs::phase_elapsed_us(before_, fs_->server_stats()) / 1000.0;
  }

  [[nodiscard]] pfs::IoStats delta() const {
    pfs::IoStats total;
    const auto after = fs_->server_stats();
    for (std::size_t i = 0; i < after.size(); ++i) {
      total += after[i] - before_[i];
    }
    return total;
  }

 private:
  const pfs::Pfs* fs_;
  std::vector<pfs::IoStats> before_;
};

}  // namespace drx::bench
