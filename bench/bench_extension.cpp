// Experiment E1 — extension without reorganization (DESIGN.md §4.2).
//
// Claim (paper Sec. I): conventional array files limit expansion to one
// dimension; expanding any other dimension requires a storage
// reorganization "that can be very expensive". DRX appends a segment and
// never moves stored data; an HDF5-like B-tree chunk store also avoids
// data movement but pays per-chunk index maintenance.
//
// Workload: a 2-D array of doubles grows along the NON-major dimension in
// S equal steps. We report total payload bytes moved and simulated time.
// Expected shape: row-major cost grows quadratically with S (each step
// rewrites the whole file); DRX and B-tree stay linear, with DRX cheaper
// than the B-tree (no index pages).
#include <memory>
#include <vector>

#include "baselines/btree_chunk_store.hpp"
#include "baselines/rowmajor_file.hpp"
#include "bench_util.hpp"
#include "core/drx_file.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::DrxFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

struct Cost {
  std::uint64_t bytes = 0;
  double ms = 0;
};

Cost run_drx(std::uint64_t rows, std::uint64_t cols0, std::uint64_t steps,
             std::uint64_t delta) {
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  auto data = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* raw = data.get();
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::move(data), Shape{rows, cols0},
                           Shape{16, 16}, options);
  DRX_CHECK(f.is_ok());
  const auto before = raw->stats();
  for (std::uint64_t s = 0; s < steps; ++s) {
    DRX_CHECK(f.value().extend(1, delta).is_ok());
  }
  const auto d = raw->stats() - before;
  return Cost{d.bytes_written + d.bytes_read, d.busy_us / 1000.0};
}

Cost run_rowmajor(std::uint64_t rows, std::uint64_t cols0,
                  std::uint64_t steps, std::uint64_t delta) {
  auto storage = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* raw = storage.get();
  auto f = baselines::RowMajorFile::create(std::move(storage),
                                           Shape{rows, cols0}, 8);
  DRX_CHECK(f.is_ok());
  const auto before = raw->stats();
  for (std::uint64_t s = 0; s < steps; ++s) {
    DRX_CHECK(f.value().extend(1, delta).is_ok());
  }
  const auto d = raw->stats() - before;
  return Cost{d.bytes_written + d.bytes_read, d.busy_us / 1000.0};
}

Cost run_btree(std::uint64_t rows, std::uint64_t cols0, std::uint64_t steps,
               std::uint64_t delta) {
  auto storage = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* raw = storage.get();
  const core::ChunkSpace cs(Shape{16, 16}, MemoryOrder::kRowMajor);
  auto store = baselines::BTreeChunkStore::create(std::move(storage), 2,
                                                  cs.elements_per_chunk() * 8);
  DRX_CHECK(store.is_ok());
  const std::vector<std::byte> zero_chunk(
      static_cast<std::size_t>(cs.elements_per_chunk() * 8), std::byte{0});
  // Initial allocation.
  Shape bounds{rows, cols0};
  Shape grid = cs.chunk_bounds_for(bounds);
  core::for_each_index(Box{{0, 0}, grid}, [&](const Index& c) {
    DRX_CHECK(store.value().write_chunk(c, zero_chunk).is_ok());
  });
  const auto before = raw->stats();
  for (std::uint64_t s = 0; s < steps; ++s) {
    bounds[1] += delta;
    const Shape new_grid = cs.chunk_bounds_for(bounds);
    // Allocate only the chunks the extension adds.
    core::for_each_index(Box{{0, grid[1]}, {new_grid[0], new_grid[1]}},
                         [&](const Index& c) {
                           DRX_CHECK(
                               store.value().write_chunk(c, zero_chunk)
                                   .is_ok());
                         });
    grid = new_grid;
  }
  DRX_CHECK(store.value().flush().is_ok());
  const auto d = raw->stats() - before;
  return Cost{d.bytes_written + d.bytes_read, d.busy_us / 1000.0};
}

}  // namespace

int main() {
  std::printf("E1: grow A[R][C] along the non-major dimension in S steps "
              "(delta = 64 columns per step)\n");
  std::printf("totals are payload bytes moved during the extensions and "
              "simulated time\n\n");
  bench::Table table({"R x C0", "steps", "drx MB", "drx ms", "btree MB",
                      "btree ms", "rowmajor MB", "rowmajor ms",
                      "rowmajor/drx"});
  for (const std::uint64_t rows : {256u, 512u}) {
    for (const std::uint64_t steps : {1u, 2u, 4u, 8u, 16u}) {
      const std::uint64_t cols0 = 256;
      const std::uint64_t delta = 64;
      const Cost a = run_drx(rows, cols0, steps, delta);
      const Cost b = run_btree(rows, cols0, steps, delta);
      const Cost c = run_rowmajor(rows, cols0, steps, delta);
      table.add_row({bench::strf("%llu x %llu",
                                 static_cast<unsigned long long>(rows),
                                 static_cast<unsigned long long>(cols0)),
                     bench::strf("%llu",
                                 static_cast<unsigned long long>(steps)),
                     bench::strf("%.2f", static_cast<double>(a.bytes) / 1e6),
                     bench::strf("%.1f", a.ms),
                     bench::strf("%.2f", static_cast<double>(b.bytes) / 1e6),
                     bench::strf("%.1f", b.ms),
                     bench::strf("%.2f", static_cast<double>(c.bytes) / 1e6),
                     bench::strf("%.1f", c.ms),
                     bench::strf("%.1fx", c.ms / a.ms)});
    }
  }
  table.print();
  std::printf("\nexpected shape: rowmajor/drx grows with steps (quadratic "
              "vs linear total work); btree tracks drx with a small index "
              "overhead.\n");
  return 0;
}
