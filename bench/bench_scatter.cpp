// Scatter/gather data-plane microbench (docs/PERFORMANCE.md).
//
// Measures the run-coalesced CopyPlan against the legacy per-element walk
// (for_each_index + linearize + offset_in_chunk per element) for one-chunk
// clips of rank 1-4, in both memory orders (plus a rank-2 transpose),
// with chunk-aligned and unaligned clips. Unlike the PFS benches this one is pure CPU, so the
// MB/s columns are wall-clock; the runs/elements columns are exact plan
// properties and are the machine-independent acceptance signal: on
// innermost-contiguous cases runs must be >= 5x fewer than elements.
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "core/copy_plan.hpp"
#include "core/coords.hpp"

using namespace drx;  // NOLINT: bench brevity
using core::Box;
using core::ChunkSpace;
using core::CopyPlan;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

constexpr std::uint64_t kEsize = 8;  // doubles

/// The legacy element walk the CopyPlan replaced, kept here as the
/// baseline under measurement.
void scatter_walk(const ChunkSpace& cs, std::span<const std::byte> chunk,
                  const Box& clip, const Box& box, MemoryOrder order,
                  std::span<std::byte> out) {
  const Shape box_shape = box.shape();
  Index rel(clip.rank());
  core::for_each_index(clip, [&](const Index& idx) {
    const std::uint64_t src = cs.offset_in_chunk(idx);
    for (std::size_t d = 0; d < rel.size(); ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t dst = core::linearize(rel, box_shape, order);
    std::memcpy(out.data() + dst * kEsize, chunk.data() + src * kEsize,
                kEsize);
  });
}

double mb_per_s(std::uint64_t bytes_per_iter, auto&& body) {
  using clock = std::chrono::steady_clock;
  // Size the repetition count so each cell moves ~64 MB (clamped).
  std::uint64_t iters = bytes_per_iter ? (64u << 20) / bytes_per_iter : 1;
  iters = std::max<std::uint64_t>(4, std::min<std::uint64_t>(iters, 4096));
  body();  // warm-up (and first-touch of the buffers)
  const auto t0 = clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) body();
  const double s = std::chrono::duration<double>(clock::now() - t0).count();
  const double total =
      static_cast<double>(bytes_per_iter) * static_cast<double>(iters);
  return s > 0 ? total / (1024.0 * 1024.0) / s : 0.0;
}

}  // namespace

int main() {
  std::printf("scatter data plane: run-coalesced CopyPlan vs per-element "
              "walk (doubles, one-chunk clips)\n\n");
  bench::Table table({"rank", "order", "clip", "elements", "runs", "batch",
                      "plan MB/s", "walk MB/s", "speedup"});

  const std::vector<Shape> chunk_shapes = {
      {65536}, {256, 256}, {32, 64, 32}, {16, 16, 16, 16}};

  // (in-chunk order, box order, label). Matching orders are the
  // production shape — DrxFile scatters into boxes laid out in its own
  // in_chunk_order — so those rows drive the aggregate core.copy.*
  // ratio the CI gate watches. The rank-2 transpose row is the honest
  // worst case: every run degenerates to one element, and the plan wins
  // only by skipping the per-element index arithmetic.
  struct OrderConfig {
    MemoryOrder chunk_order;
    MemoryOrder box_order;
    const char* label;
  };
  const OrderConfig order_configs[] = {
      {MemoryOrder::kRowMajor, MemoryOrder::kRowMajor, "row"},
      {MemoryOrder::kColMajor, MemoryOrder::kColMajor, "col"},
      {MemoryOrder::kRowMajor, MemoryOrder::kColMajor, "row-col"},
  };

  for (const Shape& chunk_shape : chunk_shapes) {
    const std::size_t k = chunk_shape.size();
    // The box spans 2 chunks per dimension; the clip lives in chunk
    // (1, 1, ..., 1), so base offsets on both sides are non-trivial.
    Box box;
    box.lo.assign(k, 0);
    box.hi.resize(k);
    for (std::size_t d = 0; d < k; ++d) box.hi[d] = 2 * chunk_shape[d];

    for (const bool aligned : {true, false}) {
      Box clip;
      clip.lo.resize(k);
      clip.hi.resize(k);
      for (std::size_t d = 0; d < k; ++d) {
        clip.lo[d] = chunk_shape[d] + (aligned ? 0 : 1);
        clip.hi[d] = 2 * chunk_shape[d] - (aligned ? 0 : 1);
      }
      const std::uint64_t elements = clip.volume();
      const std::uint64_t bytes = elements * kEsize;

      std::vector<std::byte> out_plan(
          drx::checked_size(box.volume() * kEsize), std::byte{0});
      std::vector<std::byte> out_walk(out_plan.size(), std::byte{0});

      for (const OrderConfig& oc : order_configs) {
        // One transpose row (rank 2) is enough to show the degenerate
        // batch; rank 1 has no transpose and higher ranks add nothing.
        if (oc.chunk_order != oc.box_order && k != 2) continue;
        const ChunkSpace cs(chunk_shape, oc.chunk_order);
        const MemoryOrder order = oc.box_order;
        std::vector<std::byte> chunk(
            drx::checked_size(cs.elements_per_chunk() * kEsize));
        for (std::size_t i = 0; i < chunk.size(); ++i) {
          chunk[i] = static_cast<std::byte>(i * 1315423911u >> 16);
        }
        const CopyPlan plan(cs, kEsize, clip.shape(), box.shape(), order);
        plan.scatter(clip, box, chunk, out_plan);
        scatter_walk(cs, chunk, clip, box, order, out_walk);
        DRX_CHECK_MSG(out_plan == out_walk, "plan output mismatch");

        const double plan_mbs = mb_per_s(
            bytes, [&] { plan.scatter(clip, box, chunk, out_plan); });
        const double walk_mbs = mb_per_s(bytes, [&] {
          scatter_walk(cs, chunk, clip, box, order, out_walk);
        });

        table.add_row(
            {bench::strf("r%zu", k), oc.label,
             aligned ? "aligned" : "unaligned",
             bench::strf("%llu", static_cast<unsigned long long>(elements)),
             bench::strf("%llu", static_cast<unsigned long long>(
                                     plan.runs_per_execution())),
             bench::strf("%.1f", static_cast<double>(elements) /
                                     static_cast<double>(
                                         plan.runs_per_execution())),
             bench::strf("%.0f", plan_mbs), bench::strf("%.0f", walk_mbs),
             bench::strf("%.1fx", walk_mbs > 0 ? plan_mbs / walk_mbs : 0)});
      }
    }
  }
  table.print();
  std::printf("\nexpected shape: matching-order clips coalesce whole rows "
              "or chunks into a handful of memcpys (batch >> 5); the "
              "rank-2 transpose (row-col) degenerates to one element per "
              "run but still beats the per-element walk by skipping the "
              "index arithmetic (docs/PERFORMANCE.md).\n");
  bench::write_json_report("bench_scatter", table);
  return 0;
}
