// drx_top — live terminal view of a serving drx process.
//
// Polls the embedded metrics exporter (obs/exporter.hpp, enabled with
// DRX_METRICS_PORT) and renders the sliding-window view: request rate
// and windowed p50/p95/p99 per latency histogram, per-shard cache
// traffic, the cache fast-hit ratio, queue depth, and per-session
// progress — the operator's answer to "what is the array server doing
// RIGHT NOW", where drx_stats answers "what has it done since boot".
//
// Usage:
//   drx_top [--host <ip>] [--port <p>] [--interval <secs>] [--count <n>]
//           [--no-clear]
//   drx_top --render <window.json> [--gauges <live.json>]
//
// --port defaults to $DRX_METRICS_PORT. --count 0 (default) polls until
// interrupted. --render performs one offline rendering of saved
// /window.json (+ optional /json) documents — the same code path the
// live loop uses, which is how the CLI contract test exercises the
// renderer without a live server.
//
// Exit codes: 0 ok; 1 scrape/parse failure; 2 usage.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using drx::obs::JsonValue;

struct GaugeRow {
  std::string name;
  std::string array;
  std::string session;
  double value = 0.0;
};

std::vector<GaugeRow> parse_gauges(const JsonValue& live) {
  std::vector<GaugeRow> rows;
  const JsonValue* gauges = live.find("gauges");
  if (gauges == nullptr || !gauges->is_array()) return rows;
  for (const JsonValue& g : gauges->array) {
    GaugeRow row;
    const JsonValue* name = g.find("name");
    row.name = name != nullptr ? std::string(name->as_string()) : "?";
    if (const JsonValue* labels = g.find("labels"); labels != nullptr) {
      const JsonValue* array = labels->find("array");
      if (array != nullptr) row.array = std::string(array->as_string());
      const JsonValue* session = labels->find("session");
      if (session != nullptr) row.session = std::string(session->as_string());
    }
    row.value = g.number_at("value");
    rows.push_back(std::move(row));
  }
  return rows;
}

double gauge_value(const std::vector<GaugeRow>& rows, std::string_view name,
                   double dflt = -1.0) {
  for (const GaugeRow& r : rows) {
    if (r.name == name) return r.value;
  }
  return dflt;
}

/// One frame of output from a parsed /window.json (+ optional /json).
void render(const JsonValue& window_doc, const JsonValue* live_doc,
            const std::string& source) {
  const JsonValue* window = window_doc.find("window");
  const double span_s =
      window != nullptr ? window->number_at("span_us") / 1e6 : 0.0;
  drx::obs::MetricsSnapshot view;
  if (window != nullptr) {
    if (const JsonValue* m = window->find("metrics"); m != nullptr) {
      view = drx::obs::analysis::metrics_from_json(*m);
    }
  }
  double horizon_s = 0.0;
  if (const JsonValue* cfg = window_doc.find("config"); cfg != nullptr) {
    horizon_s = cfg->number_at("horizon_ms") / 1000.0;
  }
  std::printf("drx_top — %s — window %.0fs (span %.1fs)\n", source.c_str(),
              horizon_s, span_s);

  // Latency histograms: rate + windowed quantiles. Sorted by traffic so
  // the busiest op class leads.
  std::vector<const drx::obs::HistogramSample*> lat;
  for (const drx::obs::HistogramSample& h : view.histograms) {
    if (h.count == 0) continue;
    if (h.name.size() < 3 ||
        h.name.compare(h.name.size() - 3, 3, "_us") != 0) {
      continue;
    }
    lat.push_back(&h);
  }
  std::stable_sort(lat.begin(), lat.end(), [](const auto* a, const auto* b) {
    return a->count > b->count;
  });
  std::printf("%-32s %10s %8s %8s %8s %8s\n", "op (windowed)", "req/s",
              "p50us", "p95us", "p99us", "maxus");
  for (const auto* h : lat) {
    const drx::obs::HistogramSummary s = drx::obs::summarize_histogram(*h);
    const double rate =
        span_s > 0.0 ? static_cast<double>(h->count) / span_s : 0.0;
    std::printf("%-32s %10.1f %8llu %8llu %8llu %8llu\n", h->name.c_str(),
                rate, static_cast<unsigned long long>(s.p50),
                static_cast<unsigned long long>(s.p95),
                static_cast<unsigned long long>(s.p99),
                static_cast<unsigned long long>(s.max));
  }

  // Per-shard cache traffic within the window.
  struct ShardRow {
    long shard;
    std::uint64_t accesses;
  };
  std::vector<ShardRow> shards;
  static constexpr std::string_view kPrefix = "core.cache.shard.";
  static constexpr std::string_view kSuffix = ".accesses";
  for (const drx::obs::CounterSample& c : view.counters) {
    if (c.name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (c.name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (c.name.compare(c.name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
      continue;
    }
    const std::string index = c.name.substr(
        kPrefix.size(), c.name.size() - kPrefix.size() - kSuffix.size());
    char* end = nullptr;
    const long shard = std::strtol(index.c_str(), &end, 10);
    if (end == index.c_str() || *end != '\0') continue;
    shards.push_back(ShardRow{shard, c.value});
  }
  std::sort(shards.begin(), shards.end(),
            [](const ShardRow& a, const ShardRow& b) {
              return a.shard < b.shard;
            });
  if (!shards.empty()) {
    std::printf("cache shards (windowed accesses):");
    for (const ShardRow& s : shards) {
      std::printf(" %ld:%llu", s.shard,
                  static_cast<unsigned long long>(s.accesses));
    }
    std::printf("\n");
  }

  if (live_doc != nullptr) {
    const std::vector<GaugeRow> gauges = parse_gauges(*live_doc);
    const double depth = gauge_value(gauges, "serve.queue.depth");
    const double fast = gauge_value(gauges, "serve.cache.fast_hit_ratio");
    if (depth >= 0.0 || fast >= 0.0) {
      std::printf("queue depth %.0f   cache fast-hit ratio %.2f\n",
                  depth >= 0.0 ? depth : 0.0, fast >= 0.0 ? fast : 0.0);
    }
    bool header = false;
    for (const GaugeRow& r : gauges) {
      if (r.name != "serve.session.submitted") continue;
      if (!header) {
        std::printf("%-10s %-10s %12s %12s %12s\n", "array", "session",
                    "submitted", "completed", "failed");
        header = true;
      }
      const auto find_peer = [&](std::string_view name) {
        for (const GaugeRow& p : gauges) {
          if (p.name == name && p.array == r.array &&
              p.session == r.session) {
            return p.value;
          }
        }
        return 0.0;
      };
      std::printf("%-10s %-10s %12.0f %12.0f %12.0f\n", r.array.c_str(),
                  r.session.c_str(), r.value,
                  find_peer("serve.session.completed"),
                  find_peer("serve.session.failed"));
    }
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int render_offline(const std::string& window_path,
                   const std::string& gauges_path) {
  std::string raw;
  if (!read_file(window_path, raw)) {
    std::fprintf(stderr, "error: cannot read %s\n", window_path.c_str());
    return 1;
  }
  auto window_doc = drx::obs::json_parse(raw);
  if (!window_doc.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", window_path.c_str(),
                 window_doc.status().to_string().c_str());
    return 1;
  }
  drx::Result<JsonValue> live_doc =
      drx::Status(drx::ErrorCode::kNotFound, "no gauges file");
  if (!gauges_path.empty()) {
    std::string live_raw;
    if (!read_file(gauges_path, live_raw)) {
      std::fprintf(stderr, "error: cannot read %s\n", gauges_path.c_str());
      return 1;
    }
    live_doc = drx::obs::json_parse(live_raw);
    if (!live_doc.is_ok()) {
      std::fprintf(stderr, "error: %s: %s\n", gauges_path.c_str(),
                   live_doc.status().to_string().c_str());
      return 1;
    }
  }
  render(window_doc.value(),
         live_doc.is_ok() ? &live_doc.value() : nullptr, window_path);
  return 0;
}

int poll_loop(const std::string& host, std::uint16_t port, double interval_s,
              std::size_t count, bool clear) {
  const std::string source = host + ":" + std::to_string(port);
  std::size_t polls = 0;
  while (count == 0 || polls < count) {
    if (polls != 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
    ++polls;
    auto window_raw = drx::obs::http_get(host, port, "/window.json");
    if (!window_raw.is_ok()) {
      std::fprintf(stderr, "error: %s\n",
                   window_raw.status().to_string().c_str());
      return 1;
    }
    auto window_doc = drx::obs::json_parse(window_raw.value());
    if (!window_doc.is_ok()) {
      std::fprintf(stderr, "error: bad /window.json: %s\n",
                   window_doc.status().to_string().c_str());
      return 1;
    }
    // The gauges endpoint is best-effort: a process without a serve
    // layer still has windows worth rendering.
    auto live_raw = drx::obs::http_get(host, port, "/json");
    drx::Result<JsonValue> live_doc =
        drx::Status(drx::ErrorCode::kNotFound, "unavailable");
    if (live_raw.is_ok()) live_doc = drx::obs::json_parse(live_raw.value());
    if (clear) std::printf("\x1b[2J\x1b[H");
    render(window_doc.value(),
           live_doc.is_ok() ? &live_doc.value() : nullptr, source);
    std::fflush(stdout);
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: drx_top [--host <ip>] [--port <p>] [--interval <secs>]\n"
      "               [--count <n>] [--no-clear]\n"
      "       drx_top --render <window.json> [--gauges <live.json>]\n"
      "--port defaults to $DRX_METRICS_PORT; --count 0 polls forever.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = -1;
  double interval_s = 2.0;
  std::size_t count = 0;
  bool no_clear = false;
  std::string render_path;
  std::string gauges_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      char* end = nullptr;
      if (v == nullptr) { usage(); return 2; }
      port = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || port < 0 || port > 65535) {
        usage();
        return 2;
      }
    } else if (arg == "--interval") {
      const char* v = next();
      char* end = nullptr;
      if (v == nullptr) { usage(); return 2; }
      interval_s = std::strtod(v, &end);
      if (end == v || *end != '\0' || interval_s <= 0.0) {
        usage();
        return 2;
      }
    } else if (arg == "--count") {
      const char* v = next();
      char* end = nullptr;
      if (v == nullptr) { usage(); return 2; }
      count = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') { usage(); return 2; }
    } else if (arg == "--no-clear") {
      no_clear = true;
    } else if (arg == "--render") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      render_path = v;
    } else if (arg == "--gauges") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      gauges_path = v;
    } else {
      usage();
      return 2;
    }
  }
  if (!render_path.empty()) {
    return render_offline(render_path, gauges_path);
  }
  if (port < 0) {
    const char* env = std::getenv("DRX_METRICS_PORT");
    if (env != nullptr && env[0] != '\0') port = std::strtol(env, nullptr, 10);
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr,
                 "error: no port (--port or DRX_METRICS_PORT required)\n");
    usage();
    return 2;
  }
  // Clear only when a human is watching; piped output stays appendable.
  const bool clear = !no_clear && ::isatty(STDOUT_FILENO) != 0;
  return poll_loop(host, static_cast<std::uint16_t>(port), interval_s, count,
                   clear);
}
