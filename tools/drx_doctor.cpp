// drx_doctor — turns observability artifacts into a health report.
//
// Ingests any combination of:
//   --metrics <snapshot.bin>   binary DRX_METRICS snapshot
//   --profile <profile.json>   DRX_PROFILE access heatmaps
//   --trace <trace.json>       DRX_TRACE Trace Event Format output
//   --series <series.json>     DRX_STATS_INTERVAL time series
//   --bench <report.json>      DRX_BENCH_JSON report file (one doc/line)
//   --flight <flight.json>     flight-recorder post-mortem dump
//   --window <window.json>     drx-window live-telemetry document (the
//                              exporter's /window.json — SLO burn rates
//                              and in-window latency regressions)
//
// and runs the obs::analysis detectors: rank/server/aggregator imbalance,
// cache thrash, prefetch effectiveness, dropped traces, critical path,
// and I/O stalls. Output is a human report, or strict JSON with --json.
//
// Analysis verdicts (imbalance, thrash, stalls) are advisory: a CI job
// should read them, not fail on them — a multi-phase bench legitimately
// accumulates skewed-looking totals. --strict gates only on findings
// that mean the artifacts themselves are untrustworthy (dropped trace
// events); unreadable or malformed inputs always fail with exit 3.
//
// Exit codes: 0 ok; 1 dropped trace events and --strict was given;
// 2 usage; 3 an input file was unreadable or malformed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace {

using drx::obs::JsonValue;
using drx::obs::analysis::Finding;
using drx::obs::analysis::Report;
using drx::obs::analysis::Severity;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return in.good() || in.eof();
}

int fail_input(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "drx_doctor: %s: %s\n", path.c_str(), why.c_str());
  return 3;
}

int analyze_metrics_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  auto snap = drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  if (!snap.is_ok()) return fail_input(path, snap.status().to_string());
  drx::obs::analysis::analyze_metrics(snap.value(), report.findings);
  return 0;
}

int analyze_profile_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  auto prof = drx::obs::profile_from_json(raw);
  if (!prof.is_ok()) return fail_input(path, prof.status().to_string());
  drx::obs::analysis::analyze_profile(prof.value(), report.findings);
  return 0;
}

int analyze_trace_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  auto doc = drx::obs::json_parse(raw);
  if (!doc.is_ok()) return fail_input(path, doc.status().to_string());
  auto summary = drx::obs::analysis::summarize_trace(doc.value());
  if (!summary.is_ok()) return fail_input(path, summary.status().to_string());
  drx::obs::analysis::analyze_trace(summary.value(), report.findings);
  return 0;
}

int analyze_series_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  auto doc = drx::obs::json_parse(raw);
  if (!doc.is_ok()) return fail_input(path, doc.status().to_string());
  drx::obs::analysis::analyze_series(doc.value(), report.findings);
  return 0;
}

int analyze_flight_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  auto doc = drx::obs::json_parse(raw);
  if (!doc.is_ok()) return fail_input(path, doc.status().to_string());
  drx::obs::analysis::analyze_flight(doc.value(), report.findings);
  return 0;
}

int analyze_window_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  auto doc = drx::obs::json_parse(raw);
  if (!doc.is_ok()) return fail_input(path, doc.status().to_string());
  drx::obs::analysis::analyze_window(doc.value(), report.findings);
  return 0;
}

int analyze_bench_file(const std::string& path, Report& report) {
  std::string raw;
  if (!read_file(path, raw)) return fail_input(path, "cannot read");
  // DRX_BENCH_JSON appends one JSON document per line.
  std::istringstream lines(raw);
  std::string line;
  std::size_t benches = 0;
  while (std::getline(lines, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto doc = drx::obs::json_parse(line);
    if (!doc.is_ok()) return fail_input(path, doc.status().to_string());
    ++benches;
    const JsonValue* name = doc.value().find("bench");
    if (const JsonValue* metrics = doc.value().find("metrics");
        metrics != nullptr) {
      const drx::obs::MetricsSnapshot snap =
          drx::obs::analysis::metrics_from_json(*metrics);
      std::vector<Finding> fs;
      drx::obs::analysis::analyze_metrics(snap, fs);
      // Prefix so findings from different bench reports stay attributable.
      for (Finding& f : fs) {
        f.message = std::string(name != nullptr ? name->as_string() : "bench")
                        .append(": ")
                        .append(f.message);
        report.findings.push_back(std::move(f));
      }
    }
  }
  if (benches == 0) return fail_input(path, "no bench report lines");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: drx_doctor [--json] [--strict]\n"
               "                  [--metrics <snapshot.bin>]\n"
               "                  [--profile <profile.json>]\n"
               "                  [--trace <trace.json>]\n"
               "                  [--series <series.json>]\n"
               "                  [--bench <report.json>]\n"
               "                  [--flight <flight.json>]\n"
               "                  [--window <window.json>]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  std::vector<std::pair<std::string, std::string>> inputs;  // (kind, path)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--metrics" || arg == "--profile" || arg == "--trace" ||
               arg == "--series" || arg == "--bench" ||
               arg == "--flight" || arg == "--window") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      inputs.emplace_back(arg.substr(2), argv[++i]);
    } else {
      usage();
      return 2;
    }
  }
  if (inputs.empty()) {
    usage();
    return 2;
  }

  Report report;
  for (const auto& [kind, path] : inputs) {
    int rc = 0;
    if (kind == "metrics") rc = analyze_metrics_file(path, report);
    if (kind == "profile") rc = analyze_profile_file(path, report);
    if (kind == "trace") rc = analyze_trace_file(path, report);
    if (kind == "series") rc = analyze_series_file(path, report);
    if (kind == "bench") rc = analyze_bench_file(path, report);
    if (kind == "flight") rc = analyze_flight_file(path, report);
    if (kind == "window") rc = analyze_window_file(path, report);
    if (rc != 0) return rc;
  }

  // Several inputs can surface the same defect (e.g. dropped traces show
  // up in both the metrics snapshot and the trace metadata): keep the
  // highest-scoring instance of each finding id.
  std::vector<Finding> unique;
  for (Finding& f : report.findings) {
    bool merged = false;
    for (Finding& u : unique) {
      if (u.id == f.id && u.message == f.message) {
        if (f.score > u.score) u = std::move(f);
        merged = true;
        break;
      }
    }
    if (!merged) unique.push_back(std::move(f));
  }
  report.findings = std::move(unique);

  // Most severe first; ties broken by score.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity) return a.severity > b.severity;
                     return a.score > b.score;
                   });

  if (json) {
    drx::obs::JsonWriter w;
    drx::obs::analysis::report_to_json(report, w);
    std::printf("%s\n", w.str().c_str());
  } else {
    std::fputs(drx::obs::analysis::report_to_text(report).c_str(), stdout);
  }
  if (strict) {
    for (const Finding& f : report.findings) {
      if (f.id == "trace-dropped") {
        std::fprintf(stderr,
                     "drx_doctor: --strict: trace events were dropped\n");
        return 1;
      }
    }
  }
  return 0;
}
