// drx_inspect — command-line inspector for DRX extendible array files.
//
// Usage:
//   drx_inspect <array-name>            # reads <array-name>.xmd (+ .xta)
//   drx_inspect --chunk-table <name>    # also dumps the chunk address
//                                       # grid (small arrays only)
//
// Prints the metadata a DRX/DRX-MP process replicates on open: rank,
// element type, bounds, chunk shape, data-file geometry, and the axial
// vectors with their expansion records.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/drx_file.hpp"

using namespace drx;  // NOLINT: tool brevity
using core::Box;
using core::Index;
using core::Metadata;

namespace {

int inspect(const std::string& name, bool chunk_table) {
  if (!std::filesystem::exists(name + ".xmd")) {
    std::fprintf(stderr, "error: no such file: %s.xmd\n", name.c_str());
    return 1;
  }
  auto meta_storage = pfs::PosixStorage::open(name + ".xmd");
  if (!meta_storage.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 meta_storage.status().to_string().c_str());
    return 1;
  }
  std::vector<std::byte> image(
      static_cast<std::size_t>(meta_storage.value()->size()));
  if (!meta_storage.value()->read_at(0, image)) {
    std::fprintf(stderr, "error: cannot read %s.xmd\n", name.c_str());
    return 1;
  }
  auto meta = Metadata::from_bytes(image);
  if (!meta.is_ok()) {
    std::fprintf(stderr, "error: %s\n", meta.status().to_string().c_str());
    return 1;
  }
  const Metadata& m = meta.value();

  std::printf("DRX extendible array: %s\n", name.c_str());
  std::printf("  rank            : %zu\n", m.rank());
  std::printf("  element type    : %s (%llu bytes)\n",
              std::string(core::element_type_name(m.dtype)).c_str(),
              static_cast<unsigned long long>(m.element_bytes()));
  std::printf("  in-chunk order  : %s\n",
              m.in_chunk_order == core::MemoryOrder::kRowMajor
                  ? "row-major (C)"
                  : "column-major (FORTRAN)");
  auto print_shape = [](const char* label, const core::Shape& s) {
    std::printf("  %-16s:", label);
    for (std::uint64_t v : s) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  };
  print_shape("element bounds", m.element_bounds);
  print_shape("chunk shape", m.chunk_shape);
  print_shape("chunk grid", m.mapping.bounds());
  std::printf("  chunks          : %llu (%llu bytes each; .xta = %llu "
              "bytes)\n",
              static_cast<unsigned long long>(m.mapping.total_chunks()),
              static_cast<unsigned long long>(m.chunk_bytes()),
              static_cast<unsigned long long>(m.data_file_bytes()));
  std::printf("  axial records E : %llu (F* cost ~ O(k + log E))\n",
              static_cast<unsigned long long>(m.mapping.total_records()));

  for (std::size_t d = 0; d < m.rank(); ++d) {
    std::printf("  axial vector D%zu:\n", d);
    for (const auto& r : m.mapping.axial_vector(d).records()) {
      if (r.start_address == core::ExpansionRecord::kUnallocated) {
        std::printf("    <sentinel: dimension never hosted a segment>\n");
        continue;
      }
      std::printf("    segment from index %llu at chunk address %lld, C = [",
                  static_cast<unsigned long long>(r.start_index),
                  static_cast<long long>(r.start_address));
      for (std::size_t j = 0; j < r.coeffs.size(); ++j) {
        std::printf("%s%llu", j ? ", " : "",
                    static_cast<unsigned long long>(r.coeffs[j]));
      }
      std::printf("]\n");
    }
  }

  if (chunk_table) {
    if (m.rank() != 2 || m.mapping.total_chunks() > 4096) {
      std::printf("  (chunk table printed for 2-D arrays up to 4096 "
                  "chunks only)\n");
    } else {
      std::printf("  chunk address table (rows = D0, cols = D1):\n");
      for (std::uint64_t i = 0; i < m.mapping.bounds()[0]; ++i) {
        std::printf("   ");
        for (std::uint64_t j = 0; j < m.mapping.bounds()[1]; ++j) {
          std::printf(" %6llu", static_cast<unsigned long long>(
                                    m.mapping.address_of(Index{i, j})));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool chunk_table = false;
  std::string name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chunk-table") == 0) {
      chunk_table = true;
    } else if (name.empty()) {
      name = argv[i];
    } else {
      std::fprintf(stderr, "usage: drx_inspect [--chunk-table] <name>\n");
      return 2;
    }
  }
  if (name.empty()) {
    std::fprintf(stderr, "usage: drx_inspect [--chunk-table] <name>\n");
    return 2;
  }
  return inspect(name, chunk_table);
}
