// drx_inspect — command-line inspector for DRX extendible array files.
//
// Usage:
//   drx_inspect <array-name>            # reads <array-name>.xmd (+ .xta)
//   drx_inspect --chunk-table <name>    # also dumps the chunk address
//                                       # grid (small arrays only)
//   drx_inspect --json <name>           # metadata as a JSON object
//   drx_inspect --stats <snapshot>      # text table of a DRX_METRICS
//                                       # snapshot (same as drx_stats)
//
// Prints the metadata a DRX/DRX-MP process replicates on open: rank,
// element type, bounds, chunk shape, data-file geometry, and the axial
// vectors with their expansion records.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/drx_file.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

using namespace drx;  // NOLINT: tool brevity
using core::Box;
using core::Index;
using core::Metadata;

namespace {

drx::Result<Metadata> load_metadata(const std::string& name) {
  if (!std::filesystem::exists(name + ".xmd")) {
    return drx::Status(drx::ErrorCode::kNotFound,
                       "no such file: " + name + ".xmd");
  }
  auto meta_storage = pfs::PosixStorage::open(name + ".xmd");
  if (!meta_storage.is_ok()) return meta_storage.status();
  std::vector<std::byte> image(
      static_cast<std::size_t>(meta_storage.value()->size()));
  if (!meta_storage.value()->read_at(0, image)) {
    return drx::Status(drx::ErrorCode::kIoError,
                       "cannot read " + name + ".xmd");
  }
  return Metadata::from_bytes(image);
}

void shape_to_json(const core::Shape& s, obs::JsonWriter& w) {
  w.begin_array();
  for (std::uint64_t v : s) w.value(v);
  w.end_array();
}

/// Metadata as a JSON object (same writer the metrics JSON uses, so tool
/// output stays uniformly parseable).
int inspect_json(const std::string& name) {
  auto meta = load_metadata(name);
  if (!meta.is_ok()) {
    std::fprintf(stderr, "error: %s\n", meta.status().to_string().c_str());
    return 1;
  }
  const Metadata& m = meta.value();
  obs::JsonWriter w;
  w.begin_object();
  w.key("name").value(name);
  w.key("rank").value(static_cast<std::uint64_t>(m.rank()));
  w.key("element_type").value(core::element_type_name(m.dtype));
  w.key("element_bytes").value(m.element_bytes());
  w.key("in_chunk_order")
      .value(m.in_chunk_order == core::MemoryOrder::kRowMajor ? "row-major"
                                                              : "column-major");
  w.key("element_bounds");
  shape_to_json(m.element_bounds, w);
  w.key("chunk_shape");
  shape_to_json(m.chunk_shape, w);
  w.key("chunk_grid");
  shape_to_json(m.mapping.bounds(), w);
  w.key("total_chunks").value(m.mapping.total_chunks());
  w.key("chunk_bytes").value(m.chunk_bytes());
  w.key("data_file_bytes").value(m.data_file_bytes());
  w.key("codec").value(codec::codec_name(m.codec));
  if (m.compressed()) {
    const std::uint64_t live = m.stored_live_bytes();
    w.key("stored_bytes").value(live);
    w.key("data_end").value(m.data_end);
    w.key("compression_ratio")
        .value(live == 0 ? 0.0
                         : static_cast<double>(m.data_file_bytes()) /
                               static_cast<double>(live));
    w.key("chunk_slots").begin_array();
    for (std::size_t a = 0; a < m.chunk_table.size(); ++a) {
      const core::ChunkSlot& slot = m.chunk_table[a];
      w.begin_object();
      w.key("address").value(static_cast<std::uint64_t>(a));
      w.key("offset").value(slot.offset);
      w.key("stored").value(static_cast<std::uint64_t>(slot.stored));
      w.key("capacity").value(static_cast<std::uint64_t>(slot.capacity));
      w.key("codec").value(
          codec::codec_name(static_cast<codec::CodecId>(slot.codec)));
      w.end_object();
    }
    w.end_array();
  }
  w.key("axial_records").value(m.mapping.total_records());
  w.key("axial_vectors").begin_array();
  for (std::size_t d = 0; d < m.rank(); ++d) {
    w.begin_array();
    for (const auto& r : m.mapping.axial_vector(d).records()) {
      if (r.start_address == core::ExpansionRecord::kUnallocated) continue;
      w.begin_object();
      w.key("start_index").value(r.start_index);
      w.key("start_address").value(static_cast<std::int64_t>(r.start_address));
      w.key("coeffs").begin_array();
      for (std::uint64_t c : r.coeffs) w.value(c);
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

/// Text table of a DRX_METRICS snapshot (shared rendering with drx_stats).
int show_stats(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  auto snap = obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  if (!snap.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 snap.status().to_string().c_str());
    return 1;
  }
  std::fputs(obs::metrics_to_text(snap.value()).c_str(), stdout);
  return 0;
}

int inspect(const std::string& name, bool chunk_table) {
  auto meta = load_metadata(name);
  if (!meta.is_ok()) {
    std::fprintf(stderr, "error: %s\n", meta.status().to_string().c_str());
    return 1;
  }
  const Metadata& m = meta.value();

  std::printf("DRX extendible array: %s\n", name.c_str());
  std::printf("  rank            : %zu\n", m.rank());
  std::printf("  element type    : %s (%llu bytes)\n",
              std::string(core::element_type_name(m.dtype)).c_str(),
              static_cast<unsigned long long>(m.element_bytes()));
  std::printf("  in-chunk order  : %s\n",
              m.in_chunk_order == core::MemoryOrder::kRowMajor
                  ? "row-major (C)"
                  : "column-major (FORTRAN)");
  auto print_shape = [](const char* label, const core::Shape& s) {
    std::printf("  %-16s:", label);
    for (std::uint64_t v : s) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  };
  print_shape("element bounds", m.element_bounds);
  print_shape("chunk shape", m.chunk_shape);
  print_shape("chunk grid", m.mapping.bounds());
  std::printf("  chunks          : %llu (%llu bytes each; .xta = %llu "
              "bytes)\n",
              static_cast<unsigned long long>(m.mapping.total_chunks()),
              static_cast<unsigned long long>(m.chunk_bytes()),
              static_cast<unsigned long long>(m.data_file_bytes()));
  std::printf("  axial records E : %llu (F* cost ~ O(k + log E))\n",
              static_cast<unsigned long long>(m.mapping.total_records()));
  std::printf("  codec           : %s\n",
              std::string(codec::codec_name(m.codec)).c_str());
  if (m.compressed()) {
    const std::uint64_t live = m.stored_live_bytes();
    const double ratio = live == 0
                             ? 0.0
                             : static_cast<double>(m.data_file_bytes()) /
                                   static_cast<double>(live);
    std::printf("  stored bytes    : %llu of %llu logical (ratio %.2fx, "
                "data_end %llu)\n",
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(m.data_file_bytes()),
                ratio, static_cast<unsigned long long>(m.data_end));
    constexpr std::size_t kMaxSlotRows = 64;
    std::printf("  chunk slots (address: offset stored/capacity codec):\n");
    for (std::size_t a = 0;
         a < std::min(m.chunk_table.size(), kMaxSlotRows); ++a) {
      const core::ChunkSlot& slot = m.chunk_table[a];
      std::printf("    %6zu: %10llu %8llu/%-8llu %s\n", a,
                  static_cast<unsigned long long>(slot.offset),
                  static_cast<unsigned long long>(slot.stored),
                  static_cast<unsigned long long>(slot.capacity),
                  std::string(codec::codec_name(
                                  static_cast<codec::CodecId>(slot.codec)))
                      .c_str());
    }
    if (m.chunk_table.size() > kMaxSlotRows) {
      std::printf("    ... %zu more (use --json for the full slot table)\n",
                  m.chunk_table.size() - kMaxSlotRows);
    }
  }

  for (std::size_t d = 0; d < m.rank(); ++d) {
    std::printf("  axial vector D%zu:\n", d);
    for (const auto& r : m.mapping.axial_vector(d).records()) {
      if (r.start_address == core::ExpansionRecord::kUnallocated) {
        std::printf("    <sentinel: dimension never hosted a segment>\n");
        continue;
      }
      std::printf("    segment from index %llu at chunk address %lld, C = [",
                  static_cast<unsigned long long>(r.start_index),
                  static_cast<long long>(r.start_address));
      for (std::size_t j = 0; j < r.coeffs.size(); ++j) {
        std::printf("%s%llu", j ? ", " : "",
                    static_cast<unsigned long long>(r.coeffs[j]));
      }
      std::printf("]\n");
    }
  }

  if (chunk_table) {
    if (m.rank() != 2 || m.mapping.total_chunks() > 4096) {
      std::printf("  (chunk table printed for 2-D arrays up to 4096 "
                  "chunks only)\n");
    } else {
      std::printf("  chunk address table (rows = D0, cols = D1):\n");
      for (std::uint64_t i = 0; i < m.mapping.bounds()[0]; ++i) {
        std::printf("   ");
        for (std::uint64_t j = 0; j < m.mapping.bounds()[1]; ++j) {
          std::printf(" %6llu", static_cast<unsigned long long>(
                                    m.mapping.address_of(Index{i, j})));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* const kUsage =
      "usage: drx_inspect [--chunk-table|--json] <name>\n"
      "       drx_inspect --stats <snapshot>\n";
  bool chunk_table = false;
  bool json = false;
  bool stats = false;
  std::string name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chunk-table") == 0) {
      chunk_table = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (name.empty()) {
      name = argv[i];
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (name.empty() || (json && stats) || (chunk_table && (json || stats))) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (stats) return show_stats(name);
  if (json) return inspect_json(name);
  return inspect(name, chunk_table);
}
