// drx_stats — renders DRX metrics snapshots and validates emitted JSON.
//
// Usage:
//   drx_stats <snapshot>            # text table (snapshot written via
//                                   # DRX_METRICS=<path>)
//   drx_stats --json <snapshot>     # same snapshot as a JSON object
//   drx_stats --diff <a> <b>        # per-metric delta table b - a
//                                   # (--json for machine-readable form)
//   drx_stats --check-json <file>   # exit 0 iff <file> is well-formed JSON
//                                   # or JSON-lines (CI validates DRX_TRACE
//                                   # and DRX_BENCH_JSON output with this)
//   drx_stats --top <N> <file>      # N slowest ops with per-stage latency
//                                   # breakdown, from a DRX_TRACE trace or
//                                   # a drx-flight dump (flight records
//                                   # carry only the dominant stage)
//   drx_stats --watch <secs> [--count <n>] <snapshot|http://ip:port>
//                                   # polling mode: re-scrape the source
//                                   # each interval and print the delta
//                                   # (--diff machinery); an http source
//                                   # hits the exporter's /snapshot.bin
//
// The text and JSON renderings are the same ones drx_inspect --stats and
// the bench JSON reports use (obs::metrics_to_text / metrics_to_json), so
// every surface prints metrics identically.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"

namespace {

bool read_file(const std::string& path, std::vector<char>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out.resize(static_cast<std::size_t>(size));
  in.read(out.data(), size);
  return static_cast<bool>(in);
}

int check_json(const std::string& path) {
  std::vector<char> text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  const std::string_view whole(text.data(), text.size());
  if (drx::obs::json_validate(whole)) {
    std::printf("%s: valid JSON (%zu bytes)\n", path.c_str(), text.size());
    return 0;
  }
  // DRX_BENCH_JSON files are JSON-lines: each bench table appends one
  // document per line, so a multi-table run is not a single document.
  std::size_t records = 0;
  std::string_view rest = whole;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    const std::string_view line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    if (line.empty()) continue;
    if (!drx::obs::json_validate(line)) {
      std::fprintf(stderr, "error: %s is not well-formed JSON\n",
                   path.c_str());
      return 1;
    }
    ++records;
  }
  if (records == 0) {
    std::fprintf(stderr, "error: %s is not well-formed JSON\n", path.c_str());
    return 1;
  }
  std::printf("%s: valid JSON lines (%zu records, %zu bytes)\n", path.c_str(),
              records, text.size());
  return 0;
}

int render(const std::string& path, bool json) {
  std::vector<char> raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  auto snap = drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  if (!snap.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 snap.status().to_string().c_str());
    return 1;
  }
  if (json) {
    drx::obs::JsonWriter w;
    drx::obs::metrics_to_json(snap.value(), w);
    std::printf("%s\n", w.str().c_str());
  } else {
    std::fputs(drx::obs::metrics_to_text(snap.value()).c_str(), stdout);
  }
  return 0;
}

drx::Result<drx::obs::MetricsSnapshot> load_snapshot(
    const std::string& path) {
  std::vector<char> raw;
  if (!read_file(path, raw)) {
    return drx::Status(drx::ErrorCode::kIoError, "cannot read " + path);
  }
  return drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
}

/// Prints the per-metric delta b - a (the --diff output; --watch reuses
/// it for each successive scrape pair).
void print_delta(const drx::obs::MetricsSnapshot& a,
                 const drx::obs::MetricsSnapshot& b,
                 const std::string& a_label, const std::string& b_label,
                 bool json) {
  // Union of metric names, in b's order then a-only extras; delta = b - a
  // (negative deltas mean the metric only appears in the baseline, e.g. a
  // run that skipped a phase).
  struct CounterDelta {
    std::string name;
    std::int64_t delta;
  };
  std::vector<CounterDelta> counters;
  for (const auto& c : b.counters) {
    counters.push_back(CounterDelta{
        c.name, static_cast<std::int64_t>(c.value) -
                    static_cast<std::int64_t>(a.counter(c.name))});
  }
  for (const auto& c : a.counters) {
    if (std::find_if(b.counters.begin(), b.counters.end(),
                     [&](const auto& s) { return s.name == c.name; }) ==
        b.counters.end()) {
      counters.push_back(
          CounterDelta{c.name, -static_cast<std::int64_t>(c.value)});
    }
  }

  struct HistDelta {
    std::string name;
    std::int64_t count;
    std::int64_t sum;
  };
  const auto hist_of = [](const drx::obs::MetricsSnapshot& s,
                          const std::string& name)
      -> const drx::obs::HistogramSample* {
    for (const auto& h : s.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };
  std::vector<HistDelta> hists;
  for (const auto& h : b.histograms) {
    const auto* prev = hist_of(a, h.name);
    hists.push_back(HistDelta{
        h.name,
        static_cast<std::int64_t>(h.count) -
            static_cast<std::int64_t>(prev != nullptr ? prev->count : 0),
        static_cast<std::int64_t>(h.sum) -
            static_cast<std::int64_t>(prev != nullptr ? prev->sum : 0)});
  }
  for (const auto& h : a.histograms) {
    if (hist_of(b, h.name) == nullptr) {
      hists.push_back(HistDelta{h.name,
                                -static_cast<std::int64_t>(h.count),
                                -static_cast<std::int64_t>(h.sum)});
    }
  }

  if (json) {
    drx::obs::JsonWriter w;
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& c : counters) w.key(c.name).value(c.delta);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& h : hists) {
      w.key(h.name).begin_object();
      w.key("count").value(h.count);
      w.key("sum").value(h.sum);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return;
  }

  std::size_t width = 0;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& h : hists) width = std::max(width, h.name.size());
  std::printf("delta %s -> %s\ncounters:\n", a_label.c_str(),
              b_label.c_str());
  for (const auto& c : counters) {
    if (c.delta == 0) continue;  // unchanged metrics stay out of the way
    std::printf("  %-*s %+lld\n", static_cast<int>(width), c.name.c_str(),
                static_cast<long long>(c.delta));
  }
  std::printf("histograms:\n");
  for (const auto& h : hists) {
    if (h.count == 0 && h.sum == 0) continue;
    std::printf("  %-*s count=%+lld sum=%+lld\n", static_cast<int>(width),
                h.name.c_str(), static_cast<long long>(h.count),
                static_cast<long long>(h.sum));
  }
}

int diff(const std::string& a_path, const std::string& b_path, bool json) {
  auto a = load_snapshot(a_path);
  auto b = load_snapshot(b_path);
  for (const auto* r : {&a, &b}) {
    if (!r->is_ok()) {
      std::fprintf(stderr, "error: %s\n", r->status().to_string().c_str());
      return 1;
    }
  }
  print_delta(a.value(), b.value(), a_path, b_path, json);
  return 0;
}

/// A --watch source: either a binary snapshot file (re-read each poll)
/// or an exporter URL — http://<ip>:<port>[/snapshot.bin] fetches the
/// live binary snapshot endpoint (obs/exporter.hpp).
drx::Result<drx::obs::MetricsSnapshot> load_source(const std::string& src) {
  static constexpr std::string_view kScheme = "http://";
  if (src.compare(0, kScheme.size(), kScheme) != 0) {
    return load_snapshot(src);
  }
  const std::string rest = src.substr(kScheme.size());
  const std::size_t slash = rest.find('/');
  const std::string hostport =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  const std::string path =
      slash == std::string::npos ? std::string("/snapshot.bin")
                                 : rest.substr(slash);
  const std::size_t colon = hostport.find(':');
  if (colon == std::string::npos) {
    return drx::Status(drx::ErrorCode::kInvalidArgument,
                       "watch URL needs an explicit port: " + src);
  }
  const std::string host = hostport.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(hostport.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port <= 0 || port > 65535) {
    return drx::Status(drx::ErrorCode::kInvalidArgument,
                       "bad port in watch URL: " + src);
  }
  auto body = drx::obs::http_get(host, static_cast<std::uint16_t>(port),
                                 path);
  if (!body.is_ok()) return body.status();
  return drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(body.value().data()),
      body.value().size()));
}

/// Polling mode: scrape, sleep, scrape, print the delta — repeat. One
/// delta per interval, so `--count N` prints N deltas then exits (0 =
/// until interrupted).
int watch(const std::string& src, double interval_s, std::size_t count,
          bool json) {
  auto prev = load_source(src);
  if (!prev.is_ok()) {
    std::fprintf(stderr, "error: %s\n", prev.status().to_string().c_str());
    return 1;
  }
  std::size_t printed = 0;
  while (count == 0 || printed < count) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    auto cur = load_source(src);
    if (!cur.is_ok()) {
      std::fprintf(stderr, "error: %s\n", cur.status().to_string().c_str());
      return 1;
    }
    print_delta(prev.value(), cur.value(), "prev", "now", json);
    std::fflush(stdout);
    prev = std::move(cur);
    ++printed;
  }
  return 0;
}

/// Ops from a drx-flight dump: every kind=="op" ring record. Flight
/// records are fixed-size, so only the dominant stage (the record's
/// `arg`) survives, not the full per-stage breakdown.
std::vector<drx::obs::analysis::OpStat> flight_ops(
    const drx::obs::JsonValue& doc) {
  std::vector<drx::obs::analysis::OpStat> ops;
  const drx::obs::JsonValue* threads = doc.find("threads");
  if (threads == nullptr || !threads->is_array()) return ops;
  for (const auto& t : threads->array) {
    const drx::obs::JsonValue* records = t.find("records");
    if (records == nullptr || !records->is_array()) continue;
    for (const auto& r : records->array) {
      const drx::obs::JsonValue* kind = r.find("kind");
      if (kind == nullptr || kind->as_string() != "op") continue;
      drx::obs::analysis::OpStat op;
      const drx::obs::JsonValue* name = r.find("name");
      op.name = name != nullptr ? std::string(name->as_string()) : "?";
      op.op = r.uint_at("op");
      op.dur_us = r.number_at("dur_ns") / 1000.0;
      op.rank = static_cast<int>(r.number_at("rank", -1.0));
      const auto dom = r.uint_at("arg");
      if (dom < drx::obs::kStageCount) {
        op.dominant =
            drx::obs::stage_name(static_cast<drx::obs::Stage>(dom));
      }
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

int top_ops(const std::string& path, std::size_t n) {
  std::vector<char> raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  auto doc =
      drx::obs::json_parse(std::string_view(raw.data(), raw.size()));
  if (!doc.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 doc.status().to_string().c_str());
    return 1;
  }

  std::vector<drx::obs::analysis::OpStat> ops;
  bool from_flight = false;
  if (doc.value().find("traceEvents") != nullptr) {
    auto summary = drx::obs::analysis::summarize_trace(doc.value());
    if (!summary.is_ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   summary.status().to_string().c_str());
      return 1;
    }
    ops = std::move(summary.value().ops);
  } else if (const auto* fmt = doc.value().find("format");
             fmt != nullptr && fmt->as_string() == "drx-flight") {
    ops = flight_ops(doc.value());
    from_flight = true;
  } else {
    std::fprintf(stderr,
                 "error: %s is neither a trace (traceEvents) nor a "
                 "drx-flight dump\n",
                 path.c_str());
    return 1;
  }

  std::stable_sort(ops.begin(), ops.end(),
                   [](const auto& a, const auto& b) {
                     return a.dur_us > b.dur_us;
                   });
  if (ops.size() > n) ops.resize(n);

  std::printf("top %zu op(s) by wall time from %s:\n", ops.size(),
              path.c_str());
  std::printf("%-24s %6s %5s %10s", "op", "id", "rank", "wall us");
  if (!from_flight) {
    for (std::size_t s = 0; s < drx::obs::kStageCount; ++s) {
      std::printf(" %10s",
                  drx::obs::stage_name(static_cast<drx::obs::Stage>(s)));
    }
  }
  std::printf(" %10s\n", "dominant");
  for (const auto& op : ops) {
    std::printf("%-24s %6llu %5d %10.1f", op.name.c_str(),
                static_cast<unsigned long long>(op.op), op.rank, op.dur_us);
    if (!from_flight) {
      for (const double us : op.stage_us) std::printf(" %10.1f", us);
    }
    std::printf(" %10s\n",
                op.dominant.empty() ? "?" : op.dominant.c_str());
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: drx_stats [--json] <snapshot>\n"
               "       drx_stats [--json] --diff <a> <b>\n"
               "       drx_stats [--json] --watch <secs> [--count <n>] "
               "<snapshot|http://ip:port>\n"
               "       drx_stats --check-json <file>\n"
               "       drx_stats --top <N> <trace.json|flight.json>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  bool do_diff = false;
  std::size_t top_n = 0;
  double watch_s = 0.0;
  std::size_t watch_count = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check-json") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      do_diff = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      char* end = nullptr;
      watch_s = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || watch_s <= 0.0) {
        usage();
        return 2;
      }
    } else if (std::strcmp(argv[i], "--count") == 0) {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      char* end = nullptr;
      watch_count = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        usage();
        return 2;
      }
    } else if (std::strcmp(argv[i], "--top") == 0) {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      char* end = nullptr;
      top_n = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || top_n == 0) {
        usage();
        return 2;
      }
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (watch_s > 0.0) {
    if (paths.size() != 1 || check || do_diff || top_n != 0) {
      usage();
      return 2;
    }
    return watch(paths[0], watch_s, watch_count, json);
  }
  if (watch_count != 0) {
    usage();  // --count is only meaningful with --watch
    return 2;
  }
  if (top_n != 0) {
    if (paths.size() != 1 || json || check || do_diff) {
      usage();
      return 2;
    }
    return top_ops(paths[0], top_n);
  }
  if (do_diff) {
    if (paths.size() != 2 || check) {
      usage();
      return 2;
    }
    return diff(paths[0], paths[1], json);
  }
  if (paths.size() != 1 || (json && check)) {
    usage();
    return 2;
  }
  return check ? check_json(paths[0]) : render(paths[0], json);
}
