// drx_stats — renders DRX metrics snapshots and validates emitted JSON.
//
// Usage:
//   drx_stats <snapshot>            # text table (snapshot written via
//                                   # DRX_METRICS=<path>)
//   drx_stats --json <snapshot>     # same snapshot as a JSON object
//   drx_stats --diff <a> <b>        # per-metric delta table b - a
//                                   # (--json for machine-readable form)
//   drx_stats --check-json <file>   # exit 0 iff <file> is well-formed
//                                   # JSON (used by CI on DRX_TRACE output)
//
// The text and JSON renderings are the same ones drx_inspect --stats and
// the bench JSON reports use (obs::metrics_to_text / metrics_to_json), so
// every surface prints metrics identically.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

bool read_file(const std::string& path, std::vector<char>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out.resize(static_cast<std::size_t>(size));
  in.read(out.data(), size);
  return static_cast<bool>(in);
}

int check_json(const std::string& path) {
  std::vector<char> text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  if (!drx::obs::json_validate(
          std::string_view(text.data(), text.size()))) {
    std::fprintf(stderr, "error: %s is not well-formed JSON\n", path.c_str());
    return 1;
  }
  std::printf("%s: valid JSON (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}

int render(const std::string& path, bool json) {
  std::vector<char> raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  auto snap = drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  if (!snap.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 snap.status().to_string().c_str());
    return 1;
  }
  if (json) {
    drx::obs::JsonWriter w;
    drx::obs::metrics_to_json(snap.value(), w);
    std::printf("%s\n", w.str().c_str());
  } else {
    std::fputs(drx::obs::metrics_to_text(snap.value()).c_str(), stdout);
  }
  return 0;
}

drx::Result<drx::obs::MetricsSnapshot> load_snapshot(
    const std::string& path) {
  std::vector<char> raw;
  if (!read_file(path, raw)) {
    return drx::Status(drx::ErrorCode::kIoError, "cannot read " + path);
  }
  return drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
}

int diff(const std::string& a_path, const std::string& b_path, bool json) {
  auto a = load_snapshot(a_path);
  auto b = load_snapshot(b_path);
  for (const auto* r : {&a, &b}) {
    if (!r->is_ok()) {
      std::fprintf(stderr, "error: %s\n", r->status().to_string().c_str());
      return 1;
    }
  }

  // Union of metric names, in b's order then a-only extras; delta = b - a
  // (negative deltas mean the metric only appears in the baseline, e.g. a
  // run that skipped a phase).
  struct CounterDelta {
    std::string name;
    std::int64_t delta;
  };
  std::vector<CounterDelta> counters;
  for (const auto& c : b.value().counters) {
    counters.push_back(CounterDelta{
        c.name, static_cast<std::int64_t>(c.value) -
                    static_cast<std::int64_t>(a.value().counter(c.name))});
  }
  for (const auto& c : a.value().counters) {
    if (std::find_if(b.value().counters.begin(), b.value().counters.end(),
                     [&](const auto& s) { return s.name == c.name; }) ==
        b.value().counters.end()) {
      counters.push_back(
          CounterDelta{c.name, -static_cast<std::int64_t>(c.value)});
    }
  }

  struct HistDelta {
    std::string name;
    std::int64_t count;
    std::int64_t sum;
  };
  const auto hist_of = [](const drx::obs::MetricsSnapshot& s,
                          const std::string& name)
      -> const drx::obs::HistogramSample* {
    for (const auto& h : s.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };
  std::vector<HistDelta> hists;
  for (const auto& h : b.value().histograms) {
    const auto* prev = hist_of(a.value(), h.name);
    hists.push_back(HistDelta{
        h.name,
        static_cast<std::int64_t>(h.count) -
            static_cast<std::int64_t>(prev != nullptr ? prev->count : 0),
        static_cast<std::int64_t>(h.sum) -
            static_cast<std::int64_t>(prev != nullptr ? prev->sum : 0)});
  }
  for (const auto& h : a.value().histograms) {
    if (hist_of(b.value(), h.name) == nullptr) {
      hists.push_back(HistDelta{h.name,
                                -static_cast<std::int64_t>(h.count),
                                -static_cast<std::int64_t>(h.sum)});
    }
  }

  if (json) {
    drx::obs::JsonWriter w;
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& c : counters) w.key(c.name).value(c.delta);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& h : hists) {
      w.key(h.name).begin_object();
      w.key("count").value(h.count);
      w.key("sum").value(h.sum);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  std::size_t width = 0;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& h : hists) width = std::max(width, h.name.size());
  std::printf("delta %s -> %s\ncounters:\n", a_path.c_str(), b_path.c_str());
  for (const auto& c : counters) {
    if (c.delta == 0) continue;  // unchanged metrics stay out of the way
    std::printf("  %-*s %+lld\n", static_cast<int>(width), c.name.c_str(),
                static_cast<long long>(c.delta));
  }
  std::printf("histograms:\n");
  for (const auto& h : hists) {
    if (h.count == 0 && h.sum == 0) continue;
    std::printf("  %-*s count=%+lld sum=%+lld\n", static_cast<int>(width),
                h.name.c_str(), static_cast<long long>(h.count),
                static_cast<long long>(h.sum));
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: drx_stats [--json] <snapshot>\n"
               "       drx_stats [--json] --diff <a> <b>\n"
               "       drx_stats --check-json <file>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  bool do_diff = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check-json") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      do_diff = true;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (do_diff) {
    if (paths.size() != 2 || check) {
      usage();
      return 2;
    }
    return diff(paths[0], paths[1], json);
  }
  if (paths.size() != 1 || (json && check)) {
    usage();
    return 2;
  }
  return check ? check_json(paths[0]) : render(paths[0], json);
}
