// drx_stats — renders DRX metrics snapshots and validates emitted JSON.
//
// Usage:
//   drx_stats <snapshot>            # text table (snapshot written via
//                                   # DRX_METRICS=<path>)
//   drx_stats --json <snapshot>     # same snapshot as a JSON object
//   drx_stats --check-json <file>   # exit 0 iff <file> is well-formed
//                                   # JSON (used by CI on DRX_TRACE output)
//
// The text and JSON renderings are the same ones drx_inspect --stats and
// the bench JSON reports use (obs::metrics_to_text / metrics_to_json), so
// every surface prints metrics identically.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

bool read_file(const std::string& path, std::vector<char>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out.resize(static_cast<std::size_t>(size));
  in.read(out.data(), size);
  return static_cast<bool>(in);
}

int check_json(const std::string& path) {
  std::vector<char> text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  if (!drx::obs::json_validate(
          std::string_view(text.data(), text.size()))) {
    std::fprintf(stderr, "error: %s is not well-formed JSON\n", path.c_str());
    return 1;
  }
  std::printf("%s: valid JSON (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}

int render(const std::string& path, bool json) {
  std::vector<char> raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  auto snap = drx::obs::MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  if (!snap.is_ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 snap.status().to_string().c_str());
    return 1;
  }
  if (json) {
    drx::obs::JsonWriter w;
    drx::obs::metrics_to_json(snap.value(), w);
    std::printf("%s\n", w.str().c_str());
  } else {
    std::fputs(drx::obs::metrics_to_text(snap.value()).c_str(), stdout);
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: drx_stats [--json] <snapshot>\n"
               "       drx_stats --check-json <file>\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check-json") == 0) {
      check = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty() || (json && check)) {
    usage();
    return 2;
  }
  return check ? check_json(path) : render(path, json);
}
