#!/usr/bin/env python3
"""DRX invariant linter: project-specific rules no generic tool knows.

Rules (see docs/STATIC_ANALYSIS.md for the full rationale):

  raw-sync-primitive      std::mutex / std::shared_mutex /
                          std::condition_variable / std::lock_guard /
                          std::unique_lock / std::shared_lock /
                          std::scoped_lock are forbidden everywhere in
                          src/ except util/sync.hpp. All locking goes
                          through the annotated drx::util wrappers so
                          clang -Wthread-safety sees every acquisition.

  unannotated-mutex-member  A util::Mutex / util::SharedMutex member must
                          have at least one DRX_GUARDED_BY/DRX_REQUIRES
                          naming it in the same file; a mutex that guards
                          nothing statically expressible carries a
                          suppression explaining what it serializes.

  hot-path-obs-guard      The obs slow paths (detail::profile_*_slow,
                          record_span) must not be called outside
                          src/obs/: hot paths use the inline wrappers
                          that check the relaxed-atomic enabled flag
                          first, so disabled observability costs one
                          load, not a lock.

  axial-mutation          The axial-vector state (Metadata::mapping) may
                          only be extended through Metadata methods
                          (extend_elements); direct mapping.extend()
                          call sites outside core/metadata.* and the
                          AxialMapping implementation desynchronize the
                          element bounds from the chunk grid.

  cache-lock-io [--fast]  No blocking chunk I/O (file_->read_chunk /
                          write_chunk / read_chunks) while holding a
                          ChunkCache lock (the legacy mu_ or a shard's
                          .mu). MIGRATED: the interprocedural version is
                          drx_verify's blocking-under-lock pass
                          (scripts/drx_verify); this regex approximation
                          only runs with --fast, as a cheap pre-commit
                          check that needs no whole-program analysis.

  cache-lock-alloc        No chunk-buffer allocation
                          (std::make_unique<std::byte[]>) while holding
                          a ChunkCache lock; buffers come from the
                          recycled free list (take_buffer_locked).

  cache-shard-pair [--fast]  Never lock a second cache shard while one
                          shard's .mu is held: two util::MutexLock
                          acquisitions on shard mutexes in one scope
                          deadlock against the opposite order. Cross-
                          shard work (capacity borrowing) goes through
                          the ordered ShardPairLock helper, which is the
                          only code exempt from this rule. MIGRATED:
                          drx_verify's lock-order pass owns this
                          invariant (the cache.shard hierarchy level in
                          docs/LOCK_ORDER.md); the regex version only
                          runs with --fast.

  element-granular-copy   The data-plane hot paths (scatter/copy_plan,
                          drx_file, chunk_cache, drxmp, and the dra_like /
                          rowmajor baselines) must not walk elements with
                          for_each_index: element movement goes through
                          the run-coalesced core::CopyPlan
                          (docs/PERFORMANCE.md). Chunk-GRID iteration is
                          fine and is recognized when the call line
                          mentions chunk/covering/zone; anything else
                          (e.g. a row-granular loop) carries a
                          suppression explaining why each visit moves a
                          run, not an element.

  pool-submit-opctx       Every AsyncIoPool submit()/submit_with_future()
                          call site outside src/io/ must propagate the
                          causal context: the call must pass
                          obs::current_op() or an explicit OpContext as
                          its first argument (docs/OBSERVABILITY.md).
                          A deliberately-empty obs::OpContext{} is
                          allowed only with a suppression explaining why
                          no op can be in flight.

Suppressions: `// drx-lint: allow(<rule>) <reason>` on the offending
line, in the contiguous comment block directly above it, or anywhere
earlier in the same function body (the allowance resets at the next
function definition). A reason is mandatory.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RAW_PRIMITIVES = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"(_any)?|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+|static\s+)*"
    r"(?:util::|drx::util::)(?:Shared)?Mutex\s+(\w+)\s*;"
)
MUTEX_VECTOR_MEMBER = re.compile(
    r"^\s*std::vector<\s*(?:util::|drx::util::)(?:Shared)?Mutex\s*>\s+(\w+)\s*;"
)
OBS_SLOW_CALL = re.compile(r"\b(?:detail::)?(profile_\w+_slow|record_span)\s*\(")
AXIAL_EXTEND = re.compile(r"\bmapping\s*\.\s*extend\s*\(")
CACHE_IO = re.compile(r"file_->(read_chunk|write_chunk|read_chunks)\s*\(")
CACHE_ALLOC = re.compile(r"std::make_unique<\s*std::byte\[\]\s*>")
# The legacy global lock (mu_) or a shard lock (s.mu, shards_[i].mu);
# leaf locks like seq_mu_ / io_mu_ match neither alternative.
CACHE_LOCK_ACQUIRE = re.compile(
    r"util::MutexLock\s+\w+\s*\(\s*((?:[\w\[\]\.]+\.)?mu_?)\s*\)")
POOL_SUBMIT = re.compile(r"(?:\.|->)\s*submit(?:_with_future)?\s*\(")
OPCTX_ARG = re.compile(r"\bcurrent_op\s*\(\s*\)")
OPCTX_EMPTY = re.compile(r"\bOpContext\s*\{")
ELEMENT_WALK = re.compile(r"\bfor_each_index\s*\(")
CHUNK_GRID_HINT = re.compile(r"chunk|covering|zone", re.IGNORECASE)
# Data-plane files where a per-element walk is a coalescing regression.
HOT_COPY_FILES = {
    "src/core/scatter.hpp",
    "src/core/copy_plan.hpp",
    "src/core/copy_plan.cpp",
    "src/core/drx_file.cpp",
    "src/core/chunk_cache.hpp",
    "src/core/chunk_cache.cpp",
    "src/core/drxmp.hpp",
    "src/core/drxmp.cpp",
    "src/baselines/dra_like.cpp",
    "src/baselines/rowmajor_file.cpp",
}
SUPPRESS = re.compile(r"//\s*drx-lint:\s*allow\(([\w-]+)\)\s*(\S.*)?$")
FUNC_DEF = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*::\w+\s*\(|^\w[\w\s:<>,&*]*\s+\w+\s*\(.*\)\s*(?:const\s*)?(?:DRX_\w+\([^)]*\)\s*)*\{?\s*$")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def suppressions_for(lines: list[str], idx: int,
                     active_in_function: dict[str, int]) -> set[str]:
    """Rules suppressed at line index `idx` (same line, previous line, or a
    function-scoped allowance recorded in active_in_function)."""
    allowed = set(active_in_function)
    m = SUPPRESS.search(lines[idx])
    if m:
        allowed.add(m.group(1))
    # Walk up through the contiguous comment block above the line.
    probe = idx - 1
    while probe >= 0 and lines[probe].lstrip().startswith("//"):
        m = SUPPRESS.search(lines[probe])
        if m:
            allowed.add(m.group(1))
        probe -= 1
    return allowed


def check_suppression_reasons(path: Path, lines: list[str],
                              findings: list[Finding]) -> None:
    for i, line in enumerate(lines):
        m = SUPPRESS.search(line)
        if m and not m.group(2):
            findings.append(Finding(
                path, i + 1, "suppression-without-reason",
                f"drx-lint allow({m.group(1)}) needs a reason after the ')'"))


def lint_common(path: Path, rel: str, lines: list[str],
                findings: list[Finding]) -> None:
    """Rules that scan every file: raw primitives, obs slow paths, axial."""
    in_obs = rel.startswith("src/obs/")
    is_sync = rel == "src/util/sync.hpp"
    axial_ok = rel in ("src/core/metadata.cpp", "src/core/metadata.hpp",
                       "src/core/axial_mapping.cpp",
                       "src/core/axial_mapping.hpp")
    active: dict[str, int] = {}
    for i, raw in enumerate(lines):
        if FUNC_DEF.match(raw):
            active.clear()
        m = SUPPRESS.search(raw)
        if m:
            active[m.group(1)] = i
        code = strip_comments_and_strings(raw)
        allowed = suppressions_for(lines, i, active)

        if not is_sync and "raw-sync-primitive" not in allowed:
            pm = RAW_PRIMITIVES.search(code)
            if pm:
                findings.append(Finding(
                    path, i + 1, "raw-sync-primitive",
                    f"{pm.group(0)} outside util/sync.hpp; use the "
                    "annotated drx::util wrappers"))

        if not in_obs and "hot-path-obs-guard" not in allowed:
            om = OBS_SLOW_CALL.search(code)
            if om:
                findings.append(Finding(
                    path, i + 1, "hot-path-obs-guard",
                    f"{om.group(1)}() bypasses the relaxed-atomic enabled "
                    "guard; call the inline obs:: wrapper instead"))

        if not axial_ok and "axial-mutation" not in allowed:
            am = AXIAL_EXTEND.search(code)
            if am:
                findings.append(Finding(
                    path, i + 1, "axial-mutation",
                    "direct mapping.extend(); grow through "
                    "Metadata::extend_elements so element bounds and the "
                    "chunk grid stay consistent"))

        if (not rel.startswith("src/io/")
                and "pool-submit-opctx" not in allowed
                and POOL_SUBMIT.search(code)):
            # The context may sit on the next line when the call wraps.
            snippet = code + (strip_comments_and_strings(lines[i + 1])
                              if i + 1 < len(lines) else "")
            if OPCTX_EMPTY.search(snippet):
                findings.append(Finding(
                    path, i + 1, "pool-submit-opctx",
                    "AsyncIoPool submit with an empty obs::OpContext{} "
                    "severs the causal chain; pass obs::current_op() or "
                    "suppress with the reason no op can be in flight"))
            elif not OPCTX_ARG.search(snippet):
                findings.append(Finding(
                    path, i + 1, "pool-submit-opctx",
                    "AsyncIoPool submit without a causal context; pass "
                    "obs::current_op() as the first argument so stage "
                    "attribution and flow arrows follow the op"))

        if (rel in HOT_COPY_FILES
                and "element-granular-copy" not in allowed
                and ELEMENT_WALK.search(code)
                and not CHUNK_GRID_HINT.search(code)):
            findings.append(Finding(
                path, i + 1, "element-granular-copy",
                "per-element for_each_index walk in a data-plane hot "
                "path; move elements through the run-coalesced "
                "core::CopyPlan (chunk-grid iteration is recognized by "
                "chunk/covering/zone on the call line)"))


def lint_mutex_members(path: Path, lines: list[str],
                       findings: list[Finding]) -> None:
    text = "\n".join(lines)
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        m = MUTEX_MEMBER.match(code) or MUTEX_VECTOR_MEMBER.match(code)
        if not m:
            continue
        if "unannotated-mutex-member" in suppressions_for(lines, i, {}):
            continue
        name = m.group(1)
        guarded = re.search(
            r"DRX_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED)"
            r"\(\s*" + re.escape(name) + r"\s*\)", text)
        if not guarded:
            findings.append(Finding(
                path, i + 1, "unannotated-mutex-member",
                f"mutex member '{name}' has no DRX_GUARDED_BY/DRX_REQUIRES "
                "naming it; annotate what it protects or suppress with the "
                "reason it guards state the annotations cannot express"))


def lint_cache_lock(path: Path, lines: list[str],
                    findings: list[Finding], fast: bool) -> None:
    """Tracks which ChunkCache locks are held, by brace depth.

    Recognizes the legacy single lock (`mu_`) and per-shard locks
    (`s.mu`, `shards_[i].mu`); the leaf locks (seq_mu_, error_mu_,
    io_mu_) do not match either form and are exempt by construction.

    cache-lock-io and cache-shard-pair migrated to drx_verify's
    interprocedural passes (blocking-under-lock / lock-order) and are
    emitted only when `fast` is set; cache-lock-alloc has no drx_verify
    counterpart and always runs.
    """
    depth = 0
    # (brace depth at acquisition, is-a-shard-lock)
    held_stack: list[tuple[int, bool]] = []
    suspended = False  # between lock.unlock() and lock.lock()
    shard_exempt = False  # inside the ordered ShardPairLock helper
    active: dict[str, int] = {}
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        if (re.match(r"^\w[\w:<>,&*\s]*ChunkCache::[\w:]+\s*\(", code)
                or re.match(r"^ChunkCache::[\w:]+\s*\(", code)):
            held_stack.clear()
            suspended = False
            active.clear()
            shard_exempt = ("ShardPairLock" in code
                            or "lock_shard_pair" in code)
            # *_locked helpers run with their shard's mu held by contract.
            if re.search(r"ChunkCache::[\w:]*\w+_locked\s*\(", code):
                held_stack.append((depth, True))
        m = SUPPRESS.search(raw)
        if m:
            active[m.group(1)] = i

        allowed = suppressions_for(lines, i, active)
        lm = CACHE_LOCK_ACQUIRE.search(code)
        if lm:
            is_shard = lm.group(1).endswith(".mu")
            if (fast and is_shard and not shard_exempt
                    and any(s for _, s in held_stack) and not suspended
                    and "cache-shard-pair" not in allowed):
                findings.append(Finding(
                    path, i + 1, "cache-shard-pair",
                    "second cache-shard lock taken while one is held; "
                    "nesting shard mutexes deadlocks against the "
                    "opposite order — use the ordered ShardPairLock "
                    "helper"))
            held_stack.append((depth, is_shard))
            suspended = False
        if re.search(r"\block\.unlock\s*\(\s*\)", code):
            suspended = True
        elif re.search(r"\block\.lock\s*\(\s*\)", code):
            suspended = False

        held = bool(held_stack) and not suspended
        if held:
            if (fast and CACHE_IO.search(code)
                    and "cache-lock-io" not in allowed):
                findings.append(Finding(
                    path, i + 1, "cache-lock-io",
                    "blocking chunk I/O while holding a cache lock"))
            if CACHE_ALLOC.search(code) and "cache-lock-alloc" not in allowed:
                findings.append(Finding(
                    path, i + 1, "cache-lock-alloc",
                    "chunk-buffer allocation while holding a cache lock; "
                    "use take_buffer_locked()"))

        depth += code.count("{") - code.count("}")
        while held_stack and depth < held_stack[-1][0]:
            held_stack.pop()


def lint_tree(root: Path, fast: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    src = root / "src"
    if not src.is_dir():
        raise FileNotFoundError(f"no src/ directory under {root}")
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        lint_common(path, rel, lines, findings)
        check_suppression_reasons(path, lines, findings)
        if rel != "src/util/sync.hpp":
            lint_mutex_members(path, lines, findings)
        if rel == "src/core/chunk_cache.cpp":
            lint_cache_lock(path, lines, findings, fast)
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_drx.py",
        description="Enforce DRX-specific concurrency and layering "
                    "invariants over src/.",
        epilog="Exit codes: 0 clean, 1 findings, 2 usage error.")
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: the parent of this script's "
             "directory)")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the finding count")
    parser.add_argument(
        "--fast", action="store_true",
        help="also run the regex approximations of rules that migrated "
             "to drx_verify (cache-lock-io, cache-shard-pair) — a cheap "
             "pre-commit stand-in for the whole-program passes")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    try:
        findings = lint_tree(root, fast=args.fast)
    except (FileNotFoundError, UnicodeDecodeError) as err:
        print(f"lint_drx: {err}", file=sys.stderr)
        return 2

    if findings:
        if not args.quiet:
            for f in findings:
                print(f)
        print(f"lint_drx: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print("lint_drx: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
