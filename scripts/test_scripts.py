#!/usr/bin/env python3
"""Unit tests for the scripts/ checkers, run from ctest as `scripts_unit`.

Written against stdlib unittest so the suite runs in the bare CI image;
the test names follow pytest conventions, so `pytest scripts/` collects
them too where pytest is available.
"""

import contextlib
import importlib.util
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, SCRIPTS_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


bench_regression = _load("check_bench_regression")
prefetch_gate = _load("check_prefetch_gate")
exposition = _load("check_exposition")
lint_drx = _load("lint_drx")

# drx_verify is a package of sibling modules imported bare (it runs as
# `python3 scripts/drx_verify`), so its directory must be importable
# before its __main__ executes.
DRX_VERIFY_DIR = SCRIPTS_DIR / "drx_verify"
sys.path.insert(0, str(DRX_VERIFY_DIR))


def _load_verify(name, filename):
    spec = importlib.util.spec_from_file_location(
        name, DRX_VERIFY_DIR / filename)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


drx_verify = _load_verify("drx_verify_cli", "__main__.py")
ast_frontend = _load_verify("ast_frontend", "ast_frontend.py")


def run_main(mod, argv):
    """Runs mod.main(argv), returning (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        try:
            code = mod.main(argv)
        except SystemExit as exc:  # argparse --help / usage errors
            code = exc.code if isinstance(exc.code, int) else 2
    return code, out.getvalue(), err.getvalue()


def write_report(directory, name, docs):
    path = Path(directory) / name
    path.write_text("".join(json.dumps(d) + "\n" for d in docs),
                    encoding="utf-8")
    return str(path)


def bench_doc(bench, rows, counters=None):
    doc = {"bench": bench,
           "table": {"headers": ["pattern", "backend", "sim ms", "requests"],
                     "rows": rows}}
    if counters is not None:
        doc["metrics"] = {"counters": counters}
    return doc


def cache_rows(sim_ms, requests):
    return [["sequential sweep", "DrxFile", "99.0", "999"],
            ["", f"CachedDrxFile depth=4", str(sim_ms), str(requests)]]


class TestBenchRegression(unittest.TestCase):
    def test_help_exits_zero(self):
        code, out, _ = run_main(bench_regression, ["--help"])
        self.assertEqual(code, 0)

    def test_missing_file_exits_two(self):
        code, _, err = run_main(
            bench_regression, ["/nonexistent/a.json", "/nonexistent/b.json"])
        self.assertEqual(code, 2)
        self.assertIn("ERROR", err)

    def test_invalid_json_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "bad.json"
            bad.write_text("{not json\n", encoding="utf-8")
            good = write_report(tmp, "good.json",
                                [bench_doc("b", [["r", "x", "1", "2"]])])
            code, _, err = run_main(bench_regression, [good, str(bad)])
        self.assertEqual(code, 2)
        self.assertIn("invalid JSON", err)

    def test_non_report_json_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [{"rows": []}])
            code, _, err = run_main(bench_regression, [path, path])
        self.assertEqual(code, 2)
        self.assertIn("not a DRX_BENCH_JSON", err)

    def test_identical_reports_ok(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json",
                                [bench_doc("b", [["r", "x", "10", "20"]])])
            code, out, _ = run_main(bench_regression, [path, path])
        self.assertEqual(code, 0)
        self.assertIn("OK: all bench rows within tolerance", out)

    def test_drift_warns_but_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_report(tmp, "base.json",
                                [bench_doc("b", [["r", "x", "10", "20"]])])
            cur = write_report(tmp, "cur.json",
                               [bench_doc("b", [["r", "x", "20", "20"]])])
            code, out, _ = run_main(bench_regression, [base, cur, "0.25"])
        self.assertEqual(code, 0)  # warn-only by design
        self.assertIn("WARN:", out)
        self.assertIn("+100%", out)

    def test_copy_coalescing_healthy_ratio_ok(self):
        doc = bench_doc("bench_scatter", [["r", "x", "10", "20"]],
                        {"core.copy.runs": 100,
                         "core.copy.elements": 100000})
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [doc])
            code, out, _ = run_main(
                bench_regression, [path, path, "--copy-coalescing"])
        self.assertEqual(code, 0)
        self.assertIn("1000.0 elements/run", out)
        self.assertNotIn("WARN:", out)

    def test_copy_coalescing_degraded_ratio_warns(self):
        doc = bench_doc("bench_scatter", [["r", "x", "10", "20"]],
                        {"core.copy.runs": 100,
                         "core.copy.elements": 150})
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [doc])
            code, out, _ = run_main(
                bench_regression, [path, path, "--copy-coalescing", "5"])
        self.assertEqual(code, 0)  # warn-only by design
        self.assertIn("WARN: copy-coalescing", out)

    def test_copy_coalescing_missing_counters_warns(self):
        doc = bench_doc("bench_scatter", [["r", "x", "10", "20"]])
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [doc])
            code, out, _ = run_main(
                bench_regression, [path, path, "--copy-coalescing"])
        self.assertEqual(code, 0)
        self.assertIn("counters missing", out)

    @staticmethod
    def _overhead_doc(ratio, window_ratio=1.005, with_window_row=True):
        rows = [["flight-on", "1000", "10.2", "170"],
                ["flight-off", "1000", "10.0", "167"],
                ["window-on", "1000", "10.1", "168"],
                ["window-off", "1000", "10.0", "167"],
                ["overhead", f"{ratio:.3f}"]]
        if with_window_row:
            rows.append(["window_overhead", f"{window_ratio:.3f}"])
        return {"bench": "bench_obs_overhead",
                "table": {"headers": ["mode", "touches", "wall ms", "ns/op"],
                          "rows": rows}}

    def test_obs_overhead_under_gate_ok(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [self._overhead_doc(1.01)])
            code, out, _ = run_main(
                bench_regression, [path, path, "--obs-overhead"])
        self.assertEqual(code, 0)
        self.assertIn("wall ratio 1.010", out)
        self.assertIn("window-on/window-off wall ratio 1.005", out)
        self.assertNotIn("WARN: obs-overhead", out)

    def test_obs_overhead_over_gate_warns(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [self._overhead_doc(1.10)])
            code, out, _ = run_main(
                bench_regression, [path, path, "--obs-overhead"])
        self.assertEqual(code, 0)  # warn-only by design
        self.assertIn("WARN: obs-overhead", out)

    def test_window_overhead_over_gate_warns(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(
                tmp, "r.json", [self._overhead_doc(1.01, window_ratio=1.08)])
            code, out, _ = run_main(
                bench_regression, [path, path, "--obs-overhead"])
        self.assertEqual(code, 0)  # warn-only by design
        self.assertIn("WARN: obs-overhead: windowed metrics", out)

    def test_window_overhead_missing_row_warns(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(
                tmp, "r.json",
                [self._overhead_doc(1.01, with_window_row=False)])
            code, out, _ = run_main(
                bench_regression, [path, path, "--obs-overhead"])
        self.assertEqual(code, 0)
        self.assertIn("no 'window_overhead' ratio row", out)

    def test_obs_overhead_missing_bench_warns(self):
        doc = bench_doc("bench_scatter", [["r", "x", "10", "20"]])
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(tmp, "r.json", [doc])
            code, out, _ = run_main(
                bench_regression, [path, path, "--obs-overhead", "1.02"])
        self.assertEqual(code, 0)
        self.assertIn("no bench_obs_overhead report", out)


VALID_SCRAPE = """\
# HELP drx_serve_requests_total cumulative counter
# TYPE drx_serve_requests_total counter
drx_serve_requests_total 1234
# TYPE drx_core_cache_shard_accesses gauge
drx_core_cache_shard_accesses{shard="0"} 40
drx_core_cache_shard_accesses{shard="1"} 25
# TYPE drx_serve_request_latency_us histogram
drx_serve_request_latency_us_bucket{window="60s",le="511"} 10
drx_serve_request_latency_us_bucket{window="60s",le="16383"} 58
drx_serve_request_latency_us_bucket{window="60s",le="+Inf"} 60
drx_serve_request_latency_us_sum{window="60s"} 30720
drx_serve_request_latency_us_count{window="60s"} 60
"""


class TestCheckExposition(unittest.TestCase):
    def _lint(self, text):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "scrape.prom"
            path.write_text(text, encoding="utf-8")
            return run_main(exposition, [str(path)])

    def test_help_exits_zero(self):
        code, _, _ = run_main(exposition, ["--help"])
        self.assertEqual(code, 0)

    def test_missing_file_exits_two(self):
        code, _, err = run_main(exposition, ["/nonexistent/scrape.prom"])
        self.assertEqual(code, 2)
        self.assertIn("ERROR", err)

    def test_no_args_exits_two(self):
        code, _, err = run_main(exposition, [])
        self.assertEqual(code, 2)
        self.assertIn("usage", err)

    def test_valid_scrape_passes(self):
        code, out, _ = self._lint(VALID_SCRAPE)
        self.assertEqual(code, 0, out)
        self.assertIn("valid Prometheus exposition", out)
        self.assertIn("8 samples", out)

    def test_empty_input_passes(self):
        code, out, _ = self._lint("")
        self.assertEqual(code, 0)
        self.assertIn("0 samples", out)

    def test_bad_metric_name_flagged(self):
        code, out, _ = self._lint("# TYPE 9bad gauge\n")
        self.assertEqual(code, 1)
        self.assertIn("bad metric name", out)

    def test_unparseable_sample_flagged(self):
        code, out, _ = self._lint("# TYPE drx_x gauge\ndrx_x\n")
        self.assertEqual(code, 1)
        self.assertIn("unparseable sample", out)

    def test_bad_value_flagged(self):
        code, out, _ = self._lint("# TYPE drx_x gauge\ndrx_x notanum\n")
        self.assertEqual(code, 1)
        self.assertIn("bad sample value", out)

    def test_sample_without_type_flagged(self):
        code, out, _ = self._lint("drx_untyped 1\n")
        self.assertEqual(code, 1)
        self.assertIn("no preceding TYPE", out)

    def test_duplicate_type_flagged(self):
        code, out, _ = self._lint(
            "# TYPE drx_x gauge\n# TYPE drx_x gauge\ndrx_x 1\n")
        self.assertEqual(code, 1)
        self.assertIn("duplicate TYPE", out)

    def test_counter_without_total_suffix_flagged(self):
        code, out, _ = self._lint("# TYPE drx_reqs counter\ndrx_reqs 1\n")
        self.assertEqual(code, 1)
        self.assertIn("does not end in _total", out)

    def test_duplicate_series_flagged(self):
        code, out, _ = self._lint(
            '# TYPE drx_x gauge\ndrx_x{a="1"} 1\ndrx_x{a="1"} 2\n')
        self.assertEqual(code, 1)
        self.assertIn("duplicate series", out)

    def test_bad_label_syntax_flagged(self):
        code, out, _ = self._lint('# TYPE drx_x gauge\ndrx_x{a=1} 2\n')
        self.assertEqual(code, 1)
        self.assertIn("bad label syntax", out)

    def test_non_cumulative_buckets_flagged(self):
        code, out, _ = self._lint(
            "# TYPE drx_h histogram\n"
            'drx_h_bucket{le="1"} 10\n'
            'drx_h_bucket{le="2"} 5\n'
            'drx_h_bucket{le="+Inf"} 10\n'
            "drx_h_sum 15\n"
            "drx_h_count 10\n")
        self.assertEqual(code, 1)
        self.assertIn("not cumulative", out)

    def test_missing_inf_bucket_flagged(self):
        code, out, _ = self._lint(
            "# TYPE drx_h histogram\n"
            'drx_h_bucket{le="1"} 10\n'
            "drx_h_sum 15\n"
            "drx_h_count 10\n")
        self.assertEqual(code, 1)
        self.assertIn("no +Inf bucket", out)

    def test_count_bucket_mismatch_flagged(self):
        code, out, _ = self._lint(
            "# TYPE drx_h histogram\n"
            'drx_h_bucket{le="+Inf"} 10\n'
            "drx_h_sum 15\n"
            "drx_h_count 11\n")
        self.assertEqual(code, 1)
        self.assertIn("_count", out)

    def test_histograms_keyed_per_label_set(self):
        # Two windows of the same family are distinct label sets; each
        # must be internally coherent but they need not agree.
        code, out, _ = self._lint(
            "# TYPE drx_h histogram\n"
            'drx_h_bucket{window="10s",le="+Inf"} 3\n'
            'drx_h_count{window="10s"} 3\n'
            'drx_h_bucket{window="60s",le="+Inf"} 60\n'
            'drx_h_count{window="60s"} 60\n')
        self.assertEqual(code, 0, out)


class TestPrefetchGate(unittest.TestCase):
    def test_help_exits_zero(self):
        code, _, _ = run_main(prefetch_gate, ["--help"])
        self.assertEqual(code, 0)

    def test_missing_file_exits_two(self):
        code, _, err = run_main(
            prefetch_gate, ["/nonexistent/off.json", "/nonexistent/on.json"])
        self.assertEqual(code, 2)
        self.assertIn("ERROR", err)

    def test_invalid_json_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "bad.json"
            bad.write_text("][", encoding="utf-8")
            code, _, err = run_main(prefetch_gate, [str(bad), str(bad)])
        self.assertEqual(code, 2)
        self.assertIn("invalid JSON", err)

    def test_wrong_bench_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_report(
                tmp, "r.json", [bench_doc("bench_other", cache_rows(1, 1))])
            code, _, err = run_main(prefetch_gate, [path, path])
        self.assertEqual(code, 2)
        self.assertIn("bench_chunk_cache", err)

    def test_gate_passes_when_prefetch_wins(self):
        with tempfile.TemporaryDirectory() as tmp:
            off = write_report(tmp, "off.json", [bench_doc(
                "bench_chunk_cache", cache_rows(10.0, 100))])
            on = write_report(tmp, "on.json", [bench_doc(
                "bench_chunk_cache", cache_rows(8.0, 80),
                {"core.cache.prefetch_issued": 5})])
            code, out, _ = run_main(prefetch_gate, [off, on])
        self.assertEqual(code, 0)
        self.assertIn("PASS", out)

    def test_gate_fails_on_regression(self):
        with tempfile.TemporaryDirectory() as tmp:
            off = write_report(tmp, "off.json", [bench_doc(
                "bench_chunk_cache", cache_rows(10.0, 100))])
            on = write_report(tmp, "on.json", [bench_doc(
                "bench_chunk_cache", cache_rows(12.0, 120),
                {"core.cache.prefetch_issued": 5})])
            code, _, err = run_main(prefetch_gate, [off, on])
        self.assertEqual(code, 1)
        self.assertIn("FAIL", err)


class TestLintDrx(unittest.TestCase):
    def _tree(self, tmp, files):
        root = Path(tmp)
        for rel, body in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(body, encoding="utf-8")
        return str(root)

    def test_help_exits_zero(self):
        code, _, _ = run_main(lint_drx, ["--help"])
        self.assertEqual(code, 0)

    def test_missing_src_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, _, err = run_main(lint_drx, ["--root", tmp])
        self.assertEqual(code, 2)
        self.assertIn("no src", err)

    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.cpp": "util::MutexLock lock(mu_);\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)
        self.assertIn("clean", out)

    def test_raw_primitive_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/a.cpp": "std::mutex m;\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("raw-sync-primitive", out)

    def test_suppression_with_reason_accepted(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.cpp":
                "// drx-lint: allow(raw-sync-primitive) interop shim\n"
                "std::mutex m;\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_suppression_without_reason_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.cpp":
                "// drx-lint: allow(raw-sync-primitive)\n"
                "std::mutex m;\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("suppression-without-reason", out)

    def test_unannotated_mutex_member_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.hpp": "class C {\n  util::Mutex mu_;\n};\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("unannotated-mutex-member", out)

    def test_guarded_mutex_member_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.hpp": "class C {\n  util::Mutex mu_;\n"
                             "  int x DRX_GUARDED_BY(mu_);\n};\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_axial_mutation_outside_metadata_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/other.cpp": "meta_.mapping.extend(0, 2);\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("axial-mutation", out)

    def test_axial_mutation_in_metadata_allowed(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/metadata.cpp": "mapping.extend(0, 2);\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_obs_slow_call_outside_obs_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/a.cpp": "detail::profile_chunk_slow(ev);\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("hot-path-obs-guard", out)

    def test_cache_lock_io_flagged_with_fast(self):
        body = ("Status ChunkCache::pin(std::uint64_t a) {\n"
                "  util::MutexLock lock(mu_);\n"
                "  file_->read_chunk(a, span);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, out, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 1)
        self.assertIn("cache-lock-io", out)

    def test_cache_lock_io_migrated_off_by_default(self):
        # The interprocedural version lives in drx_verify; without --fast
        # the regex approximation stays quiet.
        body = ("Status ChunkCache::pin(std::uint64_t a) {\n"
                "  util::MutexLock lock(mu_);\n"
                "  file_->read_chunk(a, span);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_cache_io_after_unlock_clean(self):
        body = ("Status ChunkCache::pin(std::uint64_t a) {\n"
                "  util::MutexLock lock(mu_);\n"
                "  lock.unlock();\n"
                "  file_->read_chunk(a, span);\n"
                "  lock.lock();\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, _, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 0)

    def test_cache_lock_scope_ends_at_brace(self):
        body = ("Status ChunkCache::run_job(std::uint64_t a) {\n"
                "  {\n"
                "    util::MutexLock lock(mu_);\n"
                "  }\n"
                "  file_->write_chunk(a, span);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, _, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 0)

    def test_locked_helper_allocation_flagged(self):
        body = ("ChunkCache::Buffer ChunkCache::grab_locked() {\n"
                "  return std::make_unique<std::byte[]>(n);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("cache-lock-alloc", out)

    def test_shard_pair_nested_lock_flagged(self):
        body = ("void ChunkCache::move_capacity(std::size_t a, std::size_t b) {\n"
                "  util::MutexLock la(shards_[a].mu);\n"
                "  util::MutexLock lb(shards_[b].mu);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, out, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 1)
        self.assertIn("cache-shard-pair", out)

    def test_shard_pair_in_pair_helper_exempt(self):
        body = ("ChunkCache::ShardPairLock::ShardPairLock(ChunkCache& c,\n"
                "    std::size_t a, std::size_t b) {\n"
                "  util::MutexLock la(c.shards_[a].mu);\n"
                "  util::MutexLock lb(c.shards_[b].mu);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, _, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 0)

    def test_sequential_shard_locks_clean(self):
        body = ("void ChunkCache::sweep() {\n"
                "  for (std::size_t i = 0; i < n; ++i) {\n"
                "    util::MutexLock lock(shards_[i].mu);\n"
                "  }\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, _, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 0)

    def test_shard_lock_io_flagged(self):
        body = ("Status ChunkCache::fill(std::uint64_t a) {\n"
                "  util::MutexLock lock(s.mu);\n"
                "  file_->read_chunk(a, span);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/core/chunk_cache.cpp": body})
            code, out, _ = run_main(lint_drx, ["--root", root, "--fast"])
        self.assertEqual(code, 1)
        self.assertIn("cache-lock-io", out)

    def test_element_walk_in_hot_copy_file_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/drx_file.cpp":
                    "for_each_index(clip, [&](const Index& i) {});\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("element-granular-copy", out)

    def test_element_walk_over_chunk_grid_allowed(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/drx_file.cpp":
                    "for_each_index(space_.covering_chunks(box), fn);\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_element_walk_outside_hot_files_allowed(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/coords.hpp":
                    "for_each_index(box, [&](const Index& i) {});\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_pool_submit_without_context_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/a.cpp": "pool_->submit([this] { return run(); });\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("pool-submit-opctx", out)

    def test_pool_submit_with_current_op_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/a.cpp":
                    "pool_->submit(obs::current_op(), [this] { run(); });\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_pool_submit_context_on_next_line_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/mpio/a.cpp":
                    "results.push_back(pool.submit_with_future(\n"
                    "    obs::current_op(), [&] { return run(); }));\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_pool_submit_empty_context_flagged(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/a.cpp":
                    "pool_->submit(obs::OpContext{}, [this] { run(); });\n"})
            code, out, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 1)
        self.assertIn("severs the causal chain", out)

    def test_pool_submit_empty_context_suppressed_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/core/a.cpp":
                    "// drx-lint: allow(pool-submit-opctx) startup path, "
                    "no op can be in flight\n"
                    "pool_->submit(obs::OpContext{}, [this] { run(); });\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_pool_submit_inside_src_io_exempt(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/io/async_pool.cpp":
                    "pool_->submit([this] { return run(); });\n"})
            code, _, _ = run_main(lint_drx, ["--root", root])
        self.assertEqual(code, 0)

    def test_repo_tree_is_clean(self):
        repo = SCRIPTS_DIR.parent
        code, out, _ = run_main(lint_drx, ["--root", str(repo)])
        self.assertEqual(code, 0, f"lint_drx findings in repo:\n{out}")

    def test_repo_tree_is_clean_fast(self):
        repo = SCRIPTS_DIR.parent
        code, out, _ = run_main(lint_drx, ["--root", str(repo), "--fast"])
        self.assertEqual(code, 0, f"lint_drx --fast findings in repo:\n{out}")


class TestDrxVerify(unittest.TestCase):
    """CLI contract of the whole-program analyzer (scripts/drx_verify).

    The analyzer's precision/recall over real defects is pinned by the
    ctest corpus gate (tests/verify/check_corpus.py); these tests cover
    the exit-code contract, the suppression syntax, and the AST walker
    on a hand-written clang-style JSON fixture (no clang needed).
    """

    HIERARCHY = str(SCRIPTS_DIR.parent / "docs" / "LOCK_ORDER.md")

    def _tree(self, tmp, files):
        root = Path(tmp)
        for rel, body in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(body, encoding="utf-8")
        return str(root)

    def _run(self, root, *extra):
        return run_main(drx_verify, ["--root", root, "--hierarchy",
                                     self.HIERARCHY, *extra])

    def test_help_exits_zero(self):
        code, _, _ = run_main(drx_verify, ["--help"])
        self.assertEqual(code, 0)

    def test_missing_src_root_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, _, err = self._run(tmp)
        self.assertEqual(code, 2)
        self.assertIn("no such subtree", err)

    def test_missing_hierarchy_exits_three(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._tree(tmp, {"src/a.cpp": "void f() {}\n"})
            code, _, err = run_main(drx_verify, [
                "--root", tmp,
                "--hierarchy", str(Path(tmp) / "absent.md")])
        self.assertEqual(code, 3)

    def test_bad_compile_commands_exits_three(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.cpp": "void f() {}\n",
                "build/compile_commands.json": "this is not json\n"})
            code, _, err = self._run(
                root, "--frontend", "ast",
                "--compile-commands",
                str(Path(root) / "build" / "compile_commands.json"))
        self.assertEqual(code, 3)
        self.assertIn("cannot load", err)

    def test_compile_commands_not_an_array_exits_three(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.cpp": "void f() {}\n",
                "build/compile_commands.json": "{\"file\": \"a.cpp\"}\n"})
            code, _, err = self._run(
                root, "--frontend", "ast",
                "--compile-commands",
                str(Path(root) / "build" / "compile_commands.json"))
        self.assertEqual(code, 3)
        self.assertIn("not a compile_commands.json array", err)

    def test_malformed_ast_dump_exits_three(self):
        # A stand-in "clang" that emits broken JSON: the CLI must report
        # malformed input, not crash or pass.
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {
                "src/a.cpp": "void f() {}\n",
                "fake-clang": "#!/bin/sh\necho '{'\n"})
            fake = Path(root) / "fake-clang"
            fake.chmod(0o755)
            cc = [{"directory": root, "file": "src/a.cpp",
                   "command": "c++ -c src/a.cpp"}]
            ccpath = Path(root) / "compile_commands.json"
            ccpath.write_text(json.dumps(cc), encoding="utf-8")
            code, _, err = self._run(
                root, "--frontend", "ast",
                "--compile-commands", str(ccpath), "--clang", str(fake))
        self.assertEqual(code, 3)
        self.assertIn("malformed AST JSON", err)

    def test_ast_walker_on_synthetic_fixture(self):
        # Clang-style AST JSON, hand-written: a function that acquires a
        # MutexLock must yield ACQUIRE + scope-close RELEASE facts.
        fixture = {
            "kind": "TranslationUnitDecl",
            "inner": [{
                "kind": "NamespaceDecl", "name": "drx",
                "inner": [{
                    "kind": "FunctionDecl", "name": "touch",
                    "loc": {"file": "src/core/a.cpp", "line": 3},
                    "type": {"qualType": "void ()"},
                    "inner": [{
                        "kind": "CompoundStmt",
                        "inner": [{
                            "kind": "DeclStmt",
                            "inner": [{
                                "kind": "VarDecl", "name": "lock",
                                "loc": {"line": 4},
                                "type": {"qualType": "util::MutexLock"},
                                "inner": [{
                                    "kind": "CXXConstructExpr",
                                    "inner": [{
                                        "kind": "DeclRefExpr",
                                        "referencedDecl": {"name": "mu_"},
                                    }],
                                }],
                            }],
                        }],
                    }],
                }],
            }],
        }
        facts = ast_frontend.parse_ast_json(
            fixture, SCRIPTS_DIR.parent, "src/core/a.cpp")
        fns = [f for f in facts.functions if f.name == "drx::touch"]
        self.assertEqual(len(fns), 1)
        kinds = [(e.kind, e.data) for e in fns[0].events]
        self.assertIn(("acquire", "mu_"), kinds)
        self.assertIn(("release", "mu_"), kinds)

    def test_ast_walker_rejects_wrong_root(self):
        with self.assertRaises(ast_frontend.AstError):
            ast_frontend.parse_ast_json(
                {"kind": "CompoundStmt"}, SCRIPTS_DIR.parent, "x.cpp")
        with self.assertRaises(ast_frontend.AstError):
            ast_frontend.parse_ast_json(
                ["not", "a", "dict"], SCRIPTS_DIR.parent, "x.cpp")

    DEFECT = ("#include \"util/error.hpp\"\n"
              "namespace drx {\n"
              "Status spill() { return Status::ok(); }\n"
              "void f() {\n"
              "  (void)spill();\n"
              "}\n"
              "}  // namespace drx\n")

    def test_discarded_status_found(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/util/a.cpp": self.DEFECT})
            code, out, _ = self._run(root)
        self.assertEqual(code, 1)
        self.assertIn("error-discipline", out)

    def test_suppression_silences_finding(self):
        body = self.DEFECT.replace(
            "  (void)spill();",
            "  // drx-verify: allow(error-discipline) best-effort spill\n"
            "  (void)spill();")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/util/a.cpp": body})
            code, _, _ = self._run(root)
            strict_code, _, _ = self._run(root, "--strict")
        self.assertEqual(code, 0)
        self.assertEqual(strict_code, 0)  # justified: strict-clean too

    def test_strict_rejects_bare_suppression(self):
        body = self.DEFECT.replace(
            "  (void)spill();",
            "  // drx-verify: allow(error-discipline)\n"
            "  (void)spill();")
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/util/a.cpp": body})
            code, _, _ = self._run(root)
            strict_code, out, _ = self._run(root, "--strict")
        self.assertEqual(code, 0)  # suppressed either way
        self.assertEqual(strict_code, 1)  # but strict wants the reason

    def test_json_and_text_reports_written(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self._tree(tmp, {"src/util/a.cpp": self.DEFECT})
            jout = Path(tmp) / "out" / "findings.json"
            tout = Path(tmp) / "out" / "findings.txt"
            code, _, _ = self._run(root, "--json", str(jout),
                                   "--text", str(tout), "-q")
            payload = json.loads(jout.read_text(encoding="utf-8"))
            text = tout.read_text(encoding="utf-8")
        self.assertEqual(code, 1)
        self.assertEqual(len(payload["findings"]), 1)
        self.assertEqual(payload["findings"][0]["rule"], "error-discipline")
        self.assertIn("error-discipline", text)


if __name__ == "__main__":
    unittest.main()
