#!/usr/bin/env python3
"""Prometheus text-exposition (0.0.4) format lint for the drx exporter.

Usage: check_exposition.py <scrape.prom | ->

Validates a saved /metrics scrape (bench_serving's DRX_SCRAPE_OUT, or any
curl of the embedded exporter) against the subset of the exposition
format the drx exporter promises to emit:

  - every sample line parses: name, optional {label="value",...}, float
    value (inf/nan spellings included);
  - metric and label names are legal Prometheus identifiers;
  - every sample belongs to a family announced by a preceding # TYPE
    line, and each family is typed at most once;
  - counter families end in _total (the drx convention rate() relies on);
  - histogram families are coherent per label set: le buckets are
    cumulative non-decreasing, a +Inf bucket exists, and _count equals
    the +Inf bucket;
  - no duplicate series (same name and identical label set twice).

Exit codes: 0 valid, 1 format violation (all violations are listed),
2 unreadable input.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value [timestamp] — labels and timestamp optional.
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$")
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_value(text):
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(raw):
    """Returns a sorted tuple of (name, value) pairs, or None on bad
    syntax (unparseable chunk, duplicate label name)."""
    if raw is None or raw == "":
        return ()
    pairs = []
    pos = 0
    while pos < len(raw):
        match = LABEL.match(raw, pos)
        if match is None:
            return None
        pairs.append((match.group(1), match.group(2)))
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None
            pos += 1
    if len({name for name, _ in pairs}) != len(pairs):
        return None
    return tuple(sorted(pairs))


def family_of(name):
    """Strips the histogram sample suffixes back to the # TYPE family."""
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(lines):
    problems = []
    types = {}        # family -> type
    seen_series = set()
    # (family, labels-minus-le) -> list of (le, value) for histograms.
    buckets = {}
    counts = {}

    for line_no, line in enumerate(lines, 1):
        line = line.rstrip("\n")
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in TYPES:
                    problems.append(f"line {line_no}: malformed TYPE line")
                    continue
                name = parts[2]
                if not METRIC_NAME.match(name):
                    problems.append(
                        f"line {line_no}: bad metric name in TYPE: {name}")
                elif name in types:
                    problems.append(
                        f"line {line_no}: duplicate TYPE for {name}")
                else:
                    types[name] = parts[3]
                    if parts[3] == "counter" and not name.endswith("_total"):
                        problems.append(
                            f"line {line_no}: counter {name} does not end "
                            "in _total")
            # HELP and free comments pass.
            continue

        match = SAMPLE.match(line)
        if match is None:
            problems.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels"))
        if labels is None:
            problems.append(f"line {line_no}: bad label syntax: {line!r}")
            continue
        value = parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {line_no}: bad sample value: {match.group('value')}")
            continue
        for label_name, _ in labels:
            if not LABEL_NAME.match(label_name):
                problems.append(
                    f"line {line_no}: bad label name: {label_name}")

        series = (name, labels)
        if series in seen_series:
            problems.append(
                f"line {line_no}: duplicate series {name}{dict(labels)}")
        seen_series.add(series)

        family = family_of(name)
        if family in types and types[family] == "histogram":
            rest = tuple(p for p in labels if p[0] != "le")
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    problems.append(
                        f"line {line_no}: histogram bucket without le label")
                else:
                    le_val = float("inf") if le == "+Inf" else parse_value(le)
                    if le_val is None:
                        problems.append(
                            f"line {line_no}: bad le value: {le}")
                    else:
                        buckets.setdefault((family, rest), []).append(
                            (le_val, value, line_no))
            elif name.endswith("_count"):
                counts[(family, rest)] = (value, line_no)
            family = None  # typed via the histogram family
        if family is not None and name not in types:
            problems.append(
                f"line {line_no}: sample {name} has no preceding TYPE")

    for (family, rest), entries in buckets.items():
        entries.sort(key=lambda e: e[0])
        prev = None
        for le, value, line_no in entries:
            if prev is not None and value < prev:
                problems.append(
                    f"line {line_no}: histogram {family} buckets not "
                    f"cumulative at le={le:g}")
            prev = value
        if not entries or entries[-1][0] != float("inf"):
            problems.append(f"histogram {family}{dict(rest)}: no +Inf bucket")
        else:
            inf_value = entries[-1][1]
            count = counts.get((family, rest))
            if count is not None and count[0] != inf_value:
                problems.append(
                    f"line {count[1]}: histogram {family} _count "
                    f"{count[0]:g} != +Inf bucket {inf_value:g}")
    return problems


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1 or argv[0].startswith("--"):
        if argv and argv[0] in ("-h", "--help"):
            print(__doc__)
            return 0
        print(f"usage: check_exposition.py <scrape.prom | ->",
              file=sys.stderr)
        return 2
    path = argv[0]
    try:
        if path == "-":
            lines = sys.stdin.readlines()
        else:
            with open(path, encoding="utf-8") as f:
                lines = f.readlines()
    except OSError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2

    problems = lint(lines)
    samples = sum(1 for ln in lines
                  if ln.strip() and not ln.startswith("#"))
    for problem in problems:
        print(f"BAD: {problem}")
    if problems:
        print(f"{path}: {len(problems)} format violation(s) over "
              f"{samples} sample(s)")
        return 1
    print(f"{path}: valid Prometheus exposition ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
