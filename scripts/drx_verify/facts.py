"""Fact IR shared by the drx_verify frontends.

Both frontends (the clang AST JSON walker and the built-in source
parser) lower a translation unit to the same small vocabulary of facts;
the four analysis passes never look at C++ again after this point.

The unit of analysis is the *function body*: an ordered list of Events
(lock acquisitions/releases, calls, error-value discards) plus a
summary of the function's signature. Lambdas become synthetic functions
(name `<parent>::<lambda@line>`): their bodies do NOT execute at the
point of definition, so their events never inherit the parent's held
set — instead `passed_to` records the call the lambda was handed to,
and the passes decide the entry context (e.g. a lambda registered via
`register_scrape_provider` runs under the provider mutex; a lambda
submitted to the AsyncIoPool runs on a worker with nothing held).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Event kinds.
ACQUIRE = "acquire"          # data: lock expr text; arg2: scope depth
RELEASE = "release"          # data: lock expr text (explicit .unlock())
REACQUIRE = "reacquire"      # data: lock expr text (explicit .lock())
CALL = "call"                # data: callee text (e.g. "file_->read_chunk")
DISCARD = "discard"          # data: callee text of a (void)-cast call
VALUE_CALL = "value_call"    # data: object text of a .value() call
OK_CHECK = "ok_check"        # data: object text of an is_ok()/bool check
RETURN_INT = "return_int"    # data: the returned literal (e.g. "-1")


@dataclass
class Event:
    kind: str
    data: str
    line: int
    depth: int = 0  # brace depth relative to function body start


@dataclass
class Function:
    name: str                # qualified: "drx::core::ChunkCache::pin"
    file: str                # repo-relative path
    line: int
    return_type: str = ""
    events: list[Event] = field(default_factory=list)
    # Lock exprs from DRX_REQUIRES(...) / DRX_ACQUIRE(...) annotations on
    # the declaration: the caller-side contract.
    requires: list[str] = field(default_factory=list)
    acquires: list[str] = field(default_factory=list)
    # For synthetic lambda functions: the name of the call the lambda
    # was passed to ("" = not an argument / not a lambda).
    passed_to: str = ""
    is_lambda: bool = False


@dataclass
class Include:
    file: str      # repo-relative including file
    target: str    # the quoted include path, e.g. "core/coords.hpp"
    line: int


@dataclass
class TUFacts:
    """Facts extracted from one translation unit (or one source file)."""
    functions: list[Function] = field(default_factory=list)
    includes: list[Include] = field(default_factory=list)

    def merge(self, other: "TUFacts") -> None:
        self.functions.extend(other.functions)
        self.includes.extend(other.includes)


def dedupe(facts: TUFacts) -> TUFacts:
    """Drops duplicate facts (a header parsed through several TUs)."""
    out = TUFacts()
    seen_fn: set[tuple[str, str, int]] = set()
    for fn in facts.functions:
        key = (fn.name, fn.file, fn.line)
        if key in seen_fn:
            continue
        seen_fn.add(key)
        out.functions.append(fn)
    seen_inc: set[tuple[str, str, int]] = set()
    for inc in facts.includes:
        key = (inc.file, inc.target, inc.line)
        if key in seen_inc:
            continue
        seen_inc.add(key)
        out.includes.append(inc)
    return out
