"""Clang AST JSON frontend for drx_verify.

Consumes `compile_commands.json` and per-TU clang AST dumps
(`clang++ <args> -fsyntax-only -Xclang -ast-dump=json`), lowering them
to the same fact IR as the source frontend. Used by the `drx-verify`
CI job where clang is guaranteed; the AST dumps are cached keyed on
the source hash + command so warm runs skip clang entirely.

Clang's JSON location encoding is differential: a node's "loc"/"range"
omit "file" and "line" when unchanged from the previously printed
node, so the walker maintains a cursor updated from every loc it
passes (macro locations resolve through "expansionLoc"). Nodes whose
cursor file is outside the repo (system headers) are skipped wholesale.

Known limitation vs the source frontend: clang's JSON does not print
the argument expressions of thread-safety attributes, so
DRX_REQUIRES/DRX_ACQUIRE contracts are not recovered here — entry
contexts from annotations are a source-frontend refinement. Include
edges are likewise not in the AST; the CLI scans them textually for
both frontends.
"""

from __future__ import annotations

import hashlib
import json
import re
import shlex
import subprocess
from pathlib import Path

from facts import (ACQUIRE, CALL, DISCARD, Event, Function, OK_CHECK,
                   REACQUIRE, RELEASE, RETURN_INT, TUFacts, VALUE_CALL)

LOCK_TYPES = ("MutexLock", "ReaderMutexLock", "WriterMutexLock")
PASSTHROUGH = {
    "ImplicitCastExpr", "ParenExpr", "ExprWithCleanups",
    "MaterializeTemporaryExpr", "CXXBindTemporaryExpr", "ConstantExpr",
    "FullComment",
}
FUNC_KINDS = {
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl",
}


class AstError(Exception):
    """Malformed AST JSON or compile_commands (exit code 3 at the CLI)."""


def _expr_text(node: dict) -> str:
    """Reconstructs a lock/callee expression as source-like text."""
    if not isinstance(node, dict):
        return ""
    kind = node.get("kind", "")
    inner = [n for n in node.get("inner", []) if isinstance(n, dict)]
    if kind in PASSTHROUGH:
        return _expr_text(inner[0]) if inner else ""
    if kind == "DeclRefExpr":
        ref = node.get("referencedDecl", {})
        return ref.get("name", "")
    if kind == "MemberExpr":
        name = node.get("name", "")
        base = _expr_text(inner[0]) if inner else ""
        if not base or base == "this":
            return name
        return f"{base}{'->' if node.get('isArrow') else '.'}{name}"
    if kind == "CXXThisExpr":
        return "this"
    if kind == "ArraySubscriptExpr" and len(inner) >= 2:
        return f"{_expr_text(inner[0])}[{_expr_text(inner[1])}]"
    if kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
        return f"{_expr_text(inner[0])}(...)" if inner else ""
    if kind == "UnaryOperator":
        op = node.get("opcode", "")
        sub = _expr_text(inner[0]) if inner else ""
        return f"{op}{sub}" if op in ("*", "&", "-") else sub
    if inner:
        return _expr_text(inner[0])
    return ""


class _Walker:
    def __init__(self, repo_root: Path, default_file: str):
        self.repo_root = repo_root
        self.cur_file = default_file
        self.cur_line = 0
        self.functions: list[Function] = []
        self.lambda_count = 0

    # ---- location cursor -------------------------------------------------

    def _touch_loc(self, loc) -> None:
        if not isinstance(loc, dict):
            return
        if "expansionLoc" in loc:
            loc = loc["expansionLoc"]
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]

    def _visit_locs(self, node: dict) -> tuple[str, int]:
        self._touch_loc(node.get("loc"))
        rng = node.get("range")
        if isinstance(rng, dict):
            self._touch_loc(rng.get("begin"))
        return self.cur_file, self.cur_line

    def _rel(self, path: str) -> str | None:
        try:
            p = Path(path)
            if not p.is_absolute():
                p = (self.repo_root / p)
            return p.resolve().relative_to(
                self.repo_root.resolve()).as_posix()
        except ValueError:
            return None

    # ---- declaration walk ------------------------------------------------

    def walk_decls(self, node: dict, context: list[str]) -> None:
        kind = node.get("kind", "")
        file, line = self._visit_locs(node)
        inner = [n for n in node.get("inner", []) if isinstance(n, dict)]

        if kind == "NamespaceDecl":
            name = node.get("name", "")
            sub = context + ([name] if name else [])
            for child in inner:
                self.walk_decls(child, sub)
            return
        if kind in ("CXXRecordDecl", "ClassTemplateDecl",
                    "ClassTemplateSpecializationDecl"):
            name = node.get("name", "")
            sub = context + ([name] if name else [])
            for child in inner:
                self.walk_decls(child, sub)
            return
        if kind in ("LinkageSpecDecl", "TranslationUnitDecl",
                    "FunctionTemplateDecl", "ExportDecl"):
            for child in inner:
                self.walk_decls(child, context)
            return
        if kind in FUNC_KINDS:
            rel = self._rel(file)
            if rel is None:
                return  # outside the repo (system/header soup)
            name = node.get("name", "")
            if not name:
                return
            qual = "::".join(context + [name])
            qt = node.get("type", {}).get("qualType", "")
            ret = qt.split("(", 1)[0].strip() if "(" in qt else ""
            body = next((n for n in inner
                         if n.get("kind") == "CompoundStmt"), None)
            fn = Function(name=qual, file=rel, line=line,
                          return_type=ret.replace(" ", ""))
            self.functions.append(fn)
            if body is not None:
                self.walk_body(body, fn, {}, current_call="")
            return
        # Other decls may still advance the cursor through their inners.
        for child in inner:
            self.walk_decls(child, context)

    # ---- function-body walk ----------------------------------------------

    def walk_body(self, node: dict, fn: Function,
                  lock_vars: dict[str, str], current_call: str) -> None:
        kind = node.get("kind", "")
        file, line = self._visit_locs(node)
        inner = [n for n in node.get("inner", []) if isinstance(n, dict)]

        if kind == "CompoundStmt":
            scope_locks: list[str] = []
            for child in inner:
                declared = self._visit_stmt(child, fn, lock_vars,
                                            current_call)
                scope_locks.extend(declared)
            for expr in reversed(scope_locks):
                fn.events.append(Event(RELEASE, expr, self.cur_line))
            return
        self._visit_stmt(node, fn, lock_vars, current_call)

    def _visit_stmt(self, node: dict, fn: Function,
                    lock_vars: dict[str, str],
                    current_call: str) -> list[str]:
        """Visits one statement; returns lock exprs it declared (so the
        enclosing CompoundStmt can release them at scope exit)."""
        kind = node.get("kind", "")
        file, line = self._visit_locs(node)
        inner = [n for n in node.get("inner", []) if isinstance(n, dict)]
        declared: list[str] = []

        if kind == "CompoundStmt":
            self.walk_body(node, fn, lock_vars, current_call)
            return []

        if kind == "LambdaExpr":
            self.lambda_count += 1
            lfn = Function(
                name=f"{fn.name}::<lambda@{line}>",
                file=fn.file, line=line, is_lambda=True,
                passed_to=current_call.split("->")[-1].split(".")[-1]
                .split("::")[-1])
            self.functions.append(lfn)
            body = None
            for child in inner:
                if child.get("kind") == "CompoundStmt":
                    body = child
                self._visit_locs(child)
            if body is not None:
                self.walk_body(body, lfn, {}, current_call="")
            return []

        if kind in ("DeclStmt", "CXXCtorInitializer"):
            for child in inner:
                declared.extend(
                    self._visit_stmt(child, fn, lock_vars, current_call))
            return declared

        if kind == "VarDecl":
            qt = node.get("type", {}).get("qualType", "")
            if any(t in qt for t in LOCK_TYPES) and "*" not in qt \
                    and "&" not in qt:
                ctor = self._find_kind(node, "CXXConstructExpr")
                args = [n for n in (ctor or {}).get("inner", [])
                        if isinstance(n, dict)]
                expr = _expr_text(args[0]) if args else ""
                if expr:
                    lock_vars[node.get("name", "")] = expr
                    fn.events.append(Event(ACQUIRE, expr, line))
                    declared.append(expr)
                for child in inner:
                    self._visit_locs(child)
                return declared
            if "ShardPairLock" in qt:
                fn.events.append(Event(ACQUIRE, "ShardPairLock", line))
                declared.append("ShardPairLock")
                for child in inner:
                    self._visit_locs(child)
                return declared
            for child in inner:
                declared.extend(
                    self._visit_stmt(child, fn, lock_vars, current_call))
            return declared

        if kind == "CXXMemberCallExpr":
            member = inner[0] if inner else {}
            mname = member.get("name", "") \
                if member.get("kind") == "MemberExpr" else ""
            base_text = ""
            minner = [n for n in member.get("inner", [])
                      if isinstance(n, dict)]
            if minner:
                base_text = _expr_text(minner[0])
            if mname in ("unlock", "lock") and base_text in lock_vars:
                fn.events.append(Event(
                    RELEASE if mname == "unlock" else REACQUIRE,
                    lock_vars[base_text], line))
            elif mname == "unlock" and base_text:
                # A guard this function never constructed: caller-owned
                # lock passed by reference (`*_locked` contract) —
                # modeled as suspending the caller's lock.
                fn.events.append(Event(
                    RELEASE, f"<param:{base_text}>", line))
            elif mname == "lock" and base_text and any(
                    e.kind == RELEASE and e.data == f"<param:{base_text}>"
                    for e in fn.events):
                fn.events.append(Event(
                    REACQUIRE, f"<param:{base_text}>", line))
            elif mname == "value":
                base = minner[0] if minner else {}
                while base.get("kind") in PASSTHROUGH \
                        and base.get("inner"):
                    base = [n for n in base["inner"]
                            if isinstance(n, dict)][0]
                if base.get("kind", "").endswith("CallExpr"):
                    binner = [n for n in base.get("inner", [])
                              if isinstance(n, dict)]
                    callee = _expr_text(binner[0]) if binner else ""
                    fn.events.append(Event(
                        VALUE_CALL,
                        f"call:{callee}" if callee else "<temporary>",
                        line))
                else:
                    obj = base_text.split("->")[-1].split(".")[-1]
                    fn.events.append(Event(VALUE_CALL, obj, line))
            elif mname == "is_ok":
                # `x.status().is_ok()` checks x, not the temporary.
                obj = re.sub(r"(?:\.|->)status\(\.\.\.\)$", "", base_text)
                obj = obj.split("->")[-1].split(".")[-1]
                fn.events.append(Event(OK_CHECK, obj, line))
            elif mname == "status":
                # Reading `x.status()` (DRX_RETURN_IF_ERROR(x.status()))
                # is an explicit error inspection of x.
                obj = base_text.split("->")[-1].split(".")[-1]
                fn.events.append(Event(OK_CHECK, obj, line))
            elif mname:
                callee = _expr_text(member)
                fn.events.append(Event(CALL, callee, line))
                for child in inner[1:]:
                    self._visit_stmt(child, fn, lock_vars,
                                     current_call=callee)
                return []
            for child in inner[1:]:
                self._visit_stmt(child, fn, lock_vars, current_call)
            return []

        if kind == "CallExpr":
            callee = _expr_text(inner[0]) if inner else ""
            if callee:
                fn.events.append(Event(CALL, callee, line))
            for child in inner[1:]:
                self._visit_stmt(child, fn, lock_vars, current_call=callee)
            return []

        if kind == "CStyleCastExpr" \
                and node.get("type", {}).get("qualType") == "void":
            call = self._find_kind(node, "CallExpr") \
                or self._find_kind(node, "CXXMemberCallExpr")
            if call is not None:
                cinner = [n for n in call.get("inner", [])
                          if isinstance(n, dict)]
                callee = _expr_text(cinner[0]) if cinner else ""
                if callee:
                    fn.events.append(Event(DISCARD, callee, line))
            for child in inner:
                self._visit_stmt(child, fn, lock_vars, current_call)
            return []

        if kind == "ReturnStmt":
            neg = self._find_negative_int(node)
            if neg is not None:
                fn.events.append(Event(RETURN_INT, neg, line))
            for child in inner:
                self._visit_stmt(child, fn, lock_vars, current_call)
            return []

        if kind in ("IfStmt", "WhileStmt", "ForStmt", "DoStmt",
                    "SwitchStmt", "ConditionalOperator",
                    "BinaryOperator", "UnaryOperator"):
            # Heuristic dominator: a boolean test of a named decl counts
            # as an ok-check (matches `if (r)` / `if (!r)` idiom).
            if kind == "IfStmt" and inner:
                cond = inner[0]
                name = self._bool_tested_name(cond)
                if name:
                    fn.events.append(Event(OK_CHECK, name, line))
            for child in inner:
                self._visit_stmt(child, fn, lock_vars, current_call)
            return []

        for child in inner:
            declared.extend(
                self._visit_stmt(child, fn, lock_vars, current_call))
        return declared

    # ---- small helpers ---------------------------------------------------

    def _find_kind(self, node: dict, kind: str) -> dict | None:
        if node.get("kind") == kind:
            return node
        for child in node.get("inner", []):
            if isinstance(child, dict):
                found = self._find_kind(child, kind)
                if found is not None:
                    return found
        return None

    def _find_negative_int(self, node: dict) -> str | None:
        if node.get("kind") == "UnaryOperator" \
                and node.get("opcode") == "-":
            lit = self._find_kind(node, "IntegerLiteral")
            if lit is not None:
                return f"-{lit.get('value', '')}"
        for child in node.get("inner", []):
            if isinstance(child, dict):
                found = self._find_negative_int(child)
                if found is not None:
                    return found
        return None

    def _bool_tested_name(self, cond: dict) -> str:
        k = cond.get("kind", "")
        inner = [n for n in cond.get("inner", []) if isinstance(n, dict)]
        if k == "UnaryOperator" and cond.get("opcode") == "!" and inner:
            return self._bool_tested_name(inner[0])
        if k in PASSTHROUGH or k == "CXXOperatorCallExpr":
            return self._bool_tested_name(inner[0]) if inner else ""
        if k == "DeclRefExpr":
            return cond.get("referencedDecl", {}).get("name", "")
        return ""


def parse_ast_json(data, repo_root: Path, tu_file: str) -> TUFacts:
    if not isinstance(data, dict) or "kind" not in data:
        raise AstError(f"{tu_file}: AST JSON has no root node")
    if data.get("kind") != "TranslationUnitDecl":
        raise AstError(
            f"{tu_file}: root node is {data.get('kind')!r}, expected "
            f"TranslationUnitDecl")
    walker = _Walker(repo_root, tu_file)
    walker.walk_decls(data, [])
    return TUFacts(functions=walker.functions)


def load_compile_commands(path: Path) -> list[dict]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise AstError(f"cannot load {path}: {e}") from e
    if not isinstance(data, list) or not all(
            isinstance(e, dict) and "file" in e for e in data):
        raise AstError(f"{path}: not a compile_commands.json array")
    return data


class AstFrontend:
    def __init__(self, root: Path, compile_commands: Path,
                 cache_dir: Path | None = None, clang: str = ""):
        self.root = root
        self.entries = load_compile_commands(compile_commands)
        self.cache_dir = cache_dir
        self.clang = clang

    def _dump_args(self, entry: dict) -> list[str]:
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry.get("command", ""))
        if not argv:
            raise AstError(f"empty command for {entry.get('file')}")
        if self.clang:
            argv[0] = self.clang
        out: list[str] = []
        skip = False
        for a in argv:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            if a == "-c":
                continue
            out.append(a)
        out += ["-fsyntax-only", "-Xclang", "-ast-dump=json", "-w"]
        return out

    def _cache_key(self, src: Path, argv: list[str]) -> str:
        h = hashlib.sha256()
        h.update(src.read_bytes())
        h.update("\0".join(argv).encode())
        return h.hexdigest()

    def parse_tu(self, entry: dict) -> TUFacts:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry.get("directory", ".")) / src
        argv = self._dump_args(entry)
        cached = None
        if self.cache_dir is not None and src.exists():
            key = self._cache_key(src, argv)
            cached = self.cache_dir / f"{key}.json"
            if cached.exists():
                try:
                    data = json.loads(cached.read_text(encoding="utf-8"))
                except json.JSONDecodeError as e:
                    raise AstError(f"corrupt AST cache {cached}: {e}") from e
                return parse_ast_json(data, self.root, str(src))
        try:
            proc = subprocess.run(
                argv, cwd=entry.get("directory", str(self.root)),
                capture_output=True, text=True, check=False)
        except OSError as e:
            raise AstError(f"cannot run {argv[0]}: {e}") from e
        if proc.returncode != 0:
            raise AstError(
                f"AST dump failed for {entry['file']}: "
                f"{proc.stderr.strip()[:500]}")
        try:
            data = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            raise AstError(
                f"malformed AST JSON for {entry['file']}: {e}") from e
        if cached is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            cached.write_text(proc.stdout, encoding="utf-8")
        return parse_ast_json(data, self.root, str(src))

    def parse_all(self, file_filter=None) -> TUFacts:
        facts = TUFacts()
        for entry in self.entries:
            if file_filter is not None and not file_filter(entry["file"]):
                continue
            facts.merge(self.parse_tu(entry))
        return facts
