"""drx_verify — whole-program lock-order / error-discipline / layering
analyzer for the drx tree.

Usage:
    python3 scripts/drx_verify [--root DIR] [--src-root SUBDIR]
                               [--hierarchy docs/LOCK_ORDER.md]
                               [--frontend auto|ast|source]
                               [--compile-commands build/compile_commands.json]
                               [--ast-cache DIR] [--clang BIN]
                               [--json OUT.json] [--text OUT.txt]
                               [--strict] [-q]

Exit codes:
    0  no unsuppressed findings
    1  findings (or, with --strict, suppressions lacking justification)
    2  usage error
    3  malformed input (compile_commands, AST JSON, hierarchy doc)

Frontends: `ast` consumes clang AST JSON via compile_commands.json
(high fidelity; CI). `source` is the built-in parser (no toolchain
needed; powers the local ctest gate). `auto` picks `ast` when a
compile_commands path is given and clang is runnable, else `source`.
Include edges for the layering pass are always scanned textually.
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path

from ast_frontend import AstError, AstFrontend
from facts import TUFacts, dedupe
from hierarchy import HierarchyError, load as load_hierarchy
from passes import build_program, run_all
from report import (apply_suppressions, exit_code, render_json, render_text,
                    scan_suppressions)
from source_frontend import SourceFrontend

EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_BAD_INPUT = 3


def parse_args(argv: list[str]) -> argparse.Namespace:
    p = argparse.ArgumentParser(prog="drx_verify", add_help=True)
    p.add_argument("--root", type=Path, default=Path.cwd(),
                   help="repository root (default: cwd)")
    p.add_argument("--src-root", default="src",
                   help="subtree to analyze, relative to --root")
    p.add_argument("--hierarchy", type=Path, default=None,
                   help="lock hierarchy doc (default: ROOT/docs/LOCK_ORDER.md)")
    p.add_argument("--frontend", choices=("auto", "ast", "source"),
                   default="auto")
    p.add_argument("--compile-commands", type=Path, default=None)
    p.add_argument("--ast-cache", type=Path, default=None,
                   help="directory for cached AST dumps (keyed on "
                        "source hash + command)")
    p.add_argument("--clang", default="",
                   help="clang driver to use for AST dumps (default: the "
                        "compiler from compile_commands)")
    p.add_argument("--json", type=Path, default=None,
                   help="write findings as JSON to this path")
    p.add_argument("--text", type=Path, default=None,
                   help="write the text report to this path")
    p.add_argument("--strict", action="store_true",
                   help="suppressions must carry a written justification")
    p.add_argument("-q", "--quiet", action="store_true")
    try:
        return p.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on usage errors and 0 on --help; keep both.
        raise SystemExit(EXIT_USAGE if e.code not in (0, None) else 0)


def pick_frontend(args: argparse.Namespace) -> str:
    if args.frontend != "auto":
        return args.frontend
    if args.compile_commands is not None and args.compile_commands.exists():
        clang = args.clang or "clang++"
        if shutil.which(clang):
            return "ast"
    return "source"


def main(argv: list[str]) -> int:
    args = parse_args(argv)
    root = args.root.resolve()
    hierarchy_path = args.hierarchy or (root / "docs" / "LOCK_ORDER.md")
    src_root = root / args.src_root
    if not src_root.is_dir():
        print(f"drx_verify: no such subtree: {src_root}", file=sys.stderr)
        return EXIT_USAGE

    try:
        hier = load_hierarchy(hierarchy_path)
    except HierarchyError as e:
        print(f"drx_verify: {e}", file=sys.stderr)
        return EXIT_BAD_INPUT

    source = SourceFrontend(root)
    frontend = pick_frontend(args)
    try:
        if frontend == "ast":
            if args.compile_commands is None:
                print("drx_verify: --frontend ast requires "
                      "--compile-commands", file=sys.stderr)
                return EXIT_USAGE
            ast = AstFrontend(root, args.compile_commands,
                              cache_dir=args.ast_cache, clang=args.clang)
            prefix = str(src_root) + "/"
            rel_prefix = args.src_root.rstrip("/") + "/"

            def in_tree(f: str) -> bool:
                return f.startswith(prefix) or f.startswith(rel_prefix)

            facts = ast.parse_all(in_tree)
            # Include edges are textual regardless of frontend.
            facts.merge(TUFacts(
                includes=source.parse_tree(args.src_root).includes))
        else:
            facts = source.parse_tree(args.src_root)
    except AstError as e:
        print(f"drx_verify: {e}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except (OSError, UnicodeDecodeError) as e:
        print(f"drx_verify: {e}", file=sys.stderr)
        return EXIT_BAD_INPUT

    facts = dedupe(facts)
    analyzed_files = {fn.file for fn in facts.functions} \
        | {inc.file for inc in facts.includes}
    sup = scan_suppressions(root, analyzed_files)

    prog = build_program(facts, hier)
    findings = run_all(prog, sup.module_overrides)
    apply_suppressions(findings, sup)

    text = render_text(findings, args.strict)
    if not args.quiet:
        print(text)
    if args.text is not None:
        args.text.parent.mkdir(parents=True, exist_ok=True)
        args.text.write_text(text + "\n", encoding="utf-8")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(render_json(findings), encoding="utf-8")

    return exit_code(findings, args.strict)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
