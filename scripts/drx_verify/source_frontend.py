"""Built-in source frontend: lowers DRX-style C++ to the fact IR.

A deliberately small recognizer for the project's house style (clang
AST JSON is the high-fidelity frontend — `ast_frontend.py` — this one
exists so the analyzer runs anywhere python3 runs, e.g. the tier-1
ctest gate on a GCC-only box, and doubles as a cross-check).

It is a line-oriented scanner with a scope stack, not a C++ parser:
 - namespaces / classes / functions / lambdas are tracked by matching
   their opening lines and counting braces;
 - events inside function bodies (lock acquisitions through the
   util/sync.hpp wrappers, calls, `(void)` discards, `.value()` /
   `.is_ok()`, raw-int error returns) are matched per line on
   comment/string-stripped text;
 - lambdas become synthetic functions that are NOT executed at their
   definition point (see facts.py); the name of the call they are
   passed to is recorded for entry-context decisions.

Known blind spots (shared with the passes' design assumptions):
overloads collapse to one name, templates are scanned as text, and a
signature the scanner cannot match yields a function body attributed to
the enclosing scope. The seeded corpus in tests/verify/corpus pins the
recognizable shapes.
"""

from __future__ import annotations

import re
from pathlib import Path

from facts import (ACQUIRE, CALL, DISCARD, Event, Function, Include, OK_CHECK,
                   REACQUIRE, RELEASE, RETURN_INT, TUFacts, VALUE_CALL)

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "do", "else", "case", "default", "alignof", "decltype",
    "static_assert", "assert", "defined", "throw", "co_return",
}

NAMESPACE_RE = re.compile(r"^\s*(?:inline\s+)?namespace\s+([\w:]+)?\s*\{")
CLASS_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?"
    r"(?:class|struct|union|enum(?:\s+class|\s+struct)?)\s+"
    r"(?:DRX_\w+(?:\([^)]*\))?\s+)*"
    r"([A-Za-z_]\w*)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
LOCK_CTOR_RE = re.compile(
    r"\b(?:util::|drx::util::)?"
    r"(MutexLock|ReaderMutexLock|WriterMutexLock)\s+(\w+)\s*\(([^;]*?)\)\s*;")
PAIR_LOCK_RE = re.compile(r"\bShardPairLock\s+(\w+)\s*\(")
UNLOCK_RE = re.compile(r"\b(\w+)\.unlock\s*\(\s*\)")
RELOCK_RE = re.compile(r"\b(\w+)\.lock\s*\(\s*\)")
CALL_RE = re.compile(
    r"(?<![\w.])((?:[A-Za-z_][\w]*(?:::[A-Za-z_]\w*)*(?:\[[^\[\]]*\])?"
    r"(?:\s*(?:->|\.)\s*[A-Za-z_]\w*(?:\[[^\[\]]*\])?)*))\s*\(")
# Local/member declarations worth remembering for receiver typing:
# `BlockDevice& device = ...` and the element type of container-of-T
# declarations like `std::vector<std::unique_ptr<BlockDevice>> datafiles;`.
DECL_TYPE_RE = re.compile(
    r"\b(?:const\s+)?([A-Z]\w*)(?:\s*<[^;<>()]*>)?\s*[&*]?\s+(\w+)\s*[=({;]")
TMPL_ELEM_RE = re.compile(
    r"<\s*(?:const\s+)?([A-Z]\w*)\s*[&*]?\s*>\s*>*\s*(\w+)\s*[;={(]")
DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*([A-Za-z_][\w:]*(?:\s*(?:->|\.)\s*[A-Za-z_]\w*)*)\s*\(")
IGNORE_STATUS_RE = re.compile(r"\bDRX_IGNORE_STATUS\s*\(")
VALUE_MOVE_RE = re.compile(r"std::move\s*\(\s*([A-Za-z_]\w*)\s*\)\s*\.\s*value\s*\(\)")
VALUE_RE = re.compile(r"\b([A-Za-z_][\w.\->]*?)\s*\.\s*value\s*\(\)")
CALL_VALUE_RE = re.compile(
    r"([A-Za-z_][\w:.\->]*)\s*\([^()]*\)\s*\.\s*value\s*\(\s*\)")
IS_OK_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*is_ok\s*\(\)")
STATUS_TOUCH_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*status\s*\(\s*\)")
BOOL_CHECK_RE = re.compile(r"\b(?:if|while)\s*\(\s*!?\s*([A-Za-z_]\w*)\s*[\)&|]")
ASSIGN_OR_RETURN_RE = re.compile(r"\bDRX_ASSIGN_OR_RETURN\s*\(")
RETURN_IF_ERROR_RE = re.compile(r"\bDRX_RETURN_IF_ERROR\s*\(\s*(\w[\w:.\->]*)")
RETURN_NEG_RE = re.compile(r"\breturn\s+(-\d+)\s*;")
REQUIRES_RE = re.compile(r"\bDRX_REQUIRES(?:_SHARED)?\s*\(([^)]*)\)")
ACQUIRE_ANN_RE = re.compile(r"\bDRX_ACQUIRE(?:_SHARED)?\s*\(([^)]*)\)")
LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[\w:<>&*\s]+?)?\s*\{")
SIGNATURE_RE = re.compile(
    r"(?:[\w:<>,&*~\[\]\s]+?\s)??"                 # return type (optional: ctors)
    r"((?:[A-Za-z_]\w*::)*(?:~?[A-Za-z_]\w*|operator[^\s(]{1,3}))\s*"
    r"\(.*\)\s*"                                    # parameter list
    r"(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?(?:final\s*)?"
    r"(?:DRX_\w+(?:\([^{}]*?\))?\s*)*"              # attribute macros
    r"(?:->\s*[\w:<>,&*\s]+?)?\s*"                  # trailing return
    r"(?::\s*[^{};]*)?$")                           # ctor init list
STATUS_DECL_RE = re.compile(
    r"(?:virtual\s+|static\s+|inline\s+|\[\[nodiscard\]\]\s*)*"
    r"(Status|Result\s*<[^;{()]*>)\s+([A-Za-z_]\w*)\s*\(")


def strip_strings(line: str) -> str:
    """Empties string/char literal contents (keeps the quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def strip_comments(lines: list[str]) -> list[str]:
    """Strips // and /* */ comments and string contents, line-preserving."""
    out = []
    in_block = False
    for raw in lines:
        line = strip_strings(raw)
        res = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            res.append(line[i])
            i += 1
        out.append("".join(res))
    return out


class _Scope:
    def __init__(self, kind: str, name: str, depth: int,
                 fn: Function | None = None):
        self.kind = kind      # namespace | class | function | block
        self.name = name
        self.depth = depth    # brace depth BEFORE the opening brace
        self.fn = fn
        self.locks: dict[str, str] = {}  # lock var -> lock expr (functions)
        # RAII locks still alive in this function: (var, expr, acq_depth).
        # When the brace depth drops below acq_depth the guard has been
        # destroyed and a RELEASE event is synthesized.
        self.active: list[tuple[str, str, int]] = []


def _passed_to(prefix: str) -> str:
    """Name of the innermost still-open call preceding a lambda start."""
    stack: list[str] = []
    for m in re.finditer(r"([A-Za-z_][\w:.\->]*)?\s*(\()|(\))", prefix):
        if m.group(3):
            if stack:
                stack.pop()
        else:
            name = m.group(1) or ""
            stack.append(name.split("->")[-1].split(".")[-1].split("::")[-1])
    return stack[-1] if stack else ""


class SourceFrontend:
    def __init__(self, root: Path):
        self.root = root

    def parse_file(self, path: Path) -> TUFacts:
        rel = path.relative_to(self.root).as_posix()
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        lines = strip_comments(raw_lines)
        facts = TUFacts()
        # File-local receiver typing: `device.truncate(...)` with
        # `BlockDevice& device` in this file resolves to the exact
        # `BlockDevice::truncate` instead of fanning out to every
        # function whose base name is `truncate`.
        self.var_types: dict[str, str] = {}
        for code in lines:
            for tm in TMPL_ELEM_RE.finditer(code):
                self.var_types[tm.group(2)] = tm.group(1)
            for dm in DECL_TYPE_RE.finditer(code):
                self.var_types[dm.group(2)] = dm.group(1)
        for i, raw in enumerate(raw_lines):
            m = INCLUDE_RE.match(raw)
            if m:
                facts.includes.append(Include(rel, m.group(1), i + 1))

        depth = 0
        scopes: list[_Scope] = []
        pending: list[tuple[int, str]] = []  # (line_no, text) signature buffer
        lambda_counter = 0

        def context_name() -> str:
            parts = [s.name for s in scopes
                     if s.kind in ("namespace", "class") and s.name]
            return "::".join(parts)

        def current_fn() -> Function | None:
            for s in reversed(scopes):
                if s.kind == "function":
                    return s.fn
            return None

        def fn_scope() -> _Scope | None:
            for s in reversed(scopes):
                if s.kind == "function":
                    return s
            return None

        def close_dead_locks(line_no: int) -> None:
            """Synthesizes RELEASE events for RAII guards whose scope
            just ended (brace depth dropped below acquisition depth)."""
            for s in scopes:
                if s.kind != "function" or s.fn is None:
                    continue
                while s.active and s.active[-1][2] > depth:
                    _, expr, _ = s.active.pop()
                    s.fn.events.append(Event(RELEASE, expr, line_no, depth))

        for i, code in enumerate(lines):
            line_no = i + 1
            stripped = code.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                pending.clear()
                continue

            fn = current_fn()
            if fn is None:
                # ---- outside any function: look for definitions ----------
                nm = NAMESPACE_RE.match(code)
                if nm:
                    scopes.append(_Scope("namespace", nm.group(1) or "", depth))
                    depth += code.count("{") - code.count("}")
                    pending.clear()
                    continue
                cm = CLASS_RE.match(code)
                if cm and not re.search(r";\s*$", stripped):
                    # A class head may take several lines to reach its '{'.
                    if "{" in code:
                        scopes.append(_Scope("class", cm.group(1), depth))
                        depth += code.count("{") - code.count("}")
                        pending.clear()
                        continue
                    pending.append((line_no, stripped))
                    continue
                if pending and pending[-1][1].startswith(("class ", "struct ",
                                                          "enum ", "union ")):
                    if "{" in code:
                        head = pending[-1][1]
                        hm = CLASS_RE.match(head)
                        scopes.append(_Scope(
                            "class", hm.group(1) if hm else "", depth))
                        depth += code.count("{") - code.count("}")
                        pending.clear()
                        continue
                    if ";" in code:
                        pending.clear()
                        continue
                    pending.append((line_no, stripped))
                    continue

                # Declaration of a Status/Result-returning function (no
                # body): still worth indexing for error discipline.
                sd = STATUS_DECL_RE.search(code)
                if sd and "{" not in code:
                    facts.functions.append(Function(
                        name=(context_name() + "::" + sd.group(2)).lstrip(":"),
                        file=rel, line=line_no,
                        return_type=re.sub(r"\s+", "", sd.group(1))))

                pending.append((line_no, stripped))
                joined = " ".join(t for _, t in pending)
                if "{" in code:
                    sig = joined[:joined.index("{")] if "{" in joined else joined
                    sm = SIGNATURE_RE.match(sig.strip())
                    opened = code.count("{") - code.count("}")
                    if sm and "(" in sig:
                        qual = sm.group(1)
                        name = (context_name() + "::" + qual).lstrip(":")
                        ret = sig.strip()[:sig.strip().rfind(qual)].strip()
                        ret = re.sub(r"\[\[nodiscard\]\]|virtual|static|inline"
                                     r"|explicit|constexpr|friend", "", ret)
                        f = Function(name=name, file=rel,
                                     line=pending[0][0],
                                     return_type=re.sub(r"\s+", "", ret))
                        for rm in REQUIRES_RE.finditer(sig):
                            f.requires.extend(
                                a.strip() for a in rm.group(1).split(","))
                        for am in ACQUIRE_ANN_RE.finditer(sig):
                            f.acquires.extend(
                                a.strip() for a in am.group(1).split(","))
                        facts.functions.append(f)
                        if opened > 0:
                            scopes.append(_Scope("function", name, depth, f))
                            # Process the remainder after '{' for events.
                            rest = code[code.index("{") + 1:]
                            self._scan_events(rest, line_no, f,
                                              scopes[-1], depth + 1)
                        depth += opened
                        # Brace-balanced one-liner: pop immediately below.
                        while scopes and scopes[-1].kind == "function" \
                                and depth <= scopes[-1].depth:
                            scopes.pop()
                        pending.clear()
                        continue
                    # Unrecognized brace opener: anonymous block.
                    scopes.append(_Scope("block", "", depth))
                    depth += opened
                    pending.clear()
                    continue
                if ";" in code or stripped.endswith(("}", ":")):
                    pending.clear()
                depth += code.count("{") - code.count("}")
            else:
                # ---- inside a function body: extract events --------------
                scope = fn_scope()
                # Lambda start? Push a synthetic function first so its
                # events do not pollute the parent.
                lm = LAMBDA_RE.search(code)
                if lm:
                    lambda_counter += 1
                    lname = f"{fn.name}::<lambda@{line_no}>"
                    lf = Function(name=lname, file=rel, line=line_no,
                                  is_lambda=True,
                                  passed_to=_passed_to(code[:lm.start()]))
                    facts.functions.append(lf)
                    pre = code[:lm.start()]
                    self._scan_events(pre, line_no, fn, scope, depth)
                    lscope = _Scope("function", lname,
                                    depth + pre.count("{") - pre.count("}"),
                                    lf)
                    scopes.append(lscope)
                    rest = code[lm.end():]
                    self._scan_events(rest, line_no, lf, lscope, depth + 1)
                    depth += code.count("{") - code.count("}")
                    close_dead_locks(line_no)
                    while scopes and scopes[-1].kind == "function" \
                            and depth <= scopes[-1].depth:
                        scopes.pop()
                    continue
                self._scan_events(code, line_no, fn, scope, depth)
                depth += code.count("{") - code.count("}")

            # Close any scopes whose brace has ended.
            close_dead_locks(line_no)
            while scopes and depth <= scopes[-1].depth:
                scopes.pop()

        return facts

    def _scan_events(self, code: str, line_no: int, fn: Function,
                     scope: _Scope | None, depth: int) -> None:
        if fn is None or not code.strip():
            return
        ev = fn.events

        for m in LOCK_CTOR_RE.finditer(code):
            expr = re.sub(r"\s+", "", m.group(3))
            if scope is not None:
                scope.locks[m.group(2)] = expr
                scope.active.append((m.group(2), expr, depth))
            ev.append(Event(ACQUIRE, expr, line_no, depth))
        for m in PAIR_LOCK_RE.finditer(code):
            if scope is not None:
                scope.active.append((m.group(1), "ShardPairLock", depth))
            ev.append(Event(ACQUIRE, "ShardPairLock", line_no, depth))
        for m in UNLOCK_RE.finditer(code):
            var = m.group(1)
            if scope is not None and var in scope.locks:
                ev.append(Event(RELEASE, scope.locks[var], line_no, depth))
            else:
                # `.unlock()` on a guard this function never constructed:
                # a caller-owned lock passed by reference (the `*_locked`
                # contract). Model it as *suspending* the caller's lock —
                # blocking calls inside the suspension window do not make
                # this function a blocking path for its caller.
                ev.append(Event(RELEASE, f"<param:{var}>", line_no, depth))
        for m in RELOCK_RE.finditer(code):
            var = m.group(1)
            if scope is not None and var in scope.locks:
                ev.append(Event(REACQUIRE, scope.locks[var], line_no, depth))
            elif any(e.kind == RELEASE and e.data == f"<param:{var}>"
                     for e in ev):
                # Re-lock ends the suspension. The prior-RELEASE guard
                # keeps std::weak_ptr::lock() and friends out.
                ev.append(Event(REACQUIRE, f"<param:{var}>", line_no, depth))

        if IGNORE_STATUS_RE.search(code):
            pass  # sanctioned discard: no event
        else:
            for m in DISCARD_RE.finditer(code):
                ev.append(Event(DISCARD,
                                re.sub(r"\s+", "", m.group(1)), line_no,
                                depth))

        # OK-checks are scanned BEFORE .value() unwraps so the idiomatic
        # same-line short-circuit `!r.is_ok() || !r.value()...` dominates.
        for m in IS_OK_RE.finditer(code):
            ev.append(Event(OK_CHECK, m.group(1), line_no, depth))
        for m in STATUS_TOUCH_RE.finditer(code):
            # Reading `x.status()` (e.g. DRX_RETURN_IF_ERROR(x.status()))
            # is an explicit error inspection of x.
            ev.append(Event(OK_CHECK, m.group(1), line_no, depth))
        for m in BOOL_CHECK_RE.finditer(code):
            ev.append(Event(OK_CHECK, m.group(1), line_no, depth))
        if ASSIGN_OR_RETURN_RE.search(code) or RETURN_IF_ERROR_RE.search(code):
            # The macros check before unwrapping; the variable they bind is
            # checked by construction.
            am = re.search(r"DRX_ASSIGN_OR_RETURN\s*\(\s*(?:auto\s+|const\s+"
                           r"|[\w:<>&\s]*?\s)?(\w+)\s*,", code)
            if am:
                ev.append(Event(OK_CHECK, am.group(1), line_no, depth))

        for m in CALL_RE.finditer(code):
            callee = re.sub(r"\s+", "", m.group(1))
            base = callee.split("->")[-1].split(".")[-1].split("::")[-1]
            if base in KEYWORDS or base.startswith("DRX_"):
                continue
            ev.append(Event(CALL, self._typed_callee(callee, base),
                            line_no, depth))

        for m in VALUE_MOVE_RE.finditer(code):
            ev.append(Event(VALUE_CALL, m.group(1), line_no, depth))
        rem = VALUE_MOVE_RE.sub("", code)
        # `foo(...).value()`: no is_ok() check is possible on a
        # temporary; record the producing call so the pass can decide
        # whether it even returns a Result.
        for m in CALL_VALUE_RE.finditer(rem):
            ev.append(Event(VALUE_CALL,
                            "call:" + re.sub(r"\s+", "", m.group(1)),
                            line_no, depth))
        rem = CALL_VALUE_RE.sub("", rem)
        for m in VALUE_RE.finditer(rem):
            obj = re.sub(r"\s+", "", m.group(1))
            if obj and not obj.endswith((".", ">")):
                ev.append(Event(VALUE_CALL, obj.split("->")[-1].split(".")[-1],
                                line_no, depth))

        for m in RETURN_NEG_RE.finditer(code):
            ev.append(Event(RETURN_INT, m.group(1), line_no, depth))

    def _typed_callee(self, callee: str, base: str) -> str:
        """Rewrites `device.truncate` to `BlockDevice::truncate` when the
        receiver's type was declared in this file — an exact, fan-out-free
        resolution the passes prefer over base-name candidates."""
        segs = re.split(r"->|\.", re.sub(r"\[[^\[\]]*\]", "", callee))
        if len(segs) >= 2:
            recv = segs[-2].split("::")[-1]
            typ = self.var_types.get(recv)
            if typ:
                return f"{typ}::{base}"
        return callee

    def parse_tree(self, subdir: str = "src") -> TUFacts:
        facts = TUFacts()
        base = self.root / subdir
        if not base.is_dir():
            raise FileNotFoundError(f"no {subdir}/ under {self.root}")
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
                continue
            facts.merge(self.parse_file(path))
        return facts
