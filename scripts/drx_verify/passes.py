"""The four drx_verify analysis passes over the fact IR.

All passes operate on a whole-program `Program` built from merged
TUFacts — C++ never reappears past this point.

 lock-order          cross-TU acquisition-order checking against the
                     declared hierarchy (levels are a total order, so a
                     per-acquisition level comparison subsumes cycle
                     detection for resolved domains; an unresolvable
                     lock site is itself a finding, so nothing escapes
                     the order proof by being unnamed).
 blocking-under-lock interprocedural reachability from regions holding
                     a `may block = no` domain to declared blocking
                     operations (pfs I/O, pool flush, raw write(2), ...).
 error-discipline    discarded Status/Result values, `.value()` without
                     an is_ok() dominator, raw negative error returns.
 layering            module DAG enforcement from include edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from facts import (ACQUIRE, CALL, DISCARD, Function, OK_CHECK, REACQUIRE,
                   RELEASE, RETURN_INT, TUFacts, VALUE_CALL)
from hierarchy import Domain, Hierarchy

MAX_WITNESS_DEPTH = 12

# Method base names that are overwhelmingly std-library (containers,
# smart pointers, atomics, strings): resolving them to same-named
# project functions by base name would wire unrelated subsystems into
# every call graph. Calls to these propagate nothing interprocedurally;
# the named function's own body is still analyzed as an entry point.
GENERIC_BASES = frozenset({
    "get", "reset", "release", "size", "empty", "clear", "begin", "end",
    "data", "find", "count", "at", "front", "back", "top", "pop", "push",
    "insert", "erase", "swap", "resize", "reserve", "append", "substr",
    "length", "str", "c_str", "push_back", "pop_back", "emplace_back",
    "emplace", "load", "store", "exchange", "fetch_add", "fetch_sub",
    "compare_exchange_weak", "compare_exchange_strong", "wait",
    "notify_one", "notify_all", "join", "detach", "min", "max", "abs",
    "move", "forward", "make_unique", "make_shared", "to_string", "fill",
    "copy", "memcpy", "memset", "snprintf", "what", "name", "value",
    "value_or", "is_ok", "status", "code", "message", "ok", "key",
    "contains", "merge", "add", "observe", "reverse", "sort", "id",
})


@dataclass
class Finding:
    rule: str        # lock-order | blocking-under-lock | error-discipline | layering
    file: str
    line: int
    message: str
    witness: str = ""   # e.g. call chain for interprocedural findings
    suppressed: bool = False
    suppress_reason: str = ""

    def key(self) -> tuple:
        return (self.rule, self.file, self.line, self.message)


@dataclass
class Program:
    hierarchy: Hierarchy
    functions: dict[str, Function] = field(default_factory=dict)
    facts: TUFacts | None = None
    module_overrides: dict[str, str] = field(default_factory=dict)

    # memoized interprocedural summaries, keyed by function name
    _acq: dict[str, frozenset[str]] = field(default_factory=dict)
    _blk: dict[str, tuple[str, str] | None] = field(default_factory=dict)
    _callees: dict[str, list[tuple[int, list[str]]]] = \
        field(default_factory=dict)
    _by_base: dict[str, list[str]] = field(default_factory=dict)


def build_program(facts: TUFacts, hier: Hierarchy) -> Program:
    prog = Program(hierarchy=hier, facts=facts)
    for fn in facts.functions:
        prev = prog.functions.get(fn.name)
        # A definition (has events) wins over a bare declaration; merge
        # the declaration's annotations into the definition.
        if prev is None:
            prog.functions[fn.name] = fn
        elif fn.events and not prev.events:
            fn.requires = sorted(set(fn.requires) | set(prev.requires))
            fn.acquires = sorted(set(fn.acquires) | set(prev.acquires))
            if not fn.return_type:
                fn.return_type = prev.return_type
            prog.functions[fn.name] = fn
        else:
            prev.requires = sorted(set(prev.requires) | set(fn.requires))
            prev.acquires = sorted(set(prev.acquires) | set(fn.acquires))
            if not prev.return_type:
                prev.return_type = fn.return_type
    for name in prog.functions:
        base = name.rsplit("::", 1)[-1]
        prog._by_base.setdefault(base, []).append(name)
    return prog


def _module_level(prog: Program, file: str) -> int | None:
    mod = file_module(file, prog.module_overrides)
    if mod is None:
        return None
    return prog.hierarchy.modules.get(mod)


def _resolve_callees(prog: Program, callee_text: str,
                     caller: Function | None = None) -> list[str]:
    """Maps a callee expression to candidate function names.

    `file_->read_chunk` resolves by base name `read_chunk` to every
    known function ending in `::read_chunk` (conservative fan-out: we
    have no type information in the source frontend). Candidates are
    pruned by the layering DAG: a call can only land in the caller's
    own module or a strictly lower layer — sibling modules cannot even
    include each other's headers, so a same-level cross-module
    candidate is always a base-name collision, not a real callee."""
    base = callee_text.split("->")[-1].split(".")[-1].split("::")[-1]
    if callee_text in prog.functions:
        return [callee_text]
    if base in GENERIC_BASES:
        return []
    if "::" in callee_text and "." not in callee_text \
            and "->" not in callee_text:
        # Qualified callee (`BlockDevice::truncate`, often produced by the
        # frontend's receiver typing): only functions carrying that exact
        # qualification suffix can be the target — never base-name
        # collisions in other classes.
        suffix = "::" + callee_text
        return [n for n in prog._by_base.get(base, [])
                if n == callee_text or n.endswith(suffix)]
    cands = prog._by_base.get(base, [])
    if caller is None or not cands:
        return cands
    caller_mod = file_module(caller.file, prog.module_overrides)
    caller_lvl = _module_level(prog, caller.file)
    if caller_lvl is None:
        return cands
    out = []
    for name in cands:
        cfn = prog.functions[name]
        cand_mod = file_module(cfn.file, prog.module_overrides)
        cand_lvl = _module_level(prog, cfn.file)
        if cand_lvl is None or cand_mod == caller_mod \
                or cand_lvl < caller_lvl:
            out.append(name)
    return out


def _iter_suspended(fn: Function):
    """Yields (event, suspended) where `suspended > 0` means a caller-owned
    lock passed into this `*_locked` helper has been `.unlock()`ed (the
    frontend emits `<param:var>` RELEASE/REACQUIRE for those). Blocking
    work inside the suspension window is, by contract, not performed under
    the caller's lock."""
    suspended = 0
    for ev in fn.events:
        if ev.data.startswith("<param:"):
            if ev.kind == RELEASE:
                suspended += 1
            elif ev.kind == REACQUIRE and suspended > 0:
                suspended -= 1
            continue
        yield ev, suspended


def _direct_acquires(prog: Program, fn: Function) -> set[str]:
    acc: set[str] = set()
    for expr in fn.acquires:
        dom = prog.hierarchy.resolve(fn.file, expr)
        if dom:
            acc.add(dom.name)
    for ev in fn.events:
        if ev.kind == ACQUIRE:
            dom = prog.hierarchy.resolve(fn.file, ev.data)
            if dom:
                acc.add(dom.name)
    return acc


def _call_sites(prog: Program, fn: Function) -> list[tuple[int, list[str]]]:
    """Resolved non-lambda callees per CALL event, with the suspension
    depth at the call site (lambdas are excluded: a registrar only
    stores them). Cached — the fixpoint sweeps this repeatedly."""
    cached = prog._callees.get(fn.name)
    if cached is not None:
        return cached
    out: list[tuple[int, list[str]]] = []
    for ev, suspended in _iter_suspended(fn):
        if ev.kind != CALL:
            continue
        names = [c for c in _resolve_callees(prog, ev.data, fn)
                 if c != fn.name and not prog.functions[c].is_lambda]
        if names:
            out.append((suspended, names))
    prog._callees[fn.name] = out
    return out


def _compute_summaries(prog: Program) -> None:
    """Whole-program fixpoint for the interprocedural summaries:

      acq(f) = domains f may acquire, directly or via any callee
      blk(f) = a (call-chain, reason) witness that f reaches a blocking
               operation, or None

    A fixpoint over the (finite) domain and boolean lattices terminates
    in O(graph depth) sweeps and — unlike memoized recursion with a
    visited-set — costs the same in the presence of call cycles."""
    if prog._acq:
        return
    acq: dict[str, set[str]] = {}
    blk: dict[str, tuple[str, str] | None] = {}
    for name, fn in prog.functions.items():
        acq[name] = _direct_acquires(prog, fn)
        hit = None
        for ev, suspended in _iter_suspended(fn):
            # A blocking op inside a suspension window runs with the
            # caller's lock released — not a blocking path for callers.
            if ev.kind != CALL or suspended:
                continue
            why = prog.hierarchy.blocking_reason(ev.data)
            if why is not None:
                hit = (f"{name} -> {ev.data}", why)
                break
        blk[name] = hit

    changed = True
    while changed:
        changed = False
        for name, fn in prog.functions.items():
            for suspended, callees in _call_sites(prog, fn):
                for callee in callees:
                    extra = acq.get(callee)
                    if extra and not extra <= acq[name]:
                        acq[name] |= extra
                        changed = True
                    if not suspended and blk[name] is None \
                            and blk.get(callee) is not None:
                        chain, why = blk[callee]
                        if chain.count("->") < MAX_WITNESS_DEPTH:
                            blk[name] = (f"{name} -> {chain}", why)
                            changed = True

    prog._acq = {n: frozenset(s) for n, s in acq.items()}
    prog._blk = blk


def transitive_acquires(prog: Program, name: str) -> frozenset[str]:
    _compute_summaries(prog)
    return prog._acq.get(name, frozenset())


def blocking_witness(prog: Program, name: str) -> tuple[str, str] | None:
    _compute_summaries(prog)
    return prog._blk.get(name)


def _entry_domains(prog: Program, fn: Function) -> list[tuple[Domain, int]]:
    """Domains held when `fn` starts executing."""
    held: list[tuple[Domain, int]] = []
    hier = prog.hierarchy
    if fn.is_lambda:
        entry = hier.callback_entry.get(
            fn.passed_to.split("::")[-1]) if fn.passed_to else None
        for dname in entry or []:
            held.append((hier.domains[dname], fn.line))
        return held
    for expr in fn.requires:
        dom = hier.resolve(fn.file, expr)
        if dom:
            held.append((dom, fn.line))
    return held


def check_lock_order(prog: Program) -> list[Finding]:
    findings: list[Finding] = []
    hier = prog.hierarchy
    unknown_reported: set[tuple[str, str]] = set()
    reported_pairs: set[tuple[str, str, str]] = set()

    for fn in prog.functions.values():
        held: list[tuple[Domain, int]] = _entry_domains(prog, fn)
        entry_count = len(held)
        for ev in fn.events:
            if ev.kind == ACQUIRE:
                dom = hier.resolve(fn.file, ev.data)
                if dom is None:
                    key = (fn.file, ev.data)
                    if key not in unknown_reported:
                        unknown_reported.add(key)
                        findings.append(Finding(
                            "lock-order", fn.file, ev.line,
                            f"lock site '{ev.data}' matches no domain in "
                            f"docs/LOCK_ORDER.md — declare it before it can "
                            f"be order-checked"))
                    continue
                for hd, _ in held:
                    if hd.name == dom.name:
                        if dom.self_rule == "pair" \
                                and "PairLock" in ev.data:
                            continue
                        if dom.self_rule == "instance":
                            continue
                        findings.append(Finding(
                            "lock-order", fn.file, ev.line,
                            f"same-domain reacquisition of {dom.name} "
                            f"('{ev.data}') while already held in "
                            f"{fn.name} — self-deadlock risk"))
                    elif dom.level >= hd.level:
                        findings.append(Finding(
                            "lock-order", fn.file, ev.line,
                            f"acquires {dom.name} (level {dom.level}) while "
                            f"holding {hd.name} (level {hd.level}) in "
                            f"{fn.name}; hierarchy requires strictly "
                            f"descending levels"))
                held.append((dom, ev.line))
            elif ev.kind == RELEASE:
                dom = hier.resolve(fn.file, ev.data)
                if dom is not None:
                    for i in range(len(held) - 1, entry_count - 1, -1):
                        if held[i][0].name == dom.name:
                            del held[i]
                            break
            elif ev.kind == REACQUIRE:
                dom = hier.resolve(fn.file, ev.data)
                if dom is None:
                    continue
                for hd, _ in held:
                    if hd.name != dom.name and dom.level >= hd.level:
                        findings.append(Finding(
                            "lock-order", fn.file, ev.line,
                            f"re-acquires {dom.name} (level {dom.level}) "
                            f"while holding {hd.name} (level {hd.level}) in "
                            f"{fn.name}"))
                held.append((dom, ev.line))
            elif ev.kind == CALL and held:
                for callee in _resolve_callees(prog, ev.data, fn):
                    cfn = prog.functions.get(callee)
                    if cfn is None or cfn.is_lambda or callee == fn.name:
                        continue
                    for acq_name in sorted(transitive_acquires(prog, callee)):
                        acq = hier.domains[acq_name]
                        for hd, _ in held:
                            # One witness per (function, held, acquired)
                            # pair: candidate fan-out would otherwise
                            # repeat the same ordering violation once
                            # per same-named callee.
                            pair = (fn.name, hd.name, acq.name)
                            if pair in reported_pairs:
                                continue
                            if acq.name == hd.name:
                                if acq.self_rule != "no":
                                    continue
                                reported_pairs.add(pair)
                                findings.append(Finding(
                                    "lock-order", fn.file, ev.line,
                                    f"{fn.name} holds {hd.name} across call "
                                    f"to {callee}, which may reacquire "
                                    f"{acq.name}",
                                    witness=f"{fn.name} -> {callee}"))
                            elif acq.level >= hd.level:
                                reported_pairs.add(pair)
                                findings.append(Finding(
                                    "lock-order", fn.file, ev.line,
                                    f"{fn.name} holds {hd.name} (level "
                                    f"{hd.level}) across call to {callee}, "
                                    f"which may acquire {acq.name} (level "
                                    f"{acq.level})",
                                    witness=f"{fn.name} -> {callee}"))
    return findings


def check_blocking_under_lock(prog: Program) -> list[Finding]:
    findings: list[Finding] = []
    hier = prog.hierarchy
    reported: set[tuple[str, str, str]] = set()

    for fn in prog.functions.values():
        held: list[tuple[Domain, int]] = _entry_domains(prog, fn)
        entry_count = len(held)
        for ev in fn.events:
            if ev.kind == ACQUIRE:
                dom = hier.resolve(fn.file, ev.data)
                if dom is not None:
                    held.append((dom, ev.line))
            elif ev.kind == RELEASE:
                dom = hier.resolve(fn.file, ev.data)
                if dom is not None:
                    for i in range(len(held) - 1, entry_count - 1, -1):
                        if held[i][0].name == dom.name:
                            del held[i]
                            break
            elif ev.kind == REACQUIRE:
                dom = hier.resolve(fn.file, ev.data)
                if dom is not None:
                    held.append((dom, ev.line))
            elif ev.kind == CALL:
                strict = [hd for hd, _ in held if not hd.may_block]
                if not strict:
                    continue
                why = hier.blocking_reason(ev.data)
                if why is not None:
                    findings.append(Finding(
                        "blocking-under-lock", fn.file, ev.line,
                        f"{fn.name} calls blocking op '{ev.data}' "
                        f"({why}) while holding {strict[0].name}"))
                    continue
                for callee in _resolve_callees(prog, ev.data, fn):
                    cfn = prog.functions.get(callee)
                    if cfn is None or cfn.is_lambda or callee == fn.name:
                        continue
                    wit = blocking_witness(prog, callee)
                    if wit is not None:
                        chain, why = wit
                        key = (fn.name, strict[0].name, why)
                        if key in reported:
                            break
                        reported.add(key)
                        findings.append(Finding(
                            "blocking-under-lock", fn.file, ev.line,
                            f"{fn.name} holds {strict[0].name} across a "
                            f"path that blocks: {why}",
                            witness=chain))
                        break
    return findings


def _is_statusy(return_type: str) -> bool:
    rt = return_type.replace("drx::util::", "").replace("util::", "")
    return rt.startswith("Status") or rt.startswith("Result<")


def check_error_discipline(prog: Program) -> list[Finding]:
    findings: list[Finding] = []

    for fn in prog.functions.values():
        checked: set[str] = set()
        for ev in fn.events:
            if ev.kind == OK_CHECK:
                checked.add(ev.data)
            elif ev.kind == DISCARD:
                for callee in _resolve_callees(prog, ev.data, fn):
                    cfn = prog.functions.get(callee)
                    if cfn is not None and _is_statusy(cfn.return_type):
                        findings.append(Finding(
                            "error-discipline", fn.file, ev.line,
                            f"{fn.name} discards {cfn.return_type} from "
                            f"{callee} via (void) cast — handle it or use "
                            f"DRX_IGNORE_STATUS(expr, reason)"))
                        break
            elif ev.kind == VALUE_CALL:
                obj = ev.data
                if obj.startswith("call:"):
                    for callee in _resolve_callees(prog, obj[5:], fn):
                        cfn = prog.functions.get(callee)
                        if cfn is not None and \
                                _is_statusy(cfn.return_type):
                            findings.append(Finding(
                                "error-discipline", fn.file, ev.line,
                                f"{fn.name} calls .value() on the "
                                f"temporary Result returned by {callee}; "
                                f"no is_ok() check is possible — bind it "
                                f"first or use DRX_ASSIGN_OR_RETURN"))
                            break
                elif obj == "<temporary>":
                    findings.append(Finding(
                        "error-discipline", fn.file, ev.line,
                        f"{fn.name} calls .value() on a temporary Result "
                        f"with no possible is_ok() check"))
                elif obj not in checked:
                    findings.append(Finding(
                        "error-discipline", fn.file, ev.line,
                        f"{fn.name} calls .value() on '{obj}' without a "
                        f"prior is_ok()/boolean check dominating it"))
            elif ev.kind == RETURN_INT:
                rt = fn.return_type
                if rt in ("int", "long", "ssize_t", "std::int64_t",
                          "std::int32_t", "int64_t", "int32_t"):
                    findings.append(Finding(
                        "error-discipline", fn.file, ev.line,
                        f"{fn.name} returns raw error code {ev.data}; "
                        f"return Status/Result instead"))
    return findings


def file_module(path: str, overrides: dict[str, str]) -> str | None:
    if path in overrides:
        return overrides[path]
    parts = path.split("/")
    if parts[0] == "src" and len(parts) > 2:
        return parts[1]
    if parts[0] in ("tools", "bench", "tests"):
        return "top"
    return None


def check_layering(prog: Program,
                   module_overrides: dict[str, str]) -> list[Finding]:
    findings: list[Finding] = []
    modules = prog.hierarchy.modules
    assert prog.facts is not None
    for inc in prog.facts.includes:
        src_mod = file_module(inc.file, module_overrides)
        tgt_mod = inc.target.split("/")[0] if "/" in inc.target else None
        if src_mod is None or tgt_mod is None:
            continue
        if src_mod not in modules or tgt_mod not in modules:
            continue
        if src_mod == tgt_mod:
            continue
        if modules[tgt_mod] >= modules[src_mod]:
            findings.append(Finding(
                "layering", inc.file, inc.line,
                f"module '{src_mod}' (layer {modules[src_mod]}) includes "
                f"'{inc.target}' from module '{tgt_mod}' (layer "
                f"{modules[tgt_mod]}); includes must point strictly down "
                f"the module DAG"))
    return findings


def run_all(prog: Program,
            module_overrides: dict[str, str]) -> list[Finding]:
    prog.module_overrides = module_overrides
    findings: list[Finding] = []
    findings += check_lock_order(prog)
    findings += check_blocking_under_lock(prog)
    findings += check_error_discipline(prog)
    findings += check_layering(prog, module_overrides)
    # Deterministic order + dedupe (several TUs can re-derive a header
    # finding).
    seen = set()
    out = []
    for f in sorted(findings, key=lambda f: (f.file, f.line, f.rule,
                                             f.message)):
        if f.key() in seen:
            continue
        seen.add(f.key())
        out.append(f)
    return out
