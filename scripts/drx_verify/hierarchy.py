"""Parses docs/LOCK_ORDER.md into the declared lock hierarchy.

The doc is the single source of truth: the analyzer has no built-in
knowledge of the repo's locks. Four machine-readable markdown tables
are consumed (section headings are matched case-insensitively):

  ## Hierarchy            Domain | Level | May block | Self | Lock patterns | ...
  ## Callback entry contexts   Registrar | Held on entry | ...
  ## Blocking operations  Pattern | ...
  ## Layering             Module | Level | ...

`Lock patterns` cells hold one or more backtick-quoted regexes matched
against `<repo-relative-file>:<lock-expr>` (whitespace stripped from
the expr). When several domains match a site, the longest matching
pattern wins — file-qualified patterns therefore beat generic
fallbacks like `` `io_mu_` `` without depending on table order.

Rule of the hierarchy: acquiring domain B while holding domain A is
legal iff level(B) < level(A). Same-domain nesting is illegal unless
the domain's `Self` column says `pair` (only via a dedicated ordered
pair-locker, e.g. ShardPairLock) or `instance` (distinct instances
nested in a fixed parent/child direction).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

BACKTICK_RE = re.compile(r"`([^`]+)`")


class HierarchyError(Exception):
    """Malformed LOCK_ORDER.md (exit code 3 at the CLI)."""


@dataclass
class Domain:
    name: str
    level: int
    may_block: bool
    self_rule: str              # "no" | "pair" | "instance"
    patterns: list[re.Pattern] = field(default_factory=list)
    rationale: str = ""


@dataclass
class Hierarchy:
    domains: dict[str, Domain] = field(default_factory=dict)
    # registrar base name -> domains held when the registered callback runs
    callback_entry: dict[str, list[str]] = field(default_factory=dict)
    # (pattern over callee text, reason)
    blocking: list[tuple[re.Pattern, str]] = field(default_factory=list)
    # module name -> layer level (lower = more fundamental)
    modules: dict[str, int] = field(default_factory=dict)

    def resolve(self, file: str, lock_expr: str) -> Domain | None:
        """Maps an acquisition site to its declared domain."""
        expr = re.sub(r"\s+", "", lock_expr)
        site = f"{file}:{expr}"
        best: Domain | None = None
        best_len = -1
        for dom in self.domains.values():
            for pat in dom.patterns:
                if pat.search(site) and len(pat.pattern) > best_len:
                    best, best_len = dom, len(pat.pattern)
        return best

    def level(self, name: str) -> int:
        return self.domains[name].level

    def blocking_reason(self, callee: str) -> str | None:
        for pat, why in self.blocking:
            if pat.search(callee):
                return why
        return None


def _split_row(line: str) -> list[str]:
    cells = line.strip().strip("|").split("|")
    return [c.strip() for c in cells]


def _iter_tables(text: str):
    """Yields (section_title, header_cells, rows) for each markdown table."""
    section = ""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("#"):
            section = line.lstrip("#").strip().lower()
        elif line.lstrip().startswith("|") and i + 1 < len(lines) \
                and re.match(r"^\s*\|[\s:|-]+\|?\s*$", lines[i + 1]):
            header = [h.lower() for h in _split_row(line)]
            rows = []
            i += 2
            while i < len(lines) and lines[i].lstrip().startswith("|"):
                rows.append(_split_row(lines[i]))
                i += 1
            yield section, header, rows
            continue
        i += 1


def _col(header: list[str], prefix: str) -> int:
    for idx, name in enumerate(header):
        if name.startswith(prefix):
            return idx
    raise HierarchyError(f"hierarchy table missing column '{prefix}'")


def load(path: Path) -> Hierarchy:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as e:
        raise HierarchyError(f"cannot read {path}: {e}") from e

    h = Hierarchy()
    for section, header, rows in _iter_tables(text):
        if section.startswith("hierarchy"):
            c_dom = _col(header, "domain")
            c_lvl = _col(header, "level")
            c_blk = _col(header, "may block")
            c_self = _col(header, "self")
            c_pat = _col(header, "lock pattern")
            for row in rows:
                if len(row) <= max(c_dom, c_lvl, c_blk, c_self, c_pat):
                    raise HierarchyError(f"short hierarchy row: {row}")
                name = row[c_dom].strip("`")
                try:
                    level = int(row[c_lvl])
                except ValueError as e:
                    raise HierarchyError(
                        f"bad level for domain {name}: {row[c_lvl]}") from e
                self_rule = row[c_self].lower() or "no"
                if self_rule not in ("no", "pair", "instance"):
                    raise HierarchyError(
                        f"bad Self rule for {name}: {self_rule}")
                pats = []
                for p in BACKTICK_RE.findall(row[c_pat]):
                    try:
                        pats.append(re.compile(p))
                    except re.error as e:
                        raise HierarchyError(
                            f"bad pattern for {name}: {p}: {e}") from e
                if name in h.domains:
                    raise HierarchyError(f"duplicate domain {name}")
                h.domains[name] = Domain(
                    name=name, level=level,
                    may_block=row[c_blk].lower().startswith("y"),
                    self_rule=self_rule, patterns=pats,
                    rationale=row[-1])
        elif section.startswith("callback"):
            c_reg = _col(header, "registrar")
            c_held = _col(header, "held")
            for row in rows:
                reg = BACKTICK_RE.findall(row[c_reg])
                held = [d.strip("`") for d in BACKTICK_RE.findall(row[c_held])]
                for r in reg:
                    h.callback_entry[r] = held
        elif section.startswith("blocking"):
            c_pat = _col(header, "pattern")
            for row in rows:
                why = row[-1]
                for p in BACKTICK_RE.findall(row[c_pat]):
                    try:
                        h.blocking.append((re.compile(p), why))
                    except re.error as e:
                        raise HierarchyError(f"bad blocking pattern {p}: {e}") \
                            from e
        elif section.startswith("layering"):
            c_mod = _col(header, "module")
            c_lvl = _col(header, "level")
            for row in rows:
                name = row[c_mod].strip("`")
                try:
                    h.modules[name] = int(row[c_lvl])
                except ValueError as e:
                    raise HierarchyError(
                        f"bad layer level for {name}: {row[c_lvl]}") from e

    if not h.domains:
        raise HierarchyError(f"{path}: no '## Hierarchy' table found")
    # Validate the callback entry domains exist.
    for reg, held in h.callback_entry.items():
        for d in held:
            if d not in h.domains:
                raise HierarchyError(
                    f"callback '{reg}' names unknown domain '{d}'")
    return h
