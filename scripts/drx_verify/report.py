"""Suppression handling and finding reports for drx_verify.

Suppression syntax (in the analyzed C++ sources):

    // drx-verify: allow(<rule>) <justification>

placed on the offending line or the line directly above it. The
justification is mandatory under `--strict` (the CI mode). Legacy
`drx-lint: allow(...)` comments are honored through an alias table so
the sites already justified for the regex linter do not need duplicate
annotations for the AST passes that replaced those invariants:

    cache-lock-io, cache-lock-alloc  ->  blocking-under-lock
    cache-shard-pair                 ->  lock-order

A file can also reassign its layering module (used by the seeded
corpus, whose files impersonate src/ modules):

    // drx-verify: module(<name>)
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from passes import Finding

SUPPRESS_RE = re.compile(
    r"//\s*drx-verify:\s*allow\(([\w-]+)\)\s*(\S.*)?$")
LINT_SUPPRESS_RE = re.compile(
    r"//\s*drx-lint:\s*allow\(([\w-]+)\)\s*(\S.*)?$")
MODULE_RE = re.compile(r"//\s*drx-verify:\s*module\(([\w-]+)\)")

LINT_ALIASES = {
    "cache-lock-io": "blocking-under-lock",
    "cache-lock-alloc": "blocking-under-lock",
    "cache-shard-pair": "lock-order",
}


@dataclass
class Suppressions:
    # (file, line, rule) -> justification text ("" if none given)
    by_site: dict[tuple[str, int, str], str] = field(default_factory=dict)
    module_overrides: dict[str, str] = field(default_factory=dict)


def scan_suppressions(root: Path, files: set[str]) -> Suppressions:
    sup = Suppressions()
    for rel in sorted(files):
        path = root / rel
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for i, line in enumerate(lines):
            line_no = i + 1
            m = MODULE_RE.search(line)
            if m:
                sup.module_overrides[rel] = m.group(1)
            for regex, aliases in ((SUPPRESS_RE, {}),
                                   (LINT_SUPPRESS_RE, LINT_ALIASES)):
                sm = regex.search(line)
                if not sm:
                    continue
                rule = aliases.get(sm.group(1), sm.group(1)) if aliases \
                    else sm.group(1)
                if aliases and sm.group(1) not in aliases:
                    continue  # a drx-lint rule with no AST counterpart
                reason = (sm.group(2) or "").strip()
                # The comment governs its own line and the whole
                # statement that follows (comment-above style): coverage
                # extends line by line until a `;`/`{`/`}` terminator,
                # bounded so a runaway can't blanket a file.
                sup.by_site[(rel, line_no, rule)] = reason
                for j in range(i + 1, min(i + 6, len(lines))):
                    sup.by_site[(rel, j + 1, rule)] = reason
                    if re.search(r"[;{}]\s*(//.*)?$", lines[j]):
                        break
    return sup


def apply_suppressions(findings: list[Finding],
                       sup: Suppressions) -> list[Finding]:
    for f in findings:
        reason = sup.by_site.get((f.file, f.line, f.rule))
        if reason is not None:
            f.suppressed = True
            f.suppress_reason = reason
    return findings


def render_text(findings: list[Finding], strict: bool) -> str:
    lines = []
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for f in active:
        lines.append(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        if f.witness:
            lines.append(f"    via: {f.witness}")
    if suppressed:
        lines.append("")
        lines.append(f"suppressed ({len(suppressed)}):")
        for f in suppressed:
            why = f.suppress_reason or "<no justification>"
            lines.append(f"  {f.file}:{f.line}: [{f.rule}] {why}")
    missing = [f for f in suppressed if not f.suppress_reason]
    if strict and missing:
        lines.append("")
        for f in missing:
            lines.append(
                f"{f.file}:{f.line}: [{f.rule}] suppression without a "
                f"written justification (required by --strict)")
    lines.append("")
    lines.append(f"drx_verify: {len(active)} finding(s), "
                 f"{len(suppressed)} suppressed")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "file": f.file,
                "line": f.line,
                "message": f.message,
                "witness": f.witness,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in findings
        ],
        "unsuppressed": sum(1 for f in findings if not f.suppressed),
    }
    return json.dumps(payload, indent=2) + "\n"


def exit_code(findings: list[Finding], strict: bool) -> int:
    if any(not f.suppressed for f in findings):
        return 1
    if strict and any(f.suppressed and not f.suppress_reason
                      for f in findings):
        return 1
    return 0
