#!/usr/bin/env python3
"""Warn-only bench regression check against the committed baseline.

Compares a fresh DRX_BENCH_JSON report file against BENCH_baseline.json:
benches are matched by name, rows by their leading label cells, and every
shared numeric cell is compared. Simulated-time and request-count columns
are deterministic, so drift beyond the tolerance is a real behavior
change, not scheduler noise — but machine-dependent effects can still
leak in, so drift NEVER fails the build: it prints WARN lines for CI
logs (and the doctor artifact) and exits 0. Unreadable or malformed
input, on the other hand, is a broken pipeline and exits 2.
"""

import argparse
import json
import sys


class InputError(Exception):
    """A report file is unreadable or is not DRX_BENCH_JSON."""


def load_reports(path):
    reports = {}
    try:
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as err:
                    raise InputError(f"{path}:{line_no}: invalid JSON: {err}")
                if not isinstance(doc, dict) or "bench" not in doc \
                        or "table" not in doc:
                    raise InputError(
                        f"{path}:{line_no}: not a DRX_BENCH_JSON report line "
                        "(missing 'bench'/'table')")
                reports[doc["bench"]] = doc
    except OSError as err:
        raise InputError(f"{path}: {err}")
    if not reports:
        raise InputError(f"{path}: no bench report lines")
    return reports


def as_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def row_key(row):
    """Leading non-numeric cells identify the row (pattern/mode labels)."""
    key = []
    for cell in row:
        if as_number(cell) is not None:
            break
        key.append(cell)
    return tuple(key)


def compare_tables(name, base, cur, tolerance):
    warnings = []
    headers = base["table"]["headers"]
    base_rows = {row_key(r): r for r in base["table"]["rows"]}
    cur_rows = {row_key(r): r for r in cur["table"]["rows"]}
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        if crow is None:
            warnings.append(f"{name}: row {key} missing from current report")
            continue
        for col, (bcell, ccell) in enumerate(zip(brow, crow)):
            bval, cval = as_number(bcell), as_number(ccell)
            if bval is None or cval is None:
                continue
            if bval == 0:
                drift = 0.0 if cval == 0 else float("inf")
            else:
                drift = (cval - bval) / bval
            if abs(drift) > tolerance:
                col_name = headers[col] if col < len(headers) else f"col{col}"
                warnings.append(
                    f"{name} {'/'.join(key)} [{col_name}]: "
                    f"{bval:g} -> {cval:g} ({drift:+.0%})")
    for key in cur_rows.keys() - base_rows.keys():
        warnings.append(f"{name}: new row {key} not in baseline "
                        "(update BENCH_baseline.json)")
    return warnings


def copy_coalescing_warnings(current, min_ratio):
    """Check the run-coalescing invariant from docs/PERFORMANCE.md.

    bench_scatter reports embed the obs counter snapshot; a healthy
    CopyPlan data plane moves many elements per memcpy run, so
    core.copy.elements / core.copy.runs must stay >= min_ratio. A ratio
    near 1 means some path degraded back to element-granular copies.
    """
    doc = current.get("bench_scatter")
    if doc is None:
        return ["copy-coalescing: no bench_scatter report to check"]
    counters = doc.get("metrics", {}).get("counters", {})
    runs = counters.get("core.copy.runs", 0)
    elements = counters.get("core.copy.elements", 0)
    if runs <= 0 or elements <= 0:
        return ["copy-coalescing: core.copy.runs/core.copy.elements "
                "counters missing from bench_scatter metrics"]
    ratio = elements / runs
    print(f"copy-coalescing: {elements} elements over {runs} runs "
          f"({ratio:.1f} elements/run, floor {min_ratio:g})")
    if ratio < min_ratio:
        return [f"copy-coalescing: only {ratio:.1f} elements per memcpy "
                f"run (floor {min_ratio:g}) — a scatter/gather path has "
                "regressed to element-granular copies"]
    return []


def obs_overhead_warnings(current, max_ratio):
    """Check the always-on instrumentation gate from docs/OBSERVABILITY.md.

    bench_obs_overhead reports the flight-on / flight-off wall-time ratio
    of a cache-hit-dominated workload with tracing off. The causal
    instrumentation is permanently on in production, so the ratio must
    stay under max_ratio (default 1.02 = <2% overhead). Wall-clock cells
    are machine-dependent; only the ratio row is gated.
    """
    doc = current.get("bench_obs_overhead")
    if doc is None:
        return ["obs-overhead: no bench_obs_overhead report to check"]
    warnings = []
    ratio = None
    window_ratio = None
    for row in doc["table"]["rows"]:
        if row and row[0] == "overhead" and len(row) > 1:
            ratio = as_number(row[1])
        if row and row[0] == "window_overhead" and len(row) > 1:
            window_ratio = as_number(row[1])
    if ratio is None or ratio <= 0:
        warnings.append("obs-overhead: no 'overhead' ratio row in "
                        "bench_obs_overhead report")
    else:
        print(f"obs-overhead: flight-on/flight-off wall ratio {ratio:.3f} "
              f"(gate {max_ratio:g})")
        if ratio > max_ratio:
            warnings.append(
                f"obs-overhead: always-on instrumentation costs "
                f"{(ratio - 1) * 100:.1f}% with tracing off "
                f"(gate {(max_ratio - 1) * 100:g}%) — a hot path lost its "
                "enabled-flag guard")
    if window_ratio is None or window_ratio <= 0:
        warnings.append("obs-overhead: no 'window_overhead' ratio row in "
                        "bench_obs_overhead report")
    else:
        print(f"obs-overhead: window-on/window-off wall ratio "
              f"{window_ratio:.3f} (gate {max_ratio:g})")
        if window_ratio > max_ratio:
            warnings.append(
                f"obs-overhead: windowed metrics + scrape interference "
                f"costs {(window_ratio - 1) * 100:.1f}% "
                f"(gate {(max_ratio - 1) * 100:g}%) — the scrape path is "
                "contending with the workload")
    return warnings


SERVING_BENCHES = ("bench_serving", "bench_serving_scaling")


def compression_warnings(current, min_speedup, min_mb_saved):
    """Check the compression gate from docs/COMPRESSION.md (warn-only).

    - the bench_chunk_cache_compression "rle" row's effective-bandwidth
      speedup over the uncompressed streaming scan must stay >=
      min_speedup: decoding on the pool workers plus reading the stored
      bytes has to beat moving the raw bytes, or the codec path stopped
      paying for itself (or the slot layout lost its coalescibility);
    - both compression tables must report PFS "MB saved" >= min_mb_saved
      on their compressible workloads — a collapse here means chunks are
      being stored raw (the encoder started bailing out).
    """
    warnings = []
    scan = current.get("bench_chunk_cache_compression")
    if scan is None:
        warnings.append("compression: no bench_chunk_cache_compression "
                        "report to check")
    else:
        headers = scan["table"]["headers"]
        speedup = None
        saved = None
        for row in scan["table"]["rows"]:
            if row and row[0] == "rle":
                named = dict(zip(headers, row))
                speedup = as_number(
                    str(named.get("eff bw speedup", "")).rstrip("x"))
                saved = as_number(named.get("MB saved"))
        if speedup is None:
            warnings.append("compression: no 'rle' speedup row in "
                            "bench_chunk_cache_compression")
        else:
            print(f"compression: streaming-scan effective bandwidth = "
                  f"{speedup:g}x uncompressed (floor {min_speedup:g}x)")
            if speedup < min_speedup:
                warnings.append(
                    f"compression: effective-bandwidth speedup {speedup:g}x "
                    f"under the {min_speedup:g}x floor — per-chunk decode "
                    "plus stored-byte reads no longer beat the raw scan")
        if saved is not None:
            print(f"compression: streaming scan saved {saved:g} MB of PFS "
                  f"traffic (floor {min_mb_saved:g})")
            if saved < min_mb_saved:
                warnings.append(
                    f"compression: only {saved:g} MB of PFS traffic saved "
                    f"(floor {min_mb_saved:g}) — the encoder is bailing "
                    "out on a compressible workload")
    coll = current.get("bench_collective_io_compression")
    if coll is None:
        warnings.append("compression: no bench_collective_io_compression "
                        "report to check")
    else:
        headers = coll["table"]["headers"]
        rle_rows = 0
        for row in coll["table"]["rows"]:
            named = dict(zip(headers, row))
            if named.get("mode") != "rle":
                continue
            rle_rows += 1
            saved = as_number(named.get("MB saved"))
            label = "/".join(row_key(row))
            if saved is None or saved < min_mb_saved:
                warnings.append(
                    f"compression {label}: collective read saved "
                    f"{saved if saved is not None else '?'} MB "
                    f"(floor {min_mb_saved:g}) — the slot-table file view "
                    "is moving raw bytes")
        if rle_rows == 0:
            warnings.append("compression: no 'rle' rows in "
                            "bench_collective_io_compression")
        else:
            print(f"compression: {rle_rows} collective-read rle row(s) "
                  f"checked (floor {min_mb_saved:g} MB saved each)")
    return warnings


def serving_warnings(baseline, current, p99_factor, imbalance_max,
                     min_scaling):
    """Check the serving-latency gate from docs/SERVING.md (warn-only).

    - bench_serving p99 may not exceed the baseline row by more than
      p99_factor (tails are noisy; anything past that is a regression,
      not jitter);
    - the cache shard-imbalance ratio must stay below imbalance_max,
      the same threshold the drx_doctor cache-shard-imbalance detector
      warns at — a hot shard collapses per-shard locking back toward a
      single lock;
    - the closed-loop "8 shards, fast on" speedup over the pre-shard
      single-lock row must stay >= min_scaling.
    """
    warnings = []
    cur = current.get("bench_serving")
    if cur is None:
        warnings.append("serving: no bench_serving report to check")
    else:
        headers = cur["table"]["headers"]
        base = baseline.get("bench_serving")
        base_rows = ({row_key(r): r for r in base["table"]["rows"]}
                     if base else {})
        for row in cur["table"]["rows"]:
            key = row_key(row)
            label = "/".join(key) or "?"
            named = dict(zip(headers, row))
            p99 = as_number(named.get("p99 us"))
            imbalance = as_number(named.get("shard imbalance"))
            print(f"serving {label}: p99 "
                  f"{p99 if p99 is not None else '?'} us, shard imbalance "
                  f"{imbalance if imbalance is not None else '?'}")
            if imbalance is not None and imbalance >= imbalance_max:
                warnings.append(
                    f"serving {label}: shard-imbalance ratio "
                    f"{imbalance:g} >= {imbalance_max:g} — one cache shard "
                    "is hot; per-shard locking is degrading toward a "
                    "single lock")
            brow = base_rows.get(key)
            if brow is not None and p99 is not None:
                bnamed = dict(zip(base["table"]["headers"], brow))
                bp99 = as_number(bnamed.get("p99 us"))
                if bp99 and p99 > bp99 * p99_factor:
                    warnings.append(
                        f"serving {label}: p99 {p99:g} us vs baseline "
                        f"{bp99:g} us (> {p99_factor:g}x) — the serving "
                        "tail regressed")
    scaling = current.get("bench_serving_scaling")
    if scaling is None:
        warnings.append("serving: no bench_serving_scaling report to check")
    else:
        speedup = None
        for row in scaling["table"]["rows"]:
            if row and row[0].startswith("8 shards, fast on"):
                named = dict(zip(scaling["table"]["headers"], row))
                speedup = as_number(str(named.get("speedup", "")).rstrip("x"))
        if speedup is None:
            warnings.append("serving: no '8 shards, fast on' row in "
                            "bench_serving_scaling")
        else:
            print(f"serving-scaling: 8 shards + fast path = {speedup:g}x "
                  f"the single-lock cache (floor {min_scaling:g}x)")
            if speedup < min_scaling:
                warnings.append(
                    f"serving: sharded-cache speedup {speedup:g}x under "
                    f"the {min_scaling:g}x floor — sharding or the "
                    "resident-read fast path stopped paying for itself")
    return warnings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="check_bench_regression.py",
        description="Compare a fresh DRX_BENCH_JSON report against the "
                    "committed baseline and print WARN lines for numeric "
                    "cells drifting beyond the tolerance.",
        epilog="Exit codes: 0 on success (drift only warns, by design), "
               "2 if either report is unreadable or malformed.")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument(
        "tolerance", nargs="?", type=float, default=0.25,
        help="allowed relative drift per cell (default: 0.25 = 25%%)")
    parser.add_argument(
        "--copy-coalescing", type=float, nargs="?", const=5.0, default=None,
        metavar="MIN_RATIO",
        help="also require core.copy.elements/core.copy.runs >= MIN_RATIO "
             "in the current bench_scatter metrics (default floor: 5)")
    parser.add_argument(
        "--obs-overhead", type=float, nargs="?", const=1.02, default=None,
        metavar="MAX_RATIO",
        help="also require the bench_obs_overhead flight-on/flight-off "
             "wall-time ratio <= MAX_RATIO (default gate: 1.02, i.e. <2%% "
             "always-on instrumentation overhead; warn-only like "
             "everything else)")
    parser.add_argument(
        "--compression", action="store_true",
        help="compression mode (docs/COMPRESSION.md): gate the "
             "bench_chunk_cache_compression effective-bandwidth speedup "
             "(>= 1.2x uncompressed) and the PFS bytes saved by both "
             "compression tables (>= 1 MB on the compressible workloads); "
             "warn-only")
    parser.add_argument(
        "--serving", action="store_true",
        help="serving-latency mode (docs/SERVING.md): compare only the "
             "bench_serving/bench_serving_scaling tables and gate the p99 "
             "tail (4x the baseline), the cache shard-imbalance ratio "
             "(< 1.5) and the sharded-cache speedup (>= 1.5x); warn-only")
    args = parser.parse_args(argv)

    try:
        baseline = load_reports(args.baseline)
        current = load_reports(args.current)
    except InputError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2

    if args.serving:
        # Serving tables carry wall-clock latency cells; generic per-cell
        # drift comparison would be pure noise, so only the targeted
        # serving gates run in this mode.
        baseline = {k: v for k, v in baseline.items()
                    if k in SERVING_BENCHES}
        current = {k: v for k, v in current.items() if k in SERVING_BENCHES}

    warnings = []
    if args.serving:
        warnings.extend(serving_warnings(
            baseline, current, p99_factor=4.0, imbalance_max=1.5,
            min_scaling=1.5))
    else:
        for name, base in baseline.items():
            cur = current.get(name)
            if cur is None:
                warnings.append(f"{name}: bench missing from current report")
                continue
            warnings.extend(compare_tables(name, base, cur, args.tolerance))
    if args.compression:
        warnings.extend(compression_warnings(current, min_speedup=1.2,
                                             min_mb_saved=1.0))
    if args.copy_coalescing is not None:
        warnings.extend(copy_coalescing_warnings(current,
                                                 args.copy_coalescing))
    if args.obs_overhead is not None:
        warnings.extend(obs_overhead_warnings(current, args.obs_overhead))

    compared = sorted(set(baseline) & set(current))
    print(f"compared {len(compared)} bench(es) against baseline "
          f"(tolerance {args.tolerance:.0%}): {', '.join(compared)}")
    for msg in warnings:
        print(f"WARN: {msg}")
    if not warnings:
        print("OK: all bench rows within tolerance")
    return 0  # warn-only by design


if __name__ == "__main__":
    sys.exit(main())
