#!/usr/bin/env python3
"""CI perf-smoke gate for the async chunk I/O engine (docs/ASYNC_IO.md).

Compares two DRX_BENCH_JSON reports from bench_chunk_cache — one with the
async engine off (DRX_IO_THREADS=0) and one with read-ahead enabled — and
fails unless prefetch-on beats prefetch-off on the sequential streaming
scan, both in simulated time and in storage request count (the request
count is deterministic, so a scheduler hiccup cannot mask a regression).
"""

import argparse
import json
import sys


class InputError(Exception):
    """A report file is unreadable or is not a bench_chunk_cache report."""


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            line = f.readline().strip()
    except OSError as err:
        raise InputError(f"{path}: {err}")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as err:
        raise InputError(f"{path}: invalid JSON: {err}")
    if not isinstance(doc, dict) or doc.get("bench") != "bench_chunk_cache":
        raise InputError(f"{path}: expected a bench_chunk_cache report")
    return doc


def sequential_cached_row(doc, path):
    try:
        rows = doc["table"]["rows"]
    except (KeyError, TypeError):
        raise InputError(f"{path}: report has no table rows")
    for i, row in enumerate(rows):
        if row and row[0] == "sequential sweep":
            try:
                cached = rows[i + 1]
                if not cached[1].startswith("CachedDrxFile"):
                    raise InputError(
                        f"{path}: unexpected row layout: {cached}")
                return float(cached[2]), int(cached[3])
            except (IndexError, ValueError, AttributeError):
                raise InputError(
                    f"{path}: malformed 'sequential sweep' rows")
    raise InputError(f"{path}: no 'sequential sweep' row found")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="check_prefetch_gate.py",
        description="Fail unless the read-ahead run beats the synchronous "
                    "run on the sequential scan, in both simulated time "
                    "and storage request count.",
        epilog="Exit codes: 0 gate passed, 1 gate failed, 2 if a report "
               "is unreadable or malformed.")
    parser.add_argument("bench_off", help="report with DRX_IO_THREADS=0")
    parser.add_argument("bench_on", help="report with read-ahead enabled")
    args = parser.parse_args(argv)

    try:
        off = load_report(args.bench_off)
        on = load_report(args.bench_on)
        off_ms, off_reqs = sequential_cached_row(off, args.bench_off)
        on_ms, on_reqs = sequential_cached_row(on, args.bench_on)
    except InputError as err:
        print(f"ERROR: {err}", file=sys.stderr)
        return 2
    issued = on.get("metrics", {}).get("counters", {}).get(
        "core.cache.prefetch_issued", 0)

    print(f"sequential cached scan: off {off_ms:.1f} sim ms / {off_reqs} "
          f"requests, on {on_ms:.1f} sim ms / {on_reqs} requests "
          f"({issued} chunks prefetched)")

    failures = []
    if issued <= 0:
        failures.append("prefetch-on run never issued a prefetch "
                        "(DRX_IO_THREADS/DRX_PREFETCH_DEPTH not applied?)")
    if not on_ms < off_ms:
        failures.append(f"sim time regressed: on {on_ms:.1f} >= "
                        f"off {off_ms:.1f} ms")
    if not on_reqs < off_reqs:
        failures.append(f"storage requests regressed: on {on_reqs} >= "
                        f"off {off_reqs}")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("PASS: read-ahead beats the synchronous path on the "
          "sequential scan")
    return 0


if __name__ == "__main__":
    sys.exit(main())
