#!/usr/bin/env python3
"""CI perf-smoke gate for the async chunk I/O engine (docs/ASYNC_IO.md).

Compares two DRX_BENCH_JSON reports from bench_chunk_cache — one with the
async engine off (DRX_IO_THREADS=0) and one with read-ahead enabled — and
fails unless prefetch-on beats prefetch-off on the sequential streaming
scan, both in simulated time and in storage request count (the request
count is deterministic, so a scheduler hiccup cannot mask a regression).

Usage: check_prefetch_gate.py <bench-off.json> <bench-on.json>
"""

import json
import sys


def load_report(path):
    with open(path, encoding="utf-8") as f:
        line = f.readline().strip()
    doc = json.loads(line)
    if doc.get("bench") != "bench_chunk_cache":
        raise SystemExit(f"{path}: expected a bench_chunk_cache report")
    return doc


def sequential_cached_row(doc, path):
    rows = doc["table"]["rows"]
    for i, row in enumerate(rows):
        if row[0] == "sequential sweep":
            cached = rows[i + 1]
            if not cached[1].startswith("CachedDrxFile"):
                raise SystemExit(f"{path}: unexpected row layout: {cached}")
            return float(cached[2]), int(cached[3])
    raise SystemExit(f"{path}: no 'sequential sweep' row found")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    off_path, on_path = sys.argv[1], sys.argv[2]
    off = load_report(off_path)
    on = load_report(on_path)

    off_ms, off_reqs = sequential_cached_row(off, off_path)
    on_ms, on_reqs = sequential_cached_row(on, on_path)
    issued = on["metrics"]["counters"].get("core.cache.prefetch_issued", 0)

    print(f"sequential cached scan: off {off_ms:.1f} sim ms / {off_reqs} "
          f"requests, on {on_ms:.1f} sim ms / {on_reqs} requests "
          f"({issued} chunks prefetched)")

    failures = []
    if issued <= 0:
        failures.append("prefetch-on run never issued a prefetch "
                        "(DRX_IO_THREADS/DRX_PREFETCH_DEPTH not applied?)")
    if not on_ms < off_ms:
        failures.append(f"sim time regressed: on {on_ms:.1f} >= "
                        f"off {off_ms:.1f} ms")
    if not on_reqs < off_reqs:
        failures.append(f"storage requests regressed: on {on_reqs} >= "
                        f"off {off_reqs}")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("PASS: read-ahead beats the synchronous path on the "
          "sequential scan")
    return 0


if __name__ == "__main__":
    sys.exit(main())
