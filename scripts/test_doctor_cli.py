#!/usr/bin/env python3
"""Exit-code regression test for the drx_doctor CLI, run from ctest.

Usage: test_doctor_cli.py <path-to-drx_doctor>

Locks in the documented contract (tools/drx_doctor.cpp header):
  0  inputs parsed, nothing gates
  1  --strict and the trace reports dropped events
  2  usage error
  3  an input file was unreadable or malformed
These codes are load-bearing: the CI doctor step and docs/OBSERVABILITY.md
both dispatch on them, so a renumbering must fail loudly here.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

DOCTOR = None


def run_doctor(*args):
    proc = subprocess.run([DOCTOR, *args], capture_output=True, text=True,
                          timeout=60)
    return proc.returncode, proc.stdout, proc.stderr


class TestDoctorCli(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def _trace(self, name, doc):
        path = self.tmp / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_no_inputs_is_usage_error(self):
        code, _, err = run_doctor()
        self.assertEqual(code, 2)
        self.assertIn("usage", err)

    def test_unknown_flag_is_usage_error(self):
        code, _, _ = run_doctor("--frobnicate")
        self.assertEqual(code, 2)

    def test_clean_trace_strict_exits_zero(self):
        trace = self._trace("clean.json", {
            "traceEvents": [],
            "metadata": {"events": 0, "dropped": 0}})
        code, out, err = run_doctor("--strict", "--trace", trace)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")

    def test_malformed_trace_exits_three(self):
        path = self.tmp / "broken.json"
        path.write_text('{"traceEvents": [oops', encoding="utf-8")
        code, _, err = run_doctor("--strict", "--trace", str(path))
        self.assertEqual(code, 3)
        self.assertIn("broken.json", err)

    def test_wrong_shape_trace_exits_three(self):
        trace = self._trace("shape.json", {"events": []})
        code, _, _ = run_doctor("--trace", trace)
        self.assertEqual(code, 3)

    def test_unreadable_input_exits_three(self):
        code, _, err = run_doctor("--trace", str(self.tmp / "absent.json"))
        self.assertEqual(code, 3)
        self.assertIn("cannot read", err)

    def test_dropped_events_gate_only_under_strict(self):
        trace = self._trace("dropped.json", {
            "traceEvents": [],
            "metadata": {"events": 7, "dropped": 3}})
        code, _, _ = run_doctor("--trace", trace)
        self.assertEqual(code, 0)  # advisory without --strict
        code, _, err = run_doctor("--strict", "--trace", trace)
        self.assertEqual(code, 1)
        self.assertIn("dropped", err)

    def test_malformed_input_beats_strict_gate(self):
        path = self.tmp / "broken.json"
        path.write_text("]", encoding="utf-8")
        code, _, _ = run_doctor("--strict", "--trace", str(path))
        self.assertEqual(code, 3)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    DOCTOR = sys.argv.pop(1)
    unittest.main()
