#!/usr/bin/env python3
"""Exit-code and rendering regression test for the drx_top CLI, run from
ctest.

Usage: test_top_cli.py <path-to-drx_top>

Locks in the documented contract (tools/drx_top.cpp header):
  0  success
  1  scrape/parse failure
  2  usage error
The offline --render mode is the same code path the live poll loop uses,
so these fixtures exercise the renderer (windowed latency table, per-shard
cache row, queue/session gauges) without needing a live exporter.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOP = None


def run_top(*args, env=None):
    proc = subprocess.run([TOP, *args], capture_output=True, text=True,
                          timeout=60, env=env)
    return proc.returncode, proc.stdout, proc.stderr


def histogram(count, total, buckets):
    return {"count": count, "sum": total, "p50": 0, "p95": 0, "p99": 0,
            "max": 0, "buckets": buckets}


WINDOW = {
    "format": "drx-window", "version": 1,
    "config": {"epoch_ms": 10000, "epochs": 6, "horizon_ms": 60000},
    "slo": [{"histogram": "serve.request.latency_us", "target_us": 16383,
             "budget": 0.01}],
    "now_us": 99000000,
    "window": {
        "span_us": 30000000, "epochs": 3,
        "metrics": {
            "counters": {"core.cache.shard.0.accesses": 40,
                         "core.cache.shard.1.accesses": 25,
                         "serve.requests": 60},
            "histograms": {
                # 60 observations in bucket 10 (~512us).
                "serve.request.latency_us":
                    histogram(60, 30720, [0] * 10 + [60]),
                # Non-latency histogram: must not land in the op table.
                "serve.request.bytes": histogram(60, 480000, [0] * 13 + [60]),
            },
        },
    },
    "epoch_deltas": [],
}

LIVE = {
    "format": "drx-live", "version": 1,
    "metrics": {"counters": {}, "histograms": {}},
    "gauges": [
        {"name": "serve.queue.depth", "labels": {"array": "a"}, "value": 3},
        {"name": "serve.cache.fast_hit_ratio", "labels": {"array": "a"},
         "value": 0.75},
        {"name": "serve.session.submitted",
         "labels": {"array": "a", "session": "0"}, "value": 12},
        {"name": "serve.session.completed",
         "labels": {"array": "a", "session": "0"}, "value": 11},
        {"name": "serve.session.failed",
         "labels": {"array": "a", "session": "0"}, "value": 1},
    ],
}


class TestTopCli(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def _file(self, name, doc):
        path = self.tmp / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_no_port_and_no_render_is_usage_error(self):
        code, _, err = run_top(env={"PATH": "/usr/bin:/bin"})
        self.assertEqual(code, 2)
        self.assertIn("usage", err)

    def test_unknown_flag_is_usage_error(self):
        code, _, _ = run_top("--frobnicate")
        self.assertEqual(code, 2)

    def test_render_without_path_is_usage_error(self):
        code, _, _ = run_top("--render")
        self.assertEqual(code, 2)

    def test_bad_port_is_usage_error(self):
        code, _, _ = run_top("--port", "notaport")
        self.assertEqual(code, 2)
        code, _, _ = run_top("--port", "70000")
        self.assertEqual(code, 2)

    def test_bad_interval_is_usage_error(self):
        code, _, _ = run_top("--interval", "0", "--port", "1")
        self.assertEqual(code, 2)

    def test_render_missing_file_exits_one(self):
        code, _, err = run_top("--render", str(self.tmp / "absent.json"))
        self.assertEqual(code, 1)
        self.assertIn("cannot read", err)

    def test_render_malformed_json_exits_one(self):
        path = self.tmp / "broken.json"
        path.write_text('{"format": oops', encoding="utf-8")
        code, _, _ = run_top("--render", str(path))
        self.assertEqual(code, 1)

    def test_render_window_only(self):
        path = self._file("window.json", WINDOW)
        code, out, err = run_top("--render", path)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        # Header carries the configured horizon and the measured span.
        self.assertIn("window 60s", out)
        self.assertIn("span 30.0s", out)
        # Latency table: only *_us histograms, with the windowed rate
        # (60 requests over 30s = 2.0/s).
        self.assertIn("serve.request.latency_us", out)
        self.assertIn("2.0", out)
        self.assertNotIn("serve.request.bytes", out)
        # Per-shard cache traffic, ordered by shard index.
        self.assertIn("cache shards (windowed accesses): 0:40 1:25", out)

    def test_render_with_gauges_shows_sessions(self):
        window = self._file("window.json", WINDOW)
        live = self._file("live.json", LIVE)
        code, out, err = run_top("--render", window, "--gauges", live)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        self.assertIn("queue depth 3", out)
        self.assertIn("fast-hit ratio 0.75", out)
        # Per-session table row: array, session, submitted/completed/failed.
        self.assertIn("session", out)
        session_rows = [ln for ln in out.splitlines()
                        if ln.startswith("a ") and "12" in ln]
        self.assertEqual(len(session_rows), 1)
        self.assertIn("11", session_rows[0])
        self.assertIn("1", session_rows[0])

    def test_render_with_malformed_gauges_exits_one(self):
        window = self._file("window.json", WINDOW)
        bad = self.tmp / "bad.json"
        bad.write_text("{", encoding="utf-8")
        code, _, _ = run_top("--render", window, "--gauges", str(bad))
        self.assertEqual(code, 1)

    def test_unreachable_port_exits_one(self):
        # Port 1 on loopback is essentially never listening; connect fails
        # fast and drx_top must report a scrape error, not hang.
        code, _, err = run_top("--port", "1", "--count", "1",
                               "--interval", "0.1")
        self.assertEqual(code, 1)
        self.assertIn("error", err)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    TOP = sys.argv.pop(1)
    unittest.main()
