#!/usr/bin/env python3
"""Exit-code regression test for the drx_stats CLI, run from ctest.

Usage: test_stats_cli.py <path-to-drx_stats>

Locks in the documented contract (tools/drx_stats.cpp header):
  0  success
  1  an input file was unreadable or malformed
  2  usage error
with particular attention to the --top mode, which reads either a
DRX_TRACE trace (op-summary events, cat "op") or a drx-flight dump
(kind "op" ring records) and prints the N slowest ops with their
per-stage latency breakdown.
"""

import json
import struct
import subprocess
import sys
import tempfile
import time
import unittest
from pathlib import Path

STATS = None


def snapshot_bytes(counters):
    """A binary MetricsSnapshot (obs/metrics.cpp serialize: "DRXM" v1,
    little-endian, u32-length-prefixed names)."""
    out = struct.pack("<III", 0x4452584D, 1, len(counters))
    for name, value in counters:
        raw = name.encode()
        out += struct.pack("<I", len(raw)) + raw + struct.pack("<Q", value)
    out += struct.pack("<I", 0)  # histograms
    return out


def run_stats(*args):
    proc = subprocess.run([STATS, *args], capture_output=True, text=True,
                          timeout=60)
    return proc.returncode, proc.stdout, proc.stderr


def op_event(name, op, dur, dominant, pid=1):
    return {"name": name, "cat": "op", "ph": "X", "pid": pid, "tid": 1,
            "ts": 0, "dur": dur,
            "args": {"op": op, "lock_wait_ns": 0, "cache_fault_ns": 0,
                     "queue_wait_ns": 0, "io_service_ns": dur * 900,
                     "copy_ns": 0, "other_ns": dur * 100,
                     "dominant": dominant}}


TRACE = {"displayTimeUnit": "ms",
         "traceEvents": [op_event("op.read_box", 1, 500, "io_service"),
                         op_event("op.write_box", 2, 900, "io_service"),
                         op_event("op.extend", 3, 100, "other")],
         "metadata": {"events": 3, "flows": 0, "ops": 3, "dropped": 0}}

FLIGHT = {"format": "drx-flight", "version": 1, "reason": "on-demand",
          "threads": [{"tid": 1, "records": [
              {"seq": 1, "kind": "op", "name": "op.cached_get",
               "ts_ns": 0, "dur_ns": 700000, "arg": 3, "op": 4,
               "parent": 0, "rank": 0},
              {"seq": 2, "kind": "span", "name": "io.pool.job",
               "ts_ns": 0, "dur_ns": 650000, "arg": 0, "op": 4,
               "parent": 0, "rank": 0}]}]}


class TestStatsCli(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def _file(self, name, doc):
        path = self.tmp / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_no_args_is_usage_error(self):
        code, _, err = run_stats()
        self.assertEqual(code, 2)
        self.assertIn("usage", err)

    def test_top_without_count_is_usage_error(self):
        code, _, _ = run_stats("--top")
        self.assertEqual(code, 2)

    def test_top_with_bad_count_is_usage_error(self):
        code, _, _ = run_stats("--top", "zero", "x.json")
        self.assertEqual(code, 2)
        code, _, _ = run_stats("--top", "0", "x.json")
        self.assertEqual(code, 2)

    def test_top_with_extra_mode_is_usage_error(self):
        code, _, _ = run_stats("--top", "3", "--json", "x.json")
        self.assertEqual(code, 2)

    def test_top_missing_file_exits_one(self):
        code, _, err = run_stats("--top", "3", str(self.tmp / "absent.json"))
        self.assertEqual(code, 1)
        self.assertIn("cannot read", err)

    def test_top_malformed_json_exits_one(self):
        path = self.tmp / "broken.json"
        path.write_text('{"traceEvents": [oops', encoding="utf-8")
        code, _, _ = run_stats("--top", "3", str(path))
        self.assertEqual(code, 1)

    def test_top_wrong_document_kind_exits_one(self):
        path = self._file("other.json", {"something": "else"})
        code, _, err = run_stats("--top", "3", path)
        self.assertEqual(code, 1)
        self.assertIn("neither a trace", err)

    def test_top_trace_prints_slowest_ops_with_stages(self):
        path = self._file("trace.json", TRACE)
        code, out, err = run_stats("--top", "2", path)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        self.assertIn("top 2 op(s)", out)
        lines = out.splitlines()
        # Slowest first, truncated to N: write_box (900us) then read_box.
        self.assertIn("op.write_box", lines[2])
        self.assertIn("op.read_box", lines[3])
        self.assertNotIn("op.extend", out)
        # Per-stage breakdown columns present for trace input.
        self.assertIn("io_service", lines[1])
        self.assertIn("queue_wait", lines[1])
        self.assertIn("dominant", lines[1])

    def test_top_larger_n_than_ops_prints_all(self):
        path = self._file("trace.json", TRACE)
        code, out, _ = run_stats("--top", "10", path)
        self.assertEqual(code, 0)
        self.assertIn("top 3 op(s)", out)
        self.assertIn("op.extend", out)

    # ---- --watch (polling mode over the --diff machinery) ----------------

    def _snapshot(self, name, counters):
        path = self.tmp / name
        path.write_bytes(snapshot_bytes(counters))
        return str(path)

    def test_watch_without_interval_is_usage_error(self):
        code, _, _ = run_stats("--watch")
        self.assertEqual(code, 2)

    def test_watch_with_bad_interval_is_usage_error(self):
        for bad in ("zero", "0", "-1"):
            code, _, _ = run_stats("--watch", bad, "x.bin")
            self.assertEqual(code, 2, f"interval {bad!r}")

    def test_watch_needs_exactly_one_source(self):
        code, _, _ = run_stats("--watch", "1", "a.bin", "b.bin")
        self.assertEqual(code, 2)
        code, _, _ = run_stats("--watch", "1")
        self.assertEqual(code, 2)

    def test_watch_excludes_other_modes(self):
        code, _, _ = run_stats("--watch", "1", "--diff", "a.bin")
        self.assertEqual(code, 2)
        code, _, _ = run_stats("--watch", "1", "--top", "3", "a.bin")
        self.assertEqual(code, 2)

    def test_count_without_watch_is_usage_error(self):
        snap = self._snapshot("s.bin", [("x", 1)])
        code, _, _ = run_stats("--count", "2", snap)
        self.assertEqual(code, 2)

    def test_watch_missing_source_exits_one(self):
        code, _, err = run_stats("--watch", "0.1", "--count", "1",
                                 str(self.tmp / "absent.bin"))
        self.assertEqual(code, 1)
        self.assertIn("cannot read", err)

    def test_watch_url_without_port_exits_one(self):
        code, _, err = run_stats("--watch", "0.1", "--count", "1",
                                 "http://127.0.0.1")
        self.assertEqual(code, 1)
        self.assertIn("port", err)

    def test_watch_prints_delta_between_polls(self):
        # Initial scrape sees A; the file is swapped to B during the
        # sleep, so the one printed delta must be B - A.
        path = self._snapshot("live.bin", [("serve.requests", 10)])
        proc = subprocess.Popen(
            [STATS, "--watch", "1.5", "--count", "1", path],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        time.sleep(0.5)  # well past the initial load, inside the sleep
        Path(path).write_bytes(snapshot_bytes([("serve.requests", 17)]))
        out, err = proc.communicate(timeout=60)
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{out}\nstderr:\n{err}")
        self.assertIn("delta prev -> now", out)
        self.assertIn("serve.requests", out)
        self.assertIn("+7", out)

    def test_watch_json_delta_is_machine_readable(self):
        path = self._snapshot("same.bin", [("serve.requests", 5)])
        code, out, err = run_stats("--json", "--watch", "0.1", "--count",
                                   "2", path)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        lines = [ln for ln in out.splitlines() if ln.strip()]
        self.assertEqual(len(lines), 2)  # one delta document per poll
        for line in lines:
            doc = json.loads(line)
            # Source unchanged between polls: every delta is zero.
            self.assertEqual(doc["counters"].get("serve.requests", 0), 0)

    def test_top_flight_dump_prints_dominant_stage(self):
        path = self._file("flight.json", FLIGHT)
        code, out, err = run_stats("--top", "5", path)
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        self.assertIn("op.cached_get", out)
        self.assertIn("io_service", out)  # dominant stage index 3
        self.assertNotIn("io.pool.job", out)  # span records are not ops


if __name__ == "__main__":
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    STATS = sys.argv.pop(1)
    unittest.main()
