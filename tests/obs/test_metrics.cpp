#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace drx::obs {
namespace {

// Metric names are process-global; every test uses its own names so the
// aggregated binary stays order-independent.

TEST(Metrics, CounterAccumulates) {
  const MetricId id = counter_id("test.m.counter");
  Registry reg;
  reg.counter(id).add();
  reg.counter(id).add(41);
  EXPECT_EQ(reg.counter(id).value(), 42u);
}

TEST(Metrics, CounterIdIsStable) {
  EXPECT_EQ(counter_id("test.m.stable"), counter_id("test.m.stable"));
}

TEST(Metrics, ResetZeroesInPlaceAndKeepsReferencesValid) {
  // The lock-free fast-id table hands out raw pointers, so reset() must
  // zero slots in place rather than destroy them (docs/SERVING.md).
  const MetricId cid = counter_id("test.m.reset.counter");
  const MetricId hid = histogram_id("test.m.reset.hist");
  Registry reg;
  Counter& c = reg.counter(cid);
  Histogram& h = reg.histogram(hid);
  c.add(7);
  h.observe(1023);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(10), 0u);
  // The same slot objects keep accumulating after the reset.
  EXPECT_EQ(&reg.counter(cid), &c);
  EXPECT_EQ(&reg.histogram(hid), &h);
  c.add(3);
  EXPECT_EQ(reg.counter(cid).value(), 3u);
}

TEST(Metrics, ConcurrentLookupsShareOneSlot) {
  // counter()/histogram() resolve through the lock-free table on the
  // steady-state path; racing first-touch lookups must agree on the slot.
  const MetricId cid = counter_id("test.m.race.counter");
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, cid] {
      for (int i = 0; i < 1000; ++i) reg.counter(cid).add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter(cid).value(), 4000u);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  const MetricId id = histogram_id("test.m.hist");
  Registry reg;
  Histogram& h = reg.histogram(id);
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1
  h.observe(7);     // bucket 3
  h.observe(8);     // bucket 4
  h.observe(1023);  // bucket 10
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 7 + 8 + 1023);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Metrics, ScopedTimerObservesElapsedMicros) {
  const MetricId id = histogram_id("test.m.timer");
  RankScope scope(7);  // timer writes through registry(); redirect it
  { ScopedTimer t(id); }
  // The observation landed in the rank registry installed above.
  const MetricsSnapshot snap = scope.local().snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "test.m.timer") {
      EXPECT_EQ(h.count, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, SnapshotMergeMatchesByName) {
  const MetricId c = counter_id("test.m.merge_c");
  const MetricId h = histogram_id("test.m.merge_h");
  Registry a;
  Registry b;
  a.counter(c).add(10);
  b.counter(c).add(32);
  a.histogram(h).observe(4);
  b.histogram(h).observe(4);
  b.histogram(h).observe(100);

  MetricsSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.counter("test.m.merge_c"), 42u);
  for (const auto& hs : sa.histograms) {
    if (hs.name != "test.m.merge_h") continue;
    EXPECT_EQ(hs.count, 3u);
    EXPECT_EQ(hs.sum, 108u);
    EXPECT_EQ(hs.buckets[3], 2u);  // two observations of 4
    EXPECT_EQ(hs.buckets[7], 1u);  // one of 100
  }
}

TEST(Metrics, SnapshotSerializeRoundTrips) {
  const MetricId c = counter_id("test.m.serde_c");
  const MetricId h = histogram_id("test.m.serde_h");
  Registry reg;
  reg.counter(c).add(123456789);
  reg.histogram(h).observe(0);
  reg.histogram(h).observe(1ULL << 40);

  const MetricsSnapshot snap = reg.snapshot();
  auto back = MetricsSnapshot::deserialize(snap.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().counter("test.m.serde_c"), 123456789u);
  bool found = false;
  for (const auto& hs : back.value().histograms) {
    if (hs.name != "test.m.serde_h") continue;
    found = true;
    EXPECT_EQ(hs.count, 2u);
    EXPECT_EQ(hs.sum, 1ULL << 40);
    EXPECT_EQ(hs.buckets[0], 1u);
    EXPECT_EQ(hs.buckets[41], 1u);
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, DeserializeRejectsGarbage) {
  std::vector<std::byte> junk(16, std::byte{0x5A});
  EXPECT_FALSE(MetricsSnapshot::deserialize(junk).is_ok());
  EXPECT_FALSE(MetricsSnapshot::deserialize({}).is_ok());
}

TEST(Metrics, RankScopeRedirectsAndFoldsIntoParent) {
  const MetricId c = counter_id("test.m.fold");
  const std::uint64_t before = process_registry().counter(c).value();
  std::thread t([&] {
    EXPECT_EQ(current_rank(), -1);
    RankScope scope(3);
    EXPECT_EQ(current_rank(), 3);
    registry().counter(c).add(5);
    // Increment went to the rank registry, not the process one.
    EXPECT_EQ(scope.local().counter(c).value(), 5u);
    EXPECT_EQ(process_registry().counter(c).value(), before);
  });
  t.join();
  // After the scope ends the rank's counts fold into the process registry.
  EXPECT_EQ(process_registry().counter(c).value(), before + 5);
}

TEST(Metrics, TextAndJsonRenderings) {
  const MetricId c = counter_id("test.m.render");
  Registry reg;
  reg.counter(c).add(9);
  reg.histogram(histogram_id("test.m.render_h")).observe(512);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string text = metrics_to_text(snap);
  EXPECT_NE(text.find("test.m.render"), std::string::npos);
  EXPECT_NE(text.find('9'), std::string::npos);

  JsonWriter w;
  metrics_to_json(snap, w);
  EXPECT_TRUE(json_validate(w.str()));
  EXPECT_NE(w.str().find("\"test.m.render\":9"), std::string::npos);
}

}  // namespace
}  // namespace drx::obs
