#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/drxmp.hpp"
#include "io/config.hpp"
#include "obs/json.hpp"
#include "simpi/runtime.hpp"

namespace drx::obs {
namespace {

/// RAII: enable tracing to a temp file, restore the prior state after.
class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "drx_trace_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".json";
    clear_trace();
    set_trace_path(path_);
  }
  void TearDown() override {
    set_trace_path("");
    clear_trace();
    std::remove(path_.c_str());
  }

  [[nodiscard]] std::string read_back() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::string path_;
};

TEST(Trace, DisabledByDefaultAndSpansAreFree) {
  ASSERT_TRUE(trace_path().empty())
      << "DRX_TRACE must not be set in the test environment";
  EXPECT_FALSE(trace_enabled());
  const std::size_t before = trace_event_count();
  { ScopedSpan span("test.noop", "test", 128); }
  EXPECT_EQ(trace_event_count(), before);
}

TEST_F(TraceFixture, RecordsSpansAndWritesValidJson) {
  EXPECT_TRUE(trace_enabled());
  { ScopedSpan span("test.outer", "test"); }
  { ScopedSpan span("test.sized", "test", 4096); }
  EXPECT_EQ(trace_event_count(), 2u);
  ASSERT_TRUE(flush_trace().is_ok());

  const std::string text = read_back();
  EXPECT_TRUE(json_validate(text)) << text.substr(0, 400);
  EXPECT_NE(text.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"test.sized\""), std::string::npos);
  EXPECT_NE(text.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  // Host-thread spans belong to pseudo-pid 0.
  EXPECT_NE(text.find("\"pid\":0"), std::string::npos);
}

TEST_F(TraceFixture, CollectiveTransferSpansAllFourLayers) {
  constexpr int kRanks = 4;
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  cfg.stripe_size = 256;
  pfs::Pfs fs(cfg);
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kDouble;
    auto fr = core::DrxMpFile::create(comm, fs, "traced", core::Shape{16, 16},
                                      core::Shape{4, 4}, opts);
    ASSERT_TRUE(fr.is_ok());
    core::DrxMpFile file = std::move(fr).value();
    const core::Distribution dist = file.block_distribution();
    const core::Box zone = file.zone_element_box(dist, comm.rank());
    std::vector<std::byte> buf(static_cast<std::size_t>(
        file.zone_buffer_bytes(dist, comm.rank())));
    ASSERT_TRUE(file
                    .write_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                   /*collective=*/true)
                    .is_ok());
    ASSERT_TRUE(file
                    .read_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                  /*collective=*/true)
                    .is_ok());
    (void)zone;
    ASSERT_TRUE(file.close().is_ok());
  });
  ASSERT_TRUE(flush_trace().is_ok());

  const std::string text = read_back();
  ASSERT_TRUE(json_validate(text));
  // One span from each instrumented layer of the stack.
  EXPECT_NE(text.find("\"core.write_chunks\""), std::string::npos);
  EXPECT_NE(text.find("\"mpio.collective_write\""), std::string::npos);
  EXPECT_NE(text.find("\"mpio.coll.exchange\""), std::string::npos);
  EXPECT_NE(text.find("\"mpio.coll.io\""), std::string::npos);
  EXPECT_NE(text.find("\"simpi.alltoallv\""), std::string::npos);
  EXPECT_NE(text.find("\"pfs.write\""), std::string::npos);
  // Every rank renders as its own pseudo-process (pid = rank + 1), each
  // announced by a process_name metadata record.
  for (int r = 0; r < kRanks; ++r) {
    const std::string pid = "\"pid\":" + std::to_string(r + 1);
    EXPECT_NE(text.find(pid), std::string::npos) << "missing rank " << r;
  }
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"rank 0\""), std::string::npos);
}

// Acceptance: a traced multi-rank zone read through the async engine
// emits flow events causally linking the submitting op to the pool job
// and on to the PFS requests it issues (docs/OBSERVABILITY.md).
TEST_F(TraceFixture, AsyncZoneReadEmitsCausalFlowArrows) {
  constexpr int kRanks = 4;
  io::set_io_threads(1);  // enable the pipelined read path + worker flows
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  cfg.stripe_size = 256;
  pfs::Pfs fs(cfg);
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kDouble;
    auto fr = core::DrxMpFile::create(comm, fs, "flows", core::Shape{16, 16},
                                      core::Shape{4, 4}, opts);
    ASSERT_TRUE(fr.is_ok());
    core::DrxMpFile file = std::move(fr).value();
    const core::Distribution dist = file.block_distribution();
    std::vector<std::byte> buf(static_cast<std::size_t>(
        file.zone_buffer_bytes(dist, comm.rank())));
    ASSERT_TRUE(file
                    .write_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                   /*collective=*/true)
                    .is_ok());
    ASSERT_TRUE(file
                    .read_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                  /*collective=*/true)
                    .is_ok());
    ASSERT_TRUE(file.close().is_ok());
  });
  io::set_io_threads(-1);  // restore env-derived default for sibling tests
  ASSERT_TRUE(flush_trace().is_ok());

  const std::string text = read_back();
  ASSERT_TRUE(json_validate(text));
  auto doc = json_parse(text);
  ASSERT_TRUE(doc.is_ok());
  const JsonValue* events = doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Collect flow starts ("s") and finishes ("f"); every id must pair up,
  // every flow carries the op id of the submitting operation.
  std::vector<std::uint64_t> starts;
  std::vector<std::uint64_t> finishes;
  bool op_summary_seen = false;
  bool pool_job_seen = false;
  bool pfs_span_seen = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr) continue;
    if (ph->as_string() == "s" || ph->as_string() == "f") {
      const JsonValue* cat = e.find("cat");
      ASSERT_NE(cat, nullptr);
      EXPECT_EQ(cat->as_string(), "flow");
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->uint_at("op"), 0u)
          << "flow event without a causal op id";
      if (ph->as_string() == "s") {
        starts.push_back(e.uint_at("id"));
      } else {
        EXPECT_EQ(e.find("bp")->as_string(), "e");
        finishes.push_back(e.uint_at("id"));
      }
      continue;
    }
    if (ph->as_string() != "X") continue;
    const JsonValue* name = e.find("name");
    if (name == nullptr) continue;
    if (const JsonValue* cat = e.find("cat");
        cat != nullptr && cat->as_string() == "op") {
      op_summary_seen = true;
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->find("io_service_ns"), nullptr);
      EXPECT_NE(args->find("dominant"), nullptr);
    }
    if (name->as_string() == "io.pool.job") {
      pool_job_seen = true;
      // The job ran under the submitting op's restored context.
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->uint_at("op"), 0u);
    }
    if (name->as_string() == "pfs.read" || name->as_string() == "pfs.write") {
      pfs_span_seen = true;
    }
  }
  ASSERT_FALSE(starts.empty()) << "no flow arrows in the trace";
  std::sort(starts.begin(), starts.end());
  std::sort(finishes.begin(), finishes.end());
  EXPECT_EQ(starts, finishes) << "unpaired flow start/finish ids";
  EXPECT_TRUE(op_summary_seen) << "no op-summary event (cat \"op\")";
  EXPECT_TRUE(pool_job_seen);
  EXPECT_TRUE(pfs_span_seen);
  // The writer accounts flows and ops in its metadata record.
  const JsonValue* meta = doc.value().find("metadata");
  ASSERT_NE(meta, nullptr);
  EXPECT_GE(meta->uint_at("flows"), starts.size());
  EXPECT_GE(meta->uint_at("ops"), 1u);
}

TEST_F(TraceFixture, ClearTraceDropsBufferedEvents) {
  { ScopedSpan span("test.cleared", "test"); }
  EXPECT_GE(trace_event_count(), 1u);
  clear_trace();
  EXPECT_EQ(trace_event_count(), 0u);
}

}  // namespace
}  // namespace drx::obs
