// Embedded metrics exporter (obs/exporter.hpp): Prometheus exposition
// rendering, scrape providers, the live HTTP listener, and the edge cases
// the telemetry plane must survive — concurrent scrape vs. reset, scrapes
// racing a DrxMpFile::close aggregation, malformed requests, and a port
// already in use.
#include "obs/exporter.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/drxmp.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "pfs/pfs.hpp"
#include "simpi/runtime.hpp"

namespace drx::obs {
namespace {

/// Serial HTTP tests share the process-wide exporter; each test starts
/// and stops its own listener on an ephemeral port.
class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stop_exporter();
    window_clear();
  }
  void TearDown() override {
    stop_exporter();
    window_clear();
  }
};

TEST(ExporterRender, PrometheusCountersAndTypes) {
  const MetricId c = counter_id("test.exp.requests");
  process_registry().counter(c).add(42);
  const std::string body = render_prometheus();
  EXPECT_NE(body.find("# TYPE drx_test_exp_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("drx_test_exp_requests_total 42"), std::string::npos);
}

TEST(ExporterRender, ShardIndexBecomesALabel) {
  const MetricId c = counter_id("core.cache.shard.3.accesses");
  process_registry().counter(c).add(7);
  const std::string body = render_prometheus();
  EXPECT_NE(body.find("drx_core_cache_shard_accesses_total{shard=\"3\"}"),
            std::string::npos);
}

TEST(ExporterRender, WindowedHistogramHasBucketsAndWindowLabel) {
  const MetricId h = histogram_id("test.exp.lat_us");
  window_clear();
  window_record_epoch();
  process_registry().histogram(h).observe(100);
  process_registry().histogram(h).observe(5000);
  const std::string body = render_prometheus();
  EXPECT_NE(body.find("# TYPE drx_test_exp_lat_us histogram"),
            std::string::npos);
  // Cumulative le buckets from the *window* view, tagged with the horizon.
  EXPECT_NE(body.find("drx_test_exp_lat_us_bucket{"), std::string::npos);
  EXPECT_NE(body.find("window=\""), std::string::npos);
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(body.find("drx_test_exp_lat_us_count{"), std::string::npos);
  EXPECT_NE(body.find("drx_test_exp_lat_us_sum{"), std::string::npos);
  window_clear();
}

TEST(ExporterRender, ProviderGaugesAppearAndUnregisterRemoves) {
  const int handle = register_scrape_provider(
      [](std::vector<ScrapeGauge>& out) {
        out.push_back(ScrapeGauge{
            "test.exp.gauge", {{"array", "a"}, {"session", "0"}}, 2.5});
      });
  const std::string body = render_prometheus();
  EXPECT_NE(
      body.find("drx_test_exp_gauge{array=\"a\",session=\"0\"} 2.5"),
      std::string::npos);
  unregister_scrape_provider(handle);
  const std::string after = render_prometheus();
  EXPECT_EQ(after.find("drx_test_exp_gauge"), std::string::npos);
}

TEST(ExporterRender, ProviderGaugeCapDropsAndCounts) {
  const int handle = register_scrape_provider(
      [](std::vector<ScrapeGauge>& out) {
        for (std::size_t i = 0; i < kMaxProviderGauges + 10; ++i) {
          out.push_back(ScrapeGauge{"test.exp.flood", {}, 1.0});
        }
      });
  const std::uint64_t before =
      live_snapshot().counter("obs.exporter.gauges_dropped");
  const std::string body = render_prometheus();
  std::size_t occurrences = 0;
  for (std::size_t pos = body.find("drx_test_exp_flood");
       pos != std::string::npos;
       pos = body.find("drx_test_exp_flood", pos + 1)) {
    ++occurrences;
  }
  // name appears once per emitted gauge plus TYPE/label housekeeping
  // lines; the cap bounds it well under the flood size.
  EXPECT_LE(occurrences, kMaxProviderGauges + 2);
  const std::uint64_t after =
      live_snapshot().counter("obs.exporter.gauges_dropped");
  EXPECT_GE(after - before, 10u);
  unregister_scrape_provider(handle);
}

TEST(ExporterRender, LiveJsonIsValidAndTagged) {
  const int handle = register_scrape_provider(
      [](std::vector<ScrapeGauge>& out) {
        out.push_back(ScrapeGauge{"test.exp.live", {{"array", "x"}}, 1.0});
      });
  const std::string body = render_live_json();
  ASSERT_TRUE(json_validate(body));
  auto doc = json_parse(body);
  ASSERT_TRUE(doc.is_ok());
  const JsonValue* fmt = doc.value().find("format");
  ASSERT_NE(fmt, nullptr);
  EXPECT_EQ(fmt->as_string(), "drx-live");
  EXPECT_NE(doc.value().find("metrics"), nullptr);
  EXPECT_NE(doc.value().find("gauges"), nullptr);
  unregister_scrape_provider(handle);
}

// ---- live listener --------------------------------------------------------

TEST_F(ExporterTest, ServesAllEndpointsOnEphemeralPort) {
  auto port = start_exporter(0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  ASSERT_NE(port.value(), 0);
  EXPECT_EQ(exporter_port(), port.value());

  const MetricId c = counter_id("test.exp.http.counter");
  process_registry().counter(c).add(9);

  auto metrics = http_get("127.0.0.1", port.value(), "/metrics");
  ASSERT_TRUE(metrics.is_ok()) << metrics.status().to_string();
  EXPECT_NE(metrics.value().find("drx_test_exp_http_counter_total"),
            std::string::npos);

  auto live = http_get("127.0.0.1", port.value(), "/json");
  ASSERT_TRUE(live.is_ok());
  EXPECT_TRUE(json_validate(live.value()));

  auto window = http_get("127.0.0.1", port.value(), "/window.json");
  ASSERT_TRUE(window.is_ok());
  ASSERT_TRUE(json_validate(window.value()));
  auto doc = json_parse(window.value());
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("format")->as_string(), "drx-window");

  auto bin = http_get("127.0.0.1", port.value(), "/snapshot.bin");
  ASSERT_TRUE(bin.is_ok());
  auto snap = MetricsSnapshot::deserialize(std::span(
      reinterpret_cast<const std::byte*>(bin.value().data()),
      bin.value().size()));
  ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();
  EXPECT_GE(snap.value().counter("test.exp.http.counter"), 9u);

  auto missing = http_get("127.0.0.1", port.value(), "/nope");
  EXPECT_FALSE(missing.is_ok());  // 404 surfaces as a non-200 error
}

TEST_F(ExporterTest, SecondStartFailsWhileRunning) {
  auto port = start_exporter(0);
  ASSERT_TRUE(port.is_ok());
  auto again = start_exporter(0);
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(ExporterTest, PortInUseFailsWithoutTakingProcessDown) {
  // Pre-bind a loopback socket; the exporter must report kIoError (the
  // DRX_METRICS_PORT init path logs this and stays disabled).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t taken = ntohs(addr.sin_port);

  auto result = start_exporter(taken);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(exporter_port(), 0);
  ::close(fd);
}

TEST_F(ExporterTest, MalformedRequestGetsA400) {
  auto port = start_exporter(0);
  ASSERT_TRUE(port.is_ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port.value());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char raw[] = "NOT-HTTP\r\n\r\n";
  ASSERT_GT(::send(fd, raw, sizeof(raw) - 1, 0), 0);
  char buf[256];
  std::string response;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
    if (response.find("\r\n") != std::string::npos) break;
  }
  ::close(fd);
  EXPECT_NE(response.find("400"), std::string::npos);
  // The listener survives a bad request.
  auto metrics = http_get("127.0.0.1", port.value(), "/metrics");
  EXPECT_TRUE(metrics.is_ok());
}

TEST_F(ExporterTest, NonGetMethodGetsA405) {
  auto port = start_exporter(0);
  ASSERT_TRUE(port.is_ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port.value());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char raw[] = "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, raw, sizeof(raw) - 1, 0), 0);
  char buf[256];
  std::string response;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
    if (response.find("\r\n") != std::string::npos) break;
  }
  ::close(fd);
  EXPECT_NE(response.find("405"), std::string::npos);
}

// ---- edge cases: scrapes racing mutation ----------------------------------

TEST_F(ExporterTest, ConcurrentScrapeVsResetNeverTearsOrCrashes) {
  auto port = start_exporter(0);
  ASSERT_TRUE(port.is_ok());
  const MetricId c = counter_id("test.exp.race.counter");
  const MetricId h = histogram_id("test.exp.race.lat_us");
  // Materialize both slots before the race starts: interning a name does
  // not create a registry slot, so a scrape that wins the first scheduling
  // slice against the mutator would otherwise see an empty registry and an
  // empty (well-formed, but family-less) exposition. reset() zeroes values
  // in place and slots never revert to null, so after this every scrape
  // carries at least the counter family.
  process_registry().counter(c).add(3);
  process_registry().histogram(h).observe(128);
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      process_registry().counter(c).add(3);
      process_registry().histogram(h).observe(128);
      process_registry().reset();
      window_record_epoch();
    }
  });
  int scrapes_ok = 0;
  for (int i = 0; i < 25; ++i) {
    auto body = http_get("127.0.0.1", port.value(), "/metrics");
    if (body.is_ok()) {
      ++scrapes_ok;
      // A scrape observed mid-reset must still be a complete, parseable
      // exposition, never a torn buffer.
      EXPECT_NE(body.value().find("# TYPE"), std::string::npos);
    }
    auto window = http_get("127.0.0.1", port.value(), "/window.json");
    if (window.is_ok()) {
      EXPECT_TRUE(json_validate(window.value()));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  EXPECT_GT(scrapes_ok, 0);
}

TEST_F(ExporterTest, ScrapeDuringMpFileCloseAggregation) {
  // DrxMpFile::close folds rank registries into the process registry;
  // scrapes hammering the exporter meanwhile must always see a coherent
  // snapshot (the registry's lock discipline, not luck).
  auto port = start_exporter(0);
  ASSERT_TRUE(port.is_ok());
  std::atomic<bool> stop{false};
  std::atomic<int> ok{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto body = http_get("127.0.0.1", port.value(), "/metrics");
      if (body.is_ok()) ok.fetch_add(1, std::memory_order_relaxed);
      auto bin = http_get("127.0.0.1", port.value(), "/snapshot.bin");
      if (bin.is_ok()) {
        auto snap = MetricsSnapshot::deserialize(std::span(
            reinterpret_cast<const std::byte*>(bin.value().data()),
            bin.value().size()));
        EXPECT_TRUE(snap.is_ok());
      }
    }
  });

  constexpr int kRanks = 4;
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kInt32;
    auto fr = core::DrxMpFile::create(comm, fs, "scrape_close",
                                      core::Shape{20, 8}, core::Shape{4, 4},
                                      opts);
    ASSERT_TRUE(fr.is_ok()) << fr.status().to_string();
    core::DrxMpFile file = std::move(fr).value();
    const core::Distribution dist = file.block_distribution();
    std::vector<std::byte> buf(static_cast<std::size_t>(
        file.zone_buffer_bytes(dist, comm.rank())));
    ASSERT_TRUE(file
                    .write_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                   /*collective=*/true)
                    .is_ok());
    ASSERT_TRUE(file.close().is_ok());
  });

  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GT(ok.load(), 0);
}

}  // namespace
}  // namespace drx::obs
