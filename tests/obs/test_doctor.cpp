// End-to-end doctor acceptance test: a 4-rank run with a hot region under
// a BLOCK zone split must be flagged as rank-imbalanced (with the
// BLOCK_CYCLIC suggestion), the same workload under BLOCK_CYCLIC must
// score materially lower, and the doctor JSON report must validate.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/drxmp.hpp"
#include "core/zone.hpp"
#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "pfs/pfs.hpp"
#include "simpi/runtime.hpp"

namespace drx::obs {
namespace {

using analysis::Finding;
using analysis::Severity;

constexpr int kRanks = 4;

const Finding* find_by_id(const std::vector<Finding>& fs,
                          std::string_view id) {
  for (const Finding& f : fs) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

/// Runs a 4-rank job against a fresh array (elements {64,16}, chunks
/// {8,8} -> an 8x2 chunk grid) where only the "hot" half of the grid
/// (chunk rows 0..3) is written: each rank writes the hot chunks that
/// `dist` assigns to it. Returns the access-profile heatmap of the run.
ProfileSnapshot run_hot_half_workload(const std::string& name,
                                      const core::Distribution& dist) {
  clear_profile();
  pfs::PfsConfig cfg;
  pfs::Pfs fs(cfg);
  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kInt32;
    auto fr = core::DrxMpFile::create(comm, fs, name, core::Shape{64, 16},
                                      core::Shape{8, 8}, opts);
    ASSERT_TRUE(fr.is_ok());
    core::DrxMpFile file = std::move(fr).value();

    std::vector<core::Index> mine;
    for (const core::Index& chunk : dist.chunks_of(comm.rank())) {
      if (chunk[0] < 4) mine.push_back(chunk);  // hot half only
    }
    std::vector<std::byte> staging(
        mine.size() * static_cast<std::size_t>(file.chunk_bytes()));
    ASSERT_TRUE(
        file.write_chunks(mine, staging, /*collective=*/true).is_ok());
    ASSERT_TRUE(file.close().is_ok());
  });
  ProfileSnapshot snap = profile_snapshot();
  clear_profile();
  return snap;
}

class DoctorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "drx_doctor_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".json";
    clear_profile();
    set_profile_path(path_);
  }
  void TearDown() override {
    set_profile_path("");
    clear_profile();
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(DoctorFixture, BlockSplitOfHotRegionIsFlaggedCyclicIsNot) {
  const core::Shape grid{8, 2};
  const core::Distribution block = core::Distribution::block(grid, kRanks);
  const core::Distribution cyclic =
      core::Distribution::block_cyclic(grid, kRanks, core::Shape{1, 1});

  const ProfileSnapshot block_snap =
      run_hot_half_workload("skew_block", block);
  const ProfileSnapshot cyclic_snap =
      run_hot_half_workload("skew_cyclic", cyclic);

  // BLOCK over a 2x2 process grid puts all 8 hot chunks on the two
  // coord0==0 ranks: 2 of 4 ranks carry everything -> ratio 2.0.
  const analysis::ImbalanceStat bs =
      analysis::rank_chunk_imbalance(block_snap);
  EXPECT_EQ(bs.n, 4u);
  EXPECT_NEAR(bs.ratio, 2.0, 1e-9);

  // BLOCK_CYCLIC(1,1) deals the hot rows across all 4 ranks evenly.
  const analysis::ImbalanceStat cs =
      analysis::rank_chunk_imbalance(cyclic_snap);
  EXPECT_EQ(cs.n, 4u);
  EXPECT_NEAR(cs.ratio, 1.0, 1e-9);

  // The detector flags BLOCK (warn + remediation hint)...
  std::vector<Finding> block_fs;
  analysis::analyze_profile(block_snap, block_fs);
  const Finding* flagged = find_by_id(block_fs, "rank-imbalance");
  ASSERT_NE(flagged, nullptr);
  EXPECT_EQ(flagged->severity, Severity::kWarn);
  EXPECT_NEAR(flagged->score, 2.0, 1e-9);
  EXPECT_NE(flagged->message.find("BLOCK_CYCLIC"), std::string::npos);

  // ...and reports BLOCK_CYCLIC as balanced, materially lower.
  std::vector<Finding> cyclic_fs;
  analysis::analyze_profile(cyclic_snap, cyclic_fs);
  const Finding* balanced = find_by_id(cyclic_fs, "rank-imbalance");
  ASSERT_NE(balanced, nullptr);
  EXPECT_EQ(balanced->severity, Severity::kInfo);
  EXPECT_GT(flagged->score, balanced->score + 0.5);

  // The doctor report over the skewed run is strict JSON and carries the
  // finding with its score.
  analysis::Report report;
  report.findings = block_fs;
  JsonWriter w;
  analysis::report_to_json(report, w);
  ASSERT_TRUE(json_validate(w.str())) << w.str();
  auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("format")->as_string(), "drx-doctor");
  EXPECT_EQ(doc.value().uint_at("errors"), 0u);
  EXPECT_GE(doc.value().uint_at("warnings"), 1u);
  const JsonValue* findings = doc.value().find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  bool saw_imbalance = false;
  for (const JsonValue& f : findings->array) {
    if (f.find("id") != nullptr &&
        f.find("id")->as_string() == "rank-imbalance") {
      saw_imbalance = true;
      EXPECT_NEAR(f.number_at("score"), 2.0, 1e-9);
      EXPECT_EQ(f.find("severity")->as_string(), "warn");
    }
  }
  EXPECT_TRUE(saw_imbalance);
}

TEST_F(DoctorFixture, ProfileRoundTripPreservesDetectorVerdict) {
  // The profile written by DRX_PROFILE and re-read by drx_doctor must
  // produce the same imbalance verdict as the in-memory snapshot.
  const core::Shape grid{8, 2};
  const core::Distribution block = core::Distribution::block(grid, kRanks);
  const ProfileSnapshot snap = run_hot_half_workload("skew_rt", block);

  JsonWriter w;
  profile_to_json(snap, w);
  auto reread = profile_from_json(w.str());
  ASSERT_TRUE(reread.is_ok()) << reread.status().to_string();
  const analysis::ImbalanceStat a = analysis::rank_chunk_imbalance(snap);
  const analysis::ImbalanceStat b =
      analysis::rank_chunk_imbalance(reread.value());
  EXPECT_EQ(a.n, b.n);
  EXPECT_DOUBLE_EQ(a.ratio, b.ratio);
  EXPECT_EQ(a.argmax, b.argmax);
}

}  // namespace
}  // namespace drx::obs
