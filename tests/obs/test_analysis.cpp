// Detector unit tests (obs/analysis.hpp) on synthetic inputs: imbalance
// math, profile/metrics/trace/series detectors, and report rendering.
#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace drx::obs::analysis {
namespace {

const Finding* find_by_id(const std::vector<Finding>& fs,
                          std::string_view id) {
  for (const Finding& f : fs) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

TEST(Imbalance, MathAndArgmax) {
  const double flat[] = {10.0, 10.0, 10.0, 10.0};
  ImbalanceStat s = imbalance(flat);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);

  const double skewed[] = {10.0, 10.0, 60.0, 0.0};
  const int ids[] = {5, 6, 7, 8};
  s = imbalance(skewed, ids);
  EXPECT_DOUBLE_EQ(s.max, 60.0);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.ratio, 3.0);
  EXPECT_EQ(s.argmax, 7);  // named by ids, not by index

  EXPECT_EQ(imbalance({}).n, 0u);
  const double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance(zeros).ratio, 1.0);  // no load = balanced
}

ProfileSnapshot skewed_profile() {
  // Rank 0 moves 4x the chunk bytes of each of ranks 1..3; host rank -1
  // must be excluded from the reduction.
  ProfileSnapshot p;
  p.chunk.push_back(ChunkCell{0, 0, 4, 0, 0, 4000});
  p.chunk.push_back(ChunkCell{0, 1, 4, 0, 0, 4000});
  p.chunk.push_back(ChunkCell{1, 2, 1, 0, 0, 2000});
  p.chunk.push_back(ChunkCell{2, 3, 1, 0, 0, 2000});
  p.chunk.push_back(ChunkCell{3, 4, 1, 0, 0, 2000});
  p.chunk.push_back(ChunkCell{-1, 5, 9, 9, 9, 999999});
  p.pfs.push_back(PfsCell{0, 0, 10, 0, 9000});
  p.pfs.push_back(PfsCell{1, 1, 10, 0, 1000});
  p.pfs.push_back(PfsCell{2, 1, 10, 0, 1000});
  p.pfs.push_back(PfsCell{3, 0, 10, 0, 1000});
  p.aggregator.push_back(AggCell{0, 4, 8000});
  p.aggregator.push_back(AggCell{1, 4, 1000});
  return p;
}

TEST(ProfileDetectors, RankChunkImbalanceExcludesHost) {
  const ImbalanceStat s = rank_chunk_imbalance(skewed_profile());
  EXPECT_EQ(s.n, 4u);  // ranks 0..3; the -1 host cell is ignored
  EXPECT_EQ(s.argmax, 0);
  EXPECT_DOUBLE_EQ(s.max, 8000.0);
  EXPECT_DOUBLE_EQ(s.mean, 3500.0);
  EXPECT_NEAR(s.ratio, 8000.0 / 3500.0, 1e-12);
}

TEST(ProfileDetectors, AnalyzeProfileFlagsSkewAndSuggestsCyclic) {
  std::vector<Finding> fs;
  analyze_profile(skewed_profile(), fs);

  const Finding* rank = find_by_id(fs, "rank-imbalance");
  ASSERT_NE(rank, nullptr);
  EXPECT_EQ(rank->severity, Severity::kWarn);  // 2.29x is >= kWarnRatio
  EXPECT_NE(rank->message.find("rank 0"), std::string::npos);
  EXPECT_NE(rank->message.find("BLOCK_CYCLIC"), std::string::npos);

  const Finding* pfs_rank = find_by_id(fs, "pfs-rank-imbalance");
  ASSERT_NE(pfs_rank, nullptr);
  EXPECT_EQ(pfs_rank->severity, Severity::kWarn);  // 9000 vs mean 3000 = 3.0x
  EXPECT_NEAR(pfs_rank->score, 3.0, 1e-12);

  const Finding* server = find_by_id(fs, "pfs-hot-server");
  ASSERT_NE(server, nullptr);  // server 0: 10000 vs server 1: 2000
  EXPECT_EQ(server->severity, Severity::kWarn);

  const Finding* agg = find_by_id(fs, "aggregator-skew");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->severity, Severity::kWarn);
}

TEST(ProfileDetectors, BalancedProfileStaysInfo) {
  ProfileSnapshot p;
  for (int r = 0; r < 4; ++r) {
    p.chunk.push_back(ChunkCell{r, static_cast<std::uint64_t>(r), 1, 1, 0,
                                1000});
  }
  std::vector<Finding> fs;
  analyze_profile(p, fs);
  const Finding* rank = find_by_id(fs, "rank-imbalance");
  ASSERT_NE(rank, nullptr);  // still emitted, for run-to-run comparison
  EXPECT_EQ(rank->severity, Severity::kInfo);
  EXPECT_NEAR(rank->score, 1.0, 1e-12);
  EXPECT_EQ(rank->message.find("BLOCK_CYCLIC"), std::string::npos);
}

TEST(ProfileDetectors, IdleParticipantsCountAsZeroLoad) {
  // Ranks 2 and 3 participated (RankScope) but moved no chunks: the
  // imbalance must be computed over all four ranks, not the busy two.
  ProfileSnapshot p;
  p.ranks = {0, 1, 2, 3};
  p.chunk.push_back(ChunkCell{0, 0, 0, 4, 0, 1000});
  p.chunk.push_back(ChunkCell{1, 1, 0, 4, 0, 1000});
  const ImbalanceStat s = rank_chunk_imbalance(p);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 500.0);
  EXPECT_DOUBLE_EQ(s.ratio, 2.0);
}

TEST(ProfileDetectors, SingleRankEmitsNothing) {
  ProfileSnapshot p;
  p.chunk.push_back(ChunkCell{0, 0, 1, 0, 0, 100});
  std::vector<Finding> fs;
  analyze_profile(p, fs);
  EXPECT_TRUE(fs.empty());  // n < 2: imbalance is meaningless
}

MetricsSnapshot with_counter(MetricsSnapshot snap, const std::string& name,
                             std::uint64_t value) {
  snap.counters.push_back(CounterSample{name, value});
  return snap;
}

TEST(MetricsDetectors, CacheThrash) {
  MetricsSnapshot snap;
  snap = with_counter(std::move(snap), "core.cache.hits", 30);
  snap = with_counter(std::move(snap), "core.cache.misses", 70);
  snap = with_counter(std::move(snap), "core.cache.evictions", 60);
  std::vector<Finding> fs;
  analyze_metrics(snap, fs);
  const Finding* f = find_by_id(fs, "cache-thrash");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarn);
  EXPECT_NEAR(f->score, 0.7, 1e-12);  // miss rate

  // A high hit rate must not trip the detector even with evictions.
  MetricsSnapshot healthy;
  healthy = with_counter(std::move(healthy), "core.cache.hits", 95);
  healthy = with_counter(std::move(healthy), "core.cache.misses", 5);
  healthy = with_counter(std::move(healthy), "core.cache.evictions", 100);
  fs.clear();
  analyze_metrics(healthy, fs);
  EXPECT_EQ(find_by_id(fs, "cache-thrash"), nullptr);

  // Too little traffic: no verdict either way.
  MetricsSnapshot tiny;
  tiny = with_counter(std::move(tiny), "core.cache.hits", 1);
  tiny = with_counter(std::move(tiny), "core.cache.misses", 9);
  tiny = with_counter(std::move(tiny), "core.cache.evictions", 9);
  fs.clear();
  analyze_metrics(tiny, fs);
  EXPECT_EQ(find_by_id(fs, "cache-thrash"), nullptr);
}

TEST(MetricsDetectors, PrefetchWasteAndLowYield) {
  MetricsSnapshot wasteful;
  wasteful = with_counter(std::move(wasteful),
                          "core.cache.prefetch_issued", 100);
  wasteful = with_counter(std::move(wasteful),
                          "core.cache.prefetch_useful", 20);
  wasteful = with_counter(std::move(wasteful),
                          "core.cache.prefetch_wasted", 70);
  std::vector<Finding> fs;
  analyze_metrics(wasteful, fs);
  const Finding* waste = find_by_id(fs, "prefetch-waste");
  ASSERT_NE(waste, nullptr);
  EXPECT_EQ(waste->severity, Severity::kWarn);
  EXPECT_NEAR(waste->score, 0.7, 1e-12);

  MetricsSnapshot pending;
  pending = with_counter(std::move(pending),
                         "core.cache.prefetch_issued", 100);
  pending = with_counter(std::move(pending),
                         "core.cache.prefetch_useful", 20);
  pending = with_counter(std::move(pending),
                         "core.cache.prefetch_wasted", 10);
  fs.clear();
  analyze_metrics(pending, fs);
  const Finding* low = find_by_id(fs, "prefetch-low-yield");
  ASSERT_NE(low, nullptr);
  EXPECT_EQ(low->severity, Severity::kInfo);
  EXPECT_EQ(find_by_id(fs, "prefetch-waste"), nullptr);
}

TEST(MetricsDetectors, CopyElementGranular) {
  // 1.6 elements per run over a big volume: run coalescing has collapsed.
  MetricsSnapshot degraded;
  degraded = with_counter(std::move(degraded), "core.copy.elements", 8000);
  degraded = with_counter(std::move(degraded), "core.copy.runs", 5000);
  std::vector<Finding> fs;
  analyze_metrics(degraded, fs);
  const Finding* f = find_by_id(fs, "copy-element-granular");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarn);
  EXPECT_NEAR(f->score, 1.6, 1e-12);  // elements per run

  // Healthy coalescing (many elements per memcpy run): no finding.
  MetricsSnapshot healthy;
  healthy = with_counter(std::move(healthy), "core.copy.elements", 8000);
  healthy = with_counter(std::move(healthy), "core.copy.runs", 100);
  fs.clear();
  analyze_metrics(healthy, fs);
  EXPECT_EQ(find_by_id(fs, "copy-element-granular"), nullptr);

  // Tiny volumes (single-element pokes) never trip the detector.
  MetricsSnapshot tiny;
  tiny = with_counter(std::move(tiny), "core.copy.elements", 64);
  tiny = with_counter(std::move(tiny), "core.copy.runs", 64);
  fs.clear();
  analyze_metrics(tiny, fs);
  EXPECT_EQ(find_by_id(fs, "copy-element-granular"), nullptr);
}

TEST(MetricsDetectors, DroppedTracesAreAnError) {
  MetricsSnapshot snap;
  snap = with_counter(std::move(snap), "obs.trace.dropped", 12);
  std::vector<Finding> fs;
  analyze_metrics(snap, fs);
  const Finding* f = find_by_id(fs, "trace-dropped");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_DOUBLE_EQ(f->score, 12.0);
}

TEST(MetricsFromJson, RebuildsCountersAndHistograms) {
  auto doc = json_parse(
      "{\"counters\":{\"a\":5,\"b\":7},"
      "\"histograms\":{\"h\":{\"count\":2,\"sum\":10,"
      "\"buckets\":[0,1,1]}}}");
  ASSERT_TRUE(doc.is_ok());
  const MetricsSnapshot snap = metrics_from_json(doc.value());
  EXPECT_EQ(snap.counter("a"), 5u);
  EXPECT_EQ(snap.counter("b"), 7u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_EQ(snap.histograms[0].sum, 10u);
  EXPECT_EQ(snap.histograms[0].buckets[1], 1u);
  EXPECT_EQ(snap.histograms[0].buckets[2], 1u);
}

// A two-rank trace: rank 0 (pid 1) has a 100us span containing a nested
// 60us span (busy must be 100, not 160) plus a disjoint 20us span; rank 1
// (pid 2) has a single 40us span. Host (pid 0) spans are ignored for the
// per-rank table.
constexpr const char* kTrace =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
    "{\"name\":\"outer\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
    "\"ts\":0,\"dur\":100},\n"
    "{\"name\":\"inner\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
    "\"ts\":20,\"dur\":60},\n"
    "{\"name\":\"tail\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
    "\"ts\":150,\"dur\":20},\n"
    "{\"name\":\"short\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":2,\"tid\":1,"
    "\"ts\":0,\"dur\":40},\n"
    "{\"name\":\"host\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":0,\"tid\":1,"
    "\"ts\":0,\"dur\":1000}\n"
    "],\"metadata\":{\"events\":5,\"dropped\":0}}";

TEST(TraceAnalysis, NestedSpansUnionNotSum) {
  auto doc = json_parse(kTrace);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  auto sr = summarize_trace(doc.value());
  ASSERT_TRUE(sr.is_ok()) << sr.status().to_string();
  const TraceSummary& t = sr.value();

  EXPECT_EQ(t.events, 5u);
  EXPECT_EQ(t.dropped, 0u);
  ASSERT_EQ(t.per_rank.size(), 2u);  // pid 0 (host) excluded
  EXPECT_EQ(t.per_rank[0].rank, 0);
  EXPECT_DOUBLE_EQ(t.per_rank[0].busy_us, 120.0);  // 100 union + 20 tail
  EXPECT_EQ(t.per_rank[1].rank, 1);
  EXPECT_DOUBLE_EQ(t.per_rank[1].busy_us, 40.0);
  EXPECT_DOUBLE_EQ(t.critical_path_us, 120.0);
  EXPECT_EQ(t.longest_name, "host");  // longest single span overall
  EXPECT_DOUBLE_EQ(t.longest_dur_us, 1000.0);

  std::vector<Finding> fs;
  analyze_trace(t, fs);
  const Finding* imb = find_by_id(fs, "rank-busy-imbalance");
  ASSERT_NE(imb, nullptr);
  EXPECT_NEAR(imb->score, 120.0 / 80.0, 1e-12);
  EXPECT_EQ(imb->severity, Severity::kWarn);  // 1.5x is exactly kWarnRatio
  EXPECT_NE(find_by_id(fs, "critical-path"), nullptr);
}

TEST(TraceAnalysis, DroppedEventsBecomeError) {
  auto doc = json_parse(
      "{\"traceEvents\":[],\"metadata\":{\"events\":0,\"dropped\":3}}");
  ASSERT_TRUE(doc.is_ok());
  auto sr = summarize_trace(doc.value());
  ASSERT_TRUE(sr.is_ok());
  std::vector<Finding> fs;
  analyze_trace(sr.value(), fs);
  const Finding* f = find_by_id(fs, "trace-dropped");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(TraceAnalysis, RejectsNonTraceDocuments) {
  auto doc = json_parse("{\"format\":\"drx-series\"}");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_FALSE(summarize_trace(doc.value()).is_ok());
}

std::string series_doc(const std::vector<double>& bytes) {
  std::string s = "{\"format\":\"drx-series\",\"version\":1,\"samples\":[";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) s += ",";
    s += "{\"t_us\":" + std::to_string(i * 1000) +
         ",\"counters\":{\"pfs.bytes_read\":" +
         std::to_string(static_cast<long long>(bytes[i])) + "}}";
  }
  s += "]}";
  return s;
}

TEST(SeriesAnalysis, DetectsStallWithResumption) {
  // Activity, then 4 flat samples, then resumption.
  auto doc = series_doc({0, 100, 200, 200, 200, 200, 200, 300, 400});
  auto parsed = json_parse(doc);
  ASSERT_TRUE(parsed.is_ok());
  std::vector<Finding> fs;
  analyze_series(parsed.value(), fs);
  const Finding* stall = find_by_id(fs, "io-stall");
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(stall->severity, Severity::kWarn);
  EXPECT_DOUBLE_EQ(stall->score, 4.0);
  EXPECT_NE(find_by_id(fs, "series"), nullptr);
}

TEST(SeriesAnalysis, TrailingFlatTailIsNotAStall) {
  // The run never resumes (job simply ended): no stall finding.
  auto parsed = json_parse(series_doc({0, 100, 200, 200, 200, 200, 200}));
  ASSERT_TRUE(parsed.is_ok());
  std::vector<Finding> fs;
  analyze_series(parsed.value(), fs);
  EXPECT_EQ(find_by_id(fs, "io-stall"), nullptr);
  EXPECT_NE(find_by_id(fs, "series"), nullptr);
}

TEST(Report, TextAndJsonRenderings) {
  Report r;
  r.findings.push_back(Finding{"rank-imbalance", Severity::kError, 4.5,
                               "rank 3 does 4.5x mean bytes"});
  r.findings.push_back(
      Finding{"series", Severity::kInfo, 9.0, "time series: 9 samples"});
  EXPECT_TRUE(has_errors(r));
  EXPECT_EQ(count_severity(r, Severity::kError), 1u);
  EXPECT_EQ(count_severity(r, Severity::kWarn), 0u);

  const std::string text = report_to_text(r);
  EXPECT_NE(text.find("[error]"), std::string::npos);
  EXPECT_NE(text.find("rank-imbalance"), std::string::npos);

  JsonWriter w;
  report_to_json(r, w);
  ASSERT_TRUE(json_validate(w.str())) << w.str();
  auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("format")->as_string(), "drx-doctor");
  EXPECT_EQ(doc.value().uint_at("errors"), 1u);
  ASSERT_TRUE(doc.value().find("findings")->is_array());
  EXPECT_EQ(doc.value().find("findings")->array.size(), 2u);

  EXPECT_EQ(report_to_text(Report{}),
            "drx_doctor: no findings - all clear\n");
  JsonWriter we;
  report_to_json(Report{}, we);
  EXPECT_TRUE(json_validate(we.str()));
}


// ---- causal op-stage detectors -------------------------------------------

TEST(MetricsDetectors, QueueWaitDominatedSuggestsMoreIoThreads) {
  MetricsSnapshot snap;
  snap = with_counter(std::move(snap), "obs.op.count", 100);
  snap = with_counter(std::move(snap), "obs.op.dominant.queue_wait", 80);
  snap = with_counter(std::move(snap), "obs.op.dominant.io_service", 20);
  std::vector<Finding> fs;
  analyze_metrics(snap, fs);
  const Finding* f = find_by_id(fs, "op-queue-wait-dominated");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarn);
  EXPECT_NEAR(f->score, 0.8, 1e-12);
  EXPECT_NE(f->message.find("DRX_IO_THREADS"), std::string::npos);

  // A healthy mix must not trip it.
  MetricsSnapshot healthy;
  healthy = with_counter(std::move(healthy), "obs.op.count", 100);
  healthy = with_counter(std::move(healthy),
                         "obs.op.dominant.queue_wait", 20);
  healthy = with_counter(std::move(healthy),
                         "obs.op.dominant.io_service", 80);
  fs.clear();
  analyze_metrics(healthy, fs);
  EXPECT_EQ(find_by_id(fs, "op-queue-wait-dominated"), nullptr);

  // Too few ops: no verdict.
  MetricsSnapshot tiny;
  tiny = with_counter(std::move(tiny), "obs.op.count", 10);
  tiny = with_counter(std::move(tiny), "obs.op.dominant.queue_wait", 10);
  fs.clear();
  analyze_metrics(tiny, fs);
  EXPECT_EQ(find_by_id(fs, "op-queue-wait-dominated"), nullptr);
}

TEST(MetricsDetectors, LockWaitDominatedSuggestsShardingTheCache) {
  MetricsSnapshot snap;
  snap = with_counter(std::move(snap), "obs.op.count", 64);
  snap = with_counter(std::move(snap), "obs.op.dominant.lock_wait", 40);
  snap = with_counter(std::move(snap), "obs.op.dominant.copy", 24);
  std::vector<Finding> fs;
  analyze_metrics(snap, fs);
  const Finding* f = find_by_id(fs, "op-lock-wait-dominated");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarn);
  EXPECT_NEAR(f->score, 40.0 / 64.0, 1e-12);
  EXPECT_NE(f->message.find("shard"), std::string::npos);
}

// A trace containing op-summary events (cat "op") and flow arrows, as
// write_trace emits them.
constexpr const char* kOpTrace =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
    "{\"name\":\"op.read_box\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,"
    "\"tid\":1,\"ts\":0,\"dur\":500,\"args\":{\"op\":7,"
    "\"lock_wait_ns\":1000,\"cache_fault_ns\":2000,"
    "\"queue_wait_ns\":400000,\"io_service_ns\":50000,"
    "\"copy_ns\":10000,\"other_ns\":37000,"
    "\"dominant\":\"queue_wait\"}},\n"
    "{\"name\":\"op.read_box\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":2,"
    "\"tid\":1,\"ts\":0,\"dur\":200,\"args\":{\"op\":8,"
    "\"lock_wait_ns\":0,\"cache_fault_ns\":0,"
    "\"queue_wait_ns\":0,\"io_service_ns\":150000,"
    "\"copy_ns\":20000,\"other_ns\":30000,"
    "\"dominant\":\"io_service\"}},\n"
    "{\"name\":\"drx.flow\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":1,"
    "\"pid\":1,\"tid\":1,\"ts\":5,\"args\":{\"op\":7}},\n"
    "{\"name\":\"drx.flow\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
    "\"id\":1,\"pid\":1,\"tid\":2,\"ts\":9,\"args\":{\"op\":7}}\n"
    "],\"metadata\":{\"events\":2,\"flows\":2,\"ops\":2,\"dropped\":0}}";

TEST(TraceAnalysis, OpSummariesParseIntoStageAttribution) {
  auto doc = json_parse(kOpTrace);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  auto sr = summarize_trace(doc.value());
  ASSERT_TRUE(sr.is_ok());
  const TraceSummary& t = sr.value();
  EXPECT_EQ(t.flows, 1u);  // one "s" phase
  ASSERT_EQ(t.ops.size(), 2u);
  EXPECT_EQ(t.ops[0].name, "op.read_box");
  EXPECT_EQ(t.ops[0].op, 7u);
  EXPECT_EQ(t.ops[0].rank, 0);
  EXPECT_DOUBLE_EQ(t.ops[0].dur_us, 500.0);
  EXPECT_DOUBLE_EQ(
      t.ops[0].stage_us[static_cast<std::size_t>(Stage::kQueueWait)],
      400.0);
  EXPECT_EQ(t.ops[0].dominant, "queue_wait");

  std::vector<Finding> fs;
  analyze_trace(t, fs);
  const Finding* f = find_by_id(fs, "op-critical-path");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kInfo);
  EXPECT_NE(f->message.find("op.read_box"), std::string::npos);
  EXPECT_NE(f->message.find("queue_wait"), std::string::npos);
}

// ---- flight-recorder analysis --------------------------------------------

constexpr const char* kFlight =
    "{\"format\":\"drx-flight\",\"version\":1,"
    "\"reason\":\"deferred-io-error\",\"threads\":[\n"
    "{\"tid\":1,\"records\":[\n"
    "{\"seq\":1,\"kind\":\"span\",\"name\":\"core.read_chunk\","
    "\"ts_ns\":100,\"dur_ns\":50,\"arg\":64,\"op\":9,\"parent\":0,"
    "\"rank\":0},\n"
    "{\"seq\":2,\"kind\":\"flow_out\",\"name\":\"drx.flow\","
    "\"ts_ns\":200,\"dur_ns\":0,\"arg\":1,\"op\":9,\"parent\":0,"
    "\"rank\":0}]},\n"
    "{\"tid\":2,\"records\":[\n"
    "{\"seq\":3,\"kind\":\"flow_in\",\"name\":\"drx.flow\","
    "\"ts_ns\":300,\"dur_ns\":0,\"arg\":1,\"op\":9,\"parent\":0,"
    "\"rank\":0},\n"
    "{\"seq\":4,\"kind\":\"span\",\"name\":\"io.pool.job\","
    "\"ts_ns\":310,\"dur_ns\":90,\"arg\":0,\"op\":9,\"parent\":0,"
    "\"rank\":0}]}]}";

TEST(FlightAnalysis, ReconstructsCausalChainOfLastOp) {
  auto doc = json_parse(kFlight);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  std::vector<Finding> fs;
  analyze_flight(doc.value(), fs);

  const Finding* dump = find_by_id(fs, "flight-dump");
  ASSERT_NE(dump, nullptr);
  EXPECT_EQ(dump->severity, Severity::kWarn);  // not an on-demand dump
  EXPECT_NE(dump->message.find("deferred-io-error"), std::string::npos);
  EXPECT_NEAR(dump->score, 4.0, 1e-12);  // four records

  const Finding* chain = find_by_id(fs, "flight-causal-chain");
  ASSERT_NE(chain, nullptr);
  EXPECT_NEAR(chain->score, 4.0, 1e-12);  // all records belong to op 9
  EXPECT_NE(chain->message.find("op 9"), std::string::npos);
  EXPECT_NE(chain->message.find("core.read_chunk"), std::string::npos);
  EXPECT_NE(chain->message.find("drx.flow(submit)"), std::string::npos);
  EXPECT_NE(chain->message.find("io.pool.job"), std::string::npos);
}

TEST(FlightAnalysis, BadFormatIsAnError) {
  auto doc = json_parse("{\"format\":\"something-else\"}");
  ASSERT_TRUE(doc.is_ok());
  std::vector<Finding> fs;
  analyze_flight(doc.value(), fs);
  const Finding* f = find_by_id(fs, "flight-bad-format");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(FlightAnalysis, OnDemandDumpIsInfoWithoutChainWhenNoOps) {
  auto doc = json_parse(
      "{\"format\":\"drx-flight\",\"version\":1,"
      "\"reason\":\"on-demand\",\"threads\":[{\"tid\":1,\"records\":["
      "{\"seq\":1,\"kind\":\"span\",\"name\":\"test.s\",\"ts_ns\":1,"
      "\"dur_ns\":2,\"arg\":0,\"op\":0,\"parent\":0,\"rank\":-1}]}]}");
  ASSERT_TRUE(doc.is_ok());
  std::vector<Finding> fs;
  analyze_flight(doc.value(), fs);
  const Finding* dump = find_by_id(fs, "flight-dump");
  ASSERT_NE(dump, nullptr);
  EXPECT_EQ(dump->severity, Severity::kInfo);
  EXPECT_EQ(find_by_id(fs, "flight-causal-chain"), nullptr);
}

MetricsSnapshot shard_counters(const std::vector<std::uint64_t>& accesses) {
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    snap.counters.push_back(CounterSample{
        "core.cache.shard." + std::to_string(i) + ".accesses",
        accesses[i]});
  }
  return snap;
}

TEST(MetricsDetectors, CacheShardImbalanceFlagsAHotShard) {
  // Shard 2 takes 4x the mean: error-grade skew.
  std::vector<Finding> fs;
  analyze_metrics(shard_counters({100, 100, 1400, 100, 100, 100, 100, 100}),
                  fs);
  const Finding* f = find_by_id(fs, "cache-shard-imbalance");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_NE(f->message.find("shard 2"), std::string::npos);

  // Mild skew (2x the mean) warns.
  fs.clear();
  analyze_metrics(shard_counters({500, 500, 2000, 1000}), fs);
  f = find_by_id(fs, "cache-shard-imbalance");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarn);
}

TEST(MetricsDetectors, BalancedShardsStaySilent) {
  // Balanced load must not produce a finding at all (not even info):
  // a quiet doctor is the acceptance criterion for a healthy hash.
  std::vector<Finding> fs;
  analyze_metrics(shard_counters({500, 520, 480, 510}), fs);
  EXPECT_EQ(find_by_id(fs, "cache-shard-imbalance"), nullptr);

  // A single shard (the legacy cache) is exempt regardless of volume.
  fs.clear();
  analyze_metrics(shard_counters({100000}), fs);
  EXPECT_EQ(find_by_id(fs, "cache-shard-imbalance"), nullptr);

  // Too little traffic: no verdict.
  fs.clear();
  analyze_metrics(shard_counters({10, 1, 1, 1}), fs);
  EXPECT_EQ(find_by_id(fs, "cache-shard-imbalance"), nullptr);
}

MetricsSnapshot serve_spread(std::uint64_t sessions, std::uint64_t done,
                             std::uint64_t min, std::uint64_t max) {
  MetricsSnapshot snap;
  snap.counters.push_back(CounterSample{"serve.sessions", sessions});
  snap.counters.push_back(CounterSample{"serve.requests.completed", done});
  snap.counters.push_back(
      CounterSample{"serve.session.completed_min", min});
  snap.counters.push_back(
      CounterSample{"serve.session.completed_max", max});
  return snap;
}

TEST(MetricsDetectors, SessionStarvation) {
  // A session that completed nothing while others worked: error.
  std::vector<Finding> fs;
  analyze_metrics(serve_spread(8, 700, 0, 200), fs);
  const Finding* f = find_by_id(fs, "session-starvation");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);

  // Busiest session 5x the slowest: unfair, warn.
  fs.clear();
  analyze_metrics(serve_spread(8, 700, 20, 100), fs);
  f = find_by_id(fs, "session-starvation");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarn);

  // Even spread stays silent.
  fs.clear();
  analyze_metrics(serve_spread(8, 700, 80, 100), fs);
  EXPECT_EQ(find_by_id(fs, "session-starvation"), nullptr);

  // One session or trivial traffic: no verdict.
  fs.clear();
  analyze_metrics(serve_spread(1, 700, 0, 700), fs);
  EXPECT_EQ(find_by_id(fs, "session-starvation"), nullptr);
  fs.clear();
  analyze_metrics(serve_spread(8, 10, 0, 10), fs);
  EXPECT_EQ(find_by_id(fs, "session-starvation"), nullptr);
}

}  // namespace
}  // namespace drx::obs::analysis
