#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace drx::obs {
namespace {

TEST(JsonWriter, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("drx");
  w.key("count").value(std::uint64_t{42});
  w.key("delta").value(std::int64_t{-7});
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"drx\",\"count\":42,\"delta\":-7,\"ratio\":0.5,"
            "\"ok\":true,\"none\":null}");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_array().value(1).value(2).end_array();
  w.begin_array().end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"rows\":[[1,2],[]]}");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_array();
  w.value("a\"b\\c\n\t\x01");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\\u0001\"]");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonWriter, LargeUnsignedSurvives) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<std::uint64_t>::max());
  w.end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615]");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonValidate, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_validate("null"));
  EXPECT_TRUE(json_validate("true"));
  EXPECT_TRUE(json_validate("-0.5e+10"));
  EXPECT_TRUE(json_validate("\"\\u00e9\""));
  EXPECT_TRUE(json_validate("  {\"a\": [1, 2, {\"b\": null}]}  "));
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("{\"a\":1,}"));
  EXPECT_FALSE(json_validate("[1 2]"));
  EXPECT_FALSE(json_validate("01"));
  EXPECT_FALSE(json_validate("\"unterminated"));
  EXPECT_FALSE(json_validate("\"bad\\x\""));
  EXPECT_FALSE(json_validate("nul"));
  EXPECT_FALSE(json_validate("{} trailing"));
  EXPECT_FALSE(json_validate("\"tab\there\""));
}

TEST(JsonValidate, RejectsOverlyDeepNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json_validate(deep));
  std::string fine(200, '[');
  fine += std::string(200, ']');
  EXPECT_TRUE(json_validate(fine));
}

}  // namespace
}  // namespace drx::obs
