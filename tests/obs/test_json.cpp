#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace drx::obs {
namespace {

TEST(JsonWriter, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("drx");
  w.key("count").value(std::uint64_t{42});
  w.key("delta").value(std::int64_t{-7});
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"drx\",\"count\":42,\"delta\":-7,\"ratio\":0.5,"
            "\"ok\":true,\"none\":null}");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_array().value(1).value(2).end_array();
  w.begin_array().end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"rows\":[[1,2],[]]}");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_array();
  w.value("a\"b\\c\n\t\x01");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\\u0001\"]");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonWriter, LargeUnsignedSurvives) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<std::uint64_t>::max());
  w.end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615]");
  EXPECT_TRUE(json_validate(w.str()));
}

TEST(JsonValidate, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_validate("null"));
  EXPECT_TRUE(json_validate("true"));
  EXPECT_TRUE(json_validate("-0.5e+10"));
  EXPECT_TRUE(json_validate("\"\\u00e9\""));
  EXPECT_TRUE(json_validate("  {\"a\": [1, 2, {\"b\": null}]}  "));
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("{\"a\":1,}"));
  EXPECT_FALSE(json_validate("[1 2]"));
  EXPECT_FALSE(json_validate("01"));
  EXPECT_FALSE(json_validate("\"unterminated"));
  EXPECT_FALSE(json_validate("\"bad\\x\""));
  EXPECT_FALSE(json_validate("nul"));
  EXPECT_FALSE(json_validate("{} trailing"));
  EXPECT_FALSE(json_validate("\"tab\there\""));
}

TEST(JsonValidate, RejectsOverlyDeepNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json_validate(deep));
  std::string fine(200, '[');
  fine += std::string(200, ']');
  EXPECT_TRUE(json_validate(fine));
}

// json_parse error paths: every rejection must come back as a kCorrupt
// Status with a byte offset, never a crash or a half-built value.

TEST(JsonParse, TruncatedInputReportsCorrupt) {
  for (const char* doc : {"{\"a\": [1, 2", "[1, 2,", "{\"a\":", "\"unterm",
                          "\"esc\\", "\"\\u00", "tru", "-"}) {
    auto parsed = json_parse(doc);
    ASSERT_FALSE(parsed.is_ok()) << "accepted truncated doc: " << doc;
    EXPECT_EQ(parsed.status().code(), ErrorCode::kCorrupt) << doc;
    EXPECT_NE(parsed.status().to_string().find("byte"), std::string::npos)
        << "error should carry a byte offset: "
        << parsed.status().to_string();
  }
}

TEST(JsonParse, TrailingGarbageReportsCorrupt) {
  auto parsed = json_parse("{\"a\": 1} extra");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kCorrupt);
  EXPECT_NE(parsed.status().to_string().find("trailing"), std::string::npos);
}

TEST(JsonParse, BadSurrogatePairsRejected) {
  // Unpaired high surrogate, high followed by a non-surrogate escape,
  // bare low surrogate, and a low surrogate out of range.
  for (const char* doc : {"\"\\ud834\"", "\"\\ud834\\u0041\"",
                          "\"\\udd1e\"", "\"\\ud834\\ue000\""}) {
    auto parsed = json_parse(doc);
    EXPECT_FALSE(parsed.is_ok()) << "accepted bad surrogate doc: " << doc;
  }
}

TEST(JsonParse, ValidSurrogatePairDecodesToUtf8) {
  auto parsed = json_parse("\"\\ud834\\udd1e\"");  // U+1D11E, musical G clef
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_TRUE(parsed.value().is_string());
  EXPECT_EQ(parsed.value().as_string(), "\xF0\x9D\x84\x9E");
}

TEST(JsonParse, DeepNestingRejectedAtLimitNotCrash) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  auto rejected = json_parse(deep);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kCorrupt);

  std::string fine(200, '[');
  fine += "1";
  fine += std::string(200, ']');
  auto parsed = json_parse(fine);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const JsonValue* v = &parsed.value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(v->is_array());
    ASSERT_EQ(v->array.size(), 1u);
    v = &v->array[0];
  }
  EXPECT_EQ(v->as_number(), 1.0);
}

}  // namespace
}  // namespace drx::obs
