// Time-series sampler (obs/sampler.hpp): SampleRing wraparound, the
// background thread lifecycle, manual sampling, and the "drx-series" JSON
// dump.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace drx::obs {
namespace {

Sample make_sample(std::uint64_t t) {
  Sample s;
  s.t_us = t;
  return s;
}

TEST(SampleRing, FillsThenWrapsOldestFirst) {
  SampleRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.ordered().empty());

  ring.push(make_sample(10));
  ring.push(make_sample(20));
  EXPECT_EQ(ring.size(), 2u);
  auto partial = ring.ordered();
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_EQ(partial[0].t_us, 10u);
  EXPECT_EQ(partial[1].t_us, 20u);

  for (std::uint64_t t = 30; t <= 100; t += 10) ring.push(make_sample(t));
  EXPECT_EQ(ring.size(), 4u);          // capped at capacity
  EXPECT_EQ(ring.total_pushed(), 10u);  // but every push was counted

  // After 10 pushes into 4 slots, the survivors are the last 4,
  // oldest-first.
  auto wrapped = ring.ordered();
  ASSERT_EQ(wrapped.size(), 4u);
  EXPECT_EQ(wrapped[0].t_us, 70u);
  EXPECT_EQ(wrapped[1].t_us, 80u);
  EXPECT_EQ(wrapped[2].t_us, 90u);
  EXPECT_EQ(wrapped[3].t_us, 100u);
}

TEST(Sampler, ManualSamplesCaptureLiveCounters) {
  stop_sampler();  // a DRX_STATS_INTERVAL-started thread would add samples
  clear_sampler_series();
  static const MetricId kSamplerTest = counter_id("test.sampler.manual");
  registry().counter(kSamplerTest).add(7);

  sampler_sample_now();
  registry().counter(kSamplerTest).add(3);
  sampler_sample_now();

  auto series = sampler_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_LE(series[0].t_us, series[1].t_us);
  EXPECT_GE(series[0].metrics.counter("test.sampler.manual"), 7u);
  EXPECT_EQ(series[1].metrics.counter("test.sampler.manual"),
            series[0].metrics.counter("test.sampler.manual") + 3);
  clear_sampler_series();
}

TEST(Sampler, ThreadStartsSamplesAndStops) {
  stop_sampler();  // a DRX_STATS_INTERVAL-started thread may be running
  clear_sampler_series();
  ASSERT_FALSE(sampler_running());
  start_sampler(/*interval_ms=*/1, /*capacity=*/64);
  EXPECT_TRUE(sampler_running());

  // The thread samples once immediately, then every interval; give it a
  // few periods and require at least one sample (scheduler-agnostic).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler_series().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(sampler_series().empty());

  stop_sampler();
  EXPECT_FALSE(sampler_running());
  stop_sampler();  // idempotent

  // Series survives the stop.
  EXPECT_FALSE(sampler_series().empty());
  auto series = sampler_series();
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].t_us, series[i].t_us);
  }
  clear_sampler_series();
}

TEST(Sampler, RestartReplacesRing) {
  clear_sampler_series();
  start_sampler(/*interval_ms=*/1, /*capacity=*/2);
  start_sampler(/*interval_ms=*/1, /*capacity=*/8);  // restart, new capacity
  EXPECT_TRUE(sampler_running());
  stop_sampler();
  clear_sampler_series();
}

TEST(Sampler, SeriesJsonValidatesAndRoundsTrips) {
  stop_sampler();
  clear_sampler_series();
  static const MetricId kBytes = counter_id("test.sampler.bytes");
  registry().counter(kBytes).add(100);
  sampler_sample_now();
  registry().counter(kBytes).add(50);
  sampler_sample_now();

  JsonWriter w;
  series_to_json(sampler_series(), w);
  const std::string text = w.str();
  ASSERT_TRUE(json_validate(text)) << text;

  auto doc = json_parse(text);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const JsonValue* format = doc.value().find("format");
  ASSERT_NE(format, nullptr);
  EXPECT_EQ(format->as_string(), "drx-series");
  const JsonValue* samples = doc.value().find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  ASSERT_EQ(samples->array.size(), 2u);
  const JsonValue* counters = samples->array[1].find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->uint_at("test.sampler.bytes"), 150u);
  clear_sampler_series();
}

TEST(Sampler, EmptySeriesStillValidJson) {
  clear_sampler_series();
  JsonWriter w;
  series_to_json({}, w);
  EXPECT_TRUE(json_validate(w.str())) << w.str();
}

}  // namespace
}  // namespace drx::obs
