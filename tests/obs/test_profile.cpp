// Access-profile recorder (obs/profile.hpp): enable/disable gating, cell
// accounting, JSON round-trips, and per-rank heatmap attribution under
// multi-rank simpi runs.
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/drxmp.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simpi/runtime.hpp"

namespace drx::obs {
namespace {

/// RAII: enable profiling to a temp path, restore the prior state after.
class ProfileFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "drx_profile_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".json";
    clear_profile();
    set_profile_path(path_);
  }
  void TearDown() override {
    set_profile_path("");
    clear_profile();
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST(Profile, DisabledByDefaultAndRecordsAreFree) {
  ASSERT_TRUE(profile_path().empty())
      << "DRX_PROFILE must not be set in the test environment";
  EXPECT_FALSE(profile_enabled());
  profile_chunk(ChunkOp::kRead, 7, 4096);
  profile_pfs(/*write=*/true, 1, 512);
  profile_aggregator(0, 1, 128);
  EXPECT_TRUE(profile_snapshot().empty());
}

TEST_F(ProfileFixture, AccumulatesSparseCells) {
  EXPECT_TRUE(profile_enabled());
  profile_chunk(ChunkOp::kRead, 5, 1000);
  profile_chunk(ChunkOp::kRead, 5, 1000);
  profile_chunk(ChunkOp::kWrite, 5, 500);
  profile_chunk(ChunkOp::kCacheMiss, 9, 0);
  profile_pfs(/*write=*/false, 2, 4096);
  profile_pfs(/*write=*/true, 2, 100);
  profile_aggregator(3, 2, 8192);

  const ProfileSnapshot snap = profile_snapshot();
  ASSERT_EQ(snap.chunk.size(), 2u);  // only touched addresses occupy cells
  const ChunkCell& c5 = snap.chunk[0];
  EXPECT_EQ(c5.address, 5u);
  EXPECT_EQ(c5.rank, -1);  // host thread
  EXPECT_EQ(c5.reads, 2u);
  EXPECT_EQ(c5.writes, 1u);
  EXPECT_EQ(c5.misses, 0u);
  EXPECT_EQ(c5.bytes, 2500u);
  EXPECT_EQ(snap.chunk[1].address, 9u);
  EXPECT_EQ(snap.chunk[1].misses, 1u);

  ASSERT_EQ(snap.pfs.size(), 1u);
  EXPECT_EQ(snap.pfs[0].server, 2u);
  EXPECT_EQ(snap.pfs[0].reads, 1u);
  EXPECT_EQ(snap.pfs[0].writes, 1u);
  EXPECT_EQ(snap.pfs[0].bytes, 4196u);

  ASSERT_EQ(snap.aggregator.size(), 1u);
  EXPECT_EQ(snap.aggregator[0].rank, 3);
  EXPECT_EQ(snap.aggregator[0].runs, 2u);
  EXPECT_EQ(snap.aggregator[0].bytes, 8192u);

  clear_profile();
  EXPECT_TRUE(profile_snapshot().empty());
}

TEST_F(ProfileFixture, JsonRoundTripsAndValidates) {
  profile_chunk(ChunkOp::kRead, 1, 64);
  profile_chunk(ChunkOp::kWrite, 2, 128);
  profile_pfs(/*write=*/false, 0, 32);
  profile_aggregator(1, 1, 96);

  const ProfileSnapshot snap = profile_snapshot();
  JsonWriter w;
  profile_to_json(snap, w);
  ASSERT_TRUE(json_validate(w.str())) << w.str();

  auto parsed = profile_from_json(w.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().chunk.size(), snap.chunk.size());
  EXPECT_EQ(parsed.value().chunk[0].address, snap.chunk[0].address);
  EXPECT_EQ(parsed.value().chunk[0].reads, snap.chunk[0].reads);
  EXPECT_EQ(parsed.value().chunk[1].writes, snap.chunk[1].writes);
  ASSERT_EQ(parsed.value().pfs.size(), 1u);
  EXPECT_EQ(parsed.value().pfs[0].bytes, 32u);
  ASSERT_EQ(parsed.value().aggregator.size(), 1u);
  EXPECT_EQ(parsed.value().aggregator[0].bytes, 96u);
}

TEST_F(ProfileFixture, WriteProfileProducesParseableFile) {
  profile_chunk(ChunkOp::kRead, 42, 4096);
  ASSERT_TRUE(flush_profile().is_ok());
  std::ifstream in(path_);
  std::stringstream ss;
  ss << in.rdbuf();
  auto parsed = profile_from_json(ss.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().chunk.size(), 1u);
  EXPECT_EQ(parsed.value().chunk[0].address, 42u);
}

TEST_F(ProfileFixture, RejectsForeignDocuments) {
  EXPECT_FALSE(profile_from_json("{\"format\":\"other\"}").is_ok());
  EXPECT_FALSE(profile_from_json("not json at all").is_ok());
}

TEST_F(ProfileFixture, MultiRankZoneWritesLandInPerRankCells) {
  constexpr int kRanks = 4;
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);

  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kInt32;
    auto fr = core::DrxMpFile::create(comm, fs, "prof", core::Shape{16, 16},
                                      core::Shape{4, 4}, opts);
    ASSERT_TRUE(fr.is_ok());
    core::DrxMpFile file = std::move(fr).value();
    const core::Distribution dist = file.block_distribution();
    std::vector<std::byte> buf(static_cast<std::size_t>(
        file.zone_buffer_bytes(dist, comm.rank())));
    ASSERT_TRUE(file
                    .write_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                   /*collective=*/true)
                    .is_ok());
    ASSERT_TRUE(file.close().is_ok());
  });

  const ProfileSnapshot snap = profile_snapshot();
  // Every chunk of the 4x4 grid is written exactly once, and each write
  // is attributed to the zone owner, never the host thread.
  std::uint64_t writes = 0;
  bool rank_seen[kRanks] = {false, false, false, false};
  for (const ChunkCell& c : snap.chunk) {
    EXPECT_GE(c.rank, 0);
    EXPECT_LT(c.rank, kRanks);
    if (c.rank >= 0 && c.rank < kRanks) rank_seen[c.rank] = true;
    writes += c.writes;
  }
  EXPECT_EQ(writes, 16u);  // 4x4 chunk grid
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(rank_seen[r]) << "no heatmap cells for rank " << r;
  }
  // The pfs table saw traffic on both servers, attributed to real ranks
  // (aggregator device access happens on rank threads in this setup).
  EXPECT_FALSE(snap.pfs.empty());
  // The collective write ran through the two-phase aggregators.
  EXPECT_FALSE(snap.aggregator.empty());
}

}  // namespace
}  // namespace drx::obs
