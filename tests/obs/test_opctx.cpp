// Causal op context (obs/opctx.hpp): op id claiming, per-stage
// attribution, nesting rules, cross-thread restore, and the disarmed
// fast paths that keep always-on instrumentation cheap.
#include "obs/opctx.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drx::obs {
namespace {

std::uint64_t hist_count(const MetricsSnapshot& s, std::string_view name) {
  for (const auto& h : s.histograms) {
    if (h.name == name) return h.count;
  }
  return 0;
}

/// Busy-waits a little so a StageTimer observes a nonzero duration.
void spin_ns(std::uint64_t ns) {
  const std::uint64_t start = trace_now_ns();
  while (trace_now_ns() - start < ns) {
  }
}

TEST(OpContext, InactiveByDefault) {
  EXPECT_FALSE(op_active());
  EXPECT_EQ(current_op().op, 0u);
}

TEST(OpContext, OpScopeClaimsUniqueIdsAndClearsOnExit) {
  std::uint64_t first = 0;
  {
    OpScope op("op.test_a");
    first = op.id();
    EXPECT_NE(first, 0u);
    EXPECT_TRUE(op_active());
    EXPECT_EQ(current_op().op, first);
  }
  EXPECT_FALSE(op_active());
  OpScope op("op.test_b");
  EXPECT_NE(op.id(), 0u);
  EXPECT_NE(op.id(), first);
}

TEST(OpContext, NestedOpScopeIsInert) {
  OpScope outer("op.outer");
  const std::uint64_t id = outer.id();
  {
    OpScope inner("op.inner");
    EXPECT_EQ(inner.id(), 0u);
    EXPECT_EQ(current_op().op, id) << "inner scope must not steal the op";
  }
  EXPECT_EQ(current_op().op, id);
}

TEST(OpContext, StageAttributionFeedsHistogramsAndDominantCounter) {
  const MetricsSnapshot before = registry().snapshot();
  {
    OpScope op("op.attr_test");
    StageTimer io(Stage::kIoService);
    spin_ns(200000);  // 200us: dominates everything else in the scope
  }
  const MetricsSnapshot after = registry().snapshot();
  EXPECT_EQ(after.counter("obs.op.count"),
            before.counter("obs.op.count") + 1);
  EXPECT_EQ(after.counter("obs.op.dominant.io_service"),
            before.counter("obs.op.dominant.io_service") + 1);
  EXPECT_EQ(hist_count(after, "obs.op.stage.io_service_us"),
            hist_count(before, "obs.op.stage.io_service_us") + 1);
  EXPECT_EQ(hist_count(after, "obs.op.total_us"),
            hist_count(before, "obs.op.total_us") + 1);
}

TEST(OpContext, StageTimerWithoutActiveOpIsFree) {
  ASSERT_FALSE(op_active());
  const MetricsSnapshot before = registry().snapshot();
  {
    StageTimer t(Stage::kCopy);
    spin_ns(50000);
  }
  const MetricsSnapshot after = registry().snapshot();
  EXPECT_EQ(after.counter("obs.op.count"), before.counter("obs.op.count"));
}

TEST(OpContext, NestedSameStageTimersCountOnce) {
  const MetricsSnapshot before = registry().snapshot();
  {
    OpScope op("op.nested_stage");
    StageTimer outer(Stage::kIoService);
    {
      // Inner layer of the same stage (drx_file read wrapping pfs read)
      // must not double-attribute.
      StageTimer inner(Stage::kIoService);
      spin_ns(100000);
    }
  }
  const MetricsSnapshot after = registry().snapshot();
  // The dominant stage is io_service exactly once; with double-counting
  // the io_service sum would exceed the op's wall time, which the clamp
  // on kOther would expose as a zero-availability op. Count must move
  // by one op.
  EXPECT_EQ(after.counter("obs.op.count"),
            before.counter("obs.op.count") + 1);
  EXPECT_EQ(after.counter("obs.op.dominant.io_service"),
            before.counter("obs.op.dominant.io_service") + 1);
}

TEST(OpContext, AddStageNsAcrossThreadsViaOpRestore) {
  const MetricsSnapshot before = registry().snapshot();
  {
    OpScope op("op.cross_thread");
    const OpContext ctx = current_op();
    std::thread worker([ctx] {
      EXPECT_FALSE(op_active()) << "fresh thread must start without an op";
      OpRestore restore(ctx);
      EXPECT_TRUE(op_active());
      EXPECT_EQ(current_op().op, ctx.op);
      StageTimer io(Stage::kIoService);
      // Long enough that thread spawn/join overhead (charged to `other`)
      // cannot out-dominate it on a loaded machine.
      spin_ns(20000000);
    });
    worker.join();
  }
  const MetricsSnapshot after = registry().snapshot();
  EXPECT_EQ(after.counter("obs.op.dominant.io_service"),
            before.counter("obs.op.dominant.io_service") + 1);
}

TEST(OpContext, StaleSlotAddIsDropped) {
  OpContext stale;
  {
    OpScope op("op.stale");
    stale = current_op();
  }
  // The scope closed: the slot no longer belongs to this op, so the add
  // must be silently dropped rather than corrupting a future op's stats.
  add_stage_ns(stale, Stage::kCopy, 1000000);
  const MetricsSnapshot before = registry().snapshot();
  {
    OpScope next("op.stale_next");
    StageTimer io(Stage::kIoService);
    spin_ns(100000);
  }
  const MetricsSnapshot after = registry().snapshot();
  EXPECT_EQ(after.counter("obs.op.dominant.copy"),
            before.counter("obs.op.dominant.copy"));
}

// Satellite regression: set_bytes on a disarmed span (tracing off AND
// flight recorder off) must be a no-op, not a write into dead state.
TEST(OpContext, SetBytesOnDisarmedSpanIsNoOp) {
  ASSERT_TRUE(trace_path().empty());
  set_flight_enabled(false);
  const std::size_t events_before = trace_event_count();
  const std::uint64_t flight_before = flight_record_count();
  {
    ScopedSpan span("test.disarmed", "test");
    span.set_bytes(4096);  // must not arm the span or record anything
  }
  set_flight_enabled(true);
  EXPECT_EQ(trace_event_count(), events_before);
  EXPECT_EQ(flight_record_count(), flight_before);
}

// Enable->disable races: spans opened while tracing was on finish after
// it turns off (and vice versa). Each sink re-checks its enabled flag at
// record time, so this must neither crash nor deadlock (TSan-clean).
TEST(OpContext, TraceToggleRaceWithSpansInFlight) {
  const std::string path =
      ::testing::TempDir() + "drx_opctx_toggle_race.json";
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        OpScope op("op.race");
        ScopedSpan span("test.race", "test");
        span.set_bytes(64);
        StageTimer timer(Stage::kCopy);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    set_trace_path(path);
    set_flight_enabled(false);
    set_flight_enabled(true);
    set_trace_path("");
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  clear_trace();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace drx::obs
