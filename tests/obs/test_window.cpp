// Sliding-window metric views (obs/window.hpp): snapshot-delta math,
// epoch ring behavior, the Registry::reset() ring-clear contract, SLO
// evaluation, and the drx-window document + analyze_window detectors.
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace drx::obs {
namespace {

/// Every test leaves the global window engine the way it found it.
class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_window_enabled(true);
    window_clear();
  }
  void TearDown() override {
    set_window_config(WindowConfig{0, 0});  // back to env/default
    set_slo_targets({});
    set_window_enabled(true);
    window_clear();
  }
};

TEST_F(WindowTest, SnapshotDeltaSubtractsAndSaturates) {
  MetricsSnapshot base;
  base.counters.push_back(CounterSample{"a", 10});
  base.counters.push_back(CounterSample{"gone", 99});
  HistogramSample hb;
  hb.name = "h";
  hb.count = 4;
  hb.sum = 100;
  hb.buckets[3] = 4;
  base.histograms.push_back(hb);

  MetricsSnapshot cur;
  cur.counters.push_back(CounterSample{"a", 17});
  cur.counters.push_back(CounterSample{"new", 5});
  // A reset between captures can make cur < base: must clamp to 0, not
  // wrap.
  cur.counters.push_back(CounterSample{"gone", 0});
  HistogramSample hc = hb;
  hc.count = 9;
  hc.sum = 180;
  hc.buckets[3] = 7;
  hc.buckets[5] = 2;
  cur.histograms.push_back(hc);

  const MetricsSnapshot d = snapshot_delta(cur, base);
  EXPECT_EQ(d.counter("a"), 7u);
  EXPECT_EQ(d.counter("new"), 5u);
  EXPECT_EQ(d.counter("gone"), 0u);  // saturated, and dropped as zero
  ASSERT_EQ(d.histograms.size(), 1u);
  EXPECT_EQ(d.histograms[0].count, 5u);
  EXPECT_EQ(d.histograms[0].sum, 80u);
  EXPECT_EQ(d.histograms[0].buckets[3], 3u);
  EXPECT_EQ(d.histograms[0].buckets[5], 2u);
}

TEST_F(WindowTest, DefaultConfigIsTenSecondsBySixEpochs) {
  set_window_config(WindowConfig{0, 0});
  const WindowConfig cfg = window_config();
  // DRX_STATS_WINDOW may override in exotic test environments, but the
  // shape must hold: a positive epoch and a multi-epoch horizon.
  EXPECT_GT(cfg.epoch_ms, 0u);
  EXPECT_GT(cfg.epochs, 0u);
  EXPECT_EQ(cfg.horizon_ms(), cfg.epoch_ms * cfg.epochs);
}

TEST_F(WindowTest, ViewIsDeltaSinceOldestEpoch) {
  const MetricId c = counter_id("test.win.view.counter");
  const MetricId h = histogram_id("test.win.view.lat_us");
  process_registry().counter(c).add(5);
  window_record_epoch();  // ring: [snapshot with 5]
  process_registry().counter(c).add(7);
  process_registry().histogram(h).observe(100);
  const WindowView view = window_view();
  EXPECT_EQ(view.epochs, 1u);
  EXPECT_EQ(view.delta.counter("test.win.view.counter"), 7u);
  bool found = false;
  for (const HistogramSample& s : view.delta.histograms) {
    if (s.name == "test.win.view.lat_us") {
      found = true;
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(WindowTest, EmptyRingFallsBackToCumulative) {
  const MetricId c = counter_id("test.win.fallback.counter");
  process_registry().counter(c).add(3);
  window_clear();
  set_window_enabled(false);
  const WindowView view = window_view();
  EXPECT_EQ(view.epochs, 0u);
  EXPECT_GE(view.delta.counter("test.win.fallback.counter"), 3u);
}

TEST_F(WindowTest, EpochDeltasAreConsecutivePairs) {
  const MetricId c = counter_id("test.win.epochs.counter");
  window_record_epoch();
  process_registry().counter(c).add(2);
  window_record_epoch();
  process_registry().counter(c).add(9);
  window_record_epoch();
  const std::vector<EpochDelta> epochs = window_epochs();
  ASSERT_GE(epochs.size(), 2u);
  const std::size_t n = epochs.size();
  EXPECT_EQ(epochs[n - 2].delta.counter("test.win.epochs.counter"), 2u);
  EXPECT_EQ(epochs[n - 1].delta.counter("test.win.epochs.counter"), 9u);
}

TEST_F(WindowTest, RingIsTrimmedToConfiguredEpochs) {
  set_window_config(WindowConfig{1, 2});
  for (int i = 0; i < 6; ++i) window_record_epoch();
  EXPECT_LE(window_epochs().size(), 2u);
  const WindowView view = window_view();
  EXPECT_LE(view.epochs, 3u);  // epochs + 1 ring entries at most
}

TEST_F(WindowTest, RegistryResetClearsTheRing) {
  // Regression: reset() used to zero the fast-id slots in place but
  // leave pre-reset cumulative epochs in the ring, so the next window
  // view subtracted a stale large baseline from a small post-reset live
  // snapshot and reported garbage (saturated zeros).
  const MetricId c = counter_id("test.win.reset.counter");
  process_registry().counter(c).add(100);
  window_record_epoch();
  ASSERT_EQ(window_view().epochs, 1u);
  process_registry().reset();
  // The stale epoch must be gone: no completed epoch survives the reset
  // (the tick inside window_epochs reseeds at most one fresh capture).
  EXPECT_TRUE(window_epochs().empty());
  // And new traffic is visible immediately — with the stale baseline
  // still in the ring this delta would saturate to 0 (4 - 100).
  process_registry().counter(c).add(4);
  EXPECT_EQ(window_view().delta.counter("test.win.reset.counter"), 4u);
}

TEST_F(WindowTest, WindowJsonIsValidAndTagged) {
  const MetricId h = histogram_id("test.win.json.lat_us");
  window_record_epoch();
  process_registry().histogram(h).observe(512);
  window_record_epoch();
  JsonWriter w;
  window_to_json(w);
  ASSERT_TRUE(json_validate(w.str()));
  auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.is_ok());
  const JsonValue* fmt = doc.value().find("format");
  ASSERT_NE(fmt, nullptr);
  EXPECT_EQ(fmt->as_string(), "drx-window");
  EXPECT_NE(doc.value().find("config"), nullptr);
  EXPECT_NE(doc.value().find("slo"), nullptr);
  EXPECT_NE(doc.value().find("window"), nullptr);
  EXPECT_NE(doc.value().find("epoch_deltas"), nullptr);
}

// ---- SLO math -------------------------------------------------------------

HistogramSample latency_histogram(std::uint64_t fast, std::uint64_t slow) {
  // `fast` observations land at ~512us (bucket 10, upper bound 1023),
  // `slow` at ~65ms (bucket 17).
  HistogramSample h;
  h.name = "serve.request.latency_us";
  h.count = fast + slow;
  h.sum = fast * 512 + slow * 65000;
  h.buckets[10] = fast;
  h.buckets[17] = slow;
  return h;
}

TEST(Slo, EvaluateCountsBucketsAboveTarget) {
  SloTarget t{"serve.request.latency_us", 1023, 0.01};
  const SloEval e = evaluate_slo(t, latency_histogram(98, 2));
  EXPECT_EQ(e.total, 100u);
  EXPECT_EQ(e.bad, 2u);
  EXPECT_DOUBLE_EQ(e.bad_fraction, 0.02);
  EXPECT_DOUBLE_EQ(e.burn_rate, 2.0);
}

TEST(Slo, EvaluateIsConservativeInsideABucket) {
  // Target mid-bucket: the whole bucket counts as bad (over-counting is
  // the safe direction for an SLO check).
  SloTarget t{"serve.request.latency_us", 600, 0.01};
  const SloEval e = evaluate_slo(t, latency_histogram(10, 0));
  EXPECT_EQ(e.bad, 10u);
}

TEST(Slo, TargetsOverrideAndRestore) {
  set_slo_targets({SloTarget{"x_us", 100, 0.5}});
  auto targets = slo_targets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].histogram, "x_us");
  set_slo_targets({});
  EXPECT_FALSE(slo_targets().empty());  // back to DRX_SLO/default set
}

// ---- analyze_window -------------------------------------------------------

std::string window_doc(const HistogramSample& slow_h,
                       const HistogramSample& fast_h,
                       const HistogramSample& trail_h,
                       std::uint64_t target_us, double budget) {
  const auto metrics = [](JsonWriter& w, const HistogramSample& h) {
    MetricsSnapshot snap;
    snap.histograms.push_back(h);
    metrics_to_json(snap, w);
  };
  JsonWriter w;
  w.begin_object();
  w.key("format").value("drx-window");
  w.key("version").value(std::uint64_t{1});
  w.key("slo").begin_array().begin_object();
  w.key("histogram").value(slow_h.name);
  w.key("target_us").value(target_us);
  w.key("budget").value(budget);
  w.end_object().end_array();
  w.key("window").begin_object();
  w.key("span_us").value(std::uint64_t{60000000});
  w.key("metrics");
  metrics(w, slow_h);
  w.end_object();
  w.key("epoch_deltas").begin_array();
  w.begin_object();
  w.key("t_us").value(std::uint64_t{10000000});
  w.key("span_us").value(std::uint64_t{10000000});
  w.key("metrics");
  metrics(w, trail_h);
  w.end_object();
  w.begin_object();
  w.key("t_us").value(std::uint64_t{20000000});
  w.key("span_us").value(std::uint64_t{10000000});
  w.key("metrics");
  metrics(w, fast_h);
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

TEST(AnalyzeWindow, SloBreachFiresBurnRateError) {
  // 30% of requests over a 1% budget in BOTH windows: burn 30x >= 14.4.
  const HistogramSample breach = latency_histogram(70, 30);
  auto doc = json_parse(
      window_doc(breach, breach, latency_histogram(70, 30), 1023, 0.01));
  ASSERT_TRUE(doc.is_ok());
  std::vector<analysis::Finding> findings;
  analysis::analyze_window(doc.value(), findings);
  bool fired = false;
  for (const auto& f : findings) {
    if (f.id == "slo-burn-rate") {
      fired = true;
      EXPECT_EQ(f.severity, analysis::Severity::kError);
      EXPECT_GE(f.score, analysis::kBurnError);
    }
  }
  EXPECT_TRUE(fired);
}

TEST(AnalyzeWindow, FastWindowBlipAloneDoesNotPage) {
  // Slow window healthy, fast window breaching: multi-window alerting
  // stays quiet (info finding only).
  auto doc = json_parse(window_doc(latency_histogram(998, 2),
                                   latency_histogram(10, 30),
                                   latency_histogram(500, 1), 1023, 0.01));
  ASSERT_TRUE(doc.is_ok());
  std::vector<analysis::Finding> findings;
  analysis::analyze_window(doc.value(), findings);
  for (const auto& f : findings) {
    if (f.id == "slo-burn-rate") {
      EXPECT_EQ(f.severity, analysis::Severity::kInfo);
    }
  }
}

TEST(AnalyzeWindow, RegressionAgainstTrailingBaseline) {
  // Trailing epochs p95 ~1ms, latest epoch p95 ~65ms: an in-window
  // latency regression (ratio ~64x >= 8x error bar).
  auto doc = json_parse(window_doc(latency_histogram(100, 100),
                                   latency_histogram(0, 100),
                                   latency_histogram(100, 0), 1023, 1.0));
  ASSERT_TRUE(doc.is_ok());
  std::vector<analysis::Finding> findings;
  analysis::analyze_window(doc.value(), findings);
  bool fired = false;
  for (const auto& f : findings) {
    if (f.id == "window-regression") {
      fired = true;
      EXPECT_EQ(f.severity, analysis::Severity::kError);
    }
  }
  EXPECT_TRUE(fired);
}

TEST(AnalyzeWindow, BadFormatIsAnError) {
  auto doc = json_parse(R"({"format":"drx-flight"})");
  ASSERT_TRUE(doc.is_ok());
  std::vector<analysis::Finding> findings;
  analysis::analyze_window(doc.value(), findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].id, "window-bad-format");
  EXPECT_EQ(findings[0].severity, analysis::Severity::kError);
}

}  // namespace
}  // namespace drx::obs
