// Cross-rank metric aggregation (DrxMpFile::close() reduces every rank's
// registry to rank 0): the aggregated totals must equal the sum of the
// per-rank values.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/drxmp.hpp"
#include "obs/metrics.hpp"
#include "simpi/runtime.hpp"

namespace drx::obs {
namespace {

TEST(Aggregate, RankZeroTotalsEqualSumOfPerRank) {
  constexpr int kRanks = 5;
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);

  const MetricId marker = counter_id("test.agg.marker");
  std::atomic<std::uint64_t> expected_bytes_written{0};

  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kInt32;
    auto fr = core::DrxMpFile::create(comm, fs, "agg", core::Shape{20, 8},
                                      core::Shape{4, 4}, opts);
    ASSERT_TRUE(fr.is_ok());
    core::DrxMpFile file = std::move(fr).value();

    // A synthetic counter with a rank-dependent value: rank r adds r + 1,
    // so the cross-rank total must be 1 + 2 + ... + kRanks.
    registry().counter(marker).add(
        static_cast<std::uint64_t>(comm.rank()) + 1);

    const core::Distribution dist = file.block_distribution();
    std::vector<std::byte> buf(static_cast<std::size_t>(
        file.zone_buffer_bytes(dist, comm.rank())));
    ASSERT_TRUE(file
                    .write_my_zone(dist, core::MemoryOrder::kRowMajor, buf,
                                   /*collective=*/true)
                    .is_ok());

    // Sum an organic counter across ranks before close() for comparison
    // against the aggregate (each rank reads its own registry).
    const std::uint64_t mine =
        registry().snapshot().counter("mpio.bytes_written");
    std::uint64_t total = 0;
    for (std::uint64_t v : comm.allgather_value(mine)) total += v;
    if (comm.rank() == 0) {
      expected_bytes_written.store(total, std::memory_order_relaxed);
    }

    ASSERT_TRUE(file.close().is_ok());
  });

  const MetricsSnapshot agg = aggregated_snapshot();
  EXPECT_EQ(agg.counter("test.agg.marker"),
            static_cast<std::uint64_t>(kRanks) * (kRanks + 1) / 2);
  const std::uint64_t expected =
      expected_bytes_written.load(std::memory_order_relaxed);
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(agg.counter("mpio.bytes_written"), expected);
  EXPECT_GT(agg.counter("mpio.collective_ops"), 0u);
}

TEST(Aggregate, ExplicitAggregateReturnsLocalOffRankZero) {
  constexpr int kRanks = 4;
  pfs::PfsConfig cfg;
  pfs::Pfs fs(cfg);
  const MetricId marker = counter_id("test.agg.local");

  simpi::run(kRanks, [&](simpi::Comm& comm) {
    core::DrxFile::Options opts;
    opts.dtype = core::ElementType::kInt32;
    auto fr = core::DrxMpFile::create(comm, fs, "agg2", core::Shape{8, 8},
                                      core::Shape{4, 4}, opts);
    ASSERT_TRUE(fr.is_ok());
    core::DrxMpFile file = std::move(fr).value();

    registry().counter(marker).add(10);
    const MetricsSnapshot snap = file.aggregate_metrics();
    if (comm.rank() == 0) {
      // Rank 0 sees the cross-rank total...
      EXPECT_EQ(snap.counter("test.agg.local"),
                10u * static_cast<std::uint64_t>(kRanks));
    } else {
      // ...every other rank gets its own local snapshot back.
      EXPECT_EQ(snap.counter("test.agg.local"), 10u);
    }
    ASSERT_TRUE(file.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::obs
