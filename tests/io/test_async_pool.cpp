#include "io/async_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "io/config.hpp"
#include "obs/opctx.hpp"

namespace drx::io {
namespace {

TEST(AsyncIoPool, InlineModeRunsJobBeforeSubmitReturns) {
  AsyncIoPool pool({.threads = 0, .queue_capacity = 4});
  EXPECT_FALSE(pool.async());
  EXPECT_EQ(pool.threads(), 0);

  int ran = 0;
  Status seen;
  pool.submit(obs::OpContext{}, [&] { ++ran; return Status::ok(); },
              [&](const Status& st) { seen = st; ++ran; });
  // Inline execution: job and completion both finished already.
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(seen.is_ok());
  EXPECT_EQ(pool.stats().inline_runs, 1u);
  EXPECT_EQ(pool.stats().completed, 1u);
}

TEST(AsyncIoPool, WorkerModeCompletesAllJobs) {
  AsyncIoPool pool({.threads = 3, .queue_capacity = 8});
  EXPECT_TRUE(pool.async());
  EXPECT_EQ(pool.threads(), 3);

  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit(obs::OpContext{}, [&ran] { ran.fetch_add(1); return Status::ok(); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.stats().submitted, 100u);
  EXPECT_EQ(pool.stats().completed, 100u);
  EXPECT_EQ(pool.stats().inline_runs, 0u);
}

TEST(AsyncIoPool, FutureCarriesJobStatus) {
  AsyncIoPool pool({.threads = 1, .queue_capacity = 2});
  auto ok = pool.submit_with_future(obs::OpContext{}, [] { return Status::ok(); });
  auto bad = pool.submit_with_future(
      obs::OpContext{}, [] { return Status(ErrorCode::kIoError, "injected"); });
  EXPECT_TRUE(ok.get().is_ok());
  const Status st = bad.get();
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  EXPECT_EQ(st.message(), "injected");
  pool.drain();
  EXPECT_EQ(pool.stats().failed, 1u);
}

TEST(AsyncIoPool, CompletionRunsAfterJobWithItsStatus) {
  AsyncIoPool pool({.threads = 2, .queue_capacity = 4});
  std::atomic<int> order{0};
  std::atomic<int> job_at{-1};
  std::atomic<int> done_at{-1};
  std::atomic<bool> failed{false};
  pool.submit(
      obs::OpContext{},
      [&] {
        job_at = order.fetch_add(1);
        return Status(ErrorCode::kCorrupt, "x");
      },
      [&](const Status& st) {
        done_at = order.fetch_add(1);
        failed = !st.is_ok();
      });
  pool.drain();
  EXPECT_EQ(job_at.load(), 0);
  EXPECT_EQ(done_at.load(), 1);
  EXPECT_TRUE(failed.load());
}

TEST(AsyncIoPool, BoundedQueueAppliesBackpressureWithoutDeadlock) {
  // A tiny queue with slow jobs: the fast producer must block in submit()
  // rather than queueing unboundedly, and everything still completes.
  AsyncIoPool pool({.threads = 1, .queue_capacity = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit(obs::OpContext{}, [&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran.fetch_add(1);
      return Status::ok();
    });
    EXPECT_LE(pool.queue_depth(), 2u);
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 32);
}

TEST(AsyncIoPool, DrainIsABarrierFromManyProducers) {
  AsyncIoPool pool({.threads = 4, .queue_capacity = 16});
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &ran] {
      for (int i = 0; i < 50; ++i) {
        pool.submit(obs::OpContext{}, [&ran] { ran.fetch_add(1); return Status::ok(); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.drain();
  EXPECT_EQ(ran.load(), 200);
}

TEST(AsyncIoPool, DestructorDrainsOutstandingJobs) {
  std::atomic<int> ran{0};
  {
    AsyncIoPool pool({.threads = 2, .queue_capacity = 8});
    for (int i = 0; i < 20; ++i) {
      pool.submit(obs::OpContext{}, [&ran] { ran.fetch_add(1); return Status::ok(); });
    }
  }  // dtor must complete every submitted job before joining
  EXPECT_EQ(ran.load(), 20);
}

TEST(AsyncIoPool, BackgroundJobsAreNotStarvedByAnUrgentStream) {
  AsyncIoPool pool({.threads = 1, .queue_capacity = 64});
  // Park the single worker so both queues fill up behind it, then watch
  // the dispatch interleaving: urgent first, but every 4th dispatch must
  // take the oldest background job (docs/SERVING.md anti-starvation).
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit(obs::OpContext{}, [opened] {
    opened.wait();
    return Status::ok();
  });

  constexpr int kUrgent = 12;
  constexpr int kBackground = 4;
  std::atomic<int> seq{0};
  std::atomic<int> first_background{-1};
  std::atomic<int> last_urgent{-1};
  for (int i = 0; i < kBackground; ++i) {
    pool.submit(
        obs::OpContext{}, [] { return Status::ok(); },
        [&seq, &first_background](const Status&) {
          const int pos = seq.fetch_add(1);
          int expected = -1;
          first_background.compare_exchange_strong(expected, pos);
        },
        AsyncIoPool::JobClass::kBackground);
  }
  for (int i = 0; i < kUrgent; ++i) {
    pool.submit(
        obs::OpContext{}, [] { return Status::ok(); },
        [&seq, &last_urgent](const Status&) {
          last_urgent.store(seq.fetch_add(1));
        });
  }
  gate.set_value();
  pool.drain();

  EXPECT_EQ(seq.load(), kUrgent + kBackground);
  EXPECT_EQ(pool.stats().background_submitted,
            static_cast<std::uint64_t>(kBackground));
  // Urgent jobs go first...
  EXPECT_GT(first_background.load(), 0);
  // ...but the first background job must be served well before the
  // urgent stream ends (every 4th dispatch), not starved to the tail.
  EXPECT_LT(first_background.load(), kUrgent - 1);
  EXPECT_EQ(last_urgent.load(), kUrgent + kBackground - 1);
}

TEST(IoConfig, OverridesBeatEnvironmentAndRestore) {
  set_io_threads(3);
  EXPECT_EQ(io_threads(), 3);
  set_prefetch_depth(7);
  EXPECT_EQ(prefetch_depth(), 7u);
  set_io_threads(-1);          // back to environment-derived value
  set_prefetch_depth(kPrefetchFromEnv);
  // No DRX_* vars in the test environment: both default to off.
  EXPECT_EQ(io_threads(), 0);
  EXPECT_EQ(prefetch_depth(), 0u);
}

}  // namespace
}  // namespace drx::io
