// Codec round-trip property tests (docs/COMPRESSION.md): every byte
// pattern that encode() accepts must decode back bit-identically, for
// every element width the array layer can produce, and damaged streams
// must come back as kCorrupt — never UB (ASan/UBSan run this suite).
#include "codec/codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace drx::codec {
namespace {

/// Element widths of ElementType::{kInt32, kInt64/kDouble, kComplexDouble}.
constexpr std::size_t kWidths[] = {4, 8, 16};
constexpr CodecId kRealCodecs[] = {CodecId::kRle, CodecId::kBitPack};

std::vector<std::byte> random_bytes(SplitMix64& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(rng.next() & 0xFF);
  }
  return out;
}

/// Runs-of-equal-elements with random run lengths (adversarial for RLE:
/// lengths 1, 2, kRunMax-1, kRunMax, kRunMax+1 all appear).
std::vector<std::byte> runny_bytes(SplitMix64& rng, std::size_t n_elems,
                                   std::size_t w) {
  std::vector<std::byte> out(n_elems * w);
  std::size_t i = 0;
  while (i < n_elems) {
    const std::size_t len =
        std::min(n_elems - i, static_cast<std::size_t>(rng.next_in(1, 140)));
    std::vector<std::byte> elem = random_bytes(rng, w);
    for (std::size_t r = 0; r < len; ++r) {
      std::memcpy(out.data() + (i + r) * w, elem.data(), w);
    }
    i += len;
  }
  return out;
}

/// Small-range integers (adversarial-friendly for bitpack: exercises
/// narrow widths, including width 0 when lo == hi).
std::vector<std::byte> narrow_ints(SplitMix64& rng, std::size_t n_elems,
                                   std::size_t w, std::int64_t lo,
                                   std::int64_t hi) {
  std::vector<std::byte> out(n_elems * w);
  for (std::size_t i = 0; i < n_elems; ++i) {
    const std::int64_t v =
        lo + static_cast<std::int64_t>(
                 rng.next_below(static_cast<std::uint64_t>(hi - lo) + 1));
    std::memcpy(out.data() + i * w, &v, w);
  }
  return out;
}

/// encode() then decode() must reproduce `raw` exactly; encode() == 0
/// ("no gain") is always a legal answer.
void check_round_trip(CodecId c, std::span<const std::byte> raw,
                      std::size_t w) {
  std::vector<std::byte> stored(max_encoded_bytes(raw.size(), w));
  const std::size_t n = encode(c, raw, w, stored);
  ASSERT_LE(n, raw.size()) << "encoder must never exceed raw size";
  if (n == 0) return;  // stored raw: nothing to decode
  std::vector<std::byte> back(raw.size(), std::byte{0xAA});
  const Status st =
      decode(c, std::span<const std::byte>(stored.data(), n), w, back);
  ASSERT_TRUE(st.is_ok()) << st;
  ASSERT_EQ(0, std::memcmp(back.data(), raw.data(), raw.size()));
}

TEST(Codec, RoundTripRandomAllWidths) {
  SplitMix64 rng(0xC0DEC);
  for (const std::size_t w : kWidths) {
    for (const CodecId c : kRealCodecs) {
      for (int iter = 0; iter < 50; ++iter) {
        const std::size_t n_elems = rng.next_in(1, 512);
        check_round_trip(c, random_bytes(rng, n_elems * w), w);
      }
    }
  }
}

TEST(Codec, RoundTripAdversarialRuns) {
  SplitMix64 rng(0xBAD0125);
  for (const std::size_t w : kWidths) {
    for (const CodecId c : kRealCodecs) {
      for (int iter = 0; iter < 50; ++iter) {
        const std::size_t n_elems = rng.next_in(1, 1024);
        check_round_trip(c, runny_bytes(rng, n_elems, w), w);
      }
    }
  }
}

TEST(Codec, RoundTripNarrowIntegers) {
  SplitMix64 rng(0x7171);
  for (const std::size_t w : {std::size_t{4}, std::size_t{8}}) {
    for (const CodecId c : kRealCodecs) {
      check_round_trip(c, narrow_ints(rng, 733, w, 0, 0), w);  // width 0
      check_round_trip(c, narrow_ints(rng, 733, w, -3, 3), w);
      check_round_trip(c, narrow_ints(rng, 733, w, 1000, 1007), w);
      check_round_trip(c, narrow_ints(rng, 733, w, -100000, 100000), w);
    }
  }
}

TEST(Codec, ConstantChunkCompressesHard) {
  const std::size_t w = 8;
  std::vector<std::byte> raw(4096 * w, std::byte{0});
  std::vector<std::byte> stored(max_encoded_bytes(raw.size(), w));
  const std::size_t n = encode(CodecId::kRle, raw, w, stored);
  ASSERT_GT(n, 0u);
  EXPECT_LT(n, raw.size() / 50) << "all-zero chunk should shrink >50x";
  check_round_trip(CodecId::kRle, raw, w);
  check_round_trip(CodecId::kBitPack, raw, w);
}

TEST(Codec, IncompressibleRandomBailsOut) {
  SplitMix64 rng(0xEAEA);
  const std::size_t w = 8;
  const std::vector<std::byte> raw = random_bytes(rng, 1024 * w);
  std::vector<std::byte> stored(max_encoded_bytes(raw.size(), w));
  // Full-entropy u64s: neither element repeats nor packs below 57 bits.
  EXPECT_EQ(0u, encode(CodecId::kRle, raw, w, stored));
  EXPECT_EQ(0u, encode(CodecId::kBitPack, raw, w, stored));
}

TEST(Codec, IdentityDecodeRequiresExactSize) {
  std::vector<std::byte> raw(64, std::byte{7});
  std::vector<std::byte> out(64);
  EXPECT_TRUE(decode(CodecId::kNone, raw, 8, out).is_ok());
  EXPECT_EQ(0, std::memcmp(raw.data(), out.data(), 64));
  EXPECT_EQ(decode(CodecId::kNone,
                   std::span<const std::byte>(raw.data(), 63), 8, out)
                .code(),
            ErrorCode::kCorrupt);
}

TEST(Codec, TruncatedStreamsAreCorruptNotUB) {
  SplitMix64 rng(0x7C0);
  for (const std::size_t w : {std::size_t{4}, std::size_t{8}}) {
    for (const CodecId c : kRealCodecs) {
      // Data each codec actually accepts: runs for RLE, a narrow integer
      // range for bitpack (random runs span the full value range, which
      // bitpack rightly refuses to pack).
      const std::vector<std::byte> raw =
          c == CodecId::kRle ? runny_bytes(rng, 512, w)
                             : narrow_ints(rng, 512, w, -40, 87);
      std::vector<std::byte> stored(max_encoded_bytes(raw.size(), w));
      const std::size_t n = encode(c, raw, w, stored);
      ASSERT_GT(n, 0u);
      std::vector<std::byte> back(raw.size());
      for (const std::size_t cut : {std::size_t{0}, n / 2, n - 1}) {
        const Status st = decode(
            c, std::span<const std::byte>(stored.data(), cut), w, back);
        EXPECT_FALSE(st.is_ok()) << "truncation to " << cut << " accepted";
      }
    }
  }
}

TEST(Codec, MutatedStreamsNeverCrash) {
  // A flipped byte may still decode (RLE literals carry raw payload); the
  // contract is "clean Status or clean success", never a wild read. ASan
  // turns any overrun here into a test failure.
  SplitMix64 rng(0xF1F1);
  for (const CodecId c : kRealCodecs) {
    const std::size_t w = 8;
    const std::vector<std::byte> raw =
        c == CodecId::kRle ? runny_bytes(rng, 256, w)
                           : narrow_ints(rng, 256, w, 0, 1000);
    std::vector<std::byte> stored(max_encoded_bytes(raw.size(), w));
    const std::size_t n = encode(c, raw, w, stored);
    ASSERT_GT(n, 0u);
    std::vector<std::byte> back(raw.size());
    for (int iter = 0; iter < 200; ++iter) {
      std::vector<std::byte> mutant(stored.begin(),
                                    stored.begin() + static_cast<long>(n));
      mutant[static_cast<std::size_t>(rng.next_below(n))] ^=
          static_cast<std::byte>(1u << rng.next_below(8));
      (void)decode(c, mutant, w, back);  // must not crash; result may err
    }
  }
}

TEST(Codec, BitpackRejectsImplausibleHeaders) {
  const std::size_t w = 8;
  std::vector<std::byte> raw(64 * w);
  // width beyond the 56-bit cap
  std::vector<std::byte> bad(1 + w + 64, std::byte{0});
  bad[0] = static_cast<std::byte>(57);
  EXPECT_EQ(decode(CodecId::kBitPack, bad, w, raw).code(),
            ErrorCode::kCorrupt);
  // header truncated mid-min
  EXPECT_EQ(decode(CodecId::kBitPack,
                   std::span<const std::byte>(bad.data(), w), w, raw)
                .code(),
            ErrorCode::kCorrupt);
  // payload size disagrees with the declared width (64 bytes of payload
  // is exactly right for width 8, so claim width 9)
  bad[0] = static_cast<std::byte>(9);
  EXPECT_EQ(decode(CodecId::kBitPack, bad, w, raw).code(),
            ErrorCode::kCorrupt);
}

TEST(Codec, BitpackRejectsNonzeroTrailingBits) {
  const std::size_t w = 8;
  std::vector<std::byte> raw(3 * w);
  std::int64_t vals[3] = {0, 1, 2};
  std::memcpy(raw.data(), vals, sizeof(vals));
  std::vector<std::byte> stored(max_encoded_bytes(raw.size(), w));
  const std::size_t n = encode(CodecId::kBitPack, raw, w, stored);
  ASSERT_GT(n, 0u);
  // 3 values x 2 bits = 6 bits: the final byte's top 2 bits must be zero.
  std::vector<std::byte> mutant(stored.begin(),
                                stored.begin() + static_cast<long>(n));
  mutant.back() |= std::byte{0x80};
  std::vector<std::byte> back(raw.size());
  EXPECT_EQ(decode(CodecId::kBitPack, mutant, w, back).code(),
            ErrorCode::kCorrupt);
}

TEST(Codec, ParseAndDefaultKnob) {
  EXPECT_EQ(parse_codec("off"), CodecId::kNone);
  EXPECT_EQ(parse_codec("none"), CodecId::kNone);
  EXPECT_EQ(parse_codec("0"), CodecId::kNone);
  EXPECT_EQ(parse_codec("rle"), CodecId::kRle);
  EXPECT_EQ(parse_codec("on"), CodecId::kRle);
  EXPECT_EQ(parse_codec("1"), CodecId::kRle);
  EXPECT_EQ(parse_codec("bitpack"), CodecId::kBitPack);
  EXPECT_FALSE(parse_codec("zstd").has_value());

  const CodecId before = default_codec();
  set_default_codec(CodecId::kBitPack);
  EXPECT_EQ(default_codec(), CodecId::kBitPack);
  set_default_codec(before);
}

TEST(Codec, EncodeRejectsMisalignedInput) {
  std::vector<std::byte> raw(65, std::byte{0});  // not a multiple of 8
  std::vector<std::byte> stored(65);
  EXPECT_EQ(0u, encode(CodecId::kRle, raw, 8, stored));
  std::vector<std::byte> out(65);
  EXPECT_EQ(decode(CodecId::kRle, stored, 8, out).code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace drx::codec
