#!/usr/bin/env python3
"""ctest gate: drx_verify must flag every seeded corpus defect — and
nothing else.

The corpus under tests/verify/corpus/ is real, compiling C++ (built as
an OBJECT library by tests/CMakeLists.txt); each file seeds a known
defect class. This script pins the analyzer's recall (every seeded
defect found, with exact per-file counts) and its precision (zero
findings beyond the seeded ones), so a frontend or pass regression
fails tier-1 immediately.

Usage: check_corpus.py [--root REPO_ROOT]
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# (rule, file) -> exact expected finding count. Keep in sync with the
# "Expected findings" header comments in the corpus files.
EXPECTED = {
    ("lock-order", "tests/verify/corpus/lock_order_inversion.cpp"): 2,
    ("blocking-under-lock",
     "tests/verify/corpus/flush_under_shard_lock.cpp"): 2,
    ("error-discipline", "tests/verify/corpus/dropped_status.cpp"): 3,
    ("layering", "tests/verify/corpus/layering_violation.cpp"): 1,
}


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2])
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "findings.json"
        proc = subprocess.run(
            [sys.executable, str(args.root / "scripts" / "drx_verify"),
             "--root", str(args.root),
             "--src-root", "tests/verify/corpus",
             "--json", str(out), "-q"],
            capture_output=True, text=True)
        if proc.returncode != 1:
            print(f"FAIL: expected exit 1 (findings present), got "
                  f"{proc.returncode}\nstdout: {proc.stdout}\n"
                  f"stderr: {proc.stderr}")
            return 1
        payload = json.loads(out.read_text(encoding="utf-8"))

    got: dict = {}
    for f in payload["findings"]:
        if f["suppressed"]:
            print(f"FAIL: corpus finding unexpectedly suppressed: {f}")
            return 1
        got[(f["rule"], f["file"])] = got.get((f["rule"], f["file"]), 0) + 1

    failed = False
    for key, want in sorted(EXPECTED.items()):
        have = got.pop(key, 0)
        status = "ok" if have == want else "FAIL"
        if have != want:
            failed = True
        print(f"{status}: {key[1]} [{key[0]}] expected {want}, got {have}")
    for key, have in sorted(got.items()):
        failed = True
        print(f"FAIL: unexpected finding(s): {key[1]} [{key[0]}] x{have}")

    if failed:
        return 1
    print(f"corpus gate: all {sum(EXPECTED.values())} seeded defects "
          f"flagged, no extras")
    return 0


if __name__ == "__main__":
    sys.exit(main())
