// drx_verify seeded defect: lock-order inversion.
//
// `io_mu_` maps to cache.io (level 58) and `seq_mu_` to cache.seq
// (level 62) in docs/LOCK_ORDER.md; acquiring the *higher* level while
// holding the lower one is an ascending edge the hierarchy forbids.
// One inversion is direct, the other crosses a call so the
// interprocedural acquisition summaries are exercised too.
//
// Expected findings (pinned by tests/verify/check_corpus.py):
//   lock-order x2
#include "util/sync.hpp"

namespace drx::verify_corpus {

class InvertedLocks {
 public:
  void direct_inversion() {
    util::MutexLock io(io_mu_);
    util::MutexLock seq(seq_mu_);  // seeded: 62 acquired under 58
    ++generation_;
  }

  void cross_call_inversion() {
    util::MutexLock io(io_mu_);
    bump_generation();  // seeded: callee acquires cache.seq under cache.io
  }

 private:
  void bump_generation() {
    util::MutexLock seq(seq_mu_);
    ++generation_;
  }

  util::Mutex io_mu_;
  util::Mutex seq_mu_;
  long generation_ = 0;
};

}  // namespace drx::verify_corpus
