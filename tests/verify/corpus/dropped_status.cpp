// drx_verify seeded defects: all three error-discipline shapes.
//
//  - a Status silently dropped through a `(void)` cast,
//  - a Result unwrapped with no is_ok() check dominating it,
//  - a raw negative error code returned instead of Status.
//
// Expected findings (pinned by tests/verify/check_corpus.py):
//   error-discipline x3
#include "util/error.hpp"

namespace drx::verify_corpus {

namespace {

Status spill_to_disk() { return Status::ok(); }

Result<int> parse_count() { return 3; }

}  // namespace

void ignore_spill_failure() {
  (void)spill_to_disk();  // seeded: discards Status
}

int unchecked_unwrap() {
  Result<int> r = parse_count();
  return r.value();  // seeded: no is_ok() dominator
}

int legacy_errno_style(bool ok) {
  if (ok) return 0;
  return -1;  // seeded: raw error code return
}

}  // namespace drx::verify_corpus
