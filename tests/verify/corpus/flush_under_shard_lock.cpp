// drx_verify seeded defect: blocking work under the shard domain.
//
// The hierarchy's `ShardPairLock` pattern is deliberately
// file-agnostic, so this TU's miniature pair-locker lands in
// cache.shard — a `May block = no` domain. Draining a pool and
// sleeping while it is held are exactly the serving-hot-path stalls
// the blocking-under-lock pass exists to forbid.
//
// Expected findings (pinned by tests/verify/check_corpus.py):
//   blocking-under-lock x2
#include <chrono>
#include <thread>

#include "util/sync.hpp"

namespace drx::verify_corpus {

class MiniPool {
 public:
  void flush() {}
};

// Same shape as core's pair-locker: both mutexes held for the scope.
class ShardPairLock {
 public:
  ShardPairLock(util::Mutex& a, util::Mutex& b)
      DRX_NO_THREAD_SAFETY_ANALYSIS : first_(a), second_(b) {
    first_.lock();
    second_.lock();
  }
  ~ShardPairLock() DRX_NO_THREAD_SAFETY_ANALYSIS {
    second_.unlock();
    first_.unlock();
  }
  ShardPairLock(const ShardPairLock&) = delete;
  ShardPairLock& operator=(const ShardPairLock&) = delete;

 private:
  util::Mutex& first_;
  util::Mutex& second_;
};

class ShardedCounters {
 public:
  void rebalance_and_flush() {
    ShardPairLock pair(mu_[0], mu_[1]);
    pool_.flush();  // seeded: drains write-behind under cache.shard
  }

  void throttled_rebalance() {
    ShardPairLock pair(mu_[0], mu_[1]);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1));  // seeded: sleeps under cache.shard
  }

 private:
  util::Mutex mu_[2];
  MiniPool pool_;
};

}  // namespace drx::verify_corpus
