// drx_verify seeded defect: an upward include edge.
//
// This TU reassigns itself into module `util` (layer 0) and then
// includes an `obs` (layer 1) header — includes must point strictly
// down the module DAG in docs/LOCK_ORDER.md §Layering.
// drx-verify: module(util)
//
// Expected findings (pinned by tests/verify/check_corpus.py):
//   layering x1
#include "obs/metrics.hpp"  // seeded: util (0) -> obs (1) is upward

namespace drx::verify_corpus {

const void* registry_identity() {
  return static_cast<const void*>(&obs::registry());
}

}  // namespace drx::verify_corpus
