// drx::serve session-layer tests (docs/SERVING.md): request round-trips
// through futures and completions, many sessions over few workers,
// extend serialized against in-flight traffic by the structure lock,
// error propagation, and the per-session counters that feed the
// drx_doctor session-starvation detector.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace drx::serve {
namespace {

using core::Box;
using core::DrxFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

constexpr std::size_t kElem = sizeof(double);

DrxFile make_file(Shape bounds, Shape chunk) {
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           std::move(bounds), std::move(chunk), options);
  EXPECT_TRUE(f.is_ok());
  return std::move(f).value();
}

std::vector<std::byte> doubles_bytes(const std::vector<double>& v) {
  std::vector<std::byte> out(v.size() * kElem);
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

Request write_req(Box box, std::vector<double> values) {
  Request req;
  req.type = RequestType::kWrite;
  req.box = std::move(box);
  req.data = doubles_bytes(values);
  return req;
}

Request read_req(Box box, std::span<std::byte> out) {
  Request req;
  req.type = RequestType::kRead;
  req.box = std::move(box);
  req.out = out;
  return req;
}

TEST(Serve, WriteThenReadRoundTripsThroughOneSession) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  Server server(file, Server::Options{});
  Session& s = server.open_session();

  const Box box{Index{2, 2}, Index{4, 4}};
  ASSERT_TRUE(s.submit(write_req(box, {1, 2, 3, 4})).get().is_ok());

  std::vector<std::byte> out(4 * kElem);
  ASSERT_TRUE(s.submit(read_req(box, out)).get().is_ok());
  std::vector<double> got(4);
  std::memcpy(got.data(), out.data(), out.size());
  EXPECT_EQ(got, (std::vector<double>{1, 2, 3, 4}));
  EXPECT_EQ(s.submitted(), 2u);
  EXPECT_EQ(s.completed(), 2u);
  EXPECT_EQ(s.failed(), 0u);
}

TEST(Serve, ManySessionsOverFewWorkersAllComplete) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});
  Server::Options options;
  options.workers = 2;
  Server server(file, options);

  constexpr int kSessions = 12;
  constexpr int kPerSession = 8;
  std::vector<Session*> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(&server.open_session());
  }
  EXPECT_EQ(server.sessions(), static_cast<std::size_t>(kSessions));

  std::atomic<int> completions{0};
  for (int i = 0; i < kSessions; ++i) {
    for (int j = 0; j < kPerSession; ++j) {
      const std::uint64_t r = static_cast<std::uint64_t>(i);
      const Box box{Index{r, 0}, Index{r + 1, 2}};
      sessions[static_cast<std::size_t>(i)]->submit(
          write_req(box, {static_cast<double>(i), static_cast<double>(j)}),
          [&completions](const Status& st) {
            EXPECT_TRUE(st.is_ok());
            completions.fetch_add(1, std::memory_order_relaxed);
          });
    }
  }
  server.drain();
  EXPECT_EQ(completions.load(), kSessions * kPerSession);
  for (Session* s : sessions) {
    EXPECT_EQ(s->completed(), static_cast<std::uint64_t>(kPerSession));
  }
  ASSERT_TRUE(server.flush().is_ok());
}

TEST(Serve, ExtendGrowsTheArrayUnderConcurrentTraffic) {
  DrxFile file = make_file(Shape{4, 4}, Shape{2, 2});
  Server::Options options;
  options.workers = 3;
  Server server(file, options);
  Session& traffic = server.open_session();
  Session& admin = server.open_session();

  // Keep reads and writes in flight while the array grows; the structure
  // lock must serialize the extend against all of them.
  std::vector<std::byte> out(4 * kElem);
  const Box small{Index{0, 0}, Index{2, 2}};
  for (int i = 0; i < 8; ++i) {
    traffic.submit(write_req(small, {1, 2, 3, 4}), [](const Status& st) {
      EXPECT_TRUE(st.is_ok());
    });
    traffic.submit(read_req(small, out), [](const Status& st) {
      EXPECT_TRUE(st.is_ok());
    });
  }
  Request grow;
  grow.type = RequestType::kExtend;
  grow.dim = 0;
  grow.delta = 4;
  ASSERT_TRUE(admin.submit(std::move(grow)).get().is_ok());
  server.drain();
  EXPECT_EQ(file.bounds()[0], 8u);

  // The grown region is addressable through the same server.
  const Box high{Index{6, 0}, Index{7, 2}};
  ASSERT_TRUE(admin.submit(write_req(high, {9, 9})).get().is_ok());
  std::vector<std::byte> out2(2 * kElem);
  ASSERT_TRUE(admin.submit(read_req(high, out2)).get().is_ok());
  double v = 0;
  std::memcpy(&v, out2.data(), sizeof(v));
  EXPECT_EQ(v, 9.0);
}

TEST(Serve, OutOfBoundsReadFailsTheFutureAndCountsAgainstTheSession) {
  DrxFile file = make_file(Shape{4, 4}, Shape{2, 2});
  Server server(file, Server::Options{});
  Session& s = server.open_session();
  std::vector<std::byte> out(4 * kElem);
  const Status st =
      s.submit(read_req(Box{Index{10, 10}, Index{12, 12}}, out)).get();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(s.failed(), 1u);
  EXPECT_EQ(s.completed(), 1u);
}

TEST(Serve, PrefetchRequestsCompleteAndWarmTheCache) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  Server server(file, Server::Options{});
  Session& s = server.open_session();
  Request pre;
  pre.type = RequestType::kPrefetch;
  pre.box = Box{Index{0, 0}, Index{8, 8}};
  ASSERT_TRUE(s.submit(std::move(pre)).get().is_ok());
  server.drain();
  std::vector<std::byte> out(4 * kElem);
  ASSERT_TRUE(
      s.submit(read_req(Box{Index{0, 0}, Index{2, 2}}, out)).get().is_ok());
}

TEST(Serve, PublishesSessionCompletionSpreadForTheDoctor) {
  obs::registry().reset();
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  {
    Server server(file, Server::Options{});
    Session& busy = server.open_session();
    (void)server.open_session();  // idle session: min should be 0
    std::vector<std::byte> out(4 * kElem);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          busy.submit(read_req(Box{Index{0, 0}, Index{2, 2}}, out))
              .get()
              .is_ok());
    }
  }  // ~Server publishes the spread
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_EQ(snap.counter("serve.sessions"), 2u);
  EXPECT_EQ(snap.counter("serve.session.completed_min"), 0u);
  EXPECT_EQ(snap.counter("serve.session.completed_max"), 4u);
  EXPECT_GE(snap.counter("serve.requests.completed"), 4u);
}

TEST(Serve, ServerDefaultsToShardedCache) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  Server server(file, Server::Options{});
  EXPECT_GE(server.array().cache().shard_count(), 2u);
}

}  // namespace
}  // namespace drx::serve
