#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "simpi/runtime.hpp"

namespace drx::simpi {
namespace {

TEST(Runtime, SingleRankRuns) {
  std::atomic<int> ran{0};
  run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Runtime, AllRanksRun) {
  std::atomic<int> mask{0};
  run(4, [&](Comm& comm) { mask |= 1 << comm.rank(); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(P2P, PingPong) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(99, 1, 7);
      EXPECT_EQ(comm.recv_value<int>(1, 8), 100);
    } else {
      int v = comm.recv_value<int>(0, 7);
      comm.send_value<int>(v + 1, 0, 8);
    }
  });
}

TEST(P2P, TagMatchingIsSelective) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 10);
      comm.send_value<int>(2, 1, 20);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(P2P, PairwiseOrderingIsFifo) {
  run(2, [](Comm& comm) {
    constexpr int kN = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send_value<int>(i, 1, 5);
    } else {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 5), i);
      }
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value<int>(comm.rank(), 0, comm.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        RecvStatus st;
        auto payload = comm.recv_any_size(kAnySource, kAnyTag, &st);
        int v = 0;
        ASSERT_EQ(payload.size(), sizeof(v));
        std::memcpy(&v, payload.data(), sizeof(v));
        EXPECT_EQ(st.source, v);
        EXPECT_EQ(st.tag, v);
        sum += v;
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(P2P, ProbeReportsSizeWithoutConsuming) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> payload(123, std::byte{7});
      comm.send(payload, 1, 3);
    } else {
      RecvStatus st = comm.probe(0, 3);
      EXPECT_EQ(st.bytes, 123u);
      EXPECT_EQ(st.source, 0);
      auto payload = comm.recv_any_size(0, 3);
      EXPECT_EQ(payload.size(), 123u);
    }
  });
}

TEST(P2P, SendrecvExchanges) {
  run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    int mine = comm.rank() + 10;
    int theirs = -1;
    comm.sendrecv(std::as_bytes(std::span<const int>(&mine, 1)), peer, 1,
                  std::as_writable_bytes(std::span<int>(&theirs, 1)), peer,
                  1);
    EXPECT_EQ(theirs, peer + 10);
  });
}

TEST(P2P, LargePayload) {
  run(2, [](Comm& comm) {
    constexpr std::size_t kN = 1 << 20;
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(kN);
      for (std::size_t i = 0; i < kN; ++i) {
        buf[i] = static_cast<std::byte>(i * 31 % 251);
      }
      comm.send(buf, 1, 0);
    } else {
      auto buf = comm.recv_any_size(0, 0);
      ASSERT_EQ(buf.size(), kN);
      for (std::size_t i = 0; i < kN; i += 4099) {
        EXPECT_EQ(buf[i], static_cast<std::byte>(i * 31 % 251));
      }
    }
  });
}

TEST(CommMgmt, DupSeparatesTraffic) {
  run(2, [](Comm& comm) {
    Comm dup = comm.dup();
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 0);
      dup.send_value<int>(2, 1, 0);
    } else {
      // The dup'ed communicator must not see the original's message.
      EXPECT_EQ(dup.recv_value<int>(0, 0), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 0), 1);
    }
  });
}

TEST(CommMgmt, SplitByParity) {
  run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 2);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Sum of world ranks within the sub-communicator.
    const int sum = sub.allreduce_value(comm.rank(), ReduceOp::kSum);
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 : 1 + 3);
  });
}

TEST(CommMgmt, SplitWithKeyReordersRanks) {
  run(3, [](Comm& comm) {
    // key = -rank reverses the ordering within the single color.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), 2 - comm.rank());
  });
}

}  // namespace
}  // namespace drx::simpi
