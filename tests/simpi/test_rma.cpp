#include "simpi/rma.hpp"

#include <gtest/gtest.h>

#include "simpi/runtime.hpp"

namespace drx::simpi {
namespace {

TEST(Rma, WindowSizes) {
  run(3, [](Comm& comm) {
    std::vector<std::byte> local(
        static_cast<std::size_t>(comm.rank() + 1) * 8);
    Window win(comm, local);
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(win.size_at(r), static_cast<std::uint64_t>(r + 1) * 8);
    }
    win.fence();
  });
}

TEST(Rma, GetReadsRemote) {
  run(4, [](Comm& comm) {
    std::vector<double> local(4, 100.0 * comm.rank());
    Window win(comm, std::as_writable_bytes(std::span<double>(local)));
    win.fence();
    const int peer = (comm.rank() + 1) % comm.size();
    double v = -1;
    win.get(peer, 2 * sizeof(double),
            std::as_writable_bytes(std::span<double>(&v, 1)));
    EXPECT_DOUBLE_EQ(v, 100.0 * peer);
    win.fence();
  });
}

TEST(Rma, PutWritesRemote) {
  run(4, [](Comm& comm) {
    std::vector<int> local(static_cast<std::size_t>(comm.size()), -1);
    Window win(comm, std::as_writable_bytes(std::span<int>(local)));
    win.fence();
    // Every rank writes its id into slot [my rank] of every peer.
    for (int r = 0; r < comm.size(); ++r) {
      const int v = comm.rank();
      win.put(r, static_cast<std::uint64_t>(comm.rank()) * sizeof(int),
              std::as_bytes(std::span<const int>(&v, 1)));
    }
    win.fence();
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(local[static_cast<std::size_t>(r)], r);
    }
  });
}

TEST(Rma, AccumulateSumsAtomically) {
  run(8, [](Comm& comm) {
    std::vector<std::int64_t> local(1, 0);
    Window win(comm, std::as_writable_bytes(std::span<std::int64_t>(local)));
    win.fence();
    // All ranks accumulate into rank 0 concurrently.
    constexpr int kIters = 250;
    for (int i = 0; i < kIters; ++i) {
      const std::int64_t one = 1;
      win.accumulate_sum<std::int64_t>(0, 0,
                                       std::span<const std::int64_t>(&one, 1));
    }
    win.fence();
    if (comm.rank() == 0) {
      EXPECT_EQ(local[0], static_cast<std::int64_t>(comm.size()) * kIters);
    }
  });
}

TEST(Rma, AccumulateVectorOfDoubles) {
  run(3, [](Comm& comm) {
    std::vector<double> local(4, 1.0);
    Window win(comm, std::as_writable_bytes(std::span<double>(local)));
    win.fence();
    const std::vector<double> delta = {0.5, 0.25};
    win.accumulate_sum<double>((comm.rank() + 1) % comm.size(),
                               sizeof(double),
                               std::span<const double>(delta));
    win.fence();
    EXPECT_DOUBLE_EQ(local[0], 1.0);
    EXPECT_DOUBLE_EQ(local[1], 1.5);
    EXPECT_DOUBLE_EQ(local[2], 1.25);
    EXPECT_DOUBLE_EQ(local[3], 1.0);
  });
}

TEST(Rma, OutOfRangeAccessAborts) {
  EXPECT_DEATH(run(2, [](Comm& comm) {
    std::vector<std::byte> local(8);
    Window win(comm, local);
    win.fence();
    if (comm.rank() == 0) {
      std::byte out[16];
      win.get(1, 0, out);  // 16 bytes from an 8-byte window
    }
    win.fence();
  }), "outside target window");
}

TEST(Rma, EmptyWindowParticipates) {
  run(2, [](Comm& comm) {
    std::vector<std::byte> local;
    if (comm.rank() == 0) local.resize(8, std::byte{42});
    Window win(comm, local);
    win.fence();
    if (comm.rank() == 1) {
      std::byte v{0};
      win.get(0, 7, std::span<std::byte>(&v, 1));
      EXPECT_EQ(v, std::byte{42});
    }
    win.fence();
  });
}

}  // namespace
}  // namespace drx::simpi
