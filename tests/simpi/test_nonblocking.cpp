#include <gtest/gtest.h>

#include <cstring>

#include "simpi/runtime.hpp"

namespace drx::simpi {
namespace {

TEST(Nonblocking, IrecvThenWait) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(77, 1, 4);
    } else {
      int v = 0;
      auto req = comm.irecv(std::as_writable_bytes(std::span<int>(&v, 1)),
                            0, 4);
      comm.wait(req);
      EXPECT_EQ(v, 77);
      EXPECT_EQ(req.status().source, 0);
      EXPECT_EQ(req.status().bytes, sizeof(int));
    }
  });
}

TEST(Nonblocking, TestPollsWithoutBlocking) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      int v = 0;
      auto req = comm.irecv(std::as_writable_bytes(std::span<int>(&v, 1)),
                            0, 9);
      // Nothing can have been sent yet (rank 0 blocks on the go message):
      // test must not block and must report pending.
      EXPECT_FALSE(comm.test(req));
      comm.send_value<int>(1, 0, 0);  // go
      // Spin until the message lands (bounded by the send's completion).
      while (!comm.test(req)) {
      }
      EXPECT_EQ(v, 5);
      EXPECT_TRUE(comm.test(req));  // idempotent once done
    } else {
      (void)comm.recv_value<int>(1, 0);  // wait for go
      comm.send_value<int>(5, 1, 9);
    }
  });
}

TEST(Nonblocking, PostedIrecvOrderIsByMatching) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 10);
      comm.send_value<int>(2, 1, 20);
    } else {
      int a = 0, b = 0;
      auto ra = comm.irecv(std::as_writable_bytes(std::span<int>(&a, 1)),
                           0, 20);
      auto rb = comm.irecv(std::as_writable_bytes(std::span<int>(&b, 1)),
                           0, 10);
      Comm::Request reqs[] = {std::move(ra), std::move(rb)};
      comm.wait_all(reqs);
      EXPECT_EQ(a, 2);
      EXPECT_EQ(b, 1);
    }
  });
}

TEST(Nonblocking, ManyOutstandingRequests) {
  run(4, [](Comm& comm) {
    constexpr int kN = 32;
    // Everyone sends kN ints to everyone (including self via peer loop).
    for (int d = 0; d < comm.size(); ++d) {
      if (d == comm.rank()) continue;
      for (int i = 0; i < kN; ++i) {
        comm.send_value<int>(comm.rank() * 1000 + i, d, i);
      }
    }
    std::vector<int> values(
        static_cast<std::size_t>((comm.size() - 1) * kN), -1);
    std::vector<Comm::Request> reqs;
    std::size_t slot = 0;
    for (int s = 0; s < comm.size(); ++s) {
      if (s == comm.rank()) continue;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(comm.irecv(
            std::as_writable_bytes(std::span<int>(&values[slot++], 1)), s,
            i));
      }
    }
    comm.wait_all(reqs);
    slot = 0;
    for (int s = 0; s < comm.size(); ++s) {
      if (s == comm.rank()) continue;
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(values[slot++], s * 1000 + i);
      }
    }
  });
}

TEST(Nonblocking, DroppingPendingRequestAborts) {
  EXPECT_DEATH(run(1, [](Comm& comm) {
    int v = 0;
    auto req = comm.irecv(std::as_writable_bytes(std::span<int>(&v, 1)),
                          kAnySource, kAnyTag);
    // req destroyed while pending.
  }), "pending");
}

}  // namespace
}  // namespace drx::simpi
