#include "simpi/datatype.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace drx::simpi {
namespace {

std::vector<std::byte> make_pattern(std::size_t n) {
  std::vector<std::byte> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::byte>(i * 13 % 251);
  }
  return buf;
}

TEST(Datatype, BytesBasics) {
  auto t = Datatype::bytes(8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.extent(), 8u);
  ASSERT_EQ(t.blocks().size(), 1u);
  EXPECT_EQ(t.blocks()[0], (Block{0, 8}));
  EXPECT_TRUE(t.is_monotonic());
}

TEST(Datatype, ZeroBytes) {
  auto t = Datatype::bytes(0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.blocks().empty());
}

TEST(Datatype, ContiguousCoalesces) {
  auto t = Datatype::contiguous(5, Datatype::bytes(4));
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.extent(), 20u);
  EXPECT_EQ(t.blocks().size(), 1u);  // adjacent runs merge
}

TEST(Datatype, VectorLayout) {
  // 3 blocks of 2 elements, stride 4 elements, element = 8 bytes.
  auto t = Datatype::vector(3, 2, 4, Datatype::bytes(8));
  EXPECT_EQ(t.size(), 48u);
  EXPECT_EQ(t.extent(), (2ull * 4 + 2) * 8);
  ASSERT_EQ(t.blocks().size(), 3u);
  EXPECT_EQ(t.blocks()[0], (Block{0, 16}));
  EXPECT_EQ(t.blocks()[1], (Block{32, 16}));
  EXPECT_EQ(t.blocks()[2], (Block{64, 16}));
}

TEST(Datatype, VectorStrideEqualBlocklenIsContiguous) {
  auto t = Datatype::vector(4, 2, 2, Datatype::bytes(1));
  EXPECT_EQ(t.blocks().size(), 1u);
  EXPECT_EQ(t.size(), 8u);
}

TEST(Datatype, IndexedPreservesDeclarationOrder) {
  // The paper's inMemoryMap pattern: declaration order 0,2,4,1,3,5.
  const std::uint64_t lens[] = {1, 1, 1, 1, 1, 1};
  const std::uint64_t displs[] = {0, 2, 4, 1, 3, 5};
  auto t = Datatype::indexed(lens, displs, Datatype::bytes(6));
  EXPECT_EQ(t.size(), 36u);
  EXPECT_FALSE(t.is_monotonic());
  ASSERT_EQ(t.blocks().size(), 6u);
  EXPECT_EQ(t.blocks()[0].offset, 0u);
  EXPECT_EQ(t.blocks()[1].offset, 12u);
  EXPECT_EQ(t.blocks()[3].offset, 6u);
}

TEST(Datatype, IndexedPackScattersInDeclarationOrder) {
  const std::uint64_t lens[] = {1, 1};
  const std::uint64_t displs[] = {1, 0};  // second block first in memory
  auto t = Datatype::indexed(lens, displs, Datatype::bytes(2));
  const auto mem = make_pattern(4);
  std::vector<std::byte> packed;
  t.pack(mem.data(), 1, packed);
  ASSERT_EQ(packed.size(), 4u);
  // Declaration order: block at offset 2 first, then offset 0.
  EXPECT_EQ(packed[0], mem[2]);
  EXPECT_EQ(packed[1], mem[3]);
  EXPECT_EQ(packed[2], mem[0]);
  EXPECT_EQ(packed[3], mem[1]);
}

TEST(Datatype, OverlappingBlocksAbort) {
  const std::uint64_t lens[] = {2, 1};
  const std::uint64_t displs[] = {0, 1};
  EXPECT_DEATH(
      (void)Datatype::indexed(lens, displs, Datatype::bytes(4)),
      "overlap");
}

TEST(Datatype, HindexedByteDisplacements) {
  const std::uint64_t lens[] = {2, 1};
  const std::uint64_t displs[] = {100, 7};
  auto t = Datatype::hindexed(lens, displs, Datatype::bytes(3));
  EXPECT_EQ(t.size(), 9u);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[0], (Block{100, 6}));
  EXPECT_EQ(t.blocks()[1], (Block{7, 3}));
  EXPECT_EQ(t.extent(), 106u);
}

TEST(Datatype, Subarray2DC) {
  // 4x6 array, 2x3 sub-block at (1,2), C order, 1-byte elements.
  const std::uint64_t sizes[] = {4, 6};
  const std::uint64_t subsizes[] = {2, 3};
  const std::uint64_t starts[] = {1, 2};
  auto t = Datatype::subarray(sizes, subsizes, starts, Order::kC,
                              Datatype::bytes(1));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 24u);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[0], (Block{8, 3}));   // row 1, cols 2..4
  EXPECT_EQ(t.blocks()[1], (Block{14, 3}));  // row 2, cols 2..4
}

TEST(Datatype, Subarray2DFortran) {
  const std::uint64_t sizes[] = {4, 6};
  const std::uint64_t subsizes[] = {2, 3};
  const std::uint64_t starts[] = {1, 2};
  auto t = Datatype::subarray(sizes, subsizes, starts, Order::kFortran,
                              Datatype::bytes(1));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 24u);
  // Fortran: columns contiguous with stride 4; runs of 2 at (1 + 4c).
  ASSERT_EQ(t.blocks().size(), 3u);
  EXPECT_EQ(t.blocks()[0], (Block{9, 2}));
  EXPECT_EQ(t.blocks()[1], (Block{13, 2}));
  EXPECT_EQ(t.blocks()[2], (Block{17, 2}));
}

TEST(Datatype, Subarray3DRoundTrip) {
  const std::uint64_t sizes[] = {3, 4, 5};
  const std::uint64_t subsizes[] = {2, 2, 3};
  const std::uint64_t starts[] = {1, 1, 1};
  auto t = Datatype::subarray(sizes, subsizes, starts, Order::kC,
                              Datatype::bytes(2));
  EXPECT_EQ(t.size(), 2u * 2 * 3 * 2);
  const auto mem = make_pattern(3 * 4 * 5 * 2);
  std::vector<std::byte> packed;
  t.pack(mem.data(), 1, packed);
  std::vector<std::byte> restored(mem.size(), std::byte{0});
  t.unpack(packed, 1, restored.data());
  // Every packed byte returns to its original position.
  for (const Block& b : t.blocks()) {
    for (std::uint64_t i = 0; i < b.length; ++i) {
      EXPECT_EQ(restored[b.offset + i], mem[b.offset + i]);
    }
  }
}

TEST(Datatype, SubarrayFullArrayIsContiguous) {
  const std::uint64_t sizes[] = {3, 4};
  const std::uint64_t zeros[] = {0, 0};
  auto t = Datatype::subarray(sizes, sizes, zeros, Order::kC,
                              Datatype::bytes(8));
  EXPECT_EQ(t.blocks().size(), 1u);
  EXPECT_EQ(t.size(), 96u);
}

TEST(Datatype, SubarrayOutOfBoundsAborts) {
  const std::uint64_t sizes[] = {3, 4};
  const std::uint64_t subsizes[] = {2, 2};
  const std::uint64_t starts[] = {2, 0};
  EXPECT_DEATH((void)Datatype::subarray(sizes, subsizes, starts, Order::kC,
                                        Datatype::bytes(1)),
               "exceeds");
}

TEST(Datatype, PackUnpackMultipleItems) {
  auto t = Datatype::vector(2, 1, 2, Datatype::bytes(4));  // 8 payload/item
  const auto mem = make_pattern(64);
  std::vector<std::byte> packed;
  t.pack(mem.data(), 3, packed);
  ASSERT_EQ(packed.size(), 24u);
  std::vector<std::byte> restored(64, std::byte{0xFF});
  t.unpack(packed, 3, restored.data());
  std::vector<std::byte> repacked;
  t.pack(restored.data(), 3, repacked);
  EXPECT_EQ(repacked, packed);
}

TEST(Datatype, ResizedChangesExtentOnly) {
  auto t = Datatype::bytes(4).resized(16);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.extent(), 16u);
  auto c = Datatype::contiguous(2, t);
  ASSERT_EQ(c.blocks().size(), 2u);
  EXPECT_EQ(c.blocks()[1].offset, 16u);
}

TEST(Datatype, SpanBytes) {
  auto t = Datatype::vector(2, 1, 3, Datatype::bytes(4));
  // blocks at 0 and 12, extent (1*3+1)*4=16.
  EXPECT_EQ(t.span_bytes(1), 16u);
  EXPECT_EQ(t.span_bytes(2), 16u + 16u);
  EXPECT_EQ(t.span_bytes(0), 0u);
}

TEST(Datatype, NestedComposition) {
  // A vector of subarray rows: exercise composition depth.
  const std::uint64_t sizes[] = {4, 4};
  const std::uint64_t subsizes[] = {1, 2};
  const std::uint64_t starts[] = {0, 1};
  auto row = Datatype::subarray(sizes, subsizes, starts, Order::kC,
                                Datatype::bytes(1));
  auto t = Datatype::contiguous(2, row);
  EXPECT_EQ(t.size(), 4u);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[0], (Block{1, 2}));
  EXPECT_EQ(t.blocks()[1], (Block{17, 2}));
}

}  // namespace
}  // namespace drx::simpi
