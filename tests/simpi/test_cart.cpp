#include "simpi/cart.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace drx::simpi {
namespace {

TEST(DimsCreate, FactorsAreBalancedAndExact) {
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 24, 36, 64, 100}) {
    for (int k : {1, 2, 3}) {
      auto dims = dims_create(n, k);
      ASSERT_EQ(dims.size(), static_cast<std::size_t>(k));
      int prod = 1;
      for (int d : dims) prod *= d;
      EXPECT_EQ(prod, n) << "n=" << n << " k=" << k;
      // Sorted descending.
      EXPECT_TRUE(std::is_sorted(dims.rbegin(), dims.rend()));
    }
  }
}

TEST(DimsCreate, KnownShapes) {
  EXPECT_EQ(dims_create(4, 2), (std::vector<int>{2, 2}));
  EXPECT_EQ(dims_create(6, 2), (std::vector<int>{3, 2}));
  EXPECT_EQ(dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(dims_create(7, 2), (std::vector<int>{7, 1}));
}

TEST(Cart, CoordsRankRoundTrip) {
  const std::vector<int> dims = {3, 4, 2};
  for (int r = 0; r < 24; ++r) {
    auto coords = cart_coords(r, dims);
    EXPECT_EQ(cart_rank(coords, dims), r);
  }
}

TEST(Cart, RowMajorOrdering) {
  const std::vector<int> dims = {2, 3};
  EXPECT_EQ(cart_coords(0, dims), (std::vector<int>{0, 0}));
  EXPECT_EQ(cart_coords(1, dims), (std::vector<int>{0, 1}));
  EXPECT_EQ(cart_coords(3, dims), (std::vector<int>{1, 0}));
  EXPECT_EQ(cart_coords(5, dims), (std::vector<int>{1, 2}));
}

TEST(Cart, OutOfGridAborts) {
  const std::vector<int> dims = {2, 2};
  EXPECT_DEATH((void)cart_coords(4, dims), "outside");
  EXPECT_DEATH((void)cart_rank({2, 0}, dims), "check failed");
}

}  // namespace
}  // namespace drx::simpi
