// Datatype fuzzing: random non-overlapping hindexed layouts must satisfy
// pack/unpack identities and agree with a naive reference gather/scatter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "simpi/datatype.hpp"
#include "util/rng.hpp"

namespace drx::simpi {
namespace {

struct Layout {
  std::vector<std::uint64_t> lens;
  std::vector<std::uint64_t> displs;  // bytes
  std::uint64_t footprint = 0;
};

/// Random non-overlapping byte blocks in declaration-shuffled order.
Layout random_layout(SplitMix64& rng) {
  const std::size_t nblocks = static_cast<std::size_t>(rng.next_in(1, 12));
  Layout out;
  std::uint64_t cursor = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;
  for (std::size_t i = 0; i < nblocks; ++i) {
    cursor += rng.next_below(16);  // gap
    const std::uint64_t len = rng.next_in(1, 24);
    blocks.emplace_back(cursor, len);
    cursor += len;
  }
  out.footprint = cursor;
  // Shuffle declaration order (memory types may be non-monotonic).
  for (std::size_t i = blocks.size(); i > 1; --i) {
    std::swap(blocks[i - 1], blocks[rng.next_below(i)]);
  }
  for (const auto& [d, l] : blocks) {
    out.displs.push_back(d);
    out.lens.push_back(l);
  }
  return out;
}

class DatatypeFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatatypeFuzzP, PackMatchesNaiveGather) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const Layout layout = random_layout(rng);
    auto t = Datatype::hindexed(layout.lens, layout.displs,
                                Datatype::bytes(1));
    const std::uint64_t count = rng.next_in(1, 4);

    std::vector<std::byte> memory(
        static_cast<std::size_t>(t.span_bytes(count) + 8));
    for (auto& b : memory) b = static_cast<std::byte>(rng.next() & 0xFF);

    // Naive gather in declaration order.
    std::vector<std::byte> expect;
    for (std::uint64_t item = 0; item < count; ++item) {
      for (std::size_t i = 0; i < layout.lens.size(); ++i) {
        const std::uint64_t base = item * t.extent() + layout.displs[i];
        for (std::uint64_t j = 0; j < layout.lens[i]; ++j) {
          expect.push_back(memory[static_cast<std::size_t>(base + j)]);
        }
      }
    }

    std::vector<std::byte> packed;
    t.pack(memory.data(), count, packed);
    ASSERT_EQ(packed, expect) << "seed " << GetParam() << " round " << round;

    // unpack(pack(x)) restores every covered byte.
    std::vector<std::byte> scratch(memory.size(), std::byte{0xEE});
    t.unpack(packed, count, scratch.data());
    for (std::uint64_t item = 0; item < count; ++item) {
      for (std::size_t i = 0; i < layout.lens.size(); ++i) {
        const std::uint64_t base = item * t.extent() + layout.displs[i];
        for (std::uint64_t j = 0; j < layout.lens[i]; ++j) {
          ASSERT_EQ(scratch[static_cast<std::size_t>(base + j)],
                    memory[static_cast<std::size_t>(base + j)]);
        }
      }
    }

    // size() == sum of lens; blocks cover size bytes.
    const std::uint64_t sum =
        std::accumulate(layout.lens.begin(), layout.lens.end(),
                        std::uint64_t{0});
    EXPECT_EQ(t.size(), sum);
    EXPECT_EQ(packed.size(), sum * count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatatypeFuzzP,
                         ::testing::Range<std::uint64_t>(5000, 5010));

}  // namespace
}  // namespace drx::simpi
