#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "simpi/runtime.hpp"

namespace drx::simpi {
namespace {

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BarrierSynchronizes) {
  const int p = GetParam();
  std::atomic<int> before{0};
  run(p, [&](Comm& comm) {
    ++before;
    comm.barrier();
    // After the barrier every rank's increment must be visible.
    EXPECT_EQ(before.load(), comm.size());
    comm.barrier();
  });
}

TEST_P(CollectivesP, BcastFromEveryRoot) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::uint64_t v = comm.rank() == root ? 1000u + static_cast<unsigned>(root) : 0u;
      comm.bcast_value(v, root);
      EXPECT_EQ(v, 1000u + static_cast<unsigned>(root));
    }
  });
}

TEST_P(CollectivesP, BcastVectorResizes) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<std::byte> data;
    if (comm.rank() == 0) data.assign(37, std::byte{5});
    comm.bcast_vector(data, 0);
    ASSERT_EQ(data.size(), 37u);
    EXPECT_EQ(data[36], std::byte{5});
  });
}

TEST_P(CollectivesP, AllreduceSumMinMax) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    const int n = comm.size();
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce_value(r, ReduceOp::kSum), n * (n - 1) / 2);
    EXPECT_EQ(comm.allreduce_value(r, ReduceOp::kMin), 0);
    EXPECT_EQ(comm.allreduce_value(r, ReduceOp::kMax), n - 1);
  });
}

TEST_P(CollectivesP, AllreduceVectorDoubles) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<double> in = {1.0 * comm.rank(), 2.0, -1.0 * comm.rank()};
    std::vector<double> out(3);
    comm.allreduce(std::span<const double>(in), std::span<double>(out),
                   ReduceOp::kSum);
    const double s = comm.size() * (comm.size() - 1) / 2.0;
    EXPECT_DOUBLE_EQ(out[0], s);
    EXPECT_DOUBLE_EQ(out[1], 2.0 * comm.size());
    EXPECT_DOUBLE_EQ(out[2], -s);
  });
}

TEST_P(CollectivesP, GatherAndAllgather) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    auto all = comm.allgather_value<int>(comm.rank() * 3);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
    }
  });
}

TEST_P(CollectivesP, GathervVariableSizes) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank()) + 1,
                                static_cast<std::byte>(comm.rank()));
    auto gathered = comm.gatherv_bytes(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r) + 1);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(CollectivesP, AllgathervEveryoneSeesAll) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank()) * 2,
                                static_cast<std::byte>(comm.rank() + 1));
    auto gathered = comm.allgatherv_bytes(mine);
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      const auto& chunk = gathered[static_cast<std::size_t>(r)];
      EXPECT_EQ(chunk.size(), static_cast<std::size_t>(r) * 2);
      for (std::byte b : chunk) {
        EXPECT_EQ(b, static_cast<std::byte>(r + 1));
      }
    }
  });
}

TEST_P(CollectivesP, ScattervDistributes) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<std::vector<std::byte>> chunks;
    if (comm.rank() == 0) {
      for (int r = 0; r < comm.size(); ++r) {
        chunks.emplace_back(static_cast<std::size_t>(r) + 2,
                            static_cast<std::byte>(r * 7));
      }
    }
    auto mine = comm.scatterv_bytes(chunks, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(comm.rank()) + 2);
    for (std::byte b : mine) {
      EXPECT_EQ(b, static_cast<std::byte>(comm.rank() * 7));
    }
  });
}

TEST_P(CollectivesP, AlltoallvFullExchange) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    // Rank r sends (r*size + d) as a one-int buffer to destination d.
    std::vector<std::vector<std::byte>> send(
        static_cast<std::size_t>(comm.size()));
    for (int d = 0; d < comm.size(); ++d) {
      const int v = comm.rank() * comm.size() + d;
      send[static_cast<std::size_t>(d)].resize(sizeof(int));
      std::memcpy(send[static_cast<std::size_t>(d)].data(), &v, sizeof(v));
    }
    auto recv = comm.alltoallv_bytes(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(comm.size()));
    for (int s = 0; s < comm.size(); ++s) {
      int v = -1;
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), sizeof(v));
      std::memcpy(&v, recv[static_cast<std::size_t>(s)].data(), sizeof(v));
      EXPECT_EQ(v, s * comm.size() + comm.rank());
    }
  });
}

TEST_P(CollectivesP, ScanSumIsInclusivePrefix) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    const std::uint64_t r = static_cast<std::uint64_t>(comm.rank());
    EXPECT_EQ(comm.scan_sum_u64(r + 1),
              (r + 1) * (r + 2) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(Collectives, ReduceToNonZeroRoot) {
  run(4, [](Comm& comm) {
    const double in = 1.5;
    double out = 0;
    auto sum = [](std::byte* dst, const std::byte* src) {
      double a, b;
      std::memcpy(&a, dst, sizeof(a));
      std::memcpy(&b, src, sizeof(b));
      a += b;
      std::memcpy(dst, &a, sizeof(a));
    };
    comm.reduce_bytes(std::as_bytes(std::span<const double>(&in, 1)),
                      comm.rank() == 2
                          ? std::as_writable_bytes(std::span<double>(&out, 1))
                          : std::span<std::byte>(),
                      sizeof(double), sum, 2);
    if (comm.rank() == 2) {
      EXPECT_DOUBLE_EQ(out, 6.0);
    }
  });
}

}  // namespace
}  // namespace drx::simpi
