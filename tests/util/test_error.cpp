#include "util/error.hpp"

#include <gtest/gtest.h>

namespace drx {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "missing file");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.to_string(), "not-found: missing file");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(ErrorCode::kIoError, "disk died");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status helper_propagates(bool fail) {
  DRX_RETURN_IF_ERROR(fail ? Status(ErrorCode::kInternal, "boom")
                           : Status::ok());
  return Status::ok();
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helper_propagates(false).is_ok());
  EXPECT_EQ(helper_propagates(true).code(), ErrorCode::kInternal);
}

Result<int> make_value(bool fail) {
  if (fail) return Status(ErrorCode::kOutOfRange, "nope");
  return 5;
}

Status helper_assign(bool fail, int* out) {
  DRX_ASSIGN_OR_RETURN(int v, make_value(fail));
  *out = v;
  return Status::ok();
}

TEST(Macros, AssignOrReturn) {
  int v = 0;
  EXPECT_TRUE(helper_assign(false, &v).is_ok());
  EXPECT_EQ(v, 5);
  EXPECT_EQ(helper_assign(true, &v).code(), ErrorCode::kOutOfRange);
}

TEST(Macros, CheckAbortsOnFailure) {
  EXPECT_DEATH({ DRX_CHECK(1 == 2); }, "check failed");
}

}  // namespace
}  // namespace drx
