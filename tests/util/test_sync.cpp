// Behavioral tests for the annotated sync primitives (util/sync.hpp).
//
// The thread-safety annotations themselves are verified at compile time
// by clang (-Wthread-safety, CI job `thread-safety`); these tests pin the
// runtime semantics the annotated wrappers promise: mutual exclusion,
// relockable MutexLock windows, CondVar wakeups, and shared/exclusive
// reader-writer behavior — so a wrapper refactor cannot silently change
// what the primitives do while keeping the annotations green.

#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace drx::util {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter DRX_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.lock();
  std::atomic<bool> acquired{true};
  std::thread probe([&] {
    if (mu.try_lock()) {
      mu.unlock();
    } else {
      acquired = false;
    }
  });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLockTest, UnlockReopensTheMutexAndRelockCloses) {
  Mutex mu;
  MutexLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());

  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  // Another thread can take the mutex inside the unlocked window.
  std::thread other([&] {
    MutexLock inner(mu);
  });
  other.join();

  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(MutexLockTest, DestructorReleasesEvenAfterManualRelock) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
    lock.lock();
  }
  // If the destructor leaked the lock this try_lock would fail.
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(CondVarTest, PredicateWaitSeesGuardedWrite) {
  Mutex mu;
  CondVar cv;
  bool ready DRX_GUARDED_BY(mu) = false;

  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });

  {
    MutexLock lock(mu);
    cv.wait(lock, [&] {
      mu.assert_held();
      return ready;
    });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool woke = cv.wait_for(lock, std::chrono::milliseconds(10),
                                [] { return false; });
  EXPECT_FALSE(woke);
  EXPECT_TRUE(lock.owns_lock());  // wait_for reacquires before returning
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  int value DRX_GUARDED_BY(mu) = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent{0};
  constexpr int kReaders = 4;

  {
    // Hold a reader lock on this thread; other readers must still enter.
    ReaderMutexLock outer(mu);
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&] {
        ReaderMutexLock r(mu);
        const int now = concurrent_readers.fetch_add(1) + 1;
        int prev = max_concurrent.load();
        while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
        }
        EXPECT_EQ(value, 0);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        concurrent_readers.fetch_sub(1);
      });
    }
    for (std::thread& r : readers) r.join();
    EXPECT_GE(max_concurrent.load(), 2) << "readers never overlapped";
  }

  {
    WriterMutexLock w(mu);
    value = 42;
  }
  ReaderMutexLock r(mu);
  EXPECT_EQ(value, 42);
}

TEST(SharedMutexTest, WriterWaitsForReader) {
  SharedMutex mu;
  std::atomic<bool> writer_done{false};
  std::thread writer;
  {
    ReaderMutexLock r(mu);
    writer = std::thread([&] {
      WriterMutexLock w(mu);
      writer_done = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(writer_done) << "writer entered while a reader held mu";
    // ~ReaderMutexLock releases the shared hold, letting the writer in.
  }
  writer.join();
  EXPECT_TRUE(writer_done);
}

}  // namespace
}  // namespace drx::util
