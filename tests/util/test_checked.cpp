#include "util/checked.hpp"

#include <gtest/gtest.h>

namespace drx {
namespace {

TEST(Checked, MulBasics) {
  EXPECT_EQ(checked_mul(0, 0), 0u);
  EXPECT_EQ(checked_mul(1ULL << 32, 1ULL << 31), 1ULL << 63);
}

TEST(Checked, MulOverflowAborts) {
  EXPECT_DEATH((void)checked_mul(1ULL << 33, 1ULL << 33), "overflow");
}

TEST(Checked, AddBasicsAndOverflow) {
  EXPECT_EQ(checked_add(UINT64_MAX - 1, 1), UINT64_MAX);
  EXPECT_DEATH((void)checked_add(UINT64_MAX, 1), "overflow");
}

TEST(Checked, ProductEmptyIsOne) {
  EXPECT_EQ(checked_product({}), 1u);
}

TEST(Checked, ProductOfDims) {
  const std::uint64_t dims[] = {3, 4, 5};
  EXPECT_EQ(checked_product(dims), 60u);
}

TEST(Checked, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(10, 2), 5u);
  EXPECT_DEATH((void)ceil_div(1, 0), "check failed");
}

}  // namespace
}  // namespace drx
