#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <string>

namespace drx {
namespace {

/// Restores the level a test found so the aggregated binary stays
/// order-independent.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }

 private:
  LogLevel saved_ = LogLevel::kOff;
};

TEST_F(LoggingTest, SetLogLevelOverridesImmediately) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  // Repeated reads keep returning the override (the original bug: the env
  // value was latched once and later overrides were ignored).
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, MacroEmitsAtOrBelowCurrentLevel) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  DRX_LOG_ERROR << "error-visible";
  DRX_LOG_WARN << "warn-visible";
  DRX_LOG_INFO << "info-hidden";
  DRX_LOG_DEBUG << "debug-hidden";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("error-visible"), std::string::npos);
  EXPECT_NE(err.find("warn-visible"), std::string::npos);
  EXPECT_EQ(err.find("info-hidden"), std::string::npos);
  EXPECT_EQ(err.find("debug-hidden"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  DRX_LOG_ERROR << "silent";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, MessagesCarryLevelTag) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  DRX_LOG_INFO << "tagged";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("tagged"), std::string::npos);
  EXPECT_NE(err.find("[drx I]"), std::string::npos);
}

}  // namespace
}  // namespace drx
