#include "util/serde.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace drx {
namespace {

TEST(Serde, RoundTripPrimitives) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.141592653589793);
  w.put_string("extendible");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 0xAB);
  EXPECT_EQ(r.get_u32().value(), 0xDEADBEEF);
  EXPECT_EQ(r.get_u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64().value(), 3.141592653589793);
  EXPECT_EQ(r.get_string().value(), "extendible");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  auto bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 0x01);
}

TEST(Serde, ExtremeValues) {
  ByteWriter w;
  w.put_u64(std::numeric_limits<std::uint64_t>::max());
  w.put_i64(std::numeric_limits<std::int64_t>::min());
  w.put_f64(-0.0);
  w.put_string("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u64().value(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.get_i64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.get_f64().value(), 0.0);
  EXPECT_EQ(r.get_string().value(), "");
}

TEST(Serde, TruncationIsAnError) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_u32().is_ok());
  auto res = r.get_u64();
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorrupt);
}

TEST(Serde, TruncatedStringIsAnError) {
  ByteWriter w;
  w.put_u32(100);  // length prefix promising 100 bytes that never follow
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string().status().code(), ErrorCode::kCorrupt);
}

TEST(Serde, GetBytesExactAndShort) {
  ByteWriter w;
  const std::byte payload[] = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(payload);
  ByteReader r(w.bytes());
  std::byte out[3];
  EXPECT_TRUE(r.get_bytes(out).is_ok());
  EXPECT_EQ(std::to_integer<int>(out[2]), 3);
  std::byte more[1];
  EXPECT_FALSE(r.get_bytes(more).is_ok());
}

TEST(Serde, TakeMovesBuffer) {
  ByteWriter w;
  w.put_u8(9);
  std::vector<std::byte> buf = std::move(w).take();
  EXPECT_EQ(buf.size(), 1u);
}

}  // namespace
}  // namespace drx
