#include "pfs/block_device.hpp"

#include <gtest/gtest.h>

namespace drx::pfs {
namespace {

CostModel test_model() {
  CostModel m;
  m.seek_us = 1000;
  m.disk_per_byte_us = 1;
  m.request_overhead_us = 10;
  m.network_latency_us = 0;
  m.network_per_byte_us = 0;
  return m;
}

TEST(BlockDevice, WriteThenReadBack) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  std::vector<std::byte> data(16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(dev.write(0, data).is_ok());
  std::vector<std::byte> out(16);
  ASSERT_TRUE(dev.read(0, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(dev.size(), 16u);
}

TEST(BlockDevice, ReadPastEndFails) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  std::vector<std::byte> out(4);
  EXPECT_EQ(dev.read(0, out).code(), ErrorCode::kOutOfRange);
  ASSERT_TRUE(dev.write(0, out).is_ok());
  EXPECT_EQ(dev.read(1, out).code(), ErrorCode::kOutOfRange);
}

TEST(BlockDevice, SparseWriteZeroFillsGap) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  const std::byte one[] = {std::byte{0xAA}};
  ASSERT_TRUE(dev.write(100, one).is_ok());
  EXPECT_EQ(dev.size(), 101u);
  std::vector<std::byte> out(101);
  ASSERT_TRUE(dev.read(0, out).is_ok());
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_EQ(out[99], std::byte{0});
  EXPECT_EQ(out[100], std::byte{0xAA});
}

TEST(BlockDevice, SequentialAccessAvoidsSeeks) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  std::vector<std::byte> slab(64);
  // First write from offset 0: head starts at 0, no seek.
  ASSERT_TRUE(dev.write(0, slab).is_ok());
  ASSERT_TRUE(dev.write(64, slab).is_ok());
  ASSERT_TRUE(dev.write(128, slab).is_ok());
  EXPECT_EQ(dev.stats().seeks, 0u);
  // Jump back: one seek.
  ASSERT_TRUE(dev.write(0, slab).is_ok());
  EXPECT_EQ(dev.stats().seeks, 1u);
}

TEST(BlockDevice, CostAccounting) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  std::vector<std::byte> slab(100);
  ASSERT_TRUE(dev.write(0, slab).is_ok());
  // No seek (head at 0), 10 overhead + 100 bytes * 1us.
  EXPECT_DOUBLE_EQ(dev.stats().busy_us, 110.0);
  std::vector<std::byte> out(50);
  ASSERT_TRUE(dev.read(0, out).is_ok());
  // Head was at 100 -> seek 1000 + 10 + 50.
  EXPECT_DOUBLE_EQ(dev.stats().busy_us, 110.0 + 1060.0);
  EXPECT_EQ(dev.stats().bytes_written, 100u);
  EXPECT_EQ(dev.stats().bytes_read, 50u);
  EXPECT_EQ(dev.stats().read_requests, 1u);
  EXPECT_EQ(dev.stats().write_requests, 1u);
}

TEST(BlockDevice, TruncateShrinksAndClampsHead) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  std::vector<std::byte> slab(128, std::byte{1});
  ASSERT_TRUE(dev.write(0, slab).is_ok());
  ASSERT_TRUE(dev.truncate(64).is_ok());
  EXPECT_EQ(dev.size(), 64u);
  std::vector<std::byte> out(64);
  ASSERT_TRUE(dev.read(0, out).is_ok());
  EXPECT_EQ(dev.read(1, out).code(), ErrorCode::kOutOfRange);
}

TEST(BlockDevice, TruncateGrowsWithZeros) {
  const CostModel m = test_model();
  BlockDevice dev(&m);
  const std::byte one[] = {std::byte{9}};
  ASSERT_TRUE(dev.write(0, one).is_ok());
  ASSERT_TRUE(dev.truncate(10).is_ok());
  std::vector<std::byte> out(10);
  ASSERT_TRUE(dev.read(0, out).is_ok());
  EXPECT_EQ(out[0], std::byte{9});
  EXPECT_EQ(out[9], std::byte{0});
}

}  // namespace
}  // namespace drx::pfs
