#include "pfs/storage.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.hpp"

namespace drx::pfs {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed = 3) {
  SplitMix64 rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xFF);
  return buf;
}

/// The Storage contract, run against every implementation.
void exercise_storage(Storage& s) {
  EXPECT_EQ(s.size(), 0u);
  const auto data = pattern(200);
  ASSERT_TRUE(s.write_at(0, data).is_ok());
  EXPECT_EQ(s.size(), 200u);
  std::vector<std::byte> out(200);
  ASSERT_TRUE(s.read_at(0, out).is_ok());
  EXPECT_EQ(out, data);

  // Partial read at offset.
  std::vector<std::byte> part(50);
  ASSERT_TRUE(s.read_at(100, part).is_ok());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(part[i], data[100 + i]);

  // Sparse write beyond EOF zero-fills.
  const std::byte one[] = {std::byte{0x7F}};
  ASSERT_TRUE(s.write_at(300, one).is_ok());
  EXPECT_EQ(s.size(), 301u);
  std::vector<std::byte> gap(100);
  ASSERT_TRUE(s.read_at(200, gap).is_ok());
  for (std::byte b : gap) EXPECT_EQ(b, std::byte{0});

  // Read past EOF errors.
  std::vector<std::byte> over(2);
  EXPECT_FALSE(s.read_at(300, over).is_ok());

  EXPECT_TRUE(s.flush().is_ok());
}

TEST(MemStorage, Contract) {
  MemStorage s;
  exercise_storage(s);
}

TEST(MemStorage, TracksStats) {
  MemStorage s;
  ASSERT_TRUE(s.write_at(0, pattern(64)).is_ok());
  EXPECT_EQ(s.stats().bytes_written, 64u);
  EXPECT_EQ(s.stats().write_requests, 1u);
}

TEST(PosixStorage, Contract) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drx_storage_test.bin")
          .string();
  std::remove(path.c_str());
  auto s = PosixStorage::open(path);
  ASSERT_TRUE(s.is_ok());
  exercise_storage(*s.value());
  std::remove(path.c_str());
}

TEST(PosixStorage, PersistsAcrossReopen) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drx_storage_persist.bin")
          .string();
  std::remove(path.c_str());
  const auto data = pattern(77);
  {
    auto s = PosixStorage::open(path);
    ASSERT_TRUE(s.is_ok());
    ASSERT_TRUE(s.value()->write_at(0, data).is_ok());
    ASSERT_TRUE(s.value()->flush().is_ok());
  }
  {
    auto s = PosixStorage::open(path);
    ASSERT_TRUE(s.is_ok());
    EXPECT_EQ(s.value()->size(), 77u);
    std::vector<std::byte> out(77);
    ASSERT_TRUE(s.value()->read_at(0, out).is_ok());
    EXPECT_EQ(out, data);
  }
  std::remove(path.c_str());
}

TEST(PfsStorage, Contract) {
  PfsConfig cfg;
  cfg.num_servers = 3;
  cfg.stripe_size = 32;
  Pfs fs(cfg);
  PfsStorage s(fs.create("x").value());
  exercise_storage(s);
}

}  // namespace
}  // namespace drx::pfs
