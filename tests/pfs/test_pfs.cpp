#include "pfs/pfs.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/rng.hpp"

namespace drx::pfs {
namespace {

PfsConfig small_config(int servers = 4, std::uint64_t stripe = 16) {
  PfsConfig cfg;
  cfg.num_servers = servers;
  cfg.stripe_size = stripe;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed = 1) {
  SplitMix64 rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xFF);
  return buf;
}

TEST(Pfs, NamespaceOperations) {
  Pfs fs(small_config());
  EXPECT_FALSE(fs.exists("a"));
  ASSERT_TRUE(fs.create("a").is_ok());
  EXPECT_TRUE(fs.exists("a"));
  EXPECT_EQ(fs.create("a").status().code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(fs.create("a", /*overwrite=*/true).is_ok());
  ASSERT_TRUE(fs.create("b").is_ok());
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(fs.remove("a").is_ok());
  EXPECT_EQ(fs.remove("zzz").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs.open("zzz").status().code(), ErrorCode::kNotFound);
}

TEST(Pfs, WriteReadRoundTripAcrossStripes) {
  Pfs fs(small_config(3, 10));
  auto f = fs.create("f").value();
  const auto data = pattern(95);
  ASSERT_TRUE(f.write_at(0, data).is_ok());
  EXPECT_EQ(f.size(), 95u);
  std::vector<std::byte> out(95);
  ASSERT_TRUE(f.read_at(0, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(Pfs, UnalignedOffsetsRoundTrip) {
  Pfs fs(small_config(4, 8));
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.write_at(0, pattern(256, 7)).is_ok());
  // Overwrite a range crossing several stripe boundaries at odd offsets.
  const auto patch = pattern(51, 9);
  ASSERT_TRUE(f.write_at(13, patch).is_ok());
  std::vector<std::byte> out(51);
  ASSERT_TRUE(f.read_at(13, out).is_ok());
  EXPECT_EQ(out, patch);
}

TEST(Pfs, ReadPastEofFails) {
  Pfs fs(small_config());
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.write_at(0, pattern(10)).is_ok());
  std::vector<std::byte> out(11);
  EXPECT_EQ(f.read_at(0, out).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(f.read_at(10, std::span<std::byte>(out).first(1)).code(),
            ErrorCode::kOutOfRange);
}

TEST(Pfs, StripingBalancesBytesAcrossServers) {
  Pfs fs(small_config(4, 16));
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.write_at(0, pattern(16 * 4 * 10)).is_ok());
  const auto stats = fs.server_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.bytes_written, 16u * 10);
  }
}

TEST(Pfs, SequentialWholeFileWriteIsOneRequestPerServer) {
  Pfs fs(small_config(4, 16));
  auto f = fs.create("f").value();
  // One 256-byte write: per server the stripes are locally contiguous, so
  // the client coalesces them into a single request per server.
  ASSERT_TRUE(f.write_at(0, pattern(256)).is_ok());
  for (const auto& s : fs.server_stats()) {
    EXPECT_EQ(s.write_requests, 1u);
    EXPECT_EQ(s.seeks, 0u);
  }
}

TEST(Pfs, ScatteredAccessCausesSeeks) {
  Pfs fs(small_config(1, 16));
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.write_at(0, pattern(1024)).is_ok());
  auto before = fs.server_stats();
  std::vector<std::byte> out(8);
  // Backwards reads force a seek each time on the single server.
  ASSERT_TRUE(f.read_at(512, out).is_ok());
  ASSERT_TRUE(f.read_at(256, out).is_ok());
  ASSERT_TRUE(f.read_at(0, out).is_ok());
  auto after = fs.server_stats();
  EXPECT_EQ(after[0].seeks - before[0].seeks, 3u);
}

TEST(Pfs, PhaseElapsedIsMaxServerDelta) {
  Pfs fs(small_config(2, 16));
  auto f = fs.create("f").value();
  auto before = fs.server_stats();
  // 16 bytes land entirely on server 0.
  ASSERT_TRUE(f.write_at(0, pattern(16)).is_ok());
  auto after = fs.server_stats();
  const double elapsed = Pfs::phase_elapsed_us(before, after);
  EXPECT_GT(elapsed, 0.0);
  EXPECT_DOUBLE_EQ(elapsed, after[0].busy_us - before[0].busy_us);
}

TEST(Pfs, TruncateGrowZeroFills) {
  Pfs fs(small_config(3, 8));
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.write_at(0, pattern(8)).is_ok());
  ASSERT_TRUE(f.truncate(64).is_ok());
  EXPECT_EQ(f.size(), 64u);
  std::vector<std::byte> out(56);
  ASSERT_TRUE(f.read_at(8, out).is_ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(Pfs, TruncateShrink) {
  Pfs fs(small_config(3, 8));
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.write_at(0, pattern(100)).is_ok());
  ASSERT_TRUE(f.truncate(20).is_ok());
  EXPECT_EQ(f.size(), 20u);
  std::vector<std::byte> out(20);
  ASSERT_TRUE(f.read_at(0, out).is_ok());
  std::vector<std::byte> over(21);
  EXPECT_FALSE(f.read_at(0, over).is_ok());
}

TEST(Pfs, RandomOpSequenceMatchesReference) {
  // Property test: a random interleaving of writes and reads must behave
  // exactly like a plain in-memory byte vector.
  Pfs fs(small_config(5, 13));
  auto f = fs.create("f").value();
  std::vector<std::byte> reference;
  SplitMix64 rng(42);
  for (int op = 0; op < 300; ++op) {
    const std::uint64_t offset = rng.next_below(2000);
    const std::size_t len = static_cast<std::size_t>(rng.next_in(1, 97));
    if (rng.next() % 2 == 0) {
      const auto data = pattern(len, rng.next());
      ASSERT_TRUE(f.write_at(offset, data).is_ok());
      if (reference.size() < offset + len) {
        reference.resize(static_cast<std::size_t>(offset) + len,
                         std::byte{0});
      }
      std::copy(data.begin(), data.end(),
                reference.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (offset + len <= reference.size()) {
      std::vector<std::byte> out(len);
      ASSERT_TRUE(f.read_at(offset, out).is_ok());
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(out[i], reference[static_cast<std::size_t>(offset) + i]);
      }
    }
  }
  EXPECT_EQ(f.size(), reference.size());
}

TEST(Pfs, ConcurrentDisjointWritersAreSafe) {
  Pfs fs(small_config(4, 32));
  auto f = fs.create("f").value();
  ASSERT_TRUE(f.truncate(8 * 1024).is_ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto handle = fs.open("f").value();
      const auto data = pattern(1024, static_cast<std::uint64_t>(t));
      ASSERT_TRUE(handle
                      .write_at(static_cast<std::uint64_t>(t) * 1024, data)
                      .is_ok());
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) {
    std::vector<std::byte> out(1024);
    ASSERT_TRUE(f.read_at(static_cast<std::uint64_t>(t) * 1024, out).is_ok());
    EXPECT_EQ(out, pattern(1024, static_cast<std::uint64_t>(t)));
  }
}

}  // namespace
}  // namespace drx::pfs
