// Reproduction of the paper's Section IV-B code listing: four processes
// collectively read their zone chunks of the Figure 1 array through
// MPI_Type_indexed file and memory types and MPI_File_read_all.
#include <gtest/gtest.h>

#include <cstring>

#include "mpio/file.hpp"
#include "simpi/runtime.hpp"

namespace drx::mpio {
namespace {

using simpi::Comm;
using simpi::Datatype;

// Constants and maps exactly as in the listing.
constexpr std::uint64_t kChunkSize = 6;  // doubles per chunk
constexpr int kNumChunks = 20;

constexpr int kChunkDistrib[4] = {6, 6, 4, 4};
constexpr int kGlobalMap[4][6] = {{0, 1, 2, 3, 4, 5},
                                  {6, 7, 8, 12, 13, 14},
                                  {9, 10, 16, 17, -1, -1},
                                  {11, 15, 18, 19, -1, -1}};
constexpr int kInMemoryMap[4][6] = {{0, 1, 2, 3, 4, 5},
                                    {0, 2, 4, 1, 3, 5},
                                    {0, 1, 2, 3, -1, -1},
                                    {0, 1, 2, 3, -1, -1}};

TEST(ListingIVB, CollectiveChunkReadWithIndexedTypes) {
  pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  cfg.stripe_size = 256;
  pfs::Pfs fs(cfg);

  // Populate the chunked array file: chunk q holds doubles q*6 .. q*6+5.
  {
    auto handle = fs.create("chunkedArray4.dat").value();
    std::vector<double> all(kChunkSize * kNumChunks);
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<double>(i);
    }
    ASSERT_TRUE(
        handle.write_at(0, std::as_bytes(std::span<const double>(all)))
            .is_ok());
  }

  simpi::run(4, [&](Comm& comm) {
    ASSERT_EQ(comm.size(), 4);  // the listing aborts unless size == 4
    const int my_rank = comm.rank();
    const auto r = static_cast<std::size_t>(my_rank);

    File fh = File::open(comm, fs, "chunkedArray4.dat", kModeRdOnly).value();

    const int no_of_chunks = kChunkDistrib[r];
    std::vector<std::uint64_t> blocklens(
        static_cast<std::size_t>(no_of_chunks), 1);
    std::vector<std::uint64_t> map, inmemmap;
    for (int j = 0; j < no_of_chunks; ++j) {
      map.push_back(static_cast<std::uint64_t>(
          kGlobalMap[r][static_cast<std::size_t>(j)]));
      inmemmap.push_back(static_cast<std::uint64_t>(
          kInMemoryMap[r][static_cast<std::size_t>(j)]));
    }

    // MPI_Type_contiguous(ChunkSize, MPI_DOUBLE, &chunk)
    auto chunk = Datatype::contiguous(kChunkSize, Datatype::bytes(8));
    // MPI_Type_indexed(noOfChunks, blocklens, map, chunk, &filetype)
    auto filetype = Datatype::indexed(blocklens, map, chunk);
    // MPI_Type_indexed(noOfChunks, blocklens, inmemmap, chunk, &memtype)
    auto memtype = Datatype::indexed(blocklens, inmemmap, chunk);

    // MPI_File_set_view(fh, 0, chunk, filetype, "native", ...)
    fh.set_view(0, chunk, filetype);

    const std::size_t ndbls =
        static_cast<std::size_t>(no_of_chunks) * kChunkSize;
    std::vector<double> mem_buf(ndbls, -1.0);

    // MPI_File_read_all(fh, memBuf, 1, memtype, &status)
    ASSERT_TRUE(fh.read_all(mem_buf.data(), 1, memtype).is_ok());

    // Chunk map[j] (file order) lands at memory block inmemmap[j].
    for (int j = 0; j < no_of_chunks; ++j) {
      const auto js = static_cast<std::size_t>(j);
      const std::uint64_t file_chunk = map[js];
      const std::uint64_t mem_slot = inmemmap[js];
      for (std::uint64_t e = 0; e < kChunkSize; ++e) {
        EXPECT_DOUBLE_EQ(mem_buf[mem_slot * kChunkSize + e],
                         static_cast<double>(file_chunk * kChunkSize + e))
            << "rank " << my_rank << " chunk " << file_chunk;
      }
    }
    ASSERT_TRUE(fh.close().is_ok());
  });
}

// The union of the four zones covers each of the 20 chunks exactly once —
// the zone property of Figure 1.
TEST(ListingIVB, ZoneMapsTileTheArray) {
  std::vector<int> seen(kNumChunks, 0);
  for (int r = 0; r < 4; ++r) {
    for (int j = 0; j < kChunkDistrib[r]; ++j) {
      const int q = kGlobalMap[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(j)];
      ASSERT_GE(q, 0);
      ASSERT_LT(q, kNumChunks);
      ++seen[static_cast<std::size_t>(q)];
    }
  }
  for (int q = 0; q < kNumChunks; ++q) {
    EXPECT_EQ(seen[static_cast<std::size_t>(q)], 1) << "chunk " << q;
  }
}

}  // namespace
}  // namespace drx::mpio
