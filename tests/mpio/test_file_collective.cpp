#include <gtest/gtest.h>

#include "mpio/file.hpp"
#include "obs/metrics.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::mpio {
namespace {

using simpi::Comm;
using simpi::Datatype;

pfs::PfsConfig cfg(int servers = 4, std::uint64_t stripe = 64) {
  pfs::PfsConfig c;
  c.num_servers = servers;
  c.stripe_size = stripe;
  return c;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xFF);
  return buf;
}

class CollectiveIoP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveIoP, WriteAllThenReadAllContiguousBlocks) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    constexpr std::uint64_t kPer = 500;
    const auto mine =
        pattern(kPer, static_cast<std::uint64_t>(comm.rank()) + 100);
    ASSERT_TRUE(f.write_at_all(static_cast<std::uint64_t>(comm.rank()) * kPer,
                               mine.data(), kPer, Datatype::bytes(1))
                    .is_ok());
    comm.barrier();
    EXPECT_EQ(f.get_size(), kPer * static_cast<std::uint64_t>(comm.size()));

    // Read the next rank's block collectively.
    const int peer = (comm.rank() + 1) % comm.size();
    std::vector<std::byte> out(kPer);
    ASSERT_TRUE(f.read_at_all(static_cast<std::uint64_t>(peer) * kPer,
                              out.data(), kPer, Datatype::bytes(1))
                    .is_ok());
    EXPECT_EQ(out, pattern(kPer, static_cast<std::uint64_t>(peer) + 100));
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(CollectiveIoP, InterleavedStridedWriteAll) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    // Round-robin 16-byte cells: rank r owns cells r, r+P, r+2P, ...
    constexpr std::uint64_t kCell = 16;
    constexpr std::uint64_t kCellsPerRank = 32;
    auto ft = Datatype::bytes(kCell).resized(
        kCell * static_cast<std::uint64_t>(comm.size()));
    f.set_view(static_cast<std::uint64_t>(comm.rank()) * kCell,
               Datatype::bytes(1), ft);
    const auto mine = pattern(kCell * kCellsPerRank,
                              static_cast<std::uint64_t>(comm.rank()) + 7);
    ASSERT_TRUE(f.write_at_all(0, mine.data(), mine.size(),
                               Datatype::bytes(1))
                    .is_ok());
    comm.barrier();

    // Verify through an independent raw read of the whole file.
    f.set_view(0, Datatype::bytes(1), Datatype::bytes(1));
    const std::uint64_t total =
        kCell * kCellsPerRank * static_cast<std::uint64_t>(comm.size());
    ASSERT_EQ(f.get_size(), total);
    std::vector<std::byte> raw(total);
    ASSERT_TRUE(f.read_at(0, raw.data(), total, Datatype::bytes(1)).is_ok());
    for (int r = 0; r < comm.size(); ++r) {
      const auto expect =
          pattern(kCell * kCellsPerRank, static_cast<std::uint64_t>(r) + 7);
      for (std::uint64_t cell = 0; cell < kCellsPerRank; ++cell) {
        const std::uint64_t file_off =
            (cell * static_cast<std::uint64_t>(comm.size()) +
             static_cast<std::uint64_t>(r)) *
            kCell;
        for (std::uint64_t i = 0; i < kCell; ++i) {
          ASSERT_EQ(raw[file_off + i], expect[cell * kCell + i])
              << "rank " << r << " cell " << cell << " byte " << i;
        }
      }
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(CollectiveIoP, CollectiveMatchesIndependentResults) {
  const int p = GetParam();
  pfs::Pfs fs(cfg(3, 48));
  simpi::run(p, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    const std::uint64_t total = 4096;
    if (comm.rank() == 0) {
      const auto all = pattern(total, 55);
      ASSERT_TRUE(
          f.write_at(0, all.data(), total, Datatype::bytes(1)).is_ok());
    }
    comm.barrier();

    // Strided view: rank r sees bytes congruent to r mod P (8-byte cells).
    auto ft = Datatype::bytes(8).resized(
        8 * static_cast<std::uint64_t>(comm.size()));
    f.set_view(static_cast<std::uint64_t>(comm.rank()) * 8,
               Datatype::bytes(1), ft);
    const std::uint64_t visible =
        total / static_cast<std::uint64_t>(comm.size());
    std::vector<std::byte> coll(visible), indep(visible);
    ASSERT_TRUE(
        f.read_at_all(0, coll.data(), visible, Datatype::bytes(1)).is_ok());
    ASSERT_TRUE(
        f.read_at(0, indep.data(), visible, Datatype::bytes(1)).is_ok());
    EXPECT_EQ(coll, indep);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(CollectiveIoP, RanksWithNothingToDoStillParticipate) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    // Only rank 0 transfers; everyone else passes zero count.
    const auto data = pattern(256, 5);
    const std::uint64_t count = comm.rank() == 0 ? 256 : 0;
    ASSERT_TRUE(
        f.write_at_all(0, data.data(), count, Datatype::bytes(1)).is_ok());
    comm.barrier();
    std::vector<std::byte> out(256);
    ASSERT_TRUE(f.read_at_all(0, out.data(), count == 0 ? 0 : 256,
                              Datatype::bytes(1))
                    .is_ok());
    if (comm.rank() == 0) {
      EXPECT_EQ(out, data);
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveIoP, ::testing::Values(1, 2, 4, 8));

TEST(CollectiveIo, TwoPhaseAggregationReducesSeeks) {
  // With 4 ranks interleaving small cells, the aggregated access pattern
  // must hit each server near-sequentially: far fewer seeks than the
  // independent path issuing one request per cell.
  pfs::Pfs fs_coll(cfg(2, 64));
  pfs::Pfs fs_ind(cfg(2, 64));
  constexpr int kRanks = 4;
  constexpr std::uint64_t kCell = 32;
  constexpr std::uint64_t kCells = 64;

  auto interleaved_write = [&](pfs::Pfs& fs, bool collective) {
    simpi::run(kRanks, [&](Comm& comm) {
      File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
      auto ft = Datatype::bytes(kCell).resized(kCell * kRanks);
      f.set_view(static_cast<std::uint64_t>(comm.rank()) * kCell,
                 Datatype::bytes(1), ft);
      const auto mine =
          pattern(kCell * kCells, static_cast<std::uint64_t>(comm.rank()));
      if (collective) {
        ASSERT_TRUE(f.write_at_all(0, mine.data(), mine.size(),
                                   Datatype::bytes(1))
                        .is_ok());
      } else {
        ASSERT_TRUE(
            f.write_at(0, mine.data(), mine.size(), Datatype::bytes(1))
                .is_ok());
      }
      ASSERT_TRUE(f.close().is_ok());
    });
  };
  interleaved_write(fs_coll, true);
  interleaved_write(fs_ind, false);

  const auto coll = fs_coll.total_stats();
  const auto ind = fs_ind.total_stats();
  EXPECT_LT(coll.write_requests, ind.write_requests);
  EXPECT_LE(coll.seeks, ind.seeks);
}

TEST(CollectiveCoalescing, SubarrayViewEmitsRunsNotElements) {
  // Dense base types flatten into one filetype block per fastest-dim
  // run (docs/PERFORMANCE.md), so the two-phase exchange ships pieces
  // at run granularity. Each rank writes an 8x8 half-width slab of a
  // 16x16 array of 8-byte cells: 64 elements but only 8 rows per rank.
  const auto before = obs::registry().snapshot();
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    const std::uint64_t sizes[] = {16, 16};
    const std::uint64_t subsizes[] = {8, 8};
    const std::uint64_t starts[] = {
        static_cast<std::uint64_t>(comm.rank()) * 8, 0};
    const auto ft = Datatype::subarray(sizes, subsizes, starts,
                                       simpi::Order::kC, Datatype::bytes(8));
    f.set_view(0, Datatype::bytes(1), ft);
    const auto mine =
        pattern(8 * 8 * 8, static_cast<std::uint64_t>(comm.rank()) + 40);
    ASSERT_TRUE(
        f.write_at_all(0, mine.data(), mine.size(), Datatype::bytes(1))
            .is_ok());
    ASSERT_TRUE(f.close().is_ok());
  });
  const auto after = obs::registry().snapshot();
  const std::uint64_t pieces =
      after.counter("mpio.agg_pieces") - before.counter("mpio.agg_pieces");
  // 16 rows across both ranks; aggregator file-domain boundaries may
  // split a row, so allow 2x slack. Element-granular flattening would
  // have emitted >= 128 pieces.
  EXPECT_GT(pieces, 0u);
  EXPECT_LE(pieces, 32u);
}

}  // namespace
}  // namespace drx::mpio
