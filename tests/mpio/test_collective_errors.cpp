// Error propagation and configuration semantics of collective I/O:
// an aggregator-side failure must surface on EVERY rank, and the
// data-sieving gap must change access counts but never results.
#include <gtest/gtest.h>

#include "mpio/file.hpp"
#include "simpi/runtime.hpp"

namespace drx::mpio {
namespace {

using simpi::Comm;
using simpi::Datatype;

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 2;
  c.stripe_size = 64;
  return c;
}

TEST(CollectiveErrors, ReadPastEofFailsOnAllRanks) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    if (comm.rank() == 0) {
      std::vector<std::byte> v(64, std::byte{1});
      ASSERT_TRUE(f.write_at(0, v.data(), 64, Datatype::bytes(1)).is_ok());
    }
    comm.barrier();
    // Every rank asks for bytes [128, 192) of a 64-byte file. The failing
    // device access happens on whichever aggregator owns the domain; the
    // error must come back everywhere.
    std::vector<std::byte> out(64);
    const Status s =
        f.read_at_all(128, out.data(), 64, Datatype::bytes(1));
    EXPECT_FALSE(s.is_ok()) << "rank " << comm.rank();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(CollectiveErrors, MixedValidAndInvalidRequestsFailEverywhere) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    ASSERT_TRUE(f.set_size(256).is_ok());
    // Rank 3 reads out of range; everyone else is in range. Collective
    // semantics: the failure reaches every rank.
    const std::uint64_t offset =
        comm.rank() == 3 ? 10'000 : static_cast<std::uint64_t>(comm.rank()) * 64;
    std::vector<std::byte> out(64);
    const Status s = f.read_at_all(offset, out.data(), 64,
                                   Datatype::bytes(1));
    EXPECT_FALSE(s.is_ok()) << "rank " << comm.rank();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(CollectiveErrors, SieveGapChangesAccessCountsNotResults) {
  // Strided read with 50% holes under gap 0 and gap 1 MiB: same bytes,
  // different request counts.
  auto run_once = [](std::uint64_t gap, std::uint64_t* requests) {
    set_read_sieve_gap(gap);
    pfs::Pfs fs(cfg());
    std::vector<std::byte> result;
    simpi::run(2, [&](Comm& comm) {
      File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
      if (comm.rank() == 0) {
        std::vector<std::byte> dense(4096);
        for (std::size_t i = 0; i < dense.size(); ++i) {
          dense[i] = static_cast<std::byte>(i * 13 & 0xFF);
        }
        ASSERT_TRUE(
            f.write_at(0, dense.data(), dense.size(), Datatype::bytes(1))
                .is_ok());
      }
      comm.barrier();
      // Both ranks read the SAME strided half of the file, so the
      // aggregate request pattern has genuine 32-byte holes.
      auto ft = Datatype::bytes(32).resized(64);
      f.set_view(0, Datatype::bytes(1), ft);
      std::vector<std::byte> mine(2048);
      const auto before = fs.total_stats();
      ASSERT_TRUE(
          f.read_at_all(0, mine.data(), mine.size(), Datatype::bytes(1))
              .is_ok());
      comm.barrier();
      if (comm.rank() == 0) {
        *requests = fs.total_stats().read_requests - before.read_requests;
        result = mine;
      }
      ASSERT_TRUE(f.close().is_ok());
    });
    set_read_sieve_gap(64 * 1024);
    return result;
  };

  std::uint64_t requests_nosieve = 0, requests_sieve = 0;
  const auto a = run_once(0, &requests_nosieve);
  const auto b = run_once(1 << 20, &requests_sieve);
  EXPECT_EQ(a, b);
  EXPECT_GT(requests_nosieve, requests_sieve);
}

}  // namespace
}  // namespace drx::mpio
