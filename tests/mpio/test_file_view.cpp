#include "mpio/file_view.hpp"

#include <gtest/gtest.h>

namespace drx::mpio {
namespace {

using simpi::Datatype;

TEST(FileView, DefaultViewIsIdentity) {
  FileView v;
  auto extents = v.map_range(10, 5);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (FileExtent{10, 5}));
  EXPECT_EQ(v.map_byte(1234), 1234u);
}

TEST(FileView, DisplacementShifts) {
  FileView v(100, Datatype::bytes(1), Datatype::bytes(8));
  EXPECT_EQ(v.map_byte(0), 100u);
  EXPECT_EQ(v.map_byte(7), 107u);
  EXPECT_EQ(v.map_byte(8), 108u);  // next tile, still contiguous
}

TEST(FileView, StridedFiletypeSkipsHoles) {
  // Filetype: 4 visible bytes, then a 4-byte hole (extent 8).
  auto ft = Datatype::bytes(4).resized(8);
  FileView v(0, Datatype::bytes(1), ft);
  auto extents = v.map_range(0, 10);
  // Visible bytes 0..3 -> file 0..3, 4..7 -> 8..11, 8..9 -> 16..17.
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0], (FileExtent{0, 4}));
  EXPECT_EQ(extents[1], (FileExtent{8, 4}));
  EXPECT_EQ(extents[2], (FileExtent{16, 2}));
}

TEST(FileView, RangeStartingMidTile) {
  auto ft = Datatype::bytes(4).resized(8);
  FileView v(0, Datatype::bytes(1), ft);
  auto extents = v.map_range(2, 4);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0], (FileExtent{2, 2}));
  EXPECT_EQ(extents[1], (FileExtent{8, 2}));
}

TEST(FileView, MultiBlockFiletype) {
  // Two visible runs per tile: [0,2) and [6,9); extent 12.
  const std::uint64_t lens[] = {2, 3};
  const std::uint64_t displs[] = {0, 6};
  auto ft = Datatype::hindexed(lens, displs, Datatype::bytes(1)).resized(12);
  FileView v(0, Datatype::bytes(1), ft);
  auto extents = v.map_range(0, 8);
  // Tile 0: 0..1, 6..8; tile 1: 12..13, 18.
  ASSERT_EQ(extents.size(), 4u);
  EXPECT_EQ(extents[0], (FileExtent{0, 2}));
  EXPECT_EQ(extents[1], (FileExtent{6, 3}));
  EXPECT_EQ(extents[2], (FileExtent{12, 2}));
  EXPECT_EQ(extents[3], (FileExtent{18, 1}));
}

TEST(FileView, AdjacentTilesCoalesce) {
  FileView v(0, Datatype::bytes(1), Datatype::bytes(16));
  auto extents = v.map_range(0, 64);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (FileExtent{0, 64}));
}

TEST(FileView, EmptyRange) {
  FileView v;
  EXPECT_TRUE(v.map_range(5, 0).empty());
}

TEST(FileView, NonMonotonicFiletypeAborts) {
  const std::uint64_t lens[] = {1, 1};
  const std::uint64_t displs[] = {8, 0};
  auto ft = Datatype::hindexed(lens, displs, Datatype::bytes(4));
  EXPECT_DEATH((void)FileView(0, Datatype::bytes(1), ft), "monotonic");
}

TEST(FileView, EtypeMustDivideFiletype) {
  EXPECT_DEATH((void)FileView(0, Datatype::bytes(3), Datatype::bytes(8)),
               "multiple");
}

}  // namespace
}  // namespace drx::mpio
