// Randomized property tests of the MPI-IO layer: for random strided views
// and random rank counts, collective and independent transfers must agree
// with a byte-exact reference image maintained in plain memory.
#include <gtest/gtest.h>

#include <map>

#include "mpio/file.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::mpio {
namespace {

using simpi::Comm;
using simpi::Datatype;

struct Scenario {
  std::uint64_t seed;
  int nprocs;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed" << s.seed << "_p" << s.nprocs;
}

class MpioPropertyP : public ::testing::TestWithParam<Scenario> {};

TEST_P(MpioPropertyP, RandomStridedViewsMatchReference) {
  const Scenario sc = GetParam();
  SplitMix64 setup_rng(sc.seed);

  // Random interleave geometry shared by all ranks.
  const std::uint64_t cell = 1 << setup_rng.next_in(3, 9);  // 8..512 bytes
  const std::uint64_t cells_per_rank = setup_rng.next_in(4, 40);
  const auto p = static_cast<std::uint64_t>(sc.nprocs);
  const std::uint64_t total = cell * cells_per_rank * p;

  pfs::PfsConfig cfg;
  cfg.num_servers = static_cast<int>(setup_rng.next_in(1, 6));
  cfg.stripe_size = 1ull << setup_rng.next_in(4, 12);
  pfs::Pfs fs(cfg);

  // Reference image: rank r owns every p-th cell; byte value derives from
  // the owning rank and position.
  std::vector<std::byte> reference(static_cast<std::size_t>(total));
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t owner = (i / cell) % p;
    reference[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((owner * 131 + i * 7) & 0xFF);
  }

  simpi::run(sc.nprocs, [&](Comm& comm) {
    File f = File::open(comm, fs, "prop", kModeRdWr | kModeCreate).value();
    auto ft = Datatype::bytes(cell).resized(cell * p);
    f.set_view(static_cast<std::uint64_t>(comm.rank()) * cell,
               Datatype::bytes(1), ft);

    // Build my payload from the reference.
    std::vector<std::byte> mine(
        static_cast<std::size_t>(cell * cells_per_rank));
    for (std::uint64_t c = 0; c < cells_per_rank; ++c) {
      const std::uint64_t file_off =
          (c * p + static_cast<std::uint64_t>(comm.rank())) * cell;
      std::copy(reference.begin() + static_cast<std::ptrdiff_t>(file_off),
                reference.begin() +
                    static_cast<std::ptrdiff_t>(file_off + cell),
                mine.begin() + static_cast<std::ptrdiff_t>(c * cell));
    }

    // Half the seeds write collectively, half independently.
    if (sc.seed % 2 == 0) {
      ASSERT_TRUE(f.write_at_all(0, mine.data(), mine.size(),
                                 Datatype::bytes(1))
                      .is_ok());
    } else {
      ASSERT_TRUE(
          f.write_at(0, mine.data(), mine.size(), Datatype::bytes(1))
              .is_ok());
      comm.barrier();
    }

    // Raw whole-file verification on rank 0 against the reference.
    comm.barrier();
    if (comm.rank() == 0) {
      auto handle = fs.open("prop").value();
      ASSERT_EQ(handle.size(), total);
      std::vector<std::byte> raw(static_cast<std::size_t>(total));
      ASSERT_TRUE(handle.read_at(0, raw).is_ok());
      ASSERT_EQ(raw, reference);
    }
    comm.barrier();

    // Read back through the view, both ways; must equal `mine`.
    std::vector<std::byte> coll(mine.size()), ind(mine.size());
    ASSERT_TRUE(
        f.read_at_all(0, coll.data(), coll.size(), Datatype::bytes(1))
            .is_ok());
    ASSERT_TRUE(f.read_at(0, ind.data(), ind.size(), Datatype::bytes(1))
                    .is_ok());
    ASSERT_EQ(coll, mine);
    ASSERT_EQ(ind, mine);
    ASSERT_TRUE(f.close().is_ok());
  });
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  std::uint64_t seed = 9000;
  for (int p : {1, 2, 3, 4, 5, 8}) {
    out.push_back(Scenario{seed++, p});
    out.push_back(Scenario{seed++, p});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Random, MpioPropertyP,
                         ::testing::ValuesIn(scenarios()));

TEST(MpioProperty, ConcurrentDistinctFilesDoNotInterfere) {
  // Each rank drives its own file with independent I/O while others do
  // collective work on a shared one — exercises mailbox/context isolation.
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);
  simpi::run(4, [&](Comm& comm) {
    File shared = File::open(comm, fs, "shared",
                             kModeRdWr | kModeCreate)
                      .value();
    // Per-rank private files need a COMM_SELF-style communicator: open is
    // collective over the communicator it is given.
    Comm self = comm.split(comm.rank(), 0);
    File own = File::open(self, fs,
                          "own" + std::to_string(comm.rank()),
                          kModeRdWr | kModeCreate)
                   .value();
    std::vector<std::byte> v(64, static_cast<std::byte>(comm.rank() + 1));
    ASSERT_TRUE(own.write_at(0, v.data(), 64, Datatype::bytes(1)).is_ok());
    ASSERT_TRUE(shared
                    .write_at_all(static_cast<std::uint64_t>(comm.rank()) * 64,
                                  v.data(), 64, Datatype::bytes(1))
                    .is_ok());
    std::vector<std::byte> back(64);
    ASSERT_TRUE(own.read_at(0, back.data(), 64, Datatype::bytes(1)).is_ok());
    EXPECT_EQ(back, v);
    ASSERT_TRUE(own.close().is_ok());
    ASSERT_TRUE(shared.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::mpio
