#include <gtest/gtest.h>

#include <cstring>

#include "mpio/file.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::mpio {
namespace {

using simpi::Comm;
using simpi::Datatype;

pfs::PfsConfig cfg(int servers = 4, std::uint64_t stripe = 64) {
  pfs::PfsConfig c;
  c.num_servers = servers;
  c.stripe_size = stripe;
  return c;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed = 1) {
  SplitMix64 rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xFF);
  return buf;
}

TEST(MpioFile, CollectiveOpenCreateAndModes) {
  pfs::Pfs fs(cfg());
  simpi::run(3, [&](Comm& comm) {
    auto f = File::open(comm, fs, "a", kModeRdWr | kModeCreate);
    ASSERT_TRUE(f.is_ok());
    ASSERT_TRUE(f.value().close().is_ok());

    // create|excl on an existing file fails on every rank.
    auto f2 = File::open(comm, fs, "a",
                         kModeRdWr | kModeCreate | kModeExcl);
    EXPECT_FALSE(f2.is_ok());

    // Open without create on a missing file fails everywhere.
    auto f3 = File::open(comm, fs, "missing", kModeRdOnly);
    EXPECT_FALSE(f3.is_ok());

    // Missing access mode is invalid.
    auto f4 = File::open(comm, fs, "a", kModeCreate);
    EXPECT_FALSE(f4.is_ok());
  });
}

TEST(MpioFile, IndependentWriteReadDefaultView) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](Comm& comm) {
    auto fr = File::open(comm, fs, "f", kModeRdWr | kModeCreate);
    ASSERT_TRUE(fr.is_ok());
    File f = std::move(fr).value();

    // Each rank writes 100 bytes at disjoint offsets.
    const auto data = pattern(100, static_cast<std::uint64_t>(comm.rank()));
    ASSERT_TRUE(f.write_at(static_cast<std::uint64_t>(comm.rank()) * 100,
                           data.data(), 100, Datatype::bytes(1))
                    .is_ok());
    comm.barrier();

    // Cross-read the peer's region.
    const int peer = 1 - comm.rank();
    std::vector<std::byte> out(100);
    ASSERT_TRUE(f.read_at(static_cast<std::uint64_t>(peer) * 100, out.data(),
                          100, Datatype::bytes(1))
                    .is_ok());
    EXPECT_EQ(out, pattern(100, static_cast<std::uint64_t>(peer)));
    EXPECT_EQ(f.get_size(), 200u);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(MpioFile, FilePointerAdvances) {
  pfs::Pfs fs(cfg());
  simpi::run(1, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    const auto data = pattern(64);
    ASSERT_TRUE(f.write(data.data(), 64, Datatype::bytes(1)).is_ok());
    EXPECT_EQ(f.position(), 64u);
    ASSERT_TRUE(f.write(data.data(), 64, Datatype::bytes(1)).is_ok());
    EXPECT_EQ(f.position(), 128u);

    f.seek(32);
    std::vector<std::byte> out(64);
    ASSERT_TRUE(f.read(out.data(), 64, Datatype::bytes(1)).is_ok());
    EXPECT_EQ(f.position(), 96u);
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(out[i], data[32 + i]);
      EXPECT_EQ(out[32 + i], data[i]);
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(MpioFile, ViewWithEtypeOffsets) {
  pfs::Pfs fs(cfg());
  simpi::run(1, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    const auto data = pattern(80);
    ASSERT_TRUE(f.write_at(0, data.data(), 80, Datatype::bytes(1)).is_ok());

    // etype = 8-byte double; offsets now count doubles.
    f.set_view(0, Datatype::bytes(8), Datatype::bytes(8));
    std::vector<std::byte> out(16);
    ASSERT_TRUE(f.read_at(3, out.data(), 2, Datatype::bytes(8)).is_ok());
    for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], data[24 + i]);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(MpioFile, StridedViewReadsOnlyVisibleBytes) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    // Interleaved layout: rank r owns 8-byte slots at offset 8r stride 16.
    const auto data = pattern(32, static_cast<std::uint64_t>(comm.rank()));
    auto ft = Datatype::bytes(8)
                  .resized(16);
    f.set_view(static_cast<std::uint64_t>(comm.rank()) * 8,
               Datatype::bytes(1), ft);
    ASSERT_TRUE(f.write_at(0, data.data(), 32, Datatype::bytes(1)).is_ok());
    comm.barrier();

    std::vector<std::byte> out(32);
    ASSERT_TRUE(f.read_at(0, out.data(), 32, Datatype::bytes(1)).is_ok());
    EXPECT_EQ(out, data);

    // The physical file interleaves both ranks' slots.
    comm.barrier();
    f.set_view(0, Datatype::bytes(1), Datatype::bytes(1));
    std::vector<std::byte> raw(64);
    ASSERT_TRUE(f.read_at(0, raw.data(), 64, Datatype::bytes(1)).is_ok());
    const auto mine = pattern(32, static_cast<std::uint64_t>(comm.rank()));
    const auto theirs =
        pattern(32, static_cast<std::uint64_t>(1 - comm.rank()));
    for (std::size_t slot = 0; slot < 4; ++slot) {
      for (std::size_t i = 0; i < 8; ++i) {
        const std::byte expect_mine = mine[slot * 8 + i];
        const std::byte expect_theirs = theirs[slot * 8 + i];
        const std::size_t base = slot * 16 + i;
        if (comm.rank() == 0) {
          EXPECT_EQ(raw[base], expect_mine);
          EXPECT_EQ(raw[base + 8], expect_theirs);
        } else {
          EXPECT_EQ(raw[base + 8], expect_mine);
          EXPECT_EQ(raw[base], expect_theirs);
        }
      }
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(MpioFile, MemoryDatatypeScatter) {
  pfs::Pfs fs(cfg());
  simpi::run(1, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    const auto data = pattern(24);
    ASSERT_TRUE(f.write_at(0, data.data(), 24, Datatype::bytes(1)).is_ok());

    // Read 24 contiguous file bytes into memory blocks in order 2,0,1.
    const std::uint64_t lens[] = {1, 1, 1};
    const std::uint64_t displs[] = {2, 0, 1};
    auto memtype = Datatype::indexed(lens, displs, Datatype::bytes(8));
    std::vector<std::byte> out(24, std::byte{0});
    ASSERT_TRUE(f.read_at(0, out.data(), 1, memtype).is_ok());
    // File bytes 0..7 land at memory 16..23, 8..15 at 0..7, 16..23 at 8..15.
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(out[16 + i], data[i]);
      EXPECT_EQ(out[i], data[8 + i]);
      EXPECT_EQ(out[8 + i], data[16 + i]);
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(MpioFile, WriteWithoutPermissionFails) {
  pfs::Pfs fs(cfg());
  simpi::run(1, [&](Comm& comm) {
    {
      File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
      ASSERT_TRUE(f.close().is_ok());
    }
    File f = File::open(comm, fs, "f", kModeRdOnly).value();
    std::byte b{1};
    EXPECT_EQ(f.write_at(0, &b, 1, Datatype::bytes(1)).code(),
              ErrorCode::kFailedPrecondition);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(MpioFile, DeleteOnClose) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](Comm& comm) {
    File f = File::open(comm, fs, "tmp",
                        kModeRdWr | kModeCreate | kModeDeleteOnClose)
                 .value();
    ASSERT_TRUE(f.close().is_ok());
    comm.barrier();
    EXPECT_FALSE(fs.exists("tmp"));
  });
}

TEST(MpioFile, SetSizeGrowsZeroFilled) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](Comm& comm) {
    File f = File::open(comm, fs, "f", kModeRdWr | kModeCreate).value();
    ASSERT_TRUE(f.set_size(128).is_ok());
    EXPECT_EQ(f.get_size(), 128u);
    std::vector<std::byte> out(128);
    ASSERT_TRUE(f.read_at(0, out.data(), 128, Datatype::bytes(1)).is_ok());
    for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
    ASSERT_TRUE(f.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::mpio
