// Cross-implementation equivalence: the same logical array written through
// DRX, the row-major file, and the B-tree chunk store holds identical
// element values — the implementations differ only in layout and cost.
#include <gtest/gtest.h>

#include "baselines/btree_chunk_store.hpp"
#include "baselines/rowmajor_file.hpp"
#include "core/drx_file.hpp"
#include "util/rng.hpp"

namespace drx::baselines {
namespace {

using core::Box;
using core::ChunkSpace;
using core::Index;
using core::MemoryOrder;
using core::Shape;

TEST(CrossCompat, AllThreeStoresAgreeElementwise) {
  const Shape bounds{9, 7};
  const Shape chunk{3, 2};
  const std::uint64_t esize = 8;

  core::DrxFile::Options opts;
  opts.dtype = core::ElementType::kDouble;
  auto drx = core::DrxFile::create(std::make_unique<pfs::MemStorage>(),
                                   std::make_unique<pfs::MemStorage>(),
                                   bounds, chunk, opts);
  ASSERT_TRUE(drx.is_ok());

  auto row = RowMajorFile::create(std::make_unique<pfs::MemStorage>(),
                                  bounds, esize);
  ASSERT_TRUE(row.is_ok());

  const ChunkSpace cs(chunk, MemoryOrder::kRowMajor);
  const std::uint64_t chunk_bytes = cs.elements_per_chunk() * esize;
  auto btree = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, chunk_bytes);
  ASSERT_TRUE(btree.is_ok());

  // Write the same random values through all three.
  SplitMix64 rng(21);
  std::map<Index, double> truth;
  core::for_each_index(Box{{0, 0}, bounds}, [&](const Index& idx) {
    const double v = rng.next_double();
    truth[idx] = v;
    ASSERT_TRUE(drx.value().set<double>(idx, v).is_ok());
    ASSERT_TRUE(
        row.value()
            .write_element(idx, std::as_bytes(std::span<const double>(&v, 1)))
            .is_ok());
  });
  // B-tree writes whole chunks (its unit of access).
  const Shape grid = cs.chunk_bounds_for(bounds);
  core::for_each_index(Box{{0, 0}, grid}, [&](const Index& c) {
    std::vector<double> buf(static_cast<std::size_t>(
                                cs.elements_per_chunk()),
                            0.0);
    core::for_each_index(cs.chunk_box(c), [&](const Index& e) {
      if (e[0] < bounds[0] && e[1] < bounds[1]) {
        buf[static_cast<std::size_t>(cs.offset_in_chunk(e))] = truth[e];
      }
    });
    ASSERT_TRUE(btree.value()
                    .write_chunk(c, std::as_bytes(std::span<const double>(buf)))
                    .is_ok());
  });

  // Read back element-wise through each store.
  core::for_each_index(Box{{0, 0}, bounds}, [&](const Index& idx) {
    ASSERT_EQ(drx.value().get<double>(idx).value(), truth[idx]);
    double rv = -1;
    ASSERT_TRUE(row.value()
                    .read_element(
                        idx, std::as_writable_bytes(std::span<double>(&rv, 1)))
                    .is_ok());
    ASSERT_EQ(rv, truth[idx]);

    const Index c = cs.chunk_of(idx);
    std::vector<double> buf(
        static_cast<std::size_t>(cs.elements_per_chunk()));
    ASSERT_TRUE(
        btree.value()
            .read_chunk(c, std::as_writable_bytes(std::span<double>(buf)))
            .is_ok());
    ASSERT_EQ(buf[static_cast<std::size_t>(cs.offset_in_chunk(idx))],
              truth[idx]);
  });
}

TEST(CrossCompat, DrxAndBtreeAgreeAfterExtensions) {
  const Shape chunk{2, 2};
  core::DrxFile::Options opts;
  opts.dtype = core::ElementType::kInt64;
  auto drx = core::DrxFile::create(std::make_unique<pfs::MemStorage>(),
                                   std::make_unique<pfs::MemStorage>(),
                                   Shape{4, 4}, chunk, opts);
  ASSERT_TRUE(drx.is_ok());
  auto btree = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, 4 * 8);
  ASSERT_TRUE(btree.is_ok());
  const ChunkSpace cs(chunk, MemoryOrder::kRowMajor);

  SplitMix64 rng(33);
  Shape bounds{4, 4};
  std::map<Index, std::int64_t> truth;
  for (int round = 0; round < 6; ++round) {
    // Write a few random elements through DRX and the matching chunks
    // through the B-tree.
    for (int w = 0; w < 10; ++w) {
      Index idx{rng.next_below(bounds[0]), rng.next_below(bounds[1])};
      const auto v = static_cast<std::int64_t>(rng.next());
      truth[idx] = v;
      ASSERT_TRUE(drx.value().set<std::int64_t>(idx, v).is_ok());
    }
    // Extend alternately (DRX never moves data; B-tree is naturally
    // extendible through its index).
    const std::size_t dim = static_cast<std::size_t>(round) % 2;
    ASSERT_TRUE(drx.value().extend(dim, 2).is_ok());
    bounds[dim] += 2;
  }
  // Mirror every truth value into the B-tree by whole chunks.
  std::map<Index, std::vector<std::int64_t>> chunks;
  for (const auto& [idx, v] : truth) {
    const Index c = cs.chunk_of(idx);
    auto [it, _] = chunks.try_emplace(c, std::vector<std::int64_t>(4, 0));
    it->second[static_cast<std::size_t>(cs.offset_in_chunk(idx))] = v;
  }
  for (const auto& [c, buf] : chunks) {
    ASSERT_TRUE(
        btree.value()
            .write_chunk(c,
                         std::as_bytes(std::span<const std::int64_t>(buf)))
            .is_ok());
  }
  for (const auto& [idx, v] : truth) {
    ASSERT_EQ(drx.value().get<std::int64_t>(idx).value(), v);
    const Index c = cs.chunk_of(idx);
    std::vector<std::int64_t> buf(4);
    ASSERT_TRUE(
        btree.value()
            .read_chunk(c,
                        std::as_writable_bytes(std::span<std::int64_t>(buf)))
            .is_ok());
    ASSERT_EQ(buf[static_cast<std::size_t>(cs.offset_in_chunk(idx))], v);
  }
}

}  // namespace
}  // namespace drx::baselines
