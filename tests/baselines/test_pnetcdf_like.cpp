#include "baselines/pnetcdf_like.hpp"

#include <gtest/gtest.h>

#include "simpi/runtime.hpp"

namespace drx::baselines {
namespace {

using core::Shape;

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 3;
  c.stripe_size = 512;
  return c;
}

TEST(PnetcdfLike, RecordAppendAndRoundTrip) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    auto f = PnetcdfLikeFile::create(comm, fs, "nc", Shape{4, 3, 5},
                                     sizeof(double))
                 .value();
    EXPECT_EQ(f.record_bytes(), 15u * 8);
    ASSERT_TRUE(f.append_records(4).is_ok());
    EXPECT_EQ(f.bounds()[0], 8u);

    // Each rank collectively writes two records.
    const auto r = static_cast<std::uint64_t>(comm.rank());
    std::vector<double> recs(2 * 15);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      recs[i] = static_cast<double>(r * 100 + i);
    }
    ASSERT_TRUE(f.write_records_all(
                     2 * r, 2, std::as_bytes(std::span<const double>(recs)))
                    .is_ok());
    comm.barrier();

    // Everyone reads all 8 records and checks ownership patterns.
    std::vector<double> all(8 * 15);
    ASSERT_TRUE(
        f.read_records_all(0, 8,
                           std::as_writable_bytes(std::span<double>(all)))
            .is_ok());
    for (std::uint64_t rec = 0; rec < 8; ++rec) {
      const std::uint64_t owner = rec / 2;
      for (std::uint64_t e = 0; e < 15; ++e) {
        EXPECT_EQ(all[rec * 15 + e],
                  static_cast<double>(owner * 100 + (rec % 2) * 15 + e));
      }
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(PnetcdfLike, PersistsAcrossOpen) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    {
      auto f = PnetcdfLikeFile::create(comm, fs, "nc", Shape{2, 4},
                                       sizeof(double))
                   .value();
      std::vector<double> rec(4, 3.5);
      if (comm.rank() == 0) {
        // Independent-free API: both ranks participate, rank 1 writes none.
      }
      ASSERT_TRUE(
          f.write_records_all(static_cast<std::uint64_t>(comm.rank()), 1,
                              std::as_bytes(std::span<const double>(rec)))
              .is_ok());
      ASSERT_TRUE(f.close().is_ok());
    }
    comm.barrier();
    auto f = PnetcdfLikeFile::open(comm, fs, "nc").value();
    EXPECT_EQ(f.bounds(), (Shape{2, 4}));
    std::vector<double> all(8);
    ASSERT_TRUE(
        f.read_records_all(0, 2,
                           std::as_writable_bytes(std::span<double>(all)))
            .is_ok());
    for (double v : all) EXPECT_EQ(v, 3.5);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(PnetcdfLike, RedefineGrowPreservesDataAndReportsCost) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    auto f = PnetcdfLikeFile::create(comm, fs, "nc", Shape{3, 2, 2},
                                     sizeof(double))
                 .value();
    // Fill records with identifiable values (rank 0 writes all).
    std::vector<double> recs(3 * 4);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      recs[i] = static_cast<double>(i);
    }
    if (comm.rank() == 0) {
      ASSERT_TRUE(
          f.write_records_all(0, 3,
                              std::as_bytes(std::span<const double>(recs)))
              .is_ok());
    } else {
      ASSERT_TRUE(f.write_records_all(0, 0, {}).is_ok());
    }
    comm.barrier();

    auto moved = f.redefine_grow(2, 1);
    ASSERT_TRUE(moved.is_ok()) << moved.status();
    EXPECT_GT(moved.value(), 0u);  // every record moved
    EXPECT_EQ(f.bounds(), (Shape{3, 2, 3}));

    std::vector<double> all(3 * 6);
    ASSERT_TRUE(
        f.read_records_all(0, 3,
                           std::as_writable_bytes(std::span<double>(all)))
            .is_ok());
    // Old element (rec, i, j) at new position rec*6 + i*3 + j.
    for (std::uint64_t rec = 0; rec < 3; ++rec) {
      for (std::uint64_t i = 0; i < 2; ++i) {
        for (std::uint64_t j = 0; j < 3; ++j) {
          const double expect =
              j < 2 ? static_cast<double>(rec * 4 + i * 2 + j) : 0.0;
          EXPECT_EQ(all[rec * 6 + i * 3 + j], expect)
              << rec << "," << i << "," << j;
        }
      }
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(PnetcdfLike, RecordDimMustUseAppend) {
  pfs::Pfs fs(cfg());
  simpi::run(1, [&](simpi::Comm& comm) {
    auto f = PnetcdfLikeFile::create(comm, fs, "nc", Shape{2, 2},
                                     sizeof(double))
                 .value();
    EXPECT_EQ(f.redefine_grow(0, 1).status().code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(f.redefine_grow(5, 1).status().code(),
              ErrorCode::kInvalidArgument);
    ASSERT_TRUE(f.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::baselines
