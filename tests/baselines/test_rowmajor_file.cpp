#include "baselines/rowmajor_file.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drx::baselines {
namespace {

using core::Box;
using core::Index;
using core::MemoryOrder;
using core::Shape;

RowMajorFile make(Shape bounds, std::uint64_t esize = 8) {
  auto f = RowMajorFile::create(std::make_unique<pfs::MemStorage>(),
                                std::move(bounds), esize);
  EXPECT_TRUE(f.is_ok());
  return std::move(f).value();
}

TEST(RowMajorFile, ElementRoundTrip) {
  RowMajorFile f = make(Shape{4, 5});
  const double v = 2.75;
  ASSERT_TRUE(f.write_element(Index{2, 3},
                              std::as_bytes(std::span<const double>(&v, 1)))
                  .is_ok());
  double out = 0;
  ASSERT_TRUE(
      f.read_element(Index{2, 3},
                     std::as_writable_bytes(std::span<double>(&out, 1)))
          .is_ok());
  EXPECT_EQ(out, v);
}

TEST(RowMajorFile, BoxRoundTripBothOrders) {
  RowMajorFile f = make(Shape{6, 7});
  const Box box{{1, 2}, {5, 6}};
  std::vector<double> data(static_cast<std::size_t>(box.volume()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
  }
  for (auto order : {MemoryOrder::kRowMajor, MemoryOrder::kColMajor}) {
    ASSERT_TRUE(f.write_box(box, order,
                            std::as_bytes(std::span<const double>(data)))
                    .is_ok());
    std::vector<double> out(data.size(), -1);
    ASSERT_TRUE(f.read_box(box, order,
                           std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    EXPECT_EQ(out, data);
  }
}

TEST(RowMajorFile, AppendAlongDim0IsCheap) {
  RowMajorFile f = make(Shape{4, 8});
  const double v = 5.0;
  ASSERT_TRUE(f.write_element(Index{3, 7},
                              std::as_bytes(std::span<const double>(&v, 1)))
                  .is_ok());
  auto moved = f.extend(0, 4);
  ASSERT_TRUE(moved.is_ok());
  EXPECT_EQ(moved.value(), 0u);  // no reorganization
  EXPECT_EQ(f.bounds(), (Shape{8, 8}));
  double out = 0;
  ASSERT_TRUE(
      f.read_element(Index{3, 7},
                     std::as_writable_bytes(std::span<double>(&out, 1)))
          .is_ok());
  EXPECT_EQ(out, 5.0);
  // New rows read as zero.
  ASSERT_TRUE(
      f.read_element(Index{7, 7},
                     std::as_writable_bytes(std::span<double>(&out, 1)))
          .is_ok());
  EXPECT_EQ(out, 0.0);
}

TEST(RowMajorFile, ExtendingInnerDimReorganizesButPreservesData) {
  RowMajorFile f = make(Shape{5, 4});
  std::vector<double> all(20);
  for (std::size_t i = 0; i < 20; ++i) all[i] = static_cast<double>(i);
  ASSERT_TRUE(f.write_box(Box{{0, 0}, {5, 4}}, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const double>(all)))
                  .is_ok());

  auto moved = f.extend(1, 3);
  ASSERT_TRUE(moved.is_ok());
  // Reorganization moved the whole old image plus the new image.
  EXPECT_EQ(moved.value(), 20u * 8 + 35u * 8);
  EXPECT_EQ(f.bounds(), (Shape{5, 7}));

  for (std::uint64_t i = 0; i < 5; ++i) {
    for (std::uint64_t j = 0; j < 7; ++j) {
      double out = -1;
      ASSERT_TRUE(
          f.read_element(Index{i, j},
                         std::as_writable_bytes(std::span<double>(&out, 1)))
              .is_ok());
      EXPECT_EQ(out, j < 4 ? all[i * 4 + j] : 0.0) << i << "," << j;
    }
  }
}

TEST(RowMajorFile, RepeatedInnerExtensionCostGrowsWithArray) {
  // The quadratic-total-cost behavior the paper motivates against: each
  // inner-dimension extension moves the whole (growing) file.
  RowMajorFile f = make(Shape{8, 8});
  std::uint64_t last = 0;
  for (int step = 0; step < 4; ++step) {
    auto moved = f.extend(1, 2);
    ASSERT_TRUE(moved.is_ok());
    EXPECT_GT(moved.value(), last);
    last = moved.value();
  }
}

TEST(RowMajorFile, ColumnReadIsStrided) {
  // Reading one column of an N x M row-major file issues N separate
  // storage requests (the poor access pattern of paper Sec. I).
  auto storage = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* raw = storage.get();
  auto f = RowMajorFile::create(std::move(storage), Shape{16, 16}, 8);
  ASSERT_TRUE(f.is_ok());
  const std::uint64_t reads_before = raw->stats().read_requests;
  std::vector<double> col(16);
  ASSERT_TRUE(f.value()
                  .read_box(Box{{0, 3}, {16, 4}}, MemoryOrder::kColMajor,
                            std::as_writable_bytes(std::span<double>(col)))
                  .is_ok());
  EXPECT_EQ(raw->stats().read_requests - reads_before, 16u);
}

TEST(RowMajorFile, OneDimensionalFile) {
  RowMajorFile f = make(Shape{10}, 4);
  const std::int32_t v = -9;
  ASSERT_TRUE(
      f.write_element(Index{9},
                      std::as_bytes(std::span<const std::int32_t>(&v, 1)))
          .is_ok());
  auto moved = f.extend(0, 5);
  ASSERT_TRUE(moved.is_ok());
  EXPECT_EQ(moved.value(), 0u);
  std::int32_t out = 0;
  ASSERT_TRUE(f.read_element(Index{9}, std::as_writable_bytes(
                                           std::span<std::int32_t>(&out, 1)))
                  .is_ok());
  EXPECT_EQ(out, -9);
}

TEST(RowMajorFile, MatchesMirrorUnderRandomOps) {
  RowMajorFile f = make(Shape{6, 6});
  std::vector<double> mirror(36, 0.0);
  SplitMix64 rng(11);
  for (int op = 0; op < 200; ++op) {
    Index idx{rng.next_below(6), rng.next_below(6)};
    if (rng.next() % 2 == 0) {
      const double v = rng.next_double();
      ASSERT_TRUE(
          f.write_element(idx, std::as_bytes(std::span<const double>(&v, 1)))
              .is_ok());
      mirror[static_cast<std::size_t>(idx[0] * 6 + idx[1])] = v;
    } else {
      double out = -1;
      ASSERT_TRUE(
          f.read_element(idx,
                         std::as_writable_bytes(std::span<double>(&out, 1)))
              .is_ok());
      EXPECT_EQ(out, mirror[static_cast<std::size_t>(idx[0] * 6 + idx[1])]);
    }
  }
}

}  // namespace
}  // namespace drx::baselines
