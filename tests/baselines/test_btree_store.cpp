#include "baselines/btree_chunk_store.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drx::baselines {
namespace {

std::vector<std::byte> chunk_payload(std::uint64_t tag,
                                     std::uint64_t bytes) {
  std::vector<std::byte> buf(static_cast<std::size_t>(bytes));
  SplitMix64 rng(tag + 1);
  for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xFF);
  return buf;
}

TEST(BTreeStore, WriteReadSingleChunk) {
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, 64);
  ASSERT_TRUE(store.is_ok());
  const std::uint64_t key[] = {3, 4};
  const auto data = chunk_payload(1, 64);
  ASSERT_TRUE(store.value().write_chunk(key, data).is_ok());
  std::vector<std::byte> out(64);
  ASSERT_TRUE(store.value().read_chunk(key, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.value().chunk_count(), 1u);
}

TEST(BTreeStore, MissingChunkIsNotFound) {
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, 32);
  ASSERT_TRUE(store.is_ok());
  const std::uint64_t key[] = {0, 0};
  std::vector<std::byte> out(32);
  EXPECT_EQ(store.value().read_chunk(key, out).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store.value().lookup(key).status().code(), ErrorCode::kNotFound);
}

TEST(BTreeStore, OverwriteKeepsSingleCopy) {
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       1, 16);
  ASSERT_TRUE(store.is_ok());
  const std::uint64_t key[] = {7};
  ASSERT_TRUE(store.value().write_chunk(key, chunk_payload(1, 16)).is_ok());
  ASSERT_TRUE(store.value().write_chunk(key, chunk_payload(2, 16)).is_ok());
  EXPECT_EQ(store.value().chunk_count(), 1u);
  std::vector<std::byte> out(16);
  ASSERT_TRUE(store.value().read_chunk(key, out).is_ok());
  EXPECT_EQ(out, chunk_payload(2, 16));
}

class BTreeScaleP : public ::testing::TestWithParam<int> {};

TEST_P(BTreeScaleP, ManyChunksWithSplitsRoundTrip) {
  const int n = GetParam();
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, 32);
  ASSERT_TRUE(store.is_ok());
  // Insert in a shuffled order to exercise splits at both ends.
  std::vector<std::uint64_t> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    order[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i);
  }
  SplitMix64 rng(9);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (std::uint64_t v : order) {
    const std::uint64_t key[] = {v / 37, v % 37};
    ASSERT_TRUE(store.value()
                    .write_chunk(key, chunk_payload(v, 32))
                    .is_ok());
  }
  EXPECT_EQ(store.value().chunk_count(), static_cast<std::uint64_t>(n));
  if (n > 500) {
    EXPECT_GT(store.value().stats().splits, 0u);
  }

  for (std::uint64_t v = 0; v < static_cast<std::uint64_t>(n); ++v) {
    const std::uint64_t key[] = {v / 37, v % 37};
    std::vector<std::byte> out(32);
    ASSERT_TRUE(store.value().read_chunk(key, out).is_ok()) << v;
    ASSERT_EQ(out, chunk_payload(v, 32)) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeScaleP,
                         ::testing::Values(1, 10, 200, 2000));

TEST(BTreeStore, PersistsAcrossReopen) {
  // Snapshot taken while the store (which owns the storage) is alive.
  auto snapshot = std::make_unique<pfs::MemStorage>();
  {
    auto storage = std::make_unique<pfs::MemStorage>();
    pfs::MemStorage* raw = storage.get();
    auto store = BTreeChunkStore::create(std::move(storage), 2, 16);
    ASSERT_TRUE(store.is_ok());
    for (std::uint64_t v = 0; v < 300; ++v) {
      const std::uint64_t key[] = {v, v * 3};
      ASSERT_TRUE(
          store.value().write_chunk(key, chunk_payload(v, 16)).is_ok());
    }
    ASSERT_TRUE(store.value().flush().is_ok());
    std::vector<std::byte> bytes(static_cast<std::size_t>(raw->size()));
    ASSERT_TRUE(raw->read_at(0, bytes).is_ok());
    ASSERT_TRUE(snapshot->write_at(0, bytes).is_ok());
  }
  auto reopened = BTreeChunkStore::open(std::move(snapshot));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  EXPECT_EQ(reopened.value().chunk_count(), 300u);
  EXPECT_EQ(reopened.value().rank(), 2u);
  for (std::uint64_t v = 0; v < 300; ++v) {
    const std::uint64_t key[] = {v, v * 3};
    std::vector<std::byte> out(16);
    ASSERT_TRUE(reopened.value().read_chunk(key, out).is_ok()) << v;
    EXPECT_EQ(out, chunk_payload(v, 16));
  }
}

TEST(BTreeStore, ColdCacheCostsNodeFetches) {
  BTreeChunkStore::Options opts;
  opts.cache_pages = 4;
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, 16, opts);
  ASSERT_TRUE(store.is_ok());
  for (std::uint64_t v = 0; v < 2000; ++v) {
    const std::uint64_t key[] = {v, v};
    ASSERT_TRUE(store.value().write_chunk(key, chunk_payload(v, 16)).is_ok());
  }
  ASSERT_TRUE(store.value().drop_cache().is_ok());
  store.value().reset_stats();

  SplitMix64 rng(3);
  std::vector<std::byte> out(16);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_below(2000);
    const std::uint64_t key[] = {v, v};
    ASSERT_TRUE(store.value().read_chunk(key, out).is_ok());
  }
  // Random lookups on a tiny cache must hit storage for most lookups (the
  // root stays hot, leaves thrash) — the index-traffic cost the paper's
  // computed access avoids.
  EXPECT_GT(store.value().stats().node_fetches, 100u);
}

TEST(BTreeStore, WarmCacheAvoidsFetches) {
  BTreeChunkStore::Options opts;
  opts.cache_pages = 4096;
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       2, 16, opts);
  ASSERT_TRUE(store.is_ok());
  for (std::uint64_t v = 0; v < 500; ++v) {
    const std::uint64_t key[] = {v, v};
    ASSERT_TRUE(store.value().write_chunk(key, chunk_payload(v, 16)).is_ok());
  }
  store.value().reset_stats();
  std::vector<std::byte> out(16);
  for (std::uint64_t v = 0; v < 500; ++v) {
    const std::uint64_t key[] = {v, v};
    ASSERT_TRUE(store.value().read_chunk(key, out).is_ok());
  }
  EXPECT_EQ(store.value().stats().node_fetches, 0u);
  EXPECT_GT(store.value().stats().cache_hits, 0u);
}

TEST(BTreeStore, OpenRejectsGarbage) {
  auto storage = std::make_unique<pfs::MemStorage>();
  std::vector<std::byte> junk(BTreeChunkStore::kPageBytes, std::byte{0x13});
  ASSERT_TRUE(storage->write_at(0, junk).is_ok());
  EXPECT_FALSE(BTreeChunkStore::open(std::move(storage)).is_ok());
}

TEST(BTreeStore, HighRankKeys) {
  auto store = BTreeChunkStore::create(std::make_unique<pfs::MemStorage>(),
                                       4, 8);
  ASSERT_TRUE(store.is_ok());
  for (std::uint64_t v = 0; v < 256; ++v) {
    const std::uint64_t key[] = {v & 3, (v >> 2) & 3, (v >> 4) & 3,
                                 (v >> 6) & 3};
    ASSERT_TRUE(store.value().write_chunk(key, chunk_payload(v, 8)).is_ok());
  }
  for (std::uint64_t v = 0; v < 256; ++v) {
    const std::uint64_t key[] = {v & 3, (v >> 2) & 3, (v >> 4) & 3,
                                 (v >> 6) & 3};
    std::vector<std::byte> out(8);
    ASSERT_TRUE(store.value().read_chunk(key, out).is_ok());
    EXPECT_EQ(out, chunk_payload(v, 8));
  }
}

}  // namespace
}  // namespace drx::baselines
