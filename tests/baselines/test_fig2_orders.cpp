// Paper Figure 2: the four element-allocation schemes on an 8x8 grid.
// Row-major (2a) and Z-order (2b) are pinned cell-by-cell against their
// standard definitions; the symmetric shell order (2c) is pinned against
// its shell structure; the arbitrary linear shell order (2d) is the axial
// mapping, checked for the properties the paper claims for it (dense,
// extendible along arbitrary dimensions in arbitrary order).
#include <gtest/gtest.h>

#include "baselines/order_mappings.hpp"
#include "core/axial_mapping.hpp"

namespace drx::baselines {
namespace {

using core::Index;
using core::Shape;

TEST(Fig2a, RowMajor8x8Table) {
  RowMajorMapping m(Shape{8, 8});
  for (std::uint64_t i = 0; i < 8; ++i) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(m.address_of(Index{i, j}), 8 * i + j);
      EXPECT_EQ(m.index_of(8 * i + j), (Index{i, j}));
    }
  }
}

TEST(Fig2a, RowMajorExtendibleInOneDimensionOnly) {
  // Appending a row keeps all addresses; appending a column would shift
  // every row — demonstrated via the address formula.
  RowMajorMapping before(Shape{8, 8});
  RowMajorMapping grown_rows(Shape{9, 8});
  RowMajorMapping grown_cols(Shape{8, 9});
  EXPECT_EQ(grown_rows.address_of(Index{3, 5}),
            before.address_of(Index{3, 5}));
  EXPECT_NE(grown_cols.address_of(Index{3, 5}),
            before.address_of(Index{3, 5}));
}

TEST(Fig2b, ZOrderQuadStructure) {
  ZOrderMapping m(2);
  // The defining 2x2 pattern and its recursive tiling.
  EXPECT_EQ(m.address_of(Index{0, 0}), 0u);
  EXPECT_EQ(m.address_of(Index{0, 1}), 1u);
  EXPECT_EQ(m.address_of(Index{1, 0}), 2u);
  EXPECT_EQ(m.address_of(Index{1, 1}), 3u);
  // Next quad starts at 4.
  EXPECT_EQ(m.address_of(Index{0, 2}), 4u);
  EXPECT_EQ(m.address_of(Index{2, 0}), 8u);
  EXPECT_EQ(m.address_of(Index{2, 2}), 12u);
  EXPECT_EQ(m.address_of(Index{3, 3}), 15u);
  // Doubling corner: the 8x8 grid ends at 63.
  EXPECT_EQ(m.address_of(Index{7, 7}), 63u);
}

TEST(Fig2b, ZOrderBijectiveOn8x8) {
  ZOrderMapping m(2);
  std::vector<bool> seen(64, false);
  for (std::uint64_t i = 0; i < 8; ++i) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      const std::uint64_t a = m.address_of(Index{i, j});
      ASSERT_LT(a, 64u);
      EXPECT_FALSE(seen[a]);
      seen[a] = true;
      EXPECT_EQ(m.index_of(a), (Index{i, j}));
    }
  }
}

TEST(Fig2b, ZOrderGrowthIsExponential) {
  // The addresses of a 2^k x 2^k block occupy exactly [0, 4^k): growth is
  // by doubling — the restriction the paper notes.
  ZOrderMapping m(2);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    const std::uint64_t n = 1ULL << k;
    std::uint64_t max_addr = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        max_addr = std::max(max_addr, m.address_of(Index{i, j}));
      }
    }
    EXPECT_EQ(max_addr, n * n - 1);
  }
}

TEST(Fig2b, ZOrder3D) {
  ZOrderMapping m(3);
  EXPECT_EQ(m.address_of(Index{0, 0, 0}), 0u);
  EXPECT_EQ(m.address_of(Index{0, 0, 1}), 1u);
  EXPECT_EQ(m.address_of(Index{0, 1, 0}), 2u);
  EXPECT_EQ(m.address_of(Index{1, 0, 0}), 4u);
  EXPECT_EQ(m.address_of(Index{1, 1, 1}), 7u);
  EXPECT_EQ(m.index_of(7), (Index{1, 1, 1}));
}

TEST(Fig2c, SymmetricShellStructure) {
  SymmetricShellMapping m;
  // Shell s occupies [s^2, (s+1)^2): row part (s, 0..s) then column part.
  EXPECT_EQ(m.address_of(0, 0), 0u);
  EXPECT_EQ(m.address_of(1, 0), 1u);
  EXPECT_EQ(m.address_of(1, 1), 2u);
  EXPECT_EQ(m.address_of(0, 1), 3u);
  EXPECT_EQ(m.address_of(2, 0), 4u);
  EXPECT_EQ(m.address_of(2, 2), 6u);
  EXPECT_EQ(m.address_of(0, 2), 8u);
  for (std::uint64_t s = 0; s < 8; ++s) {
    EXPECT_EQ(m.address_of(s, 0), s * s);
    EXPECT_EQ(m.address_of(0, s), (s + 1) * (s + 1) - 1);
  }
}

TEST(Fig2c, SymmetricShellBijectiveOn8x8) {
  SymmetricShellMapping m;
  std::vector<bool> seen(64, false);
  for (std::uint64_t i = 0; i < 8; ++i) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      const std::uint64_t a = m.address_of(i, j);
      ASSERT_LT(a, 64u);
      EXPECT_FALSE(seen[a]);
      seen[a] = true;
      const auto [bi, bj] = m.index_of(a);
      EXPECT_EQ(bi, i);
      EXPECT_EQ(bj, j);
    }
  }
}

TEST(Fig2c, SymmetricShellGrowthIsCyclicLinear) {
  // Growing the square from n x n to (n+1) x (n+1) adds exactly the
  // addresses [n^2, (n+1)^2) — linear growth, but both dimensions must
  // expand together (the cyclic restriction).
  SymmetricShellMapping m;
  for (std::uint64_t n = 1; n <= 8; ++n) {
    std::uint64_t max_addr = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        max_addr = std::max(max_addr, m.address_of(i, j));
      }
    }
    EXPECT_EQ(max_addr, n * n - 1);
  }
}

TEST(Fig2d, AxialOrderExtendsArbitrarilyWhereOthersCannot) {
  // The paper's point: only the axial-vector scheme supports dense linear
  // growth along an ARBITRARY dimension sequence. Grow a 1x1 grid through
  // a deliberately non-cyclic sequence and verify density after each step.
  core::AxialMapping m(Shape{1, 1});
  const std::size_t sequence[] = {0, 0, 1, 0, 1, 1, 1, 0};
  for (std::size_t dim : sequence) {
    m.extend(dim, 1);
    std::vector<bool> seen(m.total_chunks(), false);
    core::Box full{Index{0, 0}, m.bounds()};
    core::for_each_index(full, [&](const Index& idx) {
      const std::uint64_t a = m.address_of(idx);
      ASSERT_LT(a, m.total_chunks());
      ASSERT_FALSE(seen[a]);
      seen[a] = true;
    });
  }
  EXPECT_EQ(m.bounds(), (Shape{5, 5}));
}

TEST(Fig2, AllFourSchemesAgreeAtOrigin) {
  EXPECT_EQ(RowMajorMapping(Shape{8, 8}).address_of(Index{0, 0}), 0u);
  EXPECT_EQ(ZOrderMapping(2).address_of(Index{0, 0}), 0u);
  EXPECT_EQ(SymmetricShellMapping().address_of(0, 0), 0u);
  EXPECT_EQ(core::AxialMapping(Shape{1, 1}).address_of(Index{0, 0}), 0u);
}

}  // namespace
}  // namespace drx::baselines
