#include "baselines/dra_like.hpp"

#include <gtest/gtest.h>

#include "simpi/runtime.hpp"

namespace drx::baselines {
namespace {

using core::Box;
using core::Index;
using core::MemoryOrder;
using core::Shape;

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 3;
  c.stripe_size = 128;
  return c;
}

double cell_value(const Index& idx) {
  return static_cast<double>(idx[0]) * 50 + static_cast<double>(idx[1]);
}

class DraP : public ::testing::TestWithParam<int> {};

TEST_P(DraP, ZoneWriteReadRoundTrip) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    auto fr = DraLikeFile::create(comm, fs, "d", Shape{12, 10}, Shape{3, 2},
                                  sizeof(double));
    ASSERT_TRUE(fr.is_ok()) << fr.status();
    DraLikeFile f = std::move(fr).value();

    const auto dist = f.block_distribution(comm.size());
    const Box box = f.zone_element_box(dist, comm.rank());
    const Shape shape = box.shape();
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    core::for_each_index(box, [&](const Index& idx) {
      Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
      zone[static_cast<std::size_t>(
          core::linearize(rel, shape, MemoryOrder::kRowMajor))] =
          cell_value(idx);
    });
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)))
                    .is_ok());
    comm.barrier();

    std::vector<double> out(zone.size(), -1);
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    EXPECT_EQ(out, zone);
    ASSERT_TRUE(f.close().is_ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, DraP, ::testing::Values(1, 2, 4));

TEST(DraLike, PersistsAcrossOpen) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    {
      DraLikeFile f = DraLikeFile::create(comm, fs, "d", Shape{6, 6},
                                          Shape{2, 2}, sizeof(double))
                          .value();
      const auto dist = f.block_distribution(comm.size());
      const Box box = f.zone_element_box(dist, comm.rank());
      const Shape shape = box.shape();
      std::vector<double> zone(static_cast<std::size_t>(box.volume()));
      core::for_each_index(box, [&](const Index& idx) {
        Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
        zone[static_cast<std::size_t>(
            core::linearize(rel, shape, MemoryOrder::kRowMajor))] =
            cell_value(idx);
      });
      ASSERT_TRUE(
          f.write_my_zone(dist, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const double>(zone)))
              .is_ok());
      ASSERT_TRUE(f.close().is_ok());
    }
    comm.barrier();
    {
      auto fr = DraLikeFile::open(comm, fs, "d");
      ASSERT_TRUE(fr.is_ok()) << fr.status();
      DraLikeFile f = std::move(fr).value();
      EXPECT_EQ(f.bounds(), (Shape{6, 6}));
      const auto dist = f.block_distribution(comm.size());
      const Box box = f.zone_element_box(dist, comm.rank());
      const Shape shape = box.shape();
      std::vector<double> out(static_cast<std::size_t>(box.volume()));
      ASSERT_TRUE(
          f.read_my_zone(dist, MemoryOrder::kRowMajor,
                         std::as_writable_bytes(std::span<double>(out)))
              .is_ok());
      core::for_each_index(box, [&](const Index& idx) {
        Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
        ASSERT_EQ(out[static_cast<std::size_t>(core::linearize(
                      rel, shape, MemoryOrder::kRowMajor))],
                  cell_value(idx));
      });
      ASSERT_TRUE(f.close().is_ok());
    }
  });
}

TEST(DraLike, OpenMissingFails) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    EXPECT_FALSE(DraLikeFile::open(comm, fs, "missing").is_ok());
  });
}

}  // namespace
}  // namespace drx::baselines
