// Exact reproduction of paper Figure 3 / Section III-B: the 3-D extendible
// array starting at A[4][3][1] (chunks) with the stated expansion sequence,
// its axial-vector records, and the worked address computations.
#include <gtest/gtest.h>

#include "core/axial_mapping.hpp"

namespace drx::core {
namespace {

/// "Consider an initially array that is allocated as A[4][3][1] ...
/// Suppose the array is then extended along dimension D2 by two chunk
/// indices; one immediately followed by another. ... Let the array be
/// subsequently extended along the D1 dimension by one index, then along
/// the D0 dimension by 2 indices and then along the D2 dimension by 1."
AxialMapping fig3_mapping() {
  AxialMapping m(Shape{4, 3, 1});
  m.extend(2, 1);
  m.extend(2, 1);  // uninterrupted -> one record
  m.extend(1, 1);
  m.extend(0, 2);
  m.extend(2, 1);
  return m;
}

TEST(Fig3, FinalGeometry) {
  const AxialMapping m = fig3_mapping();
  EXPECT_EQ(m.bounds(), (Shape{6, 4, 4}));
  EXPECT_EQ(m.total_chunks(), 96u);
}

TEST(Fig3, AxialVectorRecordCounts) {
  // "In the example of Figure 3b, E0 = 2, E1 = 2, and E2 = 3."
  const AxialMapping m = fig3_mapping();
  EXPECT_EQ(m.axial_vector(0).record_count(), 2u);
  EXPECT_EQ(m.axial_vector(1).record_count(), 2u);
  EXPECT_EQ(m.axial_vector(2).record_count(), 3u);
  EXPECT_EQ(m.total_records(), 7u);
}

TEST(Fig3, AxialVectorRecordContents) {
  const AxialMapping m = fig3_mapping();

  // Γ_0: sentinel {0; -1; 0 0 0}, then {4; 48; C = [12, 3, 1]}.
  {
    const auto& recs = m.axial_vector(0).records();
    EXPECT_EQ(recs[0].start_index, 0u);
    EXPECT_EQ(recs[0].start_address, ExpansionRecord::kUnallocated);
    EXPECT_EQ(recs[1].start_index, 4u);
    EXPECT_EQ(recs[1].start_address, 48);
    EXPECT_EQ(recs[1].coeffs, (std::vector<std::uint64_t>{12, 3, 1}));
  }
  // Γ_1: sentinel, then {3; 36; C = [3, 12, 1]}.
  {
    const auto& recs = m.axial_vector(1).records();
    EXPECT_EQ(recs[0].start_address, ExpansionRecord::kUnallocated);
    EXPECT_EQ(recs[1].start_index, 3u);
    EXPECT_EQ(recs[1].start_address, 36);
    EXPECT_EQ(recs[1].coeffs, (std::vector<std::uint64_t>{3, 12, 1}));
  }
  // Γ_2: initial {0; 0; C = [3, 1, 12]}, {1; 12; C = [3, 1, 12]},
  // {3; 72; C = [4, 1, 24]}. (The figure prints the initial record's C_l
  // as the degenerate 1 since the segment spans a single index; we store
  // the general value 12 — every address the paper derives is identical.)
  {
    const auto& recs = m.axial_vector(2).records();
    EXPECT_EQ(recs[0].start_index, 0u);
    EXPECT_EQ(recs[0].start_address, 0);
    EXPECT_EQ(recs[0].coeffs[0], 3u);
    EXPECT_EQ(recs[0].coeffs[1], 1u);
    EXPECT_EQ(recs[1].start_index, 1u);
    EXPECT_EQ(recs[1].start_address, 12);
    EXPECT_EQ(recs[1].coeffs, (std::vector<std::uint64_t>{3, 1, 12}));
    EXPECT_EQ(recs[2].start_index, 3u);
    EXPECT_EQ(recs[2].start_address, 72);
    EXPECT_EQ(recs[2].coeffs, (std::vector<std::uint64_t>{4, 1, 24}));
  }
}

TEST(Fig3, WorkedAddressExamples) {
  const AxialMapping m = fig3_mapping();
  // "the chunk A[2,1,0] is assigned to address 7"
  EXPECT_EQ(m.address_of(Index{2, 1, 0}), 7u);
  // "chunk A[3,1,2] is assigned to address 34"
  EXPECT_EQ(m.address_of(Index{3, 1, 2}), 34u);
  // "The computation F*(<4,2,2>) = 48 + 12x(4-4) + 3x2 + 1x2 = 56"
  EXPECT_EQ(m.address_of(Index{4, 2, 2}), 56u);
}

TEST(Fig3, Equation2MaxSelection) {
  // For A[4,2,2] the candidate records give M* = max(48, -1, 12) = 48 and
  // hence l = 0 — verified indirectly: the address falls inside the D0
  // segment [48, 72).
  const AxialMapping m = fig3_mapping();
  const std::uint64_t q = m.address_of(Index{4, 2, 2});
  EXPECT_GE(q, 48u);
  EXPECT_LT(q, 72u);
}

TEST(Fig3, InverseRoundTripAllChunks) {
  const AxialMapping m = fig3_mapping();
  std::vector<bool> seen(96, false);
  Box full{Index{0, 0, 0}, m.bounds()};
  for_each_index(full, [&](const Index& idx) {
    const std::uint64_t q = m.address_of(idx);
    ASSERT_LT(q, 96u);
    EXPECT_FALSE(seen[q]) << "address " << q << " assigned twice";
    seen[q] = true;
    EXPECT_EQ(m.index_of(q), idx);
  });
  // Dense: every address in [0, 96) used exactly once.
  for (std::size_t q = 0; q < 96; ++q) {
    EXPECT_TRUE(seen[q]) << "address " << q << " unused";
  }
}

TEST(Fig3, SegmentInteriorAddressesFollowFigure) {
  const AxialMapping m = fig3_mapping();
  // Initial block: row-major of [4,3] at I2 = 0.
  EXPECT_EQ(m.address_of(Index{0, 0, 0}), 0u);
  EXPECT_EQ(m.address_of(Index{0, 1, 0}), 1u);
  EXPECT_EQ(m.address_of(Index{1, 0, 0}), 3u);
  EXPECT_EQ(m.address_of(Index{3, 2, 0}), 11u);
  // D2 segment (indices 1..2): 12 + (i2-1)*12 + 3*i0 + i1.
  EXPECT_EQ(m.address_of(Index{0, 0, 1}), 12u);
  EXPECT_EQ(m.address_of(Index{0, 0, 2}), 24u);
  EXPECT_EQ(m.address_of(Index{3, 2, 2}), 35u);
  // D1 segment (index 3): 36 + 3*i0 + i2.
  EXPECT_EQ(m.address_of(Index{0, 3, 0}), 36u);
  EXPECT_EQ(m.address_of(Index{3, 3, 2}), 47u);
  // D0 segment (indices 4..5): 48 + (i0-4)*12 + 3*i1 + i2.
  EXPECT_EQ(m.address_of(Index{4, 0, 0}), 48u);
  EXPECT_EQ(m.address_of(Index{5, 3, 2}), 71u);
  // Final D2 segment (index 3): 72 + 4*i0 + i1.
  EXPECT_EQ(m.address_of(Index{0, 0, 3}), 72u);
  EXPECT_EQ(m.address_of(Index{5, 3, 3}), 95u);
}

}  // namespace
}  // namespace drx::core
