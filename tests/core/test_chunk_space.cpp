#include "core/chunk_space.hpp"

#include <gtest/gtest.h>

namespace drx::core {
namespace {

TEST(ChunkSpace, Basics) {
  ChunkSpace cs(Shape{2, 3}, MemoryOrder::kRowMajor);
  EXPECT_EQ(cs.rank(), 2u);
  EXPECT_EQ(cs.elements_per_chunk(), 6u);
  EXPECT_EQ(cs.chunk_shape(), (Shape{2, 3}));
}

TEST(ChunkSpace, ChunkBoundsCeil) {
  ChunkSpace cs(Shape{2, 3}, MemoryOrder::kRowMajor);
  EXPECT_EQ(cs.chunk_bounds_for(Shape{10, 12}), (Shape{5, 4}));
  EXPECT_EQ(cs.chunk_bounds_for(Shape{9, 10}), (Shape{5, 4}));
  EXPECT_EQ(cs.chunk_bounds_for(Shape{1, 1}), (Shape{1, 1}));
  // Zero bounds still occupy one chunk row.
  EXPECT_EQ(cs.chunk_bounds_for(Shape{0, 5}), (Shape{1, 2}));
}

TEST(ChunkSpace, ChunkOfAndOffsetRowMajor) {
  ChunkSpace cs(Shape{2, 3}, MemoryOrder::kRowMajor);
  EXPECT_EQ(cs.chunk_of(Index{0, 0}), (Index{0, 0}));
  EXPECT_EQ(cs.chunk_of(Index{5, 7}), (Index{2, 2}));
  // Element (5,7) sits at (1,1) within its chunk: offset 1*3+1 = 4.
  EXPECT_EQ(cs.offset_in_chunk(Index{5, 7}), 4u);
  EXPECT_EQ(cs.offset_in_chunk(Index{0, 0}), 0u);
  EXPECT_EQ(cs.offset_in_chunk(Index{1, 2}), 5u);
}

TEST(ChunkSpace, OffsetColMajor) {
  ChunkSpace cs(Shape{2, 3}, MemoryOrder::kColMajor);
  // (1,2) within chunk: col-major offset = 1 + 2*2 = 5; (0,1) -> 2.
  EXPECT_EQ(cs.offset_in_chunk(Index{1, 2}), 5u);
  EXPECT_EQ(cs.offset_in_chunk(Index{0, 1}), 2u);
}

TEST(ChunkSpace, ChunkBox) {
  ChunkSpace cs(Shape{2, 3}, MemoryOrder::kRowMajor);
  EXPECT_EQ(cs.chunk_box(Index{2, 1}), (Box{{4, 3}, {6, 6}}));
}

TEST(ChunkSpace, CoveringChunks) {
  ChunkSpace cs(Shape{2, 3}, MemoryOrder::kRowMajor);
  // Element box [1,2) x [2,8) touches chunk rows 0 and columns 0..2.
  EXPECT_EQ(cs.covering_chunks(Box{{1, 2}, {2, 8}}), (Box{{0, 0}, {1, 3}}));
  EXPECT_EQ(cs.covering_chunks(Box{{0, 0}, {2, 3}}), (Box{{0, 0}, {1, 1}}));
  EXPECT_EQ(cs.covering_chunks(Box{{2, 3}, {4, 6}}), (Box{{1, 1}, {2, 2}}));
}

TEST(ChunkSpace, EveryElementOffsetUniqueWithinChunk) {
  for (auto order : {MemoryOrder::kRowMajor, MemoryOrder::kColMajor}) {
    ChunkSpace cs(Shape{3, 4, 2}, order);
    std::vector<bool> seen(24, false);
    for_each_index(Box{{0, 0, 0}, {3, 4, 2}}, [&](const Index& idx) {
      const std::uint64_t off = cs.offset_in_chunk(idx);
      ASSERT_LT(off, 24u);
      EXPECT_FALSE(seen[off]);
      seen[off] = true;
    });
  }
}

TEST(ChunkSpace, ZeroChunkExtentAborts) {
  EXPECT_DEATH((void)ChunkSpace(Shape{2, 0}, MemoryOrder::kRowMajor),
               "check failed");
}

}  // namespace
}  // namespace drx::core
