// Failure-path coverage: corrupt metadata files, truncated data files,
// invalid arguments, and storage-level error propagation.
#include <gtest/gtest.h>

#include "core/drx_file.hpp"
#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

namespace drx::core {
namespace {

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

std::unique_ptr<pfs::MemStorage> storage_with(std::span<const std::byte> b) {
  auto s = std::make_unique<pfs::MemStorage>();
  EXPECT_TRUE(s->write_at(0, b).is_ok());
  return s;
}

TEST(FailureInjection, CreateRejectsBadArguments) {
  EXPECT_FALSE(DrxFile::create(std::make_unique<pfs::MemStorage>(),
                               std::make_unique<pfs::MemStorage>(), Shape{},
                               Shape{}, dbl_opts())
                   .is_ok());
  EXPECT_FALSE(DrxFile::create(std::make_unique<pfs::MemStorage>(),
                               std::make_unique<pfs::MemStorage>(),
                               Shape{4, 4}, Shape{2}, dbl_opts())
                   .is_ok());
  EXPECT_FALSE(DrxFile::create(std::make_unique<pfs::MemStorage>(),
                               std::make_unique<pfs::MemStorage>(),
                               Shape{4, 4}, Shape{2, 0}, dbl_opts())
                   .is_ok());
}

TEST(FailureInjection, OpenRejectsEmptyMetadata) {
  auto r = DrxFile::open(std::make_unique<pfs::MemStorage>(),
                         std::make_unique<pfs::MemStorage>());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
}

TEST(FailureInjection, OpenRejectsGarbageMetadata) {
  std::vector<std::byte> junk(256, std::byte{0x5A});
  auto r = DrxFile::open(storage_with(junk),
                         std::make_unique<pfs::MemStorage>());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
}

TEST(FailureInjection, OpenRejectsBitFlipAnywhereInMetadata) {
  // Build a valid .xmd image, then flip each byte in turn; open must never
  // succeed with different semantics — either it fails, or (for bytes in
  // ignorable padding, of which this format has none) yields the original.
  Metadata meta(ElementType::kInt64, MemoryOrder::kColMajor, Shape{6, 4},
                Shape{2, 2});
  meta.mapping.extend(0, 2);
  const auto good = meta.to_bytes();
  int rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto bad = good;
    bad[i] ^= std::byte{0x01};
    auto r = Metadata::from_bytes(bad);
    if (!r.is_ok()) {
      ++rejected;
    } else {
      // A surviving flip must decode identically (impossible here since
      // the checksum covers the payload, magic and version are pinned,
      // and length mismatches fail) — so reaching this means corruption
      // slipped through.
      ADD_FAILURE() << "bit flip at byte " << i << " was accepted";
    }
  }
  EXPECT_EQ(rejected, static_cast<int>(good.size()));
}

TEST(FailureInjection, OpenRejectsTruncatedDataFile) {
  // Read the flushed metadata image back while the file (which owns the
  // storage) is still alive.
  std::vector<std::byte> meta_bytes;
  {
    auto meta_storage = std::make_unique<pfs::MemStorage>();
    pfs::MemStorage* meta_raw = meta_storage.get();
    auto f = DrxFile::create(std::move(meta_storage),
                             std::make_unique<pfs::MemStorage>(),
                             Shape{4, 4}, Shape{2, 2}, dbl_opts());
    ASSERT_TRUE(f.is_ok());
    meta_bytes.resize(static_cast<std::size_t>(meta_raw->size()));
    ASSERT_TRUE(meta_raw->read_at(0, meta_bytes).is_ok());
  }
  // Fresh (empty) data storage: too small for the promised chunks.
  auto r = DrxFile::open(storage_with(meta_bytes),
                         std::make_unique<pfs::MemStorage>());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
}

TEST(FailureInjection, ExtendInvalidDimension) {
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(), Shape{4, 4},
                           Shape{2, 2}, dbl_opts());
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value().extend(2, 1).code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(f.value().extend(0, 0).is_ok());  // no-op is fine
}

TEST(FailureInjection, DrxMpOpenCorruptMetadataFailsOnAllRanks) {
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);
  {
    auto h = fs.create("bad.xmd").value();
    std::vector<std::byte> junk(64, std::byte{0xEE});
    ASSERT_TRUE(h.write_at(0, junk).is_ok());
    ASSERT_TRUE(fs.create("bad.xta").is_ok());
  }
  simpi::run(3, [&](simpi::Comm& comm) {
    auto r = DrxMpFile::open(comm, fs, "bad");
    EXPECT_FALSE(r.is_ok());
  });
}

TEST(FailureInjection, DrxMpCreateRankMismatchArgs) {
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);
  simpi::run(2, [&](simpi::Comm& comm) {
    auto r = DrxMpFile::create(comm, fs, "x", Shape{4, 4}, Shape{2},
                               dbl_opts());
    EXPECT_FALSE(r.is_ok());
    comm.barrier();
  });
}

TEST(FailureInjection, MetadataSurvivesWhatItValidates) {
  // Round-trip sanity after adversarial growth, and rejection of element
  // bounds the chunk grid cannot cover.
  Metadata meta(ElementType::kComplexDouble, MemoryOrder::kRowMajor,
                Shape{3, 3, 3}, Shape{2, 2, 2});
  for (int i = 0; i < 30; ++i) {
    meta.mapping.extend(static_cast<std::size_t>(i) % 3, 1);
  }
  // Largest coverable bounds: grid * chunk extent. One element more in any
  // dimension needs a grid row that does not exist.
  const Shape grid = meta.mapping.bounds();
  meta.element_bounds = {grid[0] * 2, grid[1] * 2, grid[2] * 2};
  EXPECT_TRUE(Metadata::from_bytes(meta.to_bytes()).is_ok());
  meta.element_bounds[1] += 1;
  EXPECT_FALSE(Metadata::from_bytes(meta.to_bytes()).is_ok());
  meta.element_bounds = {grid[0], 1, 2};
  EXPECT_TRUE(Metadata::from_bytes(meta.to_bytes()).is_ok());
}

}  // namespace
}  // namespace drx::core
