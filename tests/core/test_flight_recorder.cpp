// Flight recorder end-to-end (obs/flight.hpp): the always-on ring must
// produce a parseable post-mortem dump when a deferred write-back hits a
// sticky I/O error — with tracing disabled, the production configuration
// — and the dump must contain the failing op's causal chain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/chunk_cache.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/opctx.hpp"
#include "obs/trace.hpp"

namespace drx::core {
namespace {

/// Storage wrapper injecting write failures over MemStorage (the
/// write-behind eviction path defers these onto pool workers).
class FaultyStorage final : public pfs::Storage {
 public:
  struct Controls {
    std::atomic<int> fail_writes_after{-1};  ///< -1 = never fail
    std::atomic<int> writes_seen{0};
  };

  explicit FaultyStorage(Controls& controls) : controls_(&controls) {}

  Status read_at(std::uint64_t offset, std::span<std::byte> out) override {
    return inner_.read_at(offset, out);
  }
  Status write_at(std::uint64_t offset,
                  std::span<const std::byte> data) override {
    const int seen = controls_->writes_seen.fetch_add(1);
    const int fail_after = controls_->fail_writes_after.load();
    if (fail_after >= 0 && seen >= fail_after) {
      return Status(ErrorCode::kIoError, "injected write failure");
    }
    return inner_.write_at(offset, data);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  Status truncate(std::uint64_t new_size) override {
    return inner_.truncate(new_size);
  }
  Status flush() override { return Status::ok(); }

 private:
  Controls* controls_;
  pfs::MemStorage inner_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// RAII: redirect the flight dump to a temp path, restore the default.
class FlightPathGuard {
 public:
  explicit FlightPathGuard(const std::string& path) {
    obs::set_flight_path(path);
  }
  ~FlightPathGuard() { obs::set_flight_path("drx-flight.json"); }
  FlightPathGuard(const FlightPathGuard&) = delete;
  FlightPathGuard& operator=(const FlightPathGuard&) = delete;
};

TEST(FlightRecorder, EnabledByDefaultAndRecordsWithoutTracing) {
  ASSERT_TRUE(obs::trace_path().empty())
      << "DRX_TRACE must not be set in the test environment";
  ASSERT_FALSE(obs::trace_enabled());
  EXPECT_TRUE(obs::flight_enabled());
  const std::uint64_t before = obs::flight_record_count();
  {
    obs::OpScope op("op.flight_smoke");
    obs::ScopedSpan span("test.flight_smoke", "test", 64);
  }
  EXPECT_GT(obs::flight_record_count(), before)
      << "spans must reach the flight ring with tracing disabled";
}

TEST(FlightRecorder, OnDemandDumpIsParseable) {
  const std::string path =
      ::testing::TempDir() + "drx_flight_on_demand.json";
  {
    obs::OpScope op("op.on_demand");
    obs::ScopedSpan span("test.on_demand", "test");
  }
  ASSERT_TRUE(obs::dump_flight(path, "on-demand").is_ok());
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  ASSERT_TRUE(obs::json_validate(text)) << text.substr(0, 400);
  auto doc = obs::json_parse(text);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("format")->as_string(), "drx-flight");
  EXPECT_EQ(doc.value().find("reason")->as_string(), "on-demand");
  std::remove(path.c_str());
}

TEST(FlightRecorder, DeferredWriteErrorDumpsFailingOpCausalChain) {
  ASSERT_FALSE(obs::trace_enabled());
  const std::string path =
      ::testing::TempDir() + "drx_flight_deferred_error.json";
  std::remove(path.c_str());
  FlightPathGuard guard(path);

  FaultyStorage::Controls controls;
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto fr = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                            std::make_unique<FaultyStorage>(controls),
                            Shape{4, 4}, Shape{2, 2}, options);
  ASSERT_TRUE(fr.is_ok());
  DrxFile file = std::move(fr).value();
  CachedDrxFile cached(file, /*capacity_chunks=*/1,
                       ChunkCache::AsyncOptions{/*io_threads=*/2,
                                                /*prefetch_depth=*/4});

  // Dirty chunk 0 under a real op, then doom its deferred write-back:
  // two back-to-back misses on another chunk defeat the scan-resistant
  // bypass (same-address re-miss is always admitted), so the second get
  // faults the chunk in, evicting chunk 0 onto a pool worker whose
  // write fails and records the sticky error — the flight-dump trigger.
  const std::uint64_t idx0[] = {0, 0};
  const std::uint64_t idx1[] = {2, 2};
  ASSERT_TRUE(cached.set<double>(idx0, 42.0).is_ok());
  controls.fail_writes_after = 0;
  ASSERT_TRUE(cached.get<double>(idx1).is_ok());
  ASSERT_TRUE(cached.get<double>(idx1).is_ok());
  const Status flushed = cached.flush();
  EXPECT_FALSE(flushed.is_ok());
  EXPECT_EQ(flushed.code(), ErrorCode::kIoError);

  // The dump is written by the failing worker right after it records the
  // error; flush()'s barrier does not wait for the file write, so poll.
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text = read_file(path);
    if (!text.empty() && obs::json_validate(text)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_FALSE(text.empty()) << "no flight dump at " << path;
  ASSERT_TRUE(obs::json_validate(text)) << text.substr(0, 400);
  auto doc = obs::json_parse(text);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("format")->as_string(), "drx-flight");
  EXPECT_EQ(doc.value().find("reason")->as_string(), "deferred-io-error");

  // The causal chain of the failing op must be on record: the submit-side
  // flow_out, the worker-side flow_in (the dumping worker's own job span
  // is still open at dump time, so the dequeue record is its footprint),
  // and an op summary for the cached operation that submitted the write.
  const obs::JsonValue* threads = doc.value().find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_array());
  bool flow_out_with_op = false;
  bool flow_in_with_op = false;
  bool op_summary = false;
  for (const auto& t : threads->array) {
    const obs::JsonValue* records = t.find("records");
    if (records == nullptr || !records->is_array()) continue;
    for (const auto& r : records->array) {
      const std::uint64_t op = r.uint_at("op");
      const auto kind = r.find("kind")->as_string();
      const auto name = r.find("name")->as_string();
      if (kind == "flow_out" && op != 0) flow_out_with_op = true;
      if (kind == "flow_in" && op != 0) flow_in_with_op = true;
      if (kind == "op" && name.find("op.cached_") == 0) op_summary = true;
    }
  }
  EXPECT_TRUE(flow_out_with_op) << "no submit-side flow record with an op id";
  EXPECT_TRUE(flow_in_with_op)
      << "no worker-side dequeue record carrying the submitting op";
  EXPECT_TRUE(op_summary) << "no op-summary record for the cached op";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace drx::core
