#include "core/drxmp.hpp"

#include <gtest/gtest.h>

#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

pfs::PfsConfig cfg(int servers = 4, std::uint64_t stripe = 256) {
  pfs::PfsConfig c;
  c.num_servers = servers;
  c.stripe_size = stripe;
  return c;
}

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

double cell_value(const Index& idx) {
  double v = 0;
  for (std::uint64_t x : idx) v = v * 1000 + static_cast<double>(x) + 1;
  return v;
}

/// Fills `buf` (the zone box in `order`) with cell_value per element.
void fill_zone(const Box& box, MemoryOrder order, std::span<double> buf) {
  const Shape shape = box.shape();
  for_each_index(box, [&](const Index& idx) {
    Index rel(idx.size());
    for (std::size_t d = 0; d < idx.size(); ++d) rel[d] = idx[d] - box.lo[d];
    buf[static_cast<std::size_t>(linearize(rel, shape, order))] =
        cell_value(idx);
  });
}

void check_zone(const Box& box, MemoryOrder order,
                std::span<const double> buf) {
  const Shape shape = box.shape();
  for_each_index(box, [&](const Index& idx) {
    Index rel(idx.size());
    for (std::size_t d = 0; d < idx.size(); ++d) rel[d] = idx[d] - box.lo[d];
    ASSERT_EQ(buf[static_cast<std::size_t>(linearize(rel, shape, order))],
              cell_value(idx))
        << "element (" << idx[0] << (idx.size() > 1 ? "," : "")
        << (idx.size() > 1 ? std::to_string(idx[1]) : "") << ")";
  });
}

class DrxMpP : public ::testing::TestWithParam<int> {};

TEST_P(DrxMpP, CreateWriteReadZonesCollective) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    auto fr = DrxMpFile::create(comm, fs, "arr", Shape{12, 10}, Shape{3, 2},
                                dbl_opts());
    ASSERT_TRUE(fr.is_ok()) << fr.status();
    DrxMpFile f = std::move(fr).value();

    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    fill_zone(box, MemoryOrder::kRowMajor, zone);
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)))
                    .is_ok());
    comm.barrier();

    // Read back my zone in FORTRAN order (exercises transposition).
    std::vector<double> out(zone.size(), -1);
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kColMajor,
                               std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    check_zone(box, MemoryOrder::kColMajor, out);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(DrxMpP, IndependentMatchesCollective) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "arr", Shape{8, 8}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    fill_zone(box, MemoryOrder::kRowMajor, zone);
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)),
                                /*collective=*/false)
                    .is_ok());
    comm.barrier();

    std::vector<double> coll(zone.size()), ind(zone.size());
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(coll)),
                               /*collective=*/true)
                    .is_ok());
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(ind)),
                               /*collective=*/false)
                    .is_ok());
    EXPECT_EQ(coll, ind);
    EXPECT_EQ(coll, zone);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(DrxMpP, ParallelExtendPreservesAndGrows) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "arr", Shape{6, 6}, Shape{2, 3},
                                    dbl_opts())
                      .value();
    {
      const Distribution dist = f.block_distribution();
      const Box box = f.zone_element_box(dist, comm.rank());
      std::vector<double> zone(static_cast<std::size_t>(box.volume()));
      fill_zone(box, MemoryOrder::kRowMajor, zone);
      ASSERT_TRUE(
          f.write_my_zone(dist, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const double>(zone)))
              .is_ok());
    }
    ASSERT_TRUE(f.extend_all(0, 4).is_ok());
    ASSERT_TRUE(f.extend_all(1, 3).is_ok());
    EXPECT_EQ(f.bounds(), (Shape{10, 9}));

    // Whole-array collective read, split by the NEW distribution; old data
    // intact, new region zero.
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> out(static_cast<std::size_t>(box.volume()), -1);
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    const Shape shape = box.shape();
    for_each_index(box, [&](const Index& idx) {
      Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
      const double got = out[static_cast<std::size_t>(
          linearize(rel, shape, MemoryOrder::kRowMajor))];
      if (idx[0] < 6 && idx[1] < 6) {
        ASSERT_EQ(got, cell_value(idx));
      } else {
        ASSERT_EQ(got, 0.0);
      }
    });
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(DrxMpP, OpenReplicatesMetadata) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  // Phase 1: a single "serial" process creates and extends the array.
  simpi::run(1, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "arr", Shape{4, 4}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    ASSERT_TRUE(f.extend_all(1, 4).is_ok());
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, 0);
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    fill_zone(box, MemoryOrder::kRowMajor, zone);
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)))
                    .is_ok());
    ASSERT_TRUE(f.close().is_ok());
  });
  // Phase 2: a parallel program opens it; every rank sees the metadata.
  simpi::run(p, [&](simpi::Comm& comm) {
    auto fr = DrxMpFile::open(comm, fs, "arr");
    ASSERT_TRUE(fr.is_ok()) << fr.status();
    DrxMpFile f = std::move(fr).value();
    EXPECT_EQ(f.bounds(), (Shape{4, 8}));
    EXPECT_EQ(f.metadata().chunk_shape, (Shape{2, 2}));

    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> out(static_cast<std::size_t>(box.volume()));
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    check_zone(box, MemoryOrder::kRowMajor, out);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST_P(DrxMpP, ReadBoxAllArbitraryOverlappingBoxes) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "arr", Shape{10, 10},
                                    Shape{3, 3}, dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box mine = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(mine.volume()));
    fill_zone(mine, MemoryOrder::kRowMajor, zone);
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)))
                    .is_ok());
    comm.barrier();

    // Every rank reads a (different, overlapping) box.
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const Box box{{r % 3, r % 2}, {7 + r % 3, 8}};
    std::vector<double> out(static_cast<std::size_t>(box.volume()));
    ASSERT_TRUE(f.read_box_all(box, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    check_zone(box, MemoryOrder::kRowMajor, out);
    ASSERT_TRUE(f.close().is_ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, DrxMpP, ::testing::Values(1, 2, 4, 8));

TEST(DrxMp, SerialDrxCanOpenWhatDrxMpWrote) {
  // File-format compatibility: DRX-MP and serial DRX share the pair
  // format, so a serial process can open the parallel array through
  // PfsStorage adapters.
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "arr", Shape{8, 6}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    fill_zone(box, MemoryOrder::kRowMajor, zone);
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)))
                    .is_ok());
    ASSERT_TRUE(f.close().is_ok());
  });

  auto serial = DrxFile::open(
      std::make_unique<pfs::PfsStorage>(fs.open("arr.xmd").value()),
      std::make_unique<pfs::PfsStorage>(fs.open("arr.xta").value()));
  ASSERT_TRUE(serial.is_ok()) << serial.status();
  EXPECT_EQ(serial.value().bounds(), (Shape{8, 6}));
  for_each_index(Box{{0, 0}, {8, 6}}, [&](const Index& idx) {
    ASSERT_EQ(serial.value().get<double>(idx).value(), cell_value(idx));
  });
}

TEST(DrxMp, OpenMissingFileFailsEverywhere) {
  pfs::Pfs fs(cfg());
  simpi::run(3, [&](simpi::Comm& comm) {
    auto fr = DrxMpFile::open(comm, fs, "no_such_array");
    EXPECT_FALSE(fr.is_ok());
  });
}

}  // namespace
}  // namespace drx::core
