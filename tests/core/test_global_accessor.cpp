#include <gtest/gtest.h>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

namespace drx::core {
namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 2;
  c.stripe_size = 128;
  return c;
}

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

TEST(GlobalAccessor, GetSeesEveryRanksZone) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "g", Shape{8, 8}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    // Local fill: element (i, j) = i * 100 + j.
    const Shape shape = box.shape();
    for_each_index(box, [&](const Index& idx) {
      Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
      zone[static_cast<std::size_t>(
          linearize(rel, shape, MemoryOrder::kRowMajor))] =
          static_cast<double>(idx[0] * 100 + idx[1]);
    });

    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
    ga.fence();
    // Every rank reads the whole principal array one-sided.
    for_each_index(Box{{0, 0}, {8, 8}}, [&](const Index& idx) {
      ASSERT_EQ(ga.get<double>(idx),
                static_cast<double>(idx[0] * 100 + idx[1]));
    });
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(GlobalAccessor, OwnershipIsComputedLocally) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "g", Shape{6, 6}, Shape{3, 3},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()), 0.0);
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
    ga.fence();
    int local = 0, remote = 0;
    for_each_index(Box{{0, 0}, {6, 6}}, [&](const Index& idx) {
      if (ga.is_local(idx)) {
        EXPECT_TRUE(box.contains(idx));
        ++local;
      } else {
        EXPECT_FALSE(box.contains(idx));
        ++remote;
      }
    });
    EXPECT_EQ(local, static_cast<int>(box.volume()));
    EXPECT_EQ(local + remote, 36);
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(GlobalAccessor, PutThenNeighborsObserve) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "g", Shape{4, 4}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()), 0.0);
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
    ga.fence();
    // Each rank writes a diagonal element (owned by different ranks).
    const auto r = static_cast<std::uint64_t>(comm.rank());
    ga.put<double>(Index{r, r}, static_cast<double>(100 + comm.rank()));
    ga.fence();
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_EQ(ga.get<double>(Index{i, i}), static_cast<double>(100 + i));
    }
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(GlobalAccessor, AccumulateSumsContributions) {
  pfs::Pfs fs(cfg());
  simpi::run(8, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "g", Shape{4, 4}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()), 0.0);
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
    ga.fence();
    // All ranks accumulate 1.0 into the same cell, GA-style.
    ga.accumulate<double>(Index{1, 1}, 1.0);
    ga.fence();
    ASSERT_EQ(ga.get<double>(Index{1, 1}), static_cast<double>(comm.size()));
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(GlobalAccessor, FortranOrderZones) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "g", Shape{4, 6}, Shape{2, 3},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    const Shape shape = box.shape();
    for_each_index(box, [&](const Index& idx) {
      Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
      zone[static_cast<std::size_t>(
          linearize(rel, shape, MemoryOrder::kColMajor))] =
          static_cast<double>(idx[0] * 10 + idx[1]);
    });
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kColMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
    ga.fence();
    for_each_index(Box{{0, 0}, {4, 6}}, [&](const Index& idx) {
      ASSERT_EQ(ga.get<double>(idx),
                static_cast<double>(idx[0] * 10 + idx[1]));
    });
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(GlobalAccessor, WrongBufferSizeAborts) {
  pfs::Pfs fs(cfg());
  EXPECT_DEATH(simpi::run(2, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "g", Shape{4, 4}, Shape{2, 2},
                                    dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    std::vector<double> zone(1);  // far too small
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
  }), "zone buffer size");
}

}  // namespace
}  // namespace drx::core
