#include "core/zone.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace drx::core {
namespace {

struct Case {
  Shape bounds;
  int nprocs;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << "bounds";
  for (auto b : c.bounds) *os << "_" << b;
  *os << "_p" << c.nprocs;
}

class BlockDistP : public ::testing::TestWithParam<Case> {};

TEST_P(BlockDistP, ZonesTileDisjointly) {
  const Case c = GetParam();
  const Distribution dist = Distribution::block(c.bounds, c.nprocs);

  std::map<Index, int> owner_by_zone;
  for (int p = 0; p < c.nprocs; ++p) {
    for (const Index& chunk : dist.chunks_of(p)) {
      auto [it, inserted] = owner_by_zone.emplace(chunk, p);
      EXPECT_TRUE(inserted) << "chunk owned twice";
      EXPECT_EQ(dist.owner_of(chunk), p);
    }
  }
  EXPECT_EQ(owner_by_zone.size(), checked_product(c.bounds));
}

TEST_P(BlockDistP, ZonesAreRectilinearAndBalanced) {
  const Case c = GetParam();
  const Distribution dist = Distribution::block(c.bounds, c.nprocs);
  const std::uint64_t total = checked_product(c.bounds);
  std::uint64_t max_z = 0;
  std::uint64_t min_nonempty = UINT64_MAX;
  for (int p = 0; p < c.nprocs; ++p) {
    auto zones = dist.zones_of(p);
    EXPECT_LE(zones.size(), 1u);  // BLOCK: at most one box per process
    const std::uint64_t v = zones.empty() ? 0 : zones[0].volume();
    max_z = std::max(max_z, v);
    if (v > 0) min_nonempty = std::min(min_nonempty, v);
  }
  EXPECT_GE(max_z, ceil_div(total, static_cast<std::uint64_t>(c.nprocs)));
  if (total >= static_cast<std::uint64_t>(c.nprocs)) {
    // Balance: largest zone at most ~2^k times the smallest (floor cuts).
    EXPECT_LE(max_z, min_nonempty * (1ULL << (2 * c.bounds.size())));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, BlockDistP,
    ::testing::Values(Case{{5, 4}, 4}, Case{{5, 4}, 1}, Case{{5, 4}, 3},
                      Case{{1, 1}, 4}, Case{{7}, 3}, Case{{2, 3, 4}, 6},
                      Case{{10, 10}, 7}, Case{{3, 3, 3}, 8},
                      Case{{64, 64}, 16}));

TEST(BlockDist, Fig1GridIs2x2) {
  const Distribution dist = Distribution::block(Shape{5, 4}, 4);
  EXPECT_EQ(dist.grid(), (std::vector<int>{2, 2}));
}

TEST(BlockDist, GridFactorsFollowLargerDims) {
  // Balanced 6 = 3x2; the larger factor goes to the longer dimension.
  const Distribution dist = Distribution::block(Shape{60, 2}, 6);
  EXPECT_EQ(dist.grid(), (std::vector<int>{3, 2}));
  const Distribution flipped = Distribution::block(Shape{2, 60}, 6);
  EXPECT_EQ(flipped.grid(), (std::vector<int>{2, 3}));
}

class CyclicDistP : public ::testing::TestWithParam<Case> {};

TEST_P(CyclicDistP, ZonesTileDisjointly) {
  const Case c = GetParam();
  const Shape block(c.bounds.size(), 2);
  const Distribution dist =
      Distribution::block_cyclic(c.bounds, c.nprocs, block);

  std::map<Index, int> owner_by_zone;
  for (int p = 0; p < c.nprocs; ++p) {
    for (const Index& chunk : dist.chunks_of(p)) {
      auto [it, inserted] = owner_by_zone.emplace(chunk, p);
      EXPECT_TRUE(inserted);
      EXPECT_EQ(dist.owner_of(chunk), p);
    }
  }
  EXPECT_EQ(owner_by_zone.size(), checked_product(c.bounds));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, CyclicDistP,
    ::testing::Values(Case{{8, 8}, 4}, Case{{9, 7}, 4}, Case{{5, 5}, 2},
                      Case{{16}, 3}, Case{{6, 6, 6}, 8}));

TEST(CyclicDist, RoundRobinAlongOneDim) {
  // 8 chunks, blocks of 2, 2 procs on a 1-D grid: P0 gets blocks 0,2
  // (chunks 0,1,4,5), P1 gets blocks 1,3 (chunks 2,3,6,7).
  const Distribution dist =
      Distribution::block_cyclic(Shape{8}, 2, Shape{2});
  EXPECT_EQ(dist.owner_of(Index{0}), 0);
  EXPECT_EQ(dist.owner_of(Index{1}), 0);
  EXPECT_EQ(dist.owner_of(Index{2}), 1);
  EXPECT_EQ(dist.owner_of(Index{3}), 1);
  EXPECT_EQ(dist.owner_of(Index{4}), 0);
  EXPECT_EQ(dist.owner_of(Index{7}), 1);
  EXPECT_EQ(dist.zones_of(0).size(), 2u);
}

TEST(CyclicDist, DealsChunksEvenlyOnOneDim) {
  // 16 chunks, 4 procs on a 1-D grid, unit blocks: perfect 4-4-4-4 deal.
  const Distribution cyc = Distribution::block_cyclic(Shape{16}, 4,
                                                      Shape{1});
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(cyc.chunks_of(p).size(), 4u);
  }
  EXPECT_EQ(cyc.owner_of(Index{0}), 0);
  EXPECT_EQ(cyc.owner_of(Index{5}), 1);
  EXPECT_EQ(cyc.owner_of(Index{15}), 3);
}

TEST(Dist, OwnerOfOutOfBoundsAborts) {
  const Distribution dist = Distribution::block(Shape{4, 4}, 2);
  EXPECT_DEATH((void)dist.owner_of(Index{4, 0}), "check failed");
}

}  // namespace
}  // namespace drx::core
