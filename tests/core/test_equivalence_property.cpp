// Cross-implementation equivalence under randomized operation streams:
// the out-of-core DrxFile, the in-core MemExtendibleArray, and the
// parallel DrxMpFile must agree element-for-element through arbitrary
// interleavings of writes, reads and extensions.
#include <gtest/gtest.h>

#include "core/drxmp.hpp"
#include "core/mem_extendible_array.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

class EquivalenceP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceP, DrxFileMatchesMemArrayUnderRandomOps) {
  SplitMix64 rng(GetParam());
  const std::size_t k = rng.next_in(1, 3);
  Shape bounds(k), chunk(k);
  for (std::size_t d = 0; d < k; ++d) {
    bounds[d] = rng.next_in(2, 5);
    chunk[d] = rng.next_in(1, 3);
  }

  DrxFile::Options options;
  options.dtype = ElementType::kInt64;
  options.in_chunk_order =
      rng.next() % 2 == 0 ? MemoryOrder::kRowMajor : MemoryOrder::kColMajor;
  auto file = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                              std::make_unique<pfs::MemStorage>(), bounds,
                              chunk, options);
  ASSERT_TRUE(file.is_ok());
  MemExtendibleArray<std::int64_t> mem(bounds, chunk,
                                       options.in_chunk_order);

  for (int op = 0; op < 300; ++op) {
    const auto choice = rng.next_below(12);
    Index idx(k);
    for (std::size_t d = 0; d < k; ++d) {
      idx[d] = rng.next_below(mem.bounds()[d]);
    }
    if (choice < 5) {
      const auto v = static_cast<std::int64_t>(rng.next());
      ASSERT_TRUE(file.value().set<std::int64_t>(idx, v).is_ok());
      mem.set(idx, v);
    } else if (choice < 10) {
      ASSERT_EQ(file.value().get<std::int64_t>(idx).value(), mem.get(idx));
    } else if (checked_product(mem.bounds()) < 5000) {
      const std::size_t dim = rng.next_below(k);
      const std::uint64_t delta = rng.next_in(1, 3);
      ASSERT_TRUE(file.value().extend(dim, delta).is_ok());
      mem.extend(dim, delta);
    }
  }

  // Full sweep in both orders.
  const Box full{Index(k, 0), mem.bounds()};
  const std::size_t n = static_cast<std::size_t>(full.volume());
  for (auto order : {MemoryOrder::kRowMajor, MemoryOrder::kColMajor}) {
    std::vector<std::int64_t> via_file(n), via_mem(n);
    ASSERT_TRUE(
        file.value()
            .read_box(full, order,
                      std::as_writable_bytes(std::span<std::int64_t>(via_file)))
            .is_ok());
    mem.read_box(full, order, via_mem);
    ASSERT_EQ(via_file, via_mem);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceP,
                         ::testing::Range<std::uint64_t>(3000, 3012));

TEST(Equivalence, DrxMpElementAccessMatchesSerial) {
  pfs::PfsConfig cfg;
  cfg.num_servers = 2;
  pfs::Pfs fs(cfg);
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;

  simpi::run(3, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "eq", Shape{6, 6}, Shape{2, 2},
                                    options)
                      .value();
    // Rank r writes elements of its chunk-aligned column band via the
    // element API (chunks per rank are disjoint: columns 2r..2r+1).
    const auto r = static_cast<std::uint64_t>(comm.rank());
    for (std::uint64_t i = 0; i < 6; ++i) {
      for (std::uint64_t j = 2 * r; j < 2 * r + 2; ++j) {
        ASSERT_TRUE(f.set<double>(Index{i, j},
                                  static_cast<double>(i * 10 + j))
                        .is_ok());
      }
    }
    comm.barrier();
    for (int probes = 0; probes < 30; ++probes) {
      SplitMix64 rng(static_cast<std::uint64_t>(probes) * 7 + r);
      Index idx{rng.next_below(6), rng.next_below(6)};
      ASSERT_EQ(f.get<double>(idx).value(),
                static_cast<double>(idx[0] * 10 + idx[1]));
    }
    // Out-of-bounds element access is an error, not UB.
    EXPECT_EQ(f.get<double>(Index{6, 0}).status().code(),
              ErrorCode::kOutOfRange);
    ASSERT_TRUE(f.close().is_ok());
  });

  // Serial DRX agrees with everything the parallel ranks wrote.
  auto serial = DrxFile::open(
      std::make_unique<pfs::PfsStorage>(fs.open("eq.xmd").value()),
      std::make_unique<pfs::PfsStorage>(fs.open("eq.xta").value()));
  ASSERT_TRUE(serial.is_ok());
  for_each_index(Box{{0, 0}, {6, 6}}, [&](const Index& idx) {
    ASSERT_EQ(serial.value().get<double>(idx).value(),
              static_cast<double>(idx[0] * 10 + idx[1]));
  });
}

}  // namespace
}  // namespace drx::core
