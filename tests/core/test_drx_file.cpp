#include "core/drx_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.hpp"

namespace drx::core {
namespace {

DrxFile::Options dbl_opts(MemoryOrder order = MemoryOrder::kRowMajor) {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  o.in_chunk_order = order;
  return o;
}

DrxFile make_mem(Shape bounds, Shape chunk,
                 DrxFile::Options opts = DrxFile::Options{}) {
  auto file = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                              std::make_unique<pfs::MemStorage>(),
                              std::move(bounds), std::move(chunk), opts);
  EXPECT_TRUE(file.is_ok()) << file.status();
  return std::move(file).value();
}

TEST(DrxFile, CreateInitializesZeroed) {
  DrxFile f = make_mem(Shape{4, 6}, Shape{2, 3}, dbl_opts());
  EXPECT_EQ(f.bounds(), (Shape{4, 6}));
  for_each_index(Box{{0, 0}, {4, 6}}, [&](const Index& idx) {
    auto v = f.get<double>(idx);
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), 0.0);
  });
}

TEST(DrxFile, ElementSetGetRoundTrip) {
  DrxFile f = make_mem(Shape{5, 7}, Shape{2, 3}, dbl_opts());
  for_each_index(Box{{0, 0}, {5, 7}}, [&](const Index& idx) {
    ASSERT_TRUE(f.set<double>(idx, 100.0 * static_cast<double>(idx[0]) +
                                       static_cast<double>(idx[1]))
                    .is_ok());
  });
  for_each_index(Box{{0, 0}, {5, 7}}, [&](const Index& idx) {
    EXPECT_EQ(f.get<double>(idx).value(),
              100.0 * static_cast<double>(idx[0]) +
                  static_cast<double>(idx[1]));
  });
}

TEST(DrxFile, OutOfBoundsIsError) {
  DrxFile f = make_mem(Shape{4, 4}, Shape{2, 2}, dbl_opts());
  EXPECT_EQ(f.get<double>(Index{4, 0}).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(f.set<double>(Index{0, 4}, 1.0).code(), ErrorCode::kOutOfRange);
  double buf[4];
  EXPECT_EQ(f.read_box(Box{{0, 0}, {1, 5}}, MemoryOrder::kRowMajor,
                       std::as_writable_bytes(std::span<double>(buf)))
                .code(),
            ErrorCode::kOutOfRange);
}

TEST(DrxFile, ExtendPreservesData) {
  DrxFile f = make_mem(Shape{4, 4}, Shape{2, 2}, dbl_opts());
  for_each_index(Box{{0, 0}, {4, 4}}, [&](const Index& idx) {
    ASSERT_TRUE(f.set<double>(idx, 10.0 * static_cast<double>(idx[0]) +
                                       static_cast<double>(idx[1]))
                    .is_ok());
  });
  ASSERT_TRUE(f.extend(1, 4).is_ok());
  ASSERT_TRUE(f.extend(0, 2).is_ok());
  EXPECT_EQ(f.bounds(), (Shape{6, 8}));
  // Old elements unchanged; new region zeroed.
  for_each_index(Box{{0, 0}, {6, 8}}, [&](const Index& idx) {
    const double expect = (idx[0] < 4 && idx[1] < 4)
                              ? 10.0 * static_cast<double>(idx[0]) +
                                    static_cast<double>(idx[1])
                              : 0.0;
    EXPECT_EQ(f.get<double>(idx).value(), expect) << idx[0] << "," << idx[1];
  });
}

TEST(DrxFile, ExtendWithinSlackAddsNoChunks) {
  // Bounds 3 with chunk extent 2: the grid has 2 chunk rows covering 4
  // element rows; extending 3 -> 4 stays within the allocated slack.
  DrxFile f = make_mem(Shape{3, 4}, Shape{2, 2}, dbl_opts());
  const std::uint64_t size_before = f.data_storage().size();
  ASSERT_TRUE(f.extend(0, 1).is_ok());
  EXPECT_EQ(f.data_storage().size(), size_before);
  ASSERT_TRUE(f.extend(0, 1).is_ok());  // now a new segment is needed
  EXPECT_GT(f.data_storage().size(), size_before);
}

TEST(DrxFile, ExtendNeverRewritesExistingBytes) {
  DrxFile f = make_mem(Shape{4, 4}, Shape{2, 2}, dbl_opts());
  auto& stats =
      static_cast<pfs::MemStorage&>(f.data_storage()).stats();
  const std::uint64_t written_before = stats.bytes_written;
  const std::uint64_t size_before = f.data_storage().size();
  ASSERT_TRUE(f.extend(1, 4).is_ok());
  // Bytes written by the extension == bytes appended: nothing rewritten.
  EXPECT_EQ(stats.bytes_written - written_before,
            f.data_storage().size() - size_before);
}

class BoxIoP : public ::testing::TestWithParam<
                   std::tuple<MemoryOrder, MemoryOrder>> {};

TEST_P(BoxIoP, WriteThenReadBackAnyOrderCombination) {
  const auto [chunk_order, io_order] = GetParam();
  DrxFile f = make_mem(Shape{7, 9}, Shape{3, 4}, dbl_opts(chunk_order));

  const Box box{{1, 2}, {6, 8}};
  const std::size_t n = static_cast<std::size_t>(box.volume());
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = 1000.0 + static_cast<double>(i);
  ASSERT_TRUE(f.write_box(box, io_order,
                          std::as_bytes(std::span<const double>(data)))
                  .is_ok());

  std::vector<double> out(n, -1.0);
  ASSERT_TRUE(f.read_box(box, io_order,
                         std::as_writable_bytes(std::span<double>(out)))
                  .is_ok());
  EXPECT_EQ(out, data);

  // Element-level cross-check.
  const Shape box_shape = box.shape();
  for_each_index(box, [&](const Index& idx) {
    Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
    const std::uint64_t pos = linearize(rel, box_shape, io_order);
    EXPECT_EQ(f.get<double>(idx).value(), data[pos]);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Orders, BoxIoP,
    ::testing::Combine(::testing::Values(MemoryOrder::kRowMajor,
                                         MemoryOrder::kColMajor),
                       ::testing::Values(MemoryOrder::kRowMajor,
                                         MemoryOrder::kColMajor)));

TEST(DrxFile, TransposeOnReadMatchesExplicitTranspose) {
  DrxFile f = make_mem(Shape{6, 5}, Shape{2, 2}, dbl_opts());
  const Box full{{0, 0}, {6, 5}};
  std::vector<double> row_major(30);
  for (std::size_t i = 0; i < 30; ++i) row_major[i] = static_cast<double>(i);
  ASSERT_TRUE(f.write_box(full, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const double>(row_major)))
                  .is_ok());

  std::vector<double> col_major(30);
  ASSERT_TRUE(f.read_box(full, MemoryOrder::kColMajor,
                         std::as_writable_bytes(std::span<double>(col_major)))
                  .is_ok());
  for (std::uint64_t i = 0; i < 6; ++i) {
    for (std::uint64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(col_major[j * 6 + i], row_major[i * 5 + j]);
    }
  }
}

TEST(DrxFile, ScanReadAllMatchesBoxRead) {
  DrxFile f = make_mem(Shape{9, 7}, Shape{4, 3}, dbl_opts());
  SplitMix64 rng(5);
  for_each_index(Box{{0, 0}, {9, 7}}, [&](const Index& idx) {
    ASSERT_TRUE(f.set<double>(idx, rng.next_double()).is_ok());
  });
  ASSERT_TRUE(f.extend(0, 3).is_ok());
  ASSERT_TRUE(f.extend(1, 5).is_ok());

  const Box full{{0, 0}, f.bounds()};
  const std::size_t n = static_cast<std::size_t>(full.volume());
  for (auto order : {MemoryOrder::kRowMajor, MemoryOrder::kColMajor}) {
    std::vector<double> via_box(n), via_scan(n);
    ASSERT_TRUE(
        f.read_box(full, order,
                   std::as_writable_bytes(std::span<double>(via_box)))
            .is_ok());
    ASSERT_TRUE(f.scan_read_all(
                     order, std::as_writable_bytes(std::span<double>(via_scan)))
                    .is_ok());
    EXPECT_EQ(via_scan, via_box);
  }
}

TEST(DrxFile, ScanReadIsSequentialOnDisk) {
  DrxFile f = make_mem(Shape{16, 16}, Shape{4, 4}, dbl_opts());
  ASSERT_TRUE(f.extend(0, 8).is_ok());
  ASSERT_TRUE(f.extend(1, 8).is_ok());
  auto& stats = static_cast<pfs::MemStorage&>(f.data_storage()).stats();
  const std::uint64_t seeks_before = stats.seeks;
  std::vector<double> out(24 * 24);
  ASSERT_TRUE(f.scan_read_all(MemoryOrder::kRowMajor,
                              std::as_writable_bytes(std::span<double>(out)))
                  .is_ok());
  // One pass: at most one initial seek.
  EXPECT_LE(stats.seeks - seeks_before, 1u);
}

TEST(DrxFile, Int32AndComplexTypes) {
  {
    DrxFile::Options o;
    o.dtype = ElementType::kInt32;
    DrxFile f = make_mem(Shape{4}, Shape{2}, o);
    ASSERT_TRUE(f.set<std::int32_t>(Index{3}, -7).is_ok());
    EXPECT_EQ(f.get<std::int32_t>(Index{3}).value(), -7);
  }
  {
    DrxFile::Options o;
    o.dtype = ElementType::kComplexDouble;
    DrxFile f = make_mem(Shape{3, 3}, Shape{2, 2}, o);
    const std::complex<double> z{1.5, -2.5};
    ASSERT_TRUE(f.set<std::complex<double>>(Index{2, 2}, z).is_ok());
    EXPECT_EQ((f.get<std::complex<double>>(Index{2, 2})).value(), z);
  }
}

TEST(DrxFile, PersistAndReopenThroughMemStorage) {
  // Snapshot copies of both storages, taken while the file is still open
  // (the DrxFile owns the storages, so raw pointers die with it).
  auto copy_of = [](pfs::Storage& src) {
    auto dst = std::make_unique<pfs::MemStorage>();
    std::vector<std::byte> buf(static_cast<std::size_t>(src.size()));
    EXPECT_TRUE(src.read_at(0, buf).is_ok());
    EXPECT_TRUE(dst->write_at(0, buf).is_ok());
    return dst;
  };
  std::unique_ptr<pfs::MemStorage> meta_copy, data_copy;
  {
    auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                             std::make_unique<pfs::MemStorage>(),
                             Shape{4, 4}, Shape{2, 2}, dbl_opts());
    ASSERT_TRUE(f.is_ok());
    ASSERT_TRUE(f.value().set<double>(Index{3, 3}, 42.0).is_ok());
    ASSERT_TRUE(f.value().extend(0, 4).is_ok());
    ASSERT_TRUE(f.value().set<double>(Index{7, 0}, 7.0).is_ok());
    ASSERT_TRUE(f.value().flush().is_ok());
    meta_copy = copy_of(f.value().meta_storage());
    data_copy = copy_of(f.value().data_storage());
  }

  auto reopened = DrxFile::open(std::move(meta_copy), std::move(data_copy));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  EXPECT_EQ(reopened.value().bounds(), (Shape{8, 4}));
  EXPECT_EQ(reopened.value().get<double>(Index{3, 3}).value(), 42.0);
  EXPECT_EQ(reopened.value().get<double>(Index{7, 0}).value(), 7.0);
  EXPECT_EQ(reopened.value().get<double>(Index{5, 2}).value(), 0.0);
}

TEST(DrxFile, PosixBackendEndToEnd) {
  const std::string name =
      (std::filesystem::temp_directory_path() / "drx_posix_array").string();
  std::remove((name + ".xmd").c_str());
  std::remove((name + ".xta").c_str());
  {
    auto f = DrxFile::create_posix(name, Shape{6, 6}, Shape{2, 3}, dbl_opts());
    ASSERT_TRUE(f.is_ok()) << f.status();
    ASSERT_TRUE(f.value().set<double>(Index{5, 5}, 3.25).is_ok());
    ASSERT_TRUE(f.value().extend(1, 6).is_ok());
    ASSERT_TRUE(f.value().set<double>(Index{0, 11}, -1.5).is_ok());
  }
  {
    auto f = DrxFile::open_posix(name);
    ASSERT_TRUE(f.is_ok()) << f.status();
    EXPECT_EQ(f.value().bounds(), (Shape{6, 12}));
    EXPECT_EQ(f.value().get<double>(Index{5, 5}).value(), 3.25);
    EXPECT_EQ(f.value().get<double>(Index{0, 11}).value(), -1.5);
  }
  std::remove((name + ".xmd").c_str());
  std::remove((name + ".xta").c_str());
}

TEST(DrxFile, RandomizedMirrorProperty) {
  // DRX behaves exactly like a dense in-memory array under random
  // interleavings of writes, reads and extensions.
  DrxFile f = make_mem(Shape{3, 3}, Shape{2, 2}, dbl_opts());
  Shape bounds{3, 3};
  std::vector<double> mirror(9, 0.0);
  SplitMix64 rng(77);

  auto mirror_at = [&](const Index& idx) -> double& {
    return mirror[static_cast<std::size_t>(
        linearize(idx, bounds, MemoryOrder::kRowMajor))];
  };

  for (int op = 0; op < 400; ++op) {
    const auto choice = rng.next_below(10);
    if (choice < 4) {  // write element
      Index idx{rng.next_below(bounds[0]), rng.next_below(bounds[1])};
      const double v = rng.next_double();
      ASSERT_TRUE(f.set<double>(idx, v).is_ok());
      mirror_at(idx) = v;
    } else if (choice < 8) {  // read element
      Index idx{rng.next_below(bounds[0]), rng.next_below(bounds[1])};
      ASSERT_EQ(f.get<double>(idx).value(), mirror_at(idx));
    } else if (bounds[0] * bounds[1] < 800) {  // extend
      const std::size_t dim = rng.next_below(2);
      const std::uint64_t delta = rng.next_in(1, 3);
      ASSERT_TRUE(f.extend(dim, delta).is_ok());
      // Grow the mirror (row-major reshuffle done index-wise).
      Shape new_bounds = bounds;
      new_bounds[dim] += delta;
      std::vector<double> grown(
          static_cast<std::size_t>(new_bounds[0] * new_bounds[1]), 0.0);
      for_each_index(Box{{0, 0}, bounds}, [&](const Index& idx) {
        grown[static_cast<std::size_t>(
            linearize(idx, new_bounds, MemoryOrder::kRowMajor))] =
            mirror_at(idx);
      });
      bounds = new_bounds;
      mirror = std::move(grown);
    }
  }
  // Final full sweep.
  for_each_index(Box{{0, 0}, bounds}, [&](const Index& idx) {
    ASSERT_EQ(f.get<double>(idx).value(), mirror_at(idx));
  });
}

}  // namespace
}  // namespace drx::core
