#include "core/metadata.hpp"

#include <gtest/gtest.h>

namespace drx::core {
namespace {

Metadata sample() {
  Metadata meta(ElementType::kDouble, MemoryOrder::kRowMajor,
                Shape{10, 12}, Shape{2, 3});
  meta.mapping.extend(0, 2);
  meta.mapping.extend(1, 1);
  meta.element_bounds = {14, 15};
  return meta;
}

TEST(Metadata, DerivedQuantities) {
  Metadata meta(ElementType::kDouble, MemoryOrder::kRowMajor, Shape{10, 12},
                Shape{2, 3});
  EXPECT_EQ(meta.rank(), 2u);
  EXPECT_EQ(meta.element_bytes(), 8u);
  EXPECT_EQ(meta.chunk_bytes(), 48u);
  EXPECT_EQ(meta.mapping.bounds(), (Shape{5, 4}));
  EXPECT_EQ(meta.data_file_bytes(), 20u * 48);
}

TEST(Metadata, ElementTypeSizes) {
  EXPECT_EQ(element_size(ElementType::kInt32), 4u);
  EXPECT_EQ(element_size(ElementType::kInt64), 8u);
  EXPECT_EQ(element_size(ElementType::kDouble), 8u);
  EXPECT_EQ(element_size(ElementType::kComplexDouble), 16u);
}

TEST(Metadata, SerializationRoundTrip) {
  const Metadata meta = sample();
  const auto bytes = meta.to_bytes();
  auto restored = Metadata::from_bytes(bytes);
  ASSERT_TRUE(restored.is_ok()) << restored.status();
  EXPECT_EQ(restored.value(), meta);
}

TEST(Metadata, AllElementTypesRoundTrip) {
  for (auto t : {ElementType::kInt32, ElementType::kInt64,
                 ElementType::kDouble, ElementType::kComplexDouble}) {
    for (auto o : {MemoryOrder::kRowMajor, MemoryOrder::kColMajor}) {
      Metadata meta(t, o, Shape{4}, Shape{2});
      auto restored = Metadata::from_bytes(meta.to_bytes());
      ASSERT_TRUE(restored.is_ok());
      EXPECT_EQ(restored.value().dtype, t);
      EXPECT_EQ(restored.value().in_chunk_order, o);
    }
  }
}

TEST(Metadata, RejectsBadMagic) {
  auto bytes = sample().to_bytes();
  bytes[0] = std::byte{0};
  EXPECT_EQ(Metadata::from_bytes(bytes).status().code(), ErrorCode::kCorrupt);
}

TEST(Metadata, RejectsBadVersion) {
  auto bytes = sample().to_bytes();
  bytes[4] = std::byte{99};
  EXPECT_EQ(Metadata::from_bytes(bytes).status().code(),
            ErrorCode::kUnsupported);
}

TEST(Metadata, RejectsChecksumMismatch) {
  auto bytes = sample().to_bytes();
  bytes[bytes.size() - 1] ^= std::byte{0xFF};  // corrupt the payload tail
  EXPECT_EQ(Metadata::from_bytes(bytes).status().code(), ErrorCode::kCorrupt);
}

TEST(Metadata, RejectsTruncation) {
  auto bytes = sample().to_bytes();
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, std::size_t{24},
        bytes.size() - 5}) {
    auto cut = bytes;
    cut.resize(keep);
    EXPECT_FALSE(Metadata::from_bytes(cut).is_ok()) << "kept " << keep;
  }
}

TEST(Metadata, RejectsGridNotCoveringBounds) {
  Metadata meta = sample();
  meta.element_bounds = {1000, 1000};  // grid no longer covers the bounds
  EXPECT_EQ(Metadata::from_bytes(meta.to_bytes()).status().code(),
            ErrorCode::kCorrupt);
}

}  // namespace
}  // namespace drx::core
