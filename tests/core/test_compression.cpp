// Compressed-array end-to-end tests (docs/COMPRESSION.md): the v2 slot
// table round-trips through create/flush/open, every DrxFile access path
// (element, box, chunk, cache, prefetch) sees the logical bytes, damage
// surfaces as a clean kCorrupt with a flight dump, and DRX_COMPRESS=off
// output stays byte-identical to the legacy v1 format.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "codec/codec.hpp"
#include "core/chunk_cache.hpp"
#include "core/drx_file.hpp"
#include "core/drxmp.hpp"
#include "obs/flight.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

DrxFile::Options compressed_opts(codec::CodecId c = codec::CodecId::kRle,
                                 ElementType dtype = ElementType::kDouble) {
  DrxFile::Options o;
  o.dtype = dtype;
  o.codec = c;
  return o;
}

DrxFile make_compressed(Shape bounds, Shape chunk,
                        DrxFile::Options opts = compressed_opts()) {
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           std::move(bounds), std::move(chunk), opts);
  EXPECT_TRUE(f.is_ok()) << f.status();
  return std::move(f).value();
}

std::unique_ptr<pfs::MemStorage> copy_of(pfs::Storage& src) {
  auto dst = std::make_unique<pfs::MemStorage>();
  std::vector<std::byte> buf(static_cast<std::size_t>(src.size()));
  EXPECT_TRUE(src.read_at(0, buf).is_ok());
  EXPECT_TRUE(dst->write_at(0, buf).is_ok());
  return dst;
}

/// Row-constant values: long in-chunk runs, so RLE genuinely compresses.
double row_value(const Index& idx) { return 10.0 + static_cast<double>(idx[0]); }

TEST(Compression, CreateIsCompressedAndZeroed) {
  // Chunks well above the 64-byte slot-capacity granularity, so the
  // compression win is visible in the .xta size.
  DrxFile f = make_compressed(Shape{32, 32}, Shape{8, 8});
  EXPECT_TRUE(f.compressed());
  EXPECT_EQ(f.metadata().codec, codec::CodecId::kRle);
  EXPECT_EQ(f.metadata().chunk_table.size(), f.metadata().mapping.total_chunks());
  // Zero chunks compress hard: the .xta must be far below the dense size.
  EXPECT_LT(f.data_storage().size(), f.metadata().data_file_bytes() / 4);
  for_each_index(Box{{0, 0}, {32, 32}}, [&](const Index& idx) {
    ASSERT_EQ(f.get<double>(idx).value(), 0.0);
  });
}

TEST(Compression, BoxIoAndReopenRoundTrip) {
  std::unique_ptr<pfs::MemStorage> meta_copy, data_copy;
  std::uint64_t dense_bytes = 0;
  {
    DrxFile f = make_compressed(Shape{12, 10}, Shape{3, 5});
    std::vector<double> buf(12 * 10);
    for_each_index(Box{{0, 0}, {12, 10}}, [&](const Index& idx) {
      buf[static_cast<std::size_t>(idx[0] * 10 + idx[1])] = row_value(idx);
    });
    ASSERT_TRUE(f.write_box(Box{{0, 0}, {12, 10}}, MemoryOrder::kRowMajor,
                            std::as_bytes(std::span<const double>(buf)))
                    .is_ok());
    ASSERT_TRUE(f.flush().is_ok());
    dense_bytes = f.metadata().data_file_bytes();
    EXPECT_LT(f.metadata().stored_live_bytes(), dense_bytes / 2)
        << "row-constant data should compress at least 2x";
    meta_copy = copy_of(f.meta_storage());
    data_copy = copy_of(f.data_storage());
  }
  auto reopened = DrxFile::open(std::move(meta_copy), std::move(data_copy));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  EXPECT_TRUE(reopened.value().compressed());
  std::vector<double> back(12 * 10);
  ASSERT_TRUE(reopened.value()
                  .read_box(Box{{0, 0}, {12, 10}}, MemoryOrder::kRowMajor,
                            std::as_writable_bytes(std::span<double>(back)))
                  .is_ok());
  for_each_index(Box{{0, 0}, {12, 10}}, [&](const Index& idx) {
    ASSERT_EQ(back[static_cast<std::size_t>(idx[0] * 10 + idx[1])],
              row_value(idx));
  });
}

TEST(Compression, ElementRmwAcrossChunks) {
  DrxFile f = make_compressed(Shape{6, 6}, Shape{2, 2});
  for_each_index(Box{{0, 0}, {6, 6}}, [&](const Index& idx) {
    ASSERT_TRUE(f.set<double>(idx, row_value(idx)).is_ok());
  });
  for_each_index(Box{{0, 0}, {6, 6}}, [&](const Index& idx) {
    ASSERT_EQ(f.get<double>(idx).value(), row_value(idx));
  });
}

TEST(Compression, ExtendPreservesDataAndZerosNewRegion) {
  DrxFile f = make_compressed(Shape{4, 4}, Shape{2, 2});
  for_each_index(Box{{0, 0}, {4, 4}}, [&](const Index& idx) {
    ASSERT_TRUE(f.set<double>(idx, row_value(idx)).is_ok());
  });
  ASSERT_TRUE(f.extend(1, 4).is_ok());
  ASSERT_TRUE(f.extend(0, 2).is_ok());
  EXPECT_EQ(f.metadata().chunk_table.size(),
            f.metadata().mapping.total_chunks());
  for_each_index(Box{{0, 0}, {6, 8}}, [&](const Index& idx) {
    const double expect =
        (idx[0] < 4 && idx[1] < 4) ? row_value(idx) : 0.0;
    ASSERT_EQ(f.get<double>(idx).value(), expect);
  });
}

TEST(Compression, BitpackEndToEndOnIntegers) {
  DrxFile::Options o;
  o.dtype = ElementType::kInt64;
  o.codec = codec::CodecId::kBitPack;
  DrxFile f = make_compressed(Shape{16, 16}, Shape{4, 4}, o);
  std::vector<std::int64_t> buf(16 * 16);
  for_each_index(Box{{0, 0}, {16, 16}}, [&](const Index& idx) {
    // Small range (0..30): packs to ~5 bits per 64-bit element.
    buf[static_cast<std::size_t>(idx[0] * 16 + idx[1])] =
        static_cast<std::int64_t>(idx[0] + idx[1]);
  });
  ASSERT_TRUE(f.write_box(Box{{0, 0}, {16, 16}}, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const std::int64_t>(buf)))
                  .is_ok());
  ASSERT_TRUE(f.flush().is_ok());
  EXPECT_LT(f.metadata().stored_live_bytes(),
            f.metadata().data_file_bytes() / 4)
      << "narrow integers should bit-pack at least 4x";
  auto reopened = DrxFile::open(copy_of(f.meta_storage()),
                                copy_of(f.data_storage()));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  std::vector<std::int64_t> back(16 * 16);
  ASSERT_TRUE(reopened.value()
                  .read_box(Box{{0, 0}, {16, 16}}, MemoryOrder::kRowMajor,
                            std::as_writable_bytes(std::span<std::int64_t>(back)))
                  .is_ok());
  EXPECT_EQ(back, buf);
}

TEST(Compression, SlotRelocationKeepsDataIntact) {
  SplitMix64 rng(0x5107);
  DrxFile f = make_compressed(Shape{8, 8}, Shape{4, 4});
  // Pass 1: constant chunks (tiny slots).
  for_each_index(Box{{0, 0}, {8, 8}}, [&](const Index& idx) {
    ASSERT_TRUE(f.set<double>(idx, 1.0).is_ok());
  });
  const std::uint64_t end_before = f.metadata().data_end;
  // Pass 2: incompressible chunks — stored size jumps past each slot's
  // capacity, forcing the relocate-and-leak path.
  std::vector<double> noisy(8 * 8);
  for (double& v : noisy) {
    v = static_cast<double>(rng.next()) * 1e-3;
  }
  ASSERT_TRUE(f.write_box(Box{{0, 0}, {8, 8}}, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const double>(noisy)))
                  .is_ok());
  ASSERT_TRUE(f.flush().is_ok());
  EXPECT_GT(f.metadata().data_end, end_before) << "expected slot relocation";

  auto reopened = DrxFile::open(copy_of(f.meta_storage()),
                                copy_of(f.data_storage()));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  for_each_index(Box{{0, 0}, {8, 8}}, [&](const Index& idx) {
    ASSERT_EQ(reopened.value().get<double>(idx).value(),
              noisy[static_cast<std::size_t>(idx[0] * 8 + idx[1])]);
  });
}

TEST(Compression, CorruptChunkIsCleanErrorAndDumpsFlight) {
  const std::string dump =
      (std::filesystem::temp_directory_path() / "drx-corrupt-flight.json")
          .string();
  std::filesystem::remove(dump);
  obs::set_flight_path(dump);

  DrxFile::Options o;
  o.dtype = ElementType::kInt64;
  o.codec = codec::CodecId::kBitPack;
  DrxFile f = make_compressed(Shape{8, 8}, Shape{4, 4}, o);
  for_each_index(Box{{0, 0}, {8, 8}}, [&](const Index& idx) {
    ASSERT_TRUE(
        f.set<std::int64_t>(idx, static_cast<std::int64_t>(idx[0] + idx[1]))
            .is_ok());
  });
  ASSERT_TRUE(f.flush().is_ok());

  // An implausible bitpack width in slot 0's header is deterministically
  // corrupt, whatever the payload.
  const ChunkSlot& slot = f.metadata().chunk_table[0];
  ASSERT_GT(slot.stored, 0u);
  const std::byte bad[1] = {std::byte{0xFF}};
  ASSERT_TRUE(f.data_storage().write_at(slot.offset, bad).is_ok());

  std::vector<std::byte> chunk(checked_size(f.chunk_bytes()));
  const Status st = f.read_chunk(0, chunk);
  EXPECT_EQ(st.code(), ErrorCode::kCorrupt) << st;
  EXPECT_TRUE(std::filesystem::exists(dump))
      << "corrupt chunk must trigger a flight dump";
  std::filesystem::remove(dump);
  obs::set_flight_path("drx-flight.json");
}

TEST(Compression, OffIsByteIdenticalToLegacy) {
  // Simulate DRX_COMPRESS=rle being set globally: an explicit
  // Options::codec = kNone must still produce the legacy v1 format,
  // byte-for-byte, and such files must reopen.
  const codec::CodecId before = codec::default_codec();
  codec::set_default_codec(codec::CodecId::kRle);

  const auto build = [](std::optional<codec::CodecId> c) {
    DrxFile::Options o;
    o.dtype = ElementType::kDouble;
    o.codec = c;
    auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                             std::make_unique<pfs::MemStorage>(),
                             Shape{6, 4}, Shape{2, 2}, o);
    EXPECT_TRUE(f.is_ok()) << f.status();
    for_each_index(Box{{0, 0}, {6, 4}}, [&](const Index& idx) {
      EXPECT_TRUE(f.value().set<double>(idx, row_value(idx)).is_ok());
    });
    EXPECT_TRUE(f.value().flush().is_ok());
    return std::move(f).value();
  };

  DrxFile off = build(codec::CodecId::kNone);
  EXPECT_FALSE(off.compressed());

  codec::set_default_codec(codec::CodecId::kNone);
  DrxFile legacy = build(std::nullopt);  // env off: the pre-codec default
  codec::set_default_codec(before);
  EXPECT_FALSE(legacy.compressed());

  const auto bytes_of = [](pfs::Storage& s) {
    std::vector<std::byte> buf(static_cast<std::size_t>(s.size()));
    EXPECT_TRUE(s.read_at(0, buf).is_ok());
    return buf;
  };
  EXPECT_EQ(bytes_of(off.meta_storage()), bytes_of(legacy.meta_storage()));
  EXPECT_EQ(bytes_of(off.data_storage()), bytes_of(legacy.data_storage()));
  // Dense layout: the data file is exactly chunks x chunk_bytes.
  EXPECT_EQ(off.data_storage().size(), off.metadata().data_file_bytes());

  // "Old" (v1) files open fine under the codec-aware reader.
  auto reopened = DrxFile::open(copy_of(off.meta_storage()),
                                copy_of(off.data_storage()));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  EXPECT_FALSE(reopened.value().compressed());
  EXPECT_EQ(reopened.value().get<double>(Index{5, 3}).value(),
            row_value(Index{5, 3}));
}

TEST(Compression, CacheRoundTripAndPrefetch) {
  DrxFile file = make_compressed(Shape{8, 8}, Shape{2, 2});
  const std::uint64_t chunks = file.metadata().mapping.total_chunks();
  {
    ChunkCache cache(file, 4, ChunkCache::AsyncOptions{2, 4});
    ASSERT_TRUE(cache.async());
    for (std::uint64_t q = 0; q < chunks; ++q) {
      auto p = cache.pin(q);
      ASSERT_TRUE(p.is_ok()) << p.status();
      const double v = static_cast<double>(100 + q);
      for (std::size_t i = 0; i < p.value().size() / sizeof(double); ++i) {
        std::memcpy(p.value().data() + i * sizeof(double), &v, sizeof(v));
      }
      cache.unpin(q, /*dirty=*/true);
    }
    ASSERT_TRUE(cache.flush().is_ok());
  }
  // Fresh cache: prefetch the whole range, then pins must see the data.
  ChunkCache cache(file, 16, ChunkCache::AsyncOptions{2, 8});
  cache.prefetch(0, chunks);
  for (std::uint64_t q = 0; q < chunks; ++q) {
    auto p = cache.pin(q, /*writable=*/false);
    ASSERT_TRUE(p.is_ok()) << p.status();
    double v = 0;
    std::memcpy(&v, p.value().data(), sizeof(v));
    EXPECT_EQ(v, static_cast<double>(100 + q));
    cache.unpin(q, /*dirty=*/false, /*writable=*/false);
  }
}

TEST(Compression, WriteBehindCodecStress) {
  // Satellite-6 regression: codec work runs outside every shard lock and
  // outside io_mu_, so concurrent writers + write-behind evictions must
  // neither deadlock nor corrupt data. Run under TSan to prove the locking
  // claim; the data check below proves correctness either way.
  DrxFile file = make_compressed(Shape{16, 16}, Shape{2, 2});
  const std::uint64_t chunks = file.metadata().mapping.total_chunks();
  constexpr int kThreads = 4;
  {
    // Tiny capacity: nearly every pin evicts, forcing write-behind.
    ChunkCache cache(file, 4, ChunkCache::AsyncOptions{2, 2});
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        // Disjoint chunk ranges keep the final contents deterministic.
        SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
        const std::uint64_t lo = chunks / kThreads * static_cast<std::uint64_t>(t);
        const std::uint64_t hi =
            t == kThreads - 1 ? chunks
                              : chunks / kThreads * static_cast<std::uint64_t>(t + 1);
        for (int iter = 0; iter < 200; ++iter) {
          const std::uint64_t q = rng.next_in(lo, hi - 1);
          auto p = cache.pin(q);
          ASSERT_TRUE(p.is_ok()) << p.status();
          const double v = static_cast<double>(q);
          for (std::size_t i = 0; i < p.value().size() / sizeof(double);
               ++i) {
            std::memcpy(p.value().data() + i * sizeof(double), &v,
                        sizeof(v));
          }
          cache.unpin(q, /*dirty=*/true);
        }
        for (std::uint64_t q = lo; q < hi; ++q) {
          auto p = cache.pin(q);
          ASSERT_TRUE(p.is_ok()) << p.status();
          const double v = static_cast<double>(q);
          std::memcpy(p.value().data(), &v, sizeof(v));
          cache.unpin(q, /*dirty=*/true);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    ASSERT_TRUE(cache.flush().is_ok());
  }
  std::vector<std::byte> chunk(checked_size(file.chunk_bytes()));
  for (std::uint64_t q = 0; q < chunks; ++q) {
    ASSERT_TRUE(file.read_chunk(q, chunk).is_ok());
    double v = 0;
    std::memcpy(&v, chunk.data(), sizeof(v));
    ASSERT_EQ(v, static_cast<double>(q)) << "chunk " << q;
  }
}

// ---- DRX-MP: compressed arrays are read-only ------------------------------

TEST(CompressionMp, CollectiveReadOfSeriallyCompressedArray) {
  pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  cfg.stripe_size = 256;
  pfs::Pfs fs(cfg);

  // Pre-create with the serial writer, straight onto the striped PFS.
  {
    auto meta_h = fs.create("carr.xmd", /*overwrite=*/true);
    auto data_h = fs.create("carr.xta", /*overwrite=*/true);
    ASSERT_TRUE(meta_h.is_ok());
    ASSERT_TRUE(data_h.is_ok());
    auto f = DrxFile::create(
        std::make_unique<pfs::PfsStorage>(std::move(meta_h).value()),
        std::make_unique<pfs::PfsStorage>(std::move(data_h).value()),
        Shape{12, 10}, Shape{3, 2}, compressed_opts());
    ASSERT_TRUE(f.is_ok()) << f.status();
    for_each_index(Box{{0, 0}, {12, 10}}, [&](const Index& idx) {
      ASSERT_TRUE(f.value().set<double>(idx, row_value(idx)).is_ok());
    });
    ASSERT_TRUE(f.value().flush().is_ok());
  }

  simpi::run(4, [&](simpi::Comm& comm) {
    auto fr = DrxMpFile::open(comm, fs, "carr");
    ASSERT_TRUE(fr.is_ok()) << fr.status();
    DrxMpFile& f = fr.value();
    ASSERT_TRUE(f.metadata().compressed());

    std::vector<double> out(12 * 10);
    ASSERT_TRUE(f.read_box_all(Box{{0, 0}, {12, 10}}, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(out)))
                    .is_ok());
    for_each_index(Box{{0, 0}, {12, 10}}, [&](const Index& idx) {
      ASSERT_EQ(out[static_cast<std::size_t>(idx[0] * 10 + idx[1])],
                row_value(idx));
    });

    // Writes and extension are rejected, not silently corrupted.
    EXPECT_EQ(f.write_box_all(Box{{0, 0}, {12, 10}}, MemoryOrder::kRowMajor,
                              std::as_bytes(std::span<const double>(out)))
                  .code(),
              ErrorCode::kUnsupported);
    EXPECT_EQ(f.extend_all(0, 3).code(), ErrorCode::kUnsupported);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(CompressionMp, CollectiveCreateRejectsCodec) {
  pfs::Pfs fs(pfs::PfsConfig{});
  simpi::run(2, [&](simpi::Comm& comm) {
    auto fr = DrxMpFile::create(comm, fs, "nope", Shape{4, 4}, Shape{2, 2},
                                compressed_opts());
    ASSERT_FALSE(fr.is_ok());
    EXPECT_EQ(fr.status().code(), ErrorCode::kUnsupported);
  });
}

}  // namespace
}  // namespace drx::core
