// Round-pipelined zone reads (docs/ASYNC_IO.md): when the async I/O
// engine is enabled, DrxMpFile::read_my_zone overlaps the storage read
// of batch r+1 with the scatter of batch r. These tests flip the global
// io config on, check bit-exact equivalence with the synchronous path,
// and restore the config so sibling tests keep legacy semantics.
#include "core/drxmp.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/config.hpp"
#include "simpi/runtime.hpp"

namespace drx::core {
namespace {

/// Flips the async engine on for one test, restoring env-derived
/// defaults on scope exit (other tests rely on synchronous semantics).
class AsyncIoOn {
 public:
  AsyncIoOn(int threads, std::uint64_t depth) {
    io::set_io_threads(threads);
    io::set_prefetch_depth(depth);
  }
  ~AsyncIoOn() {
    io::set_io_threads(-1);
    io::set_prefetch_depth(io::kPrefetchFromEnv);
  }
  AsyncIoOn(const AsyncIoOn&) = delete;
  AsyncIoOn& operator=(const AsyncIoOn&) = delete;
};

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 4;
  c.stripe_size = 256;
  return c;
}

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

double cell_value(const Index& idx) {
  double v = 0;
  for (std::uint64_t x : idx) v = v * 1000 + static_cast<double>(x) + 1;
  return v;
}

void fill_zone(const Box& box, MemoryOrder order, std::span<double> buf) {
  const Shape shape = box.shape();
  for_each_index(box, [&](const Index& idx) {
    Index rel(idx.size());
    for (std::size_t d = 0; d < idx.size(); ++d) rel[d] = idx[d] - box.lo[d];
    buf[static_cast<std::size_t>(linearize(rel, shape, order))] =
        cell_value(idx);
  });
}

void check_zone(const Box& box, MemoryOrder order,
                std::span<const double> buf) {
  const Shape shape = box.shape();
  for_each_index(box, [&](const Index& idx) {
    ASSERT_EQ(buf[static_cast<std::size_t>(linearize(
                  [&] {
                    Index rel(idx.size());
                    for (std::size_t d = 0; d < idx.size(); ++d) {
                      rel[d] = idx[d] - box.lo[d];
                    }
                    return rel;
                  }(),
                  shape, order))],
              cell_value(idx));
  });
}

void write_then_read(int p, Shape bounds, Shape chunk, bool collective) {
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    auto fr =
        DrxMpFile::create(comm, fs, "arr", bounds, chunk, dbl_opts());
    ASSERT_TRUE(fr.is_ok()) << fr.status();
    DrxMpFile f = std::move(fr).value();

    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    fill_zone(box, MemoryOrder::kRowMajor, zone);
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)),
                                collective)
                    .is_ok());
    comm.barrier();

    std::vector<double> out(zone.size(), -1);
    ASSERT_TRUE(f.read_my_zone(dist, MemoryOrder::kRowMajor,
                               std::as_writable_bytes(std::span<double>(out)),
                               collective)
                    .is_ok());
    check_zone(box, MemoryOrder::kRowMajor, out);
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(DrxMpPipelined, IndependentReadMatchesSynchronous) {
  AsyncIoOn io(2, 2);  // tiny batch: several pipeline rounds per zone
  write_then_read(3, Shape{12, 10}, Shape{3, 2}, /*collective=*/false);
}

TEST(DrxMpPipelined, CollectiveReadMatchesSynchronous) {
  AsyncIoOn io(2, 2);
  write_then_read(4, Shape{12, 10}, Shape{3, 2}, /*collective=*/true);
}

TEST(DrxMpPipelined, CollectiveUnevenZonesAgreeOnRoundCount) {
  AsyncIoOn io(2, 2);
  // 5 chunk columns across 4 ranks: zone chunk counts differ per rank,
  // so ranks must locally agree on the max round count or the
  // collective read_chunks calls deadlock.
  write_then_read(4, Shape{10, 9}, Shape{2, 3}, /*collective=*/true);
}

TEST(DrxMpPipelined, BatchLargerThanZoneIsOneRound) {
  AsyncIoOn io(2, 64);
  write_then_read(2, Shape{8, 8}, Shape{2, 2}, /*collective=*/true);
}

TEST(DrxMpPipelined, SingleRankAndSingleChunkEdges) {
  AsyncIoOn io(1, 1);  // one-chunk batches, maximal round count
  write_then_read(1, Shape{6, 6}, Shape{2, 2}, /*collective=*/true);
  write_then_read(3, Shape{2, 2}, Shape{2, 2}, /*collective=*/true);
}

}  // namespace
}  // namespace drx::core
