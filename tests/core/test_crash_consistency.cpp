// Crash-consistency of the .xmd/.xta pair. DRX orders extension writes
// data-first, metadata-second, so a crash between the two leaves a file
// pair where the data file is LONGER than the metadata requires — which
// must open cleanly at the old bounds. The reverse inconsistency
// (metadata promising more chunks than the data file holds) must be
// rejected as corrupt.
#include <gtest/gtest.h>

#include "core/drx_file.hpp"

namespace drx::core {
namespace {

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

std::unique_ptr<pfs::MemStorage> snapshot(pfs::Storage& src) {
  auto dst = std::make_unique<pfs::MemStorage>();
  std::vector<std::byte> buf(static_cast<std::size_t>(src.size()));
  EXPECT_TRUE(src.read_at(0, buf).is_ok());
  EXPECT_TRUE(dst->write_at(0, buf).is_ok());
  return dst;
}

TEST(CrashConsistency, DataAppendedButMetadataNotFlushed) {
  // Simulate a crash after the segment append but before the .xmd write:
  // old metadata + new (longer) data.
  std::unique_ptr<pfs::MemStorage> old_meta, new_data;
  {
    auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                             std::make_unique<pfs::MemStorage>(),
                             Shape{4, 4}, Shape{2, 2}, dbl_opts());
    ASSERT_TRUE(f.is_ok());
    ASSERT_TRUE(f.value().set<double>(Index{3, 3}, 8.25).is_ok());
    old_meta = snapshot(f.value().meta_storage());
    ASSERT_TRUE(f.value().extend(0, 4).is_ok());
    new_data = snapshot(f.value().data_storage());
  }
  auto reopened = DrxFile::open(std::move(old_meta), std::move(new_data));
  ASSERT_TRUE(reopened.is_ok()) << reopened.status();
  // The old bounds are in effect; the appended-but-unregistered segment is
  // invisible (and will be re-appended by a retried extension).
  EXPECT_EQ(reopened.value().bounds(), (Shape{4, 4}));
  EXPECT_EQ(reopened.value().get<double>(Index{3, 3}).value(), 8.25);
  EXPECT_EQ(reopened.value().get<double>(Index{4, 0}).status().code(),
            ErrorCode::kOutOfRange);
}

TEST(CrashConsistency, MetadataFlushedWithoutDataIsRejected) {
  // The reverse order (metadata promising chunks the data file lacks)
  // must not open.
  std::unique_ptr<pfs::MemStorage> new_meta, old_data;
  {
    auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                             std::make_unique<pfs::MemStorage>(),
                             Shape{4, 4}, Shape{2, 2}, dbl_opts());
    ASSERT_TRUE(f.is_ok());
    old_data = snapshot(f.value().data_storage());
    ASSERT_TRUE(f.value().extend(1, 4).is_ok());
    new_meta = snapshot(f.value().meta_storage());
  }
  auto reopened = DrxFile::open(std::move(new_meta), std::move(old_data));
  ASSERT_FALSE(reopened.is_ok());
  EXPECT_EQ(reopened.status().code(), ErrorCode::kCorrupt);
}

TEST(CrashConsistency, RetriedExtensionAfterTornCrashConverges) {
  // Recover from the torn state of the first test by re-running the
  // extension: the mapping appends the same segment addresses (determinism
  // of F*), so the retried extension lands on identical file offsets.
  std::unique_ptr<pfs::MemStorage> old_meta, new_data;
  {
    auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                             std::make_unique<pfs::MemStorage>(),
                             Shape{4, 4}, Shape{2, 2}, dbl_opts());
    ASSERT_TRUE(f.is_ok());
    ASSERT_TRUE(f.value().set<double>(Index{0, 0}, 1.5).is_ok());
    old_meta = snapshot(f.value().meta_storage());
    ASSERT_TRUE(f.value().extend(0, 2).is_ok());
    new_data = snapshot(f.value().data_storage());
  }
  auto torn = DrxFile::open(std::move(old_meta), std::move(new_data));
  ASSERT_TRUE(torn.is_ok());
  ASSERT_TRUE(torn.value().extend(0, 2).is_ok());  // retry
  EXPECT_EQ(torn.value().bounds(), (Shape{6, 4}));
  EXPECT_EQ(torn.value().get<double>(Index{0, 0}).value(), 1.5);
  EXPECT_EQ(torn.value().get<double>(Index{5, 3}).value(), 0.0);
}

}  // namespace
}  // namespace drx::core
