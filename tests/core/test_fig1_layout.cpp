// Exact reproduction of paper Figure 1: a 2-D extendible array A[10][12]
// stored in 2x3-element chunks, grown through the stated expansion
// sequence, partitioned into 4 zones.
#include <gtest/gtest.h>

#include "core/axial_mapping.hpp"
#include "core/chunk_space.hpp"
#include "core/zone.hpp"

namespace drx::core {
namespace {

/// Builds the Figure 1 chunk grid: "The array ... grew from an initial
/// allocation of chunk 0. It was then expanded by extending dimension 1
/// with chunk 1. This was followed with the extension of dimension 0 by
/// allocating the segment consisting of chunks 2 and 3. The same dimension
/// was then extended by appending chunks 4 and 5." The growth to the final
/// 5x4 chunk grid then alternates dimensions — the assignment that
/// reproduces the figure's zone contents and the Section II example
/// F*(4,2) = 18.
AxialMapping fig1_mapping() {
  AxialMapping m(Shape{1, 1});  // chunk 0
  m.extend(1, 1);              // chunk 1
  m.extend(0, 1);              // chunks 2, 3
  m.extend(0, 1);              // chunks 4, 5 (uninterrupted, merged)
  m.extend(1, 1);              // chunks 6, 7, 8
  m.extend(0, 1);              // chunks 9, 10, 11
  m.extend(1, 1);              // chunks 12..15
  m.extend(0, 1);              // chunks 16..19
  return m;
}

TEST(Fig1, ChunkAddressesMatchTheFigure) {
  const AxialMapping m = fig1_mapping();
  EXPECT_EQ(m.bounds(), (Shape{5, 4}));
  EXPECT_EQ(m.total_chunks(), 20u);

  // The figure's full chunk-address table (row = I0, col = I1).
  const std::uint64_t expect[5][4] = {{0, 1, 6, 12},
                                      {2, 3, 7, 13},
                                      {4, 5, 8, 14},
                                      {9, 10, 11, 15},
                                      {16, 17, 18, 19}};
  for (std::uint64_t i = 0; i < 5; ++i) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m.address_of(Index{i, j}), expect[i][j])
          << "chunk (" << i << "," << j << ")";
      EXPECT_EQ(m.index_of(expect[i][j]), (Index{i, j}));
    }
  }
}

TEST(Fig1, ElementGeometryMatches) {
  // A[10][12] with 2x3 chunks: 5x4 chunk grid; the paper notes the maximum
  // element index of dimension 1 (9, bound N1 = 10 in the text's notation
  // for the *other* dim — the figure uses bounds 10 and 12) need not fall
  // on a segment boundary.
  const ChunkSpace cs(Shape{2, 3}, MemoryOrder::kRowMajor);
  EXPECT_EQ(cs.chunk_bounds_for(Shape{10, 12}), (Shape{5, 4}));
  EXPECT_EQ(cs.chunk_bounds_for(Shape{10, 10}), (Shape{5, 4}));
  EXPECT_EQ(cs.chunk_of(Index{9, 11}), (Index{4, 3}));
  EXPECT_EQ(cs.elements_per_chunk(), 6u);
}

TEST(Fig1, FourProcessZonesMatchTheFigure) {
  // The figure's zones — P0 = {0..5}, P1 = {6,7,8,12,13,14},
  // P2 = {9,10,16,17}, P3 = {11,15,18,19} — are the 2x2 rectilinear
  // quadrants of the chunk grid cut at row 3 and column 2 (Sec. II-A:
  // "disjoint rectilinear regions ... of adjacent connected chunks").
  const AxialMapping m = fig1_mapping();
  const std::uint64_t cut_row = 3;
  const std::uint64_t cut_col = 2;

  const std::vector<std::vector<std::uint64_t>> expected_zones = {
      {0, 1, 2, 3, 4, 5},
      {6, 7, 8, 12, 13, 14},
      {9, 10, 16, 17},
      {11, 15, 18, 19}};

  for (int p = 0; p < 4; ++p) {
    Box zone;
    zone.lo = {p / 2 == 0 ? 0 : cut_row, p % 2 == 0 ? 0 : cut_col};
    zone.hi = {p / 2 == 0 ? cut_row : 5, p % 2 == 0 ? cut_col : 4};
    std::vector<std::uint64_t> addresses;
    for_each_index(zone, [&](const Index& c) {
      addresses.push_back(m.address_of(c));
    });
    std::sort(addresses.begin(), addresses.end());
    auto expect = expected_zones[static_cast<std::size_t>(p)];
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(addresses, expect) << "zone of P" << p;
  }
}

TEST(Fig1, BlockDistributionTilesTheGrid) {
  const AxialMapping m = fig1_mapping();
  const Distribution dist = Distribution::block(m.bounds(), 4);
  std::vector<int> owners(20, -1);
  Box full{Index{0, 0}, m.bounds()};
  for_each_index(full, [&](const Index& c) {
    const int owner = dist.owner_of(c);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    owners[m.address_of(c)] = owner;
  });
  // Every chunk owned exactly once (owner_of is total), and each process's
  // zones_of agrees with owner_of.
  for (int p = 0; p < 4; ++p) {
    for (const Index& c : dist.chunks_of(p)) {
      EXPECT_EQ(owners[m.address_of(c)], p);
    }
  }
}

TEST(Fig1, MappingFunctionExampleFromSectionII) {
  // "The chunk A[4,2] is assigned to the linear address location 18 in the
  // file. Hence the mapping function computes F*(4, 2) = 18."
  const AxialMapping m = fig1_mapping();
  EXPECT_EQ(m.address_of(Index{4, 2}), 18u);
}

}  // namespace
}  // namespace drx::core
