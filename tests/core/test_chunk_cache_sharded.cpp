// Sharded-cache tests (docs/SERVING.md): shard routing and per-shard
// access counters, the lock-free resident-read fast path (publish /
// unpublish / write coherence), capacity borrowing between shards, and
// an amplified multi-shard stress mix that races fast-path readers
// against writers, flushes, and invalidation. The ChunkCacheSharded.*
// filter runs under TSan's amplified pass in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/chunk_cache.hpp"
#include "io/config.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace drx::core {

/// White-box access to the private ShardPairLock (friend of ChunkCache):
/// the pairing primitive's edge cases (self-pair, extreme indices) are
/// not reachable through the public API, which only pairs distinct
/// shards via capacity borrowing.
struct ChunkCacheTestPeer {
  using PairLock = ChunkCache::ShardPairLock;
  static util::Mutex& shard_mu(ChunkCache& cache, std::size_t index) {
    return cache.shards_[index].mu;
  }
};

namespace {

DrxFile make_file(Shape bounds, Shape chunk) {
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           std::move(bounds), std::move(chunk), options);
  EXPECT_TRUE(f.is_ok());
  return std::move(f).value();
}

ChunkCache::AsyncOptions sharded(int shards) {
  ChunkCache::AsyncOptions async;
  async.shards = shards;
  return async;
}

void write_value(ChunkCache& cache, std::uint64_t q, double v) {
  auto p = cache.pin(q, /*writable=*/true);
  ASSERT_TRUE(p.is_ok());
  std::memcpy(p.value().data(), &v, sizeof(v));
  cache.unpin(q, /*dirty=*/true, /*writable=*/true);
}

double read_value(ChunkCache& cache, std::uint64_t q) {
  auto p = cache.pin(q, /*writable=*/false);
  EXPECT_TRUE(p.is_ok());
  double v = 0;
  std::memcpy(&v, p.value().data(), sizeof(v));
  cache.unpin(q, /*dirty=*/false, /*writable=*/false);
  return v;
}

TEST(ChunkCacheSharded, ShardCountRoundsAndCaps) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  ChunkCache c8(file, 32, sharded(8));
  EXPECT_EQ(c8.shard_count(), 8u);
  ChunkCache c6(file, 32, sharded(6));  // rounds down to a power of two
  EXPECT_EQ(c6.shard_count(), 4u);
  // Tiny capacity halves the shard count until every shard owns a frame.
  ChunkCache c_tiny(file, 2, sharded(8));
  EXPECT_LE(c_tiny.shard_count(), 2u);
  EXPECT_GE(c_tiny.shard_count(), 1u);
}

TEST(ChunkCacheSharded, AccessesSpreadAcrossShardsAndAreCounted) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  ChunkCache cache(file, 64, sharded(8));
  for (std::uint64_t q = 0; q < 64; ++q) {
    (void)read_value(cache, q);
  }
  const std::vector<std::uint64_t> accesses = cache.shard_accesses();
  ASSERT_EQ(accesses.size(), 8u);
  std::uint64_t total = 0;
  std::size_t populated = 0;
  for (const std::uint64_t a : accesses) {
    total += a;
    if (a != 0) ++populated;
  }
  EXPECT_EQ(total, 64u);
  // The splitmix64 mix must not collapse 64 sequential chunk ids onto a
  // couple of shards.
  EXPECT_GE(populated, 4u);
  for (std::uint64_t q = 0; q < 64; ++q) {
    EXPECT_LT(cache.shard_index(q), 8u);
  }
}

TEST(ChunkCacheSharded, FastPathServesResidentReads) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 8, sharded(4));
  write_value(cache, 3, 42.0);
  // A cold chunk is not published: the fast path must decline.
  EXPECT_FALSE(cache.try_pin_fast(7).has_value());
  // A read pin publishes the frame on unpin.
  EXPECT_EQ(read_value(cache, 3), 42.0);
  auto fast = cache.try_pin_fast(3);
  ASSERT_TRUE(fast.has_value());
  double v = 0;
  std::memcpy(&v, fast->bytes().data(), sizeof(v));
  EXPECT_EQ(v, 42.0);
  fast.reset();  // drop the pin before anyone needs to unpublish

  double out = 0;
  EXPECT_TRUE(cache.try_read_fast(
      3, 0, std::span<std::byte>(reinterpret_cast<std::byte*>(&out),
                                 sizeof(out))));
  EXPECT_EQ(out, 42.0);
  EXPECT_GE(cache.stats().fast_hits, 2u);
}

TEST(ChunkCacheSharded, WritePinUnpublishesAndRepublishes) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 8, sharded(4));
  EXPECT_EQ(read_value(cache, 5), 0.0);  // published now
  ASSERT_TRUE(cache.try_pin_fast(5).has_value());

  auto p = cache.pin(5, /*writable=*/true);
  ASSERT_TRUE(p.is_ok());
  // Write-pinned: the fast path must not see the frame mid-mutation.
  EXPECT_FALSE(cache.try_pin_fast(5).has_value());
  const double v = 7.0;
  std::memcpy(p.value().data(), &v, sizeof(v));
  cache.unpin(5, /*dirty=*/true, /*writable=*/true);

  // Republished after the write completes — and coherent.
  auto fast = cache.try_pin_fast(5);
  ASSERT_TRUE(fast.has_value());
  double seen = 0;
  std::memcpy(&seen, fast->bytes().data(), sizeof(seen));
  EXPECT_EQ(seen, 7.0);
}

TEST(ChunkCacheSharded, FastReadsDisabledByOption) {
  io::set_cache_fast_reads(0);
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 8, sharded(4));
  EXPECT_EQ(read_value(cache, 1), 0.0);
  EXPECT_FALSE(cache.try_pin_fast(1).has_value());
  EXPECT_EQ(cache.stats().fast_hits, 0u);
  io::set_cache_fast_reads(-1);  // back to DRX_CACHE_FAST_READS
}

TEST(ChunkCacheSharded, CapacityBorrowingRescuesAFullShard) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  ChunkCache cache(file, 4, sharded(2));  // 2 frames per shard
  ASSERT_EQ(cache.shard_count(), 2u);
  // Three chunks routed to the same shard: pinning all three overflows
  // that shard's capacity while every frame is pinned, which the cache
  // must survive by borrowing a frame's worth of capacity from its peer.
  const std::size_t target = cache.shard_index(0);
  std::vector<std::uint64_t> same;
  for (std::uint64_t q = 0; q < 64 && same.size() < 3; ++q) {
    if (cache.shard_index(q) == target) same.push_back(q);
  }
  ASSERT_EQ(same.size(), 3u);
  for (const std::uint64_t q : same) {
    auto p = cache.pin(q, /*writable=*/true);
    ASSERT_TRUE(p.is_ok()) << p.status().message();
  }
  EXPECT_GE(cache.stats().capacity_borrows, 1u);
  for (const std::uint64_t q : same) {
    cache.unpin(q, /*dirty=*/false, /*writable=*/true);
  }
  ASSERT_TRUE(cache.flush().is_ok());
}

TEST(ChunkCacheSharded, ShardPairLockSelfPairLocksOnce) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 8, sharded(4));
  const std::size_t i = 2 % cache.shard_count();
  util::Mutex& mu = ChunkCacheTestPeer::shard_mu(cache, i);
  std::atomic<bool> acquired{false};
  std::thread contender;
  {
    // a == b must collapse to one acquisition: the historical
    // DRX_CHECK(a != b) is gone, and locking the same mutex twice would
    // self-deadlock right here.
    ChunkCacheTestPeer::PairLock pair(cache, i, i);
    contender = std::thread([&mu, &acquired] {
      util::MutexLock lock(mu);
      acquired.store(true);
    });
    // The pair genuinely holds the shard: the contender cannot get in.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(acquired.load());
  }
  // Destroyed: released exactly once (a double unlock of a std::mutex
  // would be UB and trips TSan), and the contender proceeds.
  contender.join();
  EXPECT_TRUE(acquired.load());
  util::MutexLock relock(mu);  // still a healthy mutex
}

TEST(ChunkCacheSharded, ShardPairLockMaxIndexPairBothOrders) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});
  ChunkCache cache(file, 64, sharded(8));
  const std::size_t lo = 0;
  const std::size_t hi = cache.shard_count() - 1;
  ASSERT_GT(hi, lo);
  // The constructor sorts, so (lo, hi) and (hi, lo) must both acquire
  // lowest-first and release cleanly.
  { ChunkCacheTestPeer::PairLock pair(cache, lo, hi); }
  { ChunkCacheTestPeer::PairLock pair(cache, hi, lo); }
  // Self-pair at the top index: max(a, b) == shard_count() - 1 stays in
  // bounds and collapses to one lock.
  { ChunkCacheTestPeer::PairLock pair(cache, hi, hi); }
  util::MutexLock relo(ChunkCacheTestPeer::shard_mu(cache, lo));
  util::MutexLock rehi(ChunkCacheTestPeer::shard_mu(cache, hi));
}

// TSan-amplified stress (ChunkCacheSharded.* filter): pair-locked
// capacity borrowing ping-pongs frames between two shards while
// fast-path readers hit published frames and a churn thread resets the
// metrics Registry — the reset walks the same lock-free counter slots
// note_access() and the fast path bump concurrently.
TEST(ChunkCacheSharded, ConcurrentBorrowingVsFastReadsVsRegistryReset) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  ChunkCache cache(file, 4, sharded(2));  // 2 frames/shard: borrowing forced
  ASSERT_EQ(cache.shard_count(), 2u);
  // Three same-shard chunks per shard: pinning a trio overflows its
  // shard's base capacity and drives borrow_capacity's ShardPairLock.
  std::vector<std::vector<std::uint64_t>> trio(2);
  for (std::uint64_t q = 0; q < 64; ++q) {
    auto& list = trio[cache.shard_index(q)];
    if (list.size() < 3) list.push_back(q);
  }
  ASSERT_EQ(trio[0].size(), 3u);
  ASSERT_EQ(trio[1].size(), 3u);
  // Publish a few frames for the fast path before the race starts.
  for (const auto& list : trio) {
    for (const std::uint64_t q : list) EXPECT_EQ(read_value(cache, q), 0.0);
  }
  std::atomic<bool> failed{false};
  constexpr int kRounds = 150;

  std::thread borrower([&cache, &trio, &failed] {
    for (int round = 0; round < kRounds; ++round) {
      const auto& list = trio[round & 1];  // ping-pong the donor direction
      for (const std::uint64_t q : list) {
        auto p = cache.pin(q, /*writable=*/true);
        if (!p.is_ok()) {
          failed.store(true);
          return;
        }
        const double v = 1.0;
        std::memcpy(p.value().data(), &v, sizeof(v));
      }
      for (const std::uint64_t q : list) {
        cache.unpin(q, /*dirty=*/true, /*writable=*/true);
      }
    }
  });
  std::thread reader([&cache, &trio, &failed] {
    SplitMix64 rng(7);
    for (int i = 0; i < kRounds * 6; ++i) {
      const auto& list = trio[i & 1];
      const std::uint64_t q = list[rng.next_below(3)];
      double v = 0.0;
      if (auto fast = cache.try_pin_fast(q)) {
        std::memcpy(&v, fast->bytes().data(), sizeof(v));
      } else if (!cache.try_read_fast(
                     q, 0, std::span<std::byte>(
                               reinterpret_cast<std::byte*>(&v), sizeof(v)))) {
        continue;  // not resident right now — the race is the point
      }
      if (v != 0.0 && v != 1.0) {  // torn read through the fast path
        failed.store(true);
        return;
      }
    }
  });
  std::thread resetter([&cache] {
    for (int i = 0; i < kRounds; ++i) {
      obs::registry().reset();
      (void)cache.shard_accesses();
      std::this_thread::yield();
    }
  });
  borrower.join();
  reader.join();
  resetter.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(cache.flush().is_ok());
  EXPECT_GE(cache.stats().capacity_borrows, 1u);
}

// Amplified stress: fast-path readers race writers, flushes, and
// invalidation across shards. Run under TSan in CI (amplified filter);
// correctness here is "no crash, no torn value": every observed double
// is a value some writer wrote (or the initial zero).
TEST(ChunkCacheSharded, ConcurrentFastReadersVsWritersAndFlush) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  ChunkCache cache(file, 32, sharded(8));
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kOpsPerThread = 400;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&cache, &failed, w] {
      SplitMix64 rng(1000 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t q = rng.next_below(64);
        auto p = cache.pin(q, /*writable=*/true);
        if (!p.is_ok()) {
          failed.store(true);
          return;
        }
        const double v = static_cast<double>(1 + rng.next_below(1000));
        std::memcpy(p.value().data(), &v, sizeof(v));
        cache.unpin(q, /*dirty=*/true, /*writable=*/true);
        if (i % 128 == 0) {
          DRX_IGNORE_STATUS(cache.flush(),
                            "stress loop: final flush below checks errors");
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&cache, &failed, r] {
      SplitMix64 rng(2000 + static_cast<std::uint64_t>(r));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t q = rng.next_below(64);
        double v = -1.0;
        if (auto fast = cache.try_pin_fast(q)) {
          std::memcpy(&v, fast->bytes().data(), sizeof(v));
        } else {
          auto p = cache.pin(q, /*writable=*/false);
          if (!p.is_ok()) {
            failed.store(true);
            return;
          }
          std::memcpy(&v, p.value().data(), sizeof(v));
          cache.unpin(q, /*dirty=*/false, /*writable=*/false);
        }
        // Values are whole numbers in [0, 1000]; anything else is a torn
        // read through the fast path.
        if (!(v >= 0.0 && v <= 1000.0 && v == static_cast<double>(
                                                  static_cast<int>(v)))) {
          failed.store(true);
          return;
        }
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < 20; ++i) {
      DRX_IGNORE_STATUS(cache.flush(),
                        "racing flushes: the joined flush below is checked");
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(cache.flush().is_ok());
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace drx::core
