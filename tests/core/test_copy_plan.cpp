// CopyPlan correctness and ChunkCache admission control
// (docs/PERFORMANCE.md).
//
// The property test pins the run-coalescing engine to a naive per-element
// reference across randomized geometries; the admission tests pin the
// DRX_CACHE_ADMIT contract, including the headline regression guard:
// uniform-random element access through the cache must never cost more
// simulated storage time than raw access.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/chunk_cache.hpp"
#include "core/copy_plan.hpp"
#include "core/drx_file.hpp"
#include "core/scatter.hpp"
#include "io/config.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

/// The pre-plan element walk, kept as the oracle: one linearize() and one
/// offset_in_chunk() per element.
void reference_scatter(const ChunkSpace& cs, std::uint64_t esize,
                       std::span<const std::byte> chunk, const Box& clip,
                       const Box& box, MemoryOrder order,
                       std::span<std::byte> out) {
  const Shape box_shape = box.shape();
  Index rel(clip.rank());
  for_each_index(clip, [&](const Index& idx) {
    const std::uint64_t src = cs.offset_in_chunk(idx);
    for (std::size_t d = 0; d < rel.size(); ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t dst = linearize(rel, box_shape, order);
    std::memcpy(out.data() + dst * esize, chunk.data() + src * esize,
                checked_size(esize));
  });
}

void reference_gather(const ChunkSpace& cs, std::uint64_t esize,
                      std::span<std::byte> chunk, const Box& clip,
                      const Box& box, MemoryOrder order,
                      std::span<const std::byte> in) {
  const Shape box_shape = box.shape();
  Index rel(clip.rank());
  for_each_index(clip, [&](const Index& idx) {
    const std::uint64_t dst = cs.offset_in_chunk(idx);
    for (std::size_t d = 0; d < rel.size(); ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t src = linearize(rel, box_shape, order);
    std::memcpy(chunk.data() + dst * esize, in.data() + src * esize,
                checked_size(esize));
  });
}

std::vector<std::byte> random_bytes(SplitMix64& rng, std::uint64_t n) {
  std::vector<std::byte> v(checked_size(n));
  for (auto& b : v) b = static_cast<std::byte>(rng.next());
  return v;
}

class CopyPlanP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CopyPlanP, ByteIdenticalToNaiveReference) {
  SplitMix64 rng(GetParam());
  const std::size_t k = rng.next_in(1, 4);
  Shape chunk_shape(k);
  for (std::size_t d = 0; d < k; ++d) chunk_shape[d] = rng.next_in(1, 6);
  const MemoryOrder in_order = rng.next() % 2 == 0 ? MemoryOrder::kRowMajor
                                                   : MemoryOrder::kColMajor;
  const ChunkSpace cs(chunk_shape, in_order);
  const std::uint64_t esize = std::uint64_t{1} << rng.next_below(4);

  // A random clip inside a random (possibly non-origin) chunk, and a box
  // extending past the clip on both sides so base offsets are exercised.
  Index chunk_idx(k);
  for (std::size_t d = 0; d < k; ++d) chunk_idx[d] = rng.next_below(3);
  const Box cbox = cs.chunk_box(chunk_idx);
  Box clip, box;
  clip.lo.resize(k);
  clip.hi.resize(k);
  box.lo.resize(k);
  box.hi.resize(k);
  for (std::size_t d = 0; d < k; ++d) {
    clip.lo[d] = cbox.lo[d] + rng.next_below(chunk_shape[d]);
    clip.hi[d] = clip.lo[d] + rng.next_in(1, cbox.hi[d] - clip.lo[d]);
    box.lo[d] = clip.lo[d] - std::min(clip.lo[d], rng.next_below(3));
    box.hi[d] = clip.hi[d] + rng.next_below(3);
  }
  const MemoryOrder order = rng.next() % 2 == 0 ? MemoryOrder::kRowMajor
                                                : MemoryOrder::kColMajor;

  const CopyPlan plan(cs, esize, clip.shape(), box.shape(), order);
  EXPECT_EQ(plan.elements(), clip.volume());
  EXPECT_LE(plan.runs_per_execution(), plan.elements());

  const std::uint64_t chunk_bytes = cs.elements_per_chunk() * esize;
  const std::uint64_t box_bytes = box.volume() * esize;

  // Scatter: untouched destination bytes must survive on both paths, so
  // both outputs start from the same random image.
  const auto chunk_src = random_bytes(rng, chunk_bytes);
  auto out_plan = random_bytes(rng, box_bytes);
  auto out_ref = out_plan;
  plan.scatter(clip, box, chunk_src, out_plan);
  reference_scatter(cs, esize, chunk_src, clip, box, order, out_ref);
  EXPECT_EQ(out_plan, out_ref);

  // Gather: same for untouched chunk bytes.
  const auto box_src = random_bytes(rng, box_bytes);
  auto chunk_plan = random_bytes(rng, chunk_bytes);
  auto chunk_ref = chunk_plan;
  plan.gather(clip, box, chunk_plan, box_src);
  reference_gather(cs, esize, chunk_ref, clip, box, order, box_src);
  EXPECT_EQ(chunk_plan, chunk_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyPlanP,
                         ::testing::Range<std::uint64_t>(7000, 7096));

TEST(CopyPlan, FullChunkMatchingOrderIsOneRun) {
  const ChunkSpace cs(Shape{4, 8}, MemoryOrder::kRowMajor);
  const Box clip{{0, 0}, {4, 8}};
  const Box box = clip;
  const CopyPlan plan(cs, 8, clip.shape(), box.shape(),
                      MemoryOrder::kRowMajor);
  EXPECT_EQ(plan.runs_per_execution(), 1u);
  EXPECT_TRUE(plan.innermost_contiguous());
  EXPECT_EQ(plan.run_bytes(), 4u * 8u * 8u);
}

TEST(CopyPlan, RowClipsCoalesceAtLeastFiveFold) {
  // The acceptance-criteria shape: innermost-contiguous clips must batch
  // >= 5 elements per memcpy.
  const ChunkSpace cs(Shape{16, 16}, MemoryOrder::kRowMajor);
  const Box clip{{3, 0}, {16, 16}};
  const Box box{{0, 0}, {32, 32}};
  const CopyPlan plan(cs, 8, clip.shape(), box.shape(),
                      MemoryOrder::kRowMajor);
  EXPECT_TRUE(plan.innermost_contiguous());
  EXPECT_GE(plan.elements() / plan.runs_per_execution(), 5u);
}

TEST(PlanCache, MemoizesByShapeTriple) {
  PlanCache cache(ChunkSpace(Shape{8, 8}, MemoryOrder::kRowMajor), 8);
  const Shape clip{4, 8};
  const Shape box{16, 16};
  const auto a = cache.plan_for(clip, box, MemoryOrder::kRowMajor);
  const auto b = cache.plan_for(clip, box, MemoryOrder::kRowMajor);
  EXPECT_EQ(a.get(), b.get());
  const auto c = cache.plan_for(clip, box, MemoryOrder::kColMajor);
  EXPECT_NE(a.get(), c.get());
  const auto d = cache.plan_for(Shape{3, 8}, box, MemoryOrder::kRowMajor);
  EXPECT_NE(a.get(), d.get());
}

TEST(Scatter, FreeFunctionsTolerateEmptyClip) {
  const ChunkSpace cs(Shape{4, 4}, MemoryOrder::kRowMajor);
  const Box empty{{2, 2}, {2, 2}};
  const Box box{{0, 0}, {4, 4}};
  std::vector<std::byte> chunk(4 * 4 * 8), buf(4 * 4 * 8);
  scatter_chunk_into_box(cs, 8, chunk, empty, box, MemoryOrder::kRowMajor,
                         buf);
  gather_box_into_chunk(cs, 8, chunk, empty, box, MemoryOrder::kRowMajor,
                        buf);
}

// ---- cache admission (DRX_CACHE_ADMIT) ---------------------------------

/// Restores the admission override (and any modes the test set) on exit.
struct AdmitGuard {
  ~AdmitGuard() { io::set_cache_admit(io::CacheAdmit::kFromEnv); }
};

Result<DrxFile> make_file(std::uint64_t n, std::uint64_t chunk,
                          pfs::MemStorage** raw) {
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto data = std::make_unique<pfs::MemStorage>();
  *raw = data.get();
  return DrxFile::create(std::make_unique<pfs::MemStorage>(),
                         std::move(data), Shape{n, n}, Shape{chunk, chunk},
                         options);
}

/// The bench_chunk_cache uniform-random scenario: 20000 element touches
/// (25% writes) over a 512x512 double array in 16x16 chunks, 32 cache
/// frames. Returns the simulated storage busy time of the run.
double uniform_random_busy_us(bool cached) {
  pfs::MemStorage* raw = nullptr;
  auto file = make_file(512, 16, &raw);
  EXPECT_TRUE(file.is_ok());
  SplitMix64 rng(11);
  const auto before = raw->stats();
  auto touch = [&](auto&& get, auto&& set) {
    for (int t = 0; t < 20000; ++t) {
      Index idx{rng.next_below(512), rng.next_below(512)};
      if (rng.next_below(4) == 0) {
        EXPECT_TRUE(set(idx, static_cast<double>(t)));
      } else {
        EXPECT_TRUE(get(idx));
      }
    }
  };
  if (cached) {
    CachedDrxFile cache(file.value(), 32);
    touch([&](const Index& i) { return cache.get<double>(i).is_ok(); },
          [&](const Index& i, double v) { return cache.set(i, v).is_ok(); });
    EXPECT_TRUE(cache.flush().is_ok());
    EXPECT_GT(cache.stats().admit_bypasses, 0u);
  } else {
    touch(
        [&](const Index& i) {
          return file.value().get<double>(i).is_ok();
        },
        [&](const Index& i, double v) {
          return file.value().set(i, v).is_ok();
        });
  }
  return (raw->stats() - before).busy_us;
}

TEST(CacheAdmit, UniformRandomCachedNeverSlowerThanRaw) {
  AdmitGuard guard;
  io::set_cache_admit(io::CacheAdmit::kAuto);
  const double raw_us = uniform_random_busy_us(/*cached=*/false);
  const double cached_us = uniform_random_busy_us(/*cached=*/true);
  // The regression this guards: before scan-resistant admission the cached
  // path cost ~1.25x raw here (BENCH_baseline.json). Bypass-on-miss makes
  // every miss exactly as expensive as raw while hits remain free.
  EXPECT_LE(cached_us, raw_us);
}

TEST(CacheAdmit, ModesChangeBypassBehavior) {
  AdmitGuard guard;
  pfs::MemStorage* raw = nullptr;
  auto file = make_file(64, 8, &raw);
  ASSERT_TRUE(file.is_ok());
  SplitMix64 rng(29);
  auto run = [&](io::CacheAdmit mode) {
    io::set_cache_admit(mode);
    CachedDrxFile cache(file.value(), 2);
    for (int t = 0; t < 200; ++t) {
      Index idx{rng.next_below(64), rng.next_below(64)};
      EXPECT_TRUE(cache.get<double>(idx).is_ok());
    }
    const auto stats = cache.stats();
    EXPECT_TRUE(cache.flush().is_ok());
    return stats;
  };
  EXPECT_EQ(run(io::CacheAdmit::kAlways).admit_bypasses, 0u);
  const auto never = run(io::CacheAdmit::kNever);
  EXPECT_EQ(never.misses, 0u);  // no element miss ever faults a chunk
  EXPECT_GT(never.admit_bypasses, 0u);
  EXPECT_GT(run(io::CacheAdmit::kAuto).admit_bypasses, 0u);
}

TEST(CacheAdmit, GhostPromotionAdmitsOnReuse) {
  AdmitGuard guard;
  io::set_cache_admit(io::CacheAdmit::kAuto);
  pfs::MemStorage* raw = nullptr;
  auto file = make_file(64, 8, &raw);
  ASSERT_TRUE(file.is_ok());
  CachedDrxFile cache(file.value(), 4);
  const Index a{1, 1};
  const Index b{1, 2};   // same chunk as `a`
  const Index far{60, 60};  // a different chunk, breaking the miss run
  // First touches of cold chunks are probationary (bypassed)...
  ASSERT_TRUE(cache.get<double>(a).is_ok());
  EXPECT_EQ(cache.stats().admit_bypasses, 1u);
  ASSERT_TRUE(cache.get<double>(far).is_ok());
  EXPECT_EQ(cache.stats().admit_bypasses, 2u);
  // ...the non-consecutive re-touch of `a` promotes it from the ghost...
  ASSERT_TRUE(cache.get<double>(a).is_ok());
  EXPECT_EQ(cache.stats().admit_promotions, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // ...after which neighbours hit without I/O.
  const auto reads_before = raw->stats().read_requests;
  ASSERT_TRUE(cache.get<double>(b).is_ok());
  EXPECT_EQ(raw->stats().read_requests, reads_before);
  EXPECT_TRUE(cache.flush().is_ok());
}

TEST(CacheAdmit, HotElementWriteLoopAdmitsWithoutGhost) {
  // Back-to-back misses on one chunk (the hot write loop of
  // CachedDrxFile.ElementAccessReducesIo) admit on the second touch even
  // though writes never promote from the ghost table.
  AdmitGuard guard;
  io::set_cache_admit(io::CacheAdmit::kAuto);
  pfs::MemStorage* raw = nullptr;
  auto file = make_file(64, 8, &raw);
  ASSERT_TRUE(file.is_ok());
  CachedDrxFile cache(file.value(), 4);
  for (std::uint64_t j = 0; j < 8; ++j) {
    ASSERT_TRUE(cache.set<double>(Index{0, j}, 1.0).is_ok());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.admit_bypasses, 1u);  // only the first touch
  EXPECT_EQ(stats.misses, 1u);          // one fault on the second
  EXPECT_EQ(stats.hits, 6u);            // the rest are free
  EXPECT_TRUE(cache.flush().is_ok());
}

}  // namespace
}  // namespace drx::core
