// The paper's Section IV-C programming interface (DRXMP_Init / Open /
// Close / Terminate / Read / Read_all / ...) over the DrxMpFile engine.
#include "core/drxmp_api.hpp"

#include <gtest/gtest.h>

#include "simpi/runtime.hpp"

namespace drx::core::api {
namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 2;
  c.stripe_size = 512;
  return c;
}

TEST(DrxmpApi, InitWriteReadAllLifecycle) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    Env env(comm, fs);
    DrxmpHandle handle = kInvalidHandle;
    const std::uint64_t initsize[] = {8, 8};
    const std::uint64_t chkshape[] = {2, 2};
    ASSERT_EQ(env.init(&handle, 2, initsize, chkshape, DrxType::kDouble,
                       "api_array"),
              DRXMP_SUCCESS);
    ASSERT_NE(handle, kInvalidHandle);

    int k = 0;
    EXPECT_EQ(env.get_rank(handle, &k), DRXMP_SUCCESS);
    EXPECT_EQ(k, 2);
    std::uint64_t bounds[2] = {};
    EXPECT_EQ(env.get_bounds(handle, bounds, 2), DRXMP_SUCCESS);
    EXPECT_EQ(bounds[0], 8u);
    DrxType t{};
    EXPECT_EQ(env.get_type(handle, &t), DRXMP_SUCCESS);
    EXPECT_EQ(t, DrxType::kDouble);

    // Each rank writes two rows collectively, then reads everything back.
    const auto r = static_cast<std::uint64_t>(comm.rank());
    std::vector<double> rows(16);
    for (std::size_t i = 0; i < 16; ++i) {
      rows[i] = static_cast<double>(r * 100 + i);
    }
    MemHandle wmem{rows.data(), Box{{2 * r, 0}, {2 * r + 2, 8}},
                   MemoryOrder::kRowMajor};
    DrxmpStatus st{};
    ASSERT_EQ(env.write_all(handle, wmem, &st), DRXMP_SUCCESS);
    EXPECT_EQ(st.elements, 16u);
    EXPECT_EQ(st.bytes, 128u);
    comm.barrier();

    std::vector<double> all(64, -1);
    MemHandle rmem{all.data(), Box{{0, 0}, {8, 8}}, MemoryOrder::kRowMajor};
    ASSERT_EQ(env.read_all(handle, rmem, &st), DRXMP_SUCCESS);
    EXPECT_EQ(st.elements, 64u);
    for (std::uint64_t i = 0; i < 8; ++i) {
      for (std::uint64_t j = 0; j < 8; ++j) {
        EXPECT_EQ(all[i * 8 + j],
                  static_cast<double>((i / 2) * 100 + (i % 2) * 8 + j));
      }
    }
    EXPECT_EQ(env.close(handle), DRXMP_SUCCESS);
  });
}

TEST(DrxmpApi, OpenRequiresExistingFile) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    Env env(comm, fs);
    DrxmpHandle handle = kInvalidHandle;
    EXPECT_EQ(env.open(&handle, "ghost", "rw"), DRXMP_ERR_NO_SUCH_FILE);
    EXPECT_EQ(handle, kInvalidHandle);
    EXPECT_EQ(env.open(&handle, "ghost", "w"), DRXMP_ERR_INVALID_ARG);
  });
}

TEST(DrxmpApi, OpenAfterInitSeesSameArray) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    Env env(comm, fs);
    DrxmpHandle a = kInvalidHandle;
    const std::uint64_t initsize[] = {4, 4};
    const std::uint64_t chkshape[] = {2, 2};
    ASSERT_EQ(env.init(&a, 2, initsize, chkshape, DrxType::kInt, "arr"),
              DRXMP_SUCCESS);
    ASSERT_EQ(env.extend(a, 1, 4), DRXMP_SUCCESS);
    ASSERT_EQ(env.close(a), DRXMP_SUCCESS);
    comm.barrier();

    DrxmpHandle b = kInvalidHandle;
    ASSERT_EQ(env.open(&b, "arr", "r"), DRXMP_SUCCESS);
    std::uint64_t bounds[2] = {};
    ASSERT_EQ(env.get_bounds(b, bounds, 2), DRXMP_SUCCESS);
    EXPECT_EQ(bounds[1], 8u);
    DrxType t{};
    ASSERT_EQ(env.get_type(b, &t), DRXMP_SUCCESS);
    EXPECT_EQ(t, DrxType::kInt);
    EXPECT_EQ(env.close(b), DRXMP_SUCCESS);
  });
}

TEST(DrxmpApi, IndependentReadAndWrite) {
  pfs::Pfs fs(cfg());
  simpi::run(3, [&](simpi::Comm& comm) {
    Env env(comm, fs);
    DrxmpHandle handle = kInvalidHandle;
    const std::uint64_t initsize[] = {6, 6};
    const std::uint64_t chkshape[] = {2, 2};
    ASSERT_EQ(env.init(&handle, 2, initsize, chkshape, DrxType::kDouble,
                       "ind"),
              DRXMP_SUCCESS);
    // Rank r independently writes its chunk-aligned row band [2r, 2r+2).
    const auto r = static_cast<std::uint64_t>(comm.rank());
    std::vector<double> band(12, static_cast<double>(comm.rank() + 1));
    MemHandle wmem{band.data(), Box{{2 * r, 0}, {2 * r + 2, 6}},
                   MemoryOrder::kRowMajor};
    ASSERT_EQ(env.write(handle, wmem, nullptr), DRXMP_SUCCESS);
    comm.barrier();

    std::vector<double> all(36, -1);
    MemHandle rmem{all.data(), Box{{0, 0}, {6, 6}}, MemoryOrder::kColMajor};
    ASSERT_EQ(env.read(handle, rmem, nullptr), DRXMP_SUCCESS);
    for (std::uint64_t j = 0; j < 6; ++j) {
      for (std::uint64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(all[j * 6 + i], static_cast<double>(i / 2 + 1));
      }
    }
    EXPECT_EQ(env.close(handle), DRXMP_SUCCESS);
  });
}

TEST(DrxmpApi, BadHandlesAndArgs) {
  pfs::Pfs fs(cfg());
  simpi::run(1, [&](simpi::Comm& comm) {
    Env env(comm, fs);
    EXPECT_EQ(env.close(0), DRXMP_ERR_BAD_HANDLE);
    EXPECT_EQ(env.close(kInvalidHandle), DRXMP_ERR_BAD_HANDLE);
    int k = 0;
    EXPECT_EQ(env.get_rank(7, &k), DRXMP_ERR_BAD_HANDLE);
    DrxmpHandle handle = kInvalidHandle;
    EXPECT_EQ(env.init(nullptr, 2, nullptr, nullptr, DrxType::kInt, "x"),
              DRXMP_ERR_INVALID_ARG);
    EXPECT_EQ(env.init(&handle, 0, nullptr, nullptr, DrxType::kInt, "x"),
              DRXMP_ERR_INVALID_ARG);
  });
}

TEST(DrxmpApi, TerminateClosesEverything) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    Env env(comm, fs);
    const std::uint64_t initsize[] = {4};
    const std::uint64_t chkshape[] = {2};
    DrxmpHandle a, b;
    ASSERT_EQ(env.init(&a, 1, initsize, chkshape, DrxType::kDouble, "t1"),
              DRXMP_SUCCESS);
    ASSERT_EQ(env.init(&b, 1, initsize, chkshape, DrxType::kDouble, "t2"),
              DRXMP_SUCCESS);
    EXPECT_EQ(env.terminate(), DRXMP_SUCCESS);
    EXPECT_EQ(env.close(a), DRXMP_ERR_BAD_HANDLE);
    EXPECT_EQ(env.close(b), DRXMP_ERR_BAD_HANDLE);
  });
}

}  // namespace
}  // namespace drx::core::api
