// Async-engine tests for ChunkCache (docs/ASYNC_IO.md): read-ahead,
// write-behind, sticky deferred errors, and thread-safety under
// many-rank hammering. The synchronous-mode tests live in
// test_chunk_cache.cpp; everything here opts in via AsyncOptions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/chunk_cache.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

constexpr ChunkCache::AsyncOptions kAsync{/*io_threads=*/2,
                                          /*prefetch_depth=*/4};

DrxFile make_file(Shape bounds, Shape chunk) {
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           std::move(bounds), std::move(chunk), options);
  EXPECT_TRUE(f.is_ok());
  return std::move(f).value();
}

/// Storage wrapper that injects write failures (and optional write
/// latency) over a MemStorage backing store.
class FaultyStorage final : public pfs::Storage {
 public:
  struct Controls {
    std::atomic<int> fail_writes_after{-1};  ///< -1 = never fail
    std::atomic<int> write_delay_ms{0};
    std::atomic<int> writes_seen{0};
  };

  explicit FaultyStorage(Controls& controls) : controls_(&controls) {}

  Status read_at(std::uint64_t offset, std::span<std::byte> out) override {
    return inner_.read_at(offset, out);
  }
  Status write_at(std::uint64_t offset,
                  std::span<const std::byte> data) override {
    const int seen = controls_->writes_seen.fetch_add(1);
    const int delay = controls_->write_delay_ms.load();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    const int fail_after = controls_->fail_writes_after.load();
    if (fail_after >= 0 && seen >= fail_after) {
      return Status(ErrorCode::kIoError, "injected write failure");
    }
    return inner_.write_at(offset, data);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  Status truncate(std::uint64_t new_size) override {
    return inner_.truncate(new_size);
  }
  Status flush() override { return Status::ok(); }

 private:
  Controls* controls_;
  pfs::MemStorage inner_;
};

DrxFile make_faulty_file(FaultyStorage::Controls& controls, Shape bounds,
                         Shape chunk) {
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<FaultyStorage>(controls),
                           std::move(bounds), std::move(chunk), options);
  EXPECT_TRUE(f.is_ok());
  return std::move(f).value();
}

TEST(ChunkCacheAsync, RoundTripMatchesSynchronousSemantics) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  {
    ChunkCache cache(file, 4, kAsync);
    ASSERT_TRUE(cache.async());
    for (std::uint64_t q = 0; q < 16; ++q) {
      auto p = cache.pin(q);
      ASSERT_TRUE(p.is_ok());
      const double v = static_cast<double>(100 + q);
      std::memcpy(p.value().data(), &v, sizeof(v));
      cache.unpin(q, /*dirty=*/true);
    }
    ASSERT_TRUE(cache.flush().is_ok());
  }
  for (std::uint64_t q = 0; q < 16; ++q) {
    double v = 0;
    std::vector<std::byte> chunk(checked_size(file.chunk_bytes()));
    ASSERT_TRUE(file.read_chunk(q, chunk).is_ok());
    std::memcpy(&v, chunk.data(), sizeof(v));
    EXPECT_EQ(v, static_cast<double>(100 + q));
  }
}

TEST(ChunkCacheAsync, SequentialScanPrefetchesAndCoalescesReads) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  auto& io = static_cast<pfs::MemStorage&>(file.data_storage()).stats();
  ChunkCache cache(file, 16, kAsync);

  const std::uint64_t reads_before = io.read_requests;
  for (std::uint64_t q = 0; q < 64; ++q) {
    auto p = cache.pin(q);
    ASSERT_TRUE(p.is_ok());
    cache.unpin(q, false);
  }
  ASSERT_TRUE(cache.flush().is_ok());

  const ChunkCache::Stats stats = cache.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_useful, 0u);
  // The point of read-ahead under the Pfs cost model: K chunks per storage
  // request instead of one. A fully synchronous scan would issue 64.
  EXPECT_LT(io.read_requests - reads_before, 64u);
  EXPECT_EQ(stats.hits + stats.misses, 64u);
}

TEST(ChunkCacheAsync, SyncModeNeverPrefetches) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});
  auto& io = static_cast<pfs::MemStorage&>(file.data_storage()).stats();
  ChunkCache cache(file, 16);  // env defaults: synchronous
  ASSERT_FALSE(cache.async());
  const std::uint64_t reads_before = io.read_requests;
  for (std::uint64_t q = 0; q < 64; ++q) {
    auto p = cache.pin(q);
    ASSERT_TRUE(p.is_ok());
    cache.unpin(q, false);
  }
  EXPECT_EQ(io.read_requests - reads_before, 64u);
  EXPECT_EQ(cache.stats().prefetch_issued, 0u);
}

TEST(ChunkCacheAsync, WriteBehindDefersEvictionWritebacks) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 2, kAsync);
  for (std::uint64_t q = 0; q < 8; ++q) {
    auto p = cache.pin(q);
    ASSERT_TRUE(p.is_ok());
    const double v = static_cast<double>(q) * 1.5;
    std::memcpy(p.value().data(), &v, sizeof(v));
    cache.unpin(q, /*dirty=*/true);
  }
  ASSERT_TRUE(cache.flush().is_ok());
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_GT(stats.deferred_writebacks, 0u);
  EXPECT_GE(stats.writebacks, stats.deferred_writebacks);
  for (std::uint64_t q = 0; q < 8; ++q) {
    std::vector<std::byte> chunk(checked_size(file.chunk_bytes()));
    ASSERT_TRUE(file.read_chunk(q, chunk).is_ok());
    double v = 0;
    std::memcpy(&v, chunk.data(), sizeof(v));
    EXPECT_EQ(v, static_cast<double>(q) * 1.5);
  }
}

TEST(ChunkCacheAsync, MissServedFromWriteBehindQueue) {
  FaultyStorage::Controls controls;
  controls.write_delay_ms = 50;  // keep the write-back job in flight
  DrxFile file = make_faulty_file(controls, Shape{4, 4}, Shape{2, 2});
  ChunkCache cache(file, 1, ChunkCache::AsyncOptions{1, 0});

  // Evict a dirty chunk (queuing its slow write-back), then re-pin it.
  // Whichever wins the race — write still queued, or write already
  // landed — the newest bytes must come back. Seeing at least one actual
  // queue hit is timing-dependent per attempt, so retry a few times; in
  // practice the first attempt hits (the foreground thread reaches the
  // storage mutex before the worker wakes).
  bool queue_hit = false;
  for (int attempt = 0; attempt < 20 && !queue_hit; ++attempt) {
    auto p = cache.pin(0);
    ASSERT_TRUE(p.is_ok());
    const double v = 42.25 + attempt;
    std::memcpy(p.value().data(), &v, sizeof(v));
    cache.unpin(0, /*dirty=*/true);

    auto q = cache.pin(1);  // evicts 0, deferring its write-back
    ASSERT_TRUE(q.is_ok());
    cache.unpin(1, false);

    auto back = cache.pin(0);
    ASSERT_TRUE(back.is_ok());
    double seen = 0;
    std::memcpy(&seen, back.value().data(), sizeof(seen));
    EXPECT_EQ(seen, v);  // stale zeros would mean a lost write
    cache.unpin(0, false);
    queue_hit = cache.stats().write_queue_hits > 0;
  }
  EXPECT_TRUE(queue_hit);
  EXPECT_GT(cache.stats().deferred_writebacks, 0u);
  ASSERT_TRUE(cache.flush().is_ok());
}

TEST(ChunkCacheAsync, DeferredWriteErrorIsStickyAndSurfacedOnce) {
  FaultyStorage::Controls controls;
  DrxFile file = make_faulty_file(controls, Shape{4, 4}, Shape{2, 2});
  ChunkCache cache(file, 1, kAsync);

  auto p = cache.pin(0);
  ASSERT_TRUE(p.is_ok());
  const double v = 1.0;
  std::memcpy(p.value().data(), &v, sizeof(v));
  cache.unpin(0, /*dirty=*/true);

  controls.fail_writes_after = 0;  // every write from now on fails
  auto q = cache.pin(1);  // evicts 0, deferring a doomed write-back
  ASSERT_TRUE(q.is_ok());
  cache.unpin(1, false);

  // flush() is the barrier that surfaces the first deferred error...
  const Status first = cache.flush();
  EXPECT_FALSE(first.is_ok());
  EXPECT_EQ(first.code(), ErrorCode::kIoError);
  // ...exactly once...
  controls.fail_writes_after = -1;
  EXPECT_TRUE(cache.flush().is_ok());
  // ...while last_error() keeps the failure observable forever.
  EXPECT_FALSE(cache.last_error().is_ok());
  EXPECT_EQ(cache.last_error().code(), ErrorCode::kIoError);
}

TEST(ChunkCacheAsync, DestructorDoesNotLoseUnflushedError) {
  FaultyStorage::Controls controls;
  DrxFile file = make_faulty_file(controls, Shape{4, 4}, Shape{2, 2});
  {
    ChunkCache cache(file, 1, kAsync);
    auto p = cache.pin(0);
    ASSERT_TRUE(p.is_ok());
    const double v = 1.0;
    std::memcpy(p.value().data(), &v, sizeof(v));
    cache.unpin(0, /*dirty=*/true);
    controls.fail_writes_after = 0;
    auto q = cache.pin(1);  // deferred doomed write-back
    ASSERT_TRUE(q.is_ok());
    cache.unpin(1, false);
    // Destroyed without a flush(): the error must be logged, not dropped
    // silently (observable here as: no crash, clean teardown).
  }
}

TEST(ChunkCacheAsync, AllFramesPinnedFailsPinWithoutBlocking) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 2, kAsync);
  auto a = cache.pin(0);
  ASSERT_TRUE(a.is_ok());
  auto b = cache.pin(1);
  ASSERT_TRUE(b.is_ok());
  auto c = cache.pin(2);
  ASSERT_FALSE(c.is_ok());
  EXPECT_EQ(c.status().code(), ErrorCode::kFailedPrecondition);
  cache.unpin(1, false);
  auto c2 = cache.pin(2);
  ASSERT_TRUE(c2.is_ok());
  cache.unpin(2, false);
  cache.unpin(0, false);
}

TEST(ChunkCacheAsync, EvictionOrderRespectsInterleavedPins) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 3, ChunkCache::AsyncOptions{2, 0});  // no prefetch
  // Fill: 0, 1, 2 resident; re-pin 0 so LRU order becomes 1 < 2 < 0.
  for (std::uint64_t q : {0u, 1u, 2u}) {
    ASSERT_TRUE(cache.pin(q).is_ok());
    cache.unpin(q, false);
  }
  ASSERT_TRUE(cache.pin(0).is_ok());  // 0 pinned: ineligible
  auto p3 = cache.pin(3);             // must evict 1 (least recent, unpinned)
  ASSERT_TRUE(p3.is_ok());
  cache.unpin(3, false);
  auto p1 = cache.pin(1);  // 1 was evicted: miss
  ASSERT_TRUE(p1.is_ok());
  cache.unpin(1, false);
  cache.unpin(0, false);
  const ChunkCache::Stats stats = cache.stats();
  // Misses: 0,1,2,3 cold + 1 re-faulted = 5; hits: the re-pin of 0.
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ChunkCacheAsync, ExplicitPrefetchIsAdvisoryAndNonBlocking) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});
  ChunkCache cache(file, 16, kAsync);
  cache.prefetch(0, 8);
  cache.prefetch(0, 8);      // overlapping request: reduced to nothing
  cache.prefetch(1000, 4);   // out of range: dropped
  for (std::uint64_t q = 0; q < 8; ++q) {
    auto p = cache.pin(q);
    ASSERT_TRUE(p.is_ok());
    cache.unpin(q, false);
  }
  ASSERT_TRUE(cache.flush().is_ok());
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_GE(stats.prefetch_issued, 8u);
  EXPECT_GE(stats.prefetch_useful, 8u);
  EXPECT_EQ(stats.misses, 0u);  // every pin landed on a prefetched frame
}

TEST(CachedDrxFileAsync, ReadBoxPrefetchesThroughTheHintChain) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 8x8 chunks
  auto& io = static_cast<pfs::MemStorage&>(file.data_storage()).stats();
  CachedDrxFile cached(file, 32, kAsync);

  // Seed known values through the uncached file.
  for_each_index(Box{{0, 0}, {16, 16}}, [&](const Index& idx) {
    ASSERT_TRUE(
        file.set<double>(idx, static_cast<double>(idx[0] * 16 + idx[1]))
            .is_ok());
  });

  const Box box{{2, 2}, {10, 10}};  // 16 chunks
  std::vector<std::byte> out(checked_size(
      checked_mul(box.volume(), file.element_bytes())));
  const std::uint64_t reads_before = io.read_requests;
  ASSERT_TRUE(cached.read_box(box, MemoryOrder::kRowMajor, out).is_ok());
  // The box hint coalesces chunk faults: strictly fewer storage requests
  // than the 16 chunks the box covers.
  EXPECT_LT(io.read_requests - reads_before, 16u);
  EXPECT_GT(cached.stats().prefetch_useful, 0u);

  const auto* values = reinterpret_cast<const double*>(out.data());
  std::size_t k = 0;
  for (std::uint64_t i = 2; i < 10; ++i) {
    for (std::uint64_t j = 2; j < 10; ++j) {
      EXPECT_EQ(values[k++], static_cast<double>(i * 16 + j));
    }
  }
}

TEST(CachedDrxFileAsync, ReadBoxMatchesSyncModeResult) {
  DrxFile file_async = make_file(Shape{12, 12}, Shape{3, 3});
  DrxFile file_sync = make_file(Shape{12, 12}, Shape{3, 3});
  SplitMix64 rng(7);
  for_each_index(Box{{0, 0}, {12, 12}}, [&](const Index& idx) {
    const double v = rng.next_double();
    ASSERT_TRUE(file_async.set<double>(idx, v).is_ok());
    ASSERT_TRUE(file_sync.set<double>(idx, v).is_ok());
  });
  CachedDrxFile a(file_async, 4, kAsync);
  CachedDrxFile s(file_sync, 4);
  const Box box{{1, 0}, {11, 12}};
  std::vector<std::byte> out_a(checked_size(
      checked_mul(box.volume(), file_async.element_bytes())));
  std::vector<std::byte> out_s = out_a;
  ASSERT_TRUE(a.read_box(box, MemoryOrder::kColMajor, out_a).is_ok());
  ASSERT_TRUE(s.read_box(box, MemoryOrder::kColMajor, out_s).is_ok());
  EXPECT_EQ(out_a, out_s);
}

TEST(ChunkCacheAsync, FlushSurfacesErrorFromItsOwnWritebacks) {
  FaultyStorage::Controls controls;
  DrxFile file = make_faulty_file(controls, Shape{4, 4}, Shape{2, 2});
  ChunkCache cache(file, 4, kAsync);

  // Dirty frames stay resident (capacity 4, no eviction): the failing
  // writes are queued by flush() itself, not by earlier evictions.
  for (std::uint64_t q = 0; q < 4; ++q) {
    auto p = cache.pin(q);
    ASSERT_TRUE(p.is_ok());
    const double v = static_cast<double>(q);
    std::memcpy(p.value().data(), &v, sizeof(v));
    cache.unpin(q, /*dirty=*/true);
  }
  controls.fail_writes_after = 0;

  const Status first = cache.flush();
  EXPECT_FALSE(first.is_ok());
  EXPECT_EQ(first.code(), ErrorCode::kIoError);
  // Surfaced once; sticky in last_error() afterwards.
  controls.fail_writes_after = -1;
  EXPECT_TRUE(cache.flush().is_ok());
  EXPECT_EQ(cache.last_error().code(), ErrorCode::kIoError);
}

// Regression test for the flush/set race: flush() used to write a
// frame's buffer to storage while a concurrent pinner was memcpy-ing
// into the same bytes (pin() hands out raw spans, written without any
// lock). flush now claims a frame only once its pin count drops to zero
// and holds a flushing mark across the unlocked write, so a writer and
// a flusher can never touch one buffer at the same time. Run under
// -fsanitize=thread (ctest -R Tsan / CI tsan job) this fails on the old
// code and is quiet on the new design.
TEST(ChunkCacheAsync, ConcurrentFlushAndSetDoNotRaceOnFrameBuffer) {
  FaultyStorage::Controls controls;
  controls.write_delay_ms = 1;  // widen the unlocked write-back window
  DrxFile file = make_faulty_file(controls, Shape{4, 4}, Shape{2, 2});
  ChunkCache cache(file, 2, ChunkCache::AsyncOptions{1, 0});

  constexpr int kIters = 200;
  std::thread writer([&] {
    for (int i = 1; i <= kIters; ++i) {
      auto p = cache.pin(0);
      ASSERT_TRUE(p.is_ok());
      auto* slot = reinterpret_cast<double*>(p.value().data());
      slot[0] = static_cast<double>(i);
      cache.unpin(0, /*dirty=*/true);
    }
  });
  std::thread flusher([&] {
    for (int i = 0; i < kIters / 4; ++i) {
      ASSERT_TRUE(cache.flush().is_ok());
    }
  });
  writer.join();
  flusher.join();

  ASSERT_TRUE(cache.flush().is_ok());
  EXPECT_TRUE(cache.last_error().is_ok());
  std::vector<std::byte> chunk(checked_size(file.chunk_bytes()));
  ASSERT_TRUE(file.read_chunk(0, chunk).is_ok());
  double seen = 0;
  std::memcpy(&seen, chunk.data(), sizeof(seen));
  EXPECT_EQ(seen, static_cast<double>(kIters));
}

// Many simpi rank-threads hammering ONE shared cache: the TSan target.
// Each rank owns a disjoint slice of chunk addresses (pin contents are
// unsynchronized between pinners, so only owners touch bytes), but all
// ranks contend on the cache structures, LRU, and write-behind queue.
TEST(ChunkCacheAsync, ManyRanksHammerOneCache) {
  DrxFile file = make_file(Shape{16, 16}, Shape{2, 2});  // 64 chunks
  ChunkCache cache(file, 8, kAsync);
  constexpr int kRanks = 4;
  constexpr int kIters = 300;

  simpi::run(kRanks, [&](simpi::Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    SplitMix64 rng(1234 + r);
    for (int i = 0; i < kIters; ++i) {
      // Owned addresses: r, r+kRanks, r+2*kRanks, ... (disjoint per rank).
      const std::uint64_t q =
          r + kRanks * rng.next_below(64 / kRanks);
      auto p = cache.pin(q);
      ASSERT_TRUE(p.is_ok());
      auto* slot = reinterpret_cast<double*>(p.value().data());
      if (rng.next() % 2 == 0) {
        slot[0] = static_cast<double>(q);
        slot[1] = static_cast<double>(i);
        cache.unpin(q, /*dirty=*/true);
      } else {
        if (slot[0] != 0.0) {
          EXPECT_EQ(slot[0], static_cast<double>(q));
        }
        cache.unpin(q, false);
      }
    }
    comm.barrier();
  });

  ASSERT_TRUE(cache.flush().is_ok());
  EXPECT_TRUE(cache.last_error().is_ok());
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kRanks) * kIters);
}

}  // namespace
}  // namespace drx::core
