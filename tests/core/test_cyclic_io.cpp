// BLOCK_CYCLIC(k) distributions driven through DRX-MP's chunk-list
// transfer primitive: scattered multi-zone chunk sets read and written
// collectively (the generalization named as future work in paper Sec. V).
#include <gtest/gtest.h>

#include <cstring>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

namespace drx::core {
namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 3;
  c.stripe_size = 256;
  return c;
}

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

/// Tag value of a chunk = linear address + 1 (never zero).
double chunk_tag(const AxialMapping& m, const Index& c) {
  return static_cast<double>(m.address_of(c)) + 1.0;
}

class CyclicIoP : public ::testing::TestWithParam<int> {};

TEST_P(CyclicIoP, ScatteredChunkListsRoundTripCollectively) {
  const int p = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(p, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "cyc", Shape{12, 12},
                                    Shape{2, 2}, dbl_opts())
                      .value();
    const Distribution dist = Distribution::block_cyclic(
        f.metadata().mapping.bounds(), comm.size(), Shape{1, 2});
    const std::vector<Index> mine = dist.chunks_of(comm.rank());

    // Write: fill every owned chunk with its tag.
    const std::uint64_t cb = f.chunk_bytes();
    std::vector<std::byte> staging(mine.size() * cb);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const double tag = chunk_tag(f.metadata().mapping, mine[i]);
      auto* cells = reinterpret_cast<double*>(staging.data() + i * cb);
      for (std::uint64_t e = 0; e < cb / 8; ++e) cells[e] = tag;
    }
    ASSERT_TRUE(f.write_chunks(mine, staging, /*collective=*/true).is_ok());
    comm.barrier();

    // Read back a *different* rank's chunk set (rotated ownership) and
    // verify tags — every chunk of the grid ends up checked by someone.
    const int peer = (comm.rank() + 1) % comm.size();
    const std::vector<Index> theirs = dist.chunks_of(peer);
    std::vector<std::byte> in(theirs.size() * cb);
    ASSERT_TRUE(f.read_chunks(theirs, in, /*collective=*/true).is_ok());
    for (std::size_t i = 0; i < theirs.size(); ++i) {
      const double tag = chunk_tag(f.metadata().mapping, theirs[i]);
      const auto* cells =
          reinterpret_cast<const double*>(in.data() + i * cb);
      for (std::uint64_t e = 0; e < cb / 8; ++e) {
        ASSERT_EQ(cells[e], tag) << "chunk " << i << " elem " << e;
      }
    }
    ASSERT_TRUE(f.close().is_ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, CyclicIoP, ::testing::Values(1, 2, 4, 5));

TEST(CyclicIo, ExtensionRedistributesCleanly) {
  // Grow the grid, rebuild the cyclic distribution, and check that the
  // new chunk set still tiles and transfers.
  pfs::Pfs fs(cfg());
  simpi::run(3, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "cyc2", Shape{8, 8},
                                    Shape{2, 2}, dbl_opts())
                      .value();
    ASSERT_TRUE(f.extend_all(0, 6).is_ok());
    const Distribution dist = Distribution::block_cyclic(
        f.metadata().mapping.bounds(), comm.size(), Shape{2, 2});
    const auto mine = dist.chunks_of(comm.rank());
    const std::uint64_t cb = f.chunk_bytes();
    std::vector<std::byte> staging(mine.size() * cb, std::byte{0});
    ASSERT_TRUE(f.write_chunks(mine, staging, /*collective=*/true).is_ok());

    // All chunks of the grown grid are owned exactly once.
    const std::uint64_t total =
        comm.allreduce_value<std::uint64_t>(mine.size(),
                                            simpi::ReduceOp::kSum);
    EXPECT_EQ(total, f.metadata().mapping.total_chunks());
    ASSERT_TRUE(f.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::core
