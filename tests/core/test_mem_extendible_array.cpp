#include "core/mem_extendible_array.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drx::core {
namespace {

TEST(MemArray, GetSetDefaultZero) {
  MemExtendibleArray<double> a(Shape{4, 4}, Shape{2, 2});
  EXPECT_EQ(a.get(Index{3, 3}), 0.0);
  a.set(Index{3, 3}, 2.5);
  EXPECT_EQ(a.get(Index{3, 3}), 2.5);
  a.at(Index{0, 0}) = -1.0;
  EXPECT_EQ(a.get(Index{0, 0}), -1.0);
}

TEST(MemArray, LazyChunkAllocation) {
  MemExtendibleArray<std::int64_t> a(Shape{8, 8}, Shape{2, 2});
  EXPECT_EQ(a.allocated_chunks(), 0u);
  a.set(Index{0, 0}, 1);
  EXPECT_EQ(a.allocated_chunks(), 1u);
  a.set(Index{1, 1}, 2);  // same chunk
  EXPECT_EQ(a.allocated_chunks(), 1u);
  a.set(Index{7, 7}, 3);
  EXPECT_EQ(a.allocated_chunks(), 2u);
}

TEST(MemArray, ExtendAnyDimensionKeepsData) {
  MemExtendibleArray<double> a(Shape{3, 3}, Shape{2, 2});
  for_each_index(Box{{0, 0}, {3, 3}}, [&](const Index& idx) {
    a.set(idx, static_cast<double>(idx[0] * 10 + idx[1]));
  });
  a.extend(1, 5);
  a.extend(0, 2);
  EXPECT_EQ(a.bounds(), (Shape{5, 8}));
  for_each_index(Box{{0, 0}, {5, 8}}, [&](const Index& idx) {
    const double expect = (idx[0] < 3 && idx[1] < 3)
                              ? static_cast<double>(idx[0] * 10 + idx[1])
                              : 0.0;
    EXPECT_EQ(a.get(idx), expect);
  });
}

TEST(MemArray, ReadBoxBothOrders) {
  MemExtendibleArray<double> a(Shape{4, 3}, Shape{2, 2});
  for_each_index(Box{{0, 0}, {4, 3}}, [&](const Index& idx) {
    a.set(idx, static_cast<double>(idx[0] * 3 + idx[1]));
  });
  std::vector<double> row(12), col(12);
  a.read_box(Box{{0, 0}, {4, 3}}, MemoryOrder::kRowMajor, row);
  a.read_box(Box{{0, 0}, {4, 3}}, MemoryOrder::kColMajor, col);
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(row[i * 3 + j], static_cast<double>(i * 3 + j));
      EXPECT_EQ(col[j * 4 + i], static_cast<double>(i * 3 + j));
    }
  }
}

TEST(MemArray, MirrorsPlainArrayUnderRandomOps) {
  MemExtendibleArray<std::int64_t> a(Shape{2, 2, 2}, Shape{2, 2, 2});
  Shape bounds{2, 2, 2};
  std::vector<std::int64_t> mirror(8, 0);
  SplitMix64 rng(17);
  auto mirror_at = [&](const Index& idx) -> std::int64_t& {
    return mirror[checked_size(
        linearize(idx, bounds, MemoryOrder::kRowMajor))];
  };
  for (int op = 0; op < 500; ++op) {
    const auto choice = rng.next_below(10);
    Index idx{rng.next_below(bounds[0]), rng.next_below(bounds[1]),
              rng.next_below(bounds[2])};
    if (choice < 4) {
      const auto v = static_cast<std::int64_t>(rng.next());
      a.set(idx, v);
      mirror_at(idx) = v;
    } else if (choice < 8) {
      ASSERT_EQ(a.get(idx), mirror_at(idx));
    } else if (checked_product(bounds) < 4000) {
      const std::size_t dim = rng.next_below(3);
      const std::uint64_t delta = rng.next_in(1, 2);
      a.extend(dim, delta);
      Shape nb = bounds;
      nb[dim] += delta;
      std::vector<std::int64_t> grown(checked_size(checked_product(nb)), 0);
      for_each_index(Box{Index(3, 0), bounds}, [&](const Index& i2) {
        grown[checked_size(linearize(i2, nb, MemoryOrder::kRowMajor))] =
            mirror_at(i2);
      });
      bounds = nb;
      mirror = std::move(grown);
    }
  }
  for_each_index(Box{Index(3, 0), bounds}, [&](const Index& idx) {
    ASSERT_EQ(a.get(idx), mirror_at(idx));
  });
}

TEST(MemArray, OutOfBoundsAborts) {
  MemExtendibleArray<double> a(Shape{2, 2}, Shape{2, 2});
  EXPECT_DEATH((void)a.get(Index{2, 0}), "out of bounds");
  EXPECT_DEATH(a.set(Index{0, 2}, 1.0), "out of bounds");
}

}  // namespace
}  // namespace drx::core
