#include "core/axial_mapping.hpp"

#include <gtest/gtest.h>

namespace drx::core {
namespace {

TEST(AxialMapping, InitialAllocationIsDense) {
  AxialMapping m(Shape{4, 3});
  EXPECT_EQ(m.total_chunks(), 12u);
  EXPECT_EQ(m.bounds(), (Shape{4, 3}));
  // Initial layout: last dim least-varying -> address = i1*4 + i0?  No:
  // within the initial segment of dim 1, remaining dims keep relative
  // order, so address = (i1-0)*C_1 + i0*C_0 with C_1 = 4, C_0 = 1.
  EXPECT_EQ(m.address_of(Index{0, 0}), 0u);
  EXPECT_EQ(m.address_of(Index{1, 0}), 1u);
  EXPECT_EQ(m.address_of(Index{3, 0}), 3u);
  EXPECT_EQ(m.address_of(Index{0, 1}), 4u);
  EXPECT_EQ(m.address_of(Index{3, 2}), 11u);
}

TEST(AxialMapping, OneDimensionalAppend) {
  AxialMapping m(Shape{5});
  EXPECT_EQ(m.total_chunks(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(m.address_of(Index{i}), i);
  }
  m.extend(0, 3);
  EXPECT_EQ(m.total_chunks(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(m.address_of(Index{i}), i);
    EXPECT_EQ(m.index_of(i), (Index{i}));
  }
}

TEST(AxialMapping, ExtendReturnsFirstNewAddress) {
  AxialMapping m(Shape{2, 2});
  EXPECT_EQ(m.extend(0, 1), 4u);
  EXPECT_EQ(m.extend(0, 1), 6u);  // merged, still appends at the end
  EXPECT_EQ(m.extend(1, 2), 8u);
}

TEST(AxialMapping, AddressesAreStableAcrossExtensions) {
  AxialMapping m(Shape{3, 2});
  std::vector<std::pair<Index, std::uint64_t>> pinned;
  Box initial{Index{0, 0}, Index{3, 2}};
  for_each_index(initial, [&](const Index& idx) {
    pinned.emplace_back(idx, m.address_of(idx));
  });
  m.extend(0, 2);
  m.extend(1, 3);
  m.extend(0, 1);
  m.extend(1, 1);
  for (const auto& [idx, addr] : pinned) {
    EXPECT_EQ(m.address_of(idx), addr) << "relocation detected";
  }
}

TEST(AxialMapping, UninterruptedExtensionsMergeRecords) {
  AxialMapping m(Shape{2, 2});
  m.extend(0, 1);
  const std::uint64_t records_after_first = m.total_records();
  m.extend(0, 1);
  m.extend(0, 5);
  EXPECT_EQ(m.total_records(), records_after_first);  // merged
  m.extend(1, 1);
  EXPECT_EQ(m.total_records(), records_after_first + 1);
  // Interleaving dimension 0 again now costs a fresh record.
  m.extend(0, 1);
  EXPECT_EQ(m.total_records(), records_after_first + 2);
}

TEST(AxialMapping, InitialSegmentIsNotMergedInto) {
  // The paper keeps the initial allocation record separate from the first
  // extension of the same dimension (Fig. 3b has distinct Γ_2 records for
  // start 0 and start 1).
  AxialMapping m(Shape{4, 3, 1});
  const std::uint64_t initial_records = m.total_records();
  m.extend(2, 1);
  EXPECT_EQ(m.total_records(), initial_records + 1);
  m.extend(2, 1);  // uninterrupted: merges with the extension record
  EXPECT_EQ(m.total_records(), initial_records + 1);
}

TEST(AxialMapping, SentinelRecordsPresent) {
  AxialMapping m(Shape{4, 3, 2});
  // Dims 0 and 1 hold only the sentinel; dim 2 holds the initial segment.
  EXPECT_EQ(m.axial_vector(0).record_count(), 1u);
  EXPECT_EQ(m.axial_vector(0).records()[0].start_address,
            ExpansionRecord::kUnallocated);
  EXPECT_EQ(m.axial_vector(2).records()[0].start_address, 0);
}

TEST(AxialMapping, OutOfBoundsAborts) {
  AxialMapping m(Shape{2, 2});
  EXPECT_DEATH((void)m.address_of(Index{2, 0}), "out of bounds");
  EXPECT_DEATH((void)m.index_of(4), "out of bounds");
  EXPECT_DEATH(m.extend(2, 1), "check failed");
  EXPECT_DEATH(m.extend(0, 0), "at least one");
}

TEST(AxialMapping, SerializationRoundTrip) {
  AxialMapping m(Shape{3, 2, 2});
  m.extend(1, 2);
  m.extend(0, 1);
  m.extend(2, 3);
  m.extend(2, 1);

  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.bytes());
  auto restored = AxialMapping::deserialize(r);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), m);
  EXPECT_TRUE(r.exhausted());

  // Behavior equivalence, not just structural equality.
  for (std::uint64_t q = 0; q < m.total_chunks(); ++q) {
    EXPECT_EQ(restored.value().index_of(q), m.index_of(q));
  }
}

TEST(AxialMapping, DeserializeRejectsCorruptHistory) {
  AxialMapping m(Shape{2, 2});
  m.extend(0, 1);
  ByteWriter w;
  m.serialize(w);
  auto bytes = std::vector<std::byte>(w.bytes().begin(), w.bytes().end());
  // Flip a byte inside the totals region to break the tiling invariant.
  bytes[20] ^= std::byte{0xFF};
  ByteReader r(bytes);
  EXPECT_FALSE(AxialMapping::deserialize(r).is_ok());
}

TEST(AxialMapping, DeserializeRejectsTruncation) {
  AxialMapping m(Shape{2, 2});
  ByteWriter w;
  m.serialize(w);
  auto bytes = std::vector<std::byte>(w.bytes().begin(), w.bytes().end());
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes);
  EXPECT_FALSE(AxialMapping::deserialize(r).is_ok());
}

}  // namespace
}  // namespace drx::core
