#include <gtest/gtest.h>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 2;
  return c;
}

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

double cell(const Index& idx) {
  double v = 0.5;
  for (std::uint64_t x : idx) v = v * 19 + static_cast<double>(x);
  return v;
}

class GetBoxP : public ::testing::TestWithParam<MemoryOrder> {};

TEST_P(GetBoxP, BulkGetMatchesElementGets) {
  const MemoryOrder order = GetParam();
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "gb", Shape{12, 10},
                                    Shape{3, 2}, dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> local(static_cast<std::size_t>(zone.volume()));
    const Shape zshape = zone.shape();
    for_each_index(zone, [&](const Index& idx) {
      Index rel = {idx[0] - zone.lo[0], idx[1] - zone.lo[1]};
      local[static_cast<std::size_t>(linearize(rel, zshape, order))] =
          cell(idx);
    });
    GlobalAccessor ga(comm, f.metadata(), dist, order,
                      std::as_writable_bytes(std::span<double>(local)));
    ga.fence();

    SplitMix64 rng(static_cast<std::uint64_t>(comm.rank()) + 70);
    for (int round = 0; round < 12; ++round) {
      // Random boxes, including ones spanning several owners.
      Box box{Index(2, 0), Index(2, 0)};
      for (std::size_t d = 0; d < 2; ++d) {
        const std::uint64_t bound = f.bounds()[d];
        box.lo[d] = rng.next_below(bound);
        box.hi[d] = box.lo[d] + 1 + rng.next_below(bound - box.lo[d]);
      }
      std::vector<double> bulk(static_cast<std::size_t>(box.volume()));
      ga.get_box<double>(box, bulk);
      const Shape shape = box.shape();
      for_each_index(box, [&](const Index& idx) {
        Index rel = {idx[0] - box.lo[0], idx[1] - box.lo[1]};
        ASSERT_EQ(bulk[static_cast<std::size_t>(linearize(rel, shape, order))],
                  cell(idx))
            << "box round " << round;
        ASSERT_EQ(ga.get<double>(idx), cell(idx));
      });
    }
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Orders, GetBoxP,
                         ::testing::Values(MemoryOrder::kRowMajor,
                                           MemoryOrder::kColMajor));

TEST(GetBox, WholeArrayThroughRma) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "gb2", Shape{8, 8},
                                    Shape{2, 2}, dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> local(static_cast<std::size_t>(zone.volume()));
    const Shape zshape = zone.shape();
    for_each_index(zone, [&](const Index& idx) {
      Index rel = {idx[0] - zone.lo[0], idx[1] - zone.lo[1]};
      local[static_cast<std::size_t>(
          linearize(rel, zshape, MemoryOrder::kRowMajor))] = cell(idx);
    });
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(local)));
    ga.fence();
    const Box full{{0, 0}, {8, 8}};
    std::vector<double> everything(64);
    ga.get_box<double>(full, everything);
    for_each_index(full, [&](const Index& idx) {
      ASSERT_EQ(everything[static_cast<std::size_t>(idx[0] * 8 + idx[1])],
                cell(idx));
    });
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::core
