#include "core/coords.hpp"

#include <gtest/gtest.h>

namespace drx::core {
namespace {

TEST(Coords, StridesRowMajor) {
  const Shape shape = {2, 3, 4};
  EXPECT_EQ(strides_of(shape, MemoryOrder::kRowMajor), (Shape{12, 4, 1}));
}

TEST(Coords, StridesColMajor) {
  const Shape shape = {2, 3, 4};
  EXPECT_EQ(strides_of(shape, MemoryOrder::kColMajor), (Shape{1, 2, 6}));
}

TEST(Coords, LinearizeRowMajor) {
  const Shape shape = {2, 3, 4};
  const Index idx = {1, 2, 3};
  EXPECT_EQ(linearize(idx, shape, MemoryOrder::kRowMajor), 23u);
  EXPECT_EQ(linearize(Index{0, 0, 0}, shape, MemoryOrder::kRowMajor), 0u);
}

TEST(Coords, LinearizeColMajor) {
  const Shape shape = {2, 3, 4};
  EXPECT_EQ(linearize(Index{1, 0, 0}, shape, MemoryOrder::kColMajor), 1u);
  EXPECT_EQ(linearize(Index{0, 1, 0}, shape, MemoryOrder::kColMajor), 2u);
  EXPECT_EQ(linearize(Index{0, 0, 1}, shape, MemoryOrder::kColMajor), 6u);
  EXPECT_EQ(linearize(Index{1, 2, 3}, shape, MemoryOrder::kColMajor), 23u);
}

TEST(Coords, RoundTripBothOrders) {
  const Shape shape = {3, 5, 2, 4};
  const std::uint64_t total = checked_product(shape);
  for (auto order : {MemoryOrder::kRowMajor, MemoryOrder::kColMajor}) {
    std::vector<bool> seen(total, false);
    Box full{Index(4, 0), shape};
    for_each_index(full, [&](const Index& idx) {
      const std::uint64_t a = linearize(idx, shape, order);
      ASSERT_LT(a, total);
      EXPECT_FALSE(seen[a]);
      seen[a] = true;
      EXPECT_EQ(delinearize(a, shape, order), idx);
    });
  }
}

TEST(Coords, LinearizeOutOfBoundsAborts) {
  const Shape shape = {2, 2};
  EXPECT_DEATH((void)linearize(Index{2, 0}, shape, MemoryOrder::kRowMajor),
               "check failed");
}

TEST(Box, ShapeVolumeEmpty) {
  Box b{{1, 2}, {4, 5}};
  EXPECT_EQ(b.shape(), (Shape{3, 3}));
  EXPECT_EQ(b.volume(), 9u);
  EXPECT_FALSE(b.empty());

  Box e{{1, 2}, {1, 5}};
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.volume(), 0u);
}

TEST(Box, Contains) {
  Box b{{1, 1}, {3, 3}};
  EXPECT_TRUE(b.contains(Index{1, 1}));
  EXPECT_TRUE(b.contains(Index{2, 2}));
  EXPECT_FALSE(b.contains(Index{3, 2}));
  EXPECT_FALSE(b.contains(Index{0, 1}));
}

TEST(Box, Intersect) {
  Box a{{0, 0}, {4, 4}};
  Box b{{2, 3}, {6, 5}};
  EXPECT_EQ(a.intersect(b), (Box{{2, 3}, {4, 4}}));
  Box c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(Box, ForEachIndexVisitsRowMajor) {
  Box b{{0, 1}, {2, 3}};
  std::vector<Index> visited;
  for_each_index(b, [&](const Index& i) { visited.push_back(i); });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], (Index{0, 1}));
  EXPECT_EQ(visited[1], (Index{0, 2}));
  EXPECT_EQ(visited[2], (Index{1, 1}));
  EXPECT_EQ(visited[3], (Index{1, 2}));
}

TEST(Box, ForEachIndexEmptyBoxNoVisit) {
  Box b{{2, 0}, {2, 5}};
  int count = 0;
  for_each_index(b, [&](const Index&) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace drx::core
