// End-to-end integration at higher rank: a 3-D and a 4-D principal array
// driven through the full stack (DRX-MP over mpio over simpi over pfs),
// with interleaved parallel writes, extensions along every dimension,
// serial cross-opens, and GlobalAccessor verification.
#include <gtest/gtest.h>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

pfs::PfsConfig cfg() {
  pfs::PfsConfig c;
  c.num_servers = 4;
  c.stripe_size = 2048;
  return c;
}

DrxFile::Options dbl_opts() {
  DrxFile::Options o;
  o.dtype = ElementType::kDouble;
  return o;
}

double cell(const Index& idx) {
  double v = 1;
  for (std::uint64_t x : idx) v = v * 37 + static_cast<double>(x);
  return v;
}

TEST(Integration3D, GrowAlongEveryDimensionAcrossSessions) {
  pfs::Pfs fs(cfg());
  // Session 1: create and fill a 3-D array in parallel.
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "vol", Shape{8, 8, 8},
                                    Shape{4, 4, 4}, dbl_opts())
                      .value();
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    const Shape shape = box.shape();
    for_each_index(box, [&](const Index& idx) {
      Index rel(3);
      for (std::size_t d = 0; d < 3; ++d) rel[d] = idx[d] - box.lo[d];
      zone[static_cast<std::size_t>(
          linearize(rel, shape, MemoryOrder::kRowMajor))] = cell(idx);
    });
    ASSERT_TRUE(f.write_my_zone(dist, MemoryOrder::kRowMajor,
                                std::as_bytes(std::span<const double>(zone)))
                    .is_ok());
    ASSERT_TRUE(f.close().is_ok());
  });

  // Session 2: different process count; extend every dimension and write
  // a slab into each new region.
  simpi::run(3, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::open(comm, fs, "vol").value();
    ASSERT_TRUE(f.extend_all(0, 4).is_ok());
    ASSERT_TRUE(f.extend_all(1, 2).is_ok());
    ASSERT_TRUE(f.extend_all(2, 6).is_ok());
    EXPECT_EQ(f.bounds(), (Shape{12, 10, 14}));
    if (comm.rank() == 0) {
      // Fill one cell deep in each new region through independent writes.
      for (const Index& idx : {Index{11, 0, 0}, Index{0, 9, 0},
                              Index{0, 0, 13}, Index{11, 9, 13}}) {
        const double v = cell(idx);
        Box one{idx, {idx[0] + 1, idx[1] + 1, idx[2] + 1}};
        ASSERT_TRUE(
            f.write_box_independent(
                 one, MemoryOrder::kRowMajor,
                 std::as_bytes(std::span<const double>(&v, 1)))
                .is_ok());
      }
    }
    ASSERT_TRUE(f.close().is_ok());
  });

  // Session 3: serial verification through the DRX file-format adapters.
  auto serial = DrxFile::open(
      std::make_unique<pfs::PfsStorage>(fs.open("vol.xmd").value()),
      std::make_unique<pfs::PfsStorage>(fs.open("vol.xta").value()));
  ASSERT_TRUE(serial.is_ok()) << serial.status();
  EXPECT_EQ(serial.value().bounds(), (Shape{12, 10, 14}));
  // Original cube intact.
  for_each_index(Box{{0, 0, 0}, {8, 8, 8}}, [&](const Index& idx) {
    ASSERT_EQ(serial.value().get<double>(idx).value(), cell(idx));
  });
  // New-region probes.
  for (const Index& idx : {Index{11, 0, 0}, Index{0, 9, 0}, Index{0, 0, 13},
                          Index{11, 9, 13}}) {
    EXPECT_EQ(serial.value().get<double>(idx).value(), cell(idx));
  }
  // Untouched new cells are zero.
  EXPECT_EQ(serial.value().get<double>(Index{10, 9, 13}).value(), 0.0);
}

TEST(Integration4D, FourDimensionalRoundTripWithTranspose) {
  pfs::Pfs fs(cfg());
  simpi::run(2, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "t4", Shape{4, 3, 5, 2},
                                    Shape{2, 3, 2, 2}, dbl_opts())
                      .value();
    // Rank 0 writes the full array (C order); both read back in FORTRAN
    // order and verify the permuted layout element-wise.
    const Box full{Index(4, 0), Shape{4, 3, 5, 2}};
    const std::size_t n = static_cast<std::size_t>(full.volume());
    if (comm.rank() == 0) {
      std::vector<double> data(n);
      std::size_t i = 0;
      for_each_index(full, [&](const Index& idx) { data[i++] = cell(idx); });
      ASSERT_TRUE(
          f.write_box_all(full, MemoryOrder::kRowMajor,
                          std::as_bytes(std::span<const double>(data)))
              .is_ok());
    } else {
      const Box none{Index(4, 0), Index(4, 0)};
      ASSERT_TRUE(f.write_box_all(none, MemoryOrder::kRowMajor, {}).is_ok());
    }
    comm.barrier();

    std::vector<double> fortran(n);
    ASSERT_TRUE(
        f.read_box_all(full, MemoryOrder::kColMajor,
                       std::as_writable_bytes(std::span<double>(fortran)))
            .is_ok());
    const Shape shape = full.shape();
    for_each_index(full, [&](const Index& idx) {
      const std::uint64_t pos = linearize(idx, shape, MemoryOrder::kColMajor);
      ASSERT_EQ(fortran[static_cast<std::size_t>(pos)], cell(idx));
    });
    ASSERT_TRUE(f.close().is_ok());
  });
}

TEST(Integration3D, GlobalAccessorAfterExtension) {
  pfs::Pfs fs(cfg());
  simpi::run(4, [&](simpi::Comm& comm) {
    DrxMpFile f = DrxMpFile::create(comm, fs, "ga3", Shape{6, 6, 6},
                                    Shape{3, 3, 3}, dbl_opts())
                      .value();
    ASSERT_TRUE(f.extend_all(2, 3).is_ok());
    const Distribution dist = f.block_distribution();
    const Box box = f.zone_element_box(dist, comm.rank());
    std::vector<double> zone(static_cast<std::size_t>(box.volume()));
    const Shape shape = box.shape();
    for_each_index(box, [&](const Index& idx) {
      Index rel(3);
      for (std::size_t d = 0; d < 3; ++d) rel[d] = idx[d] - box.lo[d];
      zone[static_cast<std::size_t>(
          linearize(rel, shape, MemoryOrder::kRowMajor))] = cell(idx);
    });
    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(zone)));
    ga.fence();
    SplitMix64 rng(static_cast<std::uint64_t>(comm.rank()) + 40);
    for (int i = 0; i < 200; ++i) {
      Index idx{rng.next_below(6), rng.next_below(6), rng.next_below(9)};
      ASSERT_EQ(ga.get<double>(idx), cell(idx));
    }
    ga.fence();
    ASSERT_TRUE(f.close().is_ok());
  });
}

}  // namespace
}  // namespace drx::core
