#include "core/chunk_cache.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drx::core {
namespace {

DrxFile make_file(Shape bounds, Shape chunk) {
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto f = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                           std::make_unique<pfs::MemStorage>(),
                           std::move(bounds), std::move(chunk), options);
  EXPECT_TRUE(f.is_ok());
  return std::move(f).value();
}

TEST(ChunkCache, PinFaultsOnceThenHits) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 4);
  auto first = cache.pin(0);
  ASSERT_TRUE(first.is_ok());
  cache.unpin(0, false);
  auto second = cache.pin(0);
  ASSERT_TRUE(second.is_ok());
  cache.unpin(0, false);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ChunkCache, EvictionRespectsCapacityAndLru) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});  // 16 chunks
  ChunkCache cache(file, 2);
  for (std::uint64_t q : {0u, 1u, 2u, 3u}) {
    auto p = cache.pin(q);
    ASSERT_TRUE(p.is_ok());
    cache.unpin(q, false);
  }
  EXPECT_LE(cache.resident(), 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  // 3 most recently used; re-pinning it must hit.
  auto p = cache.pin(3);
  ASSERT_TRUE(p.is_ok());
  cache.unpin(3, false);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ChunkCache, PinnedFramesCannotBeEvicted) {
  DrxFile file = make_file(Shape{8, 8}, Shape{2, 2});
  ChunkCache cache(file, 2);
  auto a = cache.pin(0);
  ASSERT_TRUE(a.is_ok());
  auto b = cache.pin(1);
  ASSERT_TRUE(b.is_ok());
  // Both frames pinned: a third pin cannot evict.
  auto c = cache.pin(2);
  ASSERT_FALSE(c.is_ok());
  EXPECT_EQ(c.status().code(), ErrorCode::kFailedPrecondition);
  cache.unpin(0, false);
  auto c2 = cache.pin(2);
  ASSERT_TRUE(c2.is_ok());
  cache.unpin(2, false);
  cache.unpin(1, false);
}

TEST(ChunkCache, WriteBackOnEvictionAndFlush) {
  DrxFile file = make_file(Shape{4, 4}, Shape{2, 2});
  {
    ChunkCache cache(file, 1);
    auto p = cache.pin(0);
    ASSERT_TRUE(p.is_ok());
    double v = 9.75;
    std::memcpy(p.value().data(), &v, sizeof(v));
    cache.unpin(0, /*dirty=*/true);
    // Evict by pinning another chunk: must write back.
    auto q = cache.pin(1);
    ASSERT_TRUE(q.is_ok());
    cache.unpin(1, false);
    EXPECT_EQ(cache.stats().writebacks, 1u);
  }
  EXPECT_EQ(file.get<double>(Index{0, 0}).value(), 9.75);
}

TEST(ChunkCache, DirtyDataInvisibleUntilWriteback) {
  DrxFile file = make_file(Shape{4, 4}, Shape{2, 2});
  ChunkCache cache(file, 2);
  auto p = cache.pin(0);
  ASSERT_TRUE(p.is_ok());
  double v = 5.0;
  std::memcpy(p.value().data(), &v, sizeof(v));
  cache.unpin(0, true);
  // Not yet flushed: the file still holds the old zero.
  EXPECT_EQ(file.get<double>(Index{0, 0}).value(), 0.0);
  ASSERT_TRUE(cache.flush().is_ok());
  EXPECT_EQ(file.get<double>(Index{0, 0}).value(), 5.0);
}

TEST(CachedDrxFile, ElementAccessReducesIo) {
  DrxFile file = make_file(Shape{8, 8}, Shape{4, 4});
  auto& stats = static_cast<pfs::MemStorage&>(file.data_storage()).stats();
  CachedDrxFile cached(file, 4);

  const std::uint64_t reads_before = stats.read_requests;
  // 16 touches within one chunk: one fault.
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      ASSERT_TRUE(cached.set<double>(Index{i, j},
                                     static_cast<double>(i + j))
                      .is_ok());
    }
  }
  EXPECT_EQ(stats.read_requests - reads_before, 1u);
  ASSERT_TRUE(cached.flush().is_ok());

  // Values round-trip through the pool and the file agrees after flush.
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(cached.get<double>(Index{i, j}).value(),
                static_cast<double>(i + j));
      EXPECT_EQ(file.get<double>(Index{i, j}).value(),
                static_cast<double>(i + j));
    }
  }
}

TEST(CachedDrxFile, MirrorsUncachedUnderRandomOps) {
  DrxFile file = make_file(Shape{10, 10}, Shape{3, 3});
  DrxFile mirror = make_file(Shape{10, 10}, Shape{3, 3});
  CachedDrxFile cached(file, 3);  // small pool: constant eviction traffic
  SplitMix64 rng(23);
  for (int op = 0; op < 600; ++op) {
    Index idx{rng.next_below(10), rng.next_below(10)};
    if (rng.next() % 2 == 0) {
      const double v = rng.next_double();
      ASSERT_TRUE(cached.set<double>(idx, v).is_ok());
      ASSERT_TRUE(mirror.set<double>(idx, v).is_ok());
    } else {
      ASSERT_EQ(cached.get<double>(idx).value(),
                mirror.get<double>(idx).value());
    }
  }
  ASSERT_TRUE(cached.flush().is_ok());
  for_each_index(Box{{0, 0}, {10, 10}}, [&](const Index& idx) {
    ASSERT_EQ(file.get<double>(idx).value(),
              mirror.get<double>(idx).value());
  });
}

TEST(CachedDrxFile, BoundsErrors) {
  DrxFile file = make_file(Shape{4, 4}, Shape{2, 2});
  CachedDrxFile cached(file, 2);
  EXPECT_EQ(cached.get<double>(Index{4, 0}).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(cached.set<double>(Index{0, 9}, 1.0).code(),
            ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace drx::core
