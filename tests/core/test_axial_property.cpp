// Property tests of the axial mapping over randomized expansion histories:
// for ANY sequence of extensions,
//   (1) F* is a bijection from the chunk grid onto [0, total),
//   (2) F*^-1 inverts F*,
//   (3) already-assigned addresses never change (no reorganization),
//   (4) the axial-vector count equals the number of interrupted runs,
//   (5) serialization round-trips.
#include <gtest/gtest.h>

#include "core/axial_mapping.hpp"
#include "util/rng.hpp"

namespace drx::core {
namespace {

struct Scenario {
  std::uint64_t seed;
  std::size_t rank;
  int steps;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed" << s.seed << "_rank" << s.rank << "_steps" << s.steps;
}

class AxialPropertyP : public ::testing::TestWithParam<Scenario> {};

TEST_P(AxialPropertyP, RandomHistoryInvariants) {
  const Scenario sc = GetParam();
  SplitMix64 rng(sc.seed);

  Shape initial(sc.rank);
  for (auto& b : initial) b = rng.next_in(1, 3);
  AxialMapping m(initial);

  // Pin (index -> address) as we go; verify stability after every step.
  std::vector<std::pair<Index, std::uint64_t>> pinned;
  const auto pin_some = [&] {
    Box full{Index(sc.rank, 0), m.bounds()};
    // Pin corners plus a few random cells.
    pinned.emplace_back(full.lo, m.address_of(full.lo));
    Index corner(sc.rank);
    for (std::size_t d = 0; d < sc.rank; ++d) {
      corner[d] = m.bounds()[d] - 1;
    }
    pinned.emplace_back(corner, m.address_of(corner));
    for (int i = 0; i < 3; ++i) {
      Index idx(sc.rank);
      for (std::size_t d = 0; d < sc.rank; ++d) {
        idx[d] = rng.next_below(m.bounds()[d]);
      }
      pinned.emplace_back(idx, m.address_of(idx));
    }
  };
  pin_some();

  std::uint64_t interrupted_runs = 1;  // the initial allocation
  std::size_t last_dim = sc.rank - 1;  // dim of the initial allocation
  bool after_initial_only = true;
  for (int step = 0; step < sc.steps; ++step) {
    const std::size_t dim = rng.next_below(sc.rank);
    const std::uint64_t delta = rng.next_in(1, 3);
    m.extend(dim, delta);
    if (dim != last_dim || after_initial_only) ++interrupted_runs;
    after_initial_only = false;
    last_dim = dim;
    pin_some();

    for (const auto& [idx, addr] : pinned) {
      ASSERT_EQ(m.address_of(idx), addr) << "address changed at step " << step;
    }
  }

  // (4) Record count: one sentinel per never-initial dim plus the runs.
  EXPECT_EQ(m.total_records(), (sc.rank - 1) + interrupted_runs);

  // (1) + (2): bijectivity and inverse, on the full grid (bounded size).
  const std::uint64_t total = m.total_chunks();
  ASSERT_LE(total, 2'000'000u) << "scenario too large for dense check";
  std::vector<bool> seen(total, false);
  Box full{Index(sc.rank, 0), m.bounds()};
  for_each_index(full, [&](const Index& idx) {
    const std::uint64_t q = m.address_of(idx);
    ASSERT_LT(q, total);
    ASSERT_FALSE(seen[q]);
    seen[q] = true;
    ASSERT_EQ(m.index_of(q), idx);
  });

  // (5) serialization round-trip.
  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.bytes());
  auto restored = AxialMapping::deserialize(r);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), m);
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  std::uint64_t seed = 1000;
  for (std::size_t rank : {1u, 2u, 3u, 4u}) {
    for (int steps : {0, 1, 5, 20}) {
      out.push_back(Scenario{seed++, rank, steps});
      out.push_back(Scenario{seed++, rank, steps});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, AxialPropertyP,
                         ::testing::ValuesIn(scenarios()));

TEST(AxialProperty, ManyInterleavedExtensionsStayDense) {
  // Worst-case record growth: strictly alternating dimensions.
  AxialMapping m(Shape{1, 1});
  for (int i = 0; i < 40; ++i) {
    m.extend(static_cast<std::size_t>(i % 2), 1);
  }
  EXPECT_EQ(m.bounds(), (Shape{21, 21}));
  EXPECT_EQ(m.total_chunks(), 441u);
  // E = 40 extension records + initial + 1 sentinel.
  EXPECT_EQ(m.total_records(), 42u);
  std::vector<bool> seen(441, false);
  Box full{Index{0, 0}, m.bounds()};
  for_each_index(full, [&](const Index& idx) {
    const std::uint64_t q = m.address_of(idx);
    ASSERT_FALSE(seen[q]);
    seen[q] = true;
  });
}

TEST(AxialProperty, LargeSingleDimensionGrowthStaysO1Records) {
  AxialMapping m(Shape{2, 2, 2});
  for (int i = 0; i < 1000; ++i) m.extend(0, 1);
  EXPECT_EQ(m.total_records(), 2u + 1u + 1u);  // 2 sentinels + initial + run
  EXPECT_EQ(m.bounds()[0], 1002u);
  EXPECT_EQ(m.address_of(Index{1001, 1, 1}), m.total_chunks() - 1);
}

}  // namespace
}  // namespace drx::core
