// Out-of-core transpose-on-read: a large matrix written in C (row-major)
// order is consumed by a FORTRAN-order application — with DRX the file is
// scanned ONCE sequentially and elements land in column-major memory on
// the fly, versus the strided small reads a conventional row-major file
// suffers. Prints the simulated I/O cost of both approaches.
#include <cstdio>
#include <vector>

#include "baselines/rowmajor_file.hpp"
#include "core/drx_file.hpp"

using namespace drx;  // NOLINT: example brevity
using core::Box;
using core::DrxFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

int main() {
  constexpr std::uint64_t kRows = 256;
  constexpr std::uint64_t kCols = 384;
  const Box full{{0, 0}, {kRows, kCols}};
  std::vector<double> matrix(kRows * kCols);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    matrix[i] = static_cast<double>(i % 9973);
  }

  // ---- DRX: chunked + inverse mapping => sequential scan ---------------
  DrxFile::Options options;
  options.dtype = core::ElementType::kDouble;
  auto drx_storage = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* drx_raw = drx_storage.get();
  auto drx_file = DrxFile::create(std::make_unique<pfs::MemStorage>(),
                                  std::move(drx_storage), Shape{kRows, kCols},
                                  Shape{32, 32}, options);
  if (!drx_file.is_ok()) return 1;
  if (!drx_file.value().write_box(
          full, MemoryOrder::kRowMajor,
          std::as_bytes(std::span<const double>(matrix)))) {
    return 1;
  }

  std::vector<double> col_major(matrix.size());
  const auto drx_before = drx_raw->stats();
  if (!drx_file.value().scan_read_all(
          MemoryOrder::kColMajor,
          std::as_writable_bytes(std::span<double>(col_major)))) {
    return 1;
  }
  const auto drx_after = drx_raw->stats();

  // ---- Conventional row-major file: strided column reads ---------------
  auto row_storage = std::make_unique<pfs::MemStorage>();
  pfs::MemStorage* row_raw = row_storage.get();
  auto row_file = baselines::RowMajorFile::create(std::move(row_storage),
                                                  Shape{kRows, kCols}, 8);
  if (!row_file.is_ok()) return 1;
  if (!row_file.value().write_box(
          full, MemoryOrder::kRowMajor,
          std::as_bytes(std::span<const double>(matrix)))) {
    return 1;
  }
  std::vector<double> col_major2(matrix.size());
  const auto row_before = row_raw->stats();
  // Column-by-column consumption, as a FORTRAN nested loop would access.
  for (std::uint64_t j = 0; j < kCols; ++j) {
    std::vector<double> column(kRows);
    if (!row_file.value().read_box(
            Box{{0, j}, {kRows, j + 1}}, MemoryOrder::kColMajor,
            std::as_writable_bytes(std::span<double>(column)))) {
      return 1;
    }
    for (std::uint64_t i = 0; i < kRows; ++i) {
      col_major2[j * kRows + i] = column[i];
    }
  }
  const auto row_after = row_raw->stats();

  if (col_major != col_major2) {
    std::printf("MISMATCH between DRX and row-major results!\n");
    return 1;
  }

  const auto delta = [](const pfs::IoStats& a, const pfs::IoStats& b) {
    return b - a;
  };
  const auto d = delta(drx_before, drx_after);
  const auto r = delta(row_before, row_after);
  std::printf("column-major read of a %llux%llu row-major-written matrix\n",
              static_cast<unsigned long long>(kRows),
              static_cast<unsigned long long>(kCols));
  std::printf("  DRX chunked scan : %8llu requests, %6llu seeks, %8.1f ms "
              "simulated\n",
              static_cast<unsigned long long>(d.read_requests),
              static_cast<unsigned long long>(d.seeks), d.busy_us / 1000.0);
  std::printf("  row-major strided: %8llu requests, %6llu seeks, %8.1f ms "
              "simulated\n",
              static_cast<unsigned long long>(r.read_requests),
              static_cast<unsigned long long>(r.seeks), r.busy_us / 1000.0);
  std::printf("  speedup: %.1fx\n", r.busy_us / d.busy_us);
  return 0;
}
