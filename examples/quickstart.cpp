// Quickstart: create a 2-D extendible array, write, extend along BOTH
// dimensions, and read back — the serial DRX API on a real POSIX file.
//
//   $ ./quickstart [directory]
#include <cstdio>
#include <filesystem>

#include "core/drx_file.hpp"

using drx::core::Box;
using drx::core::DrxFile;
using drx::core::ElementType;
using drx::core::Index;
using drx::core::MemoryOrder;
using drx::core::Shape;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path().string();
  const std::string name = dir + "/quickstart_array";
  std::remove((name + ".xmd").c_str());
  std::remove((name + ".xta").c_str());

  // 1. Create a 6x8 array of doubles stored in 2x4-element chunks.
  DrxFile::Options options;
  options.dtype = ElementType::kDouble;
  auto created = DrxFile::create_posix(name, Shape{6, 8}, Shape{2, 4}, options);
  if (!created.is_ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().to_string().c_str());
    return 1;
  }
  DrxFile array = std::move(created).value();
  std::printf("created %s.{xmd,xta}: bounds 6x8, chunks 2x4\n", name.c_str());

  // 2. Fill it: element (i, j) = 10*i + j.
  for (std::uint64_t i = 0; i < 6; ++i) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      if (!array.set<double>(Index{i, j},
                             static_cast<double>(10 * i + j))) {
        return 1;
      }
    }
  }

  // 3. Extend along BOTH dimensions — the operation conventional array
  //    files cannot do without reorganizing. Nothing is rewritten.
  if (!array.extend(0, 4) || !array.extend(1, 8)) return 1;
  std::printf("extended to %llux%llu without moving any stored byte\n",
              static_cast<unsigned long long>(array.bounds()[0]),
              static_cast<unsigned long long>(array.bounds()[1]));

  // 4. Old data is intact; the new region reads as zero.
  auto v = array.get<double>(Index{5, 7});
  std::printf("A[5][7] = %.0f (expect 57)\n", v.value_or(-1));
  v = array.get<double>(Index{9, 15});
  std::printf("A[9][15] = %.0f (expect 0, freshly extended)\n",
              v.value_or(-1));

  // 5. Read a sub-array in FORTRAN (column-major) order — the transpose
  //    happens on the fly while chunks stream in.
  const Box box{{0, 0}, {3, 4}};
  std::vector<double> sub(12);
  if (!array.read_box(box, MemoryOrder::kColMajor,
                      std::as_writable_bytes(std::span<double>(sub)))) {
    return 1;
  }
  std::printf("3x4 corner in column-major order:");
  for (double x : sub) std::printf(" %.0f", x);
  std::printf("\n");

  std::remove((name + ".xmd").c_str());
  std::remove((name + ".xta").c_str());
  std::printf("quickstart OK\n");
  return 0;
}
