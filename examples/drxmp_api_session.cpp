// A session against the paper's Section IV-C interface: DRXMP_Init,
// metadata accessors, collective DRXMP_Write_all / DRXMP_Read_all,
// DRXMP_Extend, DRXMP_Close and DRXMP_Terminate — the names the paper
// lists, on the simulated cluster.
#include <cstdio>
#include <vector>

#include "core/drxmp_api.hpp"
#include "simpi/runtime.hpp"

using namespace drx;             // NOLINT: example brevity
using namespace drx::core::api;  // NOLINT
using core::Box;
using core::MemoryOrder;

int main() {
  pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  pfs::Pfs fs(cfg);

  simpi::run(4, [&](simpi::Comm& comm) {
    Env env(comm, fs);  // the library state MPI_Init would anchor

    // int DRXMP_Init(&hdl, kdim, initsize, chkshape, dtype, comm);
    DrxmpHandle hdl = kInvalidHandle;
    const std::uint64_t initsize[] = {16, 16};
    const std::uint64_t chkshape[] = {4, 4};
    int rc = env.init(&hdl, 2, initsize, chkshape, DrxType::kDouble,
                      "session_array");
    if (rc != DRXMP_SUCCESS) {
      std::printf("DRXMP_Init failed: %d\n", rc);
      return;
    }

    int kdim = 0;
    std::uint64_t bounds[2] = {};
    env.get_rank(hdl, &kdim);
    env.get_bounds(hdl, bounds, 2);
    if (comm.rank() == 0) {
      std::printf("created %dx-dimensional array %llux%llu\n", kdim,
                  static_cast<unsigned long long>(bounds[0]),
                  static_cast<unsigned long long>(bounds[1]));
    }

    // Collective write: rank r owns the chunk-aligned row band [4r, 4r+4).
    const auto r = static_cast<std::uint64_t>(comm.rank());
    std::vector<double> band(4 * 16);
    for (std::size_t i = 0; i < band.size(); ++i) {
      band[i] = static_cast<double>(comm.rank() * 1000) +
                static_cast<double>(i);
    }
    MemHandle wmem{band.data(), Box{{4 * r, 0}, {4 * r + 4, 16}},
                   MemoryOrder::kRowMajor};
    DrxmpStatus st{};
    rc = env.write_all(hdl, wmem, &st);
    if (rc != DRXMP_SUCCESS) return;
    std::printf("rank %d: DRXMP_Write_all moved %llu elements\n",
                comm.rank(),
                static_cast<unsigned long long>(st.elements));

    // Extend the second dimension and read everything back in FORTRAN
    // order through DRXMP_Read_all.
    rc = env.extend(hdl, 1, 8);
    if (rc != DRXMP_SUCCESS) return;
    env.get_bounds(hdl, bounds, 2);
    std::vector<double> all(16 * 24);
    MemHandle rmem{all.data(), Box{{0, 0}, {16, 24}},
                   MemoryOrder::kColMajor};
    rc = env.read_all(hdl, rmem, &st);
    if (rc != DRXMP_SUCCESS) return;
    if (comm.rank() == 0) {
      std::printf("after DRXMP_Extend: %llux%llu; A[5][2] = %.0f, "
                  "A[5][20] = %.0f (new region)\n",
                  static_cast<unsigned long long>(bounds[0]),
                  static_cast<unsigned long long>(bounds[1]),
                  all[2 * 16 + 5], all[20 * 16 + 5]);
    }

    rc = env.close(hdl);
    if (rc != DRXMP_SUCCESS) return;
    rc = env.terminate();
    if (comm.rank() == 0) {
      std::printf("DRXMP_Terminate -> %d\n", rc);
    }
  });
  return 0;
}
