// Global-Arrays-style shared-memory programming over a DRX-MP file:
// 4 ranks load their zones, then perform one-sided get/put/accumulate on
// the *global* index space as if each owned the whole principal array
// (paper Sec. II-A). A small stencil relaxation runs entirely through the
// GlobalAccessor, and the result is written back collectively.
#include <cstdio>
#include <vector>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: example brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::GlobalAccessor;
using core::Index;
using core::MemoryOrder;
using core::Shape;

int main() {
  pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  pfs::Pfs fs(cfg);

  constexpr std::uint64_t kN = 16;

  simpi::run(4, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    auto created = DrxMpFile::create(comm, fs, "field", Shape{kN, kN},
                                     Shape{4, 4}, options);
    if (!created.is_ok()) return;
    DrxMpFile f = std::move(created).value();

    // Seed: hot boundary on row 0 written by rank 0 (one-sided later, but
    // the initial field goes in through collective zone writes).
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> local(static_cast<std::size_t>(zone.volume()), 0.0);
    const auto shape = zone.shape();
    core::for_each_index(zone, [&](const Index& idx) {
      if (idx[0] == 0) {
        Index rel = {idx[0] - zone.lo[0], idx[1] - zone.lo[1]};
        local[static_cast<std::size_t>(
            core::linearize(rel, shape, MemoryOrder::kRowMajor))] = 100.0;
      }
    });

    GlobalAccessor ga(comm, f.metadata(), dist, MemoryOrder::kRowMajor,
                      std::as_writable_bytes(std::span<double>(local)));
    ga.fence();

    // Jacobi-style relaxation: each rank updates its own rows but reads
    // neighbors through the global view — local or remote is transparent.
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<std::pair<Index, double>> updates;
      core::for_each_index(zone, [&](const Index& idx) {
        if (idx[0] == 0 || idx[0] + 1 >= kN || idx[1] == 0 ||
            idx[1] + 1 >= kN) {
          return;  // fixed boundary
        }
        const double up = ga.get<double>(Index{idx[0] - 1, idx[1]});
        const double down = ga.get<double>(Index{idx[0] + 1, idx[1]});
        const double left = ga.get<double>(Index{idx[0], idx[1] - 1});
        const double right = ga.get<double>(Index{idx[0], idx[1] + 1});
        updates.emplace_back(idx, 0.25 * (up + down + left + right));
      });
      ga.fence();
      for (const auto& [idx, v] : updates) ga.put<double>(idx, v);
      ga.fence();
    }

    // Every rank accumulates its zone total into a global counter cell.
    double my_sum = 0;
    core::for_each_index(zone, [&](const Index& idx) {
      my_sum += ga.get<double>(idx);
    });
    ga.fence();
    ga.accumulate<double>(Index{kN - 1, kN - 1}, 0.0);  // touch
    ga.fence();

    std::printf("rank %d: zone sum after relaxation = %.2f (%s)\n",
                comm.rank(), my_sum,
                ga.is_local(Index{0, 0}) ? "owns the hot corner"
                                         : "remote hot corner");

    // Persist the relaxed field collectively.
    if (!f.write_my_zone(dist, MemoryOrder::kRowMajor,
                         std::as_bytes(std::span<const double>(local)))) {
      return;
    }
    (void)f.close();

    if (comm.rank() == 0) {
      std::printf("field persisted; reopen and spot-check:\n");
    }
    comm.barrier();
    auto reopened = DrxMpFile::open(comm, fs, "field");
    if (!reopened.is_ok()) return;
    if (comm.rank() == 0) {
      std::vector<double> row(kN);
      const Box top{{0, 0}, {1, kN}};
      if (!reopened.value().read_box_all(
              top, MemoryOrder::kRowMajor,
              std::as_writable_bytes(std::span<double>(row)))) {
        return;
      }
      std::printf("  top row: %.0f ... %.0f (expect 100s)\n", row.front(),
                  row.back());
    } else {
      const Box none{Index(2, 0), Index(2, 0)};
      std::vector<double> nothing;
      (void)reopened.value().read_box_all(
          none, MemoryOrder::kRowMajor,
          std::as_writable_bytes(std::span<double>(nothing)));
    }
    (void)reopened.value().close();
  });
  return 0;
}
