// Out-of-core blocked matrix multiply C = A x B with all three matrices
// stored as DRX-MP principal arrays — the Global-Arrays/DRA workload the
// library targets (paper Sec. II-B). Four ranks each own a BLOCK zone of
// C; tiles of A and B stream in through collective box reads, so no rank
// ever holds a full matrix in memory.
//
// After the multiply, the result is verified against a serial reference
// and B is EXTENDED by extra columns (a new "feature block"); only the
// new C columns are recomputed — existing data never moves.
#include <cstdio>
#include <vector>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;  // NOLINT: example brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

constexpr std::uint64_t kM = 64;
constexpr std::uint64_t kK = 48;
constexpr std::uint64_t kN = 56;
constexpr std::uint64_t kTile = 16;

double a_val(std::uint64_t i, std::uint64_t k) {
  return 0.01 * static_cast<double>(i + 1) +
         0.001 * static_cast<double>(k);
}
double b_val(std::uint64_t k, std::uint64_t j) {
  return 0.02 * static_cast<double>(k + 1) -
         0.001 * static_cast<double>(j);
}

/// Reads element box [lo, hi) of `f` into a row-major buffer.
std::vector<double> fetch(DrxMpFile& f, const Box& box) {
  std::vector<double> buf(static_cast<std::size_t>(box.volume()));
  if (!f.read_box_independent(
          box, MemoryOrder::kRowMajor,
          std::as_writable_bytes(std::span<double>(buf)))) {
    std::abort();
  }
  return buf;
}

/// C zone += A-tile x B-tile for one k-tile.
void multiply_tile(const Box& czone, std::uint64_t k0, std::uint64_t k1,
                   DrxMpFile& a, DrxMpFile& b, std::vector<double>& c) {
  const Box abox{{czone.lo[0], k0}, {czone.hi[0], k1}};
  const Box bbox{{k0, czone.lo[1]}, {k1, czone.hi[1]}};
  const auto at = fetch(a, abox);
  const auto bt = fetch(b, bbox);
  const std::uint64_t rows = czone.hi[0] - czone.lo[0];
  const std::uint64_t cols = czone.hi[1] - czone.lo[1];
  const std::uint64_t kk = k1 - k0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    for (std::uint64_t x = 0; x < kk; ++x) {
      const double av = at[i * kk + x];
      for (std::uint64_t j = 0; j < cols; ++j) {
        c[i * cols + j] += av * bt[x * cols + j];
      }
    }
  }
}

}  // namespace

int main() {
  pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  cfg.stripe_size = 8192;
  pfs::Pfs fs(cfg);

  simpi::run(4, [&](simpi::Comm& comm) {
    DrxFile::Options opt;
    opt.dtype = core::ElementType::kDouble;
    auto a = DrxMpFile::create(comm, fs, "A", Shape{kM, kK},
                               Shape{kTile, kTile}, opt)
                 .value();
    auto b = DrxMpFile::create(comm, fs, "B", Shape{kK, kN},
                               Shape{kTile, kTile}, opt)
                 .value();
    auto c = DrxMpFile::create(comm, fs, "C", Shape{kM, kN},
                               Shape{kTile, kTile}, opt)
                 .value();

    // Populate A and B: each rank writes its BLOCK zone.
    auto fill = [&](DrxMpFile& f, double (*gen)(std::uint64_t,
                                                std::uint64_t)) {
      const Distribution dist = f.block_distribution();
      const Box zone = f.zone_element_box(dist, comm.rank());
      std::vector<double> buf(static_cast<std::size_t>(zone.volume()));
      std::size_t i = 0;
      core::for_each_index(zone, [&](const Index& idx) {
        buf[i++] = gen(idx[0], idx[1]);
      });
      if (!f.write_my_zone(dist, MemoryOrder::kRowMajor,
                           std::as_bytes(std::span<const double>(buf)))) {
        std::abort();
      }
    };
    fill(a, a_val);
    fill(b, b_val);
    comm.barrier();

    // Blocked multiply over my zone of C.
    const Distribution cdist = c.block_distribution();
    const Box czone = c.zone_element_box(cdist, comm.rank());
    std::vector<double> acc(static_cast<std::size_t>(czone.volume()), 0.0);
    for (std::uint64_t k0 = 0; k0 < kK; k0 += kTile) {
      multiply_tile(czone, k0, std::min(k0 + kTile, kK), a, b, acc);
    }
    if (!c.write_my_zone(cdist, MemoryOrder::kRowMajor,
                         std::as_bytes(std::span<const double>(acc)))) {
      std::abort();
    }
    comm.barrier();

    // Spot-verify against the closed form on rank 0.
    if (comm.rank() == 0) {
      const Box probe{{kM - 1, kN - 1}, {kM, kN}};
      double got = 0;
      (void)c.read_box_independent(
          probe, MemoryOrder::kRowMajor,
          std::as_writable_bytes(std::span<double>(&got, 1)));
      double expect = 0;
      for (std::uint64_t k = 0; k < kK; ++k) {
        expect += a_val(kM - 1, k) * b_val(k, kN - 1);
      }
      std::printf("C[%llu][%llu] = %.6f (reference %.6f) %s\n",
                  static_cast<unsigned long long>(kM - 1),
                  static_cast<unsigned long long>(kN - 1), got, expect,
                  std::abs(got - expect) < 1e-9 ? "OK" : "MISMATCH");
    }

    // Feature growth: extend B and C by kTile columns, compute only the
    // new block of C. A, old B and old C are untouched on disk.
    if (!b.extend_all(1, kTile) || !c.extend_all(1, kTile)) std::abort();
    const auto nb = static_cast<std::uint64_t>(comm.size());
    const auto r = static_cast<std::uint64_t>(comm.rank());
    // Rank 0 fills B's new columns (collective writers must not share a
    // chunk, and kK rows do not split chunk-aligned across 4 ranks).
    {
      const Box bnew = comm.rank() == 0
                           ? Box{{0, kN}, {kK, kN + kTile}}
                           : Box{Index(2, 0), Index(2, 0)};
      std::vector<double> buf(static_cast<std::size_t>(bnew.volume()));
      std::size_t i = 0;
      core::for_each_index(bnew, [&](const Index& idx) {
        buf[i++] = b_val(idx[0], idx[1]);
      });
      if (!b.write_box_all(bnew, MemoryOrder::kRowMajor,
                           std::as_bytes(std::span<const double>(buf)))) {
        std::abort();
      }
    }
    // Each rank computes a row band of C's new columns (kM/nb = 16 rows,
    // exactly one chunk row per rank — chunk-aligned).
    const std::uint64_t mband = kM / nb;
    const Box cnew{{r * mband, kN}, {(r + 1) * mband, kN + kTile}};
    std::vector<double> cacc(static_cast<std::size_t>(cnew.volume()), 0.0);
    multiply_tile(cnew, 0, kK, a, b, cacc);  // full-k tile for simplicity
    if (!c.write_box_all(cnew, MemoryOrder::kRowMajor,
                         std::as_bytes(std::span<const double>(cacc)))) {
      std::abort();
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::printf("extended B and C by %llu columns; bounds now C = "
                  "%llux%llu — no reorganization\n",
                  static_cast<unsigned long long>(kTile),
                  static_cast<unsigned long long>(c.bounds()[0]),
                  static_cast<unsigned long long>(c.bounds()[1]));
      const Box probe{{0, kN + kTile - 1}, {1, kN + kTile}};
      double got = 0;
      (void)c.read_box_independent(
          probe, MemoryOrder::kRowMajor,
          std::as_writable_bytes(std::span<double>(&got, 1)));
      double expect = 0;
      for (std::uint64_t k = 0; k < kK; ++k) {
        expect += a_val(0, k) * b_val(k, kN + kTile - 1);
      }
      std::printf("C[0][%llu] = %.6f (reference %.6f) %s\n",
                  static_cast<unsigned long long>(kN + kTile - 1), got,
                  expect, std::abs(got - expect) < 1e-9 ? "OK" : "MISMATCH");
    }
    (void)a.close();
    (void)b.close();
    (void)c.close();
  });

  const auto stats = fs.total_stats();
  std::printf("PFS: %.1f MB read, %.1f MB written, %llu requests\n",
              static_cast<double>(stats.bytes_read) / 1e6,
              static_cast<double>(stats.bytes_written) / 1e6,
              static_cast<unsigned long long>(stats.read_requests +
                                              stats.write_requests));
  return 0;
}
