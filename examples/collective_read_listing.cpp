// The paper's Section IV-B code listing, ported to the simpi/mpio API:
// 4 processes collectively read the chunks of their Figure 1 zones with
// indexed file and memory datatypes.
#include <cstdio>
#include <vector>

#include "mpio/file.hpp"
#include "simpi/runtime.hpp"

using drx::mpio::File;
using drx::simpi::Comm;
using drx::simpi::Datatype;

namespace {
constexpr std::uint64_t kChunkSize = 6;  // doubles per chunk (NDims = 2)

constexpr int kChunkDistrib[] = {6, 6, 4, 4};
constexpr int kGlobalMap[4][6] = {{0, 1, 2, 3, 4, 5},
                                  {6, 7, 8, 12, 13, 14},
                                  {9, 10, 16, 17, -1, -1},
                                  {11, 15, 18, 19, -1, -1}};
constexpr int kInMemoryMap[4][6] = {{0, 1, 2, 3, 4, 5},
                                    {0, 2, 4, 1, 3, 5},
                                    {0, 1, 2, 3, -1, -1},
                                    {0, 1, 2, 3, -1, -1}};
}  // namespace

int main() {
  // The PVFS2 volume of the listing ("/mnt/pvfs2"), simulated.
  drx::pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  cfg.stripe_size = 1024;
  drx::pfs::Pfs fs(cfg);

  // Populate the 20-chunk array file.
  {
    auto h = fs.create("chunkedArray4.dat").value();
    std::vector<double> all(kChunkSize * 20);
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<double>(i);
    }
    if (!h.write_at(0, std::as_bytes(std::span<const double>(all)))) {
      return 1;
    }
  }

  drx::simpi::run(4, [&](Comm& comm) {
    const int my_rank = comm.rank();
    if (comm.size() != 4) {
      std::printf("Size must be 4\n");
      return;  // MPI_Abort in the listing
    }

    auto fh = File::open(comm, fs, "chunkedArray4.dat",
                         drx::mpio::kModeRdOnly);
    if (!fh.is_ok()) {
      std::printf("open failure chunkedArray4.dat\n");
      return;
    }

    const auto rr = static_cast<std::size_t>(my_rank);
    const int no_of_chunks = kChunkDistrib[rr];
    std::vector<std::uint64_t> blocklens(
        static_cast<std::size_t>(no_of_chunks), 1);
    std::vector<std::uint64_t> map, inmemmap;
    for (int j = 0; j < no_of_chunks; ++j) {
      map.push_back(static_cast<std::uint64_t>(
          kGlobalMap[rr][static_cast<std::size_t>(j)]));
      inmemmap.push_back(static_cast<std::uint64_t>(
          kInMemoryMap[rr][static_cast<std::size_t>(j)]));
      std::printf("Rank %d: map[%d] = %llu, inmemmap[%d] = %llu\n", my_rank,
                  j, static_cast<unsigned long long>(map.back()), j,
                  static_cast<unsigned long long>(inmemmap.back()));
    }

    auto chunk = Datatype::contiguous(kChunkSize, Datatype::bytes(8));
    auto filetype = Datatype::indexed(blocklens, map, chunk);
    auto memtype = Datatype::indexed(blocklens, inmemmap, chunk);

    fh.value().set_view(0, chunk, filetype);

    const std::size_t ndbls =
        static_cast<std::size_t>(no_of_chunks) * kChunkSize;
    std::vector<double> mem_buf(ndbls, -1.0);
    if (!fh.value().read_all(mem_buf.data(), 1, memtype)) {
      std::printf("Rank %d: read_all failed\n", my_rank);
      return;
    }
    std::printf("Rank %d: Number read = %d\n", my_rank, no_of_chunks);

    if (my_rank == 3) {  // Check chunks of rank 3, as the listing does
      for (std::size_t j = 0; j < ndbls; ++j) {
        std::printf("Rank %d: %zu->val = %f\n", my_rank, j, mem_buf[j]);
      }
    }
    comm.barrier();
    (void)fh.value().close();
  });
  return 0;
}
