// Climate-modeling scenario from the paper's introduction: a
// (time, lat, lon) dataset that grows incrementally. New time slabs arrive
// every simulation step (the classic record dimension), and mid-study the
// model resolution is refined so the LATITUDE dimension must grow too —
// the case that forces a full reorganization in conventional formats and
// is a cheap append with DRX-MP.
//
// Four ranks run the workflow: collective writes of each new time slab,
// a latitude extension, and a final collective read-back with per-rank
// zone analysis.
#include <cstdio>
#include <vector>

#include "core/drxmp.hpp"
#include "simpi/runtime.hpp"

using namespace drx;                // NOLINT: example brevity
using core::Box;
using core::Distribution;
using core::DrxFile;
using core::DrxMpFile;
using core::Index;
using core::MemoryOrder;
using core::Shape;

namespace {

/// Synthetic temperature field: smooth in space, drifting in time.
double temperature(std::uint64_t t, std::uint64_t lat, std::uint64_t lon) {
  return 15.0 + 0.1 * static_cast<double>(t) +
         0.5 * static_cast<double>(lat % 7) -
         0.25 * static_cast<double>(lon % 5);
}

}  // namespace

int main() {
  pfs::PfsConfig cfg;
  cfg.num_servers = 4;
  cfg.stripe_size = 4096;
  pfs::Pfs fs(cfg);

  constexpr std::uint64_t kLat = 24;
  constexpr std::uint64_t kLon = 48;
  constexpr std::uint64_t kSteps = 6;

  simpi::run(4, [&](simpi::Comm& comm) {
    DrxFile::Options options;
    options.dtype = core::ElementType::kDouble;
    // Start with a single time slab; 1x6x16-element chunks (latitude bands
    // align with the 4 ranks so collective writes never share a chunk).
    auto created = DrxMpFile::create(comm, fs, "climate",
                                     Shape{1, kLat, kLon}, Shape{1, 6, 16},
                                     options);
    if (!created.is_ok()) return;
    DrxMpFile f = std::move(created).value();

    // --- Phase 1: append time slabs, each written collectively ---------
    for (std::uint64_t t = 0; t < kSteps; ++t) {
      if (t > 0 && !f.extend_all(0, 1)) return;
      // Each rank writes a latitude band of the new slab.
      const auto nb = static_cast<std::uint64_t>(comm.size());
      const auto r = static_cast<std::uint64_t>(comm.rank());
      const std::uint64_t lat_lo = r * kLat / nb;
      const std::uint64_t lat_hi = (r + 1) * kLat / nb;
      const Box band{{t, lat_lo, 0}, {t + 1, lat_hi, kLon}};
      std::vector<double> slab(
          static_cast<std::size_t>(band.volume()));
      std::size_t i = 0;
      core::for_each_index(band, [&](const Index& idx) {
        slab[i++] = temperature(idx[0], idx[1], idx[2]);
      });
      if (!f.write_box_all(band, MemoryOrder::kRowMajor,
                           std::as_bytes(std::span<const double>(slab)))) {
        return;
      }
      if (comm.rank() == 0) {
        std::printf("step %llu: slab appended (bounds now %llu x %llu x "
                    "%llu)\n",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(f.bounds()[0]),
                    static_cast<unsigned long long>(f.bounds()[1]),
                    static_cast<unsigned long long>(f.bounds()[2]));
      }
    }

    // --- Phase 2: refine the grid — extend LATITUDE by 8 rows ----------
    if (!f.extend_all(1, 8)) return;
    if (comm.rank() == 0) {
      std::printf("latitude refined: bounds now %llu x %llu x %llu — no "
                  "stored byte moved\n",
                  static_cast<unsigned long long>(f.bounds()[0]),
                  static_cast<unsigned long long>(f.bounds()[1]),
                  static_cast<unsigned long long>(f.bounds()[2]));
    }
    // Fill the new latitude rows of the last time step.
    const Box new_rows{{kSteps - 1, kLat, 0}, {kSteps, kLat + 8, kLon}};
    if (comm.rank() == 0) {
      std::vector<double> rows(static_cast<std::size_t>(new_rows.volume()));
      std::size_t i = 0;
      core::for_each_index(new_rows, [&](const Index& idx) {
        rows[i++] = temperature(idx[0], idx[1], idx[2]);
      });
      if (!f.write_box_all(new_rows, MemoryOrder::kRowMajor,
                           std::as_bytes(std::span<const double>(rows)))) {
        return;
      }
    } else {
      const Box empty{Index(3, 0), Index(3, 0)};
      if (!f.write_box_all(empty, MemoryOrder::kRowMajor, {})) return;
    }

    // --- Phase 3: collective analysis over BLOCK zones ------------------
    const Distribution dist = f.block_distribution();
    const Box zone = f.zone_element_box(dist, comm.rank());
    std::vector<double> data(static_cast<std::size_t>(zone.volume()));
    if (!f.read_my_zone(dist, MemoryOrder::kRowMajor,
                        std::as_writable_bytes(std::span<double>(data)))) {
      return;
    }
    double mean = 0;
    for (double v : data) mean += v;
    if (!data.empty()) mean /= static_cast<double>(data.size());
    std::printf("rank %d zone [%llu..%llu)x[%llu..%llu)x[%llu..%llu): mean "
                "temp %.3f over %zu cells\n",
                comm.rank(), static_cast<unsigned long long>(zone.lo[0]),
                static_cast<unsigned long long>(zone.hi[0]),
                static_cast<unsigned long long>(zone.lo[1]),
                static_cast<unsigned long long>(zone.hi[1]),
                static_cast<unsigned long long>(zone.lo[2]),
                static_cast<unsigned long long>(zone.hi[2]), mean,
                data.size());
    (void)f.close();
  });

  const auto stats = fs.total_stats();
  std::printf("\nPFS totals: %llu MB written, %llu read requests, %llu "
              "seeks\n",
              static_cast<unsigned long long>(stats.bytes_written >> 20),
              static_cast<unsigned long long>(stats.read_requests),
              static_cast<unsigned long long>(stats.seeks));
  return 0;
}
