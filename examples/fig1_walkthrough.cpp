// Walkthrough of paper Figure 1: builds the 2-D extendible array through
// the exact expansion sequence the paper describes, prints the chunk
// address table after every step, and shows the 4-process zone partition.
#include <cstdio>

#include "core/axial_mapping.hpp"
#include "core/zone.hpp"

using drx::core::AxialMapping;
using drx::core::Box;
using drx::core::Distribution;
using drx::core::Index;
using drx::core::Shape;

namespace {

void print_grid(const AxialMapping& m, const char* title) {
  std::printf("%s  (grid %llu x %llu, %llu chunks)\n", title,
              static_cast<unsigned long long>(m.bounds()[0]),
              static_cast<unsigned long long>(m.bounds()[1]),
              static_cast<unsigned long long>(m.total_chunks()));
  for (std::uint64_t i = 0; i < m.bounds()[0]; ++i) {
    std::printf("    ");
    for (std::uint64_t j = 0; j < m.bounds()[1]; ++j) {
      std::printf("%4llu",
                  static_cast<unsigned long long>(m.address_of(Index{i, j})));
    }
    std::printf("\n");
  }
}

void print_axial_vectors(const AxialMapping& m) {
  for (std::size_t d = 0; d < m.rank(); ++d) {
    std::printf("  axial vector D%zu:\n", d);
    for (const auto& r : m.axial_vector(d).records()) {
      std::printf("    start index %llu; start address %lld; C = [",
                  static_cast<unsigned long long>(r.start_index),
                  static_cast<long long>(r.start_address));
      for (std::size_t j = 0; j < r.coeffs.size(); ++j) {
        std::printf("%s%llu", j ? ", " : "",
                    static_cast<unsigned long long>(r.coeffs[j]));
      }
      std::printf("]\n");
    }
  }
}

}  // namespace

int main() {
  std::printf("Paper Figure 1: growth of a 2-D extendible array by chunk "
              "segments\n\n");
  AxialMapping m(Shape{1, 1});
  print_grid(m, "initial allocation (chunk 0)");

  m.extend(1, 1);
  print_grid(m, "after extending dimension 1 (chunk 1)");

  m.extend(0, 1);
  m.extend(0, 1);
  print_grid(m, "after two uninterrupted extensions of dimension 0 "
                "(chunks 2..5)");

  m.extend(1, 1);
  print_grid(m, "after extending dimension 1 (chunks 6..8)");

  m.extend(0, 1);
  print_grid(m, "after extending dimension 0 (chunks 9..11)");

  m.extend(1, 1);
  print_grid(m, "after extending dimension 1 (chunks 12..15)");

  m.extend(0, 1);
  print_grid(m, "final 5x4 grid of A[10][12] with 2x3-element chunks "
                "(chunks 16..19)");

  std::printf("\nF*(4, 2) = %llu   (the paper's Section II example: 18)\n\n",
              static_cast<unsigned long long>(m.address_of(Index{4, 2})));

  print_axial_vectors(m);

  std::printf("\nBLOCK partition over 4 processes (zones along chunk "
              "boundaries):\n");
  const Distribution dist = Distribution::block(m.bounds(), 4);
  for (int p = 0; p < 4; ++p) {
    std::printf("  P%d owns chunks:", p);
    for (const Index& c : dist.chunks_of(p)) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(m.address_of(c)));
    }
    std::printf("\n");
  }
  return 0;
}
