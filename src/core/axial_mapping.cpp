#include "core/axial_mapping.hpp"

#include <algorithm>

#include "util/checked.hpp"

namespace drx::core {

const ExpansionRecord& AxialVector::find(std::uint64_t index) const {
  DRX_CHECK_MSG(!records_.empty(), "axial vector has no records");
  // Records are appended with strictly increasing start_index, so the
  // modified binary search is upper_bound minus one.
  auto it = std::upper_bound(
      records_.begin(), records_.end(), index,
      [](std::uint64_t v, const ExpansionRecord& r) { return v < r.start_index; });
  DRX_CHECK_MSG(it != records_.begin(), "no record covers index 0");
  return *(it - 1);
}

void AxialVector::append(ExpansionRecord record) {
  if (!records_.empty()) {
    DRX_CHECK_MSG(record.start_index > records_.back().start_index,
                  "expansion records must have increasing start indices");
  }
  records_.push_back(std::move(record));
}

ExpansionRecord& AxialVector::back() {
  DRX_CHECK(!records_.empty());
  return records_.back();
}

AxialMapping::AxialMapping(Shape initial_bounds)
    : bounds_(std::move(initial_bounds)) {
  const std::size_t k = bounds_.size();
  DRX_CHECK_MSG(k >= 1, "rank must be at least 1");
  for (std::uint64_t b : bounds_) {
    DRX_CHECK_MSG(b >= 1, "initial chunk bounds must be at least 1");
  }
  axial_.resize(k);
  total_ = checked_product(bounds_);

  // Sentinel records for dimensions 0 .. k-2 (paper Fig. 3b: "0; -1; 0").
  for (std::size_t d = 0; d + 1 < k; ++d) {
    ExpansionRecord sentinel;
    sentinel.start_index = 0;
    sentinel.start_address = ExpansionRecord::kUnallocated;
    sentinel.coeffs.assign(k, 0);
    axial_[d].append(std::move(sentinel));
  }

  // The initial allocation is the first segment of dimension k-1 (paper
  // Fig. 3b records A[4][3][1]'s initial block in Γ_2): within it,
  // dimension k-1 is least-varying and the rest are row-major.
  ExpansionRecord initial;
  initial.start_index = 0;
  initial.start_address = 0;
  initial.coeffs = segment_coeffs(k - 1);
  initial.file_displacement = 0;
  axial_[k - 1].append(std::move(initial));

  history_.push_back(
      HistoryEntry{static_cast<std::uint32_t>(k - 1), 0, 0, total_});
}

std::vector<std::uint64_t> AxialMapping::segment_coeffs(
    std::size_t dim) const {
  const std::size_t k = rank();
  std::vector<std::uint64_t> coeffs(k, 1);
  // C_l = product of all other bounds.
  std::uint64_t cl = 1;
  for (std::size_t j = 0; j < k; ++j) {
    if (j != dim) cl = checked_mul(cl, bounds_[j]);
  }
  coeffs[dim] = cl;
  // C_j (j != dim) = product of bounds of later non-extended dimensions.
  std::uint64_t acc = 1;
  for (std::size_t j = k; j-- > 0;) {
    if (j == dim) continue;
    coeffs[j] = acc;
    acc = checked_mul(acc, bounds_[j]);
  }
  return coeffs;
}

const AxialVector& AxialMapping::axial_vector(std::size_t dim) const {
  DRX_CHECK(dim < rank());
  return axial_[dim];
}

std::uint64_t AxialMapping::total_records() const noexcept {
  std::uint64_t n = 0;
  for (const AxialVector& v : axial_) n += v.record_count();
  return n;
}

std::uint64_t AxialMapping::extend(std::size_t dim, std::uint64_t delta) {
  DRX_CHECK(dim < rank());
  DRX_CHECK_MSG(delta >= 1, "extension must add at least one chunk index");

  const std::uint64_t first_new_address = total_;
  const HistoryEntry& last = history_.back();

  // Uninterrupted extension: the most recent segment extends the same
  // dimension (and is not the initial allocation, which the paper keeps as
  // its own record) — grow it in place; coefficients are unchanged because
  // no other bound moved since that segment was created.
  const bool initial_segment = history_.size() == 1;
  if (!initial_segment && last.dim == dim) {
    const std::uint64_t per_index =
        axial_[dim].records()[last.record].coeffs[dim];
    const std::uint64_t added = checked_mul(delta, per_index);
    history_.back().chunk_count = checked_add(last.chunk_count, added);
    bounds_[dim] += delta;
    total_ = checked_add(total_, added);
    return first_new_address;
  }

  ExpansionRecord record;
  record.start_index = bounds_[dim];
  record.start_address = static_cast<std::int64_t>(total_);
  record.coeffs = segment_coeffs(dim);
  record.file_displacement = total_;
  const std::uint64_t per_index = record.coeffs[dim];
  axial_[dim].append(std::move(record));

  history_.push_back(HistoryEntry{
      static_cast<std::uint32_t>(dim),
      static_cast<std::uint32_t>(axial_[dim].record_count() - 1), total_,
      checked_mul(delta, per_index)});
  bounds_[dim] += delta;
  total_ = checked_add(total_, checked_mul(delta, per_index));
  return first_new_address;
}

std::uint64_t AxialMapping::address_of(
    std::span<const std::uint64_t> index) const {
  const std::size_t k = rank();
  DRX_CHECK(index.size() == k);
  for (std::size_t j = 0; j < k; ++j) {
    DRX_CHECK_MSG(index[j] < bounds_[j], "chunk index out of bounds");
  }

  // Find, per dimension, the covering record; the chunk lives in the
  // candidate segment with the maximum start address (paper Eq. 2).
  std::size_t z = 0;
  const ExpansionRecord* best = &axial_[0].find(index[0]);
  for (std::size_t j = 1; j < k; ++j) {
    const ExpansionRecord& r = axial_[j].find(index[j]);
    if (r.start_address > best->start_address) {
      best = &r;
      z = j;
    }
  }
  DRX_CHECK_MSG(best->start_address >= 0, "index maps to no segment");

  // Paper Eq. 1.
  std::uint64_t q = static_cast<std::uint64_t>(best->start_address);
  q = checked_add(q, checked_mul(index[z] - best->start_index,
                                 best->coeffs[z]));
  for (std::size_t j = 0; j < k; ++j) {
    if (j == z) continue;
    q = checked_add(q, checked_mul(index[j], best->coeffs[j]));
  }
  return q;
}

Index AxialMapping::index_of(std::uint64_t address) const {
  DRX_CHECK_MSG(address < total_, "chunk address out of bounds");
  // Segment containing the address: last history entry starting at or
  // before it (paper Sec. III-C: the maximum lower bound of q*).
  auto it = std::upper_bound(
      history_.begin(), history_.end(), address,
      [](std::uint64_t v, const HistoryEntry& h) {
        return v < h.start_address;
      });
  DRX_CHECK(it != history_.begin());
  const HistoryEntry& entry = *(it - 1);
  DRX_CHECK(address < entry.start_address + entry.chunk_count);

  const std::size_t k = rank();
  const std::size_t z = entry.dim;
  const ExpansionRecord& rec = axial_[z].records()[entry.record];

  Index index(k, 0);
  std::uint64_t r = address - entry.start_address;
  index[z] = rec.start_index + r / rec.coeffs[z];
  r %= rec.coeffs[z];
  for (std::size_t j = 0; j < k; ++j) {
    if (j == z) continue;
    index[j] = r / rec.coeffs[j];
    r %= rec.coeffs[j];
  }
  DRX_CHECK(r == 0);
  return index;
}

void AxialMapping::serialize(ByteWriter& out) const {
  out.put_u32(static_cast<std::uint32_t>(rank()));
  for (std::uint64_t b : bounds_) out.put_u64(b);
  out.put_u64(total_);
  for (const AxialVector& v : axial_) {
    out.put_u32(static_cast<std::uint32_t>(v.record_count()));
    for (const ExpansionRecord& r : v.records()) {
      out.put_u64(r.start_index);
      out.put_i64(r.start_address);
      for (std::uint64_t c : r.coeffs) out.put_u64(c);
      out.put_u64(r.file_displacement);
    }
  }
  out.put_u32(static_cast<std::uint32_t>(history_.size()));
  for (const HistoryEntry& h : history_) {
    out.put_u32(h.dim);
    out.put_u32(h.record);
    out.put_u64(h.start_address);
    out.put_u64(h.chunk_count);
  }
}

Result<AxialMapping> AxialMapping::deserialize(ByteReader& in) {
  AxialMapping m;
  DRX_ASSIGN_OR_RETURN(std::uint32_t k, in.get_u32());
  if (k == 0 || k > 64) {
    return Status(ErrorCode::kCorrupt, "implausible rank in metadata");
  }
  m.bounds_.resize(k);
  for (auto& b : m.bounds_) {
    DRX_ASSIGN_OR_RETURN(b, in.get_u64());
  }
  DRX_ASSIGN_OR_RETURN(m.total_, in.get_u64());
  m.axial_.resize(k);
  for (std::uint32_t d = 0; d < k; ++d) {
    DRX_ASSIGN_OR_RETURN(std::uint32_t n, in.get_u32());
    for (std::uint32_t i = 0; i < n; ++i) {
      ExpansionRecord r;
      DRX_ASSIGN_OR_RETURN(r.start_index, in.get_u64());
      DRX_ASSIGN_OR_RETURN(r.start_address, in.get_i64());
      r.coeffs.resize(k);
      for (auto& c : r.coeffs) {
        DRX_ASSIGN_OR_RETURN(c, in.get_u64());
      }
      DRX_ASSIGN_OR_RETURN(r.file_displacement, in.get_u64());
      m.axial_[d].append(std::move(r));
    }
  }
  DRX_ASSIGN_OR_RETURN(std::uint32_t hn, in.get_u32());
  for (std::uint32_t i = 0; i < hn; ++i) {
    HistoryEntry h;
    DRX_ASSIGN_OR_RETURN(h.dim, in.get_u32());
    DRX_ASSIGN_OR_RETURN(h.record, in.get_u32());
    DRX_ASSIGN_OR_RETURN(h.start_address, in.get_u64());
    DRX_ASSIGN_OR_RETURN(h.chunk_count, in.get_u64());
    if (h.dim >= k ||
        h.record >= m.axial_[h.dim].record_count()) {
      return Status(ErrorCode::kCorrupt, "history entry out of range");
    }
    m.history_.push_back(h);
  }
  // Cross-validate: history must tile [0, total) without gaps.
  std::uint64_t expect = 0;
  for (const HistoryEntry& h : m.history_) {
    if (h.start_address != expect) {
      return Status(ErrorCode::kCorrupt, "history does not tile the file");
    }
    expect += h.chunk_count;
  }
  if (expect != m.total_ || m.total_ != checked_product(m.bounds_)) {
    return Status(ErrorCode::kCorrupt, "chunk totals inconsistent");
  }
  return m;
}

}  // namespace drx::core
