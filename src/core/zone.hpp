// Zone partitioning of the principal array's chunk grid over the processes
// of a parallel program (paper Sec. II-A).
//
// A *zone* is a rectilinear set of whole chunks owned by one process;
// partitioning is always along chunk boundaries. The default scheme is the
// HPF-style BLOCK distribution over a balanced cartesian process grid; the
// BLOCK_CYCLIC(k) scheme named as future work in the paper (Sec. V) is
// implemented as well.
//
// Every process holds the same Distribution (derived from replicated
// metadata), so ownership of any chunk — and hence locality of any element
// — is computable everywhere without communication.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coords.hpp"

namespace drx::core {

enum class DistributionKind : std::uint8_t { kBlock, kBlockCyclic };

class Distribution {
 public:
  /// BLOCK: the chunk grid is cut into one contiguous zone per process,
  /// arranged on a balanced cartesian grid (simpi::dims_create shape).
  static Distribution block(Shape chunk_bounds, int nprocs);

  /// BLOCK_CYCLIC(k): blocks of `block_shape` chunks are dealt round-robin
  /// along each dimension of the process grid.
  static Distribution block_cyclic(Shape chunk_bounds, int nprocs,
                                   Shape block_shape);

  [[nodiscard]] DistributionKind kind() const noexcept { return kind_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] std::size_t rank_dims() const noexcept {
    return chunk_bounds_.size();
  }
  [[nodiscard]] const Shape& chunk_bounds() const noexcept {
    return chunk_bounds_;
  }
  [[nodiscard]] const std::vector<int>& grid() const noexcept {
    return grid_;
  }

  /// Owning process of a chunk.
  [[nodiscard]] int owner_of(std::span<const std::uint64_t> chunk) const;

  /// The chunk-coordinate boxes owned by `proc` (exactly one for BLOCK,
  /// possibly many for BLOCK_CYCLIC). Empty boxes are omitted.
  [[nodiscard]] std::vector<Box> zones_of(int proc) const;

  /// All chunk coordinates owned by `proc`, in row-major order per zone.
  [[nodiscard]] std::vector<Index> chunks_of(int proc) const;

 private:
  Distribution() = default;

  DistributionKind kind_ = DistributionKind::kBlock;
  int nprocs_ = 1;
  Shape chunk_bounds_;
  std::vector<int> grid_;            ///< process grid dims
  std::vector<std::vector<std::uint64_t>> cuts_;  ///< BLOCK: per-dim cut points
  Shape block_shape_;                ///< BLOCK_CYCLIC only
};

}  // namespace drx::core
