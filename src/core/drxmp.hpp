// DRX-MP: the parallel disk-resident extendible array library (the
// paper's primary contribution, Sections II and IV).
//
// A principal array named `xyz` lives in a parallel file system as the
// pair `xyz.xmd` / `xyz.xta`. Every participating process replicates the
// metadata (axial vectors) on open, so any process computes any chunk
// address locally and decides local-vs-remote ownership without
// communication. Chunk zones are read/written through MPI-IO-style
// collective I/O (two-phase) or independent I/O; remote elements are
// accessed one-sided through an RMA window over the distributed zones
// (the Global-Array shared-memory programming model).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/copy_plan.hpp"
#include "core/drx_file.hpp"
#include "core/metadata.hpp"
#include "core/scatter.hpp"
#include "core/zone.hpp"
#include "mpio/file.hpp"
#include "obs/metrics.hpp"
#include "simpi/comm.hpp"
#include "simpi/rma.hpp"

namespace drx::core {

class DrxMpFile {
 public:
  /// Collective creation of a fresh principal array (paper Sec. IV-B: the
  /// principal array "can be initialized either from a single serial
  /// process or from a parallel program").
  [[nodiscard]] static Result<DrxMpFile> create(simpi::Comm& comm, pfs::Pfs& fs,
                                  const std::string& name,
                                  Shape element_bounds, Shape chunk_shape,
                                  const DrxFile::Options& options);

  /// Collective open: rank 0 reads the .xmd, broadcasts it, and every rank
  /// opens the .xta through MPI-IO.
  [[nodiscard]] static Result<DrxMpFile> open(simpi::Comm& comm, pfs::Pfs& fs,
                                const std::string& name);

  /// Collective close; persists metadata and reduces every rank's obs
  /// metrics registry to rank 0 (see aggregate_metrics()).
  [[nodiscard]] Status close();

  /// Collective: gathers each rank's metrics registry snapshot to rank 0
  /// and merges them. Rank 0 returns the cross-rank totals and publishes
  /// them via obs::set_aggregated_snapshot(); other ranks return their own
  /// local snapshot.
  obs::MetricsSnapshot aggregate_metrics();

  [[nodiscard]] const Metadata& metadata() const noexcept { return meta_; }
  [[nodiscard]] std::size_t rank() const noexcept { return meta_.rank(); }
  [[nodiscard]] const Shape& bounds() const noexcept {
    return meta_.element_bounds;
  }
  [[nodiscard]] simpi::Comm& comm() noexcept { return *comm_; }

  /// Default BLOCK distribution of the current chunk grid over the
  /// communicator's processes.
  [[nodiscard]] Distribution block_distribution() const {
    return Distribution::block(meta_.mapping.bounds(), comm_->size());
  }

  /// Element box of `proc`'s (single, BLOCK) zone, clipped to the array
  /// bounds. Empty box if the process owns no chunks.
  [[nodiscard]] Box zone_element_box(const Distribution& dist,
                                     int proc) const;

  /// Bytes needed to hold `proc`'s zone elements in memory.
  [[nodiscard]] std::uint64_t zone_buffer_bytes(const Distribution& dist,
                                                int proc) const {
    return checked_mul(zone_element_box(dist, proc).volume(),
                       meta_.element_bytes());
  }

  // ---- chunk-list transfer primitive ------------------------------------
  // `staging` is chunk-major in the order of `chunks` (each chunk
  // occupying chunk_bytes() consecutive bytes). The file side is accessed
  // in ascending linear-address order via an MPI-IO file view; collective
  // calls run two-phase across the communicator.

  [[nodiscard]] Status read_chunks(std::span<const Index> chunks,
                     std::span<std::byte> staging, bool collective);
  [[nodiscard]] Status write_chunks(std::span<const Index> chunks,
                      std::span<const std::byte> staging, bool collective);

  // ---- zone element I/O (BLOCK distributions) ----------------------------
  // Each rank transfers its own zone; `order` picks the in-memory
  // linearization (C or FORTRAN) with transposition done on the fly.

  [[nodiscard]] Status read_my_zone(const Distribution& dist, MemoryOrder order,
                      std::span<std::byte> out, bool collective = true);
  [[nodiscard]] Status write_my_zone(const Distribution& dist, MemoryOrder order,
                       std::span<const std::byte> in, bool collective = true);

  /// Collective read of an arbitrary per-rank element box (ranks may pass
  /// different, even overlapping boxes).
  [[nodiscard]] Status read_box_all(const Box& box, MemoryOrder order,
                      std::span<std::byte> out);

  /// Independent read of an element box (no synchronization with peers).
  [[nodiscard]] Status read_box_independent(const Box& box, MemoryOrder order,
                              std::span<std::byte> out);

  /// Independent write of an element box (chunks touched must not be
  /// concurrently written by peers).
  [[nodiscard]] Status write_box_independent(const Box& box, MemoryOrder order,
                               std::span<const std::byte> in);

  /// Collective write of per-rank element boxes. Boxes of different ranks
  /// must not touch the same chunk (partitioning is along chunk
  /// boundaries, paper Sec. II-A); within that contract partial boundary
  /// chunks are read-modify-written locally.
  [[nodiscard]] Status write_box_all(const Box& box, MemoryOrder order,
                       std::span<const std::byte> in);

  // ---- element access (independent; paper Sec. II-A: "An element can be
  // accessed either directly from the file or via a remote memory access") -

  template <typename T>
  [[nodiscard]] Result<T> get(std::span<const std::uint64_t> index) {
    DRX_CHECK(ElementTypeOf<T>::value == meta_.dtype);
    T v{};
    Box one{Index(index.begin(), index.end()),
            Index(index.begin(), index.end())};
    for (auto& h : one.hi) ++h;
    DRX_RETURN_IF_ERROR(read_box_independent(
        one, MemoryOrder::kRowMajor,
        std::as_writable_bytes(std::span<T>(&v, 1))));
    return v;
  }

  template <typename T>
  [[nodiscard]] Status set(std::span<const std::uint64_t> index, const T& v) {
    DRX_CHECK(ElementTypeOf<T>::value == meta_.dtype);
    Box one{Index(index.begin(), index.end()),
            Index(index.begin(), index.end())};
    for (auto& h : one.hi) ++h;
    return write_box_independent(one, MemoryOrder::kRowMajor,
                                 std::as_bytes(std::span<const T>(&v, 1)));
  }

  // ---- extension ----------------------------------------------------------

  /// Collective extension of dimension `dim` by `delta` element indices.
  /// All ranks apply the same deterministic metadata update; rank 0
  /// persists the .xmd and grows the .xta (appended chunks read as zero).
  [[nodiscard]] Status extend_all(std::size_t dim, std::uint64_t delta);

  /// Persists metadata from rank 0 (collective).
  [[nodiscard]] Status flush_metadata();

  [[nodiscard]] std::uint64_t chunk_bytes() const {
    return meta_.chunk_bytes();
  }

 private:
  DrxMpFile(simpi::Comm& comm, pfs::Pfs& fs, std::string name, Metadata meta,
            mpio::File data)
      : comm_(&comm),
        fs_(&fs),
        name_(std::move(name)),
        meta_(std::move(meta)),
        chunk_space_(meta_.chunk_space()),
        plan_cache_(
            std::make_unique<PlanCache>(chunk_space_, meta_.element_bytes())),
        data_(std::move(data)) {}

  /// Builds the (sorted-by-address) file and memory datatypes for a chunk
  /// list and performs the transfer.
  [[nodiscard]] Status transfer_chunks(std::span<const Index> chunks, void* staging,
                         bool collective, bool writing);

  /// Compressed-array read path (docs/COMPRESSION.md): the file view is
  /// built from the per-chunk slot table (byte-granular, sorted by slot
  /// offset), the stored bytes land in a local buffer and each chunk is
  /// decoded into its `staging` position after the collective completes.
  /// DRX-MP serves compressed arrays read-only.
  [[nodiscard]] Status transfer_chunks_compressed(std::span<const Index> chunks,
                                                  void* staging,
                                                  bool collective);

  /// Round-pipelined zone read (docs/ASYNC_IO.md): splits the chunk list
  /// into batches and reads batch r+1 on an I/O worker while batch r is
  /// scattered into `out`. Active only when io::io_threads() > 0.
  [[nodiscard]] Status read_my_zone_pipelined(const Distribution& dist, MemoryOrder order,
                                std::span<std::byte> out, bool collective,
                                std::span<const Index> chunks, const Box& box,
                                std::uint64_t batch);

  [[nodiscard]] Status read_box_impl(const Box& box, MemoryOrder order,
                       std::span<std::byte> out, bool collective);
  [[nodiscard]] Status write_box_impl(const Box& box, MemoryOrder order,
                        std::span<const std::byte> in, bool collective);

  simpi::Comm* comm_;
  pfs::Pfs* fs_;
  std::string name_;
  Metadata meta_;
  ChunkSpace chunk_space_;
  /// Memoized run-coalesced copy plans shared by every zone/box transfer
  /// (unique_ptr: PlanCache holds a Mutex and DrxMpFile moves).
  std::unique_ptr<PlanCache> plan_cache_;
  mpio::File data_;
};

/// Global-Array-style one-sided access to a BLOCK-distributed principal
/// array held in the ranks' memories (paper Sec. II-A: "the remote memory
/// access methods and the MPI-2 windowing features can now be applied for
/// processing the array as if each process has access to the entire
/// principal array").
class GlobalAccessor {
 public:
  /// Collective. `zone` is this rank's zone buffer (elements of
  /// zone_element_box in `order`), which becomes the local window region.
  GlobalAccessor(simpi::Comm& comm, const Metadata& meta,
                 const Distribution& dist, MemoryOrder order,
                 std::span<std::byte> zone);

  /// Owning process of an element.
  [[nodiscard]] int owner_of(std::span<const std::uint64_t> element) const;

  [[nodiscard]] bool is_local(std::span<const std::uint64_t> element) const {
    return owner_of(element) == comm_->rank();
  }

  template <typename T>
  T get(std::span<const std::uint64_t> element) {
    T v{};
    const auto [target, offset] = locate(element, sizeof(T));
    window_.get(target, offset, std::as_writable_bytes(std::span<T>(&v, 1)));
    return v;
  }

  template <typename T>
  void put(std::span<const std::uint64_t> element, const T& v) {
    const auto [target, offset] = locate(element, sizeof(T));
    window_.put(target, offset, std::as_bytes(std::span<const T>(&v, 1)));
  }

  template <typename T>
  void accumulate(std::span<const std::uint64_t> element, const T& delta) {
    const auto [target, offset] = locate(element, sizeof(T));
    window_.accumulate_sum(target, offset,
                           std::span<const T>(&delta, 1));
  }

  /// Bulk one-sided read of an element box into `out` (linearized in the
  /// accessor's order) — GA_Get over the distributed zones. Contiguous
  /// runs along the fastest-varying dimension are fetched with one RMA
  /// get each when they fall inside a single owner's zone.
  template <typename T>
  void get_box(const Box& box, std::span<T> out) {
    DRX_CHECK(sizeof(T) == meta_->element_bytes());
    DRX_CHECK(out.size() == box.volume());
    if (box.empty()) return;
    const std::size_t k = meta_->rank();
    const Shape shape = box.shape();
    // Iterate rows: all dims except the fastest-varying one of `order_`.
    const std::size_t fast = order_ == MemoryOrder::kRowMajor ? k - 1 : 0;
    Box outer = box;
    outer.lo[fast] = 0;
    outer.hi[fast] = 1;
    Index idx(k);
    Index rel(k);
    // drx-lint: allow(element-granular-copy) row-granular RMA: each visit
    // issues one window get per contiguous owner run, not one per element.
    for_each_index(outer, [&](const Index& oidx) {
      idx = oidx;
      idx[fast] = box.lo[fast];
      std::uint64_t consumed = 0;
      while (consumed < shape[fast]) {
        idx[fast] = box.lo[fast] + consumed;
        const int target = owner_of(idx);
        const Box& zone = zone_boxes_[static_cast<std::size_t>(target)];
        // The run stays contiguous in the owner's buffer while it stays
        // inside the owner's zone along `fast`.
        const std::uint64_t run = std::min(
            shape[fast] - consumed, zone.hi[fast] - idx[fast]);
        const auto [t, offset] = locate(idx, sizeof(T));
        // Destination positions: contiguous along `fast` in `out` only
        // when `fast` is the fastest dim of `order_` — which it is by
        // construction — so one memcpy-shaped get suffices.
        for (std::size_t d = 0; d < k; ++d) rel[d] = idx[d] - box.lo[d];
        const std::uint64_t dst = linearize(rel, shape, order_);
        window_.get(t, offset,
                    std::as_writable_bytes(
                        out.subspan(checked_size(dst), checked_size(run))));
        consumed += run;
      }
    });
  }

  /// Epoch boundary (collective).
  void fence() { window_.fence(); }

 private:
  std::pair<int, std::uint64_t> locate(
      std::span<const std::uint64_t> element, std::uint64_t esize) const;

  simpi::Comm* comm_;
  const Metadata* meta_;
  Distribution dist_;
  MemoryOrder order_;
  ChunkSpace chunk_space_;
  std::vector<Box> zone_boxes_;  ///< per-rank clipped element boxes
  simpi::Window window_;
};

}  // namespace drx::core
