#include "core/copy_plan.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/checked.hpp"

namespace drx::core {

CopyPlan::CopyPlan(const ChunkSpace& cs, std::uint64_t esize, Shape clip_shape,
                   Shape box_shape, MemoryOrder box_order)
    : esize_(esize),
      chunk_shape_(cs.chunk_shape()),
      chunk_strides_(strides_of(cs.chunk_shape(), cs.in_chunk_order())),
      box_strides_(strides_of(box_shape, box_order)),
      clip_shape_(std::move(clip_shape)),
      box_shape_(std::move(box_shape)),
      box_order_(box_order) {
  DRX_CHECK(esize_ > 0);
  DRX_CHECK(clip_shape_.size() == cs.rank());
  DRX_CHECK(box_shape_.size() == cs.rank());

  // Collect the varying dimensions with byte strides on both sides;
  // extent-1 dimensions contribute only to the base offsets.
  std::vector<Loop> dims;
  for (std::size_t d = 0; d < clip_shape_.size(); ++d) {
    DRX_CHECK(clip_shape_[d] >= 1 && clip_shape_[d] <= chunk_shape_[d]);
    elements_ = checked_mul(elements_, clip_shape_[d]);
    if (clip_shape_[d] > 1) {
      dims.push_back({clip_shape_[d],
                      checked_mul(chunk_strides_[d], esize_),
                      checked_mul(box_strides_[d], esize_)});
    }
  }

  // Order loops so the destination side of a scatter (the box) is walked
  // sequentially: innermost = smallest box stride.
  std::sort(dims.begin(), dims.end(), [](const Loop& a, const Loop& b) {
    return a.box_step > b.box_step;
  });

  // Fuse an outer dimension into its inner neighbour when the outer step
  // equals the inner span on BOTH sides — the two loops then walk one
  // dense range in the same order, so they collapse into a single loop
  // (this is what turns per-row memcpys into multi-row blocks).
  std::vector<Loop> fused;  // innermost-first while building
  for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
    Loop cur = *it;
    if (!fused.empty()) {
      Loop& inner = fused.back();
      if (cur.chunk_step == checked_mul(inner.chunk_step, inner.extent) &&
          cur.box_step == checked_mul(inner.box_step, inner.extent)) {
        inner.extent = checked_mul(inner.extent, cur.extent);
        continue;
      }
    }
    fused.push_back(cur);
  }

  // Peel the innermost level: a single memcpy when dense on both sides,
  // otherwise a strided element loop with precomputed byte steps.
  if (fused.empty()) {
    run_bytes_ = esize_;  // degenerate single-element clip
  } else {
    const Loop inner = fused.front();
    fused.erase(fused.begin());
    if (inner.chunk_step == esize_ && inner.box_step == esize_) {
      run_bytes_ = checked_mul(inner.extent, esize_);
    } else {
      run_bytes_ = esize_;
      inner_count_ = inner.extent;
      inner_chunk_step_ = inner.chunk_step;
      inner_box_step_ = inner.box_step;
    }
  }

  std::reverse(fused.begin(), fused.end());  // outermost first
  loops_ = std::move(fused);

  runs_ = inner_count_;
  for (const Loop& l : loops_) runs_ = checked_mul(runs_, l.extent);
}

std::uint64_t CopyPlan::chunk_base_bytes(const Box& clip) const {
  std::uint64_t off = 0;
  for (std::size_t d = 0; d < clip.lo.size(); ++d) {
    off = checked_add(
        off, checked_mul(clip.lo[d] % chunk_shape_[d], chunk_strides_[d]));
  }
  return checked_mul(off, esize_);
}

std::uint64_t CopyPlan::box_base_bytes(const Box& clip, const Box& box) const {
  std::uint64_t off = 0;
  for (std::size_t d = 0; d < clip.lo.size(); ++d) {
    DRX_CHECK(clip.lo[d] >= box.lo[d]);
    off = checked_add(off,
                      checked_mul(clip.lo[d] - box.lo[d], box_strides_[d]));
  }
  return checked_mul(off, esize_);
}

void CopyPlan::execute(std::size_t level, const std::byte* src,
                       std::byte* dst, bool chunk_is_src) const {
  if (level < loops_.size()) {
    const Loop& l = loops_[level];
    const std::uint64_t sstep = chunk_is_src ? l.chunk_step : l.box_step;
    const std::uint64_t dstep = chunk_is_src ? l.box_step : l.chunk_step;
    for (std::uint64_t i = 0; i < l.extent; ++i) {
      execute(level + 1, src, dst, chunk_is_src);
      src += sstep;
      dst += dstep;
    }
    return;
  }
  if (inner_count_ == 1) {
    std::memcpy(dst, src, checked_size(run_bytes_));
    return;
  }
  const std::uint64_t sstep =
      chunk_is_src ? inner_chunk_step_ : inner_box_step_;
  const std::uint64_t dstep =
      chunk_is_src ? inner_box_step_ : inner_chunk_step_;
  for (std::uint64_t i = 0; i < inner_count_; ++i) {
    std::memcpy(dst, src, checked_size(esize_));
    src += sstep;
    dst += dstep;
  }
}

void CopyPlan::note_execution() const {
  static const obs::MetricId kRuns = obs::counter_id("core.copy.runs");
  static const obs::MetricId kElements = obs::counter_id("core.copy.elements");
  static const obs::MetricId kRunBytes =
      obs::histogram_id("core.copy.run_bytes");
  auto& reg = obs::registry();
  reg.counter(kRuns).add(runs_);
  reg.counter(kElements).add(elements_);
  reg.histogram(kRunBytes).observe(run_bytes_);
}

void CopyPlan::scatter(const Box& clip, const Box& box,
                       std::span<const std::byte> chunk,
                       std::span<std::byte> out) const {
  DRX_CHECK(clip.shape() == clip_shape_);
  DRX_CHECK(box.shape() == box_shape_);
  execute(0, chunk.data() + chunk_base_bytes(clip),
          out.data() + box_base_bytes(clip, box), /*chunk_is_src=*/true);
  note_execution();
}

void CopyPlan::gather(const Box& clip, const Box& box,
                      std::span<std::byte> chunk,
                      std::span<const std::byte> in) const {
  DRX_CHECK(clip.shape() == clip_shape_);
  DRX_CHECK(box.shape() == box_shape_);
  execute(0, in.data() + box_base_bytes(clip, box),
          chunk.data() + chunk_base_bytes(clip), /*chunk_is_src=*/false);
  note_execution();
}

namespace {

constexpr std::size_t kMaxPlanEntries = 256;

std::uint64_t shape_key_hash(const Shape& clip_shape, const Shape& box_shape,
                             MemoryOrder order) {
  // FNV-1a over the two shape vectors plus the order tag.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (std::uint64_t v : clip_shape) mix(v);
  mix(0xB0u);  // separator so ([a,b],[c]) != ([a],[b,c])
  for (std::uint64_t v : box_shape) mix(v);
  mix(order == MemoryOrder::kRowMajor ? 0xC0u : 0xF0u);
  return h;
}

}  // namespace

PlanCache::PlanCache(ChunkSpace cs, std::uint64_t esize)
    : cs_(std::move(cs)), esize_(esize) {
  DRX_CHECK(esize_ > 0);
}

std::shared_ptr<const CopyPlan> PlanCache::plan_for(const Shape& clip_shape,
                                                    const Shape& box_shape,
                                                    MemoryOrder order) {
  static const obs::MetricId kHits = obs::counter_id("core.copy.plan_hits");
  static const obs::MetricId kMisses =
      obs::counter_id("core.copy.plan_misses");
  const std::uint64_t hash = shape_key_hash(clip_shape, box_shape, order);
  {
    util::MutexLock lock(mu_);
    for (const Entry& e : entries_) {
      if (e.hash == hash && e.order == order && e.clip_shape == clip_shape &&
          e.box_shape == box_shape) {
        obs::registry().counter(kHits).add();
        return e.plan;
      }
    }
  }
  // Build outside the lock: plan construction allocates and is pure.
  auto plan = std::make_shared<const CopyPlan>(cs_, esize_, clip_shape,
                                               box_shape, order);
  obs::registry().counter(kMisses).add();
  util::MutexLock lock(mu_);
  if (entries_.size() >= kMaxPlanEntries) entries_.clear();
  entries_.push_back(Entry{hash, clip_shape, box_shape, order, plan});
  return plan;
}

void PlanCache::scatter(const Box& clip, const Box& box, MemoryOrder order,
                        std::span<const std::byte> chunk,
                        std::span<std::byte> out) {
  plan_for(clip.shape(), box.shape(), order)->scatter(clip, box, chunk, out);
}

void PlanCache::gather(const Box& clip, const Box& box, MemoryOrder order,
                       std::span<std::byte> chunk,
                       std::span<const std::byte> in) {
  plan_for(clip.shape(), box.shape(), order)->gather(clip, box, chunk, in);
}

}  // namespace drx::core
