#include "core/drxmp_api.hpp"

#include "obs/metrics.hpp"

namespace drx::core::api {

namespace {

ElementType to_element_type(DrxType t) {
  switch (t) {
    case DrxType::kInt: return ElementType::kInt32;
    case DrxType::kDouble: return ElementType::kDouble;
    case DrxType::kComplex: return ElementType::kComplexDouble;
  }
  return ElementType::kDouble;
}

Result<DrxType> to_drx_type(ElementType t) {
  switch (t) {
    case ElementType::kInt32: return DrxType::kInt;
    case ElementType::kDouble: return DrxType::kDouble;
    case ElementType::kComplexDouble: return DrxType::kComplex;
    case ElementType::kInt64:
      return Status(ErrorCode::kUnsupported,
                    "int64 arrays predate the DRXType enum");
  }
  return Status(ErrorCode::kInternal, "unknown element type");
}

}  // namespace

int Env::from_status(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kOk: return DRXMP_SUCCESS;
    case ErrorCode::kInvalidArgument: return DRXMP_ERR_INVALID_ARG;
    case ErrorCode::kNotFound: return DRXMP_ERR_NO_SUCH_FILE;
    case ErrorCode::kCorrupt: return DRXMP_ERR_CORRUPT;
    default: return DRXMP_ERR_IO;
  }
}

DrxMpFile* Env::lookup(DrxmpHandle handle) {
  if (handle < 0 || static_cast<std::size_t>(handle) >= files_.size()) {
    return nullptr;
  }
  return files_[static_cast<std::size_t>(handle)].get();
}

int Env::init(DrxmpHandle* handle, int kdim, const std::uint64_t* initsize,
              const std::uint64_t* chkshape, DrxType dtype,
              const std::string& filename) {
  if (handle == nullptr || kdim < 1 || initsize == nullptr ||
      chkshape == nullptr) {
    return DRXMP_ERR_INVALID_ARG;
  }
  *handle = kInvalidHandle;
  DrxFile::Options options;
  options.dtype = to_element_type(dtype);
  auto file = DrxMpFile::create(
      *comm_, *fs_, filename,
      Shape(initsize, initsize + kdim),
      Shape(chkshape, chkshape + kdim), options);
  if (!file.is_ok()) return from_status(file.status());
  files_.push_back(std::make_unique<DrxMpFile>(std::move(file).value()));
  *handle = static_cast<DrxmpHandle>(files_.size() - 1);
  return DRXMP_SUCCESS;
}

int Env::open(DrxmpHandle* handle, const std::string& filename,
              const std::string& mode) {
  if (handle == nullptr || (mode != "r" && mode != "rw")) {
    return DRXMP_ERR_INVALID_ARG;
  }
  *handle = kInvalidHandle;
  auto file = DrxMpFile::open(*comm_, *fs_, filename);
  if (!file.is_ok()) return from_status(file.status());
  files_.push_back(std::make_unique<DrxMpFile>(std::move(file).value()));
  *handle = static_cast<DrxmpHandle>(files_.size() - 1);
  return DRXMP_SUCCESS;
}

int Env::close(DrxmpHandle handle) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  const Status s = file->close();
  files_[static_cast<std::size_t>(handle)].reset();
  return from_status(s);
}

int Env::terminate() {
  int rc = DRXMP_SUCCESS;
  for (auto& file : files_) {
    if (file != nullptr) {
      const Status s = file->close();
      if (!s.is_ok()) rc = from_status(s);
      file.reset();
    }
  }
  files_.clear();
  return rc;
}

int Env::transfer(DrxmpHandle handle, const MemHandle& mem,
                  DrxmpStatus* status, bool writing, bool collective) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  if (mem.base == nullptr && mem.box.volume() > 0) {
    return DRXMP_ERR_INVALID_ARG;
  }
  if (mem.box.rank() != file->rank()) return DRXMP_ERR_INVALID_ARG;

  const std::uint64_t bytes =
      checked_mul(mem.box.volume(), file->metadata().element_bytes());
  Status s;
  if (writing) {
    const std::span<const std::byte> in(
        static_cast<const std::byte*>(mem.base), checked_size(bytes));
    s = collective ? file->write_box_all(mem.box, mem.order, in)
                   : file->write_box_independent(mem.box, mem.order, in);
  } else {
    const std::span<std::byte> out(static_cast<std::byte*>(mem.base),
                                   checked_size(bytes));
    if (collective) {
      s = file->read_box_all(mem.box, mem.order, out);
    } else {
      // Independent read: per-rank box read through the chunk primitive.
      s = file->read_box_independent(mem.box, mem.order, out);
    }
  }
  if (!s.is_ok()) return from_status(s);
  if (status != nullptr) {
    status->elements = mem.box.volume();
    status->bytes = bytes;
  }
  return DRXMP_SUCCESS;
}

int Env::read(DrxmpHandle handle, const MemHandle& mem,
              DrxmpStatus* status) {
  return transfer(handle, mem, status, /*writing=*/false,
                  /*collective=*/false);
}

int Env::read_all(DrxmpHandle handle, const MemHandle& mem,
                  DrxmpStatus* status) {
  return transfer(handle, mem, status, /*writing=*/false,
                  /*collective=*/true);
}

int Env::write(DrxmpHandle handle, const MemHandle& mem,
               DrxmpStatus* status) {
  return transfer(handle, mem, status, /*writing=*/true,
                  /*collective=*/false);
}

int Env::write_all(DrxmpHandle handle, const MemHandle& mem,
                   DrxmpStatus* status) {
  return transfer(handle, mem, status, /*writing=*/true,
                  /*collective=*/true);
}

int Env::extend(DrxmpHandle handle, int dim, std::uint64_t delta) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  if (dim < 0) return DRXMP_ERR_INVALID_ARG;
  return from_status(file->extend_all(static_cast<std::size_t>(dim), delta));
}

int Env::get_rank(DrxmpHandle handle, int* out) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  if (out == nullptr) return DRXMP_ERR_INVALID_ARG;
  *out = static_cast<int>(file->rank());
  return DRXMP_SUCCESS;
}

int Env::get_bounds(DrxmpHandle handle, std::uint64_t* out, int capacity) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  if (out == nullptr || capacity < static_cast<int>(file->rank())) {
    return DRXMP_ERR_INVALID_ARG;
  }
  for (std::size_t d = 0; d < file->rank(); ++d) {
    out[d] = file->bounds()[d];
  }
  return DRXMP_SUCCESS;
}

int Env::get_chunk_shape(DrxmpHandle handle, std::uint64_t* out,
                         int capacity) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  if (out == nullptr || capacity < static_cast<int>(file->rank())) {
    return DRXMP_ERR_INVALID_ARG;
  }
  for (std::size_t d = 0; d < file->rank(); ++d) {
    out[d] = file->metadata().chunk_shape[d];
  }
  return DRXMP_SUCCESS;
}

int Env::get_type(DrxmpHandle handle, DrxType* out) {
  DrxMpFile* file = lookup(handle);
  if (file == nullptr) return DRXMP_ERR_BAD_HANDLE;
  if (out == nullptr) return DRXMP_ERR_INVALID_ARG;
  auto t = to_drx_type(file->metadata().dtype);
  if (!t.is_ok()) return from_status(t.status());
  *out = t.value();
  return DRXMP_SUCCESS;
}

int Env::get_io_stats(DrxmpIoStats* out) {
  if (out == nullptr) return DRXMP_ERR_INVALID_ARG;
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  out->independent_ops = snap.counter("mpio.independent_ops");
  out->collective_ops = snap.counter("mpio.collective_ops");
  out->bytes_read = snap.counter("mpio.bytes_read");
  out->bytes_written = snap.counter("mpio.bytes_written");
  out->cache_hits = snap.counter("core.cache.hits");
  out->cache_misses = snap.counter("core.cache.misses");
  out->cache_evictions = snap.counter("core.cache.evictions");
  out->cache_writebacks = snap.counter("core.cache.writebacks");
  out->pfs_seeks = snap.counter("pfs.seeks");
  out->pfs_busy_us = snap.counter("pfs.busy_us");
  return DRXMP_SUCCESS;
}

}  // namespace drx::core::api
