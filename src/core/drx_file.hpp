// DRX: the serial disk-resident extendible array library (paper Sec. I,
// IV). An array named `xyz` is a pair of files — `xyz.xmd` (metadata) and
// `xyz.xta` (chunk data) — on any byte-addressable storage (POSIX file,
// in-memory simulator, or a PFS file).
//
// Supported operations: create/open/flush, extend along any dimension
// (appending segments, never reorganizing), element get/set, rectilinear
// box read/write in either C or FORTRAN memory order (transposition
// happens on the fly during scatter/gather — never out-of-core), and a
// sequential whole-file scan read driven by the inverse mapping F*^-1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codec/codec.hpp"
#include "core/copy_plan.hpp"
#include "core/metadata.hpp"
#include "io/prefetch.hpp"
#include "pfs/storage.hpp"

namespace drx::core {

class DrxFile {
 public:
  struct Options {
    ElementType dtype = ElementType::kDouble;
    MemoryOrder in_chunk_order = MemoryOrder::kRowMajor;
    /// Array codec negotiated at create time and recorded in the .xmd
    /// (docs/COMPRESSION.md). nullopt -> `codec::default_codec()`, i.e.
    /// the `DRX_COMPRESS` env knob; compression stays strictly opt-in.
    std::optional<codec::CodecId> codec;
  };

  /// Creates a fresh array over the given storage pair. `element_bounds`
  /// are the initial bounds (>= 1 chunk per dimension is allocated even
  /// for zero bounds); all chunks are zero-initialized.
  [[nodiscard]] static Result<DrxFile> create(std::unique_ptr<pfs::Storage> meta_storage,
                                std::unique_ptr<pfs::Storage> data_storage,
                                Shape element_bounds, Shape chunk_shape,
                                const Options& options);

  /// Opens an existing array; validates the .xmd image.
  [[nodiscard]] static Result<DrxFile> open(std::unique_ptr<pfs::Storage> meta_storage,
                              std::unique_ptr<pfs::Storage> data_storage);

  /// POSIX convenience: `<name>.xmd` / `<name>.xta` on the host FS.
  [[nodiscard]] static Result<DrxFile> create_posix(const std::string& name,
                                      Shape element_bounds, Shape chunk_shape,
                                      const Options& options);
  [[nodiscard]] static Result<DrxFile> open_posix(const std::string& name);

  [[nodiscard]] const Metadata& metadata() const noexcept { return meta_; }
  [[nodiscard]] std::size_t rank() const noexcept { return meta_.rank(); }
  [[nodiscard]] const Shape& bounds() const noexcept {
    return meta_.element_bounds;
  }
  [[nodiscard]] ElementType dtype() const noexcept { return meta_.dtype; }
  [[nodiscard]] std::uint64_t element_bytes() const noexcept {
    return meta_.element_bytes();
  }

  /// Extends dimension `dim` by `delta` element indices (paper Sec. II-A:
  /// which dimension and when is the application's choice). Appends zeroed
  /// segments as needed; existing data never moves. Metadata is persisted
  /// immediately.
  [[nodiscard]] Status extend(std::size_t dim, std::uint64_t delta);

  // ---- element access ---------------------------------------------------

  [[nodiscard]] Status read_element(std::span<const std::uint64_t> index,
                      std::span<std::byte> out);
  [[nodiscard]] Status write_element(std::span<const std::uint64_t> index,
                       std::span<const std::byte> value);

  template <typename T>
  [[nodiscard]] Result<T> get(std::span<const std::uint64_t> index) {
    DRX_CHECK(ElementTypeOf<T>::value == meta_.dtype);
    T v{};
    DRX_RETURN_IF_ERROR(read_element(
        index, std::as_writable_bytes(std::span<T>(&v, 1))));
    return v;
  }

  template <typename T>
  [[nodiscard]] Status set(std::span<const std::uint64_t> index, const T& v) {
    DRX_CHECK(ElementTypeOf<T>::value == meta_.dtype);
    return write_element(index, std::as_bytes(std::span<const T>(&v, 1)));
  }

  // ---- box (sub-array) access -------------------------------------------

  /// Reads element box [box.lo, box.hi) into `out`, linearized in `order`
  /// (the on-the-fly transposition of paper Sec. I). `out` must hold
  /// box.volume() * element_bytes() bytes.
  [[nodiscard]] Status read_box(const Box& box, MemoryOrder order, std::span<std::byte> out);

  /// Writes `in` (linearized in `order`) into element box [box.lo, box.hi).
  [[nodiscard]] Status write_box(const Box& box, MemoryOrder order,
                   std::span<const std::byte> in);

  /// Reads the entire array by one sequential pass over the .xta file,
  /// placing elements via F*^-1 (paper Sec. II-A: "independent I/O of
  /// sub-array regions are done as sequential scan of the chunks on
  /// disk"). `out` must hold the full array in `order`.
  [[nodiscard]] Status scan_read_all(MemoryOrder order, std::span<std::byte> out);

  // ---- chunk-level access (used by DRX-MP and the benches) --------------

  [[nodiscard]] std::uint64_t chunk_address(
      std::span<const std::uint64_t> chunk_index) const {
    return meta_.mapping.address_of(chunk_index);
  }
  [[nodiscard]] std::uint64_t chunk_bytes() const {
    return meta_.chunk_bytes();
  }
  [[nodiscard]] Status read_chunk(std::uint64_t address, std::span<std::byte> out);
  [[nodiscard]] Status write_chunk(std::uint64_t address, std::span<const std::byte> in);

  // ---- split codec / storage API (docs/COMPRESSION.md) ------------------
  // read_chunk/write_chunk above compose these for compressed arrays.
  // Layers that serialize storage access behind their own lock
  // (ChunkCache's io mutex) call the split halves directly so encode/
  // decode — pure CPU work — runs OUTSIDE that lock and overlaps I/O.

  [[nodiscard]] bool compressed() const noexcept { return meta_.compressed(); }
  [[nodiscard]] codec::CodecId codec() const noexcept { return meta_.codec; }

  /// One encoded chunk: the per-chunk codec tag actually stored plus a
  /// view of the stored bytes (into the caller's scratch or, for an
  /// incompressible chunk, the raw input itself — no copy either way).
  struct EncodedChunk {
    codec::CodecId codec = codec::CodecId::kNone;
    std::span<const std::byte> bytes;
  };

  /// Location of one chunk inside the scratch buffer filled by
  /// `read_chunks_stored`.
  struct StoredRef {
    codec::CodecId codec = codec::CodecId::kNone;
    std::size_t offset = 0;  ///< byte offset into the scratch buffer
    std::uint32_t size = 0;  ///< stored bytes
  };

  /// Encodes a raw chunk with the array codec into `scratch` (resized
  /// as needed), falling back per chunk to the identity codec when
  /// encoding cannot beat raw. Pure CPU; safe from any thread with no
  /// lock held. The returned view aliases `scratch` or `raw`.
  [[nodiscard]] EncodedChunk encode_chunk(std::span<const std::byte> raw,
                                          std::vector<std::byte>& scratch) const;

  /// Stores an encoded chunk: in place when it fits the chunk's slot
  /// capacity, else relocated to the end of the .xta (the old slot
  /// leaks, append-only like extension). Touches the slot table and
  /// storage — callers serialize this like any other chunk write.
  [[nodiscard]] Status write_chunk_encoded(std::uint64_t address,
                                           const EncodedChunk& enc);

  /// Reads a chunk's stored bytes without decoding (resizes `scratch`).
  [[nodiscard]] Result<EncodedChunk> read_chunk_stored(
      std::uint64_t address, std::vector<std::byte>& scratch);

  /// Decodes one stored chunk into exactly chunk_bytes() raw bytes.
  /// Pure CPU; safe from any thread with no lock held. A malformed
  /// stream returns kCorrupt (and dumps the flight recorder).
  [[nodiscard]] Status decode_chunk(codec::CodecId chunk_codec,
                                    std::span<const std::byte> stored,
                                    std::span<std::byte> raw) const;

  /// Stored-side counterpart of read_chunks: fetches `count` chunks at
  /// consecutive addresses into `scratch`, coalescing neighbouring
  /// slots into one storage request when the file layout allows, and
  /// records where each chunk landed in `refs`. Decode the refs with
  /// `decode_chunk` outside the storage lock.
  [[nodiscard]] Status read_chunks_stored(std::uint64_t first_address,
                                          std::uint64_t count,
                                          std::vector<std::byte>& scratch,
                                          std::vector<StoredRef>& refs);

  /// Run-coalesced scatter/gather between a chunk buffer and a
  /// box-linearized user buffer for the element range `clip` (which lies
  /// inside one chunk), through this file's memoized plan cache. Layers
  /// that buffer chunks themselves (ChunkCache, drxmp) call these instead
  /// of the one-shot free functions in scatter.hpp.
  void scatter_chunk(std::span<const std::byte> chunk, const Box& clip,
                     const Box& box, MemoryOrder order,
                     std::span<std::byte> out) const;
  void gather_chunk(std::span<std::byte> chunk, const Box& clip,
                    const Box& box, MemoryOrder order,
                    std::span<const std::byte> in) const;

  /// Reads `count` chunks at consecutive linear addresses starting at
  /// `first_address` with ONE storage request (chunk addresses are
  /// contiguous in the .xta by construction) — the coalescing primitive
  /// behind sequential read-ahead. `out` must hold count * chunk_bytes().
  [[nodiscard]] Status read_chunks(std::uint64_t first_address, std::uint64_t count,
                     std::span<std::byte> out);

  // ---- prefetch hints (docs/ASYNC_IO.md) --------------------------------
  // Layers that know future access patterns announce them here; a cache
  // layered on this file (ChunkCache) registers itself as the sink and
  // turns hints into background faults. Hints are advisory: with no sink
  // attached they are dropped.

  /// Hints that every chunk overlapping element box [box.lo, box.hi) is
  /// about to be read. Never blocks on I/O.
  void prefetch_box(const Box& box);

  void set_prefetch_sink(io::PrefetchSink* sink) noexcept {
    prefetch_sink_ = sink;
  }
  [[nodiscard]] io::PrefetchSink* prefetch_sink() const noexcept {
    return prefetch_sink_;
  }

  /// Persists metadata (also called by extend/create).
  [[nodiscard]] Status flush();

  [[nodiscard]] pfs::Storage& data_storage() noexcept { return *data_; }
  [[nodiscard]] pfs::Storage& meta_storage() noexcept { return *meta_store_; }

 private:
  DrxFile(std::unique_ptr<pfs::Storage> meta_storage,
          std::unique_ptr<pfs::Storage> data_storage, Metadata meta)
      : meta_store_(std::move(meta_storage)),
        data_(std::move(data_storage)),
        meta_(std::move(meta)),
        chunk_space_(meta_.chunk_space()),
        plan_cache_(std::make_unique<PlanCache>(chunk_space_,
                                                meta_.element_bytes())) {}

  [[nodiscard]] Status check_index(std::span<const std::uint64_t> index) const;
  /// Chunks covering element box `box` as (address, chunk index) pairs in
  /// ascending storage-address order. Box transfers visit chunks in this
  /// order so dense scans sweep the .xta near-sequentially, and — on
  /// compressed arrays — slot relocations triggered by a bulk rewrite
  /// append in address order, keeping the stored layout coalescible for
  /// later streaming reads.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Index>> chunks_by_address(
      const Box& box) const;
  /// Allocates slots for chunks [first, total_chunks) of a compressed
  /// array and stores an encoded all-zeroes payload in each (create and
  /// extend share this; appended chunks must read back as zeroes).
  [[nodiscard]] Status append_zero_chunks(std::uint64_t first);
  /// Cheap write-path entropy sampling for the drx_doctor
  /// compression-would-pay hint (docs/COMPRESSION.md): every ~64th raw
  /// chunk write trial-encodes a bounded prefix and records the ratio.
  void sample_write_entropy(std::span<const std::byte> in);

  std::unique_ptr<pfs::Storage> meta_store_;
  std::unique_ptr<pfs::Storage> data_;
  Metadata meta_;
  ChunkSpace chunk_space_;
  /// Memoized run-coalesced copy plans shared by every box read/write of
  /// this file (unique_ptr: PlanCache holds a Mutex and DrxFile moves).
  std::unique_ptr<PlanCache> plan_cache_;
  io::PrefetchSink* prefetch_sink_ = nullptr;  ///< not owned; may be null
  /// Entropy-sampling clock for uncompressed writes. Plain (not atomic,
  /// keeps DrxFile movable): every caller already serializes chunk
  /// writes (ChunkCache behind its io mutex, everything else single
  /// threaded), and a skewed sample cadence would be harmless anyway.
  std::uint64_t write_sample_clock_ = 0;
};

}  // namespace drx::core
