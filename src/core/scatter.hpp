// Element scatter/gather between chunk buffers and box-linearized user
// buffers — the "on the fly" transposition of paper Sec. I: elements are
// placed into the requested memory order as chunks stream through memory,
// so no out-of-core transposition is ever needed.
//
// Since the run-coalescing rewrite (docs/PERFORMANCE.md) these free
// functions build a CopyPlan and execute it, so copies move whole
// contiguous runs per memcpy instead of one element each. Repeated-shape
// call sites (DrxFile, drxmp, the baselines) should prefer a PlanCache
// so the plan construction itself amortizes; these one-shot wrappers
// exist for callers without a natural cache scope.
#pragma once

#include <span>

#include "core/chunk_space.hpp"
#include "core/coords.hpp"
#include "core/copy_plan.hpp"

namespace drx::core {

/// Copies the elements of `clip` (a box inside the chunk that `chunk`
/// buffers) into `out`, which holds box `box` linearized in `order`.
inline void scatter_chunk_into_box(const ChunkSpace& cs, std::uint64_t esize,
                                   std::span<const std::byte> chunk,
                                   const Box& clip, const Box& box,
                                   MemoryOrder order,
                                   std::span<std::byte> out) {
  if (clip.empty()) return;
  CopyPlan(cs, esize, clip.shape(), box.shape(), order)
      .scatter(clip, box, chunk, out);
}

/// Inverse: fills the `clip` elements of `chunk` from `in` (box `box`
/// linearized in `order`).
inline void gather_box_into_chunk(const ChunkSpace& cs, std::uint64_t esize,
                                  std::span<std::byte> chunk, const Box& clip,
                                  const Box& box, MemoryOrder order,
                                  std::span<const std::byte> in) {
  if (clip.empty()) return;
  CopyPlan(cs, esize, clip.shape(), box.shape(), order)
      .gather(clip, box, chunk, in);
}

}  // namespace drx::core
