// Element scatter/gather between chunk buffers and box-linearized user
// buffers — the "on the fly" transposition of paper Sec. I: elements are
// placed into the requested memory order as chunks stream through memory,
// so no out-of-core transposition is ever needed.
#pragma once

#include <cstring>
#include <span>

#include "core/chunk_space.hpp"
#include "core/coords.hpp"

namespace drx::core {

/// Copies the elements of `clip` (a box inside the chunk that `chunk`
/// buffers) into `out`, which holds box `box` linearized in `order`.
inline void scatter_chunk_into_box(const ChunkSpace& cs, std::uint64_t esize,
                                   std::span<const std::byte> chunk,
                                   const Box& clip, const Box& box,
                                   MemoryOrder order,
                                   std::span<std::byte> out) {
  const Shape box_shape = box.shape();
  Index rel(cs.rank());
  for_each_index(clip, [&](const Index& idx) {
    const std::uint64_t src = cs.offset_in_chunk(idx);
    for (std::size_t d = 0; d < cs.rank(); ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t dst = linearize(rel, box_shape, order);
    std::memcpy(out.data() + dst * esize, chunk.data() + src * esize,
                checked_size(esize));
  });
}

/// Inverse: fills the `clip` elements of `chunk` from `in` (box `box`
/// linearized in `order`).
inline void gather_box_into_chunk(const ChunkSpace& cs, std::uint64_t esize,
                                  std::span<std::byte> chunk, const Box& clip,
                                  const Box& box, MemoryOrder order,
                                  std::span<const std::byte> in) {
  const Shape box_shape = box.shape();
  Index rel(cs.rank());
  for_each_index(clip, [&](const Index& idx) {
    const std::uint64_t dst = cs.offset_in_chunk(idx);
    for (std::size_t d = 0; d < cs.rank(); ++d) rel[d] = idx[d] - box.lo[d];
    const std::uint64_t src = linearize(rel, box_shape, order);
    std::memcpy(chunk.data() + dst * esize, in.data() + src * esize,
                checked_size(esize));
  });
}

}  // namespace drx::core
