// Element types and memory orders of the DRX / DRX-MP libraries.
//
// The paper supports the three element types that MPI-2 RMA accumulate
// operations are defined over: integer, double and complex.
#pragma once

#include <complex>
#include <cstdint>
#include <string_view>

namespace drx::core {

enum class ElementType : std::uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kComplexDouble = 3,
};

constexpr std::uint64_t element_size(ElementType t) noexcept {
  switch (t) {
    case ElementType::kInt32: return 4;
    case ElementType::kInt64: return 8;
    case ElementType::kDouble: return 8;
    case ElementType::kComplexDouble: return 16;
  }
  return 0;
}

constexpr std::string_view element_type_name(ElementType t) noexcept {
  switch (t) {
    case ElementType::kInt32: return "int32";
    case ElementType::kInt64: return "int64";
    case ElementType::kDouble: return "double";
    case ElementType::kComplexDouble: return "complex<double>";
  }
  return "?";
}

/// Maps a C++ element type to its ElementType tag.
template <typename T>
struct ElementTypeOf;
template <>
struct ElementTypeOf<std::int32_t> {
  static constexpr ElementType value = ElementType::kInt32;
};
template <>
struct ElementTypeOf<std::int64_t> {
  static constexpr ElementType value = ElementType::kInt64;
};
template <>
struct ElementTypeOf<double> {
  static constexpr ElementType value = ElementType::kDouble;
};
template <>
struct ElementTypeOf<std::complex<double>> {
  static constexpr ElementType value = ElementType::kComplexDouble;
};

/// In-memory linearization order for sub-arrays (paper Sec. I: the user
/// chooses C or FORTRAN order when the file is read).
enum class MemoryOrder : std::uint8_t {
  kRowMajor = 0,  ///< C order: last dimension varies fastest
  kColMajor = 1,  ///< FORTRAN order: first dimension varies fastest
};

}  // namespace drx::core
