#include "core/zone.hpp"

#include <algorithm>

#include "simpi/cart.hpp"
#include "util/error.hpp"

namespace drx::core {

Distribution Distribution::block(Shape chunk_bounds, int nprocs) {
  DRX_CHECK(nprocs >= 1 && !chunk_bounds.empty());
  Distribution d;
  d.kind_ = DistributionKind::kBlock;
  d.nprocs_ = nprocs;
  d.chunk_bounds_ = std::move(chunk_bounds);
  d.grid_ = simpi::dims_create(nprocs,
                               static_cast<int>(d.chunk_bounds_.size()));
  // Put larger grid factors on larger chunk dimensions so zones stay as
  // square as possible: sort dims by bound descending, factors descending.
  {
    std::vector<std::size_t> dim_order(d.chunk_bounds_.size());
    for (std::size_t i = 0; i < dim_order.size(); ++i) dim_order[i] = i;
    std::stable_sort(dim_order.begin(), dim_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return d.chunk_bounds_[a] > d.chunk_bounds_[b];
                     });
    std::vector<int> factors = d.grid_;  // already sorted descending
    std::vector<int> grid(d.chunk_bounds_.size(), 1);
    for (std::size_t i = 0; i < dim_order.size(); ++i) {
      grid[dim_order[i]] = factors[i];
    }
    d.grid_ = grid;
  }
  // Balanced contiguous cuts: cut r of dim j at floor(r * B_j / G_j).
  d.cuts_.resize(d.chunk_bounds_.size());
  for (std::size_t j = 0; j < d.chunk_bounds_.size(); ++j) {
    const auto g = static_cast<std::uint64_t>(d.grid_[j]);
    d.cuts_[j].resize(g + 1);
    for (std::uint64_t r = 0; r <= g; ++r) {
      d.cuts_[j][r] = r * d.chunk_bounds_[j] / g;
    }
  }
  return d;
}

Distribution Distribution::block_cyclic(Shape chunk_bounds, int nprocs,
                                        Shape block_shape) {
  DRX_CHECK(nprocs >= 1 && !chunk_bounds.empty());
  DRX_CHECK(block_shape.size() == chunk_bounds.size());
  for (std::uint64_t b : block_shape) DRX_CHECK(b >= 1);
  Distribution d;
  d.kind_ = DistributionKind::kBlockCyclic;
  d.nprocs_ = nprocs;
  d.chunk_bounds_ = std::move(chunk_bounds);
  d.block_shape_ = std::move(block_shape);
  d.grid_ = simpi::dims_create(nprocs,
                               static_cast<int>(d.chunk_bounds_.size()));
  return d;
}

int Distribution::owner_of(std::span<const std::uint64_t> chunk) const {
  DRX_CHECK(chunk.size() == chunk_bounds_.size());
  std::vector<int> coords(chunk_bounds_.size());
  for (std::size_t j = 0; j < chunk_bounds_.size(); ++j) {
    DRX_CHECK(chunk[j] < chunk_bounds_[j]);
    if (kind_ == DistributionKind::kBlock) {
      const auto& cuts = cuts_[j];
      // Last cut <= chunk[j].
      const auto it =
          std::upper_bound(cuts.begin(), cuts.end(), chunk[j]);
      coords[j] = static_cast<int>(it - cuts.begin()) - 1;
      // Empty ranges share cut values; walk back to the range that
      // actually contains the index.
      while (cuts[static_cast<std::size_t>(coords[j]) + 1] <= chunk[j]) {
        ++coords[j];
      }
    } else {
      const std::uint64_t block = chunk[j] / block_shape_[j];
      coords[j] = static_cast<int>(block %
                                   static_cast<std::uint64_t>(grid_[j]));
    }
  }
  return simpi::cart_rank(coords, grid_);
}

std::vector<Box> Distribution::zones_of(int proc) const {
  DRX_CHECK(proc >= 0 && proc < nprocs_);
  const std::vector<int> coords = simpi::cart_coords(proc, grid_);
  const std::size_t k = chunk_bounds_.size();
  std::vector<Box> zones;

  if (kind_ == DistributionKind::kBlock) {
    Box zone;
    zone.lo.resize(k);
    zone.hi.resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      zone.lo[j] = cuts_[j][static_cast<std::size_t>(coords[j])];
      zone.hi[j] = cuts_[j][static_cast<std::size_t>(coords[j]) + 1];
    }
    if (!zone.empty()) zones.push_back(std::move(zone));
    return zones;
  }

  // BLOCK_CYCLIC: enumerate this process's blocks along each dimension,
  // then take the cartesian product of the per-dim block lists.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> ranges(k);
  for (std::size_t j = 0; j < k; ++j) {
    const auto g = static_cast<std::uint64_t>(grid_[j]);
    for (std::uint64_t b = static_cast<std::uint64_t>(coords[j]);
         b * block_shape_[j] < chunk_bounds_[j]; b += g) {
      const std::uint64_t lo = b * block_shape_[j];
      const std::uint64_t hi =
          std::min(lo + block_shape_[j], chunk_bounds_[j]);
      ranges[j].emplace_back(lo, hi);
    }
    if (ranges[j].empty()) return zones;  // proc owns nothing
  }
  std::vector<std::size_t> pick(k, 0);
  for (;;) {
    Box zone;
    zone.lo.resize(k);
    zone.hi.resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      zone.lo[j] = ranges[j][pick[j]].first;
      zone.hi[j] = ranges[j][pick[j]].second;
    }
    zones.push_back(std::move(zone));
    std::size_t j = k;
    for (;;) {
      if (j == 0) return zones;
      --j;
      if (++pick[j] < ranges[j].size()) break;
      pick[j] = 0;
    }
  }
}

std::vector<Index> Distribution::chunks_of(int proc) const {
  std::vector<Index> chunks;
  for (const Box& zone : zones_of(proc)) {
    for_each_index(zone, [&](const Index& idx) { chunks.push_back(idx); });
  }
  return chunks;
}

}  // namespace drx::core
