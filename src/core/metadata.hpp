// The .xmd metadata of a DRX extendible array file (paper Sec. IV-A).
//
// Holds everything a process needs to compute any chunk address locally:
// rank, element type, chunk shape, instantaneous element bounds, the
// in-chunk layout order, and the full axial-vector state. On open, this
// structure is replicated into every participating process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/axial_mapping.hpp"
#include "core/chunk_space.hpp"
#include "core/types.hpp"
#include "util/serde.hpp"

namespace drx::core {

struct Metadata {
  static constexpr std::uint32_t kMagic = 0x44525831;  // "DRX1"
  static constexpr std::uint32_t kVersion = 1;

  ElementType dtype = ElementType::kDouble;
  MemoryOrder in_chunk_order = MemoryOrder::kRowMajor;
  Shape element_bounds;  ///< instantaneous N_0 .. N_{k-1}
  Shape chunk_shape;     ///< c_0 .. c_{k-1}
  AxialMapping mapping;  ///< chunk-grid axial-vector state

  Metadata() : mapping(Shape{1}) {}
  Metadata(ElementType t, MemoryOrder order, Shape elem_bounds,
           Shape chunk_shape_in);

  [[nodiscard]] std::size_t rank() const noexcept {
    return element_bounds.size();
  }
  [[nodiscard]] std::uint64_t element_bytes() const noexcept {
    return element_size(dtype);
  }
  [[nodiscard]] ChunkSpace chunk_space() const {
    return ChunkSpace(chunk_shape, in_chunk_order);
  }
  [[nodiscard]] std::uint64_t chunk_bytes() const {
    return checked_mul(checked_product(chunk_shape), element_bytes());
  }
  /// Size the .xta file must have to hold all allocated chunks.
  [[nodiscard]] std::uint64_t data_file_bytes() const {
    return checked_mul(mapping.total_chunks(), chunk_bytes());
  }

  /// The one sanctioned axial-vector mutation (scripts/lint_drx.py rule
  /// `axial-mutation`): grows dimension `dim` by `delta` elements,
  /// extending the chunk grid through the axial mapping when the new
  /// bounds spill past it. Returns the linear address of the first
  /// appended chunk, or nullopt when the existing grid already covers the
  /// new bounds. The caller must already have validated `dim` and is
  /// responsible for materializing storage for the appended chunks.
  std::optional<std::uint64_t> extend_elements(std::size_t dim,
                                               std::uint64_t delta);

  /// Full serialized .xmd image (magic + version + payload + checksum).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  [[nodiscard]] static Result<Metadata> from_bytes(std::span<const std::byte> data);

  friend bool operator==(const Metadata&, const Metadata&) = default;
};

}  // namespace drx::core
