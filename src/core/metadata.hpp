// The .xmd metadata of a DRX extendible array file (paper Sec. IV-A).
//
// Holds everything a process needs to compute any chunk address locally:
// rank, element type, chunk shape, instantaneous element bounds, the
// in-chunk layout order, and the full axial-vector state. On open, this
// structure is replicated into every participating process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "codec/codec.hpp"
#include "core/axial_mapping.hpp"
#include "core/chunk_space.hpp"
#include "core/types.hpp"
#include "util/serde.hpp"

namespace drx::core {

/// Physical location of one chunk's stored bytes in the .xta file of a
/// compressed array (docs/COMPRESSION.md). The slot reserves `capacity`
/// bytes starting at `offset`; `stored` of them are live. Rewrites that
/// still fit update in place; larger rewrites relocate to the end of
/// the file and leak the old slot (append-only, like extension itself).
struct ChunkSlot {
  std::uint64_t offset = 0;    ///< byte offset in the .xta
  std::uint32_t stored = 0;    ///< bytes actually stored
  std::uint32_t capacity = 0;  ///< bytes reserved at offset
  std::uint8_t codec = 0;      ///< per-chunk codec::CodecId of the bytes

  friend bool operator==(const ChunkSlot&, const ChunkSlot&) = default;
};

struct Metadata {
  static constexpr std::uint32_t kMagic = 0x44525831;  // "DRX1"
  static constexpr std::uint32_t kVersion = 1;
  /// Version 2 adds the array codec and the per-chunk slot table. It is
  /// written ONLY for compressed arrays: uncompressed arrays keep the
  /// bit-identical version-1 image so `DRX_COMPRESS=off` stays exactly
  /// the legacy format.
  static constexpr std::uint32_t kVersionCompressed = 2;

  ElementType dtype = ElementType::kDouble;
  MemoryOrder in_chunk_order = MemoryOrder::kRowMajor;
  Shape element_bounds;  ///< instantaneous N_0 .. N_{k-1}
  Shape chunk_shape;     ///< c_0 .. c_{k-1}
  AxialMapping mapping;  ///< chunk-grid axial-vector state

  /// Array-level codec negotiated at create time. kNone -> legacy dense
  /// layout, empty chunk_table, version-1 serialization.
  codec::CodecId codec = codec::CodecId::kNone;
  /// One slot per linear chunk address (compressed arrays only).
  std::vector<ChunkSlot> chunk_table;
  /// High-water mark of the .xta file (compressed arrays only): the
  /// next relocated/appended slot starts here.
  std::uint64_t data_end = 0;

  Metadata() : mapping(Shape{1}) {}
  Metadata(ElementType t, MemoryOrder order, Shape elem_bounds,
           Shape chunk_shape_in);

  [[nodiscard]] std::size_t rank() const noexcept {
    return element_bounds.size();
  }
  [[nodiscard]] std::uint64_t element_bytes() const noexcept {
    return element_size(dtype);
  }
  [[nodiscard]] ChunkSpace chunk_space() const {
    return ChunkSpace(chunk_shape, in_chunk_order);
  }
  [[nodiscard]] std::uint64_t chunk_bytes() const {
    return checked_mul(checked_product(chunk_shape), element_bytes());
  }
  /// Logical (raw, decompressed) bytes of all allocated chunks. For
  /// uncompressed arrays this is also the exact .xta size.
  [[nodiscard]] std::uint64_t data_file_bytes() const {
    return checked_mul(mapping.total_chunks(), chunk_bytes());
  }

  [[nodiscard]] bool compressed() const noexcept {
    return codec != codec::CodecId::kNone;
  }
  /// Minimal physical .xta size: the dense size for uncompressed
  /// arrays; for compressed arrays the furthest *stored* byte (slot
  /// capacity padding past it is reserved but never written, so it may
  /// legitimately lie past EOF).
  [[nodiscard]] std::uint64_t stored_data_bytes() const;
  /// Live stored bytes across all chunk slots (excludes leaked holes
  /// and capacity padding); the numerator of drx_inspect's ratio.
  [[nodiscard]] std::uint64_t stored_live_bytes() const;

  /// The one sanctioned axial-vector mutation (scripts/lint_drx.py rule
  /// `axial-mutation`): grows dimension `dim` by `delta` elements,
  /// extending the chunk grid through the axial mapping when the new
  /// bounds spill past it. Returns the linear address of the first
  /// appended chunk, or nullopt when the existing grid already covers the
  /// new bounds. The caller must already have validated `dim` and is
  /// responsible for materializing storage for the appended chunks.
  std::optional<std::uint64_t> extend_elements(std::size_t dim,
                                               std::uint64_t delta);

  /// Full serialized .xmd image (magic + version + payload + checksum).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  [[nodiscard]] static Result<Metadata> from_bytes(std::span<const std::byte> data);

  friend bool operator==(const Metadata&, const Metadata&) = default;
};

}  // namespace drx::core
