// Chunk buffer pool for serial DRX (paper Sec. I: serial DRX maintains
// "I/O caching using the BerkeleyDB Mpool sub-system").
//
// A write-back LRU pool of fixed-size chunk buffers keyed by linear chunk
// address, with Mpool-style pin/unpin discipline: a pinned buffer cannot
// be evicted; unpinning with `dirty` schedules write-back. CachedDrxFile
// layers element/box access on top, so repeated touches to a hot chunk
// cost one I/O instead of one per element.
//
// Async engine (docs/ASYNC_IO.md): when constructed with io_threads > 0
// the cache runs on a drx::io::AsyncIoPool and becomes fully thread-safe:
//  - read-ahead: a detectably sequential miss run (consecutive miss
//    addresses) speculatively faults the next DRX_PREFETCH_DEPTH chunk
//    addresses into frames with ONE coalesced storage read, before they
//    are pinned;
//  - write-behind: dirty evictions enqueue their write-back instead of
//    blocking the evicting pin(); flush() is a barrier that drains the
//    queue and surfaces the first deferred error (sticky: last_error()
//    keeps reporting it, and the destructor logs it rather than dropping
//    a failed final flush on the floor).
// io_threads == 0 (the default) reproduces the synchronous legacy
// semantics exactly.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/drx_file.hpp"
#include "core/scatter.hpp"
#include "io/async_pool.hpp"
#include "obs/opctx.hpp"
#include "io/config.hpp"
#include "io/prefetch.hpp"
#include "util/sync.hpp"

namespace drx::core {

class ChunkCache final : public io::PrefetchSink {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    // Async-engine counters (all zero in synchronous mode).
    std::uint64_t deferred_writebacks = 0;  ///< write-backs queued, not blocked on
    std::uint64_t write_queue_hits = 0;     ///< misses served from a queued write
    std::uint64_t prefetch_issued = 0;      ///< chunks speculatively requested
    std::uint64_t prefetch_useful = 0;      ///< prefetched chunks later pinned
    std::uint64_t prefetch_wasted = 0;      ///< prefetched chunks evicted unpinned
    std::uint64_t prefetch_waits = 0;       ///< pins that waited on an in-flight load
    // Admission-control counters (docs/PERFORMANCE.md).
    std::uint64_t admit_bypasses = 0;    ///< element misses served by direct I/O
    std::uint64_t admit_promotions = 0;  ///< ghost hits promoted to residency
  };

  /// Async-engine configuration; the default is fully synchronous.
  struct AsyncOptions {
    int io_threads = 0;               ///< 0 = legacy synchronous cache
    std::uint64_t prefetch_depth = 0; ///< read-ahead chunks (needs threads > 0)

    /// DRX_IO_THREADS / DRX_PREFETCH_DEPTH (or their test overrides).
    static AsyncOptions from_config() {
      return AsyncOptions{io::io_threads(), io::prefetch_depth()};
    }
  };

  /// `capacity` chunks stay resident. The cache serves exactly one
  /// DrxFile; the file must outlive the cache. This overload picks up the
  /// process async configuration (env knobs).
  ChunkCache(DrxFile& file, std::size_t capacity)
      : ChunkCache(file, capacity, AsyncOptions::from_config()) {}

  ChunkCache(DrxFile& file, std::size_t capacity, const AsyncOptions& async);

  /// Flushes (logging, not dropping, any write-back failure), then joins
  /// the I/O workers.
  ~ChunkCache() override;
  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Pins the chunk at linear address `address` into the pool, faulting it
  /// from the file on a miss, and returns its buffer. The buffer stays
  /// valid (and the frame unevictable) until the matching unpin().
  /// Thread-safe.
  Result<std::span<std::byte>> pin(std::uint64_t address);

  /// Releases a pin; `dirty` marks the buffer modified (written back on
  /// eviction or flush — write-back, not write-through). Thread-safe.
  void unpin(std::uint64_t address, bool dirty);

  // ---- scan-resistant admission (DRX_CACHE_ADMIT, docs/PERFORMANCE.md) --
  // Element-granular access faults a whole chunk per miss, which LOSES to
  // raw 8-byte element I/O when the pattern has no reuse (uniform random
  // over an array that dwarfs the pool). These entry points consult the
  // admission policy first: a non-resident chunk with no demonstrated
  // reuse (no ghost-filter hit, not part of a sequential run) is NOT
  // admitted — the element moves with one direct storage request, exactly
  // what raw access would have cost — and its address is recorded in the
  // ghost filter so a re-touch promotes it to a resident frame.

  /// Admission-controlled element read at `offset` bytes into the chunk
  /// at `address`. Returns true when served by bypass I/O; false when the
  /// caller should pin() (chunk resident, pending, or admitted).
  Result<bool> read_element_bypassed(std::uint64_t address,
                                     std::uint64_t offset,
                                     std::span<std::byte> out);

  /// Admission-controlled element write. Same contract; under an async
  /// cache writes always admit (a bypass write could race an in-flight
  /// speculative load and lose the update on eviction).
  Result<bool> write_element_bypassed(std::uint64_t address,
                                      std::uint64_t offset,
                                      std::span<const std::byte> value);

  /// Barrier + write-back: drains in-flight read-ahead and write-behind,
  /// surfaces the first deferred write error, then writes back every
  /// dirty frame without evicting. A dirty frame that is still pinned is
  /// written after its last pin drops (flush waits for it — do not call
  /// flush() while holding a pin on this cache).
  Status flush();

  /// Flush + drop all unpinned frames (cold-cache tool for benches).
  Status invalidate();

  /// Speculatively faults chunks [first, first + count) into frames using
  /// one coalesced read on the I/O pool. Advisory: resident chunks, full
  /// capacity, or a synchronous cache reduce or drop the request. Never
  /// blocks on the I/O it starts.
  void prefetch(std::uint64_t first, std::uint64_t count);

  /// io::PrefetchSink — DrxFile::prefetch_box() lands here.
  void prefetch_range(std::uint64_t first, std::uint64_t count) override {
    prefetch(first, count);
  }

  /// First write-back failure observed (deferred or not). Sticky: remains
  /// observable after flush() has returned it.
  [[nodiscard]] Status last_error() const;

  /// True when the cache runs on worker threads (io_threads > 0).
  [[nodiscard]] bool async() const noexcept { return pool_ != nullptr; }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t resident() const;

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;
    int pins = 0;
    bool dirty = false;
    bool loading = false;     ///< speculative/foreground fault in flight
    bool flushing = false;    ///< flush owns the buffer for a write-back
    bool prefetched = false;  ///< faulted ahead of demand, not yet pinned
    std::list<std::uint64_t>::iterator lru_it;  ///< valid when in_lru
    bool in_lru = false;
  };

  /// A dirty buffer evicted under write-behind, keyed by address until its
  /// worker write completes. `seq` orders replacements: re-evicting the
  /// same address swaps the buffer and bumps seq, and the (single) job for
  /// the address re-writes until it observes a stable seq — so the newest
  /// data always lands last.
  struct PendingWrite {
    std::shared_ptr<std::byte[]> data;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] std::size_t chunk_size() const;

  /// Admission decision for an element-granular miss; updates the ghost
  /// filter and sequential-run tracker. True = serve by bypass I/O.
  [[nodiscard]] bool should_bypass_locked(std::uint64_t address, bool write)
      DRX_REQUIRES(mu_);

  // All *_locked helpers require mu_ held. Lock order: mu_ may be held
  // while taking io_mu_ (sync flush), but io_mu_ is never held while
  // taking mu_.
  Status evict_one_locked(util::MutexLock& lock,
                          std::vector<std::uint64_t>& write_submits)
      DRX_REQUIRES(mu_);
  void queue_write_locked(std::uint64_t address,
                          std::unique_ptr<std::byte[]> data,
                          std::vector<std::uint64_t>& write_submits)
      DRX_REQUIRES(mu_);
  /// Returns true when `status` became the sticky error AND is not yet
  /// surfaced to a caller — the trigger for a flight-recorder dump.
  bool record_error_locked(const Status& status, bool surfaced)
      DRX_REQUIRES(mu_);
  /// Reserves loading frames for a contiguous eligible run starting at
  /// `first`; returns the run length (0 = nothing to do).
  std::uint64_t reserve_readahead_locked(
      util::MutexLock& lock, std::uint64_t first, std::uint64_t want,
      std::vector<std::uint64_t>& write_submits) DRX_REQUIRES(mu_);
  void submit_writes(const std::vector<std::uint64_t>& addresses)
      DRX_EXCLUDES(mu_);

  /// Chunk-sized frame buffer from the free list (evictions recycle their
  /// buffers there), allocating only when the list is empty — so the
  /// steady-state miss path never mallocs under the cache lock.
  [[nodiscard]] std::unique_ptr<std::byte[]> take_buffer_locked()
      DRX_REQUIRES(mu_);
  void recycle_buffer_locked(std::unique_ptr<std::byte[]> buffer)
      DRX_REQUIRES(mu_);

  // Pool jobs (run on workers; inline mode never reaches them).
  Status run_write_job(std::uint64_t address) DRX_EXCLUDES(mu_);
  Status run_prefetch_job(std::uint64_t first, std::uint64_t count)
      DRX_EXCLUDES(mu_);

  Status flush_sync_locked(util::MutexLock& lock, Status surfaced)
      DRX_REQUIRES(mu_);
  Status flush_async_locked(util::MutexLock& lock, Status surfaced)
      DRX_REQUIRES(mu_);

  DrxFile* file_;
  const std::size_t capacity_;
  std::uint64_t prefetch_depth_ = 0;
  std::unique_ptr<io::AsyncIoPool> pool_;  ///< null = synchronous legacy mode

  mutable util::Mutex mu_;  ///< cache structures, stats, error state
  util::CondVar cv_;        ///< load completion / queue-drain signal
  // drx-lint: allow(unannotated-mutex-member) serializes access to the
  // caller-owned DrxFile; there is no member field to annotate.
  util::Mutex io_mu_;       ///< serializes DrxFile storage access
  std::unordered_map<std::uint64_t, Frame> frames_ DRX_GUARDED_BY(mu_);
  /// Unpinned ready frames, front = MRU.
  std::list<std::uint64_t> lru_ DRX_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, PendingWrite> pending_writes_
      DRX_GUARDED_BY(mu_);
  /// Recycled chunk-sized frame buffers (bounded by capacity_).
  std::vector<std::unique_ptr<std::byte[]>> free_buffers_ DRX_GUARDED_BY(mu_);
  std::uint64_t loads_inflight_ DRX_GUARDED_BY(mu_) = 0;  ///< prefetch jobs
  /// Flushes parked until a dirty frame's last pin drops (unpin notifies
  /// cv_ only while this is nonzero, keeping the unpin fast path quiet).
  std::size_t flush_waiters_ DRX_GUARDED_BY(mu_) = 0;
  Stats stats_ DRX_GUARDED_BY(mu_);

  // Sequential-scan detector: a miss at last_miss_ + 1 extends the run;
  // anything else restarts it. Read-ahead fires once the run reaches
  // kSequentialThreshold, and sets last_miss_ to the end of the issued
  // window so prefetch hits keep the run alive.
  static constexpr int kSequentialThreshold = 2;
  static constexpr std::uint64_t kNoAddress = ~std::uint64_t{0};
  std::uint64_t last_miss_ DRX_GUARDED_BY(mu_) = kNoAddress;
  int seq_run_ DRX_GUARDED_BY(mu_) = 0;

  /// Ghost/probation filter for scan-resistant admission: a small
  /// direct-mapped table of recently bypassed chunk addresses (no
  /// buffers). A miss that finds its address here has demonstrated reuse
  /// and is admitted; everything else is served by bypass element I/O.
  std::vector<std::uint64_t> ghost_ DRX_GUARDED_BY(mu_);
  /// Last element-granular miss address (admitted or bypassed): a miss at
  /// +1 extends a sequential element scan and admits immediately, so a
  /// streaming sweep pays the probation fault only for its first chunk.
  std::uint64_t admit_last_miss_ DRX_GUARDED_BY(mu_) = kNoAddress;

  /// First write-back failure (sticky).
  Status last_error_ DRX_GUARDED_BY(mu_);
  /// True until flush() returns the error once.
  bool error_unsurfaced_ DRX_GUARDED_BY(mu_) = false;
};

/// Element/box access through the pool. Same semantics as DrxFile element
/// and box I/O, but chunk-granular faults instead of per-call I/O.
class CachedDrxFile {
 public:
  CachedDrxFile(DrxFile& file, std::size_t capacity_chunks)
      : CachedDrxFile(file, capacity_chunks,
                      ChunkCache::AsyncOptions::from_config()) {}

  CachedDrxFile(DrxFile& file, std::size_t capacity_chunks,
                const ChunkCache::AsyncOptions& async)
      : file_(&file),
        cache_(file, capacity_chunks, async),
        space_(file.metadata().chunk_space()) {}

  template <typename T>
  Result<T> get(std::span<const std::uint64_t> index) {
    obs::OpScope op("op.cached_get");
    DRX_CHECK(ElementTypeOf<T>::value == file_->dtype());
    DRX_RETURN_IF_ERROR(check_index(index));
    const std::uint64_t q = file_->chunk_address(space_.chunk_of(index));
    const std::uint64_t off = space_.offset_in_chunk(index) * sizeof(T);
    T v{};
    DRX_ASSIGN_OR_RETURN(
        const bool bypassed,
        cache_.read_element_bypassed(
            q, off, std::as_writable_bytes(std::span<T>(&v, 1))));
    if (bypassed) return v;
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk, cache_.pin(q));
    std::memcpy(&v, chunk.data() + off, sizeof(T));
    cache_.unpin(q, /*dirty=*/false);
    return v;
  }

  template <typename T>
  Status set(std::span<const std::uint64_t> index, const T& v) {
    obs::OpScope op("op.cached_set");
    DRX_CHECK(ElementTypeOf<T>::value == file_->dtype());
    DRX_RETURN_IF_ERROR(check_index(index));
    const std::uint64_t q = file_->chunk_address(space_.chunk_of(index));
    const std::uint64_t off = space_.offset_in_chunk(index) * sizeof(T);
    DRX_ASSIGN_OR_RETURN(
        const bool bypassed,
        cache_.write_element_bypassed(
            q, off, std::as_bytes(std::span<const T>(&v, 1))));
    if (bypassed) return Status::ok();
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk, cache_.pin(q));
    std::memcpy(chunk.data() + off, &v, sizeof(T));
    cache_.unpin(q, /*dirty=*/true);
    return Status::ok();
  }

  /// Reads element box [box.lo, box.hi) into `out` (linearized in
  /// `order`) through the pool, announcing the whole box as a prefetch
  /// hint first so an async cache faults it with coalesced reads.
  Status read_box(const Box& box, MemoryOrder order, std::span<std::byte> out);

  /// Announces an upcoming read of `box` (see DrxFile::prefetch_box).
  void prefetch_box(const Box& box) { file_->prefetch_box(box); }

  Status flush() { return cache_.flush(); }
  [[nodiscard]] ChunkCache::Stats stats() const { return cache_.stats(); }
  [[nodiscard]] ChunkCache& cache() noexcept { return cache_; }

 private:
  Status check_index(std::span<const std::uint64_t> index) const {
    if (index.size() != file_->rank()) {
      return Status(ErrorCode::kInvalidArgument, "index rank mismatch");
    }
    for (std::size_t d = 0; d < index.size(); ++d) {
      if (index[d] >= file_->bounds()[d]) {
        return Status(ErrorCode::kOutOfRange, "element index out of bounds");
      }
    }
    return Status::ok();
  }

  DrxFile* file_;
  ChunkCache cache_;
  ChunkSpace space_;
};

}  // namespace drx::core
