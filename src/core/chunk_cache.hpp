// Chunk buffer pool for serial DRX (paper Sec. I: serial DRX maintains
// "I/O caching using the BerkeleyDB Mpool sub-system").
//
// A write-back LRU pool of fixed-size chunk buffers keyed by linear chunk
// address, with Mpool-style pin/unpin discipline: a pinned buffer cannot
// be evicted; unpinning with `dirty` schedules write-back. CachedDrxFile
// layers element/box access on top, so repeated touches to a hot chunk
// cost one I/O instead of one per element.
//
// Sharding (docs/SERVING.md): the pool is split into N lock shards keyed
// by a hash of the chunk address (DRX_CACHE_SHARDS; default 1 = the
// legacy single-lock cache). Each shard owns its own mutex, LRU list,
// ghost admission table, write-behind queue, and free-buffer pool, so
// concurrent clients touching different chunks contend on different
// locks. A shard whose frames are all pinned borrows capacity from a
// sibling through the ordered two-shard lock (ShardPairLock) instead of
// failing the pin — the ONLY sanctioned way to hold two shard mutexes at
// once (scripts/lint_drx.py: cache-shard-pair).
//
// Fast path: resident, clean-of-writers chunks are *published* to a
// per-shard table of atomic slots; a published chunk read
// (try_pin_fast / try_read_fast) takes NO mutex — it CAS-pins the slot,
// re-checks the address, copies, and release-unpins. Writers unpublish
// under the shard mutex and spin until fast pins drain, so the buffer is
// quiescent before any mutation. DRX_CACHE_FAST_READS=0 disables the
// path (ablation knob for benches). Memory-ordering proof sketch in
// docs/SERVING.md.
//
// Async engine (docs/ASYNC_IO.md): when constructed with io_threads > 0
// the cache runs on a drx::io::AsyncIoPool and becomes fully thread-safe:
//  - read-ahead: a detectably sequential miss run (consecutive miss
//    addresses) speculatively faults the next DRX_PREFETCH_DEPTH chunk
//    addresses into frames with ONE coalesced storage read, before they
//    are pinned;
//  - write-behind: dirty evictions enqueue their write-back instead of
//    blocking the evicting pin(); flush() is a barrier that drains the
//    queue and surfaces the first deferred error (sticky: last_error()
//    keeps reporting it, and the destructor logs it rather than dropping
//    a failed final flush on the floor).
// io_threads == 0 (the default) reproduces the synchronous legacy
// semantics exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/drx_file.hpp"
#include "core/scatter.hpp"
#include "io/async_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "io/config.hpp"
#include "io/prefetch.hpp"
#include "util/sync.hpp"

namespace drx::core {

class ChunkCache final : public io::PrefetchSink {
 private:
  /// One published-frame slot: `word` packs a valid bit (kFastValid) with
  /// a fast-pin count; `address`/`data` are written before the publishing
  /// release-store on `word`, so a reader that acquires the valid bit
  /// sees them (and the buffer fill that happened-before the publish).
  struct FastSlot {
    std::atomic<std::uint64_t> word{0};
    std::atomic<std::uint64_t> address{~std::uint64_t{0}};
    std::atomic<std::byte*> data{nullptr};
  };

 public:
  struct Stats {
    std::uint64_t hits = 0;         ///< includes fast_hits
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    // Async-engine counters (all zero in synchronous mode).
    std::uint64_t deferred_writebacks = 0;  ///< write-backs queued, not blocked on
    std::uint64_t write_queue_hits = 0;     ///< misses served from a queued write
    std::uint64_t prefetch_issued = 0;      ///< chunks speculatively requested
    std::uint64_t prefetch_useful = 0;      ///< prefetched chunks later pinned
    std::uint64_t prefetch_wasted = 0;      ///< prefetched chunks evicted unpinned
    std::uint64_t prefetch_waits = 0;       ///< pins that waited on an in-flight load
    // Admission-control counters (docs/PERFORMANCE.md).
    std::uint64_t admit_bypasses = 0;    ///< element misses served by direct I/O
    std::uint64_t admit_promotions = 0;  ///< ghost hits promoted to residency
    // Sharded-cache counters (docs/SERVING.md).
    std::uint64_t fast_hits = 0;         ///< lock-free resident-read hits
    std::uint64_t capacity_borrows = 0;  ///< frames moved between shards
  };

  /// Async-engine configuration; the default is fully synchronous.
  struct AsyncOptions {
    int io_threads = 0;               ///< 0 = legacy synchronous cache
    std::uint64_t prefetch_depth = 0; ///< read-ahead chunks (needs threads > 0)
    int shards = 0;  ///< lock shards; 0 = DRX_CACHE_SHARDS (unset -> 1)

    /// DRX_IO_THREADS / DRX_PREFETCH_DEPTH (or their test overrides).
    static AsyncOptions from_config() {
      return AsyncOptions{io::io_threads(), io::prefetch_depth(),
                          io::cache_shards()};
    }
  };

  /// `capacity` chunks stay resident. The cache serves exactly one
  /// DrxFile; the file must outlive the cache. This overload picks up the
  /// process async configuration (env knobs).
  ChunkCache(DrxFile& file, std::size_t capacity)
      : ChunkCache(file, capacity, AsyncOptions::from_config()) {}

  ChunkCache(DrxFile& file, std::size_t capacity, const AsyncOptions& async);

  /// Flushes (logging, not dropping, any write-back failure), then joins
  /// the I/O workers.
  ~ChunkCache() override;
  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Pins the chunk at linear address `address` into the pool, faulting it
  /// from the file on a miss, and returns its buffer. The buffer stays
  /// valid (and the frame unevictable) until the matching unpin().
  /// Thread-safe.
  ///
  /// `writable` declares intent to store through the returned span. A
  /// writable pin unpublishes the frame from the lock-free read table and
  /// drains concurrent fast readers first, so the stores never race a
  /// fast-path memcpy. Read-only pins (`writable == false`) leave the
  /// frame published. The default is writable (conservative: correct for
  /// every legacy caller); unpin() must be called with the same flag.
  [[nodiscard]] Result<std::span<std::byte>> pin(std::uint64_t address,
                                   bool writable = true);

  /// Releases a pin; `dirty` marks the buffer modified (written back on
  /// eviction or flush — write-back, not write-through). `writable` must
  /// match the pin() that is being released. Thread-safe.
  void unpin(std::uint64_t address, bool dirty, bool writable = true);

  /// RAII lock-free read pin on a published chunk. Holding one freezes
  /// the slot (unpublish spins until every FastPin drops), so bytes()
  /// stays valid and quiescent for the pin's lifetime.
  class FastPin {
   public:
    FastPin(FastPin&& other) noexcept
        : slot_(other.slot_), bytes_(other.bytes_) {
      other.slot_ = nullptr;
    }
    FastPin(const FastPin&) = delete;
    FastPin& operator=(const FastPin&) = delete;
    FastPin& operator=(FastPin&&) = delete;
    ~FastPin() {
      if (slot_ != nullptr) {
        slot_->word.fetch_sub(1, std::memory_order_release);
      }
    }
    [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
      return bytes_;
    }

   private:
    friend class ChunkCache;
    FastPin(FastSlot* slot, std::span<const std::byte> bytes) noexcept
        : slot_(slot), bytes_(bytes) {}
    FastSlot* slot_;
    std::span<const std::byte> bytes_;
  };

  /// Lock-free read pin: succeeds iff the chunk is resident, published,
  /// and DRX_CACHE_FAST_READS is on. Never blocks, never faults.
  [[nodiscard]] std::optional<FastPin> try_pin_fast(std::uint64_t address);

  /// Lock-free element read: copies out.size() bytes from `offset` within
  /// the chunk when the fast path applies; false = take the slow path.
  bool try_read_fast(std::uint64_t address, std::uint64_t offset,
                     std::span<std::byte> out);

  // ---- scan-resistant admission (DRX_CACHE_ADMIT, docs/PERFORMANCE.md) --
  // Element-granular access faults a whole chunk per miss, which LOSES to
  // raw 8-byte element I/O when the pattern has no reuse (uniform random
  // over an array that dwarfs the pool). These entry points consult the
  // admission policy first: a non-resident chunk with no demonstrated
  // reuse (no ghost-filter hit, not part of a sequential run) is NOT
  // admitted — the element moves with one direct storage request, exactly
  // what raw access would have cost — and its address is recorded in the
  // ghost filter so a re-touch promotes it to a resident frame.

  /// Admission-controlled element read at `offset` bytes into the chunk
  /// at `address`. Returns true when served by bypass I/O; false when the
  /// caller should pin() (chunk resident, pending, or admitted).
  [[nodiscard]] Result<bool> read_element_bypassed(std::uint64_t address,
                                     std::uint64_t offset,
                                     std::span<std::byte> out);

  /// Admission-controlled element write. Same contract; under an async
  /// cache writes always admit (a bypass write could race an in-flight
  /// speculative load and lose the update on eviction).
  [[nodiscard]] Result<bool> write_element_bypassed(std::uint64_t address,
                                      std::uint64_t offset,
                                      std::span<const std::byte> value);

  /// Barrier + write-back: drains in-flight read-ahead and write-behind,
  /// surfaces the first deferred write error, then writes back every
  /// dirty frame without evicting. A dirty frame that is still pinned is
  /// written after its last pin drops (flush waits for it — do not call
  /// flush() while holding a pin on this cache).
  [[nodiscard]] Status flush();

  /// Flush + drop all unpinned frames (cold-cache tool for benches).
  [[nodiscard]] Status invalidate();

  /// Speculatively faults chunks [first, first + count) into frames using
  /// one coalesced read on the I/O pool. Advisory: resident chunks, full
  /// capacity, or a synchronous cache reduce or drop the request. Never
  /// blocks on the I/O it starts.
  void prefetch(std::uint64_t first, std::uint64_t count);

  /// io::PrefetchSink — DrxFile::prefetch_box() lands here.
  void prefetch_range(std::uint64_t first, std::uint64_t count) override {
    prefetch(first, count);
  }

  /// First write-back failure observed (deferred or not). Sticky: remains
  /// observable after flush() has returned it.
  [[nodiscard]] Status last_error() const;

  /// True when the cache runs on worker threads (io_threads > 0).
  [[nodiscard]] bool async() const noexcept { return pool_ != nullptr; }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t resident() const;

  // ---- shard introspection (benches, drx_doctor imbalance feed) ---------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  /// Shard that owns `address` (stable for the cache's lifetime).
  [[nodiscard]] std::size_t shard_index(std::uint64_t address) const noexcept {
    return static_cast<std::size_t>(mix_address(address)) & shard_mask_;
  }
  /// Per-shard access totals (pins + fast reads + bypassed elements) —
  /// the load vector behind the cache-shard-imbalance doctor finding.
  [[nodiscard]] std::vector<std::uint64_t> shard_accesses() const;

 private:
  /// White-box shim for tests/core/test_chunk_cache_sharded.cpp: exposes
  /// ShardPairLock (self-pair and extreme-index coverage) without making
  /// the pairing primitive public API.
  friend struct ChunkCacheTestPeer;

  struct Frame {
    std::unique_ptr<std::byte[]> data;
    int pins = 0;
    int write_pins = 0;       ///< pins taken with writable intent
    bool dirty = false;
    bool loading = false;     ///< speculative/foreground fault in flight
    bool flushing = false;    ///< flush owns the buffer for a write-back
    bool prefetched = false;  ///< faulted ahead of demand, not yet pinned
    bool published = false;   ///< visible to the lock-free fast path
    std::list<std::uint64_t>::iterator lru_it;  ///< valid when in_lru
    bool in_lru = false;
  };

  /// A dirty buffer evicted under write-behind, keyed by address until its
  /// worker write completes. `seq` orders replacements: re-evicting the
  /// same address swaps the buffer and bumps seq, and the (single) job for
  /// the address re-writes until it observes a stable seq — so the newest
  /// data always lands last.
  struct PendingWrite {
    std::shared_ptr<std::byte[]> data;
    std::uint64_t seq = 0;
  };

  /// One lock shard: an independent cache slice over the addresses that
  /// hash to it. Lock order: a shard's `mu` may be held while taking the
  /// leaf locks seq_mu_ / error_mu_ / io_mu_; never another shard's `mu`
  /// except through ShardPairLock (lint: cache-shard-pair).
  struct Shard {
    mutable util::Mutex mu;
    util::CondVar cv;  ///< load completion / queue-drain signal
    std::unordered_map<std::uint64_t, Frame> frames DRX_GUARDED_BY(mu);
    /// Unpinned ready frames, front = MRU.
    std::list<std::uint64_t> lru DRX_GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, PendingWrite> pending_writes
        DRX_GUARDED_BY(mu);
    /// Recycled chunk-sized frame buffers (bounded by the shard capacity).
    std::vector<std::unique_ptr<std::byte[]>> free_buffers DRX_GUARDED_BY(mu);
    std::uint64_t loads_inflight DRX_GUARDED_BY(mu) = 0;  ///< prefetch jobs
    /// Flushes parked until a dirty frame's last pin drops (unpin notifies
    /// cv only while this is nonzero, keeping the unpin fast path quiet).
    std::size_t flush_waiters DRX_GUARDED_BY(mu) = 0;
    /// Frames this shard may hold; adaptive via capacity borrowing, total
    /// across shards conserved.
    std::size_t capacity DRX_GUARDED_BY(mu) = 0;
    Stats stats DRX_GUARDED_BY(mu);
    /// Ghost/probation filter for scan-resistant admission: a small
    /// direct-mapped table of recently bypassed chunk addresses (no
    /// buffers). A miss that finds its address here has demonstrated
    /// reuse and is admitted; everything else is served by bypass I/O.
    std::vector<std::uint64_t> ghost DRX_GUARDED_BY(mu);
    /// Published-frame table for the lock-free read path. The slots are
    /// written under `mu` (publish/unpublish) and read without it.
    std::unique_ptr<FastSlot[]> fast;
    std::size_t fast_mask = 0;
    /// Total accesses routed to this shard (imbalance detector feed).
    std::atomic<std::uint64_t> accesses{0};
    std::atomic<std::uint64_t> fast_hits{0};
  };

  /// Ordered two-shard acquisition: always locks the lower-indexed
  /// shard's mutex first, so concurrent pair holders cannot deadlock.
  /// A self-pair (a == b) collapses to a single acquisition, so callers
  /// routing two addresses need not special-case them hashing to the
  /// same shard (docs/LOCK_ORDER.md, cache.shard). The ONLY sanctioned
  /// way to hold two shard mutexes at once (drx_verify: lock-order).
  /// Callers re-assert the capabilities with shard.mu.assert_held().
  class ShardPairLock {
   public:
    ShardPairLock(ChunkCache& cache, std::size_t a, std::size_t b);
    ~ShardPairLock();
    ShardPairLock(const ShardPairLock&) = delete;
    ShardPairLock& operator=(const ShardPairLock&) = delete;

   private:
    util::Mutex& first_;
    util::Mutex& second_;
    const bool same_;  ///< a == b: second_ aliases first_, lock it once
  };

  /// splitmix64-style finalizer: decorrelates the shard choice from
  /// sequential chunk addresses so scans spread over all shards.
  [[nodiscard]] static std::uint64_t mix_address(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  [[nodiscard]] Shard& shard_of(std::uint64_t address) const noexcept {
    return shards_[shard_index(address)];
  }
  [[nodiscard]] std::size_t fast_slot_index(const Shard& s,
                                            std::uint64_t address)
      const noexcept {
    // Upper hash bits: independent of the (low-bit) shard selection.
    return static_cast<std::size_t>(mix_address(address) >> 32) & s.fast_mask;
  }
  void note_access(Shard& s, std::size_t index) const;

  [[nodiscard]] std::size_t chunk_size() const;

  /// Admission decision for an element-granular miss; updates the ghost
  /// filter and sequential-run tracker. True = serve by bypass I/O.
  [[nodiscard]] bool should_bypass_locked(Shard& s, std::uint64_t address,
                                          bool write) DRX_REQUIRES(s.mu);

  // All *_locked helpers require the owning shard's mu held.
  [[nodiscard]] Status evict_one_locked(Shard& s, util::MutexLock& lock,
                          std::vector<std::uint64_t>& write_submits)
      DRX_REQUIRES(s.mu);
  void queue_write_locked(Shard& s, std::uint64_t address,
                          std::unique_ptr<std::byte[]> data,
                          std::vector<std::uint64_t>& write_submits)
      DRX_REQUIRES(s.mu);
  void submit_writes(const std::vector<std::uint64_t>& addresses);

  /// Publishes `frame` to the fast-read table when eligible (resident,
  /// no writer pins, not loading/flushing/prefetched, slot free).
  void maybe_publish_locked(Shard& s, std::uint64_t address, Frame& frame)
      DRX_REQUIRES(s.mu);
  /// Withdraws `frame` from the fast-read table and spins until every
  /// fast pin drains — the buffer is quiescent when this returns.
  void unpublish_locked(Shard& s, std::uint64_t address, Frame& frame)
      DRX_REQUIRES(s.mu);

  /// Moves one frame of capacity from a sibling shard with slack to the
  /// shard at `home_index` (whose frames are all pinned). Called with NO
  /// shard lock held; takes the ordered pair lock internally.
  bool borrow_capacity(std::size_t home_index);

  /// Records a write-back failure in the sticky error state (leaf lock
  /// error_mu_). Returns true when `status` became the sticky error AND
  /// is not yet surfaced to a caller — the flight-dump trigger.
  bool record_error(const Status& status, bool surfaced);
  /// The sticky error if a caller has not seen it yet (marks surfaced).
  [[nodiscard]] Status take_unsurfaced_error();

  /// Reserves loading frames for a contiguous eligible run starting at
  /// `first`, locking one shard at a time; returns the run length
  /// (0 = nothing to do). Called with no shard lock held.
  std::uint64_t reserve_readahead(std::uint64_t first, std::uint64_t want);

  /// Chunk-sized frame buffer from the shard free list (evictions recycle
  /// their buffers there), allocating only when the list is empty — so
  /// the steady-state miss path never mallocs under the shard lock.
  [[nodiscard]] std::unique_ptr<std::byte[]> take_buffer_locked(Shard& s)
      DRX_REQUIRES(s.mu);
  void recycle_buffer_locked(Shard& s, std::unique_ptr<std::byte[]> buffer)
      DRX_REQUIRES(s.mu);

  // Pool jobs (run on workers; inline mode never reaches them).
  [[nodiscard]] Status run_write_job(std::uint64_t address);
  [[nodiscard]] Status run_prefetch_job(std::uint64_t first, std::uint64_t count);

  [[nodiscard]] Status flush_shard_sync_locked(Shard& s, util::MutexLock& lock)
      DRX_REQUIRES(s.mu);
  [[nodiscard]] Status flush_shard_async_locked(Shard& s, util::MutexLock& lock)
      DRX_REQUIRES(s.mu);

  DrxFile* file_;
  const std::size_t capacity_;
  std::uint64_t prefetch_depth_ = 0;
  bool fast_enabled_ = false;
  std::unique_ptr<io::AsyncIoPool> pool_;  ///< null = synchronous legacy mode

  std::size_t shard_count_ = 1;
  std::size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
  /// Interned per-shard access counters: core.cache.shard.<i>.accesses.
  std::vector<obs::MetricId> shard_access_ids_;

  // drx-lint: allow(unannotated-mutex-member) serializes access to the
  // caller-owned DrxFile; there is no member field to annotate.
  util::Mutex io_mu_;  ///< serializes DrxFile storage access (leaf)

  // Sequential-scan detector: a miss at last_miss_ + 1 extends the run;
  // anything else restarts it. Read-ahead fires once the run reaches
  // kSequentialThreshold, and sets last_miss_ to the end of the issued
  // window so prefetch hits keep the run alive. Global across shards
  // (consecutive addresses hash to different shards) under the leaf lock
  // seq_mu_.
  static constexpr int kSequentialThreshold = 2;
  static constexpr std::uint64_t kNoAddress = ~std::uint64_t{0};
  mutable util::Mutex seq_mu_;
  std::uint64_t last_miss_ DRX_GUARDED_BY(seq_mu_) = kNoAddress;
  int seq_run_ DRX_GUARDED_BY(seq_mu_) = 0;
  /// Last element-granular miss address (admitted or bypassed): a miss at
  /// +1 extends a sequential element scan and admits immediately, so a
  /// streaming sweep pays the probation fault only for its first chunk.
  std::uint64_t admit_last_miss_ DRX_GUARDED_BY(seq_mu_) = kNoAddress;

  /// First write-back failure (sticky), under the leaf lock error_mu_.
  mutable util::Mutex error_mu_;
  Status last_error_ DRX_GUARDED_BY(error_mu_);
  /// True until flush() returns the error once.
  bool error_unsurfaced_ DRX_GUARDED_BY(error_mu_) = false;
};

/// Element/box access through the pool. Same semantics as DrxFile element
/// and box I/O, but chunk-granular faults instead of per-call I/O.
class CachedDrxFile {
 public:
  CachedDrxFile(DrxFile& file, std::size_t capacity_chunks)
      : CachedDrxFile(file, capacity_chunks,
                      ChunkCache::AsyncOptions::from_config()) {}

  CachedDrxFile(DrxFile& file, std::size_t capacity_chunks,
                const ChunkCache::AsyncOptions& async)
      : file_(&file),
        cache_(file, capacity_chunks, async),
        space_(file.metadata().chunk_space()) {}

  template <typename T>
  [[nodiscard]] Result<T> get(std::span<const std::uint64_t> index) {
    obs::OpScope op("op.cached_get");
    DRX_CHECK(ElementTypeOf<T>::value == file_->dtype());
    DRX_RETURN_IF_ERROR(check_index(index));
    std::uint64_t q = 0;
    std::uint64_t off = 0;
    locate(index, q, off);
    off *= sizeof(T);
    T v{};
    // Lock-free path first: a published resident chunk costs two atomic
    // RMWs and a memcpy — no mutex, no admission check.
    if (cache_.try_read_fast(q, off,
                             std::as_writable_bytes(std::span<T>(&v, 1)))) {
      return v;
    }
    DRX_ASSIGN_OR_RETURN(
        const bool bypassed,
        cache_.read_element_bypassed(
            q, off, std::as_writable_bytes(std::span<T>(&v, 1))));
    if (bypassed) return v;
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk,
                         cache_.pin(q, /*writable=*/false));
    std::memcpy(&v, chunk.data() + off, sizeof(T));
    cache_.unpin(q, /*dirty=*/false, /*writable=*/false);
    return v;
  }

  template <typename T>
  [[nodiscard]] Status set(std::span<const std::uint64_t> index, const T& v) {
    obs::OpScope op("op.cached_set");
    DRX_CHECK(ElementTypeOf<T>::value == file_->dtype());
    DRX_RETURN_IF_ERROR(check_index(index));
    std::uint64_t q = 0;
    std::uint64_t off = 0;
    locate(index, q, off);
    off *= sizeof(T);
    DRX_ASSIGN_OR_RETURN(
        const bool bypassed,
        cache_.write_element_bypassed(
            q, off, std::as_bytes(std::span<const T>(&v, 1))));
    if (bypassed) return Status::ok();
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk,
                         cache_.pin(q, /*writable=*/true));
    std::memcpy(chunk.data() + off, &v, sizeof(T));
    cache_.unpin(q, /*dirty=*/true, /*writable=*/true);
    return Status::ok();
  }

  /// Reads element box [box.lo, box.hi) into `out` (linearized in
  /// `order`) through the pool. Chunks published to the lock-free table
  /// scatter without touching any mutex; the rest are announced as one
  /// prefetch hint (coalesced background faults) and pinned read-only.
  [[nodiscard]] Status read_box(const Box& box, MemoryOrder order, std::span<std::byte> out);

  /// Writes `in` (linearized in `order`) over element box
  /// [box.lo, box.hi) through the pool with writable pins and dirty
  /// unpins — write-back, not write-through.
  [[nodiscard]] Status write_box(const Box& box, MemoryOrder order,
                   std::span<const std::byte> in);

  /// Announces an upcoming read of `box` (see DrxFile::prefetch_box).
  void prefetch_box(const Box& box) { file_->prefetch_box(box); }

  [[nodiscard]] Status flush() { return cache_.flush(); }
  [[nodiscard]] ChunkCache::Stats stats() const { return cache_.stats(); }
  [[nodiscard]] ChunkCache& cache() noexcept { return cache_; }

 private:
  [[nodiscard]] Status check_index(std::span<const std::uint64_t> index) const {
    if (index.size() != file_->rank()) {
      return Status(ErrorCode::kInvalidArgument, "index rank mismatch");
    }
    for (std::size_t d = 0; d < index.size(); ++d) {
      if (index[d] >= file_->bounds()[d]) {
        return Status(ErrorCode::kOutOfRange, "element index out of bounds");
      }
    }
    return Status::ok();
  }

  // Allocation-free chunk/byte-offset resolution for the element paths.
  // The generic chunk_of/offset_in_chunk pair builds heap-backed Index
  // temporaries; three malloc/free rounds per 8-byte access would dwarf
  // the lock-free read they feed (docs/SERVING.md).
  static constexpr std::size_t kStackRank = 8;
  void locate(std::span<const std::uint64_t> index, std::uint64_t& chunk,
              std::uint64_t& offset) const {
    const std::size_t r = index.size();
    const Shape& cs = space_.chunk_shape();
    if (r <= kStackRank) {
      std::uint64_t chunk_c[kStackRank];
      std::uint64_t within[kStackRank];
      for (std::size_t d = 0; d < r; ++d) {
        chunk_c[d] = index[d] / cs[d];
        within[d] = index[d] % cs[d];
      }
      chunk = file_->chunk_address(
          std::span<const std::uint64_t>(chunk_c, r));
      offset = linearize(std::span<const std::uint64_t>(within, r), cs,
                         space_.in_chunk_order());
      return;
    }
    chunk = file_->chunk_address(space_.chunk_of(index));
    offset = space_.offset_in_chunk(index);
  }

  DrxFile* file_;
  ChunkCache cache_;
  ChunkSpace space_;
};

}  // namespace drx::core
