// Chunk buffer pool for serial DRX (paper Sec. I: serial DRX maintains
// "I/O caching using the BerkeleyDB Mpool sub-system").
//
// A write-back LRU pool of fixed-size chunk buffers keyed by linear chunk
// address, with Mpool-style pin/unpin discipline: a pinned buffer cannot
// be evicted; unpinning with `dirty` schedules write-back. CachedDrxFile
// layers element/box access on top, so repeated touches to a hot chunk
// cost one I/O instead of one per element.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>

#include "core/drx_file.hpp"

namespace drx::core {

class ChunkCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };

  /// `capacity` chunks stay resident. The cache serves exactly one
  /// DrxFile; the file must outlive the cache.
  ChunkCache(DrxFile& file, std::size_t capacity)
      : file_(&file), capacity_(capacity) {
    DRX_CHECK(capacity >= 1);
  }

  ~ChunkCache() { (void)flush(); }
  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Pins the chunk at linear address `address` into the pool, faulting it
  /// from the file on a miss, and returns its buffer. The buffer stays
  /// valid (and the frame unevictable) until the matching unpin().
  Result<std::span<std::byte>> pin(std::uint64_t address);

  /// Releases a pin; `dirty` marks the buffer modified (written back on
  /// eviction or flush — write-back, not write-through).
  void unpin(std::uint64_t address, bool dirty);

  /// Writes back every dirty frame (pinned or not) without evicting.
  Status flush();

  /// Flush + drop all unpinned frames (cold-cache tool for benches).
  Status invalidate();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resident() const noexcept {
    return frames_.size();
  }

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;
    int pins = 0;
    bool dirty = false;
    std::list<std::uint64_t>::iterator lru_it;  ///< valid when pins == 0
    bool in_lru = false;
  };

  Status evict_one();

  DrxFile* file_;
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Frame> frames_;
  std::list<std::uint64_t> lru_;  ///< unpinned frames, front = most recent
  Stats stats_;
};

/// Element/box access through the pool. Same semantics as DrxFile element
/// and box I/O, but chunk-granular faults instead of per-call I/O.
class CachedDrxFile {
 public:
  CachedDrxFile(DrxFile& file, std::size_t capacity_chunks)
      : file_(&file),
        cache_(file, capacity_chunks),
        space_(file.metadata().chunk_space()) {}

  template <typename T>
  Result<T> get(std::span<const std::uint64_t> index) {
    DRX_CHECK(ElementTypeOf<T>::value == file_->dtype());
    DRX_RETURN_IF_ERROR(check_index(index));
    const std::uint64_t q = file_->chunk_address(space_.chunk_of(index));
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk, cache_.pin(q));
    T v{};
    std::memcpy(&v,
                chunk.data() + space_.offset_in_chunk(index) * sizeof(T),
                sizeof(T));
    cache_.unpin(q, /*dirty=*/false);
    return v;
  }

  template <typename T>
  Status set(std::span<const std::uint64_t> index, const T& v) {
    DRX_CHECK(ElementTypeOf<T>::value == file_->dtype());
    DRX_RETURN_IF_ERROR(check_index(index));
    const std::uint64_t q = file_->chunk_address(space_.chunk_of(index));
    DRX_ASSIGN_OR_RETURN(std::span<std::byte> chunk, cache_.pin(q));
    std::memcpy(chunk.data() + space_.offset_in_chunk(index) * sizeof(T),
                &v, sizeof(T));
    cache_.unpin(q, /*dirty=*/true);
    return Status::ok();
  }

  Status flush() { return cache_.flush(); }
  [[nodiscard]] const ChunkCache::Stats& stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] ChunkCache& cache() noexcept { return cache_; }

 private:
  Status check_index(std::span<const std::uint64_t> index) const {
    if (index.size() != file_->rank()) {
      return Status(ErrorCode::kInvalidArgument, "index rank mismatch");
    }
    for (std::size_t d = 0; d < index.size(); ++d) {
      if (index[d] >= file_->bounds()[d]) {
        return Status(ErrorCode::kOutOfRange, "element index out of bounds");
      }
    }
    return Status::ok();
  }

  DrxFile* file_;
  ChunkCache cache_;
  ChunkSpace space_;
};

}  // namespace drx::core
