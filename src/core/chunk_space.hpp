// Element-space <-> chunk-space geometry.
//
// The extendible array has two coordinate systems: *element* indices
// (bounded by the array bounds N_i, extendible by arbitrary deltas) and
// *chunk* indices (the grid the axial mapping addresses). A chunk is a
// fixed-shape k-dimensional block; boundary chunks are allocated at full
// chunk size with unused slots, so the element bound need not fall on a
// chunk boundary (paper Sec. II-A: N_1 = 10 inside a 4-chunk-wide grid).
#pragma once

#include <cstdint>
#include <span>

#include "core/coords.hpp"
#include "core/types.hpp"
#include "util/checked.hpp"

namespace drx::core {

class ChunkSpace {
 public:
  /// `chunk_shape` elements per chunk along each dimension (all >= 1).
  /// `in_chunk_order` fixes the element layout inside a chunk.
  ChunkSpace(Shape chunk_shape, MemoryOrder in_chunk_order)
      : shape_(std::move(chunk_shape)), order_(in_chunk_order) {
    DRX_CHECK(!shape_.empty());
    for (std::uint64_t c : shape_) DRX_CHECK(c >= 1);
    elements_per_chunk_ = checked_product(shape_);
  }

  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] const Shape& chunk_shape() const noexcept { return shape_; }
  [[nodiscard]] MemoryOrder in_chunk_order() const noexcept { return order_; }
  [[nodiscard]] std::uint64_t elements_per_chunk() const noexcept {
    return elements_per_chunk_;
  }

  /// Chunk-grid bounds covering `element_bounds` (ceil division per dim).
  [[nodiscard]] Shape chunk_bounds_for(
      std::span<const std::uint64_t> element_bounds) const {
    DRX_CHECK(element_bounds.size() == rank());
    Shape cb(rank());
    for (std::size_t d = 0; d < rank(); ++d) {
      // A zero element bound still occupies one chunk row so the chunk
      // grid stays a valid (>=1-per-dim) extendible grid.
      cb[d] = element_bounds[d] == 0 ? 1 : ceil_div(element_bounds[d],
                                                    shape_[d]);
    }
    return cb;
  }

  /// Chunk coordinate containing an element index.
  [[nodiscard]] Index chunk_of(std::span<const std::uint64_t> element) const {
    Index c(rank());
    for (std::size_t d = 0; d < rank(); ++d) c[d] = element[d] / shape_[d];
    return c;
  }

  /// Linear offset of an element within its chunk, in the in-chunk order.
  [[nodiscard]] std::uint64_t offset_in_chunk(
      std::span<const std::uint64_t> element) const {
    Index within(rank());
    for (std::size_t d = 0; d < rank(); ++d) {
      within[d] = element[d] % shape_[d];
    }
    return linearize(within, shape_, order_);
  }

  /// Element box covered by chunk `chunk` (unclipped; callers clip to the
  /// array bounds for boundary chunks).
  [[nodiscard]] Box chunk_box(std::span<const std::uint64_t> chunk) const {
    Box box;
    box.lo.resize(rank());
    box.hi.resize(rank());
    for (std::size_t d = 0; d < rank(); ++d) {
      box.lo[d] = checked_mul(chunk[d], shape_[d]);
      box.hi[d] = box.lo[d] + shape_[d];
    }
    return box;
  }

  /// Chunk-coordinate box covering an element box (half-open).
  [[nodiscard]] Box covering_chunks(const Box& element_box) const {
    DRX_CHECK(element_box.rank() == rank());
    Box out;
    out.lo.resize(rank());
    out.hi.resize(rank());
    for (std::size_t d = 0; d < rank(); ++d) {
      out.lo[d] = element_box.lo[d] / shape_[d];
      out.hi[d] = ceil_div(element_box.hi[d], shape_[d]);
    }
    return out;
  }

 private:
  Shape shape_;
  MemoryOrder order_;
  std::uint64_t elements_per_chunk_ = 0;
};

}  // namespace drx::core
