#include "core/drx_file.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <vector>

#include "core/scatter.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/opctx.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace drx::core {

namespace {

/// Slot reservation for `stored` bytes: ~12.5% headroom rounded up to
/// 64 so most re-encodes of mutated chunks still fit in place, capped
/// at the raw chunk size (a slot never needs more — incompressible
/// chunks are stored raw).
std::uint64_t slot_capacity(std::uint64_t stored, std::uint64_t chunk_sz) {
  const std::uint64_t padded = (stored + stored / 8 + 63) / 64 * 64;
  return std::min(chunk_sz, std::max<std::uint64_t>(padded, 64));
}

/// raw bytes / elapsed microseconds ~= MB/s: the effective-bandwidth
/// histogram of docs/COMPRESSION.md (what the consumer *observed*,
/// decode included, vs bytes that actually crossed the storage).
void record_effective_read_bw(std::size_t raw_bytes,
                              std::chrono::steady_clock::time_point start) {
  static const obs::MetricId kBw =
      obs::histogram_id("core.codec.effective_read_mbps");
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  const auto us = std::max<std::int64_t>(1, ns / 1000);
  obs::registry()
      .histogram(kBw)
      .observe(static_cast<std::uint64_t>(raw_bytes) /
               static_cast<std::uint64_t>(us));
}

}  // namespace

Result<DrxFile> DrxFile::create(std::unique_ptr<pfs::Storage> meta_storage,
                                std::unique_ptr<pfs::Storage> data_storage,
                                Shape element_bounds, Shape chunk_shape,
                                const Options& options) {
  if (element_bounds.size() != chunk_shape.size() || element_bounds.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "element bounds and chunk shape must have equal rank >= 1");
  }
  for (std::uint64_t c : chunk_shape) {
    if (c == 0) {
      return Status(ErrorCode::kInvalidArgument, "zero chunk extent");
    }
  }
  Metadata meta(options.dtype, options.in_chunk_order,
                std::move(element_bounds), std::move(chunk_shape));
  meta.codec = options.codec.value_or(codec::default_codec());
  if (meta.compressed() &&
      meta.chunk_bytes() > std::numeric_limits<std::uint32_t>::max()) {
    return Status(ErrorCode::kUnsupported,
                  "chunk too large for the per-chunk slot table");
  }
  DrxFile file(std::move(meta_storage), std::move(data_storage),
               std::move(meta));
  // Zero-initialize the initial allocation so every allocated chunk is
  // readable immediately.
  DRX_RETURN_IF_ERROR(file.data_->truncate(0));
  if (file.compressed()) {
    DRX_RETURN_IF_ERROR(file.append_zero_chunks(0));
  } else if (file.meta_.data_file_bytes() > 0) {
    std::vector<std::byte> zeros(checked_size(file.meta_.chunk_bytes()),
                                 std::byte{0});
    for (std::uint64_t q = 0; q < file.meta_.mapping.total_chunks(); ++q) {
      DRX_RETURN_IF_ERROR(
          file.data_->write_at(q * file.meta_.chunk_bytes(), zeros));
    }
  }
  DRX_RETURN_IF_ERROR(file.flush());
  return file;
}

Result<DrxFile> DrxFile::open(std::unique_ptr<pfs::Storage> meta_storage,
                              std::unique_ptr<pfs::Storage> data_storage) {
  std::vector<std::byte> image(
      checked_size(meta_storage->size()));
  DRX_RETURN_IF_ERROR(meta_storage->read_at(0, image));
  DRX_ASSIGN_OR_RETURN(Metadata meta, Metadata::from_bytes(image));
  if (data_storage->size() < meta.stored_data_bytes()) {
    return Status(ErrorCode::kCorrupt,
                  ".xta smaller than the metadata requires");
  }
  return DrxFile(std::move(meta_storage), std::move(data_storage),
                 std::move(meta));
}

Result<DrxFile> DrxFile::create_posix(const std::string& name,
                                      Shape element_bounds, Shape chunk_shape,
                                      const Options& options) {
  DRX_ASSIGN_OR_RETURN(auto meta_storage,
                       pfs::PosixStorage::open(name + ".xmd"));
  DRX_ASSIGN_OR_RETURN(auto data_storage,
                       pfs::PosixStorage::open(name + ".xta"));
  return create(std::move(meta_storage), std::move(data_storage),
                std::move(element_bounds), std::move(chunk_shape), options);
}

Result<DrxFile> DrxFile::open_posix(const std::string& name) {
  DRX_ASSIGN_OR_RETURN(auto meta_storage,
                       pfs::PosixStorage::open(name + ".xmd"));
  DRX_ASSIGN_OR_RETURN(auto data_storage,
                       pfs::PosixStorage::open(name + ".xta"));
  return open(std::move(meta_storage), std::move(data_storage));
}

Status DrxFile::flush() {
  const std::vector<std::byte> image = meta_.to_bytes();
  DRX_RETURN_IF_ERROR(meta_store_->write_at(0, image));
  DRX_RETURN_IF_ERROR(meta_store_->flush());
  return data_->flush();
}

Status DrxFile::extend(std::size_t dim, std::uint64_t delta) {
  obs::OpScope op("op.extend");
  if (dim >= rank()) {
    return Status(ErrorCode::kInvalidArgument, "dimension out of range");
  }
  if (delta == 0) return Status::ok();

  if (const auto first = meta_.extend_elements(dim, delta)) {
    if (compressed()) {
      DRX_RETURN_IF_ERROR(append_zero_chunks(*first));
    } else {
      // Zero-fill the appended segment (it is physically contiguous:
      // new chunks always append to the file).
      const std::uint64_t chunk_sz = meta_.chunk_bytes();
      std::vector<std::byte> zeros(checked_size(chunk_sz), std::byte{0});
      for (std::uint64_t q = *first; q < meta_.mapping.total_chunks(); ++q) {
        DRX_RETURN_IF_ERROR(data_->write_at(q * chunk_sz, zeros));
      }
    }
  }
  return flush();
}

Status DrxFile::check_index(std::span<const std::uint64_t> index) const {
  if (index.size() != rank()) {
    return Status(ErrorCode::kInvalidArgument, "index rank mismatch");
  }
  for (std::size_t d = 0; d < rank(); ++d) {
    if (index[d] >= meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "element index out of bounds");
    }
  }
  return Status::ok();
}

Status DrxFile::read_element(std::span<const std::uint64_t> index,
                             std::span<std::byte> out) {
  obs::OpScope op("op.read_element");
  DRX_RETURN_IF_ERROR(check_index(index));
  DRX_CHECK(out.size() == element_bytes());
  const Index chunk = chunk_space_.chunk_of(index);
  const std::uint64_t q = meta_.mapping.address_of(chunk);
  const std::uint64_t off = chunk_space_.offset_in_chunk(index);
  if (compressed()) {
    // Sub-chunk byte offsets have no storage address once chunks are
    // encoded: decode the whole chunk and pick the element out.
    std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
    DRX_RETURN_IF_ERROR(read_chunk(q, chunk_buf));
    std::memcpy(out.data(),
                chunk_buf.data() + checked_size(checked_mul(off, element_bytes())),
                checked_size(element_bytes()));
    return Status::ok();
  }
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->read_at(
      checked_add(checked_mul(q, meta_.chunk_bytes()),
                  checked_mul(off, element_bytes())),
      out);
}

Status DrxFile::write_element(std::span<const std::uint64_t> index,
                              std::span<const std::byte> value) {
  obs::OpScope op("op.write_element");
  DRX_RETURN_IF_ERROR(check_index(index));
  DRX_CHECK(value.size() == element_bytes());
  const Index chunk = chunk_space_.chunk_of(index);
  const std::uint64_t q = meta_.mapping.address_of(chunk);
  const std::uint64_t off = chunk_space_.offset_in_chunk(index);
  if (compressed()) {
    // Whole-chunk read-modify-write: the encoded neighbours share the
    // stored stream with this element.
    std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
    DRX_RETURN_IF_ERROR(read_chunk(q, chunk_buf));
    std::memcpy(chunk_buf.data() +
                    checked_size(checked_mul(off, element_bytes())),
                value.data(), checked_size(element_bytes()));
    return write_chunk(q, chunk_buf);
  }
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->write_at(
      checked_add(checked_mul(q, meta_.chunk_bytes()),
                  checked_mul(off, element_bytes())),
      value);
}

void DrxFile::scatter_chunk(std::span<const std::byte> chunk, const Box& clip,
                            const Box& box, MemoryOrder order,
                            std::span<std::byte> out) const {
  if (clip.empty()) return;
  obs::StageTimer copy(obs::Stage::kCopy);
  plan_cache_->scatter(clip, box, order, chunk, out);
}

void DrxFile::gather_chunk(std::span<std::byte> chunk, const Box& clip,
                           const Box& box, MemoryOrder order,
                           std::span<const std::byte> in) const {
  if (clip.empty()) return;
  obs::StageTimer copy(obs::Stage::kCopy);
  plan_cache_->gather(clip, box, order, chunk, in);
}

std::vector<std::pair<std::uint64_t, Index>> DrxFile::chunks_by_address(
    const Box& box) const {
  std::vector<std::pair<std::uint64_t, Index>> chunks;
  for_each_index(chunk_space_.covering_chunks(box), [&](const Index& cidx) {
    chunks.emplace_back(meta_.mapping.address_of(cidx), cidx);
  });
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return chunks;
}

Status DrxFile::read_box(const Box& box, MemoryOrder order,
                         std::span<std::byte> out) {
  obs::OpScope op("op.read_box");
  if (box.rank() != rank()) {
    return Status(ErrorCode::kInvalidArgument, "box rank mismatch");
  }
  for (std::size_t d = 0; d < rank(); ++d) {
    if (box.hi[d] > meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "box exceeds array bounds");
    }
  }
  DRX_CHECK(out.size() == checked_mul(box.volume(), element_bytes()));
  if (box.empty()) return Status::ok();

  std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
  Status status;
  for (const auto& [q, cidx] : chunks_by_address(box)) {
    status = read_chunk(q, chunk_buf);
    if (!status.is_ok()) break;
    const Box clip = chunk_space_.chunk_box(cidx).intersect(box);
    scatter_chunk(chunk_buf, clip, box, order, out);
  }
  return status;
}

Status DrxFile::write_box(const Box& box, MemoryOrder order,
                          std::span<const std::byte> in) {
  obs::OpScope op("op.write_box");
  if (box.rank() != rank()) {
    return Status(ErrorCode::kInvalidArgument, "box rank mismatch");
  }
  for (std::size_t d = 0; d < rank(); ++d) {
    if (box.hi[d] > meta_.element_bounds[d]) {
      return Status(ErrorCode::kOutOfRange, "box exceeds array bounds");
    }
  }
  DRX_CHECK(in.size() == checked_mul(box.volume(), element_bytes()));
  if (box.empty()) return Status::ok();

  std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
  Status status;
  for (const auto& [q, cidx] : chunks_by_address(box)) {
    const Box chunk_box = chunk_space_.chunk_box(cidx);
    const Box clip = chunk_box.intersect(box);
    // Read-modify-write unless the chunk is fully covered by the box.
    if (clip == chunk_box) {
      std::memset(chunk_buf.data(), 0, chunk_buf.size());
    } else {
      status = read_chunk(q, chunk_buf);
      if (!status.is_ok()) break;
    }
    gather_chunk(chunk_buf, clip, box, order, in);
    status = write_chunk(q, chunk_buf);
    if (!status.is_ok()) break;
  }
  return status;
}

Status DrxFile::scan_read_all(MemoryOrder order, std::span<std::byte> out) {
  obs::OpScope op("op.scan_read_all");
  const Box full{Index(rank(), 0), meta_.element_bounds};
  DRX_CHECK(out.size() == checked_mul(full.volume(), element_bytes()));
  std::vector<std::byte> chunk_buf(checked_size(meta_.chunk_bytes()));
  // One strictly sequential pass over the .xta file; F*^-1 recovers each
  // chunk's grid coordinates for placement.
  for (std::uint64_t q = 0; q < meta_.mapping.total_chunks(); ++q) {
    DRX_RETURN_IF_ERROR(read_chunk(q, chunk_buf));
    const Index cidx = meta_.mapping.index_of(q);
    const Box clip = chunk_space_.chunk_box(cidx).intersect(full);
    if (clip.empty()) continue;  // chunk entirely in the slack region
    scatter_chunk(chunk_buf, clip, full, order, out);
  }
  return Status::ok();
}

Status DrxFile::read_chunk(std::uint64_t address, std::span<std::byte> out) {
  DRX_CHECK(out.size() == meta_.chunk_bytes());
  if (compressed()) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::byte> scratch;
    DRX_ASSIGN_OR_RETURN(EncodedChunk enc, read_chunk_stored(address, scratch));
    DRX_RETURN_IF_ERROR(decode_chunk(enc.codec, enc.bytes, out));
    record_effective_read_bw(out.size(), start);
    return Status::ok();
  }
  static const obs::MetricId kReads = obs::counter_id("core.chunk_reads");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_read");
  obs::registry().counter(kReads).add();
  obs::registry().counter(kBytes).add(out.size());
  obs::profile_chunk(obs::ChunkOp::kRead, address, out.size());
  obs::ScopedSpan span("core.read_chunk", "core", out.size());
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->read_at(checked_mul(address, meta_.chunk_bytes()), out);
}

Status DrxFile::read_chunks(std::uint64_t first_address, std::uint64_t count,
                            std::span<std::byte> out) {
  DRX_CHECK(out.size() == checked_mul(count, meta_.chunk_bytes()));
  if (count == 0) return Status::ok();
  if (compressed()) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t cb = checked_size(meta_.chunk_bytes());
    std::vector<std::byte> scratch;
    std::vector<StoredRef> refs;
    DRX_RETURN_IF_ERROR(read_chunks_stored(first_address, count, scratch, refs));
    for (std::size_t i = 0; i < refs.size(); ++i) {
      DRX_RETURN_IF_ERROR(decode_chunk(
          refs[i].codec,
          std::span<const std::byte>(scratch.data() + refs[i].offset,
                                     refs[i].size),
          out.subspan(i * cb, cb)));
    }
    record_effective_read_bw(out.size(), start);
    return Status::ok();
  }
  static const obs::MetricId kReads = obs::counter_id("core.chunk_reads");
  static const obs::MetricId kBatches =
      obs::counter_id("core.chunk_read_batches");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_read");
  obs::registry().counter(kReads).add(count);
  obs::registry().counter(kBatches).add();
  obs::registry().counter(kBytes).add(out.size());
  if (obs::profile_enabled()) {
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::profile_chunk(obs::ChunkOp::kRead, first_address + i,
                         meta_.chunk_bytes());
    }
  }
  obs::ScopedSpan span("core.read_chunks_batch", "core", out.size());
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->read_at(checked_mul(first_address, meta_.chunk_bytes()), out);
}

void DrxFile::prefetch_box(const Box& box) {
  if (prefetch_sink_ == nullptr) return;
  const Box clipped = box.intersect(Box{Index(rank(), 0), bounds()});
  if (clipped.empty()) return;
  // Element box -> covering chunk-index box -> sorted linear addresses ->
  // maximal contiguous runs, one hint per run.
  Box chunks(Index(rank(), 0), Index(rank(), 0));
  for (std::size_t d = 0; d < rank(); ++d) {
    chunks.lo[d] = clipped.lo[d] / meta_.chunk_shape[d];
    chunks.hi[d] = (clipped.hi[d] - 1) / meta_.chunk_shape[d] + 1;
  }
  std::vector<std::uint64_t> addresses;
  addresses.reserve(checked_size(chunks.volume()));
  for_each_index(chunks, [&](const Index& c) {
    addresses.push_back(meta_.mapping.address_of(c));
  });
  std::sort(addresses.begin(), addresses.end());
  std::size_t run_begin = 0;
  for (std::size_t i = 1; i <= addresses.size(); ++i) {
    if (i == addresses.size() || addresses[i] != addresses[i - 1] + 1) {
      prefetch_sink_->prefetch_range(addresses[run_begin],
                                     static_cast<std::uint64_t>(i - run_begin));
      run_begin = i;
    }
  }
}

Status DrxFile::write_chunk(std::uint64_t address,
                            std::span<const std::byte> in) {
  DRX_CHECK(in.size() == meta_.chunk_bytes());
  if (compressed()) {
    std::vector<std::byte> scratch;
    const EncodedChunk enc = encode_chunk(in, scratch);
    return write_chunk_encoded(address, enc);
  }
  static const obs::MetricId kWrites = obs::counter_id("core.chunk_writes");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_written");
  obs::registry().counter(kWrites).add();
  obs::registry().counter(kBytes).add(in.size());
  obs::profile_chunk(obs::ChunkOp::kWrite, address, in.size());
  obs::ScopedSpan span("core.write_chunk", "core", in.size());
  sample_write_entropy(in);
  obs::StageTimer io(obs::Stage::kIoService);
  return data_->write_at(checked_mul(address, meta_.chunk_bytes()), in);
}

// ---- split codec / storage API (docs/COMPRESSION.md) --------------------

DrxFile::EncodedChunk DrxFile::encode_chunk(
    std::span<const std::byte> raw, std::vector<std::byte>& scratch) const {
  DRX_CHECK(raw.size() == meta_.chunk_bytes());
  if (!compressed()) return EncodedChunk{codec::CodecId::kNone, raw};
  static const obs::MetricId kEncodeUs =
      obs::histogram_id("core.codec.encode_us");
  scratch.resize(codec::max_encoded_bytes(raw.size(),
                                          checked_size(element_bytes())));
  std::size_t n = 0;
  {
    obs::ScopedTimer timer(kEncodeUs);
    n = codec::encode(meta_.codec, raw, checked_size(element_bytes()),
                      scratch);
  }
  if (n == 0) return EncodedChunk{codec::CodecId::kNone, raw};
  return EncodedChunk{meta_.codec,
                      std::span<const std::byte>(scratch.data(), n)};
}

Status DrxFile::write_chunk_encoded(std::uint64_t address,
                                    const EncodedChunk& enc) {
  if (!compressed()) {
    DRX_CHECK(enc.codec == codec::CodecId::kNone);
    return write_chunk(address, enc.bytes);
  }
  if (address >= meta_.chunk_table.size()) {
    return Status(ErrorCode::kOutOfRange, "chunk address out of range");
  }
  static const obs::MetricId kWrites = obs::counter_id("core.chunk_writes");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_written");
  static const obs::MetricId kRaw = obs::counter_id("core.codec.bytes_raw");
  static const obs::MetricId kStored =
      obs::counter_id("core.codec.bytes_stored");
  static const obs::MetricId kRelocs =
      obs::counter_id("core.codec.slot_relocations");
  static const obs::MetricId kFrag =
      obs::counter_id("core.codec.frag_bytes");
  const std::uint64_t cb = meta_.chunk_bytes();
  obs::registry().counter(kWrites).add();
  obs::registry().counter(kBytes).add(cb);  // logical bytes, as ever
  obs::registry().counter(kRaw).add(cb);
  obs::registry().counter(kStored).add(enc.bytes.size());
  obs::profile_chunk(obs::ChunkOp::kWrite, address, cb);
  obs::ScopedSpan span("core.write_chunk", "core", enc.bytes.size());

  ChunkSlot& slot = meta_.chunk_table[address];
  const auto stored = static_cast<std::uint32_t>(enc.bytes.size());
  obs::StageTimer io(obs::Stage::kIoService);
  if (stored <= slot.capacity) {
    DRX_RETURN_IF_ERROR(data_->write_at(slot.offset, enc.bytes));
  } else {
    // Doesn't fit: relocate to the end of the file; the old slot leaks
    // (append-only, like extension — drx_inspect reports the frag).
    const std::uint64_t offset = meta_.data_end;
    DRX_RETURN_IF_ERROR(data_->write_at(offset, enc.bytes));
    obs::registry().counter(kRelocs).add();
    obs::registry().counter(kFrag).add(slot.capacity);
    slot.offset = offset;
    slot.capacity = static_cast<std::uint32_t>(slot_capacity(stored, cb));
    meta_.data_end = checked_add(offset, slot.capacity);
  }
  slot.stored = stored;
  slot.codec = static_cast<std::uint8_t>(enc.codec);
  return Status::ok();
}

Result<DrxFile::EncodedChunk> DrxFile::read_chunk_stored(
    std::uint64_t address, std::vector<std::byte>& scratch) {
  const std::uint64_t cb = meta_.chunk_bytes();
  static const obs::MetricId kReads = obs::counter_id("core.chunk_reads");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_read");
  obs::registry().counter(kReads).add();
  obs::registry().counter(kBytes).add(cb);  // logical bytes, as ever
  obs::profile_chunk(obs::ChunkOp::kRead, address, checked_size(cb));
  if (!compressed()) {
    scratch.resize(checked_size(cb));
    obs::ScopedSpan span("core.read_chunk", "core", scratch.size());
    obs::StageTimer io(obs::Stage::kIoService);
    DRX_RETURN_IF_ERROR(data_->read_at(checked_mul(address, cb), scratch));
    return EncodedChunk{codec::CodecId::kNone,
                        std::span<const std::byte>(scratch)};
  }
  if (address >= meta_.chunk_table.size()) {
    return Status(ErrorCode::kOutOfRange, "chunk address out of range");
  }
  const ChunkSlot& slot = meta_.chunk_table[address];
  scratch.resize(slot.stored);
  obs::ScopedSpan span("core.read_chunk", "core", scratch.size());
  obs::StageTimer io(obs::Stage::kIoService);
  DRX_RETURN_IF_ERROR(data_->read_at(slot.offset, scratch));
  return EncodedChunk{static_cast<codec::CodecId>(slot.codec),
                      std::span<const std::byte>(scratch)};
}

Status DrxFile::decode_chunk(codec::CodecId chunk_codec,
                             std::span<const std::byte> stored,
                             std::span<std::byte> raw) const {
  DRX_CHECK(raw.size() == meta_.chunk_bytes());
  static const obs::MetricId kDecodeUs =
      obs::histogram_id("core.codec.decode_us");
  Status st;
  {
    obs::ScopedTimer timer(kDecodeUs);
    st = codec::decode(chunk_codec, stored, checked_size(element_bytes()),
                       raw);
  }
  if (!st.is_ok() && obs::flight_enabled()) {
    // Same discipline as deferred write-back errors: capture the causal
    // context the moment damage is detected — the clean kCorrupt Status
    // still propagates to the caller.
    const Status ds = obs::dump_flight("corrupt-chunk");
    if (!ds.is_ok()) {
      DRX_LOG(kError) << "flight dump failed: " << ds.to_string();
    }
  }
  return st;
}

Status DrxFile::read_chunks_stored(std::uint64_t first_address,
                                   std::uint64_t count,
                                   std::vector<std::byte>& scratch,
                                   std::vector<StoredRef>& refs) {
  refs.clear();
  scratch.clear();
  if (count == 0) return Status::ok();
  const std::uint64_t cb = meta_.chunk_bytes();
  if (!compressed()) {
    scratch.resize(checked_size(checked_mul(count, cb)));
    DRX_RETURN_IF_ERROR(read_chunks(first_address, count, scratch));
    refs.reserve(checked_size(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      refs.push_back(StoredRef{codec::CodecId::kNone,
                               checked_size(checked_mul(i, cb)),
                               static_cast<std::uint32_t>(cb)});
    }
    return Status::ok();
  }
  if (first_address + count > meta_.chunk_table.size()) {
    return Status(ErrorCode::kOutOfRange, "chunk range out of range");
  }
  static const obs::MetricId kReads = obs::counter_id("core.chunk_reads");
  static const obs::MetricId kBatches =
      obs::counter_id("core.chunk_read_batches");
  static const obs::MetricId kBytes = obs::counter_id("core.bytes_read");
  obs::registry().counter(kReads).add(count);
  obs::registry().counter(kBatches).add();
  obs::registry().counter(kBytes).add(checked_mul(count, cb));
  if (obs::profile_enabled()) {
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::profile_chunk(obs::ChunkOp::kRead, first_address + i,
                         checked_size(cb));
    }
  }

  // Slots of consecutive addresses are usually physically consecutive
  // (they were created in address order): fetch the whole byte span in
  // one request when it is dense enough, else fall back to one request
  // per chunk packed tight into the scratch buffer.
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  std::uint64_t hi_cap = 0;
  std::uint64_t live = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const ChunkSlot& s = meta_.chunk_table[first_address + i];
    lo = std::min(lo, s.offset);
    hi = std::max(hi, s.offset + s.stored);
    hi_cap = std::max(hi_cap, s.offset + s.capacity);
    live += s.stored;
  }
  // Read through the last slot's capacity slack (when those bytes exist on
  // disk) so consecutive batch reads over a packed layout stay
  // head-contiguous — a streaming scan then costs one seek total, not one
  // per batch.
  hi = std::max(hi, std::min(hi_cap, data_->size()));
  const std::uint64_t span_bytes = hi - lo;
  obs::ScopedSpan span("core.read_chunks_batch", "core",
                       checked_size(live));
  refs.reserve(checked_size(count));
  if (live * 2 >= span_bytes) {
    scratch.resize(checked_size(span_bytes));
    obs::StageTimer io(obs::Stage::kIoService);
    DRX_RETURN_IF_ERROR(data_->read_at(lo, scratch));
    for (std::uint64_t i = 0; i < count; ++i) {
      const ChunkSlot& s = meta_.chunk_table[first_address + i];
      refs.push_back(StoredRef{static_cast<codec::CodecId>(s.codec),
                               checked_size(s.offset - lo), s.stored});
    }
    return Status::ok();
  }
  scratch.resize(checked_size(live));
  std::size_t pos = 0;
  obs::StageTimer io(obs::Stage::kIoService);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ChunkSlot& s = meta_.chunk_table[first_address + i];
    DRX_RETURN_IF_ERROR(data_->read_at(
        s.offset, std::span<std::byte>(scratch.data() + pos, s.stored)));
    refs.push_back(StoredRef{static_cast<codec::CodecId>(s.codec), pos,
                             s.stored});
    pos += s.stored;
  }
  return Status::ok();
}

Status DrxFile::append_zero_chunks(std::uint64_t first) {
  const std::uint64_t cb = meta_.chunk_bytes();
  std::vector<std::byte> zeros(checked_size(cb), std::byte{0});
  std::vector<std::byte> scratch;
  // All appended chunks share one encoded image (but each gets its own
  // slot so later rewrites stay independent).
  const EncodedChunk enc = encode_chunk(zeros, scratch);
  const std::uint64_t total = meta_.mapping.total_chunks();
  const auto stored = static_cast<std::uint32_t>(enc.bytes.size());
  const auto cap = static_cast<std::uint32_t>(slot_capacity(stored, cb));
  static const obs::MetricId kRaw = obs::counter_id("core.codec.bytes_raw");
  static const obs::MetricId kStored =
      obs::counter_id("core.codec.bytes_stored");
  meta_.chunk_table.resize(checked_size(total));
  for (std::uint64_t q = first; q < total; ++q) {
    const std::uint64_t offset = meta_.data_end;
    DRX_RETURN_IF_ERROR(data_->write_at(offset, enc.bytes));
    meta_.chunk_table[q] = ChunkSlot{
        offset, stored, cap, static_cast<std::uint8_t>(enc.codec)};
    meta_.data_end = checked_add(offset, cap);
    obs::registry().counter(kRaw).add(cb);
    obs::registry().counter(kStored).add(stored);
  }
  return Status::ok();
}

void DrxFile::sample_write_entropy(std::span<const std::byte> in) {
  // Every ~64th raw chunk write: trial-encode a bounded prefix so
  // drx_doctor can hint when DRX_COMPRESS would pay. Amortized cost is
  // a <=4KiB scan per 64 chunk writes.
  if ((write_sample_clock_++ & 63) != 0) return;
  static const obs::MetricId kSamples =
      obs::counter_id("core.codec.samples");
  static const obs::MetricId kRatio =
      obs::histogram_id("core.codec.sample_ratio_pct");
  const std::size_t w = checked_size(element_bytes());
  const std::size_t sample = std::min<std::size_t>(in.size(), 4096 / w * w);
  if (sample == 0) return;
  std::vector<std::byte> scratch(sample);
  const std::size_t n =
      codec::encode(codec::CodecId::kRle, in.first(sample), w, scratch);
  const std::uint64_t pct =
      n == 0 ? 100 : (static_cast<std::uint64_t>(n) * 100) / sample;
  obs::registry().counter(kSamples).add();
  obs::registry().histogram(kRatio).observe(pct);
}

}  // namespace drx::core
